#include "machine/ecc_memory.hh"

#include "base/logging.hh"

namespace tw
{

EccMemory::EccMemory(std::size_t words)
    : codewords_(words, EccCodec::encode(0))
{
    TW_ASSERT(words > 0, "empty ECC memory");
}

void
EccMemory::write(std::size_t index, std::uint32_t value)
{
    TW_ASSERT(index < codewords_.size(), "ECC write out of range");
    ++stats_.writes;
    codewords_[index] = EccCodec::encode(value);
}

std::uint32_t
EccMemory::read(std::size_t index)
{
    TW_ASSERT(index < codewords_.size(), "ECC read out of range");
    ++stats_.reads;
    std::uint64_t cw = codewords_[index];
    lastResult_ = EccCodec::decode(cw);
    switch (lastResult_) {
      case EccCodec::Result::Ok:
        break;
      case EccCodec::Result::TapewormTrap:
        ++stats_.tapewormTraps;
        break;
      case EccCodec::Result::SingleBitError:
        ++stats_.trueSingleErrors;
        break;
      case EccCodec::Result::DoubleBitError:
        ++stats_.trueDoubleErrors;
        break;
    }
    return EccCodec::extractData(cw);
}

void
EccMemory::flipTrapBit(std::size_t index)
{
    TW_ASSERT(index < codewords_.size(), "ECC trap out of range");
    codewords_[index] = EccCodec::flipTrapBit(codewords_[index]);
}

bool
EccMemory::isTrapped(std::size_t index) const
{
    return EccCodec::decode(codewords_[index])
           == EccCodec::Result::TapewormTrap;
}

void
EccMemory::injectFault(std::size_t index, unsigned bit)
{
    TW_ASSERT(index < codewords_.size(), "fault out of range");
    codewords_[index] = EccCodec::flipBit(codewords_[index], bit);
}

} // namespace tw
