#include "machine/ecc.hh"

#include <bit>

#include "base/logging.hh"

namespace tw
{

namespace
{

constexpr bool
isHammingCheckPos(unsigned p)
{
    return (p & (p - 1)) == 0; // p is a power of two (p >= 1)
}

/** XOR of the Hamming positions (1..38) of all set bits. */
unsigned
syndromeOf(std::uint64_t codeword)
{
    unsigned s = 0;
    for (unsigned p = 1; p < EccCodec::kBits; ++p) {
        if ((codeword >> p) & 1)
            s ^= p;
    }
    return s;
}

} // anonymous namespace

std::uint64_t
EccCodec::encode(std::uint32_t data)
{
    std::uint64_t cw = 0;

    // Scatter data bits into the non-power-of-two positions 3,5,6,...
    unsigned data_bit = 0;
    for (unsigned p = 1; p < kBits; ++p) {
        if (isHammingCheckPos(p))
            continue;
        if ((data >> data_bit) & 1)
            cw |= 1ull << p;
        ++data_bit;
    }
    TW_ASSERT(data_bit == 32, "expected 32 data positions, got %u",
              data_bit);

    // Each Hamming check bit at position 2^k covers positions with
    // bit k set; choose it so the covered group has even parity.
    unsigned s = syndromeOf(cw);
    for (unsigned k = 0; (1u << k) < kBits; ++k) {
        if ((s >> k) & 1)
            cw |= 1ull << (1u << k);
    }
    TW_ASSERT(syndromeOf(cw) == 0, "hamming encode failed");

    // Overall parity: make the total popcount even.
    if (std::popcount(cw) & 1)
        cw |= 1ull;
    return cw;
}

std::uint64_t
EccCodec::flipTrapBit(std::uint64_t codeword)
{
    return codeword ^ (1ull << kTrapCheckBit);
}

std::uint64_t
EccCodec::flipBit(std::uint64_t codeword, unsigned pos)
{
    TW_ASSERT(pos < kBits, "bit position %u out of range", pos);
    return codeword ^ (1ull << pos);
}

EccCodec::Result
EccCodec::decode(std::uint64_t codeword)
{
    unsigned s = syndromeOf(codeword);
    bool odd_parity = std::popcount(codeword) & 1;

    if (s == 0 && !odd_parity)
        return Result::Ok;
    if (odd_parity) {
        // Exactly one bit flipped (the syndrome names it; syndrome 0
        // means the overall parity bit itself).
        if (s == kTrapCheckBit)
            return Result::TapewormTrap;
        return Result::SingleBitError;
    }
    // Nonzero syndrome with even parity: two bits flipped.
    return Result::DoubleBitError;
}

std::uint32_t
EccCodec::extractData(std::uint64_t codeword)
{
    unsigned s = syndromeOf(codeword);
    bool odd_parity = std::popcount(codeword) & 1;
    if (odd_parity && s != 0 && s < kBits)
        codeword ^= 1ull << s; // correct the single-bit error

    std::uint32_t data = 0;
    unsigned data_bit = 0;
    for (unsigned p = 1; p < kBits; ++p) {
        if (isHammingCheckPos(p))
            continue;
        if ((codeword >> p) & 1)
            data |= 1u << data_bit;
        ++data_bit;
    }
    return data;
}

const char *
eccResultName(EccCodec::Result r)
{
    switch (r) {
      case EccCodec::Result::Ok:
        return "ok";
      case EccCodec::Result::TapewormTrap:
        return "tapeworm-trap";
      case EccCodec::Result::SingleBitError:
        return "single-bit-error";
      case EccCodec::Result::DoubleBitError:
        return "double-bit-error";
    }
    return "?";
}

} // namespace tw
