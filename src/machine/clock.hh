/**
 * @file
 * The periodic clock-interrupt device of the simulated host.
 *
 * The clock is central to the paper's time-dilation bias (Figure 4):
 * it fires at a fixed rate in *real* (simulated wall-clock) cycles,
 * so any simulation overhead stretches the workload across more
 * interrupts, each of which runs kernel handler code through the
 * simulated cache and inflates conflict misses.
 */

#ifndef TW_MACHINE_CLOCK_HH
#define TW_MACHINE_CLOCK_HH

#include "base/logging.hh"
#include "base/types.hh"

namespace tw
{

/**
 * Fixed-interval interrupt source.
 */
class ClockDevice
{
  public:
    /**
     * @param interval_cycles cycles between interrupts.
     * @param phase offset of the first interrupt (run-to-run jitter
     *        can be injected here).
     */
    explicit ClockDevice(Cycles interval_cycles, Cycles phase = 0)
        : interval_(interval_cycles), next_(interval_cycles + phase)
    {
        TW_ASSERT(interval_cycles > 0, "clock interval must be nonzero");
    }

    /** Cycle at which the next interrupt is due. */
    Cycles nextAt() const { return next_; }

    /** Interval between interrupts. */
    Cycles interval() const { return interval_; }

    /** Has an interrupt become due at time @p now? */
    bool due(Cycles now) const { return now >= next_; }

    /**
     * Acknowledge the pending interrupt and schedule the next one.
     * If handling ran long enough to pass further periods, ticks are
     * coalesced (real kernels lose ticks the same way).
     */
    void
    acknowledge(Cycles now)
    {
        ++fired_;
        while (next_ <= now)
            next_ += interval_;
    }

    /** Number of interrupts fired so far. */
    Counter fired() const { return fired_; }

  private:
    Cycles interval_;
    Cycles next_;
    Counter fired_ = 0;
};

} // namespace tw

#endif // TW_MACHINE_CLOCK_HH
