/**
 * @file
 * Word-granular ECC memory: the footnote-1 mechanism, executable.
 *
 * PhysMem keeps one abstract trap bit per granule for speed; this
 * class is the faithful version for a (small) region: every 32-bit
 * word is stored as a full (39,32) SECDED codeword, a trap is set
 * by actually flipping the designated check bit, and every read
 * decodes the codeword — distinguishing Tapeworm traps from genuine
 * single- and double-bit memory errors exactly as the real
 * DECstation implementation did. Used by the fault-injection tests
 * and the trap-mechanism study (bench_ecc_faults).
 */

#ifndef TW_MACHINE_ECC_MEMORY_HH
#define TW_MACHINE_ECC_MEMORY_HH

#include <cstdint>
#include <vector>

#include "base/types.hh"
#include "machine/ecc.hh"

namespace tw
{

/** Counters of ECC events observed at read time. */
struct EccMemoryStats
{
    Counter reads = 0;
    Counter writes = 0;
    Counter tapewormTraps = 0;   //!< designated-check-bit signatures
    Counter trueSingleErrors = 0; //!< corrected real faults
    Counter trueDoubleErrors = 0; //!< uncorrectable real faults
};

/**
 * A word-addressed memory bank storing real SECDED codewords.
 */
class EccMemory
{
  public:
    /** @param words capacity in 32-bit words (all initialized to
     *  clean encodings of zero). */
    explicit EccMemory(std::size_t words);

    std::size_t words() const { return codewords_.size(); }

    /** Write a data word (re-encodes; clears any trap or fault). */
    void write(std::size_t index, std::uint32_t value);

    /**
     * Read a word: decodes the stored codeword, classifies it, and
     * returns the (corrected if possible) data. The classification
     * of the last read is available via lastResult().
     */
    std::uint32_t read(std::size_t index);

    /** Classification of the most recent read(). */
    EccCodec::Result lastResult() const { return lastResult_; }

    /** tw_set_trap at the codeword level: flip the designated check
     *  bit of the word. Idempotence is NOT implied — flipping twice
     *  clears the trap, exactly like the hardware. */
    void flipTrapBit(std::size_t index);

    /** Is the word currently carrying the trap signature? */
    bool isTrapped(std::size_t index) const;

    /** Inject a genuine fault: flip an arbitrary codeword bit. */
    void injectFault(std::size_t index, unsigned bit);

    const EccMemoryStats &stats() const { return stats_; }

  private:
    std::vector<std::uint64_t> codewords_;
    EccCodec::Result lastResult_ = EccCodec::Result::Ok;
    EccMemoryStats stats_;
};

} // namespace tw

#endif // TW_MACHINE_ECC_MEMORY_HH
