/**
 * @file
 * SECDED ECC codec modeling the DECstation 5000/200 trap mechanism.
 *
 * Footnote 1 of the paper: "Our implementation of Tapeworm on a
 * DECstation 5000/200 makes use of a single-error correcting,
 * double-error detecting ECC code. A trap is set by flipping a
 * specific ECC check bit among the 7 total check bits assigned to
 * each 32 bits of data. If Tapeworm detects a single-bit error in
 * any of the other 38 check or data bit positions, or if it detects
 * a double-bit error, it knows that a true error has occurred."
 *
 * This codec implements a (39,32) Hamming SECDED code — 32 data
 * bits, 6 Hamming check bits, 1 overall parity bit — and the
 * trap-vs-true-error discrimination described above. It is used by
 * the fault-injection tests and the trap-mechanism example; the fast
 * path of the machine model keeps a plain trap bit per granule
 * instead of storing full codewords.
 */

#ifndef TW_MACHINE_ECC_HH
#define TW_MACHINE_ECC_HH

#include <cstdint>

namespace tw
{

/**
 * (39,32) SECDED codeword operations.
 *
 * Codeword layout: bit 0 is the overall parity bit; bits at
 * positions 1,2,4,8,16,32 (within the 1-based Hamming index space)
 * are Hamming check bits; the remaining 32 positions carry data.
 */
class EccCodec
{
  public:
    /** What decoding a codeword revealed. */
    enum class Result
    {
        Ok,             //!< no error
        TapewormTrap,   //!< exactly the designated check bit flipped
        SingleBitError, //!< correctable true error (other position)
        DoubleBitError, //!< uncorrectable true error
    };

    /** Number of codeword bits. */
    static constexpr unsigned kBits = 39;

    /** Hamming index (1-based) of the check bit Tapeworm flips. */
    static constexpr unsigned kTrapCheckBit = 32;

    /** Encode 32 data bits into a 39-bit codeword. */
    static std::uint64_t encode(std::uint32_t data);

    /** Flip the designated trap check bit (tw_set_trap at the
     *  codeword level; applying it twice clears the trap). */
    static std::uint64_t flipTrapBit(std::uint64_t codeword);

    /** Flip an arbitrary codeword bit [0, kBits) — fault injection. */
    static std::uint64_t flipBit(std::uint64_t codeword, unsigned pos);

    /** Classify a codeword: clean, tapeworm trap, or true error. */
    static Result decode(std::uint64_t codeword);

    /** Recover the data bits of a codeword (after at most a single
     *  correctable error, which is corrected first). */
    static std::uint32_t extractData(std::uint64_t codeword);
};

/** Human-readable name of a decode result. */
const char *eccResultName(EccCodec::Result r);

} // namespace tw

#endif // TW_MACHINE_ECC_HH
