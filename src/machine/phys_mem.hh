/**
 * @file
 * Physical memory of the simulated host machine, with per-granule
 * memory traps.
 *
 * On the real DECstation 5000/200, Tapeworm sets a trap by flipping
 * one ECC check bit of a memory word through the memory-controller
 * ASIC's diagnostic mode; the next cache-line refill from that
 * location raises an ECC error interrupt (Section 3.2, Table 2).
 * Our machine model keeps one trap bit per 16-byte granule (the
 * 4-word refill granularity that limits simulated line sizes on
 * that machine, Section 4.4).
 *
 * The hit path of a trap-driven simulation is a single bit test —
 * this is precisely the "host hardware filters hits" property that
 * gives Tapeworm its speed, so isTrapped() is kept inline.
 */

#ifndef TW_MACHINE_PHYS_MEM_HH
#define TW_MACHINE_PHYS_MEM_HH

#include <cstdint>
#include <memory_resource>

#include "base/bitops.hh"
#include "base/logging.hh"
#include "base/types.hh"

namespace tw
{

/**
 * Byte-addressed physical memory with a trap bit per granule.
 */
class PhysMem
{
  public:
    /**
     * @param size_bytes total physical memory size.
     * @param granule_bytes trap granularity (power of two; default
     *        the DECstation's 4-word ECC refill unit).
     */
    explicit PhysMem(std::uint64_t size_bytes,
                     std::uint32_t granule_bytes = kTrapGranuleBytes);
    ~PhysMem();

    PhysMem(const PhysMem &) = delete;
    PhysMem &operator=(const PhysMem &) = delete;

    std::uint64_t sizeBytes() const { return sizeBytes_; }
    std::uint32_t granuleBytes() const { return granuleBytes_; }
    std::uint64_t numGranules() const { return numGranules_; }
    std::uint64_t numFrames() const
    {
        return sizeBytes_ / kHostPageBytes;
    }

    /** Set traps on every granule overlapping [pa, pa+size). The
     *  tw_set_trap(pa, size) primitive of Table 1. */
    void setTrap(Addr pa, std::uint64_t size);

    /** Clear traps on every granule overlapping [pa, pa+size). The
     *  tw_clear_trap(pa, size) primitive of Table 1. */
    void clearTrap(Addr pa, std::uint64_t size);

    /** Hot path: is the granule containing @p pa trapped? */
    bool
    isTrapped(Addr pa) const
    {
        std::uint64_t g = pa >> granuleShift_;
        return (bits_[g >> 6] >> (g & 63)) & 1;
    }

    /** Any trap set in [pa, pa+size)? */
    bool anyTrapped(Addr pa, std::uint64_t size) const;

    /** Raw trap-bit words (one bit per granule, granule g at word
     *  g/64 bit g%64). The storage address is fixed for the life of
     *  the PhysMem, which is what lets clients hand the machine a
     *  TrapFilterView over it. The array is 64-byte aligned and
     *  padded (with always-zero words) to a multiple of 8 words, so
     *  cache-line-wide scans of any word range stay in bounds and
     *  never split a block across lines. */
    const std::uint64_t *rawBits() const { return bits_; }

    /** log2 of the trap granule in bytes. */
    unsigned granuleShift() const { return granuleShift_; }

    /** Total number of trapped granules (diagnostics). */
    std::uint64_t countTrapped() const;

    /** Clear every trap bit. */
    void clearAll();

  private:
    std::uint64_t sizeBytes_;
    std::uint32_t granuleBytes_;
    unsigned granuleShift_;
    std::uint64_t numGranules_;
    /** Bitmap words: wordsUsed_ live ones, allocated (and zeroed)
     *  out to wordsAlloc_ — a multiple of 8 — from mr_. Under an
     *  ArenaScope mr_ is the trial arena (freeing is a no-op and
     *  the chunk is reused next trial); otherwise the default
     *  new/delete resource. */
    std::pmr::memory_resource *mr_;
    std::uint64_t *bits_;
    std::uint64_t wordsUsed_;
    std::uint64_t wordsAlloc_;
};

} // namespace tw

#endif // TW_MACHINE_PHYS_MEM_HH
