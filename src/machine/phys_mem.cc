#include "machine/phys_mem.hh"

#include <bit>
#include <cstring>

#include "base/arena.hh"

namespace tw
{

PhysMem::PhysMem(std::uint64_t size_bytes, std::uint32_t granule_bytes)
    : sizeBytes_(size_bytes), granuleBytes_(granule_bytes),
      mr_(arenaResource())
{
    TW_ASSERT(isPowerOf2(granule_bytes), "granule must be a power of 2");
    TW_ASSERT(size_bytes % granule_bytes == 0,
              "memory size must be granule aligned");
    granuleShift_ = floorLog2(granule_bytes);
    numGranules_ = size_bytes >> granuleShift_;
    wordsUsed_ = divCeil(numGranules_, 64);
    // Round the allocation up to whole 64-byte blocks so a wide
    // scan's widest load never leaves the array, and 64-byte-align
    // the base so no block straddles two cache lines.
    wordsAlloc_ = (wordsUsed_ + 7) & ~std::uint64_t(7);
    bits_ = static_cast<std::uint64_t *>(
        mr_->allocate(wordsAlloc_ * sizeof(std::uint64_t), 64));
    std::memset(bits_, 0, wordsAlloc_ * sizeof(std::uint64_t));
}

PhysMem::~PhysMem()
{
    mr_->deallocate(bits_, wordsAlloc_ * sizeof(std::uint64_t), 64);
}

void
PhysMem::setTrap(Addr pa, std::uint64_t size)
{
    TW_ASSERT(pa + size <= sizeBytes_,
              "trap range [%llx,+%llx) outside memory",
              static_cast<unsigned long long>(pa),
              static_cast<unsigned long long>(size));
    std::uint64_t first = pa >> granuleShift_;
    std::uint64_t last = (pa + size - 1) >> granuleShift_;
    for (std::uint64_t g = first; g <= last; ++g)
        bits_[g >> 6] |= 1ull << (g & 63);
}

void
PhysMem::clearTrap(Addr pa, std::uint64_t size)
{
    TW_ASSERT(pa + size <= sizeBytes_,
              "trap range [%llx,+%llx) outside memory",
              static_cast<unsigned long long>(pa),
              static_cast<unsigned long long>(size));
    std::uint64_t first = pa >> granuleShift_;
    std::uint64_t last = (pa + size - 1) >> granuleShift_;
    for (std::uint64_t g = first; g <= last; ++g)
        bits_[g >> 6] &= ~(1ull << (g & 63));
}

bool
PhysMem::anyTrapped(Addr pa, std::uint64_t size) const
{
    std::uint64_t first = pa >> granuleShift_;
    std::uint64_t last = (pa + size - 1) >> granuleShift_;
    for (std::uint64_t g = first; g <= last; ++g) {
        if ((bits_[g >> 6] >> (g & 63)) & 1)
            return true;
    }
    return false;
}

std::uint64_t
PhysMem::countTrapped() const
{
    std::uint64_t n = 0;
    for (std::uint64_t w = 0; w < wordsUsed_; ++w)
        n += static_cast<std::uint64_t>(std::popcount(bits_[w]));
    return n;
}

void
PhysMem::clearAll()
{
    std::memset(bits_, 0, wordsUsed_ * sizeof(std::uint64_t));
}

} // namespace tw
