/**
 * @file
 * The process-wide metric registry: named counters, gauges, and
 * log2 latency histograms shared by the simulator core, the trial
 * harness, the experiment engine, and the serve layer.
 *
 * Design constraints, in order:
 *
 *  1. Hot paths pay (at most) one relaxed per-thread increment.
 *     Counters are SHARDED: each thread owns a private slot per
 *     counter id, written with a relaxed store (the owning thread
 *     is the only writer, so no RMW is needed), and a snapshot sums
 *     the live slots plus a retired total folded in when threads
 *     exit. The engine goes further still — System/Cache/Tapeworm
 *     tally into plain members during a (single-threaded) trial and
 *     flush here once per run — so the per-reference cost of
 *     observability inside the PR 3 inner loops is zero.
 *
 *  2. Snapshots are EXACT once writers are quiescent, and MONOTONE
 *     always: slots only grow, retirement happens under the same
 *     mutex as reads, so two successive snapshots can never observe
 *     a counter shrinking.
 *
 *  3. One namespace. serve's request counters and the engine's
 *     ref/probe/TLB counters live in the same registry, so one
 *     `metrics` op (or `twctl metrics --prom`) shows the whole
 *     process. Names are dotted ("engine.refs.chunked"); the
 *     Prometheus renderer mangles them to tw_engine_refs_chunked.
 *
 * The registry is a leaked singleton: thread_local shard
 * destructors run during thread teardown, potentially after static
 * destructors, so the registry must never be destroyed.
 */

#ifndef TW_OBS_METRICS_HH
#define TW_OBS_METRICS_HH

#include <array>
#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "base/json.hh"

namespace tw
{
namespace obs
{

class Registry;
struct ThreadShard;

/** Handle to one registered counter. Cheap to copy; add() is the
 *  hot-path entry point (per-thread sharded, relaxed). A
 *  default-constructed handle is a no-op sink. */
class Counter
{
  public:
    Counter() = default;

    void add(std::uint64_t n);
    void inc() { add(1); }

    /** Exact total across retired and live shards (locks). */
    std::uint64_t value() const;

  private:
    friend class Registry;
    Counter(Registry *reg, unsigned id) : reg_(reg), id_(id) {}

    Registry *reg_ = nullptr;
    unsigned id_ = 0;
};

/** Handle to one registered gauge: a shared relaxed atomic, for
 *  up/down live state (queue depth, jobs in flight). */
class Gauge
{
  public:
    Gauge() = default;

    void
    set(std::int64_t v)
    {
        if (cell_)
            cell_->store(v, std::memory_order_relaxed);
    }

    void
    add(std::int64_t d)
    {
        if (cell_)
            cell_->fetch_add(d, std::memory_order_relaxed);
    }

    std::int64_t
    value() const
    {
        return cell_ ? cell_->load(std::memory_order_relaxed) : 0;
    }

  private:
    friend class Registry;
    explicit Gauge(std::atomic<std::int64_t> *cell) : cell_(cell) {}

    std::atomic<std::int64_t> *cell_ = nullptr;
};

/**
 * Thread-safe latency recorder (microseconds, log2 buckets).
 * Shared relaxed atomics rather than shards: record() sits on cold
 * paths (once per request/trial, not per reference), where four
 * relaxed RMWs are cheap and exact bucket totals keep quantiles
 * honest.
 *
 * Values at or above 2^47 us (~4.5 years) do not fit the histogram
 * and are counted in an explicit `overflow` bucket instead of being
 * silently folded into the top bucket; quantiles that land in the
 * overflow region report the recorded max rather than a fabricated
 * 2^47 bound.
 */
class LatencyStat
{
  public:
    static constexpr unsigned kBuckets = 48;
    /** First value that no longer fits a bucket. */
    static constexpr std::uint64_t kOverflowUs = 1ull
                                                 << (kBuckets - 1);

    void
    record(double us)
    {
        if (us < 0.0)
            us = 0.0;
        auto u = static_cast<std::uint64_t>(us);
        count_.fetch_add(1, std::memory_order_relaxed);
        sumUs_.fetch_add(u, std::memory_order_relaxed);
        std::uint64_t prev = maxUs_.load(std::memory_order_relaxed);
        while (u > prev
               && !maxUs_.compare_exchange_weak(
                   prev, u, std::memory_order_relaxed)) {
        }
        if (u >= kOverflowUs)
            overflow_.fetch_add(1, std::memory_order_relaxed);
        else
            buckets_[bucketOf(u)].fetch_add(
                1, std::memory_order_relaxed);
    }

    /** Bucket index of @p us: 0 holds {0,1}, bucket b>=1 holds
     *  [2^b, 2^(b+1)). Only defined below kOverflowUs. */
    static unsigned
    bucketOf(std::uint64_t us)
    {
        unsigned b = 0;
        while (us > 1 && b < kBuckets - 1) {
            us >>= 1;
            ++b;
        }
        return b;
    }

    struct Snapshot
    {
        std::uint64_t count = 0;
        std::uint64_t sumUs = 0;
        double meanUs = 0.0;
        double p50Us = 0.0;
        double p99Us = 0.0;
        double maxUs = 0.0;
        std::uint64_t overflow = 0;
    };

    Snapshot snapshot() const;

    /** As {"count":..,"mean_us":..,"p50_us":..,"p99_us":..,
     *  "max_us":..,"overflow":..}. */
    Json toJson() const;

  private:
    std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
    std::atomic<std::uint64_t> count_{0};
    std::atomic<std::uint64_t> sumUs_{0};
    std::atomic<std::uint64_t> maxUs_{0};
    std::atomic<std::uint64_t> overflow_{0};
};

/** One named counter total, in sorted-name order. */
struct CounterValue
{
    std::string name;
    std::uint64_t value = 0;
};

/** The process-wide registry (see file comment). Obtain with
 *  registry(); never constructed elsewhere. */
class Registry
{
  public:
    /** Find-or-create; handles to the same name share one total. */
    Counter counter(const std::string &name);
    Gauge gauge(const std::string &name);
    /** The reference stays valid forever (registry is leaked and
     *  histograms are never removed). */
    LatencyStat &histogram(const std::string &name);

    /** Every counter's exact-at-quiescence total, sorted by name. */
    std::vector<CounterValue> counterValues() const;

    /** {"counters":{..},"gauges":{..},"histograms":{..}} with keys
     *  sorted — deterministic output for diffs and tests. */
    Json snapshotJson() const;

    /** Prometheus text exposition format (# TYPE lines, tw_
     *  prefix, dots mangled to underscores). */
    std::string promText() const;

  private:
    friend Registry &registry();
    friend class Counter;
    friend struct ThreadShard;

    Registry() = default;
    Registry(const Registry &) = delete;
    Registry &operator=(const Registry &) = delete;

    /** Hot path: bump this thread's slot for counter @p id. */
    void addToShard(unsigned id, std::uint64_t n);
    /** Retired + live-shard sum for one id; caller holds mutex_. */
    std::uint64_t counterTotalLocked(unsigned id) const;

    mutable std::mutex mutex_;
    std::map<std::string, unsigned> counterIds_;
    std::vector<std::string> counterNames_;
    /** Folded totals of exited threads, indexed by counter id. */
    std::vector<std::uint64_t> retired_;
    std::vector<ThreadShard *> shards_;

    /** Deque: grows without moving, so Gauge handles stay valid. */
    std::map<std::string, unsigned> gaugeIds_;
    std::deque<std::atomic<std::int64_t>> gaugeCells_;

    std::map<std::string, unsigned> histogramIds_;
    std::deque<LatencyStat> histograms_;
};

/** The process-wide instance (leaked; see file comment). */
Registry &registry();

} // namespace obs
} // namespace tw

#endif // TW_OBS_METRICS_HH
