#include "obs/metrics.hh"

#include <algorithm>
#include <cstdio>

namespace tw
{
namespace obs
{

// --------------------------------------------------------------------
// LatencyStat.

LatencyStat::Snapshot
LatencyStat::snapshot() const
{
    Snapshot s;
    s.count = count_.load(std::memory_order_relaxed);
    if (s.count == 0)
        return s;
    s.sumUs = sumUs_.load(std::memory_order_relaxed);
    s.meanUs = static_cast<double>(s.sumUs)
               / static_cast<double>(s.count);
    s.maxUs =
        static_cast<double>(maxUs_.load(std::memory_order_relaxed));
    s.overflow = overflow_.load(std::memory_order_relaxed);

    // Quantiles from the histogram: the value reported for bucket b
    // is 2^b us, its lower bound. A target that falls beyond the
    // buckets — in the overflow region — reports the recorded max:
    // the histogram knows nothing finer there, and folding it back
    // to a 2^47 "bound" would fabricate precision.
    std::array<std::uint64_t, kBuckets> counts;
    std::uint64_t total = s.overflow;
    for (unsigned i = 0; i < kBuckets; ++i) {
        counts[i] = buckets_[i].load(std::memory_order_relaxed);
        total += counts[i];
    }
    auto quantile = [&](double q) -> double {
        if (total == 0)
            return 0.0;
        std::uint64_t target = static_cast<std::uint64_t>(
            q * static_cast<double>(total - 1));
        std::uint64_t seen = 0;
        for (unsigned i = 0; i < kBuckets; ++i) {
            seen += counts[i];
            if (seen > target)
                return static_cast<double>(1ull << i);
        }
        return s.maxUs;
    };
    s.p50Us = quantile(0.50);
    s.p99Us = quantile(0.99);
    return s;
}

Json
LatencyStat::toJson() const
{
    Snapshot s = snapshot();
    Json j = Json::object();
    j.set("count", Json::number(s.count));
    j.set("mean_us", Json::number(s.meanUs));
    j.set("p50_us", Json::number(s.p50Us));
    j.set("p99_us", Json::number(s.p99Us));
    j.set("max_us", Json::number(s.maxUs));
    j.set("overflow", Json::number(s.overflow));
    return j;
}

// --------------------------------------------------------------------
// Per-thread counter shards.

/**
 * One thread's private slots, one per counter id. The owning thread
 * is the sole writer: add() is a relaxed load+store, no RMW. The
 * deque never moves elements, so a reader holding the registry
 * mutex can safely index slots the owner published via `ready`
 * (growth also happens under the registry mutex). On thread exit
 * the destructor folds the slots into the registry's retired totals
 * under the same mutex, which is what makes drained totals exact
 * and snapshots monotone.
 */
struct ThreadShard
{
    Registry *reg = nullptr;
    std::deque<std::atomic<std::uint64_t>> slots;
    /** Slots [0, ready) are allocated and safe to read. */
    std::atomic<std::size_t> ready{0};

    ~ThreadShard()
    {
        if (!reg)
            return;
        std::lock_guard<std::mutex> lock(reg->mutex_);
        std::size_t n = ready.load(std::memory_order_relaxed);
        for (std::size_t i = 0; i < n && i < reg->retired_.size();
             ++i) {
            reg->retired_[i] +=
                slots[i].load(std::memory_order_relaxed);
        }
        auto &shards = reg->shards_;
        shards.erase(std::remove(shards.begin(), shards.end(), this),
                     shards.end());
    }
};

namespace
{

ThreadShard &
tlsShard(Registry *reg, std::mutex &mutex,
         std::vector<ThreadShard *> &shards)
{
    thread_local ThreadShard shard;
    if (!shard.reg) {
        shard.reg = reg;
        std::lock_guard<std::mutex> lock(mutex);
        shards.push_back(&shard);
    }
    return shard;
}

/** Prometheus metric name: tw_ prefix, [a-zA-Z0-9_:] only. */
std::string
promName(const std::string &name)
{
    std::string out = "tw_";
    for (char c : name) {
        bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
                  || (c >= '0' && c <= '9') || c == '_' || c == ':';
        out.push_back(ok ? c : '_');
    }
    return out;
}

void
appendProm(std::string &out, const std::string &name,
           const char *type, const std::string &value)
{
    out += "# TYPE " + name + " " + type + "\n";
    out += name + " " + value + "\n";
}

std::string
fmtU64(std::uint64_t v)
{
    return std::to_string(v);
}

std::string
fmtF(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

} // anonymous namespace

// --------------------------------------------------------------------
// Registry.

Registry &
registry()
{
    // Leaked: thread_local shard destructors may run after static
    // destruction, and they take the registry mutex.
    static Registry *reg = new Registry;
    return *reg;
}

Counter
Registry::counter(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = counterIds_.find(name);
    if (it != counterIds_.end())
        return Counter(this, it->second);
    unsigned id = static_cast<unsigned>(counterNames_.size());
    counterIds_.emplace(name, id);
    counterNames_.push_back(name);
    retired_.push_back(0);
    return Counter(this, id);
}

Gauge
Registry::gauge(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = gaugeIds_.find(name);
    if (it != gaugeIds_.end())
        return Gauge(&gaugeCells_[it->second]);
    unsigned id = static_cast<unsigned>(gaugeCells_.size());
    gaugeIds_.emplace(name, id);
    gaugeCells_.emplace_back(0);
    return Gauge(&gaugeCells_[id]);
}

LatencyStat &
Registry::histogram(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = histogramIds_.find(name);
    if (it != histogramIds_.end())
        return histograms_[it->second];
    unsigned id = static_cast<unsigned>(histograms_.size());
    histogramIds_.emplace(name, id);
    histograms_.emplace_back();
    return histograms_[id];
}

void
Registry::addToShard(unsigned id, std::uint64_t n)
{
    ThreadShard &shard = tlsShard(this, mutex_, shards_);
    if (id >= shard.ready.load(std::memory_order_relaxed)) {
        // Grow under the registry mutex so concurrent snapshotters
        // never race deque growth; publish the new size with
        // release so their acquire read bounds what they index.
        std::lock_guard<std::mutex> lock(mutex_);
        while (shard.slots.size() <= id)
            shard.slots.emplace_back(0);
        shard.ready.store(shard.slots.size(),
                          std::memory_order_release);
    }
    std::atomic<std::uint64_t> &slot = shard.slots[id];
    // Owner-only writer: load+store beats fetch_add and stays
    // atomic for concurrent snapshot readers.
    slot.store(slot.load(std::memory_order_relaxed) + n,
               std::memory_order_relaxed);
}

std::uint64_t
Registry::counterTotalLocked(unsigned id) const
{
    std::uint64_t total = retired_[id];
    for (const ThreadShard *shard : shards_) {
        if (id < shard->ready.load(std::memory_order_acquire))
            total += shard->slots[id].load(std::memory_order_relaxed);
    }
    return total;
}

std::vector<CounterValue>
Registry::counterValues() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<CounterValue> out;
    out.reserve(counterIds_.size());
    for (const auto &[name, id] : counterIds_)
        out.push_back({name, counterTotalLocked(id)});
    return out;
}

Json
Registry::snapshotJson() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    Json j = Json::object();

    Json counters = Json::object();
    for (const auto &[name, id] : counterIds_)
        counters.set(name, Json::number(counterTotalLocked(id)));
    j.set("counters", std::move(counters));

    Json gauges = Json::object();
    for (const auto &[name, id] : gaugeIds_) {
        gauges.set(name,
                   Json::number(gaugeCells_[id].load(
                       std::memory_order_relaxed)));
    }
    j.set("gauges", std::move(gauges));

    Json hists = Json::object();
    for (const auto &[name, id] : histogramIds_)
        hists.set(name, histograms_[id].toJson());
    j.set("histograms", std::move(hists));
    return j;
}

std::string
Registry::promText() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::string out;
    for (const auto &[name, id] : counterIds_) {
        appendProm(out, promName(name), "counter",
                   fmtU64(counterTotalLocked(id)));
    }
    for (const auto &[name, id] : gaugeIds_) {
        appendProm(
            out, promName(name), "gauge",
            std::to_string(
                gaugeCells_[id].load(std::memory_order_relaxed)));
    }
    for (const auto &[name, id] : histogramIds_) {
        LatencyStat::Snapshot s = histograms_[id].snapshot();
        std::string base = promName(name);
        out += "# TYPE " + base + " summary\n";
        out += base + "{quantile=\"0.5\"} " + fmtF(s.p50Us) + "\n";
        out += base + "{quantile=\"0.99\"} " + fmtF(s.p99Us) + "\n";
        out += base + "_sum " + fmtU64(s.sumUs) + "\n";
        out += base + "_count " + fmtU64(s.count) + "\n";
        appendProm(out, base + "_max", "gauge", fmtF(s.maxUs));
        appendProm(out, base + "_overflow", "counter",
                   fmtU64(s.overflow));
    }
    return out;
}

// --------------------------------------------------------------------
// Counter handle.

void
Counter::add(std::uint64_t n)
{
    if (!reg_ || n == 0)
        return;
    reg_->addToShard(id_, n);
}

std::uint64_t
Counter::value() const
{
    if (!reg_)
        return 0;
    std::lock_guard<std::mutex> lock(reg_->mutex_);
    return reg_->counterTotalLocked(id_);
}

} // namespace obs
} // namespace tw
