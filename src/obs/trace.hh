/**
 * @file
 * Lightweight span tracing with Chrome trace-event export.
 *
 * Spans are begin/end intervals recorded into per-thread buffers
 * and drained post-run into one JSON file that chrome://tracing or
 * Perfetto loads directly. The design center is "off costs
 * nothing, on costs little":
 *
 *  - Disabled (the default), ScopedSpan's constructor is one
 *    relaxed atomic load and a branch. No clock reads, no
 *    allocation. Instrumentation can therefore live permanently in
 *    the harness, the experiment engine, the cache flush paths and
 *    the serve request pipeline.
 *  - Enabled (--trace-out / TW_TRACE), each span costs two
 *    steady_clock reads and one buffered append under a per-thread
 *    mutex (uncontended except during the final drain). Buffers
 *    are bounded; overflow drops events and reports the count in
 *    the exported file rather than growing without bound.
 *
 * Spans deliberately do NOT appear in any canonical output — the
 * trace file is a host-side artifact exactly like hostSeconds, so
 * tracing on vs off cannot perturb bit-identical results.
 */

#ifndef TW_OBS_TRACE_HH
#define TW_OBS_TRACE_HH

#include <atomic>
#include <cstdint>
#include <string>

namespace tw
{
namespace obs
{

namespace detail
{
extern std::atomic<bool> traceOn;
} // namespace detail

/** True between traceStart() and traceStop(). Hot-path gate. */
inline bool
traceEnabled()
{
    return detail::traceOn.load(std::memory_order_relaxed);
}

/**
 * Arm tracing: spans recorded from now on are written to @p path
 * at traceStop(). False (with @p err) if the path is not writable.
 * Restarting discards any spans left from a previous arm.
 */
bool traceStart(const std::string &path, std::string *err = nullptr);

/** Drain every thread's buffer, write the Chrome trace-event JSON,
 *  and disarm. No-op when not armed. */
void traceStop();

/** Microseconds since traceStart (0 when disabled). For events
 *  whose begin predates the recording call (queue waits). */
std::uint64_t traceNowUs();

/** Record one complete span explicitly (begin @p ts_us on the
 *  trace timebase, lasting @p dur_us). */
void traceRecord(std::string name, const char *cat,
                 double ts_us, double dur_us);

/** RAII span: records [construction, destruction) when tracing is
 *  enabled at construction time. */
class ScopedSpan
{
  public:
    explicit ScopedSpan(const char *name, const char *cat = "tw")
    {
        if (traceEnabled())
            arm(name, cat);
    }

    ScopedSpan(std::string name, const char *cat = "tw")
    {
        if (traceEnabled())
            arm(std::move(name), cat);
    }

    ~ScopedSpan()
    {
        if (armed_)
            finish();
    }

    ScopedSpan(const ScopedSpan &) = delete;
    ScopedSpan &operator=(const ScopedSpan &) = delete;

  private:
    void arm(std::string name, const char *cat);
    void finish();

    std::string name_;
    const char *cat_ = "";
    double t0Us_ = 0.0;
    bool armed_ = false;
};

} // namespace obs
} // namespace tw

#endif // TW_OBS_TRACE_HH
