#include "obs/trace.hh"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <deque>
#include <mutex>
#include <vector>

#include "base/logging.hh"

namespace tw
{
namespace obs
{

namespace detail
{
std::atomic<bool> traceOn{false};
} // namespace detail

namespace
{

using Clock = std::chrono::steady_clock;

struct TraceEvent
{
    std::string name;
    const char *cat = "";
    double tsUs = 0.0;
    double durUs = 0.0;
    std::uint32_t tid = 0;
};

/** Cap per thread: a runaway span site drops events (counted)
 *  instead of eating the heap. 64K events ≈ a few MB. */
constexpr std::size_t kMaxEventsPerThread = 1 << 16;

/**
 * One thread's span buffer. Appends take the buffer's own mutex —
 * uncontended in steady state (the only other locker is the final
 * drain, or this thread's own exit fold). Registered with the
 * collector on first use; on thread exit the events move into the
 * collector's retired list so short-lived threads (serve sessions)
 * don't lose their spans.
 */
struct TraceBuf
{
    std::mutex mutex;
    std::vector<TraceEvent> events;
    std::uint64_t dropped = 0;
    std::uint32_t tid = 0;

    ~TraceBuf();
};

struct Collector
{
    std::mutex mutex;
    std::vector<TraceBuf *> bufs;
    std::vector<TraceEvent> retired;
    std::uint64_t retiredDropped = 0;
    std::uint32_t nextTid = 1;
    std::string path;
};

/** traceStart time as raw steady-clock nanoseconds, readable from
 *  span hot paths without the collector mutex. */
std::atomic<std::int64_t> epochNs{0};

double
nowUs()
{
    std::int64_t ns = std::chrono::duration_cast<
                          std::chrono::nanoseconds>(
                          Clock::now().time_since_epoch())
                          .count();
    return static_cast<double>(
               ns - epochNs.load(std::memory_order_relaxed))
           / 1e3;
}

Collector &
collector()
{
    // Leaked for the same reason as the metric registry: TraceBuf
    // thread_local destructors may run arbitrarily late.
    static Collector *c = new Collector;
    return *c;
}

TraceBuf::~TraceBuf()
{
    Collector &c = collector();
    std::lock_guard<std::mutex> clock_(c.mutex);
    {
        std::lock_guard<std::mutex> block(mutex);
        c.retired.insert(c.retired.end(),
                         std::make_move_iterator(events.begin()),
                         std::make_move_iterator(events.end()));
        events.clear();
        c.retiredDropped += dropped;
    }
    c.bufs.erase(std::remove(c.bufs.begin(), c.bufs.end(), this),
                 c.bufs.end());
}

TraceBuf &
tlsBuf()
{
    thread_local TraceBuf buf;
    if (buf.tid == 0) {
        Collector &c = collector();
        std::lock_guard<std::mutex> lock(c.mutex);
        buf.tid = c.nextTid++;
        c.bufs.push_back(&buf);
    }
    return buf;
}

void
appendJsonEscaped(std::string &out, const std::string &s)
{
    for (char ch : s) {
        switch (ch) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(ch) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", ch);
                out += buf;
            } else {
                out.push_back(ch);
            }
        }
    }
}

} // anonymous namespace

bool
traceStart(const std::string &path, std::string *err)
{
    Collector &c = collector();
    traceStop(); // flush any previous arm first
    std::FILE *probe = std::fopen(path.c_str(), "w");
    if (!probe) {
        if (err)
            *err = "cannot open " + path;
        return false;
    }
    std::fclose(probe);
    {
        std::lock_guard<std::mutex> lock(c.mutex);
        c.path = path;
        epochNs.store(std::chrono::duration_cast<
                          std::chrono::nanoseconds>(
                          Clock::now().time_since_epoch())
                          .count(),
                      std::memory_order_relaxed);
        c.retired.clear();
        c.retiredDropped = 0;
        for (TraceBuf *buf : c.bufs) {
            std::lock_guard<std::mutex> block(buf->mutex);
            buf->events.clear();
            buf->dropped = 0;
        }
    }
    detail::traceOn.store(true, std::memory_order_relaxed);
    return true;
}

void
traceStop()
{
    if (!traceEnabled())
        return;
    // Disarm first: spans that begin after this line are dropped at
    // their ScopedSpan constructor; in-flight ones may still land
    // below because the drain holds each buffer's mutex.
    detail::traceOn.store(false, std::memory_order_relaxed);

    Collector &c = collector();
    std::vector<TraceEvent> events;
    std::uint64_t dropped = 0;
    std::string path;
    {
        std::lock_guard<std::mutex> lock(c.mutex);
        path = c.path;
        c.path.clear();
        events = std::move(c.retired);
        c.retired.clear();
        dropped = c.retiredDropped;
        c.retiredDropped = 0;
        for (TraceBuf *buf : c.bufs) {
            std::lock_guard<std::mutex> block(buf->mutex);
            events.insert(
                events.end(),
                std::make_move_iterator(buf->events.begin()),
                std::make_move_iterator(buf->events.end()));
            buf->events.clear();
            dropped += buf->dropped;
            buf->dropped = 0;
        }
    }
    if (path.empty())
        return;

    std::sort(events.begin(), events.end(),
              [](const TraceEvent &a, const TraceEvent &b) {
                  return a.tsUs < b.tsUs;
              });

    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f) {
        warn("trace: cannot write %s", path.c_str());
        return;
    }
    std::string out = "{\"traceEvents\":[";
    bool first = true;
    for (const TraceEvent &e : events) {
        if (!first)
            out += ",";
        first = false;
        out += "\n{\"name\":\"";
        appendJsonEscaped(out, e.name);
        out += "\",\"cat\":\"";
        appendJsonEscaped(out, e.cat);
        char buf[128];
        std::snprintf(buf, sizeof(buf),
                      "\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,"
                      "\"pid\":1,\"tid\":%u}",
                      e.tsUs, e.durUs, e.tid);
        out += buf;
    }
    out += "\n],\"displayTimeUnit\":\"ms\"";
    if (dropped) {
        out += ",\"otherData\":{\"dropped_events\":\""
               + std::to_string(dropped) + "\"}";
    }
    out += "}\n";
    std::fwrite(out.data(), 1, out.size(), f);
    std::fclose(f);
    inform("trace: wrote %zu span(s) to %s%s", events.size(),
           path.c_str(), dropped ? " (some dropped)" : "");
}

std::uint64_t
traceNowUs()
{
    if (!traceEnabled())
        return 0;
    double us = nowUs();
    return us > 0.0 ? static_cast<std::uint64_t>(us) : 0;
}

void
traceRecord(std::string name, const char *cat, double ts_us,
            double dur_us)
{
    if (!traceEnabled())
        return;
    TraceBuf &buf = tlsBuf();
    std::lock_guard<std::mutex> lock(buf.mutex);
    if (buf.events.size() >= kMaxEventsPerThread) {
        ++buf.dropped;
        return;
    }
    TraceEvent e;
    e.name = std::move(name);
    e.cat = cat;
    e.tsUs = ts_us;
    e.durUs = dur_us;
    e.tid = buf.tid;
    buf.events.push_back(std::move(e));
}

void
ScopedSpan::arm(std::string name, const char *cat)
{
    name_ = std::move(name);
    cat_ = cat;
    t0Us_ = nowUs();
    armed_ = true;
}

void
ScopedSpan::finish()
{
    if (!traceEnabled())
        return;
    traceRecord(std::move(name_), cat_, t0Us_,
                std::max(0.0, nowUs() - t0Us_));
}

} // namespace obs
} // namespace tw
