#include "serve/client.hh"

#include <algorithm>
#include <unistd.h>

#include "harness/specio.hh"

namespace tw
{
namespace serve
{

std::vector<RunOutcome>
SweepResult::outcomes() const
{
    std::uint64_t maxTrial = 0;
    for (const SweepRow &r : rows)
        maxTrial = std::max(maxTrial, r.trial);
    std::vector<RunOutcome> out(rows.empty() ? 0 : maxTrial + 1);
    for (const SweepRow &r : rows)
        if (!r.expired)
            out[r.trial] = r.outcome;
    return out;
}

Client::~Client()
{
    disconnect();
}

bool
Client::connectUnix(const std::string &path, std::string *err)
{
    disconnect();
    fd_ = connectUnixSocket(path, err);
    if (fd_ < 0)
        return false;
    reader_.reset(fd_);
    return true;
}

bool
Client::connectTcp(const std::string &host, int port,
                   std::string *err)
{
    disconnect();
    fd_ = connectTcpSocket(host, port, err);
    if (fd_ < 0)
        return false;
    reader_.reset(fd_);
    return true;
}

void
Client::disconnect()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

SweepResult
Client::submitSweep(
    const RunSpec &spec, const std::vector<std::uint64_t> &seeds,
    bool with_slowdown, std::optional<std::uint64_t> deadline_ms,
    const std::function<void(const SweepRow &)> &on_row)
{
    SweepResult result;
    if (fd_ < 0) {
        result.errorMsg = "not connected";
        return result;
    }
    std::uint64_t id = nextId_++;

    Json req = Json::object();
    req.set("op", Json::str("submit"));
    req.set("id", Json::number(id));
    // Ship the spec as canonical text: the server parses it back
    // with the same strict reader, so what was submitted is exactly
    // what is fingerprinted.
    req.set("spec", Json::str(formatRunSpec(spec)));
    Json seedArr = Json::array();
    for (std::uint64_t s : seeds)
        seedArr.push(Json::number(s));
    req.set("seeds", std::move(seedArr));
    req.set("slowdown", Json::boolean(with_slowdown));
    if (deadline_ms)
        req.set("deadline_ms", Json::number(*deadline_ms));
    if (!sendJsonLine(fd_, req)) {
        result.errorMsg = "send failed";
        return result;
    }

    std::string line;
    while (true) {
        LineReader::Status st = reader_.readLine(line);
        if (st != LineReader::Status::Line) {
            result.errorMsg = "connection closed mid-response";
            return result;
        }
        Json frame;
        std::string perr;
        if (!Json::parse(line, frame, &perr) || !frame.isObject()) {
            result.errorMsg = "bad frame from server: " + perr;
            return result;
        }
        const Json *idj = frame.find("id");
        if (!idj || idj->asU64() != id)
            continue; // a frame for some other request id
        const Json *evj = frame.find("ev");
        const std::string &ev = evj ? evj->asString() : "";

        if (ev == "row") {
            SweepRow row;
            if (const Json *j = frame.find("trial"))
                row.trial = j->asU64();
            if (const Json *j = frame.find("seed"))
                row.seed = j->asU64();
            if (const Json *j = frame.find("cached"))
                row.cached = j->asBool();
            if (const Json *j = frame.find("host_s"))
                row.hostSeconds = j->asDouble();
            if (frame.find("error")) {
                row.expired = true;
            } else if (const Json *j = frame.find("outcome")) {
                std::string oerr;
                if (!outcomeFromJson(*j, row.outcome, oerr)) {
                    result.errorMsg = "bad outcome row: " + oerr;
                    return result;
                }
                // hostSeconds travels outside the canonical text.
                row.outcome.hostSeconds = row.hostSeconds;
            }
            if (on_row)
                on_row(row);
            result.rows.push_back(std::move(row));
            continue;
        }
        if (ev == "done") {
            if (const Json *j = frame.find("cached"))
                result.cached = j->asU64();
            if (const Json *j = frame.find("computed"))
                result.computed = j->asU64();
            if (const Json *j = frame.find("expired"))
                result.expired = j->asU64();
            result.ok = true;
            return result;
        }
        if (ev == "error") {
            if (const Json *j = frame.find("code"))
                result.errorCode = j->asString();
            if (const Json *j = frame.find("msg"))
                result.errorMsg = j->asString();
            return result;
        }
        // Unknown event for our id: protocol error.
        result.errorMsg = "unexpected event '" + ev + "'";
        return result;
    }
}

ExperimentResult
Client::runExperiment(const std::string &name, unsigned scale_div)
{
    ExperimentResult result;
    result.experiment = name;
    if (fd_ < 0) {
        result.errorMsg = "not connected";
        return result;
    }
    std::uint64_t id = nextId_++;

    Json req = Json::object();
    req.set("op", Json::str("run_experiment"));
    req.set("id", Json::number(id));
    req.set("experiment", Json::str(name));
    if (scale_div != 0)
        req.set("scale", Json::number(
                             static_cast<std::uint64_t>(scale_div)));
    if (!sendJsonLine(fd_, req)) {
        result.errorMsg = "send failed";
        return result;
    }

    std::string line;
    while (true) {
        LineReader::Status st = reader_.readLine(line);
        if (st != LineReader::Status::Line) {
            result.errorMsg = "connection closed mid-response";
            return result;
        }
        Json frame;
        std::string perr;
        if (!Json::parse(line, frame, &perr) || !frame.isObject()) {
            result.errorMsg = "bad frame from server: " + perr;
            return result;
        }
        const Json *idj = frame.find("id");
        if (!idj || idj->asU64() != id)
            continue;
        const Json *evj = frame.find("ev");
        const std::string &ev = evj ? evj->asString() : "";

        if (ev == "row") {
            ServedExperimentRow row;
            if (const Json *j = frame.find("unit"))
                row.unit = j->asString();
            if (const Json *j = frame.find("seq"))
                row.seq = j->asU64();
            if (const Json *j = frame.find("trial"))
                row.trial = j->asU64();
            if (const Json *j = frame.find("seed"))
                row.seed = j->asU64();
            if (const Json *j = frame.find("cached"))
                row.cached = j->asBool();
            if (const Json *j = frame.find("host_s"))
                row.hostSeconds = j->asDouble();
            if (frame.find("error")) {
                row.expired = true;
            } else if (const Json *j = frame.find("outcome")) {
                std::string oerr;
                if (!outcomeFromJson(*j, row.outcome, oerr)) {
                    result.errorMsg = "bad outcome row: " + oerr;
                    return result;
                }
                row.outcome.hostSeconds = row.hostSeconds;
            }
            result.rows.push_back(std::move(row));
            continue;
        }
        if (ev == "done") {
            if (const Json *j = frame.find("cached"))
                result.cached = j->asU64();
            if (const Json *j = frame.find("computed"))
                result.computed = j->asU64();
            if (const Json *j = frame.find("expired"))
                result.expired = j->asU64();
            // Workers finish out of order; the registry's job order
            // is by dense seq.
            std::sort(result.rows.begin(), result.rows.end(),
                      [](const ServedExperimentRow &a,
                         const ServedExperimentRow &b) {
                          return a.seq < b.seq;
                      });
            result.ok = true;
            return result;
        }
        if (ev == "error") {
            if (const Json *j = frame.find("code"))
                result.errorCode = j->asString();
            if (const Json *j = frame.find("msg"))
                result.errorMsg = j->asString();
            return result;
        }
        result.errorMsg = "unexpected event '" + ev + "'";
        return result;
    }
}

bool
Client::simpleOp(const char *op, const char *expect_ev, Json &resp,
                 std::string *err)
{
    Json req = Json::object();
    req.set("op", Json::str(op));
    return requestResponse(std::move(req), expect_ev, resp, err);
}

bool
Client::requestResponse(Json req, const char *expect_ev, Json &resp,
                        std::string *err)
{
    if (fd_ < 0) {
        if (err)
            *err = "not connected";
        return false;
    }
    std::uint64_t id = nextId_++;
    req.set("id", Json::number(id));
    if (!sendJsonLine(fd_, req)) {
        if (err)
            *err = "send failed";
        return false;
    }
    std::string line;
    while (true) {
        LineReader::Status st = reader_.readLine(line);
        if (st != LineReader::Status::Line) {
            if (err)
                *err = "connection closed mid-response";
            return false;
        }
        Json frame;
        std::string perr;
        if (!Json::parse(line, frame, &perr) || !frame.isObject()) {
            if (err)
                *err = "bad frame from server: " + perr;
            return false;
        }
        const Json *idj = frame.find("id");
        if (!idj || idj->asU64() != id)
            continue;
        const Json *evj = frame.find("ev");
        const std::string &ev = evj ? evj->asString() : "";
        if (ev == expect_ev) {
            resp = std::move(frame);
            return true;
        }
        if (ev == "error") {
            if (err) {
                const Json *m = frame.find("msg");
                *err = m ? m->asString() : "server error";
            }
            return false;
        }
        if (err)
            *err = "unexpected event '" + ev + "'";
        return false;
    }
}

bool
Client::stats(Json &out, std::string *err)
{
    Json resp;
    if (!simpleOp("stats", "stats", resp, err))
        return false;
    if (const Json *s = resp.find("stats")) {
        out = *s;
        return true;
    }
    if (err)
        *err = "stats response missing payload";
    return false;
}

bool
Client::metrics(Json &out, std::string *prom_text, bool prom,
                std::string *err)
{
    Json req = Json::object();
    req.set("op", Json::str("metrics"));
    if (prom)
        req.set("format", Json::str("prom"));
    Json resp;
    if (!requestResponse(std::move(req), "metrics", resp, err))
        return false;
    if (prom) {
        const Json *p = resp.find("prom");
        if (!p || !p->isString()) {
            if (err)
                *err = "metrics response missing prom payload";
            return false;
        }
        if (prom_text)
            *prom_text = p->asString();
        return true;
    }
    if (const Json *m = resp.find("metrics")) {
        out = *m;
        return true;
    }
    if (err)
        *err = "metrics response missing payload";
    return false;
}

bool
Client::flushCache(std::string *err)
{
    Json resp;
    return simpleOp("flush-cache", "ok", resp, err);
}

bool
Client::shutdownServer(std::string *err)
{
    Json resp;
    return simpleOp("shutdown", "ok", resp, err);
}

bool
Client::ping(std::string *err)
{
    Json resp;
    return simpleOp("ping", "pong", resp, err);
}

} // namespace serve
} // namespace tw
