/**
 * @file
 * The experiment service's metrics, as a per-server VIEW over the
 * process-wide obs registry.
 *
 * PR 6 moved the actual storage into obs::Registry so served stats
 * and engine stats are one namespace: a `metrics` wire op (or
 * `twctl metrics --prom`) dumps serve.* request counters next to
 * the engine.* simulation counters the same process accumulated.
 * What stays here is serve policy:
 *
 *  - the `stats` reply is PER SERVER (tests run several servers in
 *    one process), so each counter keeps the registry total at
 *    construction as a base and reports the delta;
 *  - result-cache lookups per experiment stay a mutex-guarded map
 *    keyed by experiment name — cold path, dynamic key set;
 *  - uptime/started-at come from a steady (monotonic) clock so
 *    they never jump with wall-clock adjustments.
 *
 * Latency histograms are shared registry objects (they cannot be
 * base-subtracted); their stats are cumulative for the process,
 * which only matters to tests that therefore assert >= rather
 * than ==.
 */

#ifndef TW_SERVE_METRICS_HH
#define TW_SERVE_METRICS_HH

#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "base/json.hh"
#include "obs/metrics.hh"

namespace tw
{
namespace serve
{

using obs::LatencyStat;

/** One serve counter: writes go to the process registry, value()
 *  reads this server's contribution. */
class ServeCounter
{
  public:
    explicit ServeCounter(const char *name)
        : counter_(obs::registry().counter(name)),
          base_(counter_.value())
    {
    }

    void inc() { counter_.inc(); }
    void add(std::uint64_t n) { counter_.add(n); }

    /** This server's count (registry total minus construction
     *  base). */
    std::uint64_t value() const { return counter_.value() - base_; }

  private:
    obs::Counter counter_;
    std::uint64_t base_ = 0;
};

/** Up/down live state (jobs in flight). No base: a drained server
 *  always returns its gauge contribution to zero. */
class ServeGauge
{
  public:
    explicit ServeGauge(const char *name)
        : gauge_(obs::registry().gauge(name))
    {
    }

    void add(std::int64_t d) { gauge_.add(d); }
    std::int64_t value() const { return gauge_.value(); }

  private:
    obs::Gauge gauge_;
};

/** All counters the server exports (see Server::statsJson for the
 *  assembled payload, which adds queue/cache/session state). */
struct MetricsRegistry
{
    std::chrono::steady_clock::time_point started =
        std::chrono::steady_clock::now();

    // Requests by op.
    ServeCounter submits{"serve.ops.submits"};
    ServeCounter runExperiments{"serve.ops.run_experiments"};
    ServeCounter statsReqs{"serve.ops.stats"};
    ServeCounter metricsReqs{"serve.ops.metrics"};
    ServeCounter flushes{"serve.ops.flushes"};
    ServeCounter pings{"serve.ops.pings"};
    ServeCounter shutdowns{"serve.ops.shutdowns"};
    ServeCounter badRequests{"serve.ops.bad_requests"};

    // Row outcomes.
    ServeCounter rowsStreamed{"serve.rows.streamed"};
    ServeCounter rowsCached{"serve.rows.cached"};
    ServeCounter rowsComputed{"serve.rows.computed"};
    ServeCounter rowsExpired{"serve.rows.expired"};

    // Admission control.
    ServeCounter rejectedOverloaded{"serve.rejected.overloaded"};
    ServeCounter rejectedShuttingDown{
        "serve.rejected.shutting_down"};

    // Distribution ops (two-phase admission; see DESIGN.md §14).
    ServeCounter reserves{"serve.shard.reserves"};
    ServeCounter reserveRejects{"serve.shard.reserve_rejects"};
    ServeCounter releases{"serve.shard.releases"};
    ServeCounter runJobsReqs{"serve.shard.run_jobs"};

    // Wire write coalescing: flushes counts send() syscalls on row
    // paths, batchedRows counts rows that rode a shared flush — the
    // syscall-per-row ratio BENCH_serve.json reports.
    ServeCounter netFlushes{"serve.net.flushes"};
    ServeCounter netFlushedBytes{"serve.net.flushed_bytes"};
    ServeCounter netBatchedRows{"serve.net.batched_rows"};

    // Live state.
    ServeGauge jobsInFlight{"serve.jobs_in_flight"};
    ServeCounter sessionsOpened{"serve.sessions.opened"};
    ServeCounter sessionsClosed{"serve.sessions.closed"};

    // Per-stage latencies (process-cumulative; see file comment).
    LatencyStat &queueWait =
        obs::registry().histogram("serve.latency.queue_wait_us");
    LatencyStat &runStage =
        obs::registry().histogram("serve.latency.run_us");
    LatencyStat &request =
        obs::registry().histogram("serve.latency.request_us");

    /**
     * Result-cache hit/miss counts keyed by experiment name. Ad-hoc
     * submits (no registry entry behind them) land under "_adhoc".
     * Lookups happen once per trial at admission — cold relative to
     * the row hot path — so a mutex-guarded map is the right tool;
     * the existing rowsCached/rowsComputed totals stay the lock-free
     * aggregates.
     */
    void recordCacheLookup(const std::string &experiment, bool hit);

    /** {"<experiment>": {"hits": N, "misses": N}, ...} */
    Json experimentsJson() const;

    /**
     * Trials admitted per cost backend name ("table5", "ideal",
     * "dram"), so served-vs-local diffs are self-describing about
     * which pricing model produced the rows. Same cold-path mutex
     * rationale as recordCacheLookup.
     */
    void recordCostBackend(const std::string &backend);

    /** {"<backend>": N, ...} */
    Json costBackendsJson() const;

    double
    uptimeSeconds() const
    {
        return std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - started)
            .count();
    }

    /** Monotonic (steady-clock) timestamp of server construction,
     *  seconds. Pairs with uptime_s: started_at_s + uptime_s is
     *  "now" on the same clock, immune to wall-clock steps. */
    double
    startedAtSeconds() const
    {
        return std::chrono::duration<double>(
                   started.time_since_epoch())
            .count();
    }

  private:
    struct LookupCounts
    {
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;
    };
    mutable std::mutex experimentsMutex_;
    std::map<std::string, LookupCounts> experimentLookups_;
    std::map<std::string, std::uint64_t> costBackendTrials_;
};

} // namespace serve
} // namespace tw

#endif // TW_SERVE_METRICS_HH
