/**
 * @file
 * The experiment service's metrics registry: lock-free counters and
 * log2-bucketed latency histograms behind the admin `stats` surface.
 *
 * Everything here is written from hot paths (session threads,
 * workers) and read rarely (a `stats` request), so each metric is a
 * relaxed atomic — stats output is a consistent-enough snapshot,
 * not a linearizable one. Latency quantiles come from a 48-bucket
 * power-of-two histogram over microseconds: factor-of-two
 * resolution, which is plenty for spotting a saturated queue or a
 * cold-vs-cached cliff (exact percentiles for the perf trajectory
 * are computed client-side by bench_serve from per-request
 * samples).
 */

#ifndef TW_SERVE_METRICS_HH
#define TW_SERVE_METRICS_HH

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "base/json.hh"

namespace tw
{
namespace serve
{

/** Thread-safe latency recorder (microseconds, log2 buckets). */
class LatencyStat
{
  public:
    void
    record(double us)
    {
        if (us < 0.0)
            us = 0.0;
        auto u = static_cast<std::uint64_t>(us);
        count_.fetch_add(1, std::memory_order_relaxed);
        sumUs_.fetch_add(u, std::memory_order_relaxed);
        std::uint64_t prev = maxUs_.load(std::memory_order_relaxed);
        while (u > prev
               && !maxUs_.compare_exchange_weak(
                   prev, u, std::memory_order_relaxed)) {
        }
        buckets_[bucketOf(u)].fetch_add(1,
                                        std::memory_order_relaxed);
    }

    struct Snapshot
    {
        std::uint64_t count = 0;
        double meanUs = 0.0;
        double p50Us = 0.0;
        double p99Us = 0.0;
        double maxUs = 0.0;
    };

    Snapshot snapshot() const;

    /** As {"count":..,"mean_us":..,"p50_us":..,"p99_us":..,
     *  "max_us":..}. */
    Json toJson() const;

  private:
    static constexpr unsigned kBuckets = 48;

    static unsigned
    bucketOf(std::uint64_t us)
    {
        unsigned b = 0;
        while (us > 1 && b < kBuckets - 1) {
            us >>= 1;
            ++b;
        }
        return b;
    }

    std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
    std::atomic<std::uint64_t> count_{0};
    std::atomic<std::uint64_t> sumUs_{0};
    std::atomic<std::uint64_t> maxUs_{0};
};

/** All counters the server exports (see Server::statsJson for the
 *  assembled payload, which adds queue/cache/session state). */
struct MetricsRegistry
{
    std::chrono::steady_clock::time_point started =
        std::chrono::steady_clock::now();

    // Requests by op.
    std::atomic<std::uint64_t> submits{0};
    std::atomic<std::uint64_t> runExperiments{0};
    std::atomic<std::uint64_t> statsReqs{0};
    std::atomic<std::uint64_t> flushes{0};
    std::atomic<std::uint64_t> pings{0};
    std::atomic<std::uint64_t> shutdowns{0};
    std::atomic<std::uint64_t> badRequests{0};

    // Row outcomes.
    std::atomic<std::uint64_t> rowsStreamed{0};
    std::atomic<std::uint64_t> rowsCached{0};
    std::atomic<std::uint64_t> rowsComputed{0};
    std::atomic<std::uint64_t> rowsExpired{0};

    // Admission control.
    std::atomic<std::uint64_t> rejectedOverloaded{0};
    std::atomic<std::uint64_t> rejectedShuttingDown{0};

    // Live state.
    std::atomic<std::uint64_t> jobsInFlight{0};
    std::atomic<std::uint64_t> sessionsOpened{0};
    std::atomic<std::uint64_t> sessionsClosed{0};

    // Per-stage latencies.
    LatencyStat queueWait; //!< admit -> worker pop
    LatencyStat runStage;  //!< Runner execution alone
    LatencyStat request;   //!< submit parse -> done emitted

    /**
     * Result-cache hit/miss counts keyed by experiment name. Ad-hoc
     * submits (no registry entry behind them) land under "_adhoc".
     * Lookups happen once per trial at admission — cold relative to
     * the row hot path — so a mutex-guarded map is the right tool;
     * the existing rowsCached/rowsComputed totals stay the lock-free
     * aggregates.
     */
    void recordCacheLookup(const std::string &experiment, bool hit);

    /** {"<experiment>": {"hits": N, "misses": N}, ...} */
    Json experimentsJson() const;

    double
    uptimeSeconds() const
    {
        return std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - started)
            .count();
    }

  private:
    struct LookupCounts
    {
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;
    };
    mutable std::mutex experimentsMutex_;
    std::map<std::string, LookupCounts> experimentLookups_;
};

} // namespace serve
} // namespace tw

#endif // TW_SERVE_METRICS_HH
