#include "serve/wire.hh"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "base/logging.hh"

namespace tw
{
namespace serve
{

bool
sendAll(int fd, const char *data, std::size_t len)
{
    while (len > 0) {
        ssize_t n = ::send(fd, data, len, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        data += n;
        len -= static_cast<std::size_t>(n);
    }
    return true;
}

bool
sendLine(int fd, const std::string &line)
{
    std::string framed = line;
    framed += '\n';
    return sendAll(fd, framed.data(), framed.size());
}

bool
sendJsonLine(int fd, const Json &j)
{
    std::string line = j.dump();
    line += '\n';
    return sendAll(fd, line.data(), line.size());
}

void
LineReader::reset(int fd)
{
    fd_ = fd;
    buf_.clear();
    pos_ = 0;
}

LineReader::Status
LineReader::readLine(std::string &out)
{
    while (true) {
        std::size_t nl = buf_.find('\n', pos_);
        if (nl != std::string::npos) {
            out.assign(buf_, pos_, nl - pos_);
            pos_ = nl + 1;
            // Compact once the consumed prefix dominates.
            if (pos_ > 64 * 1024 && pos_ > buf_.size() / 2) {
                buf_.erase(0, pos_);
                pos_ = 0;
            }
            return Status::Line;
        }
        if (buf_.size() - pos_ > kMaxLineBytes)
            return Status::Error; // unframed flood; see kMaxLineBytes
        char chunk[4096];
        ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return Status::Error;
        }
        if (n == 0)
            return pos_ == buf_.size() ? Status::Eof : Status::Error;
        buf_.append(chunk, static_cast<std::size_t>(n));
    }
}

namespace
{

bool
fillUnixAddr(const std::string &path, sockaddr_un &addr,
             std::string *err)
{
    std::memset(&addr, 0, sizeof(addr));
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path)) {
        if (err)
            *err = csprintf("socket path too long (%zu >= %zu): %s",
                            path.size(), sizeof(addr.sun_path),
                            path.c_str());
        return false;
    }
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    return true;
}

void
setErr(std::string *err, const char *what)
{
    if (err)
        *err = csprintf("%s: %s", what, std::strerror(errno));
}

} // anonymous namespace

int
connectUnixSocket(const std::string &path, std::string *err)
{
    sockaddr_un addr;
    if (!fillUnixAddr(path, addr, err))
        return -1;
    int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
        setErr(err, "socket");
        return -1;
    }
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        setErr(err, "connect");
        ::close(fd);
        return -1;
    }
    return fd;
}

int
connectTcpSocket(const std::string &host, int port, std::string *err)
{
    sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
        if (err)
            *err = csprintf("bad IPv4 address '%s'", host.c_str());
        return -1;
    }
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
        setErr(err, "socket");
        return -1;
    }
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        setErr(err, "connect");
        ::close(fd);
        return -1;
    }
    return fd;
}

int
listenUnixSocket(const std::string &path, std::string *err)
{
    sockaddr_un addr;
    if (!fillUnixAddr(path, addr, err))
        return -1;
    // A stale socket file from a dead daemon would make bind fail;
    // remove it. A LIVE daemon also loses its file this way — the
    // operator owns path uniqueness (DESIGN.md §9).
    ::unlink(path.c_str());
    int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
        setErr(err, "socket");
        return -1;
    }
    if (::bind(fd, reinterpret_cast<sockaddr *>(&addr), sizeof(addr))
        != 0) {
        setErr(err, "bind");
        ::close(fd);
        return -1;
    }
    if (::listen(fd, 64) != 0) {
        setErr(err, "listen");
        ::close(fd);
        return -1;
    }
    return fd;
}

int
listenTcpSocket(const std::string &bind_addr, int port,
                std::string *err)
{
    sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    if (::inet_pton(AF_INET, bind_addr.c_str(), &addr.sin_addr)
        != 1) {
        if (err)
            *err = csprintf("bad IPv4 address '%s'",
                            bind_addr.c_str());
        return -1;
    }
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
        setErr(err, "socket");
        return -1;
    }
    int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    if (::bind(fd, reinterpret_cast<sockaddr *>(&addr), sizeof(addr))
        != 0) {
        setErr(err, "bind");
        ::close(fd);
        return -1;
    }
    if (::listen(fd, 64) != 0) {
        setErr(err, "listen");
        ::close(fd);
        return -1;
    }
    return fd;
}

} // namespace serve
} // namespace tw
