/**
 * @file
 * twserved's engine: a persistent experiment service over the
 * harness.
 *
 * Section 5 of the paper argues trap-driven simulation's real
 * payoff is a simulator that LIVES with the machine — resident,
 * warm, and cheap to re-ask (resampling is just a new trap
 * pattern). This server is that, packaged the way Virtuoso-style
 * frameworks are driven: many clients share one process whose
 * baselines are memoized, whose results are cached, and whose
 * capacity is explicit.
 *
 * Structure (one instance, several thread groups):
 *
 *   accept thread ──► session thread per connection
 *                        │  parse line, answer admin ops inline
 *                        │  submit: cache lookups, then admit the
 *                        ▼  sweep ATOMICALLY or reject `overloaded`
 *                 BoundedQueue<Job>  (backpressure edge)
 *                        │
 *                        ▼
 *                 worker pool ──► Runner::runOne/runWithSlowdown
 *                        │           (ThreadPool-equivalent width)
 *                        ▼
 *                 result cache insert + row streamed to session
 *
 * Graceful drain: requestStop() (SIGTERM, or the `shutdown` op)
 * closes admission; join() then waits for workers to finish every
 * admitted job — each one still streams its row — before sessions
 * are torn down. A client whose sweep was admitted before the
 * signal gets complete results; one submitting after gets
 * `shutting_down`.
 */

#ifndef TW_SERVE_SERVER_HH
#define TW_SERVE_SERVER_HH

#include <condition_variable>
#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "base/bounded_queue.hh"
#include "base/json.hh"
#include "serve/metrics.hh"
#include "serve/result_cache.hh"

namespace tw
{
namespace serve
{

struct ServerConfig
{
    /** Unix-domain socket path (required). */
    std::string socketPath;

    /** Also listen on TCP when nonzero (loopback by default —
     *  the protocol is unauthenticated). */
    int tcpPort = 0;
    std::string tcpBind = "127.0.0.1";

    /** Worker threads; 0 = defaultThreads() (TW_THREADS). */
    unsigned workers = 0;

    /** Job-queue bound: the backpressure knob. A submit whose
     *  uncached trials don't all fit is rejected `overloaded`. */
    std::size_t queueCapacity = 256;

    /** Result-cache entries. */
    std::size_t cacheCapacity = 4096;

    /** Per-connection send timeout (SO_SNDTIMEO), milliseconds.
     *  A client that stops reading its rows fails the next send
     *  once this lapses and its session is marked dead, so one
     *  wedged peer cannot park the worker pool forever. 0 = never
     *  time out. */
    unsigned sendTimeoutMs = 30000;

    /** Log per-request lines to stderr. */
    bool verbose = false;
};

class Server
{
  public:
    explicit Server(ServerConfig cfg);
    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /** Bind listeners and start threads; false + @p err on bind
     *  failure. */
    bool start(std::string *err = nullptr);

    /** Begin graceful drain (idempotent, signal-safe-adjacent:
     *  called from session threads and signal-watcher threads). */
    void requestStop();

    /** Block until a requested stop has fully drained; then all
     *  threads are joined and sockets closed. */
    void join();

    /** requestStop() + join(). */
    void stop();

    bool stopping() const { return stopping_.load(); }

    const ServerConfig &config() const { return cfg_; }
    ResultCache &cache() { return cache_; }
    const MetricsRegistry &metrics() const { return metrics_; }

    /** The admin `stats` payload. */
    Json statsJson();

    /**
     * Test hooks. Every worker pop happens under the same mutex
     * with a predicate that includes the pause flag, so after
     * pauseWorkers() returns no job can be dequeued — even by a
     * worker that was already blocked waiting for work. Tests use
     * this to deterministically fill the queue (full-queue
     * rejection) and to freeze admitted jobs across a requestStop.
     * resumeWorkers() must be called before a drain can finish.
     */
    void pauseWorkers();
    void resumeWorkers();

    /** Test hook: sessions still tracked (not yet reaped). Closed
     *  connections leave this within one accept-poll tick. */
    std::size_t liveSessionCount();

  private:
    struct Session;
    struct SessionEntry;
    struct Request;
    struct Job;

    void acceptLoop();
    void sessionLoop(SessionEntry *entry);
    /** Join and forget session threads that have finished (accept
     *  thread only); their fds close once the last Job reference
     *  drops. Keeps a resident daemon from accumulating fds and
     *  threads toward EMFILE. */
    void reapSessions();
    void workerLoop();
    /** The single dequeue point: blocks honoring the pause gate;
     *  nullopt when the queue is closed and drained. */
    std::optional<Job> nextJob();
    void handleLine(const std::shared_ptr<Session> &session,
                    const std::string &line);
    void handleSubmit(const std::shared_ptr<Session> &session,
                      std::uint64_t id, const Json &req);
    void handleRunExperiment(const std::shared_ptr<Session> &session,
                             std::uint64_t id, const Json &req);
    void handleReserve(const std::shared_ptr<Session> &session,
                       std::uint64_t id, const Json &req);
    void handleRelease(const std::shared_ptr<Session> &session,
                       std::uint64_t id, const Json &req);
    void handleRunJobs(const std::shared_ptr<Session> &session,
                       std::uint64_t id, const Json &req);
    struct CachedHit;
    /**
     * Shared admission + cached-row streaming tail of submit,
     * run_experiment, and run_jobs: all-or-nothing enqueue, then
     * the hits in ONE coalesced write. A nonzero @p reservation is
     * a token from `reserve` — the jobs consume its slots instead
     * of competing for free space (two-phase commit; any excess,
     * trials that became cache hits since the reserve, is
     * released).
     */
    void admitAndStream(const std::shared_ptr<Session> &session,
                        std::uint64_t id,
                        const std::shared_ptr<Request> &request,
                        std::vector<Job> jobs,
                        const std::vector<CachedHit> &hits,
                        std::uint64_t reservation = 0);
    /** Remove reservation @p token owned by @p owner from the map,
     *  returning its slot count (0 when unknown/not-owned). Does
     *  NOT touch the queue's reserved space — callers either
     *  pushReserved or releaseReserved with the result. */
    std::size_t takeReservation(std::uint64_t token,
                                const Session *owner);
    /** Session-close cleanup: void and release every reservation
     *  the session still holds (a dead router cannot leak queue
     *  slots). */
    void releaseSessionReservations(const Session *owner);
    void finishOne(const std::shared_ptr<Request> &req);
    void sendError(const std::shared_ptr<Session> &session,
                   std::uint64_t id, const char *code,
                   const std::string &msg);
    /** Notify workCv_ without losing the wakeup (see definition). */
    void wakeWorkers();

    ServerConfig cfg_;
    ResultCache cache_;
    MetricsRegistry metrics_;
    BoundedQueue<Job> queue_;

    int unixFd_ = -1;
    int tcpFd_ = -1;

    std::atomic<bool> stopping_{false};
    std::atomic<bool> started_{false};
    std::mutex stopMutex_;
    std::condition_variable stopCv_;
    bool stopRequested_ = false;
    bool joined_ = false;

    std::thread acceptThread_;
    std::vector<std::thread> workers_;
    std::mutex sessionsMutex_;
    /** A list so entries have stable addresses: each session thread
     *  marks its own entry finished and the accept loop reaps it. */
    std::list<SessionEntry> sessions_;

    /** Guards worker dequeue + the pause flag (see pauseWorkers).
     *  Producers notify workCv_ after admitting jobs. */
    std::mutex workMutex_;
    std::condition_variable workCv_;
    bool paused_ = false;

    /** Outstanding two-phase reservations: token -> (slots, owning
     *  session). The queue holds the aggregate reserved count; this
     *  map attributes it so commit/release/disconnect settle the
     *  right amount. */
    struct ReservationInfo
    {
        std::size_t slots = 0;
        const Session *owner = nullptr;
    };
    std::mutex reservationsMutex_;
    std::map<std::uint64_t, ReservationInfo> reservations_;
    std::uint64_t nextReservation_ = 1;
};

} // namespace serve
} // namespace tw

#endif // TW_SERVE_SERVER_HH
