#include "serve/poller.hh"

#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include "obs/metrics.hh"

namespace tw
{
namespace serve
{

namespace
{

/** One send() per flushOut pass regardless of queued frame count;
 *  these two counters make the syscall-vs-row ratio observable
 *  (BENCH_serve.json reports it). */
obs::Counter &
netFlushes()
{
    static obs::Counter c =
        obs::registry().counter("serve.net.flushes");
    return c;
}

obs::Counter &
netFlushedBytes()
{
    static obs::Counter c =
        obs::registry().counter("serve.net.flushed_bytes");
    return c;
}

} // anonymous namespace

bool
setNonBlocking(int fd)
{
    int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags < 0)
        return false;
    return ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

void
Conn::queueLine(const std::string &line)
{
    if (dead)
        return;
    if (pendingOut() + line.size() + 1 > kMaxBufferBytes) {
        dead = true; // wedged peer; the loop will cut it
        return;
    }
    out.append(line);
    if (line.empty() || line.back() != '\n')
        out.push_back('\n');
    wantWrite = true;
}

void
Conn::queueBytes(const char *data, std::size_t len)
{
    if (dead)
        return;
    if (pendingOut() + len > kMaxBufferBytes) {
        dead = true;
        return;
    }
    out.append(data, len);
    wantWrite = true;
}

bool
Conn::flushOut()
{
    while (outPos < out.size()) {
        ssize_t n = ::send(fd, out.data() + outPos,
                           out.size() - outPos, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            if (errno == EAGAIN || errno == EWOULDBLOCK)
                break; // socket full; EPOLLOUT will call us back
            dead = true;
            return false;
        }
        netFlushes().inc();
        netFlushedBytes().add(static_cast<std::uint64_t>(n));
        outPos += static_cast<std::size_t>(n);
    }
    if (outPos == out.size()) {
        out.clear();
        outPos = 0;
        wantWrite = false;
    } else {
        // Compact once the flushed prefix dominates.
        if (outPos > (1u << 20) && outPos > out.size() / 2) {
            out.erase(0, outPos);
            outPos = 0;
        }
        wantWrite = true;
    }
    return true;
}

bool
Conn::readReady()
{
    char chunk[16384];
    while (true) {
        ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            if (errno == EAGAIN || errno == EWOULDBLOCK)
                return true;
            dead = true;
            return false;
        }
        if (n == 0) {
            dead = true;
            return false; // clean EOF; caller fails in-flight work
        }
        if (in.size() - inPos + static_cast<std::size_t>(n)
            > kMaxBufferBytes) {
            dead = true;
            return false;
        }
        in.append(chunk, static_cast<std::size_t>(n));
        // Keep draining: level-triggered epoll would re-arm anyway,
        // but finishing the socket now saves wait() round trips.
        if (static_cast<std::size_t>(n) < sizeof(chunk))
            return true;
    }
}

bool
Conn::extractLine(std::string &line)
{
    std::size_t nl = in.find('\n', inPos);
    if (nl == std::string::npos) {
        if (in.size() - inPos > kMaxLineBytes)
            dead = true; // unframed flood (LineReader's policy)
        return false;
    }
    line.assign(in, inPos, nl - inPos);
    inPos = nl + 1;
    if (inPos > 64 * 1024 && inPos > in.size() / 2) {
        in.erase(0, inPos);
        inPos = 0;
    }
    return true;
}

void
Conn::closeFd()
{
    if (fd >= 0) {
        ::close(fd);
        fd = -1;
    }
}

Poller::Poller()
{
    epfd_ = ::epoll_create1(EPOLL_CLOEXEC);
    wakeFd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
    if (epfd_ >= 0 && wakeFd_ >= 0) {
        epoll_event ev{};
        ev.events = EPOLLIN;
        ev.data.ptr = nullptr; // nullptr tag = the wake fd
        if (::epoll_ctl(epfd_, EPOLL_CTL_ADD, wakeFd_, &ev) != 0) {
            ::close(epfd_);
            epfd_ = -1;
        }
    }
}

Poller::~Poller()
{
    if (epfd_ >= 0)
        ::close(epfd_);
    if (wakeFd_ >= 0)
        ::close(wakeFd_);
}

bool
Poller::add(int fd, void *tag, bool want_write)
{
    epoll_event ev{};
    ev.events = EPOLLIN | (want_write ? EPOLLOUT : 0u);
    ev.data.ptr = tag;
    return ::epoll_ctl(epfd_, EPOLL_CTL_ADD, fd, &ev) == 0;
}

bool
Poller::mod(int fd, void *tag, bool want_write)
{
    epoll_event ev{};
    ev.events = EPOLLIN | (want_write ? EPOLLOUT : 0u);
    ev.data.ptr = tag;
    return ::epoll_ctl(epfd_, EPOLL_CTL_MOD, fd, &ev) == 0;
}

void
Poller::del(int fd)
{
    ::epoll_ctl(epfd_, EPOLL_CTL_DEL, fd, nullptr);
}

bool
Poller::wait(int timeout_ms, std::vector<Event> &events)
{
    events.clear();
    epoll_event raw[64];
    int n = ::epoll_wait(epfd_, raw, 64, timeout_ms);
    if (n < 0)
        return errno == EINTR;
    for (int i = 0; i < n; ++i) {
        if (raw[i].data.ptr == nullptr) {
            // Drain the eventfd; the wakeup's only job is to make
            // epoll_wait return.
            std::uint64_t v;
            while (::read(wakeFd_, &v, sizeof(v)) > 0) {
            }
            continue;
        }
        Event e;
        e.tag = raw[i].data.ptr;
        e.readable = (raw[i].events & (EPOLLIN | EPOLLHUP
                                       | EPOLLERR)) != 0;
        e.writable = (raw[i].events & EPOLLOUT) != 0;
        e.hangup = (raw[i].events & (EPOLLHUP | EPOLLERR)) != 0;
        events.push_back(e);
    }
    return true;
}

void
Poller::wake()
{
    std::uint64_t one = 1;
    // A full eventfd counter still wakes the loop; ignore EAGAIN.
    [[maybe_unused]] ssize_t n =
        ::write(wakeFd_, &one, sizeof(one));
}

} // namespace serve
} // namespace tw
