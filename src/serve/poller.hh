/**
 * @file
 * The async front door's engine room: an epoll event loop plus
 * per-connection nonblocking NDJSON buffers.
 *
 * twserved's worker processes keep PR 4's thread-per-session model —
 * a worker holds a handful of long-lived connections (the router,
 * the odd twctl), and a blocking thread per session is the simplest
 * correct thing. The ROUTER is different: it fronts every client of
 * the pool, so connection count is the resource to defend. One
 * poller thread multiplexes all of them: accept, read, write, and
 * worker-link traffic are all edge events on one epoll set, and a
 * connection costs two buffers instead of a stack.
 *
 * Design rules:
 *
 *  - Level-triggered epoll. EPOLLOUT is registered only while a
 *    connection has unflushed output (wantWrite), so an idle
 *    connection never spins the loop.
 *  - All Conn state is owned by the loop thread; there are no locks
 *    here. Cross-thread control (stop requests, test pokes) goes
 *    through wake(), an eventfd the loop always watches.
 *  - Writes NEVER block and never drop frames silently: queueLine
 *    appends to the out buffer, flushOut sends what the socket
 *    accepts, and a peer that stops reading past kMaxBufferBytes is
 *    cut (the router cannot let one wedged client pin row memory
 *    forever — the same policy SO_SNDTIMEO implements for the
 *    blocking server, expressed in buffer space instead of time).
 *  - Reads are incremental: readReady() pulls what the socket has
 *    and extractLine() hands back complete NDJSON lines, enforcing
 *    the same 8 MiB line cap as serve::LineReader.
 */

#ifndef TW_SERVE_POLLER_HH
#define TW_SERVE_POLLER_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace tw
{
namespace serve
{

/** Make @p fd nonblocking (O_NONBLOCK); false on fcntl failure. */
bool setNonBlocking(int fd);

/**
 * Nonblocking connection state: one fd plus buffered input (line
 * extraction) and buffered output (flush on writability). Used for
 * both router client connections and router->worker links.
 */
struct Conn
{
    /** Hard cap on EITHER buffer: a peer that neither reads its
     *  output nor frames its input is cut. Large enough for any
     *  experiment's full row stream to sit briefly queued. */
    static constexpr std::size_t kMaxBufferBytes = 256u << 20;

    /** Longest accepted input line (mirrors LineReader). */
    static constexpr std::size_t kMaxLineBytes = 8u << 20;

    int fd = -1;
    bool wantWrite = false; //!< EPOLLOUT currently needed
    bool dead = false;      //!< peer gone or protocol violation

    std::string in;
    std::size_t inPos = 0;
    std::string out;
    std::size_t outPos = 0;

    /** Queue one already-'\n'-terminated (or not — '\n' is added)
     *  frame; marks dead on buffer overflow. Does NOT write to the
     *  socket — call flushOut (or let the loop do it on EPOLLOUT). */
    void queueLine(const std::string &line);

    /** Queue a raw pre-framed byte run (batch of lines). */
    void queueBytes(const char *data, std::size_t len);

    /**
     * Write as much buffered output as the socket accepts right
     * now. Returns false (and sets dead) on a hard error; updates
     * wantWrite to whether output remains. Each call makes at most
     * a handful of send() syscalls regardless of how many frames
     * were queued — this is the row-batching edge.
     */
    bool flushOut();

    /**
     * Pull whatever the socket has into the input buffer.
     * Returns false when the peer closed or errored (sets dead).
     * EAGAIN is a clean true.
     */
    bool readReady();

    /** Extract the next complete line (without '\n') from the
     *  input buffer; false when none is buffered. Sets dead when
     *  an unterminated line exceeds kMaxLineBytes. */
    bool extractLine(std::string &line);

    std::size_t pendingOut() const { return out.size() - outPos; }

    /** Close the fd (idempotent). */
    void closeFd();
};

/**
 * Thin epoll wrapper. Register fds with an opaque tag; wait()
 * returns (tag, events) pairs. A built-in eventfd lets other
 * threads wake a blocked wait().
 */
class Poller
{
  public:
    struct Event
    {
        void *tag = nullptr;
        bool readable = false;
        bool writable = false;
        bool hangup = false;
    };

    Poller();
    ~Poller();

    Poller(const Poller &) = delete;
    Poller &operator=(const Poller &) = delete;

    bool valid() const { return epfd_ >= 0; }

    /** Watch @p fd. @p tag comes back in Event; @p want_write adds
     *  EPOLLOUT. False on epoll_ctl failure. */
    bool add(int fd, void *tag, bool want_write = false);
    bool mod(int fd, void *tag, bool want_write);
    void del(int fd);

    /**
     * Block up to @p timeout_ms (-1 = forever) and fill @p events.
     * The wake() eventfd is serviced internally (drained, never
     * surfaced). Returns false on a hard epoll error.
     */
    bool wait(int timeout_ms, std::vector<Event> &events);

    /** Wake a blocked wait() from any thread (async-signal-ish
     *  safe: one write on an eventfd). */
    void wake();

  private:
    int epfd_ = -1;
    int wakeFd_ = -1;
};

} // namespace serve
} // namespace tw

#endif // TW_SERVE_POLLER_HH
