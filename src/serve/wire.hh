/**
 * @file
 * Wire-level plumbing of the experiment service: newline-delimited
 * JSON framing over a connected socket.
 *
 * The protocol (grammar in DESIGN.md §9) is symmetric at this
 * layer: each side writes complete single-line JSON objects
 * terminated by '\n' and reads the peer's lines back. Requests
 * carry an "op" and a client-chosen "id"; every response echoes the
 * "id" and tags itself with an "ev" (row/done/error/stats/ok/pong),
 * so responses to interleaved requests are attributable.
 *
 * Writes use send(MSG_NOSIGNAL): a vanished client must surface as
 * an error return to the worker streaming its rows, never as
 * SIGPIPE killing the daemon.
 */

#ifndef TW_SERVE_WIRE_HH
#define TW_SERVE_WIRE_HH

#include <string>

#include "base/json.hh"

namespace tw
{
namespace serve
{

/** Machine-readable error codes of "ev":"error" responses. */
inline constexpr const char *kErrBadRequest = "bad_request";
inline constexpr const char *kErrOverloaded = "overloaded";
inline constexpr const char *kErrShuttingDown = "shutting_down";

/** Write all of @p data to @p fd (EINTR-safe, SIGPIPE-free). */
bool sendAll(int fd, const char *data, std::size_t len);

/** Write one '\n'-terminated frame. */
bool sendLine(int fd, const std::string &line);

/** dump() + newline + send, the standard response path. */
bool sendJsonLine(int fd, const Json &j);

/**
 * Buffered '\n'-delimited reader over one socket.
 */
class LineReader
{
  public:
    enum class Status { Line, Eof, Error };

    /** Longest accepted line. A peer streaming bytes with no
     *  newline (the listener is unauthenticated on loopback) must
     *  hit a bound, not exhaust memory; 8 MiB is orders of
     *  magnitude above any legitimate frame. */
    static constexpr std::size_t kMaxLineBytes = 8u << 20;

    LineReader() = default;
    explicit LineReader(int fd) : fd_(fd) {}

    void reset(int fd);

    /**
     * Block for the next complete line (without the newline).
     * Eof after the final byte of an exactly-terminated stream;
     * a non-empty partial line at EOF is reported as Error (a
     * truncated frame is a protocol violation, not a message), and
     * so is an unterminated line past kMaxLineBytes.
     */
    Status readLine(std::string &out);

  private:
    int fd_ = -1;
    std::string buf_;
    std::size_t pos_ = 0; //!< scan offset into buf_
};

/** Connect a SOCK_STREAM unix-domain socket; -1 + @p err on
 *  failure. */
int connectUnixSocket(const std::string &path, std::string *err);

/** Connect TCP to @p host:@p port; -1 + @p err on failure. */
int connectTcpSocket(const std::string &host, int port,
                     std::string *err);

/** Bind + listen a unix-domain socket (unlinking any stale file at
 *  @p path); -1 + @p err on failure. */
int listenUnixSocket(const std::string &path, std::string *err);

/** Bind + listen TCP on @p bind_addr:@p port; -1 + @p err. */
int listenTcpSocket(const std::string &bind_addr, int port,
                    std::string *err);

} // namespace serve
} // namespace tw

#endif // TW_SERVE_WIRE_HH
