/**
 * @file
 * Client side of the experiment service: connect, submit a sweep,
 * and fold the streamed rows back into RunOutcomes.
 *
 * This is the library twctl and bench_serve are thin shells over.
 * One Client owns one connection; it is NOT thread-safe (one
 * request in flight at a time — the protocol allows interleaving by
 * id, but no caller here needs it, and a sequential client keeps
 * the row callback ordering trivial to reason about).
 */

#ifndef TW_SERVE_CLIENT_HH
#define TW_SERVE_CLIENT_HH

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "base/json.hh"
#include "harness/runner.hh"
#include "serve/wire.hh"

namespace tw
{
namespace serve
{

/** One streamed trial result. */
struct SweepRow
{
    std::uint64_t trial = 0;
    std::uint64_t seed = 0;
    bool cached = false;
    /** Deadline-expired rows carry no outcome. */
    bool expired = false;
    double hostSeconds = 0.0;
    RunOutcome outcome;
};

/** One streamed row of a served registry experiment. */
struct ServedExperimentRow
{
    std::string unit;
    std::uint64_t seq = 0;
    std::uint64_t trial = 0;
    std::uint64_t seed = 0;
    bool cached = false;
    bool expired = false;
    double hostSeconds = 0.0;
    RunOutcome outcome;
};

/** Everything a run_experiment returned. Rows are sorted by seq —
 *  the registry's deterministic job order — so rendering them with
 *  experimentRowJson reproduces a local `bench_driver --run --rows`
 *  stream byte for byte. */
struct ExperimentResult
{
    bool ok = false;
    std::string errorCode;
    std::string errorMsg;

    std::string experiment;
    std::vector<ServedExperimentRow> rows;
    std::uint64_t cached = 0;
    std::uint64_t computed = 0;
    std::uint64_t expired = 0;
};

/** Everything a submit returned. */
struct SweepResult
{
    bool ok = false;
    /** kErrOverloaded / kErrShuttingDown / kErrBadRequest / "" on
     *  transport failure. */
    std::string errorCode;
    std::string errorMsg;

    std::vector<SweepRow> rows;
    std::uint64_t cached = 0;
    std::uint64_t computed = 0;
    std::uint64_t expired = 0;

    /** Outcomes indexed by trial (expired rows left
     *  default-constructed). Size = max trial index + 1. */
    std::vector<RunOutcome> outcomes() const;
};

class Client
{
  public:
    Client() = default;
    ~Client();

    Client(const Client &) = delete;
    Client &operator=(const Client &) = delete;

    bool connectUnix(const std::string &path,
                     std::string *err = nullptr);
    bool connectTcp(const std::string &host, int port,
                    std::string *err = nullptr);
    bool connected() const { return fd_ >= 0; }
    void disconnect();

    /**
     * Submit @p spec over @p seeds and collect every row until the
     * server's "done" (or an error). @p on_row, when set, sees each
     * row as it arrives — rows appear in server completion order,
     * not trial order.
     */
    SweepResult submitSweep(
        const RunSpec &spec,
        const std::vector<std::uint64_t> &seeds,
        bool with_slowdown = true,
        std::optional<std::uint64_t> deadline_ms = std::nullopt,
        const std::function<void(const SweepRow &)> &on_row = {});

    /**
     * Run registry experiment @p name on the server (the
     * run_experiment op) and collect every row. @p scale_div of 0
     * lets the server resolve the experiment's own scale.
     */
    ExperimentResult runExperiment(const std::string &name,
                                   unsigned scale_div = 0);

    /** Fetch the admin stats object into @p out. */
    bool stats(Json &out, std::string *err = nullptr);

    /**
     * Fetch the process-wide metric registry. With @p prom false,
     * @p out is the structured snapshot
     * {"counters":..,"gauges":..,"histograms":..} and @p prom_text
     * is untouched; with @p prom true, @p prom_text receives the
     * Prometheus text exposition instead.
     */
    bool metrics(Json &out, std::string *prom_text,
                 bool prom = false, std::string *err = nullptr);

    bool flushCache(std::string *err = nullptr);

    /** Ask the server to drain and exit. */
    bool shutdownServer(std::string *err = nullptr);

    bool ping(std::string *err = nullptr);

  private:
    /** Send one request and read frames until a terminal event. */
    bool simpleOp(const char *op, const char *expect_ev, Json &resp,
                  std::string *err);
    /** Like simpleOp, but the caller supplies extra request fields
     *  (op/id are filled in here). */
    bool requestResponse(Json req, const char *expect_ev,
                         Json &resp, std::string *err);

    int fd_ = -1;
    LineReader reader_;
    std::uint64_t nextId_ = 1;
};

} // namespace serve
} // namespace tw

#endif // TW_SERVE_CLIENT_HH
