/**
 * @file
 * The experiment service's result cache: an LRU over canonical
 * cache keys (harness/specio.hh) holding complete RunOutcomes.
 *
 * A sweep resubmitted by any client — the "resampling is just a new
 * trap pattern" monitoring loop of the paper's Section 5, or the
 * near-identical configuration points a parameter sweep emits
 * [Bueno et al.] — is answered from here without touching the
 * simulator. Keys are exact canonical bytes, so a hit is guaranteed
 * to return a RunOutcome bit-identical to recomputation (the
 * simulator is deterministic in spec+seed; the smoke test asserts
 * this end to end).
 *
 * Thread-safe; one mutex. Lookup copies the outcome out under the
 * lock — RunOutcome is a few hundred bytes, and copying beats
 * handing references to evictable storage.
 */

#ifndef TW_SERVE_RESULT_CACHE_HH
#define TW_SERVE_RESULT_CACHE_HH

#include <cstdint>
#include <mutex>
#include <string>

#include "base/json.hh"
#include "base/lru_map.hh"
#include "harness/runner.hh"

namespace tw
{
namespace serve
{

class ResultCache
{
  public:
    explicit ResultCache(std::size_t capacity) : map_(capacity) {}

    /** Copy the cached outcome for @p key into @p out; counts a
     *  hit or a miss. */
    bool
    lookup(const std::string &key, RunOutcome &out)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (RunOutcome *hit = map_.find(key)) {
            ++hits_;
            out = *hit;
            return true;
        }
        ++misses_;
        return false;
    }

    void
    insert(const std::string &key, const RunOutcome &outcome)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        ++insertions_;
        map_.insert(key, outcome);
    }

    /** Drop everything (the admin flush-cache op). */
    void
    flush()
    {
        std::lock_guard<std::mutex> lock(mutex_);
        map_.clear();
        ++flushes_;
    }

    struct Stats
    {
        std::size_t size = 0;
        std::size_t capacity = 0;
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;
        std::uint64_t insertions = 0;
        std::uint64_t evictions = 0;
        std::uint64_t flushes = 0;
    };

    Stats
    stats() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        Stats s;
        s.size = map_.size();
        s.capacity = map_.capacity();
        s.hits = hits_;
        s.misses = misses_;
        s.insertions = insertions_;
        s.evictions = map_.evictions();
        s.flushes = flushes_;
        return s;
    }

    /** Stats as a Json object (the `stats` admin payload). */
    Json
    statsJson() const
    {
        Stats s = stats();
        Json j = Json::object();
        j.set("size", Json::number(static_cast<std::uint64_t>(s.size)));
        j.set("capacity",
              Json::number(static_cast<std::uint64_t>(s.capacity)));
        j.set("hits", Json::number(s.hits));
        j.set("misses", Json::number(s.misses));
        j.set("insertions", Json::number(s.insertions));
        j.set("evictions", Json::number(s.evictions));
        j.set("flushes", Json::number(s.flushes));
        return j;
    }

  private:
    mutable std::mutex mutex_;
    LruMap<std::string, RunOutcome> map_;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
    std::uint64_t insertions_ = 0;
    std::uint64_t flushes_ = 0;
};

} // namespace serve
} // namespace tw

#endif // TW_SERVE_RESULT_CACHE_HH
