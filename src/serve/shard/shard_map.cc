#include "serve/shard/shard_map.hh"

#include <algorithm>
#include <string_view>

namespace tw
{
namespace serve
{

namespace
{

/** FNV-1a, locally: the ring must not depend on std::hash (which
 *  varies by libc++ and would break cross-process determinism). */
std::uint64_t
fnv(std::string_view bytes)
{
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (unsigned char c : bytes) {
        h ^= c;
        h *= 0x100000001b3ull;
    }
    return h;
}

/** splitmix64 finalizer: FNV's low bits avalanche poorly for short
 *  inputs like "name#7"; this spreads every input bit over the
 *  whole word so vnode points land uniformly on the circle. */
std::uint64_t
mix(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

} // anonymous namespace

ShardMap::ShardMap(const std::vector<std::string> &members,
                   unsigned vnodes)
    : vnodes_(vnodes ? vnodes : 1)
{
    members_ = members;
    std::sort(members_.begin(), members_.end());
    members_.erase(std::unique(members_.begin(), members_.end()),
                   members_.end());
    rebuild();
}

std::uint64_t
ShardMap::pointHash(const std::string &m, unsigned v)
{
    std::string tagged = m;
    tagged.push_back('#');
    tagged += std::to_string(v);
    return mix(fnv(tagged));
}

void
ShardMap::add(const std::string &member)
{
    auto it = std::lower_bound(members_.begin(), members_.end(),
                               member);
    if (it != members_.end() && *it == member)
        return;
    members_.insert(it, member);
    rebuild();
}

void
ShardMap::remove(const std::string &member)
{
    auto it = std::lower_bound(members_.begin(), members_.end(),
                               member);
    if (it == members_.end() || *it != member)
        return;
    members_.erase(it);
    rebuild();
}

bool
ShardMap::contains(const std::string &member) const
{
    return std::binary_search(members_.begin(), members_.end(),
                              member);
}

void
ShardMap::rebuild()
{
    ring_.clear();
    ring_.reserve(members_.size() * vnodes_);
    for (std::uint32_t m = 0;
         m < static_cast<std::uint32_t>(members_.size()); ++m)
        for (unsigned v = 0; v < vnodes_; ++v)
            ring_.push_back({pointHash(members_[m], v), m});
    std::sort(ring_.begin(), ring_.end());
}

std::size_t
ShardMap::ownerIndex(std::uint64_t key) const
{
    if (ring_.empty())
        return members_.size();
    // First point clockwise from the key; wrap to the ring start.
    auto it = std::lower_bound(
        ring_.begin(), ring_.end(), key,
        [](const Point &p, std::uint64_t k) { return p.hash < k; });
    if (it == ring_.end())
        it = ring_.begin();
    return it->member;
}

const std::string &
ShardMap::owner(std::uint64_t key) const
{
    static const std::string empty;
    std::size_t idx = ownerIndex(key);
    return idx < members_.size() ? members_[idx] : empty;
}

} // namespace serve
} // namespace tw
