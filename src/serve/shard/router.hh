/**
 * @file
 * The pool's front door: one async router process that speaks the
 * ordinary twserved protocol to clients and fans every request out
 * over a consistent-hash ring of ordinary twserved workers.
 *
 * Clients do not change AT ALL: twctl, serve::Client, and anything
 * else speaking NDJSON submit/run_experiment sees one server with a
 * bigger queue and a bigger cache. Behind the socket:
 *
 *   client ──► Router (epoll loop, serve::Poller)
 *                │ enumerate trials, fingerprint each
 *                │ (harness/specio cacheKey bytes), owner =
 *                │ ShardMap ring lookup
 *                ├─► phase 1: `reserve` N slots on EVERY involved
 *                │            shard — all-or-nothing admission
 *                │            survives distribution: any shard
 *                │            rejecting releases the others and the
 *                │            client sees one typed error
 *                ├─► phase 2: `run_jobs` with the reservation; rows
 *                │            stream back tagged with seq
 *                └─◄ streaming merge: a per-request reorder buffer
 *                    emits rows in seq order, so a pooled sweep is
 *                    bit-identical — order included — to the
 *                    single-node run
 *
 * Caches stay SHARD-LOCAL: the ring routes by the same fingerprint
 * the ResultCache keys on, so each shard exclusively owns its slice
 * of the key space and a resubmitted sweep is answered entirely
 * from the shards' caches with no invalidation traffic. `stats`
 * fans out and aggregates per-shard hit/miss counts.
 *
 * Failure model (DESIGN.md §14 has the matrix): row streaming is
 * optimistic — once phase 2 commits, rows flow as shards produce
 * them. A shard that dies or drains mid-request fails the request
 * with a typed error (`shard_failed` / the shard's own code), later
 * rows for it are dropped, and the shard leaves the ring (minimal
 * remap) until a health-checked reconnect brings it back. Committed
 * survivors finish server-side and warm their caches for the retry.
 */

#ifndef TW_SERVE_SHARD_ROUTER_HH
#define TW_SERVE_SHARD_ROUTER_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <list>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "base/json.hh"
#include "serve/poller.hh"
#include "serve/shard/shard_map.hh"

namespace tw
{
namespace serve
{

/** Error code for a request that lost a shard mid-flight (link
 *  death or an empty ring). Worker-originated rejections keep the
 *  worker's own code (`overloaded`, `shutting_down`). */
inline constexpr const char *kErrShardFailed = "shard_failed";

struct RouterConfig
{
    /** Front-door unix socket (required). */
    std::string socketPath;

    /** Also listen on TCP when nonzero. */
    int tcpPort = 0;
    std::string tcpBind = "127.0.0.1";

    /** Worker addresses — unix socket paths (contain '/') or
     *  "host:port". The address STRING is the ring member name, so
     *  router and `twctl shard-owner --pool` agree on ownership. */
    std::vector<std::string> shards;

    /** Virtual nodes per shard on the ring. */
    unsigned vnodes = ShardMap::kDefaultVnodes;

    /** Health-check / reconnect cadence. A worker that misses two
     *  consecutive pings is cut from the ring. */
    unsigned healthIntervalMs = 1000;

    bool verbose = false;
};

class Router
{
  public:
    explicit Router(RouterConfig cfg);
    ~Router();

    Router(const Router &) = delete;
    Router &operator=(const Router &) = delete;

    /** Bind the front door and start the loop thread; false + @p
     *  err on bind failure. Worker links come up asynchronously —
     *  use `twctl ping --retry` (or submit and let admission
     *  answer) rather than assuming instant connectivity. */
    bool start(std::string *err = nullptr);

    /** Begin graceful drain: stop accepting, reject new work with
     *  shutting_down, let in-flight requests finish. Idempotent;
     *  callable from signal-watcher threads. */
    void requestStop();

    /** Block until a requested stop has fully drained. */
    void join();

    /** requestStop() + join(). */
    void stop();

    bool stopping() const { return stopping_.load(); }
    const RouterConfig &config() const { return cfg_; }

    /** Live (ring-member) worker count — test/ops visibility,
     *  updated by the loop thread. */
    std::size_t upShardCount() const { return upShards_.load(); }

  private:
    struct Io;
    struct Listener;
    struct ClientConn;
    struct WorkerLink;
    struct Pending;
    struct AdminFan;
    struct PlannedJob;

    /** What an outstanding worker op (keyed by its router-chosen
     *  request id) was for, so the reply — or the link's death —
     *  settles the right piece of state. */
    struct OpRef
    {
        enum class Kind
        {
            Reserve,
            Run,
            Release,
            Ping,
            Stats,
            Flush
        };
        Kind kind = Kind::Ping;
        WorkerLink *link = nullptr;
        Pending *pending = nullptr;
        std::size_t part = 0;
        AdminFan *fan = nullptr;
    };

    void loop();
    void tick();
    bool connectLink(WorkerLink &link);
    void markLinkDown(WorkerLink &link, const char *why);
    void flushConn(Io *io, Conn &conn, int fd);
    void acceptReady(Listener &l);
    void clientReadable(ClientConn *c);
    void workerReadable(WorkerLink *w);
    void closeClient(ClientConn *c);
    void handleClientLine(ClientConn *c, const std::string &line);
    void handleWorkerLine(WorkerLink *w, const std::string &line);
    void sendToClient(ClientConn *c, const Json &j);
    void sendClientError(ClientConn *c, std::uint64_t id,
                         const char *code, const std::string &msg);
    std::uint64_t sendWorkerOp(WorkerLink &w, Json req, OpRef ref);

    void handleSubmit(ClientConn *c, std::uint64_t id,
                      const Json &req);
    void handleRunExperiment(ClientConn *c, std::uint64_t id,
                             const Json &req);
    void startRequest(ClientConn *c, std::uint64_t id,
                      std::string experiment,
                      std::vector<PlannedJob> jobs,
                      const Json *deadline_ms);
    void startFan(ClientConn *c, std::uint64_t id, bool stats);

    void commitPending(Pending &p);
    void failPending(Pending &p, const char *code,
                     const std::string &msg);
    void partTerminal(Pending &p);
    void finishPending(Pending &p);
    void emitReadyRows(Pending &p);
    void abandonPendingsOf(ClientConn *c);
    void finishFan(AdminFan &f);

    RouterConfig cfg_;
    ShardMap map_;
    Poller poller_;

    int unixFd_ = -1;
    int tcpFd_ = -1;

    std::atomic<bool> stopping_{false};
    std::atomic<bool> started_{false};
    std::atomic<std::size_t> upShards_{0};
    std::thread thread_;
    std::chrono::steady_clock::time_point started_at_;

    // Everything below is owned by the loop thread.
    std::vector<std::unique_ptr<Listener>> listeners_;
    std::list<std::unique_ptr<ClientConn>> clients_;
    std::vector<std::unique_ptr<WorkerLink>> links_;
    std::list<std::unique_ptr<Pending>> pendings_;
    std::list<std::unique_ptr<AdminFan>> fans_;
    std::unordered_map<std::uint64_t, OpRef> ops_;
    std::uint64_t nextOpId_ = 1;

    Json routerStatsJson() const;
};

} // namespace serve
} // namespace tw

#endif // TW_SERVE_SHARD_ROUTER_HH
