#include "serve/shard/router.hh"

#include <cerrno>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <map>
#include <optional>
#include <set>
#include <utility>

#include "base/logging.hh"
#include "harness/experiment.hh"
#include "harness/specio.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "serve/wire.hh"

namespace tw
{
namespace serve
{

using Clock = std::chrono::steady_clock;

namespace
{

/** router.* counters (process-wide; the router runs one per
 *  process). Names are asserted prom-mangleable by tests/obs. */
struct RouterCounters
{
    obs::Counter submits =
        obs::registry().counter("router.requests.submits");
    obs::Counter runExperiments =
        obs::registry().counter("router.requests.run_experiments");
    obs::Counter badRequests =
        obs::registry().counter("router.requests.bad");
    obs::Counter rejected =
        obs::registry().counter("router.requests.rejected");
    obs::Counter rowsMerged =
        obs::registry().counter("router.rows.merged");
    obs::Counter rowsBuffered =
        obs::registry().counter("router.rows.buffered");
    obs::Counter reserves =
        obs::registry().counter("router.fanout.reserves");
    obs::Counter commits =
        obs::registry().counter("router.fanout.commits");
    obs::Counter releases =
        obs::registry().counter("router.fanout.releases");
    obs::Counter shardFailures =
        obs::registry().counter("router.shards.failures");
    obs::Counter clientsAccepted =
        obs::registry().counter("router.clients.accepted");
    obs::Counter healthPings =
        obs::registry().counter("router.health.pings");
};

RouterCounters &
rc()
{
    static RouterCounters c;
    return c;
}

} // anonymous namespace

/** Common epoll-tag head: every registered pointer starts with a
 *  Type so wait() results dispatch without RTTI. */
struct Router::Io
{
    enum class Type { Listen, Client, Worker };
    Type type;
    explicit Io(Type t) : type(t) {}
};

struct Router::Listener : Io
{
    Listener() : Io(Type::Listen) {}
    int fd = -1;
};

struct Router::ClientConn : Io
{
    ClientConn() : Io(Type::Client) {}
    Conn conn;
    std::set<Pending *> pendings;
    std::set<AdminFan *> fans;
};

struct Router::WorkerLink : Io
{
    WorkerLink() : Io(Type::Worker) {}
    std::string name; //!< address string = ring member name
    bool isUnix = true;
    std::string host;
    int port = 0;
    Conn conn;
    bool up = false;
    bool awaitingPong = false;
};

/** One trial, planned and fingerprinted at the front door. */
struct Router::PlannedJob
{
    std::string specText;
    std::uint64_t fingerprint = 0;
    std::uint64_t seed = 0;
    bool slowdown = true;
    std::string unit;
    std::uint64_t seq = 0;
    std::uint64_t trial = 0;
};

/** One client request fanned over the ring: per-shard two-phase
 *  state plus the seq reorder buffer of the streaming merge. */
struct Router::Pending
{
    ClientConn *client = nullptr; //!< null once the client is gone
    std::uint64_t clientId = 0;
    std::string experiment;
    std::optional<std::uint64_t> deadlineMs;

    struct Part
    {
        WorkerLink *link = nullptr;
        std::vector<PlannedJob> jobs;
        std::uint64_t reservation = 0;
        enum class State
        {
            Reserving,
            Reserved,
            Running,
            Done,
            Failed
        } state = State::Reserving;
    };
    std::vector<Part> parts;
    std::size_t terminal = 0;
    bool committed = false;
    bool failed = false;

    /** seq -> re-tagged framed row line, drained in order. */
    std::map<std::uint64_t, std::string> buffered;
    std::uint64_t nextSeq = 0;
    std::uint64_t totalJobs = 0;

    std::uint64_t rows = 0, cached = 0, computed = 0, expired = 0;
};

/** One stats/flush-cache fan-out over every live shard. */
struct Router::AdminFan
{
    ClientConn *client = nullptr;
    std::uint64_t clientId = 0;
    bool stats = true; //!< else flush-cache
    unsigned outstanding = 0;
    Json shards = Json::object();
};

Router::Router(RouterConfig cfg) : cfg_(std::move(cfg)), map_(cfg_.vnodes)
{
    for (const std::string &addr : cfg_.shards) {
        auto link = std::make_unique<WorkerLink>();
        link->name = addr;
        if (addr.find('/') != std::string::npos) {
            link->isUnix = true;
        } else {
            link->isUnix = false;
            std::size_t colon = addr.rfind(':');
            if (colon != std::string::npos) {
                link->host = addr.substr(0, colon);
                link->port = std::atoi(addr.c_str() + colon + 1);
            }
        }
        links_.push_back(std::move(link));
    }
}

Router::~Router()
{
    stop();
}

bool
Router::start(std::string *err)
{
    if (started_.load()) {
        if (err)
            *err = "router already started";
        return false;
    }
    if (cfg_.socketPath.empty()) {
        if (err)
            *err = "no socket path configured";
        return false;
    }
    if (links_.empty()) {
        if (err)
            *err = "no shards configured";
        return false;
    }
    if (!poller_.valid()) {
        if (err)
            *err = "epoll unavailable";
        return false;
    }
    unixFd_ = listenUnixSocket(cfg_.socketPath, err);
    if (unixFd_ < 0)
        return false;
    if (cfg_.tcpPort != 0) {
        tcpFd_ = listenTcpSocket(cfg_.tcpBind, cfg_.tcpPort, err);
        if (tcpFd_ < 0) {
            ::close(unixFd_);
            unixFd_ = -1;
            ::unlink(cfg_.socketPath.c_str());
            return false;
        }
    }
    {
        auto l = std::make_unique<Listener>();
        l->fd = unixFd_;
        setNonBlocking(l->fd);
        poller_.add(l->fd, static_cast<Io *>(l.get()));
        listeners_.push_back(std::move(l));
    }
    if (tcpFd_ >= 0) {
        auto l = std::make_unique<Listener>();
        l->fd = tcpFd_;
        setNonBlocking(l->fd);
        poller_.add(l->fd, static_cast<Io *>(l.get()));
        listeners_.push_back(std::move(l));
    }
    started_.store(true);
    started_at_ = Clock::now();
    thread_ = std::thread([this] { loop(); });
    if (cfg_.verbose)
        std::fprintf(stderr,
                     "twserved: routing %s over %zu shards\n",
                     cfg_.socketPath.c_str(), links_.size());
    return true;
}

void
Router::requestStop()
{
    stopping_.store(true);
    poller_.wake();
}

void
Router::join()
{
    if (thread_.joinable())
        thread_.join();
}

void
Router::stop()
{
    if (!started_.load())
        return;
    requestStop();
    join();
    started_.store(false);
}

// ---------------------------------------------------------------
// Event loop
// ---------------------------------------------------------------

void
Router::loop()
{
    // Connect whatever is already up before serving anything.
    tick();

    std::vector<Poller::Event> events;
    auto interval =
        std::chrono::milliseconds(std::max(1u, cfg_.healthIntervalMs));
    Clock::time_point lastTick = Clock::now();
    bool listenersClosed = false;

    while (true) {
        if (stopping_.load() && !listenersClosed) {
            for (auto &l : listeners_) {
                poller_.del(l->fd);
                ::close(l->fd);
                l->fd = -1;
            }
            unixFd_ = -1;
            tcpFd_ = -1;
            ::unlink(cfg_.socketPath.c_str());
            listenersClosed = true;
        }
        if (stopping_.load() && pendings_.empty() && fans_.empty())
            break;

        if (Clock::now() - lastTick >= interval) {
            tick();
            lastTick = Clock::now();
        }

        poller_.wait(50, events);
        for (const Poller::Event &ev : events) {
            Io *io = static_cast<Io *>(ev.tag);
            switch (io->type) {
            case Io::Type::Listen:
                acceptReady(*static_cast<Listener *>(io));
                break;
            case Io::Type::Client: {
                auto *c = static_cast<ClientConn *>(io);
                if (ev.writable)
                    flushConn(io, c->conn, c->conn.fd);
                if (ev.readable)
                    clientReadable(c);
                break;
            }
            case Io::Type::Worker: {
                auto *w = static_cast<WorkerLink *>(io);
                if (ev.writable)
                    flushConn(io, w->conn, w->conn.fd);
                if (ev.readable)
                    workerReadable(w);
                break;
            }
            }
        }

        // Deferred teardown: fds close only here, never mid-batch,
        // so stale tags in `events` cannot dangle.
        for (auto it = clients_.begin(); it != clients_.end();) {
            if ((*it)->conn.dead) {
                ClientConn *c = it->get();
                ++it;
                closeClient(c);
            } else {
                ++it;
            }
        }
        for (auto &l : links_)
            if (l->conn.dead)
                markLinkDown(*l, "connection lost");
    }

    // Drained (or abandoned): tear everything down.
    for (auto &c : clients_) {
        if (c->conn.fd >= 0) {
            poller_.del(c->conn.fd);
            c->conn.closeFd();
        }
    }
    clients_.clear();
    for (auto &l : links_)
        if (l->conn.fd >= 0) {
            poller_.del(l->conn.fd);
            l->conn.closeFd();
        }
    if (!listenersClosed) {
        for (auto &l : listeners_)
            if (l->fd >= 0) {
                poller_.del(l->fd);
                ::close(l->fd);
            }
        ::unlink(cfg_.socketPath.c_str());
    }
    if (cfg_.verbose)
        std::fprintf(stderr, "twserved: router drained\n");
}

void
Router::tick()
{
    for (auto &lp : links_) {
        WorkerLink &l = *lp;
        if (!l.up) {
            if (!stopping_.load())
                connectLink(l);
            continue;
        }
        if (l.awaitingPong) {
            // Two intervals without a pong: the worker is wedged,
            // not just slow — cut it from the ring.
            markLinkDown(l, "health check timeout");
            continue;
        }
        Json ping = Json::object();
        ping.set("op", Json::str("ping"));
        OpRef ref;
        ref.kind = OpRef::Kind::Ping;
        ref.link = &l;
        sendWorkerOp(l, std::move(ping), ref);
        l.awaitingPong = true;
        rc().healthPings.inc();
    }
}

bool
Router::connectLink(WorkerLink &link)
{
    std::string err;
    int fd = link.isUnix
                 ? connectUnixSocket(link.name, &err)
                 : connectTcpSocket(link.host, link.port, &err);
    if (fd < 0)
        return false;
    setNonBlocking(fd);
    link.conn = Conn{};
    link.conn.fd = fd;
    link.awaitingPong = false;
    if (!poller_.add(fd, static_cast<Io *>(&link))) {
        ::close(fd);
        link.conn.fd = -1;
        return false;
    }
    link.up = true;
    upShards_.fetch_add(1);
    map_.add(link.name);
    if (cfg_.verbose)
        std::fprintf(stderr, "twserved: shard %s up (%zu in ring)\n",
                     link.name.c_str(), map_.size());
    return true;
}

void
Router::markLinkDown(WorkerLink &link, const char *why)
{
    if (link.conn.fd >= 0) {
        poller_.del(link.conn.fd);
        link.conn.closeFd();
    }
    link.conn = Conn{};
    link.awaitingPong = false;
    if (link.up) {
        link.up = false;
        upShards_.fetch_sub(1);
        map_.remove(link.name);
        rc().shardFailures.inc();
        if (cfg_.verbose)
            std::fprintf(stderr,
                         "twserved: shard %s down (%s, %zu left)\n",
                         link.name.c_str(), why, map_.size());
    }

    // Settle every op that was in flight on this link. Handling one
    // can mutate ops_ (releases, pending teardown), so restart the
    // scan after each.
    while (true) {
        auto it = ops_.begin();
        for (; it != ops_.end(); ++it)
            if (it->second.link == &link)
                break;
        if (it == ops_.end())
            return;
        OpRef ref = it->second;
        ops_.erase(it);
        switch (ref.kind) {
        case OpRef::Kind::Reserve:
        case OpRef::Kind::Run: {
            Pending &p = *ref.pending;
            Pending::Part &part = p.parts[ref.part];
            if (part.state != Pending::Part::State::Done
                && part.state != Pending::Part::State::Failed) {
                part.state = Pending::Part::State::Failed;
                ++p.terminal;
            }
            failPending(p, kErrShardFailed,
                        "shard " + link.name + " failed");
            partTerminal(p);
            break;
        }
        case OpRef::Kind::Stats:
        case OpRef::Kind::Flush:
            if (ref.fan && ref.fan->outstanding > 0) {
                --ref.fan->outstanding;
                finishFan(*ref.fan);
            }
            break;
        case OpRef::Kind::Ping:
        case OpRef::Kind::Release:
            break;
        }
    }
}

void
Router::flushConn(Io *io, Conn &conn, int fd)
{
    if (conn.dead || fd < 0)
        return;
    conn.flushOut();
    if (!conn.dead)
        poller_.mod(fd, io, conn.wantWrite);
}

void
Router::acceptReady(Listener &l)
{
    while (true) {
        int fd = ::accept(l.fd, nullptr, nullptr);
        if (fd < 0)
            return; // EAGAIN (or transient) — poll again later
        setNonBlocking(fd);
        auto c = std::make_unique<ClientConn>();
        c->conn.fd = fd;
        if (!poller_.add(fd, static_cast<Io *>(c.get()))) {
            ::close(fd);
            continue;
        }
        rc().clientsAccepted.inc();
        clients_.push_back(std::move(c));
    }
}

void
Router::clientReadable(ClientConn *c)
{
    if (!c->conn.readReady()) {
        // Dead; the post-batch reaper calls closeClient.
    }
    std::string line;
    while (!c->conn.dead && c->conn.extractLine(line))
        if (!line.empty())
            handleClientLine(c, line);
    flushConn(static_cast<Io *>(c), c->conn, c->conn.fd);
}

void
Router::workerReadable(WorkerLink *w)
{
    if (!w->conn.readReady()) {
        // Dead; the post-batch reaper calls markLinkDown.
    }
    std::string line;
    while (!w->conn.dead && w->conn.extractLine(line))
        if (!line.empty())
            handleWorkerLine(w, line);
    flushConn(static_cast<Io *>(w), w->conn, w->conn.fd);
}

void
Router::closeClient(ClientConn *c)
{
    abandonPendingsOf(c);
    for (AdminFan *f : c->fans)
        f->client = nullptr;
    c->fans.clear();
    if (c->conn.fd >= 0) {
        poller_.del(c->conn.fd);
        c->conn.closeFd();
    }
    for (auto it = clients_.begin(); it != clients_.end(); ++it)
        if (it->get() == c) {
            clients_.erase(it);
            return;
        }
}

void
Router::abandonPendingsOf(ClientConn *c)
{
    std::vector<Pending *> mine(c->pendings.begin(),
                                c->pendings.end());
    c->pendings.clear();
    for (Pending *p : mine) {
        p->client = nullptr;
        // Releases uncommitted reservations and drops buffered
        // rows; committed shards run to completion and warm their
        // caches (the retry will hit them).
        failPending(*p, kErrShardFailed, "client vanished");
        partTerminal(*p);
    }
}

// ---------------------------------------------------------------
// Client-side protocol
// ---------------------------------------------------------------

void
Router::sendToClient(ClientConn *c, const Json &j)
{
    if (!c || c->conn.dead)
        return;
    c->conn.queueLine(j.dump());
    flushConn(static_cast<Io *>(c), c->conn, c->conn.fd);
}

void
Router::sendClientError(ClientConn *c, std::uint64_t id,
                        const char *code, const std::string &msg)
{
    Json j = Json::object();
    j.set("id", Json::number(id));
    j.set("ev", Json::str("error"));
    j.set("code", Json::str(code));
    j.set("msg", Json::str(msg));
    sendToClient(c, j);
}

std::uint64_t
Router::sendWorkerOp(WorkerLink &w, Json req, OpRef ref)
{
    std::uint64_t id = nextOpId_++;
    req.set("id", Json::number(id));
    ref.link = &w;
    ops_[id] = ref;
    w.conn.queueLine(req.dump());
    flushConn(static_cast<Io *>(&w), w.conn, w.conn.fd);
    return id;
}

void
Router::handleClientLine(ClientConn *c, const std::string &line)
{
    Json req;
    std::string err;
    if (!Json::parse(line, req, &err) || !req.isObject()) {
        rc().badRequests.inc();
        sendClientError(c, 0, kErrBadRequest,
                        "unparseable request: " + err);
        return;
    }
    std::uint64_t id = 0;
    if (const Json *j = req.find("id"); j && j->isNumber())
        id = j->asU64();
    const Json *opj = req.find("op");
    if (!opj || !opj->isString()) {
        rc().badRequests.inc();
        sendClientError(c, id, kErrBadRequest, "missing op");
        return;
    }
    const std::string &op = opj->asString();

    if (op == "submit") {
        handleSubmit(c, id, req);
        return;
    }
    if (op == "run_experiment") {
        handleRunExperiment(c, id, req);
        return;
    }
    if (op == "ping") {
        Json resp = Json::object();
        resp.set("id", Json::number(id));
        resp.set("ev", Json::str("pong"));
        sendToClient(c, resp);
        return;
    }
    if (op == "stats") {
        startFan(c, id, /*stats=*/true);
        return;
    }
    if (op == "flush-cache") {
        startFan(c, id, /*stats=*/false);
        return;
    }
    if (op == "metrics") {
        Json resp = Json::object();
        resp.set("id", Json::number(id));
        resp.set("ev", Json::str("metrics"));
        bool prom = false;
        if (const Json *j = req.find("format"); j && j->isString())
            prom = j->asString() == "prom";
        if (prom)
            resp.set("prom", Json::str(obs::registry().promText()));
        else
            resp.set("metrics", obs::registry().snapshotJson());
        sendToClient(c, resp);
        return;
    }
    if (op == "shutdown") {
        Json resp = Json::object();
        resp.set("id", Json::number(id));
        resp.set("ev", Json::str("ok"));
        sendToClient(c, resp);
        requestStop();
        return;
    }
    rc().badRequests.inc();
    sendClientError(c, id, kErrBadRequest,
                    "unknown op '" + op + "'");
}

void
Router::handleSubmit(ClientConn *c, std::uint64_t id,
                     const Json &reqJson)
{
    rc().submits.inc();
    obs::ScopedSpan span("route", "router");

    auto bad = [&](const std::string &msg) {
        rc().badRequests.inc();
        sendClientError(c, id, kErrBadRequest, msg);
    };

    const Json *specj = reqJson.find("spec");
    if (!specj)
        return bad("missing spec");
    RunSpec spec;
    std::string err;
    if (specj->isString()) {
        if (!parseRunSpec(specj->asString(), spec, err))
            return bad("bad spec: " + err);
    } else if (specj->isObject()) {
        if (!specFromJson(*specj, spec, err))
            return bad("bad spec: " + err);
    } else {
        return bad("spec must be an object or canonical text");
    }

    const Json *seedsj = reqJson.find("seeds");
    if (!seedsj || !seedsj->isArray() || seedsj->size() == 0)
        return bad("seeds must be a non-empty array");
    std::vector<std::uint64_t> seeds;
    seeds.reserve(seedsj->size());
    for (std::size_t i = 0; i < seedsj->size(); ++i) {
        const Json &s = seedsj->at(i);
        if (!s.isNumber() || s.isNegative())
            return bad("seeds must be non-negative integers");
        seeds.push_back(s.asU64());
    }
    bool slowdown = true;
    if (const Json *j = reqJson.find("slowdown")) {
        if (!j->isBool())
            return bad("slowdown must be a bool");
        slowdown = j->asBool();
    }
    const Json *deadline = reqJson.find("deadline_ms");
    if (deadline && (!deadline->isNumber() || deadline->isNegative()))
        return bad("deadline_ms must be a non-negative number");

    std::string text = formatRunSpec(spec);
    std::vector<PlannedJob> jobs;
    jobs.reserve(seeds.size());
    for (std::size_t t = 0; t < seeds.size(); ++t) {
        PlannedJob pj;
        pj.specText = text;
        pj.fingerprint = specFingerprint(spec, seeds[t], slowdown);
        pj.seed = seeds[t];
        pj.slowdown = slowdown;
        pj.seq = t;
        pj.trial = t;
        jobs.push_back(std::move(pj));
    }
    startRequest(c, id, "", std::move(jobs), deadline);
}

void
Router::handleRunExperiment(ClientConn *c, std::uint64_t id,
                            const Json &reqJson)
{
    rc().runExperiments.inc();
    obs::ScopedSpan span("route", "router");

    auto bad = [&](const std::string &msg) {
        rc().badRequests.inc();
        sendClientError(c, id, kErrBadRequest, msg);
    };

    const Json *ej = reqJson.find("experiment");
    if (!ej || !ej->isString())
        return bad("missing experiment");
    const ExperimentDef *def =
        ExperimentRegistry::instance().find(ej->asString());
    if (!def)
        return bad("unknown experiment '" + ej->asString() + "'");
    unsigned scaleOverride = 0;
    if (const Json *j = reqJson.find("scale")) {
        if (!j->isNumber() || j->isNegative())
            return bad("scale must be a non-negative number");
        scaleOverride = static_cast<unsigned>(j->asU64());
    }
    unsigned scale = experimentScale(*def, scaleOverride);

    // The SAME enumeration a single twserved (or a local
    // bench_driver) runs — seq dense from 0 — which is exactly what
    // lets the merge reorder on seq and come out bit-identical.
    std::vector<ExperimentJob> plan = experimentJobs(*def, scale);
    std::vector<PlannedJob> jobs;
    jobs.reserve(plan.size());
    for (ExperimentJob &ej2 : plan) {
        PlannedJob pj;
        pj.specText = formatRunSpec(ej2.spec);
        pj.fingerprint =
            specFingerprint(ej2.spec, ej2.seed, ej2.withSlowdown);
        pj.seed = ej2.seed;
        pj.slowdown = ej2.withSlowdown;
        pj.unit = std::move(ej2.unit);
        pj.seq = ej2.seq;
        pj.trial = ej2.trial;
        jobs.push_back(std::move(pj));
    }
    if (jobs.empty())
        return bad("experiment has no jobs");
    startRequest(c, id, def->name, std::move(jobs), nullptr);
}

void
Router::startRequest(ClientConn *c, std::uint64_t id,
                     std::string experiment,
                     std::vector<PlannedJob> jobs,
                     const Json *deadline_ms)
{
    if (stopping_.load()) {
        rc().rejected.inc();
        sendClientError(c, id, kErrShuttingDown,
                        "router is draining");
        return;
    }
    if (map_.empty()) {
        rc().rejected.inc();
        sendClientError(c, id, kErrShardFailed,
                        "no shards available");
        return;
    }

    auto p = std::make_unique<Pending>();
    p->client = c;
    p->clientId = id;
    p->experiment = std::move(experiment);
    p->totalJobs = jobs.size();
    if (deadline_ms)
        p->deadlineMs = deadline_ms->asU64();

    // Group by ring owner. Member order is the sorted member set,
    // so part order is deterministic too.
    std::map<std::string, std::vector<PlannedJob>> byOwner;
    for (PlannedJob &pj : jobs)
        byOwner[map_.owner(pj.fingerprint)].push_back(std::move(pj));
    for (auto &kv : byOwner) {
        Pending::Part part;
        for (auto &lp : links_)
            if (lp->name == kv.first) {
                part.link = lp.get();
                break;
            }
        part.jobs = std::move(kv.second);
        p->parts.push_back(std::move(part));
    }

    Pending *raw = p.get();
    pendings_.push_back(std::move(p));
    c->pendings.insert(raw);

    // Phase 1: reserve on every involved shard. Commit happens only
    // once ALL of them have said yes — all-or-nothing admission,
    // distributed.
    for (std::size_t i = 0; i < raw->parts.size(); ++i) {
        Pending::Part &part = raw->parts[i];
        Json req = Json::object();
        req.set("op", Json::str("reserve"));
        req.set("jobs",
                Json::number(static_cast<std::uint64_t>(
                    part.jobs.size())));
        OpRef ref;
        ref.kind = OpRef::Kind::Reserve;
        ref.pending = raw;
        ref.part = i;
        sendWorkerOp(*part.link, std::move(req), ref);
        rc().reserves.inc();
    }
}

void
Router::commitPending(Pending &p)
{
    obs::ScopedSpan span("commit", "router");
    p.committed = true;
    for (std::size_t i = 0; i < p.parts.size(); ++i) {
        Pending::Part &part = p.parts[i];
        Json req = Json::object();
        req.set("op", Json::str("run_jobs"));
        req.set("reservation", Json::number(part.reservation));
        if (!p.experiment.empty())
            req.set("experiment", Json::str(p.experiment));
        if (p.deadlineMs)
            req.set("deadline_ms", Json::number(*p.deadlineMs));
        // The canonical spec text dwarfs everything else on this
        // wire (~6 KB vs ~100 B of coordinates per job). Hoist the
        // first job's spec to the batch default and only spell out
        // per-job specs that differ (mixed-spec experiment slices).
        const std::string &defaultSpec = part.jobs.front().specText;
        req.set("spec", Json::str(defaultSpec));
        Json jobs = Json::array();
        for (const PlannedJob &pj : part.jobs) {
            Json j = Json::object();
            if (pj.specText != defaultSpec)
                j.set("spec", Json::str(pj.specText));
            j.set("seed", Json::number(pj.seed));
            j.set("slowdown", Json::boolean(pj.slowdown));
            if (!pj.unit.empty())
                j.set("unit", Json::str(pj.unit));
            j.set("seq", Json::number(pj.seq));
            j.set("trial", Json::number(pj.trial));
            jobs.push(std::move(j));
        }
        req.set("jobs", std::move(jobs));
        part.state = Pending::Part::State::Running;
        OpRef ref;
        ref.kind = OpRef::Kind::Run;
        ref.pending = &p;
        ref.part = i;
        sendWorkerOp(*part.link, std::move(req), ref);
        rc().commits.inc();
    }
}

void
Router::failPending(Pending &p, const char *code,
                    const std::string &msg)
{
    if (!p.failed) {
        p.failed = true;
        if (p.client)
            sendClientError(p.client, p.clientId, code, msg);
        rc().rejected.inc();
    }
    p.buffered.clear();
    // Hand back every reservation that was granted but never
    // committed (only possible while still in phase 1).
    for (std::size_t i = 0; i < p.parts.size(); ++i) {
        Pending::Part &part = p.parts[i];
        if (part.state != Pending::Part::State::Reserved)
            continue;
        part.state = Pending::Part::State::Failed;
        ++p.terminal;
        if (part.link->up) {
            Json rel = Json::object();
            rel.set("op", Json::str("release"));
            rel.set("reservation", Json::number(part.reservation));
            OpRef ref;
            ref.kind = OpRef::Kind::Release;
            sendWorkerOp(*part.link, std::move(rel), ref);
            rc().releases.inc();
        }
    }
}

void
Router::partTerminal(Pending &p)
{
    if (p.terminal < p.parts.size())
        return;
    finishPending(p);
}

void
Router::emitReadyRows(Pending &p)
{
    if (!p.client || p.failed)
        return;
    while (!p.buffered.empty()
           && p.buffered.begin()->first == p.nextSeq) {
        p.client->conn.queueBytes(p.buffered.begin()->second.data(),
                                  p.buffered.begin()->second.size());
        p.buffered.erase(p.buffered.begin());
        ++p.nextSeq;
        rc().rowsMerged.inc();
    }
}

void
Router::finishPending(Pending &p)
{
    if (!p.failed && p.client) {
        emitReadyRows(p);
        // Stragglers (a seq gap from a dropped row) would stall the
        // cursor; a non-failed request has none by construction.
        Json done = Json::object();
        done.set("id", Json::number(p.clientId));
        done.set("ev", Json::str("done"));
        done.set("rows", Json::number(p.rows));
        done.set("cached", Json::number(p.cached));
        done.set("computed", Json::number(p.computed));
        done.set("expired", Json::number(p.expired));
        sendToClient(p.client, done);
    }
    if (p.client)
        p.client->pendings.erase(&p);
    // Defensive: no op may outlive its pending.
    for (auto it = ops_.begin(); it != ops_.end();)
        it = it->second.pending == &p ? ops_.erase(it) : ++it;
    for (auto it = pendings_.begin(); it != pendings_.end(); ++it)
        if (it->get() == &p) {
            pendings_.erase(it);
            return;
        }
}

// ---------------------------------------------------------------
// Worker-side protocol
// ---------------------------------------------------------------

void
Router::handleWorkerLine(WorkerLink *w, const std::string &line)
{
    Json resp;
    std::string err;
    if (!Json::parse(line, resp, &err) || !resp.isObject()) {
        w->conn.dead = true; // protocol violation; cut the link
        return;
    }
    std::uint64_t id = 0;
    if (const Json *j = resp.find("id"); j && j->isNumber())
        id = j->asU64();
    const Json *evj = resp.find("ev");
    if (!evj || !evj->isString())
        return;
    const std::string &ev = evj->asString();

    auto it = ops_.find(id);
    if (it == ops_.end())
        return; // settled already (late row after a failure)
    OpRef ref = it->second;

    if (ev == "row") {
        if (ref.kind != OpRef::Kind::Run)
            return;
        Pending &p = *ref.pending;
        if (p.failed || !p.client)
            return; // optimistic streaming: late rows are dropped
        Json row = resp;
        row.set("id", Json::number(p.clientId));
        const Json *seqj = p.experiment.empty() ? row.find("trial")
                                                : row.find("seq");
        if (!seqj || !seqj->isNumber())
            return;
        std::uint64_t seq = seqj->asU64();
        std::string framed = row.dump();
        framed.push_back('\n');
        if (seq != p.nextSeq)
            rc().rowsBuffered.inc();
        p.buffered[seq] = std::move(framed);
        emitReadyRows(p);
        flushConn(static_cast<Io *>(p.client), p.client->conn,
                  p.client->conn.fd);
        return;
    }

    if (ev == "done") {
        if (ref.kind != OpRef::Kind::Run)
            return;
        ops_.erase(it);
        Pending &p = *ref.pending;
        Pending::Part &part = p.parts[ref.part];
        auto acc = [&resp](const char *k) -> std::uint64_t {
            const Json *j = resp.find(k);
            return j && j->isNumber() ? j->asU64() : 0;
        };
        p.rows += acc("rows");
        p.cached += acc("cached");
        p.computed += acc("computed");
        p.expired += acc("expired");
        if (part.state != Pending::Part::State::Done
            && part.state != Pending::Part::State::Failed) {
            part.state = Pending::Part::State::Done;
            ++p.terminal;
        }
        partTerminal(p);
        return;
    }

    if (ev == "reserved") {
        if (ref.kind != OpRef::Kind::Reserve)
            return;
        ops_.erase(it);
        Pending &p = *ref.pending;
        Pending::Part &part = p.parts[ref.part];
        const Json *tok = resp.find("reservation");
        part.reservation =
            tok && tok->isNumber() ? tok->asU64() : 0;
        if (p.failed) {
            // Too late — a sibling shard already said no. Hand the
            // slots straight back.
            part.state = Pending::Part::State::Failed;
            ++p.terminal;
            Json rel = Json::object();
            rel.set("op", Json::str("release"));
            rel.set("reservation", Json::number(part.reservation));
            OpRef rref;
            rref.kind = OpRef::Kind::Release;
            sendWorkerOp(*w, std::move(rel), rref);
            rc().releases.inc();
            partTerminal(p);
            return;
        }
        part.state = Pending::Part::State::Reserved;
        for (const Pending::Part &q : p.parts)
            if (q.state != Pending::Part::State::Reserved)
                return; // still waiting on a sibling
        commitPending(p);
        return;
    }

    if (ev == "error") {
        ops_.erase(it);
        const Json *codej = resp.find("code");
        const Json *msgj = resp.find("msg");
        std::string code =
            codej && codej->isString() ? codej->asString()
                                       : kErrShardFailed;
        std::string msg = msgj && msgj->isString()
                              ? msgj->asString()
                              : "shard error";
        switch (ref.kind) {
        case OpRef::Kind::Reserve:
        case OpRef::Kind::Run: {
            Pending &p = *ref.pending;
            Pending::Part &part = p.parts[ref.part];
            if (part.state != Pending::Part::State::Done
                && part.state != Pending::Part::State::Failed) {
                part.state = Pending::Part::State::Failed;
                ++p.terminal;
            }
            failPending(p, code.c_str(),
                        part.link->name + ": " + msg);
            partTerminal(p);
            break;
        }
        case OpRef::Kind::Stats:
        case OpRef::Kind::Flush:
            if (ref.fan && ref.fan->outstanding > 0) {
                --ref.fan->outstanding;
                finishFan(*ref.fan);
            }
            break;
        case OpRef::Kind::Ping:
        case OpRef::Kind::Release:
            break;
        }
        return;
    }

    if (ev == "pong") {
        ops_.erase(it);
        if (ref.kind == OpRef::Kind::Ping)
            w->awaitingPong = false;
        return;
    }

    if (ev == "ok") {
        ops_.erase(it);
        if (ref.kind == OpRef::Kind::Flush && ref.fan
            && ref.fan->outstanding > 0) {
            --ref.fan->outstanding;
            finishFan(*ref.fan);
        }
        return;
    }

    if (ev == "stats") {
        ops_.erase(it);
        if (ref.kind == OpRef::Kind::Stats && ref.fan) {
            if (const Json *s = resp.find("stats"))
                ref.fan->shards.set(w->name, *s);
            if (ref.fan->outstanding > 0)
                --ref.fan->outstanding;
            finishFan(*ref.fan);
        }
        return;
    }
    // Unknown ev: ignore (forward compatibility).
}

// ---------------------------------------------------------------
// Admin fan-out
// ---------------------------------------------------------------

void
Router::startFan(ClientConn *c, std::uint64_t id, bool stats)
{
    auto f = std::make_unique<AdminFan>();
    f->client = c;
    f->clientId = id;
    f->stats = stats;
    AdminFan *raw = f.get();
    fans_.push_back(std::move(f));
    c->fans.insert(raw);
    for (auto &lp : links_) {
        if (!lp->up)
            continue;
        Json req = Json::object();
        req.set("op", Json::str(stats ? "stats" : "flush-cache"));
        OpRef ref;
        ref.kind = stats ? OpRef::Kind::Stats : OpRef::Kind::Flush;
        ref.fan = raw;
        sendWorkerOp(*lp, std::move(req), ref);
        ++raw->outstanding;
    }
    finishFan(*raw); // replies immediately when no shard is up
}

void
Router::finishFan(AdminFan &f)
{
    if (f.outstanding > 0)
        return;
    if (f.client) {
        Json resp = Json::object();
        resp.set("id", Json::number(f.clientId));
        if (f.stats) {
            resp.set("ev", Json::str("stats"));
            Json stats = Json::object();
            stats.set("role", Json::str("router"));
            stats.set("router", routerStatsJson());
            // Cross-shard ResultCache visibility: per-experiment
            // hit/miss totals summed over every shard's answer.
            std::map<std::string,
                     std::pair<std::uint64_t, std::uint64_t>>
                agg;
            for (const auto &kv : f.shards.members()) {
                const Json *exps = kv.second.find("experiments");
                if (!exps || !exps->isObject())
                    continue;
                for (const auto &ekv : exps->members()) {
                    const Json *h = ekv.second.find("hits");
                    const Json *m = ekv.second.find("misses");
                    auto &slot = agg[ekv.first];
                    slot.first += h && h->isNumber() ? h->asU64() : 0;
                    slot.second +=
                        m && m->isNumber() ? m->asU64() : 0;
                }
            }
            Json exps = Json::object();
            for (const auto &kv : agg) {
                Json e = Json::object();
                e.set("hits", Json::number(kv.second.first));
                e.set("misses", Json::number(kv.second.second));
                exps.set(kv.first, std::move(e));
            }
            stats.set("experiments", std::move(exps));
            stats.set("shards", f.shards);
            resp.set("stats", std::move(stats));
        } else {
            resp.set("ev", Json::str("ok"));
        }
        sendToClient(f.client, resp);
        f.client->fans.erase(&f);
    }
    for (auto it = ops_.begin(); it != ops_.end();)
        it = it->second.fan == &f ? ops_.erase(it) : ++it;
    for (auto it = fans_.begin(); it != fans_.end(); ++it)
        if (it->get() == &f) {
            fans_.erase(it);
            return;
        }
}

Json
Router::routerStatsJson() const
{
    Json j = Json::object();
    j.set("uptime_s",
          Json::number(std::chrono::duration<double>(
                           Clock::now() - started_at_)
                           .count()));
    j.set("shards_configured",
          Json::number(
              static_cast<std::uint64_t>(links_.size())));
    j.set("shards_up",
          Json::number(
              static_cast<std::uint64_t>(map_.size())));
    Json shards = Json::object();
    for (const auto &lp : links_)
        shards.set(lp->name, Json::boolean(lp->up));
    j.set("shard_up", std::move(shards));
    j.set("pending_requests",
          Json::number(
              static_cast<std::uint64_t>(pendings_.size())));
    Json ops = Json::object();
    ops.set("submits", Json::number(rc().submits.value()));
    ops.set("run_experiments",
            Json::number(rc().runExperiments.value()));
    ops.set("bad_requests", Json::number(rc().badRequests.value()));
    ops.set("rejected", Json::number(rc().rejected.value()));
    j.set("ops", std::move(ops));
    Json rows = Json::object();
    rows.set("merged", Json::number(rc().rowsMerged.value()));
    rows.set("buffered", Json::number(rc().rowsBuffered.value()));
    j.set("rows", std::move(rows));
    Json fan = Json::object();
    fan.set("reserves", Json::number(rc().reserves.value()));
    fan.set("commits", Json::number(rc().commits.value()));
    fan.set("releases", Json::number(rc().releases.value()));
    j.set("fanout", std::move(fan));
    j.set("shard_failures",
          Json::number(rc().shardFailures.value()));
    return j;
}

} // namespace serve
} // namespace tw
