/**
 * @file
 * ShardMap — the consistent-hash ring that turns a spec fingerprint
 * into a shard owner.
 *
 * The canonical-spec fingerprint (harness/specio: FNV-1a over the
 * exact cache-key bytes) is already the perfect distribution key:
 * two requests collide on a fingerprint iff they would hit the same
 * ResultCache entry, so routing by fingerprint gives every shard
 * EXCLUSIVE ownership of its cache slice — a resubmitted sweep lands
 * on the shards that already hold its rows, with no cross-shard
 * invalidation protocol at all.
 *
 * Classic Karger ring with virtual nodes: each member is hashed at
 * kVnodes points onto a 64-bit circle; a key is owned by the first
 * point clockwise from it. Properties the tests pin down:
 *
 *  - balance: with enough vnodes, keys spread near-uniformly over
 *    members (chi-square-ish bound across 2..16 shards);
 *  - minimal remap: adding/removing one of N members moves only the
 *    keys that member's arcs cover, ~1/N of the space (< 2/N
 *    asserted), never a global reshuffle — a worker joining or
 *    draining invalidates almost none of the pool's cache locality;
 *  - determinism: ownership is a pure function of the member-name
 *    SET (insertion order irrelevant) and the key, identical across
 *    processes and hosts (no pointers, no RNG, no std::hash) — the
 *    router and `twctl shard-owner` agree byte-for-byte.
 *
 * The ring is tiny (members x vnodes points) and rebuilt from
 * scratch on membership change; routing is a binary search. Not
 * thread-safe — the router's poller thread owns it.
 */

#ifndef TW_SERVE_SHARD_SHARD_MAP_HH
#define TW_SERVE_SHARD_SHARD_MAP_HH

#include <cstdint>
#include <string>
#include <vector>

namespace tw
{
namespace serve
{

class ShardMap
{
  public:
    /** Virtual nodes per member. 64 keeps the ring under a few KB
     *  at pool sizes we care about while holding per-member load
     *  within ~±15% of fair share (the balance test's bound). */
    static constexpr unsigned kDefaultVnodes = 64;

    explicit ShardMap(unsigned vnodes = kDefaultVnodes)
        : vnodes_(vnodes ? vnodes : 1)
    {
    }

    ShardMap(const std::vector<std::string> &members,
             unsigned vnodes = kDefaultVnodes);

    /** Add @p member (idempotent). Rebuilds the ring. */
    void add(const std::string &member);

    /** Remove @p member (idempotent). Rebuilds the ring. */
    void remove(const std::string &member);

    bool contains(const std::string &member) const;
    std::size_t size() const { return members_.size(); }
    bool empty() const { return members_.empty(); }

    /** Sorted member names (the canonical set). */
    const std::vector<std::string> &members() const
    {
        return members_;
    }

    /**
     * The member owning @p key (a specFingerprint). Empty string
     * when the ring is empty — the router treats that as total
     * outage, not a crash.
     */
    const std::string &owner(std::uint64_t key) const;

    /** Index of owner(key) in members(); npos-like size() when
     *  empty. */
    std::size_t ownerIndex(std::uint64_t key) const;

    /** The ring position hash of member @p m's vnode @p v —
     *  exposed for tests that reason about arc placement. */
    static std::uint64_t pointHash(const std::string &m, unsigned v);

  private:
    void rebuild();

    struct Point
    {
        std::uint64_t hash;
        std::uint32_t member; //!< index into members_

        bool operator<(const Point &o) const
        {
            // Tie-break on member index so two members hashing a
            // vnode to the same point (vanishingly rare but
            // possible) still order deterministically.
            return hash != o.hash ? hash < o.hash
                                  : member < o.member;
        }
    };

    unsigned vnodes_;
    std::vector<std::string> members_; //!< sorted, unique
    std::vector<Point> ring_;          //!< sorted by hash
};

} // namespace serve
} // namespace tw

#endif // TW_SERVE_SHARD_SHARD_MAP_HH
