#include "serve/server.hh"

#include <cerrno>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <chrono>
#include <optional>

#include "base/logging.hh"
#include "base/thread_pool.hh"
#include "harness/experiment.hh"
#include "harness/runner.hh"
#include "harness/specio.hh"
#include "obs/trace.hh"
#include "serve/wire.hh"

namespace tw
{
namespace serve
{

using Clock = std::chrono::steady_clock;

namespace
{

/** Version of the `stats` reply payload. 1 was the unversioned
 *  PR 4 shape; 2 adds schema_version itself, started_at_s, and
 *  ops.metrics. Bump on any field removal or meaning change. */
constexpr unsigned kStatsSchemaVersion = 2;

double
usSince(Clock::time_point t0)
{
    return std::chrono::duration<double, std::micro>(Clock::now()
                                                     - t0)
        .count();
}

/** Stats key of a spec's miss-cost backend. Unlike the row tag
 *  (empty for the default), stats name the default explicitly. */
std::string
costBackendStatName(const RunSpec &spec)
{
    std::string tag = costBackendTag(spec);
    return tag.empty() ? "table5" : tag;
}

} // anonymous namespace

/** One connected client. Row streaming happens from worker threads
 *  while the session thread keeps reading requests, so every write
 *  goes through send() under writeMutex. The socket carries
 *  SO_SNDTIMEO (ServerConfig::sendTimeoutMs): a peer that stops
 *  reading fails the send when the timeout lapses and the session
 *  goes dead, instead of parking workers behind a full socket
 *  buffer indefinitely. */
struct Server::Session
{
    int fd = -1;
    std::mutex writeMutex;
    std::atomic<bool> dead{false};

    ~Session()
    {
        // Runs only when the LAST reference drops — session thread
        // reaped, no worker Job pointing here — so the fd number
        // cannot be recycled under a concurrent send().
        if (fd >= 0)
            ::close(fd);
    }

    bool
    send(const Json &j)
    {
        std::lock_guard<std::mutex> lock(writeMutex);
        if (dead.load(std::memory_order_relaxed))
            return false;
        if (!sendJsonLine(fd, j)) {
            // Client vanished (or timed out); stop wasting writes.
            dead.store(true, std::memory_order_relaxed);
            return false;
        }
        return true;
    }

    /** Send pre-framed ('\n'-terminated) bytes in ONE write: the
     *  row-batching path — a sweep's cached rows cost one syscall
     *  instead of one per row. */
    bool
    sendRaw(const std::string &framed)
    {
        std::lock_guard<std::mutex> lock(writeMutex);
        if (dead.load(std::memory_order_relaxed))
            return false;
        if (!sendAll(fd, framed.data(), framed.size())) {
            dead.store(true, std::memory_order_relaxed);
            return false;
        }
        return true;
    }
};

/** Bookkeeping for one session thread. Lives in sessions_ (a
 *  std::list, so the address stays valid for the thread to mark
 *  itself finished); reaped by the accept loop, or at join(). */
struct Server::SessionEntry
{
    std::shared_ptr<Session> session;
    std::thread thread;
    std::atomic<bool> finished{false};
};

/** One submit request in flight: shared by every Job of its sweep.
 *  remaining starts at jobs+1 — the extra count is held by the
 *  session thread until it has streamed the cached rows, so "done"
 *  can never outrun them. */
struct Server::Request
{
    std::shared_ptr<Session> session;
    std::uint64_t id = 0;
    std::shared_ptr<const RunSpec> spec;
    /** Registry entry behind a run_experiment request; empty for
     *  ad-hoc submits. Rows of an experiment carry the name plus
     *  the unit/seq coordinates of the registry's job enumeration. */
    std::string experiment;
    bool slowdown = true;
    std::optional<Clock::time_point> deadline;
    Clock::time_point start = Clock::now();

    std::atomic<std::uint64_t> remaining{0};
    std::atomic<std::uint64_t> rows{0};
    std::atomic<std::uint64_t> cached{0};
    std::atomic<std::uint64_t> computed{0};
    std::atomic<std::uint64_t> expired{0};
};

/** One trial waiting on the bounded queue. Each job carries its own
 *  spec and slowdown flag: a submit shares one spec across its
 *  seeds, while an experiment's grid gives every unit a different
 *  spec (and its trial plan may mix slowdown on and off). */
struct Server::Job
{
    std::shared_ptr<Request> req;
    std::shared_ptr<const RunSpec> spec;
    std::uint64_t seed = 0;
    std::uint64_t trial = 0;
    bool slowdown = true;
    std::string unit;
    std::uint64_t seq = 0;
    std::string key;
    Clock::time_point enqueued;
};

/** A trial answered straight from the result cache at admission. */
struct Server::CachedHit
{
    std::string unit;
    std::uint64_t seq = 0;
    std::uint64_t trial = 0;
    std::uint64_t seed = 0;
    RunOutcome outcome;
};

namespace
{

/** The row-identity prefix shared by cached and computed rows. */
void
setRowIdentity(Json &row, const std::string &experiment,
               std::uint64_t id, const std::string &unit,
               std::uint64_t seq, std::uint64_t trial,
               std::uint64_t seed)
{
    row.set("id", Json::number(id));
    row.set("ev", Json::str("row"));
    if (!experiment.empty()) {
        row.set("experiment", Json::str(experiment));
        row.set("unit", Json::str(unit));
        row.set("seq", Json::number(seq));
    }
    row.set("trial", Json::number(trial));
    row.set("seed", Json::number(seed));
}

} // anonymous namespace

Server::Server(ServerConfig cfg)
    : cfg_(std::move(cfg)), cache_(cfg_.cacheCapacity),
      queue_(cfg_.queueCapacity)
{
    if (cfg_.workers == 0)
        cfg_.workers = defaultThreads();
}

Server::~Server()
{
    stop();
}

bool
Server::start(std::string *err)
{
    if (started_.load()) {
        if (err)
            *err = "server already started";
        return false;
    }
    if (cfg_.socketPath.empty()) {
        if (err)
            *err = "no socket path configured";
        return false;
    }
    unixFd_ = listenUnixSocket(cfg_.socketPath, err);
    if (unixFd_ < 0)
        return false;
    if (cfg_.tcpPort != 0) {
        tcpFd_ = listenTcpSocket(cfg_.tcpBind, cfg_.tcpPort, err);
        if (tcpFd_ < 0) {
            ::close(unixFd_);
            unixFd_ = -1;
            ::unlink(cfg_.socketPath.c_str());
            return false;
        }
    }
    started_.store(true);
    acceptThread_ = std::thread([this] { acceptLoop(); });
    workers_.reserve(cfg_.workers);
    for (unsigned i = 0; i < cfg_.workers; ++i)
        workers_.emplace_back([this] { workerLoop(); });
    if (cfg_.verbose)
        std::fprintf(stderr,
                     "twserved: listening on %s (%u workers, "
                     "queue %zu, cache %zu)\n",
                     cfg_.socketPath.c_str(), cfg_.workers,
                     queue_.capacity(), cfg_.cacheCapacity);
    return true;
}

void
Server::requestStop()
{
    bool expected = false;
    if (!stopping_.compare_exchange_strong(expected, true))
        return;
    // New submits now bounce with shutting_down; admitted jobs
    // keep draining because close() allows pops until empty.
    queue_.close();
    wakeWorkers();
    {
        std::lock_guard<std::mutex> lock(stopMutex_);
        stopRequested_ = true;
    }
    stopCv_.notify_all();
}

void
Server::join()
{
    if (!started_.load())
        return;
    {
        std::unique_lock<std::mutex> lock(stopMutex_);
        stopCv_.wait(lock, [this] { return stopRequested_; });
        if (joined_)
            return;
        joined_ = true;
    }

    // Order matters: stop accepting, drain the queue (workers exit
    // when pop() returns nullopt on the closed empty queue), and
    // only then yank sessions — admitted sweeps finish streaming.
    if (acceptThread_.joinable())
        acceptThread_.join();
    for (auto &w : workers_)
        if (w.joinable())
            w.join();

    {
        std::lock_guard<std::mutex> lock(sessionsMutex_);
        for (SessionEntry &e : sessions_) {
            e.session->dead.store(true);
            // Unblocks the session thread's recv().
            ::shutdown(e.session->fd, SHUT_RDWR);
        }
    }
    // The accept thread (the only other mutator of sessions_) is
    // already joined, so iterating without the lock is safe here.
    for (SessionEntry &e : sessions_)
        if (e.thread.joinable())
            e.thread.join();
    // Workers are drained too: dropping these last references
    // closes every remaining fd (~Session).
    sessions_.clear();

    if (unixFd_ >= 0) {
        ::close(unixFd_);
        unixFd_ = -1;
        ::unlink(cfg_.socketPath.c_str());
    }
    if (tcpFd_ >= 0) {
        ::close(tcpFd_);
        tcpFd_ = -1;
    }
    started_.store(false);
    if (cfg_.verbose)
        std::fprintf(stderr, "twserved: drained and stopped\n");
}

void
Server::stop()
{
    if (!started_.load())
        return;
    requestStop();
    join();
}

void
Server::pauseWorkers()
{
    std::lock_guard<std::mutex> lock(workMutex_);
    paused_ = true;
}

void
Server::resumeWorkers()
{
    {
        std::lock_guard<std::mutex> lock(workMutex_);
        paused_ = false;
    }
    workCv_.notify_all();
}

void
Server::wakeWorkers()
{
    // Producers mutate queue state under the BoundedQueue's own
    // mutex, but workers wait on workCv_/workMutex_ with a
    // predicate over that state. Taking workMutex_ — even empty —
    // before notifying closes the lost-wakeup window: a worker is
    // either already blocked (the notify reaches it) or its next
    // predicate check is ordered after this critical section and
    // sees the new queue state. A bare notify_all() could land
    // between a worker's predicate check and its block and be lost,
    // stalling an admitted sweep forever.
    { std::lock_guard<std::mutex> lock(workMutex_); }
    workCv_.notify_all();
}

std::optional<Server::Job>
Server::nextJob()
{
    std::unique_lock<std::mutex> lock(workMutex_);
    while (true) {
        workCv_.wait(lock, [this] {
            return !paused_
                   && (queue_.size() > 0 || queue_.closed());
        });
        // tryPop under workMutex_: dequeue is serialized through
        // this one place, so the paused predicate above is the
        // whole truth — a paused server can never lose a job to a
        // worker that was already waiting.
        if (std::optional<Job> job = queue_.tryPop())
            return job;
        if (queue_.closed())
            return std::nullopt; // closed and drained
    }
}

void
Server::acceptLoop()
{
    while (!stopping_.load()) {
        reapSessions();
        pollfd fds[2];
        nfds_t nfds = 0;
        fds[nfds++] = {unixFd_, POLLIN, 0};
        if (tcpFd_ >= 0)
            fds[nfds++] = {tcpFd_, POLLIN, 0};
        // Short timeout so a stop request is noticed promptly.
        int ready = ::poll(fds, nfds, 100);
        if (ready <= 0)
            continue;
        for (nfds_t i = 0; i < nfds; ++i) {
            if (!(fds[i].revents & POLLIN))
                continue;
            int fd = ::accept(fds[i].fd, nullptr, nullptr);
            if (fd < 0) {
                // EMFILE and friends leave the listen fd readable,
                // so a bare continue would spin at 100% CPU. Back
                // off; the next pass reaps finished sessions and
                // may free fds.
                if (errno != EINTR && errno != ECONNABORTED)
                    std::this_thread::sleep_for(
                        std::chrono::milliseconds(50));
                continue;
            }
            if (cfg_.sendTimeoutMs > 0) {
                timeval tv{};
                tv.tv_sec = cfg_.sendTimeoutMs / 1000;
                tv.tv_usec = static_cast<suseconds_t>(
                    (cfg_.sendTimeoutMs % 1000) * 1000);
                ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv,
                             sizeof(tv));
            }
            auto session = std::make_shared<Session>();
            session->fd = fd;
            metrics_.sessionsOpened.inc();
            std::lock_guard<std::mutex> lock(sessionsMutex_);
            sessions_.emplace_back();
            SessionEntry &entry = sessions_.back();
            entry.session = std::move(session);
            entry.thread = std::thread(
                [this, e = &entry] { sessionLoop(e); });
        }
    }
}

void
Server::reapSessions()
{
    std::lock_guard<std::mutex> lock(sessionsMutex_);
    for (auto it = sessions_.begin(); it != sessions_.end();) {
        if (it->finished.load(std::memory_order_acquire)) {
            it->thread.join(); // already exited; returns at once
            it = sessions_.erase(it);
        } else {
            ++it;
        }
    }
}

std::size_t
Server::liveSessionCount()
{
    std::lock_guard<std::mutex> lock(sessionsMutex_);
    return sessions_.size();
}

void
Server::sessionLoop(SessionEntry *entry)
{
    std::shared_ptr<Session> session = entry->session;
    LineReader reader(session->fd);
    std::string line;
    while (true) {
        LineReader::Status st = reader.readLine(line);
        if (st != LineReader::Status::Line)
            break;
        if (line.empty())
            continue;
        handleLine(session, line);
    }
    session->dead.store(true);
    // Void any two-phase reservations the peer (a router, usually)
    // still held: a dead router must not leak queue slots.
    releaseSessionReservations(session.get());
    metrics_.sessionsClosed.inc();
    // Hand the entry to the accept loop's reaper: it joins this
    // thread and drops the list's Session reference. The fd closes
    // (~Session) once the last in-flight Job's reference goes too —
    // workers' sends fail fast on `dead` in the meantime.
    entry->finished.store(true, std::memory_order_release);
}

void
Server::sendError(const std::shared_ptr<Session> &session,
                  std::uint64_t id, const char *code,
                  const std::string &msg)
{
    Json j = Json::object();
    j.set("id", Json::number(id));
    j.set("ev", Json::str("error"));
    j.set("code", Json::str(code));
    j.set("msg", Json::str(msg));
    session->send(j);
}

void
Server::handleLine(const std::shared_ptr<Session> &session,
                   const std::string &line)
{
    Json req;
    std::string err;
    bool parsed;
    {
        obs::ScopedSpan span("parse", "serve");
        parsed = Json::parse(line, req, &err) && req.isObject();
    }
    if (!parsed) {
        metrics_.badRequests.inc();
        sendError(session, 0, kErrBadRequest,
                  "unparseable request: " + err);
        return;
    }
    std::uint64_t id = 0;
    if (const Json *j = req.find("id"); j && j->isNumber())
        id = j->asU64();
    const Json *opj = req.find("op");
    if (!opj || !opj->isString()) {
        metrics_.badRequests.inc();
        sendError(session, id, kErrBadRequest, "missing op");
        return;
    }
    const std::string &op = opj->asString();

    if (op == "submit") {
        handleSubmit(session, id, req);
        return;
    }
    if (op == "run_experiment") {
        handleRunExperiment(session, id, req);
        return;
    }
    if (op == "reserve") {
        handleReserve(session, id, req);
        return;
    }
    if (op == "release") {
        handleRelease(session, id, req);
        return;
    }
    if (op == "run_jobs") {
        handleRunJobs(session, id, req);
        return;
    }
    if (op == "stats") {
        metrics_.statsReqs.inc();
        Json resp = Json::object();
        resp.set("id", Json::number(id));
        resp.set("ev", Json::str("stats"));
        resp.set("stats", statsJson());
        session->send(resp);
        return;
    }
    if (op == "metrics") {
        // The whole-process registry — engine counters next to
        // serve counters — not the per-server stats view.
        metrics_.metricsReqs.inc();
        Json resp = Json::object();
        resp.set("id", Json::number(id));
        resp.set("ev", Json::str("metrics"));
        bool prom = false;
        if (const Json *j = req.find("format"); j && j->isString())
            prom = j->asString() == "prom";
        if (prom)
            resp.set("prom", Json::str(obs::registry().promText()));
        else
            resp.set("metrics", obs::registry().snapshotJson());
        session->send(resp);
        return;
    }
    if (op == "flush-cache") {
        metrics_.flushes.inc();
        cache_.flush();
        Json resp = Json::object();
        resp.set("id", Json::number(id));
        resp.set("ev", Json::str("ok"));
        session->send(resp);
        return;
    }
    if (op == "ping") {
        metrics_.pings.inc();
        Json resp = Json::object();
        resp.set("id", Json::number(id));
        resp.set("ev", Json::str("pong"));
        session->send(resp);
        return;
    }
    if (op == "shutdown") {
        metrics_.shutdowns.inc();
        Json resp = Json::object();
        resp.set("id", Json::number(id));
        resp.set("ev", Json::str("ok"));
        session->send(resp);
        requestStop();
        return;
    }
    metrics_.badRequests.inc();
    sendError(session, id, kErrBadRequest, "unknown op '" + op + "'");
}

void
Server::handleSubmit(const std::shared_ptr<Session> &session,
                     std::uint64_t id, const Json &reqJson)
{
    metrics_.submits.inc();

    // ---- Parse ----------------------------------------------------
    auto bad = [&](const std::string &msg) {
        metrics_.badRequests.inc();
        sendError(session, id, kErrBadRequest, msg);
    };

    const Json *specj = reqJson.find("spec");
    if (!specj)
        return bad("missing spec");
    auto spec = std::make_shared<RunSpec>();
    std::string err;
    if (specj->isString()) {
        // Canonical text pass-through (what twctl sends).
        if (!parseRunSpec(specj->asString(), *spec, err))
            return bad("bad spec: " + err);
    } else if (specj->isObject()) {
        if (!specFromJson(*specj, *spec, err))
            return bad("bad spec: " + err);
    } else {
        return bad("spec must be an object or canonical text");
    }

    const Json *seedsj = reqJson.find("seeds");
    if (!seedsj || !seedsj->isArray() || seedsj->size() == 0)
        return bad("seeds must be a non-empty array");
    std::vector<std::uint64_t> seeds;
    seeds.reserve(seedsj->size());
    for (std::size_t i = 0; i < seedsj->size(); ++i) {
        const Json &s = seedsj->at(i);
        // asU64 clamps negative lexemes to 0 instead of wrapping;
        // a clamped seed would silently compute the wrong trial, so
        // reject it here.
        if (!s.isNumber() || s.isNegative())
            return bad("seeds must be non-negative integers");
        seeds.push_back(s.asU64());
    }

    bool slowdown = true;
    if (const Json *j = reqJson.find("slowdown")) {
        if (!j->isBool())
            return bad("slowdown must be a bool");
        slowdown = j->asBool();
    }
    std::optional<Clock::time_point> deadline;
    if (const Json *j = reqJson.find("deadline_ms")) {
        if (!j->isNumber() || j->isNegative())
            return bad("deadline_ms must be a non-negative number");
        deadline = Clock::now()
                   + std::chrono::milliseconds(j->asU64());
    }

    // ---- Plan: cache hits vs jobs ---------------------------------
    auto request = std::make_shared<Request>();
    request->session = session;
    request->id = id;
    request->spec = spec;
    request->slowdown = slowdown;
    request->deadline = deadline;

    std::vector<CachedHit> hits;
    std::vector<Job> jobs;
    for (std::size_t t = 0; t < seeds.size(); ++t) {
        std::string key = cacheKey(*spec, seeds[t], slowdown);
        RunOutcome out;
        bool hit = cache_.lookup(key, out);
        metrics_.recordCacheLookup("_adhoc", hit);
        metrics_.recordCostBackend(costBackendStatName(*spec));
        if (hit) {
            hits.push_back({"", 0, t, seeds[t], std::move(out)});
        } else {
            Job job;
            job.req = request;
            job.spec = spec;
            job.seed = seeds[t];
            job.trial = t;
            job.slowdown = slowdown;
            job.key = std::move(key);
            jobs.push_back(std::move(job));
        }
    }
    admitAndStream(session, id, request, std::move(jobs), hits);
}

void
Server::handleRunExperiment(const std::shared_ptr<Session> &session,
                            std::uint64_t id, const Json &reqJson)
{
    metrics_.runExperiments.inc();

    auto bad = [&](const std::string &msg) {
        metrics_.badRequests.inc();
        sendError(session, id, kErrBadRequest, msg);
    };

    const Json *ej = reqJson.find("experiment");
    if (!ej || !ej->isString())
        return bad("missing experiment");
    const ExperimentDef *def =
        ExperimentRegistry::instance().find(ej->asString());
    if (!def)
        return bad("unknown experiment '" + ej->asString() + "'");

    unsigned scaleOverride = 0;
    if (const Json *j = reqJson.find("scale")) {
        if (!j->isNumber() || j->isNegative())
            return bad("scale must be a non-negative number");
        scaleOverride = static_cast<unsigned>(j->asU64());
    }
    unsigned scale = experimentScale(*def, scaleOverride);

    // The SAME deterministic enumeration bench_driver runs locally:
    // units in grid order, trials in plan order, seq dense from 0.
    // Each job's cache key is the one a local run would use, so a
    // served experiment and a local one populate and hit the same
    // ResultCache entries. Adaptive plans (TrialPlan::stopWhen) do
    // not perturb this: experimentJobs always enumerates the FULL
    // seed list — the upper bound an adaptive local run may stop
    // short of — so all-or-nothing admission sizes against a known
    // worst case, and every key a stopped-early local sweep wrote is
    // a prefix of the keys enumerated here.
    std::vector<ExperimentJob> plan = experimentJobs(*def, scale);

    auto request = std::make_shared<Request>();
    request->session = session;
    request->id = id;
    request->experiment = def->name;

    std::vector<CachedHit> hits;
    std::vector<Job> jobs;
    for (ExperimentJob &pj : plan) {
        std::string key = cacheKey(pj.spec, pj.seed, pj.withSlowdown);
        RunOutcome out;
        bool hit = cache_.lookup(key, out);
        metrics_.recordCacheLookup(def->name, hit);
        metrics_.recordCostBackend(costBackendStatName(pj.spec));
        if (hit) {
            hits.push_back({pj.unit, pj.seq, pj.trial, pj.seed,
                            std::move(out)});
        } else {
            Job job;
            job.req = request;
            job.spec = std::make_shared<RunSpec>(std::move(pj.spec));
            job.seed = pj.seed;
            job.trial = pj.trial;
            job.slowdown = pj.withSlowdown;
            job.unit = std::move(pj.unit);
            job.seq = pj.seq;
            job.key = std::move(key);
            jobs.push_back(std::move(job));
        }
    }
    admitAndStream(session, id, request, std::move(jobs), hits);
}

void
Server::handleReserve(const std::shared_ptr<Session> &session,
                      std::uint64_t id, const Json &reqJson)
{
    metrics_.reserves.inc();
    const Json *j = reqJson.find("jobs");
    if (!j || !j->isNumber() || j->isNegative()
        || j->asU64() == 0) {
        metrics_.badRequests.inc();
        sendError(session, id, kErrBadRequest,
                  "jobs must be a positive integer");
        return;
    }
    auto n = static_cast<std::size_t>(j->asU64());
    if (!queue_.tryReserve(n)) {
        metrics_.reserveRejects.inc();
        if (stopping_.load()) {
            metrics_.rejectedShuttingDown.inc();
            sendError(session, id, kErrShuttingDown,
                      "server is draining");
        } else {
            metrics_.rejectedOverloaded.inc();
            sendError(session, id, kErrOverloaded,
                      csprintf("cannot reserve %zu slots "
                               "(capacity %zu)",
                               n, queue_.capacity()));
        }
        return;
    }
    std::uint64_t token;
    {
        std::lock_guard<std::mutex> lock(reservationsMutex_);
        token = nextReservation_++;
        reservations_[token] = {n, session.get()};
    }
    Json resp = Json::object();
    resp.set("id", Json::number(id));
    resp.set("ev", Json::str("reserved"));
    resp.set("reservation", Json::number(token));
    resp.set("jobs", Json::number(static_cast<std::uint64_t>(n)));
    session->send(resp);
}

void
Server::handleRelease(const std::shared_ptr<Session> &session,
                      std::uint64_t id, const Json &reqJson)
{
    metrics_.releases.inc();
    const Json *j = reqJson.find("reservation");
    if (!j || !j->isNumber() || j->isNegative()) {
        metrics_.badRequests.inc();
        sendError(session, id, kErrBadRequest,
                  "reservation must be a non-negative integer");
        return;
    }
    // Idempotent: releasing a settled (or never-issued) token
    // releases 0 — a router retrying a release after a timeout must
    // not get an error storm.
    std::size_t slots = takeReservation(j->asU64(), session.get());
    if (slots > 0)
        queue_.releaseReserved(slots);
    Json resp = Json::object();
    resp.set("id", Json::number(id));
    resp.set("ev", Json::str("ok"));
    resp.set("released",
             Json::number(static_cast<std::uint64_t>(slots)));
    session->send(resp);
}

void
Server::handleRunJobs(const std::shared_ptr<Session> &session,
                      std::uint64_t id, const Json &reqJson)
{
    metrics_.runJobsReqs.inc();

    auto bad = [&](const std::string &msg) {
        metrics_.badRequests.inc();
        sendError(session, id, kErrBadRequest, msg);
    };

    std::uint64_t reservation = 0;
    if (const Json *j = reqJson.find("reservation")) {
        if (!j->isNumber() || j->isNegative())
            return bad("reservation must be a non-negative integer");
        reservation = j->asU64();
    }
    std::string experiment;
    if (const Json *j = reqJson.find("experiment")) {
        if (!j->isString())
            return bad("experiment must be a string");
        experiment = j->asString();
    }
    std::optional<Clock::time_point> deadline;
    if (const Json *j = reqJson.find("deadline_ms")) {
        if (!j->isNumber() || j->isNegative())
            return bad("deadline_ms must be a non-negative number");
        deadline = Clock::now()
                   + std::chrono::milliseconds(j->asU64());
    }
    // Batch-level default spec: jobs that omit their own "spec"
    // share this one, parsed once. A fan-out batch is usually one
    // sweep's slice, so this turns O(jobs) copies of the ~6 KB
    // canonical text into one per request.
    std::shared_ptr<RunSpec> defaultSpec;
    if (const Json *j = reqJson.find("spec")) {
        if (!j->isString())
            return bad("spec must be canonical spec text");
        defaultSpec = std::make_shared<RunSpec>();
        std::string err;
        if (!parseRunSpec(j->asString(), *defaultSpec, err))
            return bad("bad spec: " + err);
    }
    const Json *jobsj = reqJson.find("jobs");
    if (!jobsj || !jobsj->isArray() || jobsj->size() == 0)
        return bad("jobs must be a non-empty array");

    auto request = std::make_shared<Request>();
    request->session = session;
    request->id = id;
    request->experiment = experiment;
    request->deadline = deadline;

    // Each entry names its trial explicitly (spec canonical text,
    // seed, slowdown, unit/seq/trial coordinates), so the cache key
    // computed here is byte-identical to the one a single-node
    // submit or run_experiment of the same trial would use — the
    // property that makes shard-local caches line up with the ring.
    std::vector<CachedHit> hits;
    std::vector<Job> jobs;
    for (std::size_t i = 0; i < jobsj->size(); ++i) {
        const Json &jj = jobsj->at(i);
        if (!jj.isObject())
            return bad("jobs entries must be objects");
        std::shared_ptr<RunSpec> spec;
        if (const Json *specj = jj.find("spec")) {
            if (!specj->isString())
                return bad("job spec must be canonical spec text");
            spec = std::make_shared<RunSpec>();
            std::string err;
            if (!parseRunSpec(specj->asString(), *spec, err))
                return bad("bad job spec: " + err);
        } else if (defaultSpec) {
            spec = defaultSpec;
        } else {
            return bad("job has no spec and the request has no "
                       "default spec");
        }
        const Json *seedj = jj.find("seed");
        if (!seedj || !seedj->isNumber() || seedj->isNegative())
            return bad("job seed must be a non-negative integer");
        std::uint64_t seed = seedj->asU64();
        bool slowdown = true;
        if (const Json *j = jj.find("slowdown")) {
            if (!j->isBool())
                return bad("job slowdown must be a bool");
            slowdown = j->asBool();
        }
        std::uint64_t trial = i;
        if (const Json *j = jj.find("trial")) {
            if (!j->isNumber() || j->isNegative())
                return bad("job trial must be a non-negative "
                           "integer");
            trial = j->asU64();
        }
        std::string unit;
        if (const Json *j = jj.find("unit")) {
            if (!j->isString())
                return bad("job unit must be a string");
            unit = j->asString();
        }
        std::uint64_t seq = trial;
        if (const Json *j = jj.find("seq")) {
            if (!j->isNumber() || j->isNegative())
                return bad("job seq must be a non-negative integer");
            seq = j->asU64();
        }

        std::string key = cacheKey(*spec, seed, slowdown);
        RunOutcome out;
        bool hit = cache_.lookup(key, out);
        metrics_.recordCacheLookup(
            experiment.empty() ? "_adhoc" : experiment, hit);
        metrics_.recordCostBackend(costBackendStatName(*spec));
        if (hit) {
            hits.push_back(
                {std::move(unit), seq, trial, seed, std::move(out)});
        } else {
            Job job;
            job.req = request;
            job.spec = std::move(spec);
            job.seed = seed;
            job.trial = trial;
            job.slowdown = slowdown;
            job.unit = std::move(unit);
            job.seq = seq;
            job.key = std::move(key);
            jobs.push_back(std::move(job));
        }
    }
    admitAndStream(session, id, request, std::move(jobs), hits,
                   reservation);
}

std::size_t
Server::takeReservation(std::uint64_t token, const Session *owner)
{
    std::lock_guard<std::mutex> lock(reservationsMutex_);
    auto it = reservations_.find(token);
    if (it == reservations_.end() || it->second.owner != owner)
        return 0;
    std::size_t slots = it->second.slots;
    reservations_.erase(it);
    return slots;
}

void
Server::releaseSessionReservations(const Session *owner)
{
    std::size_t slots = 0;
    {
        std::lock_guard<std::mutex> lock(reservationsMutex_);
        for (auto it = reservations_.begin();
             it != reservations_.end();) {
            if (it->second.owner == owner) {
                slots += it->second.slots;
                it = reservations_.erase(it);
            } else {
                ++it;
            }
        }
    }
    if (slots > 0)
        queue_.releaseReserved(slots);
}

void
Server::admitAndStream(const std::shared_ptr<Session> &session,
                       std::uint64_t id,
                       const std::shared_ptr<Request> &request,
                       std::vector<Job> jobs,
                       const std::vector<CachedHit> &hits,
                       std::uint64_t reservation)
{
    // ---- Admit ATOMICALLY, before streaming anything --------------
    // All-or-nothing: a sweep either fully fits the queue's free
    // space or is rejected whole with `overloaded` — no partial
    // sweeps wedged behind a full queue, and the client can simply
    // retry the identical request later (the earlier trials will
    // then be cache hits). A committed reservation substitutes its
    // pre-claimed slots for the free-space check.
    request->remaining.store(jobs.size() + 1);
    std::size_t reservedSlots = 0;
    if (reservation != 0) {
        reservedSlots = takeReservation(reservation, session.get());
        if (reservedSlots == 0) {
            // Never issued, another session's, or already settled
            // (committed, released, or voided at disconnect).
            metrics_.badRequests.inc();
            sendError(session, id, kErrBadRequest,
                      "unknown reservation");
            return;
        }
        if (jobs.size() > reservedSlots) {
            queue_.releaseReserved(reservedSlots);
            metrics_.badRequests.inc();
            sendError(session, id, kErrBadRequest,
                      csprintf("%zu jobs exceed reservation of %zu "
                               "slots",
                               jobs.size(), reservedSlots));
            return;
        }
    }
    if (!jobs.empty()) {
        obs::ScopedSpan span("admit", "serve");
        Clock::time_point now = Clock::now();
        for (auto &j : jobs)
            j.enqueued = now;
        std::size_t n = jobs.size();
        bool admitted =
            reservation != 0
                ? queue_.pushReserved(std::move(jobs), reservedSlots)
                : queue_.tryPushAll(std::move(jobs));
        if (!admitted) {
            if (stopping_.load()) {
                metrics_.rejectedShuttingDown.inc();
                sendError(session, id, kErrShuttingDown,
                          "server is draining");
            } else {
                metrics_.rejectedOverloaded.inc();
                sendError(session, id, kErrOverloaded,
                          csprintf("queue full (%zu jobs would "
                                   "exceed capacity %zu)",
                                   n, queue_.capacity()));
            }
            return;
        }
        metrics_.jobsInFlight.add(static_cast<std::int64_t>(n));
        // Wake workers parked in nextJob(): the queue has its own
        // cv, but dequeues are serialized on workCv_ (pause gate).
        wakeWorkers();
    } else if (reservedSlots > 0) {
        // Every reserved trial became a cache hit between reserve
        // and commit; hand the slots straight back.
        queue_.releaseReserved(reservedSlots);
    }

    // ---- Stream cached rows, then release our +1 ------------------
    if (!hits.empty()) {
        obs::ScopedSpan span("stream", "serve");
        // One coalesced write for the whole cached prefix: at high
        // hit rates the send() syscall per row WAS the serve cost.
        std::string batch;
        for (const CachedHit &h : hits) {
            Json row = Json::object();
            setRowIdentity(row, request->experiment, id, h.unit,
                           h.seq, h.trial, h.seed);
            row.set("cached", Json::boolean(true));
            row.set("host_s", Json::number(h.outcome.hostSeconds));
            row.set("outcome", outcomeToJson(h.outcome));
            batch += row.dump();
            batch.push_back('\n');
            request->rows.fetch_add(1, std::memory_order_relaxed);
            request->cached.fetch_add(1, std::memory_order_relaxed);
            metrics_.rowsStreamed.inc();
            metrics_.rowsCached.inc();
        }
        session->sendRaw(batch);
        metrics_.netFlushes.inc();
        metrics_.netFlushedBytes.add(batch.size());
        metrics_.netBatchedRows.add(hits.size());
    }
    finishOne(request);
}

void
Server::workerLoop()
{
    while (true) {
        std::optional<Job> job = nextJob();
        if (!job)
            return; // closed and drained
        double waitUs = usSince(job->enqueued);
        metrics_.queueWait.record(waitUs);
        if (obs::traceEnabled()) {
            // The wait already happened; backdate its begin so the
            // span covers [enqueue, dequeue).
            double nowUs =
                static_cast<double>(obs::traceNowUs());
            obs::traceRecord("queue", "serve",
                             std::max(0.0, nowUs - waitUs),
                             waitUs);
        }

        const Request &req = *job->req;
        Json row = Json::object();
        setRowIdentity(row, req.experiment, req.id, job->unit,
                       job->seq, job->trial, job->seed);

        bool expired =
            req.deadline && Clock::now() > *req.deadline;
        if (expired) {
            row.set("cached", Json::boolean(false));
            row.set("error", Json::str("deadline"));
            job->req->expired.fetch_add(1,
                                        std::memory_order_relaxed);
            metrics_.rowsExpired.inc();
        } else {
            Clock::time_point t0 = Clock::now();
            RunOutcome out;
            {
                obs::ScopedSpan span("run", "serve");
                out = job->slowdown
                          ? Runner::runWithSlowdown(*job->spec,
                                                    job->seed)
                          : Runner::runOne(*job->spec, job->seed);
            }
            metrics_.runStage.record(usSince(t0));
            cache_.insert(job->key, out);
            row.set("cached", Json::boolean(false));
            row.set("host_s", Json::number(out.hostSeconds));
            row.set("outcome", outcomeToJson(out));
            job->req->computed.fetch_add(
                1, std::memory_order_relaxed);
            metrics_.rowsComputed.inc();
        }
        {
            obs::ScopedSpan span("stream", "serve");
            std::string framed = row.dump();
            framed.push_back('\n');
            req.session->sendRaw(framed);
            metrics_.netFlushes.inc();
            metrics_.netFlushedBytes.add(framed.size());
        }
        job->req->rows.fetch_add(1, std::memory_order_relaxed);
        metrics_.rowsStreamed.inc();
        metrics_.jobsInFlight.add(-1);
        finishOne(job->req);
    }
}

void
Server::finishOne(const std::shared_ptr<Request> &req)
{
    if (req->remaining.fetch_sub(1) != 1)
        return;
    Json done = Json::object();
    done.set("id", Json::number(req->id));
    done.set("ev", Json::str("done"));
    done.set("rows",
             Json::number(req->rows.load(std::memory_order_relaxed)));
    done.set("cached",
             Json::number(
                 req->cached.load(std::memory_order_relaxed)));
    done.set("computed",
             Json::number(
                 req->computed.load(std::memory_order_relaxed)));
    done.set("expired",
             Json::number(
                 req->expired.load(std::memory_order_relaxed)));
    // Record before sending: a client that reads `done` and then
    // asks for stats must see this request in the latency counters.
    metrics_.request.record(usSince(req->start));
    req->session->send(done);
    if (cfg_.verbose)
        std::fprintf(
            stderr,
            "twserved: req %llu done (%llu rows, %llu cached)\n",
            static_cast<unsigned long long>(req->id),
            static_cast<unsigned long long>(req->rows.load()),
            static_cast<unsigned long long>(req->cached.load()));
}

Json
Server::statsJson()
{
    Json j = Json::object();
    j.set("schema_version",
          Json::number(static_cast<std::uint64_t>(
              kStatsSchemaVersion)));
    j.set("uptime_s", Json::number(metrics_.uptimeSeconds()));
    j.set("started_at_s",
          Json::number(metrics_.startedAtSeconds()));
    j.set("workers", Json::number(
                         static_cast<std::uint64_t>(cfg_.workers)));

    Json q = Json::object();
    q.set("depth", Json::number(
                       static_cast<std::uint64_t>(queue_.size())));
    q.set("capacity",
          Json::number(
              static_cast<std::uint64_t>(queue_.capacity())));
    q.set("in_flight",
          Json::number(metrics_.jobsInFlight.value()));
    j.set("queue", std::move(q));

    j.set("cache", cache_.statsJson());

    Json baseline = Json::object();
    BaselineCacheStats b = Runner::baselineCacheStats();
    baseline.set("size", Json::number(
                             static_cast<std::uint64_t>(b.size)));
    baseline.set("capacity",
                 Json::number(
                     static_cast<std::uint64_t>(b.capacity)));
    baseline.set("hits", Json::number(b.hits));
    baseline.set("misses", Json::number(b.misses));
    baseline.set("evictions", Json::number(b.evictions));
    j.set("baseline", std::move(baseline));

    Json ops = Json::object();
    auto n = [](const ServeCounter &c) {
        return Json::number(c.value());
    };
    ops.set("submits", n(metrics_.submits));
    ops.set("run_experiments", n(metrics_.runExperiments));
    ops.set("stats", n(metrics_.statsReqs));
    ops.set("metrics", n(metrics_.metricsReqs));
    ops.set("flushes", n(metrics_.flushes));
    ops.set("pings", n(metrics_.pings));
    ops.set("shutdowns", n(metrics_.shutdowns));
    ops.set("bad_requests", n(metrics_.badRequests));
    j.set("ops", std::move(ops));

    Json rows = Json::object();
    rows.set("streamed", n(metrics_.rowsStreamed));
    rows.set("cached", n(metrics_.rowsCached));
    rows.set("computed", n(metrics_.rowsComputed));
    rows.set("expired", n(metrics_.rowsExpired));
    j.set("rows", std::move(rows));

    // Result-cache hit/miss per experiment ("_adhoc" = plain
    // submits), counted at admission time.
    j.set("experiments", metrics_.experimentsJson());

    // Trials admitted per miss-cost backend, so a stats reply says
    // which pricing model the served rows used.
    j.set("cost_backends", metrics_.costBackendsJson());

    Json rej = Json::object();
    rej.set("overloaded", n(metrics_.rejectedOverloaded));
    rej.set("shutting_down", n(metrics_.rejectedShuttingDown));
    j.set("rejected", std::move(rej));

    Json shard = Json::object();
    {
        std::lock_guard<std::mutex> lock(reservationsMutex_);
        shard.set("reservations",
                  Json::number(static_cast<std::uint64_t>(
                      reservations_.size())));
    }
    shard.set("reserved_slots",
              Json::number(static_cast<std::uint64_t>(
                  queue_.reserved())));
    shard.set("reserves", n(metrics_.reserves));
    shard.set("reserve_rejects", n(metrics_.reserveRejects));
    shard.set("releases", n(metrics_.releases));
    shard.set("run_jobs", n(metrics_.runJobsReqs));
    j.set("shard", std::move(shard));

    Json net = Json::object();
    net.set("flushes", n(metrics_.netFlushes));
    net.set("flushed_bytes", n(metrics_.netFlushedBytes));
    net.set("batched_rows", n(metrics_.netBatchedRows));
    j.set("net", std::move(net));

    Json sess = Json::object();
    sess.set("opened", n(metrics_.sessionsOpened));
    sess.set("closed", n(metrics_.sessionsClosed));
    j.set("sessions", std::move(sess));

    Json lat = Json::object();
    lat.set("queue_wait", metrics_.queueWait.toJson());
    lat.set("run", metrics_.runStage.toJson());
    lat.set("request", metrics_.request.toJson());
    j.set("latency", std::move(lat));
    return j;
}

} // namespace serve
} // namespace tw
