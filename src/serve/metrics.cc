#include "serve/metrics.hh"

namespace tw
{
namespace serve
{

void
MetricsRegistry::recordCacheLookup(const std::string &experiment,
                                   bool hit)
{
    std::lock_guard<std::mutex> lock(experimentsMutex_);
    LookupCounts &c = experimentLookups_[experiment];
    if (hit)
        ++c.hits;
    else
        ++c.misses;
}

void
MetricsRegistry::recordCostBackend(const std::string &backend)
{
    std::lock_guard<std::mutex> lock(experimentsMutex_);
    ++costBackendTrials_[backend];
}

Json
MetricsRegistry::costBackendsJson() const
{
    std::lock_guard<std::mutex> lock(experimentsMutex_);
    Json j = Json::object();
    for (const auto &[name, trials] : costBackendTrials_)
        j.set(name, Json::number(trials));
    return j;
}

Json
MetricsRegistry::experimentsJson() const
{
    std::lock_guard<std::mutex> lock(experimentsMutex_);
    Json j = Json::object();
    for (const auto &[name, counts] : experimentLookups_) {
        Json e = Json::object();
        e.set("hits", Json::number(counts.hits));
        e.set("misses", Json::number(counts.misses));
        j.set(name, std::move(e));
    }
    return j;
}

} // namespace serve
} // namespace tw
