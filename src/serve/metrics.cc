#include "serve/metrics.hh"

namespace tw
{
namespace serve
{

LatencyStat::Snapshot
LatencyStat::snapshot() const
{
    Snapshot s;
    s.count = count_.load(std::memory_order_relaxed);
    if (s.count == 0)
        return s;
    s.meanUs = static_cast<double>(
                   sumUs_.load(std::memory_order_relaxed))
               / static_cast<double>(s.count);
    s.maxUs = static_cast<double>(
        maxUs_.load(std::memory_order_relaxed));

    // Quantiles from the histogram: the value reported for a
    // bucket is its upper bound 2^i us (conservative).
    std::array<std::uint64_t, kBuckets> counts;
    std::uint64_t total = 0;
    for (unsigned i = 0; i < kBuckets; ++i) {
        counts[i] = buckets_[i].load(std::memory_order_relaxed);
        total += counts[i];
    }
    auto quantile = [&](double q) -> double {
        if (total == 0)
            return 0.0;
        std::uint64_t target = static_cast<std::uint64_t>(
            q * static_cast<double>(total - 1));
        std::uint64_t seen = 0;
        for (unsigned i = 0; i < kBuckets; ++i) {
            seen += counts[i];
            if (seen > target)
                return static_cast<double>(1ull << i);
        }
        return static_cast<double>(1ull << (kBuckets - 1));
    };
    s.p50Us = quantile(0.50);
    s.p99Us = quantile(0.99);
    return s;
}

Json
LatencyStat::toJson() const
{
    Snapshot s = snapshot();
    Json j = Json::object();
    j.set("count", Json::number(s.count));
    j.set("mean_us", Json::number(s.meanUs));
    j.set("p50_us", Json::number(s.p50Us));
    j.set("p99_us", Json::number(s.p99Us));
    j.set("max_us", Json::number(s.maxUs));
    return j;
}

void
MetricsRegistry::recordCacheLookup(const std::string &experiment,
                                   bool hit)
{
    std::lock_guard<std::mutex> lock(experimentsMutex_);
    LookupCounts &c = experimentLookups_[experiment];
    if (hit)
        ++c.hits;
    else
        ++c.misses;
}

Json
MetricsRegistry::experimentsJson() const
{
    std::lock_guard<std::mutex> lock(experimentsMutex_);
    Json j = Json::object();
    for (const auto &[name, counts] : experimentLookups_) {
        Json e = Json::object();
        e.set("hits", Json::number(counts.hits));
        e.set("misses", Json::number(counts.misses));
        j.set(name, std::move(e));
    }
    return j;
}

} // namespace serve
} // namespace tw
