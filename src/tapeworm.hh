/**
 * @file
 * Umbrella header: the full public API of the Tapeworm II
 * reproduction.
 *
 * Downstream users can include this single header and work with:
 *  - makeWorkload()/makeSuite() to build the paper's workload suite;
 *  - System + SimScope to boot the simulated machine;
 *  - Tapeworm / TapewormTlb / TapewormMultiLevel for trap-driven
 *    simulation, PixieClient + Cache2000 for the trace-driven
 *    baseline, HybridClient for annotation-based simulation,
 *    OracleClient for validation;
 *  - Runner / runTrials for one-call experiments with the paper's
 *    slowdown metric;
 *  - UserTapeworm for live mprotect/SIGSEGV simulation of the
 *    calling process;
 *  - formatRunSpec()/parseRunSpec() canonical experiment text (the
 *    twserved wire format and cache key; the service itself lives
 *    in serve/ and is not pulled in here — it drags in sockets).
 */

#ifndef TW_TAPEWORM_HH
#define TW_TAPEWORM_HH

#include "base/logging.hh"
#include "base/random.hh"
#include "base/stats.hh"
#include "base/table.hh"
#include "base/thread_pool.hh"
#include "base/types.hh"

#include "mem/cache.hh"
#include "mem/kessler.hh"
#include "mem/set_sample.hh"
#include "mem/stack_sim.hh"
#include "mem/write_buffer.hh"

#include "machine/clock.hh"
#include "machine/ecc.hh"
#include "machine/ecc_memory.hh"
#include "machine/phys_mem.hh"

#include "os/system.hh"

#include "workload/fragmenting.hh"
#include "workload/loop_nest.hh"
#include "workload/spec.hh"

#include "core/cost_model.hh"
#include "core/multilevel.hh"
#include "core/tapeworm.hh"
#include "core/tapeworm_tlb.hh"

#include "trace/cache2000.hh"
#include "trace/hybrid.hh"
#include "trace/pixie.hh"
#include "trace/trace_buffer.hh"
#include "trace/trace_io.hh"

#include "harness/dilation.hh"
#include "harness/mux_client.hh"
#include "harness/oracle.hh"
#include "harness/runner.hh"
#include "harness/specio.hh"
#include "harness/trials.hh"

#include "utrap/utrap.hh"

#endif // TW_TAPEWORM_HH
