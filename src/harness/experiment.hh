/**
 * @file
 * The experiment layer: every table and figure of the paper as a
 * first-class value.
 *
 * A paper artifact is a *configured experiment* — a grid of RunSpecs,
 * a trial plan per grid point, and a presentation that turns the
 * outcomes into the published table. Encoding that as data
 * (ExperimentDef) instead of as 26 near-identical main() functions
 * buys three things at once:
 *
 *  - one driver (`bench_driver --run fig2`) replaces a binary per
 *    artifact, and `--list` enumerates everything the reproduction
 *    can regenerate;
 *  - the service (twserved) can run the same registry entry with a
 *    `run_experiment` op, reusing the same canonical spec text and
 *    therefore the same ResultCache keys as hand-submitted sweeps —
 *    a served run of `fig2` is bit-identical to a local one;
 *  - output is a row PIPELINE (StatSink) rather than printf glue:
 *    the same run can feed the human table, an NDJSON row stream,
 *    the BENCH_*.json perf report, and the wire — without the
 *    experiment knowing which are attached.
 *
 * Determinism contract: unit enumeration (experimentJobs) is a pure
 * function of (def, scale); trials dispatch through parallelFor with
 * per-index writes, so every outcome (minus hostSeconds) is
 * bit-identical to a serial run at any thread count — the PR 2
 * guarantee, inherited wholesale.
 */

#ifndef TW_HARNESS_EXPERIMENT_HH
#define TW_HARNESS_EXPERIMENT_HH

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "base/json.hh"
#include "harness/runner.hh"
#include "harness/trials.hh"

namespace tw
{

/**
 * How many trials one grid point runs, with which seeds. Seeds are
 * explicit so the serve layer can enumerate (and cache-key) every
 * job without private knowledge of the derivation rule.
 *
 * `seeds` is always the full enumeration — the UPPER BOUND an
 * adaptive plan may run. Job enumeration (experimentJobs) and
 * therefore server admission always see the full list; a run-time
 * stop merely leaves the tail unexecuted (rows keep their
 * full-enumeration seq values, so the emitted prefix is unchanged).
 */
struct TrialPlan
{
    std::vector<std::uint64_t> seeds;
    /** Pair each trial with its memoized uninstrumented baseline
     *  (fills RunOutcome::slowdown). */
    bool withSlowdown = false;
    /** CI-driven early stopping (disabled by default: classic fixed
     *  plan). Deliberately NOT serialized into specs or cache keys —
     *  adaptive trials hit the very same ResultCache entries the
     *  full plan would. */
    StopRule stopWhen;

    /** A single run with @p seed. */
    static TrialPlan one(std::uint64_t seed, bool with_slowdown = false);

    /** @p n trials seeded the runTrials way: mixSeed(base, 1000+t). */
    static TrialPlan derived(unsigned n, std::uint64_t base,
                             bool with_slowdown = false);

    /** Up to @p max_n derived trials, stopping early per @p rule
     *  (rule.enabled is forced on). */
    static TrialPlan adaptive(unsigned max_n, std::uint64_t base,
                              StopRule rule,
                              bool with_slowdown = false);
};

/** The seeds TrialPlan::derived produces (shared with runTrials). */
std::vector<std::uint64_t> derivedTrialSeeds(unsigned n,
                                             std::uint64_t base);

/** One grid point: an id unique within the experiment, a spec, and
 *  the trials to run on it. */
struct ExperimentUnit
{
    std::string id;
    RunSpec spec;
    TrialPlan plan;
};

struct ExperimentDef;
class ExperimentContext;

/**
 * One declarative experiment. `grid` builds the servable part (may
 * be empty for host-probe style artifacts); `present` renders the
 * human table from the grid outcomes and may run bespoke
 * non-Runner machinery of its own (write buffers, stack simulators,
 * live code counting).
 */
struct ExperimentDef
{
    /** Registry key (`--run fig2`). Stable, unique, lowercase. */
    std::string name;
    /** The paper artifact regenerated ("Figure 2", "Table 7"...). */
    std::string artifact;
    /** One-line description (banner + --list). */
    std::string description;
    /** BENCH_<report>.json stem; empty = no machine report. */
    std::string report;
    /** Default workload scale divisor (before TW_SCALE_DIV). */
    unsigned scaleDiv = 200;
    /** false: the artifact ignores TW_SCALE_DIV (e.g. synthetic
     *  streams that don't scale). */
    bool envScale = true;
    /** Print the standard banner before the run. */
    bool banner = true;
    /** Build the spec grid for @p scale. Null = no grid. */
    std::function<std::vector<ExperimentUnit>(unsigned scale)> grid;
    /** Render tables/metrics from the outcomes. Null = rows only. */
    std::function<void(ExperimentContext &ctx)> present;
};

/** One flattened (unit, trial) job: the unit of caching, queueing
 *  and row streaming. `seq` is the deterministic global row index. */
struct ExperimentJob
{
    std::string unit;
    std::uint64_t seq = 0;
    std::uint64_t trial = 0;
    std::uint64_t seed = 0;
    bool withSlowdown = false;
    RunSpec spec;
};

/**
 * The deterministic job enumeration of @p def at @p scale: units in
 * grid order, trials in plan order, seq densely increasing from 0.
 * Local driver and server both run exactly this list, which is what
 * makes their rows (and ResultCache keys) bit-identical.
 */
std::vector<ExperimentJob> experimentJobs(const ExperimentDef &def,
                                          unsigned scale);

/** One result row flowing through a StatSink. */
struct ExperimentRow
{
    std::string experiment;
    std::string unit;
    std::uint64_t seq = 0;
    std::uint64_t trial = 0;
    std::uint64_t seed = 0;
    /** Non-default cost backend name; empty (the table5 default)
     *  keeps the row bytes of the pre-backend schema. */
    std::string costBackend;
    const RunOutcome *outcome = nullptr;
};

/** The row tag of @p spec's cost backend: empty for the default
 *  (table5) so default rows stay byte-identical, the backend name
 *  otherwise. Follows the sim kind: only the simulator that runs
 *  prices misses. */
std::string costBackendTag(const RunSpec &spec);

/**
 * The canonical row object: {experiment, unit, seq, trial, seed,
 * [backend,] outcome} with outcome rendered by outcomeToJson
 * (hostSeconds excluded) and "backend" present only when
 * @p cost_backend is non-empty (a non-default backend). Served rows
 * re-render through this exact function, so `twctl --experiment`
 * output diffs clean against `bench_driver --run X --rows -`.
 */
Json experimentRowJson(const std::string &experiment,
                       const std::string &unit, std::uint64_t seq,
                       std::uint64_t trial, std::uint64_t seed,
                       const RunOutcome &outcome,
                       const std::string &cost_backend = std::string());

/**
 * Row pipeline stage. The engine drives every attached sink with
 * the banner/table text, each result row, and the scalar metrics;
 * sinks pick what they care about.
 */
class StatSink
{
  public:
    virtual ~StatSink() = default;

    /** Run is starting (after scale resolution). */
    virtual void begin(const ExperimentDef &def, unsigned scale)
    {
        (void)def;
        (void)scale;
    }

    /** Human-readable output chunk (banner, tables, notes). */
    virtual void text(const std::string &chunk) { (void)chunk; }

    /** One result row, in seq order. */
    virtual void row(const ExperimentRow &r) { (void)r; }

    /** One scalar metric (BENCH report channel). */
    virtual void metric(const std::string &key, double value)
    {
        (void)key;
        (void)value;
    }

    /** One string annotation (BENCH report channel) — host facts
     *  that are labels, not measurements (e.g. the SIMD level the
     *  run used). Kept apart from metric() so numeric consumers
     *  never see non-numeric fields. */
    virtual void note(const std::string &key, const std::string &value)
    {
        (void)key;
        (void)value;
    }

    /** Run finished (presentation included). */
    virtual void end(const ExperimentDef &def) { (void)def; }
};

/** Fan out to several sinks in order. Does not own them. */
class MultiSink : public StatSink
{
  public:
    void add(StatSink *sink) { sinks_.push_back(sink); }

    void begin(const ExperimentDef &def, unsigned scale) override;
    void text(const std::string &chunk) override;
    void row(const ExperimentRow &r) override;
    void metric(const std::string &key, double value) override;
    void note(const std::string &key, const std::string &value) override;
    void end(const ExperimentDef &def) override;

  private:
    std::vector<StatSink *> sinks_;
};

/** The human table channel: text chunks to a FILE* (stdout). */
class TablePrinterSink : public StatSink
{
  public:
    explicit TablePrinterSink(std::FILE *out = stdout) : out_(out) {}
    void text(const std::string &chunk) override;

  private:
    std::FILE *out_;
};

/** Canonical row stream: one experimentRowJson line per row. */
class NdjsonSink : public StatSink
{
  public:
    explicit NdjsonSink(std::FILE *out) : out_(out) {}
    void row(const ExperimentRow &r) override;

  private:
    std::FILE *out_;
};

/**
 * The BENCH_<report>.json reporter (schema_version 2): collects
 * metrics during the run and writes the report at end(), stamping
 * schema_version / experiment / generated_by alongside the legacy
 * bench / threads / wall_clock_s fields.
 */
/**
 * Write BENCH_<report>.json in the unified schema (schema_version,
 * bench, experiment, generated_by, threads, wall_clock_s, then the
 * metrics in insertion order) and print the [json] stdout line.
 * JsonReportSink and the legacy bench JsonReport wrapper both
 * funnel through here so every checked-in report stays uniform.
 *
 * @p obs_metrics optionally appends a `"metrics"` object — a
 * snapshot of the process-wide obs registry (engine.* counters and
 * friends). Host-side diagnostics only, like wall_clock_s: never
 * part of the canonical result rows.
 */
void writeBenchReport(
    const std::string &report, const std::string &experiment,
    const std::string &generated_by, double wall_clock_s,
    const std::vector<std::pair<std::string, double>> &metrics,
    const Json *obs_metrics = nullptr,
    const std::vector<std::pair<std::string, std::string>> &notes = {});

class JsonReportSink : public StatSink
{
  public:
    /** @p generated_by names the producing tool (argv[0] basename). */
    JsonReportSink(std::string report, std::string experiment,
                   std::string generated_by);

    void begin(const ExperimentDef &def, unsigned scale) override;
    void metric(const std::string &key, double value) override;
    void note(const std::string &key, const std::string &value) override;
    void end(const ExperimentDef &def) override;

    /** Also embed an obs-registry snapshot under `"metrics"` in the
     *  report (bench_driver --metrics). */
    void setIncludeObsMetrics(bool on) { includeObsMetrics_ = on; }

  private:
    std::string report_;
    std::string experiment_;
    std::string generatedBy_;
    std::chrono::steady_clock::time_point t0_;
    std::vector<std::pair<std::string, double>> metrics_;
    std::vector<std::pair<std::string, std::string>> notes_;
    bool includeObsMetrics_ = false;
};

/**
 * What present() sees: the grid outcomes plus the output channels.
 * Outcomes are indexed by unit id; missing ids are fatal (a typo in
 * a registration is a bug, not a condition).
 */
class ExperimentContext
{
  public:
    unsigned scale() const { return scale_; }
    /** --report passed: emit the [report] stdout lines too. */
    bool reportRequested() const { return report_; }

    const std::vector<ExperimentUnit> &units() const { return units_; }

    /** All trial outcomes of @p unit_id, in trial order. */
    const std::vector<RunOutcome> &
    outcomes(const std::string &unit_id) const;

    /** The single/first outcome of @p unit_id. */
    const RunOutcome &outcome(const std::string &unit_id) const;

    /** printf to the text channel. */
    void print(const char *fmt, ...)
        __attribute__((format(printf, 2, 3)));

    /** Record a scalar metric (BENCH report channel). */
    void metric(const std::string &key, double value);

    /** Record a string annotation (BENCH report channel). */
    void note(const std::string &key, const std::string &value);

  private:
    friend void runExperiment(const ExperimentDef &,
                              StatSink &,
                              const struct RunExperimentOptions &);

    ExperimentContext(StatSink &sink, unsigned scale, bool report)
        : sink_(sink), scale_(scale), report_(report)
    {
    }

    StatSink &sink_;
    unsigned scale_;
    bool report_;
    std::vector<ExperimentUnit> units_;
    std::map<std::string, std::vector<RunOutcome>> outcomes_;
};

struct RunExperimentOptions
{
    /** Override the scale divisor; 0 = envScaleDiv(def.scaleDiv)
     *  (or def.scaleDiv verbatim when !def.envScale). */
    unsigned scaleDiv = 0;
    /** Emit the [report] presentation extras (the driver pairs this
     *  with a JsonReportSink). */
    bool report = false;
};

/** The scale a run of @p def uses under @p override_scale. */
unsigned experimentScale(const ExperimentDef &def,
                         unsigned override_scale);

/**
 * Run @p def: banner, grid (trials in parallel, rows streamed in
 * seq order), then presentation. All output flows through @p sink.
 */
void runExperiment(const ExperimentDef &def, StatSink &sink,
                   const RunExperimentOptions &opts = {});

/**
 * The process-wide experiment registry. Registration happens from
 * static initializers (ExperimentRegistrar), so any binary linking
 * the tw_experiments object library sees the full catalogue; the
 * built-in `smoke` experiment registers from tw_harness itself.
 */
class ExperimentRegistry
{
  public:
    static ExperimentRegistry &instance();

    /** Fatal on duplicate name (two registrations colliding is a
     *  build error, not a runtime condition). */
    void add(ExperimentDef def);

    /** Null when unknown. */
    const ExperimentDef *find(const std::string &name) const;

    /** All names, sorted (the --list order). */
    std::vector<std::string> names() const;

    std::size_t size() const { return defs_.size(); }

  private:
    ExperimentRegistry() = default;
    std::map<std::string, ExperimentDef> defs_;
};

/** Registers @p def at static-init time. */
struct ExperimentRegistrar
{
    explicit ExperimentRegistrar(ExperimentDef def)
    {
        ExperimentRegistry::instance().add(std::move(def));
    }
};

} // namespace tw

#endif // TW_HARNESS_EXPERIMENT_HH
