/**
 * @file
 * Multi-trial experiment helpers (the Tables 7-10 methodology).
 *
 * A "trial" in the paper is a fresh run of the same workload on the
 * live machine: page allocation, sample selection and interrupt
 * phase all redraw. Here that is a new trial seed; everything else
 * is held fixed.
 */

#ifndef TW_HARNESS_TRIALS_HH
#define TW_HARNESS_TRIALS_HH

#include <vector>

#include "base/stats.hh"
#include "harness/runner.hh"

namespace tw
{

/**
 * Run @p n trials of @p spec with seeds derived from @p base_seed.
 *
 * Trials are dispatched across a thread pool (parallelism is across
 * trials, never within a simulated machine). Outcomes land in the
 * vector by trial index, and every field except the host wall-clock
 * time (RunOutcome::hostSeconds) is bit-identical to a serial run
 * regardless of @p threads.
 *
 * @param with_slowdown also run (memoized) baselines and fill the
 *        slowdown fields.
 * @param threads worker count; 0 = defaultThreads() (TW_THREADS).
 */
std::vector<RunOutcome> runTrials(const RunSpec &spec, unsigned n,
                                  std::uint64_t base_seed,
                                  bool with_slowdown = false,
                                  unsigned threads = 0);

/** Summary of estimated total misses across trials. */
Summary missSummary(const std::vector<RunOutcome> &outcomes);

/** Summary of slowdowns across trials. */
Summary slowdownSummary(const std::vector<RunOutcome> &outcomes);

/** Mean of a per-outcome metric. */
template <typename Fn>
double
meanOf(const std::vector<RunOutcome> &outcomes, Fn &&metric)
{
    if (outcomes.empty())
        return 0.0;
    double sum = 0.0;
    for (const auto &o : outcomes)
        sum += metric(o);
    return sum / static_cast<double>(outcomes.size());
}

} // namespace tw

#endif // TW_HARNESS_TRIALS_HH
