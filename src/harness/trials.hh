/**
 * @file
 * Multi-trial experiment helpers (the Tables 7-10 methodology).
 *
 * A "trial" in the paper is a fresh run of the same workload on the
 * live machine: page allocation, sample selection and interrupt
 * phase all redraw. Here that is a new trial seed; everything else
 * is held fixed.
 */

#ifndef TW_HARNESS_TRIALS_HH
#define TW_HARNESS_TRIALS_HH

#include <vector>

#include "base/stats.hh"
#include "harness/runner.hh"

namespace tw
{

/**
 * CI-driven adaptive trial stopping (the other half of the sampling
 * subsystem, applied across trials instead of within a stream).
 *
 * Trials run in batches; after each batch the Student-t confidence
 * interval of the per-trial miss estimates is evaluated IN TRIAL
 * ORDER over the completed prefix, and the sweep stops as soon as
 * the relative half-width reaches the target. Because the decision
 * looks only at a deterministic prefix, an adaptive sweep is
 * bit-identical to the same-length prefix of the full sweep at any
 * thread count — and its per-trial cache keys are the full plan's
 * keys (TrialPlan never enters the key), so a later full sweep
 * reuses every trial an adaptive sweep already paid for.
 */
struct StopRule
{
    /** false: run every planned trial (the classic fixed plan). */
    bool enabled = false;

    /** Stop when t-CI half-width / |mean| <= this. */
    double ciRelTarget = 0.05;

    /** Confidence level of the interval (two-sided). */
    double confidence = 0.95;

    /** Never stop before this many trials (a variance estimate from
     *  2-3 trials is too noisy to trust). */
    unsigned minTrials = 4;

    /** Trials launched per batch between CI evaluations. */
    unsigned batch = 4;
};

/** What an adaptive sweep ran and concluded. */
struct AdaptiveTrialsResult
{
    /** Completed trials, in trial order: a prefix of the planned
     *  seed list, bit-identical to the full sweep's prefix. */
    std::vector<RunOutcome> outcomes;

    /** The CI target was met before the plan was exhausted. */
    bool stoppedEarly = false;

    /** Mean and t half-width of estMisses over the prefix. */
    double mean = 0.0;
    double ciHalfWidth = 0.0;

    /** Trials the full plan would have run. */
    unsigned plannedTrials = 0;
};

/**
 * Run @p n trials of @p spec with seeds derived from @p base_seed.
 *
 * Trials are dispatched across a thread pool (parallelism is across
 * trials, never within a simulated machine). Outcomes land in the
 * vector by trial index, and every field except the host wall-clock
 * time (RunOutcome::hostSeconds) is bit-identical to a serial run
 * regardless of @p threads.
 *
 * @param with_slowdown also run (memoized) baselines and fill the
 *        slowdown fields.
 * @param threads worker count; 0 = defaultThreads() (TW_THREADS).
 */
std::vector<RunOutcome> runTrials(const RunSpec &spec, unsigned n,
                                  std::uint64_t base_seed,
                                  bool with_slowdown = false,
                                  unsigned threads = 0);

/**
 * Run at most seeds.size() trials of @p spec, stopping early once
 * @p rule's CI target is met (see StopRule). With rule.enabled ==
 * false this degenerates to runTrials over all seeds. Batches
 * dispatch through the same thread pool as runTrials; outcomes are
 * written per-index, so the returned prefix is bit-identical to the
 * full sweep's prefix regardless of @p threads.
 */
AdaptiveTrialsResult runTrialsAdaptive(
    const RunSpec &spec, const std::vector<std::uint64_t> &seeds,
    const StopRule &rule, bool with_slowdown = false,
    unsigned threads = 0);

/** Summary of estimated total misses across trials. */
Summary missSummary(const std::vector<RunOutcome> &outcomes);

/** Summary of slowdowns across trials. */
Summary slowdownSummary(const std::vector<RunOutcome> &outcomes);

/** Mean of a per-outcome metric. */
template <typename Fn>
double
meanOf(const std::vector<RunOutcome> &outcomes, Fn &&metric)
{
    if (outcomes.empty())
        return 0.0;
    double sum = 0.0;
    for (const auto &o : outcomes)
        sum += metric(o);
    return sum / static_cast<double>(outcomes.size());
}

} // namespace tw

#endif // TW_HARNESS_TRIALS_HH
