/**
 * @file
 * The validation oracle: a zero-cost, direct cache model.
 *
 * The oracle sees every reference of every registered task and runs
 * the plain cache model on it, charging no cycles — it is the
 * "perfect, free simulator" both real techniques are validated
 * against (the paper validates Tapeworm's user-task miss counts
 * against Cache2000 the same way, Section 4.2).
 *
 * Equivalence caveat inherent to trap-driven simulation: Tapeworm
 * never observes hits, so it cannot maintain recency. The oracle
 * therefore matches Tapeworm exactly for direct-mapped, FIFO and
 * Random configurations; with LRU the oracle is strictly the
 * trace-driven semantics.
 */

#ifndef TW_HARNESS_ORACLE_HH
#define TW_HARNESS_ORACLE_HH

#include <array>
#include <vector>

#include "base/bitops.hh"
#include "base/types.hh"
#include "core/tapeworm.hh"
#include "mem/cache.hh"
#include "mem/set_sample.hh"
#include "os/sim_client.hh"
#include "os/task.hh"

namespace tw
{

/**
 * Direct in-line cache simulation of all registered tasks.
 */
class OracleClient : public SimClient
{
  public:
    /**
     * @param config simulated cache.
     * @param num_frames physical frames of the machine (sizes the
     *        registration table).
     * @param sample_num / @param sample_denom / @param sample_seed
     *        optional set sampling, matching Tapeworm's selection
     *        for the same seed.
     */
    OracleClient(const CacheConfig &config, std::uint64_t num_frames,
                 unsigned sample_num = 1, unsigned sample_denom = 1,
                 std::uint64_t sample_seed = 0,
                 SimCacheKind kind = SimCacheKind::Instruction)
        : cache_(config), lineShift_(floorLog2(config.lineBytes)),
          sampleNum_(sample_num), sampleDenom_(sample_denom),
          kind_(kind), frameRefs_(num_frames, 0)
    {
        allSampled_ = sample_num == sample_denom;
        if (!allSampled_) {
            sampledSets_ = chooseSampledSets(config.numSets(),
                                             sample_num, sample_denom,
                                             sample_seed);
        }
    }

    Cycles
    onRef(const Task &task, Addr va, Addr pa, bool intr_masked,
          AccessKind kind = AccessKind::Fetch) override
    {
        (void)intr_masked; // a perfect observer misses nothing
        bool relevant =
            kind_ == SimCacheKind::Unified
            || (kind_ == SimCacheKind::Instruction
                && kind == AccessKind::Fetch)
            || (kind_ == SimCacheKind::Data
                && kind != AccessKind::Fetch);
        if (!relevant)
            return 0;
        if (frameRefs_[pa / kHostPageBytes] == 0)
            return 0; // unregistered page: outside the simulation

        LineRef ref;
        ref.vaLine = va >> lineShift_;
        ref.paLine = pa >> lineShift_;
        ref.tid = task.tid;
        if (!allSampled_ && !sampledSets_[cache_.setIndexOf(ref)])
            return 0;
        AccessResult res =
            cache_.access(ref, kind == AccessKind::Store);
        if (!res.hit)
            ++misses_[static_cast<unsigned>(task.component)];
        return 0;
    }

    void
    onPageMapped(const Task &task, Vpn vpn, Pfn pfn,
                 bool shared) override
    {
        (void)task;
        (void)vpn;
        (void)shared;
        ++frameRefs_[static_cast<std::size_t>(pfn)];
    }

    void
    onPageRemoved(const Task &task, Vpn vpn, Pfn pfn,
                  bool last_mapping) override
    {
        (void)task;
        (void)vpn;
        --frameRefs_[static_cast<std::size_t>(pfn)];
        if (last_mapping)
            cache_.flushPhysPage(static_cast<Addr>(pfn),
                                 kHostPageBytes);
    }

    void
    onDmaInvalidate(Pfn pfn) override
    {
        cache_.flushPhysPage(static_cast<Addr>(pfn), kHostPageBytes);
    }

    Counter
    totalMisses() const
    {
        Counter t = 0;
        for (Counter m : misses_)
            t += m;
        return t;
    }

    Counter
    misses(Component c) const
    {
        return misses_[static_cast<unsigned>(c)];
    }

    double
    estimatedTotalMisses() const
    {
        return static_cast<double>(totalMisses())
               * static_cast<double>(sampleDenom_)
               / static_cast<double>(sampleNum_);
    }

    const Cache &cache() const { return cache_; }

  private:
    Cache cache_;
    unsigned lineShift_;
    unsigned sampleNum_;
    unsigned sampleDenom_;
    SimCacheKind kind_;
    bool allSampled_ = true;
    std::vector<bool> sampledSets_;
    std::vector<std::uint32_t> frameRefs_;
    std::array<Counter, kNumComponents> misses_{};
};

} // namespace tw

#endif // TW_HARNESS_ORACLE_HH
