#include "harness/runner.hh"

#include <chrono>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>

#include "base/logging.hh"
#include "harness/oracle.hh"

namespace tw
{

namespace
{

/**
 * One memoized baseline. The entry is created under the map lock but
 * computed outside it under a per-key once_flag, so concurrent
 * trials of the same spec+seed block only each other (one computes,
 * the rest wait) and never serialize against different keys.
 */
struct BaselineEntry
{
    std::once_flag once;
    Cycles cycles = 0;
};

std::shared_mutex baselinesMutex;
std::map<std::string, std::shared_ptr<BaselineEntry>> baselines;

std::shared_ptr<BaselineEntry>
baselineEntry(const std::string &key)
{
    {
        std::shared_lock<std::shared_mutex> rlock(baselinesMutex);
        auto it = baselines.find(key);
        if (it != baselines.end())
            return it->second;
    }
    std::unique_lock<std::shared_mutex> wlock(baselinesMutex);
    return baselines.try_emplace(key, std::make_shared<BaselineEntry>())
        .first->second;
}

double
hostNow()
{
    using clock = std::chrono::steady_clock;
    return std::chrono::duration<double>(
               clock::now().time_since_epoch())
        .count();
}

} // anonymous namespace

std::string
Runner::baselineKey(const RunSpec &spec, std::uint64_t trial_seed)
{
    const SystemConfig &s = spec.sys;
    return csprintf(
        "%s|%llu|%llu|%u|%llu|%d|%llu|%llu|%u|%llu|%llu|%d%d%d|%d|%llu",
        spec.workload.name.c_str(),
        static_cast<unsigned long long>(spec.workload.totalInstr),
        static_cast<unsigned long long>(s.physMemBytes), s.cpiBase,
        static_cast<unsigned long long>(s.clockInterval),
        static_cast<int>(s.clockJitter),
        static_cast<unsigned long long>(s.tickHandlerInstr),
        static_cast<unsigned long long>(s.quantumInstr),
        s.dmaFlushPeriod,
        static_cast<unsigned long long>(s.forkKernelInstr),
        static_cast<unsigned long long>(s.faultKernelCycles),
        static_cast<int>(s.scope.user), static_cast<int>(s.scope.servers),
        static_cast<int>(s.scope.kernel),
        static_cast<int>(s.allocPolicy),
        static_cast<unsigned long long>(trial_seed));
}

RunOutcome
Runner::runOne(const RunSpec &spec, std::uint64_t trial_seed)
{
    SystemConfig sys = spec.sys;
    sys.trialSeed = trial_seed;
    System system(sys, spec.workload);

    RunOutcome out;
    double t0 = hostNow();

    switch (spec.sim) {
      case SimKind::None: {
        out.run = system.run();
        break;
      }
      case SimKind::Tapeworm: {
        TapewormConfig cfg = spec.tw;
        // The trial seed picks the set sample unless the caller
        // pinned one explicitly.
        if (cfg.sampleSeed == 0)
            cfg.sampleSeed = mixSeed(trial_seed, 0x7e57);
        Tapeworm tapeworm(system.physMem(), cfg);
        system.setClient(&tapeworm);
        out.run = system.run();
        out.rawMisses =
            static_cast<double>(tapeworm.stats().totalMisses());
        out.estMisses = tapeworm.estimatedTotalMisses();
        for (unsigned c = 0; c < kNumComponents; ++c) {
            out.missesByComp[c] =
                tapeworm.estimatedMisses(static_cast<Component>(c));
        }
        out.maskedTrapRefs = tapeworm.stats().maskedTrapRefs;
        out.lostMaskedMisses = tapeworm.stats().lostMaskedMisses;
        break;
      }
      case SimKind::TapewormTlbSim: {
        TapewormTlbConfig cfg = spec.tlb;
        if (cfg.filterFrames == 0)
            cfg.filterFrames = system.physMem().numFrames();
        TapewormTlb tlb(cfg);
        system.setClient(&tlb);
        out.run = system.run();
        out.rawMisses =
            static_cast<double>(tlb.stats().totalMisses());
        out.estMisses = out.rawMisses;
        for (unsigned c = 0; c < kNumComponents; ++c) {
            out.missesByComp[c] = static_cast<double>(
                tlb.stats().misses[c]);
        }
        out.maskedTrapRefs = tlb.stats().maskedTrapRefs;
        out.lostMaskedMisses = tlb.stats().lostMaskedMisses;
        break;
      }
      case SimKind::TraceDriven: {
        Cache2000Config cfg = spec.c2k;
        if (cfg.sampleSeed == 0)
            cfg.sampleSeed = mixSeed(trial_seed, 0x7e57);
        Cache2000 c2k(cfg);
        PixieClient pixie(spec.traceTarget, &c2k, spec.pixie);
        system.setClient(&pixie);
        out.run = system.run();
        out.rawMisses = static_cast<double>(c2k.stats().misses);
        out.estMisses = c2k.estimatedMisses();
        // Pixie sees a single user task only.
        out.missesByComp[static_cast<unsigned>(Component::User)] =
            out.estMisses;
        break;
      }
      case SimKind::Oracle: {
        OracleClient oracle(spec.tw.cache,
                            system.physMem().numFrames(),
                            spec.tw.sampleNum, spec.tw.sampleDenom,
                            spec.tw.sampleSeed != 0
                                ? spec.tw.sampleSeed
                                : mixSeed(trial_seed, 0x7e57),
                            spec.tw.kind);
        system.setClient(&oracle);
        out.run = system.run();
        out.rawMisses = static_cast<double>(oracle.totalMisses());
        out.estMisses = oracle.estimatedTotalMisses();
        for (unsigned c = 0; c < kNumComponents; ++c) {
            out.missesByComp[c] = static_cast<double>(
                oracle.misses(static_cast<Component>(c)));
        }
        break;
      }
    }

    out.hostSeconds = hostNow() - t0;
    return out;
}

RunOutcome
Runner::runWithSlowdown(const RunSpec &spec, std::uint64_t trial_seed)
{
    std::shared_ptr<BaselineEntry> entry =
        baselineEntry(baselineKey(spec, trial_seed));
    std::call_once(entry->once, [&] {
        RunSpec normal = spec;
        normal.sim = SimKind::None;
        entry->cycles = runOne(normal, trial_seed).run.cycles;
    });
    Cycles normal_cycles = entry->cycles;

    RunOutcome out = runOne(spec, trial_seed);
    out.normalCycles = normal_cycles;
    TW_ASSERT(normal_cycles > 0, "empty baseline run");
    double overhead = static_cast<double>(out.run.cycles)
                      - static_cast<double>(normal_cycles);
    out.slowdown = overhead / static_cast<double>(normal_cycles);
    return out;
}

void
Runner::clearBaselineCache()
{
    std::unique_lock<std::shared_mutex> wlock(baselinesMutex);
    baselines.clear();
}

} // namespace tw
