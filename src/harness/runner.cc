#include "harness/runner.hh"

#include <chrono>
#include <cstdlib>
#include <memory>
#include <mutex>

#include "base/arena.hh"
#include "base/logging.hh"
#include "base/lru_map.hh"
#include "harness/oracle.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "sample/interval_sim.hh"
#include "sample/profile.hh"

namespace tw
{

namespace
{

/**
 * One memoized baseline. The entry is created under the map lock but
 * computed outside it under a per-key once_flag, so concurrent
 * trials of the same spec+seed block only each other (one computes,
 * the rest wait) and never serialize against different keys. The
 * shared_ptr keeps an entry alive for threads still computing or
 * reading it even if the LRU evicts the key meanwhile.
 */
struct BaselineEntry
{
    std::once_flag once;
    Cycles cycles = 0;
};

constexpr std::size_t kDefaultBaselineCap = 4096;

std::size_t
envBaselineCap()
{
    if (const char *cap = std::getenv("TW_BASELINE_CAP")) {
        long v = std::atol(cap);
        if (v > 0)
            return static_cast<std::size_t>(v);
    }
    return kDefaultBaselineCap;
}

std::mutex baselinesMutex;
std::uint64_t baselineHits = 0;
std::uint64_t baselineMisses = 0;

LruMap<std::string, std::shared_ptr<BaselineEntry>> &
baselines()
{
    static LruMap<std::string, std::shared_ptr<BaselineEntry>> map(
        envBaselineCap());
    return map;
}

std::shared_ptr<BaselineEntry>
baselineEntry(const std::string &key)
{
    static obs::Counter obsHits =
        obs::registry().counter("engine.baseline.hits");
    static obs::Counter obsMisses =
        obs::registry().counter("engine.baseline.misses");
    std::lock_guard<std::mutex> lock(baselinesMutex);
    auto &map = baselines();
    if (std::shared_ptr<BaselineEntry> *entry = map.find(key)) {
        ++baselineHits;
        obsHits.inc();
        return *entry;
    }
    ++baselineMisses;
    obsMisses.inc();
    return map.insert(key, std::make_shared<BaselineEntry>());
}

double
hostNow()
{
    using clock = std::chrono::steady_clock;
    return std::chrono::duration<double>(
               clock::now().time_since_epoch())
        .count();
}

} // anonymous namespace

std::string
Runner::baselineKey(const RunSpec &spec, std::uint64_t trial_seed)
{
    const SystemConfig &s = spec.sys;
    return csprintf(
        "%s|%llu|%llu|%u|%llu|%d|%llu|%llu|%u|%llu|%llu|%d%d%d|%d|%llu",
        spec.workload.name.c_str(),
        static_cast<unsigned long long>(spec.workload.totalInstr),
        static_cast<unsigned long long>(s.physMemBytes), s.cpiBase,
        static_cast<unsigned long long>(s.clockInterval),
        static_cast<int>(s.clockJitter),
        static_cast<unsigned long long>(s.tickHandlerInstr),
        static_cast<unsigned long long>(s.quantumInstr),
        s.dmaFlushPeriod,
        static_cast<unsigned long long>(s.forkKernelInstr),
        static_cast<unsigned long long>(s.faultKernelCycles),
        static_cast<int>(s.scope.user), static_cast<int>(s.scope.servers),
        static_cast<int>(s.scope.kernel),
        static_cast<int>(s.allocPolicy),
        static_cast<unsigned long long>(trial_seed));
}

bool
Runner::sampleEligible(const RunSpec &spec)
{
    if (!spec.sample.enabled || spec.sim != SimKind::Tapeworm)
        return false;
    const TapewormConfig &tw = spec.tw;
    if (tw.kind != SimCacheKind::Instruction)
        return false;
    // Time-dependent cost backends (dram) price a miss by WHEN it
    // happens; interval replay reconstructs residency, not time, so
    // such specs run in full (counted in engine.sample.fallbacks).
    if (tw.costBackend.kind == CostBackendKind::Dram)
        return false;
    // Exact boundary reconstruction holds only for direct-mapped
    // virtually-indexed caches (the resident line of a set is the
    // most recently referenced line mapping to it).
    if (tw.cache.assoc != 1 || tw.cache.indexing != Indexing::Virtual)
        return false;
    // The estimator replays one user stream: the full run must trace
    // exactly that stream and nothing else.
    const SimScope &scope = spec.sys.scope;
    if (!scope.user || scope.servers || scope.kernel)
        return false;
    if (spec.workload.taskCount != 1
        || spec.workload.concurrency != 1
        || spec.workload.binaries.size() != 1)
        return false;
    // DMA buffer recycling flushes lines at times the stream replay
    // cannot see; such specs run in full.
    if (spec.sys.dmaFlushPeriod != 0)
        return false;
    // Below four intervals sampling cannot pay for itself.
    return spec.workload.userInstr()
           >= 4 * static_cast<Counter>(spec.sample.intervalRefs);
}

namespace
{

/** The sampled Tapeworm estimate, in place of a machine run. */
void
runSampled(const RunSpec &spec, const TapewormConfig &cfg,
           RunOutcome &out)
{
    static obs::Counter obsRuns =
        obs::registry().counter("engine.sample.runs");
    static obs::Counter obsIntervalsTotal =
        obs::registry().counter("engine.sample.intervals_total");
    static obs::Counter obsIntervalsSim =
        obs::registry().counter("engine.sample.intervals_simulated");
    static obs::Counter obsRefsSim =
        obs::registry().counter("engine.sample.refs_simulated");
    static obs::Counter obsRefsSkipped =
        obs::registry().counter("engine.sample.refs_skipped");

    const StreamParams &params = spec.workload.binaries[0];
    // Replicate how the OS seeds and budgets the first (only) user
    // task: see System::spawnNextUser.
    std::uint64_t reset_seed = mixSeed(params.seed, 0x5eed00);
    Counter budget =
        std::max<Counter>(1, spec.workload.userInstr()
                                 / spec.workload.taskCount);

    std::shared_ptr<const SamplePlan> plan = getSamplePlan(
        params, reset_seed, budget, spec.sample, cfg.cache);
    IntervalEstimate est =
        estimateByIntervals(*plan, cfg, spec.sample);

    out.run.instr[static_cast<unsigned>(Component::User)] = budget;
    out.run.tasksCreated = 1;
    out.rawMisses = est.rawMisses;
    out.estMisses = est.estMisses;
    out.missesByComp[static_cast<unsigned>(Component::User)] =
        est.estMisses;
    out.sample.used = true;
    out.sample.intervalsTotal = est.intervalsTotal;
    out.sample.intervalsSimulated = est.intervalsSimulated;
    out.sample.refsSimulated = est.refsSimulated;
    out.sample.refsTotal = est.refsTotal;
    out.sample.ciHalfWidth = est.ciHalfWidth;

    obsRuns.inc();
    obsIntervalsTotal.add(est.intervalsTotal);
    obsIntervalsSim.add(est.intervalsSimulated);
    obsRefsSim.add(est.refsSimulated);
    obsRefsSkipped.add(est.refsTotal - std::min(est.refsTotal,
                                                est.refsSimulated));
}

} // anonymous namespace

RunOutcome
Runner::runOne(const RunSpec &spec, std::uint64_t trial_seed)
{
    obs::ScopedSpan span("trial", "harness");
    // Every trial-lifetime allocation below (page tables, cache
    // line arrays, trap bitmaps) lands in this worker's retained
    // bump arena; the scope rewinds it on exit, so in steady state
    // a trial costs zero malloc/free. Declared first so the System
    // and clients are destroyed before the rewind.
    ArenaScope arenaScope;
    const std::size_t reserved0 = arenaScope.arena().reservedBytes();

    if (spec.sample.enabled && spec.sim == SimKind::Tapeworm) {
        if (sampleEligible(spec)) {
            RunOutcome out;
            double t0 = hostNow();
            TapewormConfig cfg = spec.tw;
            if (cfg.sampleSeed == 0)
                cfg.sampleSeed = mixSeed(trial_seed, 0x7e57);
            runSampled(spec, cfg, out);
            out.hostSeconds = hostNow() - t0;
            return out;
        }
        static obs::Counter obsSampleFallbacks =
            obs::registry().counter("engine.sample.fallbacks");
        obsSampleFallbacks.inc();
    }

    SystemConfig sys = spec.sys;
    sys.trialSeed = trial_seed;
    System system(sys, spec.workload);

    RunOutcome out;
    double t0 = hostNow();

    switch (spec.sim) {
      case SimKind::None: {
        out.run = system.run();
        break;
      }
      case SimKind::Tapeworm: {
        TapewormConfig cfg = spec.tw;
        // The trial seed picks the set sample unless the caller
        // pinned one explicitly.
        if (cfg.sampleSeed == 0)
            cfg.sampleSeed = mixSeed(trial_seed, 0x7e57);
        Tapeworm tapeworm(system.physMem(), cfg);
        system.setClient(&tapeworm);
        out.run = system.run();
        out.rawMisses =
            static_cast<double>(tapeworm.stats().totalMisses());
        out.estMisses = tapeworm.estimatedTotalMisses();
        for (unsigned c = 0; c < kNumComponents; ++c) {
            out.missesByComp[c] =
                tapeworm.estimatedMisses(static_cast<Component>(c));
        }
        out.maskedTrapRefs = tapeworm.stats().maskedTrapRefs;
        out.lostMaskedMisses = tapeworm.stats().lostMaskedMisses;
        break;
      }
      case SimKind::TapewormTlbSim: {
        TapewormTlbConfig cfg = spec.tlb;
        if (cfg.filterFrames == 0)
            cfg.filterFrames = system.physMem().numFrames();
        TapewormTlb tlb(cfg);
        system.setClient(&tlb);
        out.run = system.run();
        out.rawMisses =
            static_cast<double>(tlb.stats().totalMisses());
        out.estMisses = out.rawMisses;
        for (unsigned c = 0; c < kNumComponents; ++c) {
            out.missesByComp[c] = static_cast<double>(
                tlb.stats().misses[c]);
        }
        out.maskedTrapRefs = tlb.stats().maskedTrapRefs;
        out.lostMaskedMisses = tlb.stats().lostMaskedMisses;
        break;
      }
      case SimKind::TraceDriven: {
        Cache2000Config cfg = spec.c2k;
        if (cfg.sampleSeed == 0)
            cfg.sampleSeed = mixSeed(trial_seed, 0x7e57);
        Cache2000 c2k(cfg);
        PixieClient pixie(spec.traceTarget, &c2k, spec.pixie);
        system.setClient(&pixie);
        out.run = system.run();
        out.rawMisses = static_cast<double>(c2k.stats().misses);
        out.estMisses = c2k.estimatedMisses();
        // Pixie sees a single user task only.
        out.missesByComp[static_cast<unsigned>(Component::User)] =
            out.estMisses;
        break;
      }
      case SimKind::Oracle: {
        OracleClient oracle(spec.tw.cache,
                            system.physMem().numFrames(),
                            spec.tw.sampleNum, spec.tw.sampleDenom,
                            spec.tw.sampleSeed != 0
                                ? spec.tw.sampleSeed
                                : mixSeed(trial_seed, 0x7e57),
                            spec.tw.kind);
        system.setClient(&oracle);
        out.run = system.run();
        out.rawMisses = static_cast<double>(oracle.totalMisses());
        out.estMisses = oracle.estimatedTotalMisses();
        for (unsigned c = 0; c < kNumComponents; ++c) {
            out.missesByComp[c] = static_cast<double>(
                oracle.misses(static_cast<Component>(c)));
        }
        break;
      }
    }

    out.hostSeconds = hostNow() - t0;

    // All allocations have happened by now; account the arena's
    // growth (zero once a worker's chunks are warm) and the trial.
    static obs::Counter obsArenaBytes =
        obs::registry().counter("engine.arena.bytes_reserved");
    static obs::Counter obsArenaTrials =
        obs::registry().counter("engine.arena.trials_served");
    obsArenaBytes.add(arenaScope.arena().reservedBytes() - reserved0);
    obsArenaTrials.inc();
    return out;
}

RunOutcome
Runner::runWithSlowdown(const RunSpec &spec, std::uint64_t trial_seed)
{
    std::shared_ptr<BaselineEntry> entry =
        baselineEntry(baselineKey(spec, trial_seed));
    std::call_once(entry->once, [&] {
        obs::ScopedSpan span("baseline", "harness");
        RunSpec normal = spec;
        normal.sim = SimKind::None;
        entry->cycles = runOne(normal, trial_seed).run.cycles;
    });
    Cycles normal_cycles = entry->cycles;

    RunOutcome out = runOne(spec, trial_seed);
    out.normalCycles = normal_cycles;
    TW_ASSERT(normal_cycles > 0, "empty baseline run");
    double overhead = static_cast<double>(out.run.cycles)
                      - static_cast<double>(normal_cycles);
    out.slowdown = overhead / static_cast<double>(normal_cycles);
    return out;
}

void
Runner::clearBaselineCache()
{
    std::lock_guard<std::mutex> lock(baselinesMutex);
    baselines().clear();
    baselineHits = 0;
    baselineMisses = 0;
}

void
Runner::setBaselineCacheCapacity(std::size_t entries)
{
    std::lock_guard<std::mutex> lock(baselinesMutex);
    baselines().setCapacity(entries);
}

BaselineCacheStats
Runner::baselineCacheStats()
{
    std::lock_guard<std::mutex> lock(baselinesMutex);
    BaselineCacheStats s;
    s.size = baselines().size();
    s.capacity = baselines().capacity();
    s.hits = baselineHits;
    s.misses = baselineMisses;
    s.evictions = baselines().evictions();
    return s;
}

} // namespace tw
