/**
 * @file
 * Fan-out client: several simulators observe one run.
 *
 * Section 3.2 claims tw_replace() supports "split, unified or
 * multi-level caches"; a split I/D organization is two simulated
 * structures watching the same execution. The machine accepts one
 * SimClient, so MuxClient forwards every hook to any number of
 * children and sums their instrumentation costs — one run, one
 * dilation, N structures (e.g. an I-cache Tapeworm + a D-cache
 * Tapeworm + a TLB).
 *
 * Note the cost semantics: children's handler cycles add up, which
 * is exactly what happens on real hardware when one host drives
 * several simulations at once.
 */

#ifndef TW_HARNESS_MUX_CLIENT_HH
#define TW_HARNESS_MUX_CLIENT_HH

#include <vector>

#include "os/sim_client.hh"

namespace tw
{

/**
 * Forwards SimClient hooks to an ordered list of children.
 */
class MuxClient : public SimClient
{
  public:
    MuxClient() = default;

    /** Append a child (not owned; must outlive the run). The
     *  child's trap filter is captured here, so add after the child
     *  is fully configured. */
    void
    add(SimClient *client)
    {
        children_.push_back({client, client->trapFilter()});
    }

    std::size_t size() const { return children_.size(); }

    Cycles
    onRef(const Task &task, Addr va, Addr pa, bool intr_masked,
          AccessKind kind = AccessKind::Fetch) override
    {
        Cycles total = 0;
        for (const Child &child : children_) {
            // A child with a filter published a guarantee: when its
            // bit is clear, or the kind is outside its mask, its
            // onRef is a side-effect-free zero. Honour it per child,
            // so a trace-driven sibling (no filter) still sees every
            // reference.
            if (child.filter.bits
                && (!child.filter.wants(kind)
                    || !child.filter.test(pa)))
                continue;
            total += child.client->onRef(task, va, pa, intr_masked,
                                         kind);
        }
        return total;
    }

    /** The mux is filterable only when every child publishes a view
     *  over the SAME bit storage (e.g. several Tapeworms sharing one
     *  PhysMem): then a clear bit silences all of them at once. The
     *  composite kind mask is the union of the children's — a kind
     *  any child wants must reach the mux, which then re-filters per
     *  child above. Any filterless or differently-stored child makes
     *  the composite null, and the per-child tests do the work. */
    TrapFilterView
    trapFilter() const override
    {
        if (children_.empty())
            return {};
        TrapFilterView common = children_.front().filter;
        if (!common.bits)
            return {};
        for (const Child &child : children_) {
            if (child.filter.bits != common.bits
                || child.filter.shift != common.shift)
                return {};
            common.kinds |= child.filter.kinds;
        }
        return common;
    }

    void
    onPageMapped(const Task &task, Vpn vpn, Pfn pfn,
                 bool shared) override
    {
        for (const Child &child : children_)
            child.client->onPageMapped(task, vpn, pfn, shared);
    }

    void
    onPageRemoved(const Task &task, Vpn vpn, Pfn pfn,
                  bool last_mapping) override
    {
        for (const Child &child : children_)
            child.client->onPageRemoved(task, vpn, pfn, last_mapping);
    }

    void
    onDmaInvalidate(Pfn pfn) override
    {
        for (const Child &child : children_)
            child.client->onDmaInvalidate(pfn);
    }

  private:
    struct Child
    {
        SimClient *client;
        TrapFilterView filter;
    };

    std::vector<Child> children_;
};

} // namespace tw

#endif // TW_HARNESS_MUX_CLIENT_HH
