/**
 * @file
 * Fan-out client: several simulators observe one run.
 *
 * Section 3.2 claims tw_replace() supports "split, unified or
 * multi-level caches"; a split I/D organization is two simulated
 * structures watching the same execution. The machine accepts one
 * SimClient, so MuxClient forwards every hook to any number of
 * children and sums their instrumentation costs — one run, one
 * dilation, N structures (e.g. an I-cache Tapeworm + a D-cache
 * Tapeworm + a TLB).
 *
 * Note the cost semantics: children's handler cycles add up, which
 * is exactly what happens on real hardware when one host drives
 * several simulations at once.
 */

#ifndef TW_HARNESS_MUX_CLIENT_HH
#define TW_HARNESS_MUX_CLIENT_HH

#include <vector>

#include "os/sim_client.hh"

namespace tw
{

/**
 * Forwards SimClient hooks to an ordered list of children.
 */
class MuxClient : public SimClient
{
  public:
    MuxClient() = default;

    /** Append a child (not owned; must outlive the run). */
    void add(SimClient *client) { children_.push_back(client); }

    std::size_t size() const { return children_.size(); }

    Cycles
    onRef(const Task &task, Addr va, Addr pa, bool intr_masked,
          AccessKind kind = AccessKind::Fetch) override
    {
        Cycles total = 0;
        for (SimClient *child : children_)
            total += child->onRef(task, va, pa, intr_masked, kind);
        return total;
    }

    void
    onPageMapped(const Task &task, Vpn vpn, Pfn pfn,
                 bool shared) override
    {
        for (SimClient *child : children_)
            child->onPageMapped(task, vpn, pfn, shared);
    }

    void
    onPageRemoved(const Task &task, Vpn vpn, Pfn pfn,
                  bool last_mapping) override
    {
        for (SimClient *child : children_)
            child->onPageRemoved(task, vpn, pfn, last_mapping);
    }

    void
    onDmaInvalidate(Pfn pfn) override
    {
        for (SimClient *child : children_)
            child->onDmaInvalidate(pfn);
    }

  private:
    std::vector<SimClient *> children_;
};

} // namespace tw

#endif // TW_HARNESS_MUX_CLIENT_HH
