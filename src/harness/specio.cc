#include "harness/specio.hh"

#include <vector>

#include "base/logging.hh"

namespace tw
{

namespace
{

// ---------------------------------------------------------------
// Enum name tables. The emitters reuse the library's *Name()
// helpers where they exist so the wire text matches the CLI text.
// ---------------------------------------------------------------

bool
allocPolicyFromName(const std::string &n, AllocPolicy &out)
{
    if (n == "random")
        out = AllocPolicy::Random;
    else if (n == "sequential")
        out = AllocPolicy::Sequential;
    else if (n == "coloring")
        out = AllocPolicy::Coloring;
    else
        return false;
    return true;
}

bool
indexingFromName(const std::string &n, Indexing &out)
{
    if (n == "virtual")
        out = Indexing::Virtual;
    else if (n == "physical")
        out = Indexing::Physical;
    else
        return false;
    return true;
}

bool
replPolicyFromName(const std::string &n, ReplPolicy &out)
{
    if (n == "LRU")
        out = ReplPolicy::LRU;
    else if (n == "FIFO")
        out = ReplPolicy::FIFO;
    else if (n == "Random")
        out = ReplPolicy::Random;
    else
        return false;
    return true;
}

bool
simCacheKindFromName(const std::string &n, SimCacheKind &out)
{
    if (n == "instruction")
        out = SimCacheKind::Instruction;
    else if (n == "data")
        out = SimCacheKind::Data;
    else if (n == "unified")
        out = SimCacheKind::Unified;
    else
        return false;
    return true;
}

const char *
hostWriteName(HostWritePolicy p)
{
    return p == HostWritePolicy::AllocateOnWrite ? "allocate"
                                                 : "no-allocate";
}

bool
hostWriteFromName(const std::string &n, HostWritePolicy &out)
{
    if (n == "allocate")
        out = HostWritePolicy::AllocateOnWrite;
    else if (n == "no-allocate")
        out = HostWritePolicy::NoAllocateOnWrite;
    else
        return false;
    return true;
}

const char *
sampleModeName(SampleMode m)
{
    return m == SampleMode::RandomSets ? "random-sets"
                                       : "constant-bits";
}

bool
sampleModeFromName(const std::string &n, SampleMode &out)
{
    if (n == "random-sets")
        out = SampleMode::RandomSets;
    else if (n == "constant-bits")
        out = SampleMode::ConstantBits;
    else
        return false;
    return true;
}

// ---------------------------------------------------------------
// Strict field reader: every field is required, every present
// member must be consumed, and the first failure latches into err.
// ---------------------------------------------------------------

class Fields
{
  public:
    Fields(const Json &j, const char *what, std::string &err)
        : obj_(j), what_(what), err_(err)
    {
        if (!obj_.isObject())
            fail("%s: not a JSON object", what_);
    }

    bool ok() const { return ok_; }

    const Json *
    get(const char *key)
    {
        if (!ok_)
            return nullptr;
        consumed_.push_back(key);
        const Json *v = obj_.find(key);
        if (!v)
            fail("%s: missing field '%s'", what_, key);
        return v;
    }

    /** Like get(), but absence is not an error (fields added after
     *  v1 are emitted conditionally and parsed optionally so old
     *  producers and consumers interoperate). */
    const Json *
    maybe(const char *key)
    {
        if (!ok_)
            return nullptr;
        consumed_.push_back(key);
        return obj_.find(key);
    }

    void
    u64(const char *key, std::uint64_t &out)
    {
        if (const Json *v = requireNumber(key))
            out = v->asU64();
    }

    void
    u32(const char *key, std::uint32_t &out)
    {
        if (const Json *v = requireNumber(key))
            out = static_cast<std::uint32_t>(v->asU64());
    }

    void
    uns(const char *key, unsigned &out)
    {
        if (const Json *v = requireNumber(key))
            out = static_cast<unsigned>(v->asU64());
    }

    void
    i32(const char *key, std::int32_t &out)
    {
        if (const Json *v = requireNumber(key))
            out = static_cast<std::int32_t>(v->asI64());
    }

    void
    dbl(const char *key, double &out)
    {
        if (const Json *v = requireNumber(key))
            out = v->asDouble();
    }

    void
    bln(const char *key, bool &out)
    {
        if (const Json *v = get(key)) {
            if (!v->isBool())
                fail("%s: field '%s' is not a boolean", what_, key);
            else
                out = v->asBool();
        }
    }

    void
    str(const char *key, std::string &out)
    {
        if (const Json *v = get(key)) {
            if (!v->isString())
                fail("%s: field '%s' is not a string", what_, key);
            else
                out = v->asString();
        }
    }

    template <typename E, typename Fn>
    void
    enm(const char *key, E &out, Fn &&from_name)
    {
        std::string name;
        str(key, name);
        if (ok_ && !from_name(name, out))
            fail("%s: bad value '%s' for '%s'", what_, name.c_str(),
                 key);
    }

    /** Check no unconsumed members remain (unknown-field error). */
    bool
    finish()
    {
        if (!ok_)
            return false;
        for (const auto &[k, v] : obj_.members()) {
            bool seen = false;
            for (const char *c : consumed_) {
                if (k == c) {
                    seen = true;
                    break;
                }
            }
            if (!seen) {
                fail("%s: unknown field '%s'", what_, k.c_str());
                return false;
            }
        }
        return true;
    }

    void
    fail(const char *fmt, ...)
        __attribute__((format(printf, 2, 3)))
    {
        if (!ok_)
            return;
        ok_ = false;
        std::va_list args;
        va_start(args, fmt);
        err_ = vcsprintf(fmt, args);
        va_end(args);
    }

  private:
    const Json *
    requireNumber(const char *key)
    {
        const Json *v = get(key);
        if (!v)
            return nullptr;
        if (!v->isNumber()) {
            fail("%s: field '%s' is not a number", what_, key);
            return nullptr;
        }
        return v;
    }

    const Json &obj_;
    const char *what_;
    std::string &err_;
    std::vector<const char *> consumed_;
    bool ok_ = true;
};

// ---------------------------------------------------------------
// Per-struct emitters/parsers, innermost first. Emission order in
// each *ToJson defines the canonical byte order.
// ---------------------------------------------------------------

Json
streamParamsToJson(const StreamParams &p)
{
    Json j = Json::object();
    j.set("base", Json::number(p.base));
    j.set("textBytes", Json::number(p.textBytes));
    Json ladder = Json::array();
    for (const LoopLevel &lvl : p.ladder) {
        Json l = Json::object();
        l.set("spanBytes", Json::number(lvl.spanBytes));
        l.set("meanReps", Json::number(lvl.meanReps));
        ladder.push(std::move(l));
    }
    j.set("ladder", std::move(ladder));
    j.set("excursionProb", Json::number(p.excursionProb));
    j.set("excursionWords", Json::number(p.excursionWords));
    j.set("seed", Json::number(p.seed));
    return j;
}

bool
streamParamsFromJson(const Json &j, StreamParams &out,
                     std::string &err)
{
    Fields f(j, "StreamParams", err);
    f.u64("base", out.base);
    f.u64("textBytes", out.textBytes);
    if (const Json *ladder = f.get("ladder")) {
        if (!ladder->isArray()) {
            f.fail("StreamParams: 'ladder' is not an array");
        } else {
            out.ladder.clear();
            for (std::size_t i = 0; i < ladder->size(); ++i) {
                LoopLevel lvl;
                Fields lf(ladder->at(i), "LoopLevel", err);
                lf.u64("spanBytes", lvl.spanBytes);
                lf.dbl("meanReps", lvl.meanReps);
                if (!lf.finish()) {
                    f.fail("StreamParams: %s", err.c_str());
                    break;
                }
                out.ladder.push_back(lvl);
            }
        }
    }
    f.dbl("excursionProb", out.excursionProb);
    f.uns("excursionWords", out.excursionWords);
    f.u64("seed", out.seed);
    return f.finish();
}

Json
workloadToJson(const WorkloadSpec &w)
{
    Json j = Json::object();
    j.set("name", Json::str(w.name));
    j.set("totalInstr", Json::number(w.totalInstr));
    j.set("fracKernel", Json::number(w.fracKernel));
    j.set("fracBsd", Json::number(w.fracBsd));
    j.set("fracX", Json::number(w.fracX));
    j.set("fracUser", Json::number(w.fracUser));
    j.set("taskCount", Json::number(w.taskCount));
    j.set("concurrency", Json::number(w.concurrency));
    Json bins = Json::array();
    for (const StreamParams &p : w.binaries)
        bins.push(streamParamsToJson(p));
    j.set("binaries", std::move(bins));
    Json bdata = Json::array();
    for (const StreamParams &p : w.binaryData)
        bdata.push(streamParamsToJson(p));
    j.set("binaryData", std::move(bdata));
    j.set("kernelText", streamParamsToJson(w.kernelText));
    j.set("bsdText", streamParamsToJson(w.bsdText));
    j.set("xText", streamParamsToJson(w.xText));
    j.set("kernelData", streamParamsToJson(w.kernelData));
    j.set("bsdData", streamParamsToJson(w.bsdData));
    j.set("xData", streamParamsToJson(w.xData));
    j.set("dataRefsPer1k", Json::number(w.dataRefsPer1k));
    j.set("storeEvery", Json::number(w.storeEvery));
    j.set("syscallsPer1k", Json::number(w.syscallsPer1k));
    j.set("bsdProb", Json::number(w.bsdProb));
    j.set("xProb", Json::number(w.xProb));
    return j;
}

bool
streamListFromJson(Fields &f, const char *key,
                   std::vector<StreamParams> &out, std::string &err)
{
    const Json *arr = f.get(key);
    if (!arr)
        return false;
    if (!arr->isArray()) {
        f.fail("WorkloadSpec: '%s' is not an array", key);
        return false;
    }
    out.clear();
    for (std::size_t i = 0; i < arr->size(); ++i) {
        StreamParams p;
        if (!streamParamsFromJson(arr->at(i), p, err)) {
            f.fail("WorkloadSpec: %s", err.c_str());
            return false;
        }
        out.push_back(std::move(p));
    }
    return true;
}

bool
workloadFromJson(const Json &j, WorkloadSpec &out, std::string &err)
{
    Fields f(j, "WorkloadSpec", err);
    f.str("name", out.name);
    f.u64("totalInstr", out.totalInstr);
    f.dbl("fracKernel", out.fracKernel);
    f.dbl("fracBsd", out.fracBsd);
    f.dbl("fracX", out.fracX);
    f.dbl("fracUser", out.fracUser);
    f.uns("taskCount", out.taskCount);
    f.uns("concurrency", out.concurrency);
    streamListFromJson(f, "binaries", out.binaries, err);
    streamListFromJson(f, "binaryData", out.binaryData, err);
    auto sub = [&](const char *key, StreamParams &p) {
        if (const Json *v = f.get(key)) {
            if (!streamParamsFromJson(*v, p, err))
                f.fail("WorkloadSpec: %s", err.c_str());
        }
    };
    sub("kernelText", out.kernelText);
    sub("bsdText", out.bsdText);
    sub("xText", out.xText);
    sub("kernelData", out.kernelData);
    sub("bsdData", out.bsdData);
    sub("xData", out.xData);
    f.dbl("dataRefsPer1k", out.dataRefsPer1k);
    f.uns("storeEvery", out.storeEvery);
    f.dbl("syscallsPer1k", out.syscallsPer1k);
    f.dbl("bsdProb", out.bsdProb);
    f.dbl("xProb", out.xProb);
    return f.finish();
}

Json
sysToJson(const SystemConfig &s)
{
    Json j = Json::object();
    j.set("physMemBytes", Json::number(s.physMemBytes));
    j.set("allocPolicy", Json::str(allocPolicyName(s.allocPolicy)));
    j.set("reservedFrames", Json::number(s.reservedFrames));
    j.set("cpiBase", Json::number(s.cpiBase));
    j.set("clockInterval", Json::number(s.clockInterval));
    j.set("clockJitter", Json::boolean(s.clockJitter));
    j.set("tickHandlerInstr", Json::number(s.tickHandlerInstr));
    j.set("quantumInstr", Json::number(s.quantumInstr));
    j.set("dmaFlushPeriod", Json::number(s.dmaFlushPeriod));
    j.set("forkKernelInstr", Json::number(s.forkKernelInstr));
    j.set("faultKernelCycles", Json::number(s.faultKernelCycles));
    j.set("maskedSyscallPrefix", Json::number(s.maskedSyscallPrefix));
    j.set("trialSeed", Json::number(s.trialSeed));
    Json scope = Json::object();
    scope.set("user", Json::boolean(s.scope.user));
    scope.set("servers", Json::boolean(s.scope.servers));
    scope.set("kernel", Json::boolean(s.scope.kernel));
    j.set("scope", std::move(scope));
    return j;
}

bool
sysFromJson(const Json &j, SystemConfig &out, std::string &err)
{
    Fields f(j, "SystemConfig", err);
    f.u64("physMemBytes", out.physMemBytes);
    f.enm("allocPolicy", out.allocPolicy, allocPolicyFromName);
    f.u64("reservedFrames", out.reservedFrames);
    f.uns("cpiBase", out.cpiBase);
    f.u64("clockInterval", out.clockInterval);
    f.bln("clockJitter", out.clockJitter);
    f.u64("tickHandlerInstr", out.tickHandlerInstr);
    f.u64("quantumInstr", out.quantumInstr);
    f.uns("dmaFlushPeriod", out.dmaFlushPeriod);
    f.u64("forkKernelInstr", out.forkKernelInstr);
    f.u64("faultKernelCycles", out.faultKernelCycles);
    f.u64("maskedSyscallPrefix", out.maskedSyscallPrefix);
    f.u64("trialSeed", out.trialSeed);
    if (const Json *scope = f.get("scope")) {
        Fields sf(*scope, "SimScope", err);
        sf.bln("user", out.scope.user);
        sf.bln("servers", out.scope.servers);
        sf.bln("kernel", out.scope.kernel);
        if (!sf.finish())
            f.fail("SystemConfig: %s", err.c_str());
    }
    return f.finish();
}

Json
cacheCfgToJson(const CacheConfig &c)
{
    Json j = Json::object();
    j.set("name", Json::str(c.name));
    j.set("sizeBytes", Json::number(c.sizeBytes));
    j.set("lineBytes", Json::number(c.lineBytes));
    j.set("assoc", Json::number(c.assoc));
    j.set("indexing", Json::str(indexingName(c.indexing)));
    j.set("tagIncludesTask", Json::boolean(c.tagIncludesTask));
    j.set("policy", Json::str(replPolicyName(c.policy)));
    j.set("seed", Json::number(c.seed));
    return j;
}

bool
cacheCfgFromJson(const Json &j, CacheConfig &out, std::string &err)
{
    Fields f(j, "CacheConfig", err);
    f.str("name", out.name);
    f.u64("sizeBytes", out.sizeBytes);
    f.u32("lineBytes", out.lineBytes);
    f.u32("assoc", out.assoc);
    f.enm("indexing", out.indexing, indexingFromName);
    f.bln("tagIncludesTask", out.tagIncludesTask);
    f.enm("policy", out.policy, replPolicyFromName);
    f.u64("seed", out.seed);
    return f.finish();
}

Json
costToJson(const TrapCostModel &c)
{
    Json j = Json::object();
    j.set("kernelTrapReturn", Json::number(c.kernelTrapReturn));
    j.set("twCacheMiss", Json::number(c.twCacheMiss));
    j.set("twReplaceBase", Json::number(c.twReplaceBase));
    j.set("twReplacePerWay", Json::number(c.twReplacePerWay));
    j.set("twSetTrapBase", Json::number(c.twSetTrapBase));
    j.set("twSetTrapPerGranule", Json::number(c.twSetTrapPerGranule));
    j.set("twClearTrapBase", Json::number(c.twClearTrapBase));
    j.set("twClearTrapPerGranule",
          Json::number(c.twClearTrapPerGranule));
    j.set("cyclesPerInstr", Json::number(c.cyclesPerInstr));
    j.set("tlbMissCycles", Json::number(c.tlbMissCycles));
    return j;
}

bool
costFromJson(const Json &j, TrapCostModel &out, std::string &err)
{
    Fields f(j, "TrapCostModel", err);
    f.uns("kernelTrapReturn", out.kernelTrapReturn);
    f.uns("twCacheMiss", out.twCacheMiss);
    f.uns("twReplaceBase", out.twReplaceBase);
    f.uns("twReplacePerWay", out.twReplacePerWay);
    f.uns("twSetTrapBase", out.twSetTrapBase);
    f.uns("twSetTrapPerGranule", out.twSetTrapPerGranule);
    f.uns("twClearTrapBase", out.twClearTrapBase);
    f.uns("twClearTrapPerGranule", out.twClearTrapPerGranule);
    f.dbl("cyclesPerInstr", out.cyclesPerInstr);
    f.u64("tlbMissCycles", out.tlbMissCycles);
    return f.finish();
}

Json
dramParamsToJson(const DramTimingParams &p)
{
    Json j = Json::object();
    j.set("channels", Json::number(p.channels));
    j.set("ranks", Json::number(p.ranksPerChannel));
    j.set("banks", Json::number(p.banksPerRank));
    j.set("rowBytes", Json::number(p.rowBytes));
    j.set("tRCD", Json::number(p.tRCD));
    j.set("tRP", Json::number(p.tRP));
    j.set("tCAS", Json::number(p.tCAS));
    j.set("tRAS", Json::number(p.tRAS));
    j.set("tRFC", Json::number(p.tRFC));
    j.set("tREFI", Json::number(p.tREFI));
    j.set("burst", Json::number(p.burstCycles));
    j.set("walkReads", Json::number(p.walkReads));
    return j;
}

bool
dramParamsFromJson(const Json &j, DramTimingParams &out,
                   std::string &err)
{
    Fields f(j, "DramTimingParams", err);
    f.uns("channels", out.channels);
    f.uns("ranks", out.ranksPerChannel);
    f.uns("banks", out.banksPerRank);
    f.uns("rowBytes", out.rowBytes);
    f.uns("tRCD", out.tRCD);
    f.uns("tRP", out.tRP);
    f.uns("tCAS", out.tCAS);
    f.uns("tRAS", out.tRAS);
    f.uns("tRFC", out.tRFC);
    f.u64("tREFI", out.tREFI);
    f.uns("burst", out.burstCycles);
    f.uns("walkReads", out.walkReads);
    return f.finish();
}

// Emitted only when non-default (like "sample"): a spec on the
// table5 backend keeps every byte — and therefore every cache key
// and shard fingerprint — of the pre-backend schema.
Json
costBackendToJson(const CostBackendConfig &c)
{
    Json j = Json::object();
    j.set("v", Json::number(1u));
    j.set("backend", Json::str(costBackendKindName(c.kind)));
    if (c.kind == CostBackendKind::Dram)
        j.set("dram", dramParamsToJson(c.dram));
    return j;
}

bool
costBackendFromJson(const Json &j, CostBackendConfig &out,
                    std::string &err)
{
    Fields f(j, "CostBackendConfig", err);
    std::uint64_t version = 0;
    f.u64("v", version);
    if (f.ok() && version != 1) {
        f.fail("CostBackendConfig: unsupported version %llu",
               static_cast<unsigned long long>(version));
    }
    f.enm("backend", out.kind, costBackendKindFromName);
    if (f.ok() && out.kind == CostBackendKind::Dram) {
        if (const Json *d = f.get("dram")) {
            if (!dramParamsFromJson(*d, out.dram, err))
                f.fail("CostBackendConfig: %s", err.c_str());
        }
    }
    return f.finish();
}

Json
twCfgToJson(const TapewormConfig &t)
{
    Json j = Json::object();
    j.set("cache", cacheCfgToJson(t.cache));
    j.set("kind", Json::str(simCacheKindName(t.kind)));
    j.set("hostWrite", Json::str(hostWriteName(t.hostWrite)));
    j.set("sampleNum", Json::number(t.sampleNum));
    j.set("sampleDenom", Json::number(t.sampleDenom));
    j.set("sampleSeed", Json::number(t.sampleSeed));
    j.set("sampleMode", Json::str(sampleModeName(t.sampleMode)));
    j.set("compensateMasked", Json::boolean(t.compensateMasked));
    j.set("chargeCost", Json::boolean(t.chargeCost));
    j.set("cost", costToJson(t.cost));
    if (!t.costBackend.isDefault())
        j.set("costBackend", costBackendToJson(t.costBackend));
    return j;
}

bool
twCfgFromJson(const Json &j, TapewormConfig &out, std::string &err)
{
    Fields f(j, "TapewormConfig", err);
    if (const Json *c = f.get("cache")) {
        if (!cacheCfgFromJson(*c, out.cache, err))
            f.fail("TapewormConfig: %s", err.c_str());
    }
    f.enm("kind", out.kind, simCacheKindFromName);
    f.enm("hostWrite", out.hostWrite, hostWriteFromName);
    f.uns("sampleNum", out.sampleNum);
    f.uns("sampleDenom", out.sampleDenom);
    f.u64("sampleSeed", out.sampleSeed);
    f.enm("sampleMode", out.sampleMode, sampleModeFromName);
    f.bln("compensateMasked", out.compensateMasked);
    f.bln("chargeCost", out.chargeCost);
    if (const Json *c = f.get("cost")) {
        if (!costFromJson(*c, out.cost, err))
            f.fail("TapewormConfig: %s", err.c_str());
    }
    if (const Json *c = f.maybe("costBackend")) {
        if (!costBackendFromJson(*c, out.costBackend, err))
            f.fail("TapewormConfig: %s", err.c_str());
    } else {
        out.costBackend = CostBackendConfig{};
    }
    return f.finish();
}

Json
tlbCfgToJson(const TapewormTlbConfig &t)
{
    Json j = Json::object();
    j.set("tlb", cacheCfgToJson(t.tlb));
    j.set("chargeCost", Json::boolean(t.chargeCost));
    j.set("compensateMasked", Json::boolean(t.compensateMasked));
    j.set("cost", costToJson(t.cost));
    j.set("filterFrames", Json::number(t.filterFrames));
    if (!t.costBackend.isDefault())
        j.set("costBackend", costBackendToJson(t.costBackend));
    return j;
}

bool
tlbCfgFromJson(const Json &j, TapewormTlbConfig &out,
               std::string &err)
{
    Fields f(j, "TapewormTlbConfig", err);
    if (const Json *c = f.get("tlb")) {
        if (!cacheCfgFromJson(*c, out.tlb, err))
            f.fail("TapewormTlbConfig: %s", err.c_str());
    }
    f.bln("chargeCost", out.chargeCost);
    f.bln("compensateMasked", out.compensateMasked);
    if (const Json *c = f.get("cost")) {
        if (!costFromJson(*c, out.cost, err))
            f.fail("TapewormTlbConfig: %s", err.c_str());
    }
    f.u64("filterFrames", out.filterFrames);
    if (const Json *c = f.maybe("costBackend")) {
        if (!costBackendFromJson(*c, out.costBackend, err))
            f.fail("TapewormTlbConfig: %s", err.c_str());
    } else {
        out.costBackend = CostBackendConfig{};
    }
    return f.finish();
}

Json
c2kCfgToJson(const Cache2000Config &c)
{
    Json j = Json::object();
    j.set("cache", cacheCfgToJson(c.cache));
    j.set("hitCycles", Json::number(c.hitCycles));
    j.set("missExtraCycles", Json::number(c.missExtraCycles));
    j.set("sampleNum", Json::number(c.sampleNum));
    j.set("sampleDenom", Json::number(c.sampleDenom));
    j.set("sampleSeed", Json::number(c.sampleSeed));
    j.set("filterCycles", Json::number(c.filterCycles));
    return j;
}

bool
c2kCfgFromJson(const Json &j, Cache2000Config &out, std::string &err)
{
    Fields f(j, "Cache2000Config", err);
    if (const Json *c = f.get("cache")) {
        if (!cacheCfgFromJson(*c, out.cache, err))
            f.fail("Cache2000Config: %s", err.c_str());
    }
    f.u64("hitCycles", out.hitCycles);
    f.u64("missExtraCycles", out.missExtraCycles);
    f.uns("sampleNum", out.sampleNum);
    f.uns("sampleDenom", out.sampleDenom);
    f.u64("sampleSeed", out.sampleSeed);
    f.u64("filterCycles", out.filterCycles);
    return f.finish();
}

Json
sampleCfgToJson(const SampleConfig &s)
{
    Json j = Json::object();
    j.set("enabled", Json::boolean(s.enabled));
    j.set("intervalRefs", Json::number(s.intervalRefs));
    j.set("warmupRefs", Json::number(s.warmupRefs));
    j.set("clusters", Json::number(s.clusters));
    j.set("perCluster", Json::number(s.perCluster));
    j.set("seed", Json::number(s.seed));
    j.set("ciRelFloor", Json::number(s.ciRelFloor));
    return j;
}

bool
sampleCfgFromJson(const Json &j, SampleConfig &out, std::string &err)
{
    Fields f(j, "SampleConfig", err);
    f.bln("enabled", out.enabled);
    f.u64("intervalRefs", out.intervalRefs);
    f.u64("warmupRefs", out.warmupRefs);
    f.uns("clusters", out.clusters);
    f.uns("perCluster", out.perCluster);
    f.u64("seed", out.seed);
    f.dbl("ciRelFloor", out.ciRelFloor);
    return f.finish();
}

} // anonymous namespace

const char *
simKindName(SimKind k)
{
    switch (k) {
      case SimKind::None:
        return "none";
      case SimKind::Tapeworm:
        return "tapeworm";
      case SimKind::TapewormTlbSim:
        return "tlb";
      case SimKind::TraceDriven:
        return "trace";
      case SimKind::Oracle:
        return "oracle";
    }
    return "?";
}

bool
simKindFromName(const std::string &name, SimKind &out)
{
    if (name == "none")
        out = SimKind::None;
    else if (name == "tapeworm")
        out = SimKind::Tapeworm;
    else if (name == "tlb")
        out = SimKind::TapewormTlbSim;
    else if (name == "trace")
        out = SimKind::TraceDriven;
    else if (name == "oracle")
        out = SimKind::Oracle;
    else
        return false;
    return true;
}

Json
specToJson(const RunSpec &spec)
{
    Json j = Json::object();
    j.set("v", Json::number(1u));
    j.set("workload", workloadToJson(spec.workload));
    j.set("sys", sysToJson(spec.sys));
    j.set("sim", Json::str(simKindName(spec.sim)));
    j.set("tw", twCfgToJson(spec.tw));
    j.set("tlb", tlbCfgToJson(spec.tlb));
    j.set("c2k", c2kCfgToJson(spec.c2k));
    Json pixie = Json::object();
    pixie.set("genCycles", Json::number(spec.pixie.genCycles));
    j.set("pixie", std::move(pixie));
    j.set("traceTarget", Json::number(
        static_cast<std::int64_t>(spec.traceTarget)));
    // Emitted only when enabled: a spec with sampling off keeps
    // every byte (and therefore every cache key) of the
    // pre-sampling schema.
    if (spec.sample.enabled)
        j.set("sample", sampleCfgToJson(spec.sample));
    return j;
}

std::string
formatRunSpec(const RunSpec &spec)
{
    return specToJson(spec).dump();
}

bool
specFromJson(const Json &j, RunSpec &out, std::string &err)
{
    Fields f(j, "RunSpec", err);
    std::uint64_t version = 0;
    f.u64("v", version);
    if (f.ok() && version != 1) {
        f.fail("RunSpec: unsupported version %llu",
               static_cast<unsigned long long>(version));
    }
    if (const Json *w = f.get("workload")) {
        if (!workloadFromJson(*w, out.workload, err))
            f.fail("RunSpec: %s", err.c_str());
    }
    if (const Json *s = f.get("sys")) {
        if (!sysFromJson(*s, out.sys, err))
            f.fail("RunSpec: %s", err.c_str());
    }
    f.enm("sim", out.sim, simKindFromName);
    if (const Json *t = f.get("tw")) {
        if (!twCfgFromJson(*t, out.tw, err))
            f.fail("RunSpec: %s", err.c_str());
    }
    if (const Json *t = f.get("tlb")) {
        if (!tlbCfgFromJson(*t, out.tlb, err))
            f.fail("RunSpec: %s", err.c_str());
    }
    if (const Json *c = f.get("c2k")) {
        if (!c2kCfgFromJson(*c, out.c2k, err))
            f.fail("RunSpec: %s", err.c_str());
    }
    if (const Json *p = f.get("pixie")) {
        Fields pf(*p, "PixieConfig", err);
        pf.u64("genCycles", out.pixie.genCycles);
        if (!pf.finish())
            f.fail("RunSpec: %s", err.c_str());
    }
    f.i32("traceTarget", out.traceTarget);
    if (const Json *s = f.maybe("sample")) {
        if (!sampleCfgFromJson(*s, out.sample, err))
            f.fail("RunSpec: %s", err.c_str());
    } else {
        out.sample = SampleConfig{};
    }
    return f.finish();
}

bool
parseRunSpec(const std::string &text, RunSpec &out, std::string &err)
{
    Json j;
    if (!Json::parse(text, j, &err))
        return false;
    return specFromJson(j, out, err);
}

Json
outcomeToJson(const RunOutcome &o)
{
    Json j = Json::object();
    Json run = Json::object();
    run.set("cycles", Json::number(o.run.cycles));
    Json instr = Json::array();
    for (Counter c : o.run.instr)
        instr.push(Json::number(c));
    run.set("instr", std::move(instr));
    run.set("ticks", Json::number(o.run.ticks));
    run.set("dataRefs", Json::number(o.run.dataRefs));
    run.set("syscalls", Json::number(o.run.syscalls));
    run.set("forks", Json::number(o.run.forks));
    run.set("faults", Json::number(o.run.faults));
    run.set("dmaFlushes", Json::number(o.run.dmaFlushes));
    run.set("tasksCreated", Json::number(o.run.tasksCreated));
    j.set("run", std::move(run));
    j.set("rawMisses", Json::number(o.rawMisses));
    j.set("estMisses", Json::number(o.estMisses));
    Json comp = Json::array();
    for (double m : o.missesByComp)
        comp.push(Json::number(m));
    j.set("missesByComp", std::move(comp));
    j.set("maskedTrapRefs", Json::number(o.maskedTrapRefs));
    j.set("lostMaskedMisses", Json::number(o.lostMaskedMisses));
    // hostSeconds deliberately absent: see specio.hh.
    j.set("slowdown", Json::number(o.slowdown));
    j.set("normalCycles", Json::number(o.normalCycles));
    if (o.sample.used) {
        Json s = Json::object();
        s.set("intervalsTotal", Json::number(o.sample.intervalsTotal));
        s.set("intervalsSimulated",
              Json::number(o.sample.intervalsSimulated));
        s.set("refsSimulated", Json::number(o.sample.refsSimulated));
        s.set("refsTotal", Json::number(o.sample.refsTotal));
        s.set("ciHalfWidth", Json::number(o.sample.ciHalfWidth));
        j.set("sample", std::move(s));
    }
    return j;
}

std::string
formatRunOutcome(const RunOutcome &o)
{
    return outcomeToJson(o).dump();
}

bool
outcomeFromJson(const Json &j, RunOutcome &out, std::string &err)
{
    Fields f(j, "RunOutcome", err);
    if (const Json *run = f.get("run")) {
        Fields rf(*run, "RunResult", err);
        rf.u64("cycles", out.run.cycles);
        if (const Json *instr = rf.get("instr")) {
            if (!instr->isArray()
                || instr->size() != out.run.instr.size()) {
                rf.fail("RunResult: 'instr' must be an array of %zu",
                        out.run.instr.size());
            } else {
                for (std::size_t i = 0; i < out.run.instr.size(); ++i)
                    out.run.instr[i] = instr->at(i).asU64();
            }
        }
        rf.u64("ticks", out.run.ticks);
        rf.u64("dataRefs", out.run.dataRefs);
        rf.u64("syscalls", out.run.syscalls);
        rf.u64("forks", out.run.forks);
        rf.u64("faults", out.run.faults);
        rf.u64("dmaFlushes", out.run.dmaFlushes);
        rf.uns("tasksCreated", out.run.tasksCreated);
        if (!rf.finish())
            f.fail("RunOutcome: %s", err.c_str());
    }
    f.dbl("rawMisses", out.rawMisses);
    f.dbl("estMisses", out.estMisses);
    if (const Json *comp = f.get("missesByComp")) {
        if (!comp->isArray()
            || comp->size() != out.missesByComp.size()) {
            f.fail("RunOutcome: 'missesByComp' must be an array of "
                   "%zu",
                   out.missesByComp.size());
        } else {
            for (std::size_t i = 0; i < out.missesByComp.size(); ++i)
                out.missesByComp[i] = comp->at(i).asDouble();
        }
    }
    f.u64("maskedTrapRefs", out.maskedTrapRefs);
    f.u64("lostMaskedMisses", out.lostMaskedMisses);
    f.dbl("slowdown", out.slowdown);
    f.u64("normalCycles", out.normalCycles);
    if (const Json *s = f.maybe("sample")) {
        Fields sf(*s, "SampleOutcome", err);
        out.sample.used = true;
        sf.u64("intervalsTotal", out.sample.intervalsTotal);
        sf.u64("intervalsSimulated", out.sample.intervalsSimulated);
        sf.u64("refsSimulated", out.sample.refsSimulated);
        sf.u64("refsTotal", out.sample.refsTotal);
        sf.dbl("ciHalfWidth", out.sample.ciHalfWidth);
        if (!sf.finish())
            f.fail("RunOutcome: %s", err.c_str());
    } else {
        out.sample = SampleOutcome{};
    }
    out.hostSeconds = 0.0;
    return f.finish();
}

bool
parseRunOutcome(const std::string &text, RunOutcome &out,
                std::string &err)
{
    Json j;
    if (!Json::parse(text, j, &err))
        return false;
    return outcomeFromJson(j, out, err);
}

std::uint64_t
fnv1a64(std::string_view bytes)
{
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (unsigned char c : bytes) {
        h ^= c;
        h *= 0x100000001b3ull;
    }
    return h;
}

std::string
cacheKey(const RunSpec &spec, std::uint64_t trial_seed,
         bool with_slowdown)
{
    // Runner::runOne overwrites sys.trialSeed with the per-trial
    // seed, so normalize it out of the key (see specio.hh).
    std::string text;
    if (spec.sys.trialSeed == 0) {
        text = formatRunSpec(spec);
    } else {
        RunSpec normal = spec;
        normal.sys.trialSeed = 0;
        text = formatRunSpec(normal);
    }
    text += '#';
    text += std::to_string(trial_seed);
    text += '#';
    text += with_slowdown ? '1' : '0';
    return text;
}

std::uint64_t
specFingerprint(const RunSpec &spec, std::uint64_t trial_seed,
                bool with_slowdown)
{
    return fnv1a64(cacheKey(spec, trial_seed, with_slowdown));
}

} // namespace tw
