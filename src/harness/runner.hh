/**
 * @file
 * The experiment runner: one-call execution of an instrumented run,
 * with the paper's slowdown metric.
 *
 * Section 4.1 defines
 *
 *     Slowdown = Overhead / NormalWorkloadRunTime
 *
 * where Overhead is the time the instrumentation added. The runner
 * executes the same trial (same seed, hence same page allocation
 * and clock phase) once uninstrumented and once instrumented, and
 * reports (instrumented - normal) / normal in simulated cycles —
 * the measurement Monster made with a logic analyzer on the real
 * machine. Normal runs are memoized, since a whole cache-size sweep
 * shares one baseline.
 */

#ifndef TW_HARNESS_RUNNER_HH
#define TW_HARNESS_RUNNER_HH

#include <array>
#include <string>

#include "core/tapeworm.hh"
#include "core/tapeworm_tlb.hh"
#include "os/system.hh"
#include "sample/config.hh"
#include "trace/cache2000.hh"
#include "trace/pixie.hh"
#include "workload/spec.hh"

namespace tw
{

/** Which simulator to attach. */
enum class SimKind { None, Tapeworm, TapewormTlbSim, TraceDriven,
                     Oracle };

/** Full description of an experimental run (minus the trial seed). */
struct RunSpec
{
    WorkloadSpec workload;
    SystemConfig sys;
    SimKind sim = SimKind::Tapeworm;

    /** Tapeworm / Oracle configuration. */
    TapewormConfig tw;

    /** TLB-mode configuration (SimKind::TapewormTlbSim). */
    TapewormTlbConfig tlb;

    /** Trace-driven configuration. */
    Cache2000Config c2k;
    PixieConfig pixie;
    /** The single task Pixie annotates. */
    TaskId traceTarget = kFirstUserTaskId;

    /**
     * Representative-interval sampling (Tapeworm runs only). When
     * enabled AND the spec is eligible (direct-mapped virtual
     * I-cache, user-only scope, single task, no DMA flushes — see
     * Runner::sampleEligible), the run replays only representative
     * stream intervals instead of executing the machine. Ineligible
     * specs fall back to a full run.
     */
    SampleConfig sample;
};

/** Everything measured in one run. */
struct RunOutcome
{
    RunResult run;

    /** Raw misses counted by the attached simulator. */
    double rawMisses = 0.0;
    /** Misses scaled by the inverse sampling fraction. */
    double estMisses = 0.0;
    /** Estimated misses by component. */
    std::array<double, kNumComponents> missesByComp{};

    Counter maskedTrapRefs = 0;
    Counter lostMaskedMisses = 0;

    /** Host (real) seconds the run took — used for the "actual
     *  wall-clock time" speed comparisons of Section 4.1. */
    double hostSeconds = 0.0;

    /** Overhead / normal run time; NaN unless runWithSlowdown. */
    double slowdown = 0.0;
    /** The uninstrumented baseline's cycles (0 unless paired). */
    Cycles normalCycles = 0;

    /** How the estimate was produced when interval sampling ran
     *  (sample.used == false for a conventional full run). */
    SampleOutcome sample;

    /** Estimated misses per total workload instruction (the
     *  Table 6 metric). */
    double
    missRatioTotal() const
    {
        Counter t = run.totalInstr();
        return t ? estMisses / static_cast<double>(t) : 0.0;
    }

    /** Estimated misses per user instruction (the Figure 2
     *  metric). */
    double
    missRatioUser() const
    {
        Counter u = run.instr[static_cast<unsigned>(Component::User)];
        return u ? estMisses / static_cast<double>(u) : 0.0;
    }

    /**
     * Misses per thousand instructions — the MPI metric Section 4.4
     * wishes for ("some studies require other measures, such as
     * miss ratios or misses per instruction"). The paper needed a
     * logic analyzer for the instruction count; the machine model's
     * retired-instruction counter provides it directly.
     */
    double
    mpi() const
    {
        return 1000.0 * missRatioTotal();
    }

    /** Servers = BSD + X (Table 6 groups them). */
    double
    serverMisses() const
    {
        return missesByComp[static_cast<unsigned>(Component::Bsd)]
               + missesByComp[static_cast<unsigned>(Component::X)];
    }
};

/** Occupancy/eviction counters of the baseline memo. */
struct BaselineCacheStats
{
    std::size_t size = 0;
    std::size_t capacity = 0;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
};

/**
 * Stateless run executor (normal-run memoization is internal).
 *
 * Thread-safe: concurrent trials may call runOne/runWithSlowdown
 * freely. The baseline memo is an LRU map guarded by a mutex; each
 * key is computed exactly once per residency (concurrent requests
 * for the same spec+seed wait for the first computation instead of
 * redoing it). The memo is BOUNDED — a long-lived daemon reruns an
 * evicted baseline (bit-identically, since baselines are pure
 * functions of spec+seed) instead of leaking memory.
 */
class Runner
{
  public:
    /** Execute one instrumented run. */
    static RunOutcome runOne(const RunSpec &spec,
                             std::uint64_t trial_seed);

    /**
     * Whether spec.sample (if enabled) can honor the exactness
     * contract of the interval estimator: a direct-mapped
     * virtually-indexed instruction cache simulated over a single
     * user task with user-only scope, no DMA flushes, and a budget
     * of at least four intervals. Anything else falls back to a
     * full run (counted in engine.sample.fallbacks).
     */
    static bool sampleEligible(const RunSpec &spec);

    /** Execute the instrumented run plus (memoized) uninstrumented
     *  baseline; fills slowdown and normalCycles. */
    static RunOutcome runWithSlowdown(const RunSpec &spec,
                                      std::uint64_t trial_seed);

    /** Drop the memoized baselines (tests). */
    static void clearBaselineCache();

    /**
     * Cap the baseline memo at @p entries (>= 1). The default,
     * overridable via TW_BASELINE_CAP, is 4096 — comfortably above
     * any bench sweep (a sweep shares one baseline per trial seed)
     * while bounding a resident daemon to a few hundred KB of memo.
     */
    static void setBaselineCacheCapacity(std::size_t entries);

    static BaselineCacheStats baselineCacheStats();

  private:
    static std::string baselineKey(const RunSpec &spec,
                                   std::uint64_t trial_seed);
};

} // namespace tw

#endif // TW_HARNESS_RUNNER_HH
