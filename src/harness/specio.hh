/**
 * @file
 * Canonical text (de)serialization of RunSpec and RunOutcome, and
 * the fingerprint derived from it.
 *
 * One rendering serves three masters, so field drift in any of them
 * is caught by the same round-trip test:
 *
 *  - the experiment service's wire protocol ships specs and
 *    outcomes as these exact bytes;
 *  - the result cache keys on the canonical spec text (plus trial
 *    seed and slowdown flag) — two requests hit the same entry iff
 *    their canonical forms are byte-identical;
 *  - specFingerprint() hashes the same bytes into 64 bits for
 *    logging/stats (and future sharding).
 *
 * Canonicalization rules:
 *  - fields are emitted in a fixed order with no whitespace
 *    (Json::dump() on an insertion-ordered object);
 *  - doubles render with %.17g (exact round-trip), 64-bit integers
 *    as decimal (never through a double);
 *  - parsing is STRICT: a missing or unknown field is an error, so
 *    adding a member to RunSpec without teaching this file breaks
 *    the round-trip test instead of silently truncating the cache
 *    key;
 *  - RunOutcome::hostSeconds is EXCLUDED: it is transport metadata
 *    (wall-clock of whichever host computed the row), not part of
 *    the deterministic outcome, and including it would break the
 *    bit-for-bit served-vs-direct comparison the smoke test makes.
 *    The wire protocol carries it as a separate field;
 *  - cacheKey() normalizes sys.trialSeed to 0 before rendering:
 *    Runner overwrites it with the per-trial seed, so two specs
 *    differing only there are the same experiment.
 */

#ifndef TW_HARNESS_SPECIO_HH
#define TW_HARNESS_SPECIO_HH

#include <cstdint>
#include <string>
#include <string_view>

#include "base/json.hh"
#include "harness/runner.hh"

namespace tw
{

/** Render @p spec as an insertion-ordered Json object. */
Json specToJson(const RunSpec &spec);

/** The canonical single-line text of @p spec. */
std::string formatRunSpec(const RunSpec &spec);

/** Strict parse (see file comment); false + @p err on failure. */
bool specFromJson(const Json &j, RunSpec &out, std::string &err);
bool parseRunSpec(const std::string &text, RunSpec &out,
                  std::string &err);

/** Render @p o (minus hostSeconds) as a Json object. */
Json outcomeToJson(const RunOutcome &o);

/** The canonical single-line text of @p o (minus hostSeconds). */
std::string formatRunOutcome(const RunOutcome &o);

bool outcomeFromJson(const Json &j, RunOutcome &out, std::string &err);
bool parseRunOutcome(const std::string &text, RunOutcome &out,
                     std::string &err);

/** FNV-1a over @p bytes (the fingerprint hash). */
std::uint64_t fnv1a64(std::string_view bytes);

/**
 * The result-cache key of one trial: canonical spec text (with
 * sys.trialSeed normalized to 0) + '#' + trial seed + '#' +
 * slowdown flag.
 */
std::string cacheKey(const RunSpec &spec, std::uint64_t trial_seed,
                     bool with_slowdown);

/** 64-bit fingerprint of cacheKey() (logging, stats, sharding). */
std::uint64_t specFingerprint(const RunSpec &spec,
                              std::uint64_t trial_seed,
                              bool with_slowdown);

/** Name <-> enum helpers shared with the CLI tools. */
const char *simKindName(SimKind k);
bool simKindFromName(const std::string &name, SimKind &out);

} // namespace tw

#endif // TW_HARNESS_SPECIO_HH
