#include "harness/experiment.hh"

#include <algorithm>
#include <cstdarg>

#include "base/logging.hh"
#include "base/random.hh"
#include "base/table.hh"
#include "base/thread_pool.hh"
#include "harness/specio.hh"
#include "harness/trials.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "workload/spec.hh"

namespace tw
{

// --------------------------------------------------------------------
// Trial plans.

TrialPlan
TrialPlan::one(std::uint64_t seed, bool with_slowdown)
{
    TrialPlan plan;
    plan.seeds = {seed};
    plan.withSlowdown = with_slowdown;
    return plan;
}

TrialPlan
TrialPlan::derived(unsigned n, std::uint64_t base, bool with_slowdown)
{
    TrialPlan plan;
    plan.seeds = derivedTrialSeeds(n, base);
    plan.withSlowdown = with_slowdown;
    return plan;
}

TrialPlan
TrialPlan::adaptive(unsigned max_n, std::uint64_t base,
                    StopRule rule, bool with_slowdown)
{
    TrialPlan plan = derived(max_n, base, with_slowdown);
    rule.enabled = true;
    plan.stopWhen = rule;
    return plan;
}

std::vector<std::uint64_t>
derivedTrialSeeds(unsigned n, std::uint64_t base)
{
    // The runTrials rule, verbatim: trial t draws mixSeed(base,
    // 1000 + t). Kept in one place so a registry entry, a local
    // runTrials sweep and a served sweep of the same base seed hit
    // the same ResultCache keys.
    std::vector<std::uint64_t> seeds(n);
    for (unsigned t = 0; t < n; ++t)
        seeds[t] = mixSeed(base, 1000 + t);
    return seeds;
}

// --------------------------------------------------------------------
// Job enumeration and canonical rows.

std::vector<ExperimentJob>
experimentJobs(const ExperimentDef &def, unsigned scale)
{
    std::vector<ExperimentJob> jobs;
    if (!def.grid)
        return jobs;
    std::uint64_t seq = 0;
    for (const auto &unit : def.grid(scale)) {
        for (std::size_t t = 0; t < unit.plan.seeds.size(); ++t) {
            ExperimentJob job;
            job.unit = unit.id;
            job.seq = seq++;
            job.trial = t;
            job.seed = unit.plan.seeds[t];
            job.withSlowdown = unit.plan.withSlowdown;
            job.spec = unit.spec;
            jobs.push_back(std::move(job));
        }
    }
    return jobs;
}

std::string
costBackendTag(const RunSpec &spec)
{
    const CostBackendConfig *cfg = nullptr;
    switch (spec.sim) {
      case SimKind::Tapeworm:
        cfg = &spec.tw.costBackend;
        break;
      case SimKind::TapewormTlbSim:
        cfg = &spec.tlb.costBackend;
        break;
      default:
        return {};
    }
    if (cfg->isDefault())
        return {};
    return costBackendKindName(cfg->kind);
}

Json
experimentRowJson(const std::string &experiment,
                  const std::string &unit, std::uint64_t seq,
                  std::uint64_t trial, std::uint64_t seed,
                  const RunOutcome &outcome,
                  const std::string &cost_backend)
{
    Json j = Json::object();
    j.set("experiment", Json::str(experiment));
    j.set("unit", Json::str(unit));
    j.set("seq", Json::number(seq));
    j.set("trial", Json::number(trial));
    j.set("seed", Json::number(seed));
    if (!cost_backend.empty())
        j.set("backend", Json::str(cost_backend));
    j.set("outcome", outcomeToJson(outcome));
    return j;
}

// --------------------------------------------------------------------
// Sinks.

void
MultiSink::begin(const ExperimentDef &def, unsigned scale)
{
    for (StatSink *s : sinks_)
        s->begin(def, scale);
}

void
MultiSink::text(const std::string &chunk)
{
    for (StatSink *s : sinks_)
        s->text(chunk);
}

void
MultiSink::row(const ExperimentRow &r)
{
    for (StatSink *s : sinks_)
        s->row(r);
}

void
MultiSink::metric(const std::string &key, double value)
{
    for (StatSink *s : sinks_)
        s->metric(key, value);
}

void
MultiSink::note(const std::string &key, const std::string &value)
{
    for (StatSink *s : sinks_)
        s->note(key, value);
}

void
MultiSink::end(const ExperimentDef &def)
{
    for (StatSink *s : sinks_)
        s->end(def);
}

void
TablePrinterSink::text(const std::string &chunk)
{
    std::fwrite(chunk.data(), 1, chunk.size(), out_);
    std::fflush(out_);
}

void
NdjsonSink::row(const ExperimentRow &r)
{
    std::string line = experimentRowJson(r.experiment, r.unit, r.seq,
                                         r.trial, r.seed, *r.outcome,
                                         r.costBackend)
                           .dump();
    line.push_back('\n');
    std::fwrite(line.data(), 1, line.size(), out_);
    std::fflush(out_);
}

JsonReportSink::JsonReportSink(std::string report,
                               std::string experiment,
                               std::string generated_by)
    : report_(std::move(report)), experiment_(std::move(experiment)),
      generatedBy_(std::move(generated_by)),
      t0_(std::chrono::steady_clock::now())
{
}

void
JsonReportSink::begin(const ExperimentDef &def, unsigned scale)
{
    (void)def;
    (void)scale;
    t0_ = std::chrono::steady_clock::now();
}

void
JsonReportSink::metric(const std::string &key, double value)
{
    metrics_.emplace_back(key, value);
}

void
JsonReportSink::note(const std::string &key, const std::string &value)
{
    notes_.emplace_back(key, value);
}

void
writeBenchReport(
    const std::string &report, const std::string &experiment,
    const std::string &generated_by, double wall_clock_s,
    const std::vector<std::pair<std::string, double>> &metrics,
    const Json *obs_metrics,
    const std::vector<std::pair<std::string, std::string>> &notes)
{
    std::string path = "BENCH_" + report + ".json";
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f) {
        std::fprintf(stderr, "warn: cannot write %s\n", path.c_str());
        return;
    }
    std::fprintf(f, "{\n  \"schema_version\": 2,\n");
    std::fprintf(f, "  \"bench\": \"%s\",\n", report.c_str());
    std::fprintf(f, "  \"experiment\": \"%s\",\n", experiment.c_str());
    std::fprintf(f, "  \"generated_by\": \"%s\",\n",
                 generated_by.c_str());
    std::fprintf(f, "  \"threads\": %u,\n", defaultThreads());
    std::fprintf(f, "  \"wall_clock_s\": %.6f", wall_clock_s);
    for (const auto &[key, value] : metrics)
        std::fprintf(f, ",\n  \"%s\": %.17g", key.c_str(), value);
    for (const auto &[key, value] : notes)
        std::fprintf(f, ",\n  \"%s\": \"%s\"", key.c_str(),
                     value.c_str());
    if (obs_metrics) {
        std::string dumped = obs_metrics->dump();
        std::fprintf(f, ",\n  \"metrics\": %s", dumped.c_str());
    }
    std::fprintf(f, "\n}\n");
    std::fclose(f);
    std::printf("[json] %s (%.2fs, %u threads)\n", path.c_str(),
                wall_clock_s, defaultThreads());
}

void
JsonReportSink::end(const ExperimentDef &def)
{
    (void)def;
    double wall = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - t0_)
                      .count();
    if (includeObsMetrics_) {
        Json snap = obs::registry().snapshotJson();
        writeBenchReport(report_, experiment_, generatedBy_, wall,
                         metrics_, &snap, notes_);
    } else {
        writeBenchReport(report_, experiment_, generatedBy_, wall,
                         metrics_, nullptr, notes_);
    }
}

// --------------------------------------------------------------------
// Context.

const std::vector<RunOutcome> &
ExperimentContext::outcomes(const std::string &unit_id) const
{
    auto it = outcomes_.find(unit_id);
    if (it == outcomes_.end())
        fatal("experiment unit '%s' has no outcomes",
              unit_id.c_str());
    return it->second;
}

const RunOutcome &
ExperimentContext::outcome(const std::string &unit_id) const
{
    const auto &all = outcomes(unit_id);
    if (all.empty())
        fatal("experiment unit '%s' ran no trials", unit_id.c_str());
    return all.front();
}

void
ExperimentContext::print(const char *fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    std::string chunk = vcsprintf(fmt, args);
    va_end(args);
    sink_.text(chunk);
}

void
ExperimentContext::metric(const std::string &key, double value)
{
    sink_.metric(key, value);
}

void
ExperimentContext::note(const std::string &key, const std::string &value)
{
    sink_.note(key, value);
}

// --------------------------------------------------------------------
// Engine.

unsigned
experimentScale(const ExperimentDef &def, unsigned override_scale)
{
    if (override_scale)
        return override_scale;
    return def.envScale ? envScaleDiv(def.scaleDiv) : def.scaleDiv;
}

void
runExperiment(const ExperimentDef &def, StatSink &sink,
              const RunExperimentOptions &opts)
{
    obs::ScopedSpan expSpan(std::string("experiment:") + def.name,
                            "harness");
    unsigned scale = experimentScale(def, opts.scaleDiv);
    sink.begin(def, scale);

    if (def.banner) {
        sink.text(csprintf(
            "==============================================="
            "=================\n"
            "%s — %s\n"
            "workloads scaled 1/%u; miss columns extrapolated "
            "to paper scale; %u trial thread(s)\n"
            "==============================================="
            "=================\n",
            def.artifact.c_str(), def.description.c_str(), scale,
            defaultThreads()));
    }

    ExperimentContext ctx(sink, scale, opts.report);
    if (def.grid)
        ctx.units_ = def.grid(scale);

    // Flatten every fixed-plan (unit, trial) into one parallelFor so
    // a sweep saturates the pool even when units run few trials.
    // Per-index writes keep the result bit-identical to a serial
    // loop. Adaptive units run afterwards, one batched sweep each:
    // their trial count is a run-time quantity, so they cannot join
    // a pre-sized flatten.
    static obs::Counter obsTrialsRun =
        obs::registry().counter("trials.run");
    std::vector<const ExperimentUnit *> jobUnit;
    std::vector<std::size_t> jobTrial;
    for (const auto &unit : ctx.units_) {
        if (unit.plan.stopWhen.enabled) {
            (void)ctx.outcomes_[unit.id]; // materialize the entry
            continue;
        }
        ctx.outcomes_[unit.id].resize(unit.plan.seeds.size());
        for (std::size_t t = 0; t < unit.plan.seeds.size(); ++t) {
            jobUnit.push_back(&unit);
            jobTrial.push_back(t);
        }
    }
    {
        obs::ScopedSpan batchSpan("batch", "harness");
        parallelFor(jobUnit.size(), [&](std::size_t i) {
            const ExperimentUnit &unit = *jobUnit[i];
            std::size_t t = jobTrial[i];
            std::uint64_t seed = unit.plan.seeds[t];
            obs::ScopedSpan unitSpan(std::string("unit:") + unit.id,
                                     "harness");
            RunOutcome out =
                unit.plan.withSlowdown
                    ? Runner::runWithSlowdown(unit.spec, seed)
                    : Runner::runOne(unit.spec, seed);
            ctx.outcomes_[unit.id][t] = std::move(out);
        });
        obsTrialsRun.add(jobUnit.size());
    }
    for (const auto &unit : ctx.units_) {
        if (!unit.plan.stopWhen.enabled)
            continue;
        obs::ScopedSpan unitSpan(std::string("unit:") + unit.id,
                                 "harness");
        AdaptiveTrialsResult res = runTrialsAdaptive(
            unit.spec, unit.plan.seeds, unit.plan.stopWhen,
            unit.plan.withSlowdown);
        ctx.outcomes_[unit.id] = std::move(res.outcomes);
    }

    // Stream rows in the deterministic seq order. seq advances by
    // the FULL enumeration (experimentJobs' numbering) even when an
    // adaptive unit stopped early: executed rows keep the seq they
    // would have under the full plan, skipped tails leave gaps.
    std::uint64_t seq = 0;
    for (const auto &unit : ctx.units_) {
        const auto &outs = ctx.outcomes_[unit.id];
        for (std::size_t t = 0; t < outs.size(); ++t) {
            ExperimentRow r;
            r.experiment = def.name;
            r.unit = unit.id;
            r.seq = seq + t;
            r.trial = t;
            r.seed = unit.plan.seeds[t];
            r.costBackend = costBackendTag(unit.spec);
            r.outcome = &outs[t];
            sink.row(r);
        }
        seq += unit.plan.seeds.size();
    }

    if (def.present)
        def.present(ctx);
    sink.end(def);
}

// --------------------------------------------------------------------
// Registry.

ExperimentRegistry &
ExperimentRegistry::instance()
{
    static ExperimentRegistry registry;
    return registry;
}

void
ExperimentRegistry::add(ExperimentDef def)
{
    if (def.name.empty())
        fatal("experiment registered without a name");
    auto [it, inserted] = defs_.emplace(def.name, std::move(def));
    if (!inserted)
        fatal("duplicate experiment registration '%s'",
              it->first.c_str());
}

const ExperimentDef *
ExperimentRegistry::find(const std::string &name) const
{
    auto it = defs_.find(name);
    return it == defs_.end() ? nullptr : &it->second;
}

std::vector<std::string>
ExperimentRegistry::names() const
{
    std::vector<std::string> out;
    out.reserve(defs_.size());
    for (const auto &[name, def] : defs_)
        out.push_back(name);
    return out;
}

// --------------------------------------------------------------------
// The built-in `smoke` experiment: small enough for tests and the
// check.sh golden diff, registered from the harness itself so every
// linker of tw_harness (twserved's unit tests included) can run it.

namespace
{

ExperimentDef
makeSmoke()
{
    ExperimentDef def;
    def.name = "smoke";
    def.artifact = "Smoke";
    def.description = "registry smoke: espresso, two sizes, "
                      "two trials";
    def.report = "smoke";
    def.scaleDiv = 2000;
    def.banner = false;
    def.grid = [](unsigned scale) {
        std::vector<ExperimentUnit> units;
        for (std::uint64_t kb : {4, 16}) {
            RunSpec spec;
            spec.workload = makeWorkload("espresso", scale);
            spec.sys.scope = SimScope::userOnly();
            spec.sim = SimKind::Tapeworm;
            spec.tw.cache = CacheConfig::icache(kb * 1024, 16, 1,
                                                Indexing::Virtual);
            ExperimentUnit unit;
            unit.id = csprintf("%lluK", (unsigned long long)kb);
            unit.spec = spec;
            unit.plan = TrialPlan::derived(2, 0x5eed);
            units.push_back(std::move(unit));
        }
        return units;
    };
    def.present = [](ExperimentContext &ctx) {
        TextTable t({"size", "mean est misses", "trials"});
        for (const auto &unit : ctx.units()) {
            const auto &outs = ctx.outcomes(unit.id);
            t.addRow({
                unit.id,
                fmtF(meanOf(outs,
                            [](const RunOutcome &o) {
                                return o.estMisses;
                            }),
                     1),
                csprintf("%zu", outs.size()),
            });
        }
        ctx.print("%s\n", t.render().c_str());
        double total = 0.0;
        unsigned trials = 0;
        for (const auto &unit : ctx.units()) {
            for (const auto &o : ctx.outcomes(unit.id))
                total += o.estMisses;
            trials += ctx.outcomes(unit.id).size();
        }
        ctx.metric("trials", trials);
        ctx.metric("total_est_misses", total);
    };
    return def;
}

const ExperimentRegistrar smokeRegistrar(makeSmoke());

} // namespace

} // namespace tw
