/**
 * @file
 * The time-dilation correction model.
 *
 * Figure 4 shows a systematic error: misses grow with
 * instrumentation slowdown, "most steeply from slowdowns of 0 to 2,
 * and then levels off". Section 4.2 proposes: "it should be
 * possible to adjust simulation results to factor away this form of
 * systematic error." This module implements that adjustment: fit
 * the saturating curve
 *
 *     misses(d) = m0 * (1 + a * d / (b + d))
 *
 * to measured (dilation, misses) points, then divide any
 * measurement by its predicted inflation to recover the
 * zero-dilation miss count m0.
 */

#ifndef TW_HARNESS_DILATION_HH
#define TW_HARNESS_DILATION_HH

#include <utility>
#include <vector>

namespace tw
{

/**
 * Fitted saturating dilation curve.
 */
class DilationModel
{
  public:
    /**
     * Least-squares fit over (dilation, misses) samples; at least
     * three points with distinct dilations are required. The
     * saturation scale b is grid-searched; m0 and a follow by
     * linear regression.
     */
    static DilationModel fit(
        const std::vector<std::pair<double, double>> &samples);

    /** Predicted misses at dilation @p d. */
    double predict(double d) const;

    /** Remove the dilation inflation from a measurement taken at
     *  dilation @p d (the paper's proposed adjustment). */
    double correct(double measured, double d) const;

    /** Zero-dilation miss count. */
    double m0() const { return m0_; }
    /** Saturated relative inflation (d -> infinity). */
    double saturationInflation() const { return a_; }
    /** Dilation at which half the saturated inflation is reached. */
    double halfScale() const { return b_; }
    /** Root-mean-square relative fit error. */
    double rmsError() const { return rms_; }

  private:
    DilationModel(double m0, double a, double b, double rms)
        : m0_(m0), a_(a), b_(b), rms_(rms)
    {
    }

    double m0_;
    double a_;
    double b_;
    double rms_;
};

} // namespace tw

#endif // TW_HARNESS_DILATION_HH
