#include "harness/dilation.hh"

#include <cmath>
#include <limits>

#include "base/logging.hh"

namespace tw
{

DilationModel
DilationModel::fit(const std::vector<std::pair<double, double>> &samples)
{
    TW_ASSERT(samples.size() >= 3,
              "dilation fit needs at least three points");

    double best_b = 1.0;
    double best_m0 = 0.0, best_a = 0.0;
    double best_sse = std::numeric_limits<double>::infinity();

    // misses = m0 + (m0*a) * x with x = d/(b+d): for each candidate
    // b this is ordinary least squares in (1, x).
    for (double b = 0.125; b <= 32.0; b *= 1.25) {
        double sx = 0, sy = 0, sxx = 0, sxy = 0;
        double n = static_cast<double>(samples.size());
        for (const auto &[d, m] : samples) {
            double x = d / (b + d);
            sx += x;
            sy += m;
            sxx += x * x;
            sxy += x * m;
        }
        double denom = n * sxx - sx * sx;
        if (std::abs(denom) < 1e-12)
            continue;
        double slope = (n * sxy - sx * sy) / denom;
        double intercept = (sy - slope * sx) / n;
        if (intercept <= 0.0)
            continue;

        double sse = 0;
        for (const auto &[d, m] : samples) {
            double x = d / (b + d);
            double e = intercept + slope * x - m;
            sse += e * e;
        }
        if (sse < best_sse) {
            best_sse = sse;
            best_b = b;
            best_m0 = intercept;
            best_a = slope / intercept;
        }
    }
    TW_ASSERT(best_m0 > 0.0, "dilation fit failed");

    double mean_sq = 0;
    for (const auto &[d, m] : samples) {
        double x = d / (best_b + d);
        double rel = (best_m0 * (1.0 + best_a * x) - m)
                     / (m != 0.0 ? m : 1.0);
        mean_sq += rel * rel;
    }
    double rms =
        std::sqrt(mean_sq / static_cast<double>(samples.size()));
    return DilationModel(best_m0, best_a, best_b, rms);
}

double
DilationModel::predict(double d) const
{
    return m0_ * (1.0 + a_ * d / (b_ + d));
}

double
DilationModel::correct(double measured, double d) const
{
    return measured / (1.0 + a_ * d / (b_ + d));
}

} // namespace tw
