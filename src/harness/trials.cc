#include "harness/trials.hh"

#include "base/random.hh"

namespace tw
{

std::vector<RunOutcome>
runTrials(const RunSpec &spec, unsigned n, std::uint64_t base_seed,
          bool with_slowdown)
{
    std::vector<RunOutcome> outcomes;
    outcomes.reserve(n);
    for (unsigned t = 0; t < n; ++t) {
        std::uint64_t seed = mixSeed(base_seed, 1000 + t);
        outcomes.push_back(with_slowdown
                               ? Runner::runWithSlowdown(spec, seed)
                               : Runner::runOne(spec, seed));
    }
    return outcomes;
}

Summary
missSummary(const std::vector<RunOutcome> &outcomes)
{
    RunningStat rs;
    for (const auto &o : outcomes)
        rs.push(o.estMisses);
    return summarize(rs);
}

Summary
slowdownSummary(const std::vector<RunOutcome> &outcomes)
{
    RunningStat rs;
    for (const auto &o : outcomes)
        rs.push(o.slowdown);
    return summarize(rs);
}

} // namespace tw
