#include "harness/trials.hh"

#include <algorithm>
#include <cmath>

#include "base/random.hh"
#include "base/thread_pool.hh"
#include "obs/metrics.hh"
#include "sample/stopping.hh"

namespace tw
{

namespace
{

obs::Counter &
obsTrialsRun()
{
    static obs::Counter c = obs::registry().counter("trials.run");
    return c;
}

} // anonymous namespace

std::vector<RunOutcome>
runTrials(const RunSpec &spec, unsigned n, std::uint64_t base_seed,
          bool with_slowdown, unsigned threads)
{
    // Each trial derives its seed from its index alone and writes
    // only its own slot, so the vector is bit-identical to a serial
    // run for any thread count (completion order never matters).
    std::vector<RunOutcome> outcomes(n);
    parallelFor(
        n,
        [&](std::uint64_t t) {
            std::uint64_t seed =
                mixSeed(base_seed, 1000 + static_cast<unsigned>(t));
            outcomes[t] = with_slowdown
                              ? Runner::runWithSlowdown(spec, seed)
                              : Runner::runOne(spec, seed);
        },
        threads);
    obsTrialsRun().add(n);
    return outcomes;
}

AdaptiveTrialsResult
runTrialsAdaptive(const RunSpec &spec,
                  const std::vector<std::uint64_t> &seeds,
                  const StopRule &rule, bool with_slowdown,
                  unsigned threads)
{
    static obs::Counter obsStoppedEarly =
        obs::registry().counter("trials.stopped_early");

    AdaptiveTrialsResult res;
    res.plannedTrials = static_cast<unsigned>(seeds.size());
    const unsigned total = res.plannedTrials;

    if (!rule.enabled) {
        res.outcomes.resize(total);
        parallelFor(
            total,
            [&](std::uint64_t t) {
                res.outcomes[t] =
                    with_slowdown
                        ? Runner::runWithSlowdown(spec, seeds[t])
                        : Runner::runOne(spec, seeds[t]);
            },
            threads);
        obsTrialsRun().add(total);
        RunningStat rs;
        for (const auto &o : res.outcomes)
            rs.push(o.estMisses);
        res.mean = rs.mean();
        res.ciHalfWidth = tHalfWidth(rs, 0.95);
        return res;
    }

    const unsigned batch = std::max(1u, rule.batch);
    res.outcomes.resize(total);
    unsigned done = 0;
    while (done < total) {
        // First batch covers minTrials so the first CI evaluation
        // already has a usable df.
        unsigned want = done == 0 ? std::max(rule.minTrials, batch)
                                  : batch;
        unsigned stop = std::min(total, done + want);
        parallelFor(
            stop - done,
            [&](std::uint64_t i) {
                unsigned t = done + static_cast<unsigned>(i);
                res.outcomes[t] =
                    with_slowdown
                        ? Runner::runWithSlowdown(spec, seeds[t])
                        : Runner::runOne(spec, seeds[t]);
            },
            threads);
        obsTrialsRun().add(stop - done);
        done = stop;

        // Evaluate in trial order over the completed prefix: the
        // stopping decision is a pure function of the prefix, never
        // of thread scheduling.
        RunningStat rs;
        for (unsigned t = 0; t < done; ++t)
            rs.push(res.outcomes[t].estMisses);
        res.mean = rs.mean();
        res.ciHalfWidth = tHalfWidth(rs, rule.confidence);
        if (done >= rule.minTrials && done >= 2) {
            double rel = tRelHalfWidth(rs, rule.confidence);
            if (rel <= rule.ciRelTarget) {
                res.stoppedEarly = done < total;
                break;
            }
        }
    }
    res.outcomes.resize(done);
    if (res.stoppedEarly)
        obsStoppedEarly.inc();
    return res;
}

Summary
missSummary(const std::vector<RunOutcome> &outcomes)
{
    RunningStat rs;
    for (const auto &o : outcomes)
        rs.push(o.estMisses);
    return summarize(rs);
}

Summary
slowdownSummary(const std::vector<RunOutcome> &outcomes)
{
    RunningStat rs;
    for (const auto &o : outcomes)
        rs.push(o.slowdown);
    return summarize(rs);
}

} // namespace tw
