#include "harness/trials.hh"

#include "base/random.hh"
#include "base/thread_pool.hh"

namespace tw
{

std::vector<RunOutcome>
runTrials(const RunSpec &spec, unsigned n, std::uint64_t base_seed,
          bool with_slowdown, unsigned threads)
{
    // Each trial derives its seed from its index alone and writes
    // only its own slot, so the vector is bit-identical to a serial
    // run for any thread count (completion order never matters).
    std::vector<RunOutcome> outcomes(n);
    parallelFor(
        n,
        [&](std::uint64_t t) {
            std::uint64_t seed =
                mixSeed(base_seed, 1000 + static_cast<unsigned>(t));
            outcomes[t] = with_slowdown
                              ? Runner::runWithSlowdown(spec, seed)
                              : Runner::runOne(spec, seed);
        },
        threads);
    return outcomes;
}

Summary
missSummary(const std::vector<RunOutcome> &outcomes)
{
    RunningStat rs;
    for (const auto &o : outcomes)
        rs.push(o.estMisses);
    return summarize(rs);
}

Summary
slowdownSummary(const std::vector<RunOutcome> &outcomes)
{
    RunningStat rs;
    for (const auto &o : outcomes)
        rs.push(o.slowdown);
    return summarize(rs);
}

} // namespace tw
