#include "os/vm.hh"

#include <algorithm>

#include "base/logging.hh"

namespace tw
{

Vm::Vm(std::uint64_t num_frames, AllocPolicy policy, std::uint64_t seed,
       std::uint64_t reserved_frames, std::uint64_t color_mask)
    : alloc_(num_frames, reserved_frames, policy, seed, color_mask),
      frames_(num_frames)
{
}

Pfn
Vm::fault(Task &task, Vpn vpn)
{
    TW_ASSERT(task.stream != nullptr, "fault from a streamless task");
    ++stats_.faults;

    // Text pages of the same program image are shared between
    // tasks; data pages are always private.
    Addr image_key = task.stream->textBase();
    Vpn text_first = task.stream->textBase() / kHostPageBytes;
    Vpn text_end = (task.stream->textBase() + task.stream->textBytes()
                    + kHostPageBytes - 1)
                   / kHostPageBytes;
    bool text_page = vpn >= text_first && vpn < text_end;
    auto &image = images_[image_key];

    Pfn pfn;
    auto it = text_page ? image.find(vpn) : image.end();
    if (it != image.end()) {
        // Another task already faulted this text page in: share the
        // frame (same binary, same virtual page).
        pfn = it->second;
        ++stats_.sharedMaps;
    } else {
        auto got = alloc_.alloc(vpn);
        if (!got) {
            fatal("out of physical memory (task %s, vpn %llu)",
                  task.name.c_str(),
                  static_cast<unsigned long long>(vpn));
        }
        pfn = *got;
        if (text_page)
            image.emplace(vpn, pfn);
        inUseOrder_.push_back(pfn);
    }

    task.pageTable.map(vpn, pfn);
    FrameInfo &info = frames_[static_cast<std::size_t>(pfn)];
    ++info.refs;

    if (task.attr.simulate) {
        // The paper's tw_register_page(): on a shared frame
        // Tapeworm only bumps its reference count and sets no new
        // traps, so the client is told whether registered mappings
        // already exist.
        bool shared = info.simRefs > 0;
        ++info.simRefs;
        if (client_)
            client_->onPageMapped(task, vpn, pfn, shared);
    }
    return pfn;
}

void
Vm::removeTask(Task &task)
{
    TW_ASSERT(!task.exited, "double removeTask of %s",
              task.name.c_str());
    Addr image_key =
        task.stream ? task.stream->textBase() : kInvalidAddr;

    for (auto [vpn, pfn] : task.pageTable.mappings()) {
        task.pageTable.unmap(vpn);
        FrameInfo &info = frames_[static_cast<std::size_t>(pfn)];
        TW_ASSERT(info.refs > 0, "frame %d refcount underflow", pfn);

        if (task.attr.simulate) {
            TW_ASSERT(info.simRefs > 0,
                      "frame %d sim refcount underflow", pfn);
            --info.simRefs;
            if (client_) {
                client_->onPageRemoved(task, vpn, pfn,
                                       info.simRefs == 0);
            }
        }

        if (--info.refs == 0) {
            auto img = images_.find(image_key);
            if (img != images_.end())
                img->second.erase(vpn);
            alloc_.free(pfn);
            ++stats_.framesFreed;
        }
    }
    // The task's cached translations die with its mappings.
    task.flushTranslations();
    task.exited = true;
}

unsigned
Vm::simRefCount(Pfn pfn) const
{
    return frames_[static_cast<std::size_t>(pfn)].simRefs;
}

unsigned
Vm::refCount(Pfn pfn) const
{
    return frames_[static_cast<std::size_t>(pfn)].refs;
}

Pfn
Vm::dmaVictim(std::uint64_t k) const
{
    if (inUseOrder_.empty())
        return kNoFrame;
    // Probe from the k'th slot forward until a still-allocated
    // frame is found; the list only grows, so this is deterministic
    // for a given fault history.
    std::size_t n = inUseOrder_.size();
    for (std::size_t i = 0; i < n; ++i) {
        Pfn pfn = inUseOrder_[(k + i) % n];
        if (alloc_.isAllocated(pfn))
            return pfn;
    }
    return kNoFrame;
}

} // namespace tw
