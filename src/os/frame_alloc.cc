#include "os/frame_alloc.hh"

#include "base/logging.hh"

namespace tw
{

const char *
allocPolicyName(AllocPolicy p)
{
    switch (p) {
      case AllocPolicy::Random:
        return "random";
      case AllocPolicy::Sequential:
        return "sequential";
      case AllocPolicy::Coloring:
        return "coloring";
    }
    return "?";
}

FrameAllocator::FrameAllocator(std::uint64_t num_frames,
                               std::uint64_t reserved_frames,
                               AllocPolicy policy, std::uint64_t seed,
                               std::uint64_t color_mask)
    : numFrames_(num_frames), reserved_(reserved_frames),
      policy_(policy), rng_(seed), colorMask_(color_mask),
      allocated_(num_frames, false)
{
    TW_ASSERT(reserved_frames < num_frames,
              "reservation leaves no usable memory");
    if (policy == AllocPolicy::Random) {
        pool_.reserve(num_frames - reserved_frames);
        for (std::uint64_t f = reserved_frames; f < num_frames; ++f)
            pool_.push_back(static_cast<Pfn>(f));
    } else {
        for (std::uint64_t f = reserved_frames; f < num_frames; ++f)
            ordered_.insert(static_cast<Pfn>(f));
    }
}

std::optional<Pfn>
FrameAllocator::alloc(Vpn vpn)
{
    Pfn pfn = kNoFrame;
    switch (policy_) {
      case AllocPolicy::Random: {
        if (pool_.empty())
            return std::nullopt;
        std::size_t i =
            static_cast<std::size_t>(rng_.below(pool_.size()));
        pfn = pool_[i];
        pool_[i] = pool_.back();
        pool_.pop_back();
        break;
      }
      case AllocPolicy::Sequential: {
        if (ordered_.empty())
            return std::nullopt;
        pfn = *ordered_.begin();
        ordered_.erase(ordered_.begin());
        break;
      }
      case AllocPolicy::Coloring: {
        if (ordered_.empty())
            return std::nullopt;
        // Prefer a frame whose index bits match the page's virtual
        // color; fall back to the lowest free frame.
        std::uint64_t want = vpn & colorMask_;
        pfn = kNoFrame;
        for (Pfn f : ordered_) {
            if ((static_cast<std::uint64_t>(f) & colorMask_) == want) {
                pfn = f;
                break;
            }
        }
        if (pfn == kNoFrame)
            pfn = *ordered_.begin();
        ordered_.erase(pfn);
        break;
      }
    }
    allocated_[static_cast<std::size_t>(pfn)] = true;
    return pfn;
}

void
FrameAllocator::free(Pfn pfn)
{
    TW_ASSERT(pfn >= 0 && static_cast<std::uint64_t>(pfn) < numFrames_,
              "freeing bad frame %d", pfn);
    TW_ASSERT(allocated_[static_cast<std::size_t>(pfn)],
              "double free of frame %d", pfn);
    allocated_[static_cast<std::size_t>(pfn)] = false;
    if (policy_ == AllocPolicy::Random)
        pool_.push_back(pfn);
    else
        ordered_.insert(pfn);
}

std::uint64_t
FrameAllocator::freeCount() const
{
    return policy_ == AllocPolicy::Random ? pool_.size()
                                          : ordered_.size();
}

bool
FrameAllocator::isAllocated(Pfn pfn) const
{
    return allocated_[static_cast<std::size_t>(pfn)];
}

} // namespace tw
