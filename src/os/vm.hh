/**
 * @file
 * The virtual memory system of the simulated OS.
 *
 * The Vm resolves first-touch page faults, shares text frames
 * between tasks running the same program image (the case Table 1's
 * reference-count discussion addresses), and makes the
 * tw_register_page() / tw_remove_page() upcalls into the attached
 * simulator for tasks whose simulate attribute is set — exactly the
 * cooperation between VM system and Tapeworm that Section 3.2
 * describes.
 */

#ifndef TW_OS_VM_HH
#define TW_OS_VM_HH

#include <map>
#include <unordered_map>
#include <vector>

#include "os/frame_alloc.hh"
#include "os/sim_client.hh"
#include "os/task.hh"

namespace tw
{

/** Counters the Vm exposes for experiments and tests. */
struct VmStats
{
    Counter faults = 0;       //!< page faults resolved
    Counter sharedMaps = 0;   //!< mappings that reused a frame
    Counter framesFreed = 0;  //!< frames returned to the pool
};

/**
 * Page-fault handling, frame sharing and simulator registration.
 */
class Vm
{
  public:
    /**
     * @param num_frames physical frames under management.
     * @param policy frame selection policy.
     * @param seed trial seed (Random policy).
     * @param reserved_frames boot-time reservation (Tapeworm's).
     * @param color_mask color bits for the Coloring policy.
     */
    Vm(std::uint64_t num_frames, AllocPolicy policy, std::uint64_t seed,
       std::uint64_t reserved_frames = 64,
       std::uint64_t color_mask = 0x7);

    /** Attach the simulator receiving register/remove upcalls. */
    void setClient(SimClient *client) { client_ = client; }

    /**
     * Resolve a page fault: allocate (or share) a frame, map it,
     * and register the page with the simulator if the task is
     * simulated. Fatal when physical memory is exhausted (the
     * machine model never pages to disk; the paper's hosts were
     * configured the same way).
     */
    Pfn fault(Task &task, Vpn vpn);

    /**
     * Tear down a task's address space: every page is unmapped,
     * deregistered, and its frame freed once the last mapping is
     * gone.
     */
    void removeTask(Task &task);

    /** Registered-mapping count of a frame (tests). */
    unsigned simRefCount(Pfn pfn) const;

    /** Total mappings of a frame (tests). */
    unsigned refCount(Pfn pfn) const;

    /**
     * Deterministically pick the @p k'th in-use frame for a DMA
     * buffer invalidation (freed frames are skipped). Returns
     * kNoFrame when nothing is allocated.
     */
    Pfn dmaVictim(std::uint64_t k) const;

    const VmStats &stats() const { return stats_; }
    FrameAllocator &allocator() { return alloc_; }

  private:
    struct FrameInfo
    {
        unsigned refs = 0;    //!< all mappings
        unsigned simRefs = 0; //!< registered (simulated) mappings
    };

    FrameAllocator alloc_;
    std::vector<FrameInfo> frames_;
    SimClient *client_ = nullptr;
    VmStats stats_;

    /** Shared program images: text base -> (vpn -> pfn). */
    std::map<Addr, std::unordered_map<Vpn, Pfn>> images_;

    /** Allocation-ordered in-use list for dmaVictim(). */
    std::vector<Pfn> inUseOrder_;
};

} // namespace tw

#endif // TW_OS_VM_HH
