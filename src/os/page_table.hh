/**
 * @file
 * Per-task page table of the simulated VM system.
 *
 * Each task's references stay within one contiguous virtual window
 * (its program image), so the table is a dense array indexed by
 * virtual page number for O(1) translation on the per-instruction
 * hot path. A translation returning a negative frame is a page
 * fault to be resolved by the Vm.
 */

#ifndef TW_OS_PAGE_TABLE_HH
#define TW_OS_PAGE_TABLE_HH

#include <cstdint>
#include <memory_resource>
#include <vector>

#include "base/arena.hh"
#include "base/bitops.hh"
#include "base/logging.hh"
#include "base/types.hh"

namespace tw
{

/** Page frame number type (physical page index). */
using Pfn = std::int32_t;

/** Virtual page number type. */
using Vpn = std::uint64_t;

constexpr Pfn kNoFrame = -1;

/**
 * Dense single-window page table.
 */
class PageTable
{
  public:
    /**
     * @param va_base start of the task's virtual window (page
     *        aligned).
     * @param window_bytes size of the window (rounded up to pages).
     */
    PageTable(Addr va_base, std::uint64_t window_bytes)
        : vaBase_(va_base),
          numPages_(divCeil(window_bytes, kHostPageBytes)),
          frames_(numPages_, kNoFrame, arenaResource())
    {
        TW_ASSERT(va_base % kHostPageBytes == 0,
                  "window base must be page aligned");
    }

    Addr vaBase() const { return vaBase_; }
    std::uint64_t numPages() const { return numPages_; }

    /** Virtual page number of @p va (relative numbering is NOT
     *  used: vpn is the global va >> 12). */
    Vpn vpnOf(Addr va) const { return va / kHostPageBytes; }

    /** First vpn of the window. */
    Vpn firstVpn() const { return vaBase_ / kHostPageBytes; }

    /**
     * Hot path: translate a virtual address. Returns kNoFrame on a
     * page fault.
     */
    Pfn
    lookup(Addr va) const
    {
        std::uint64_t idx = (va - vaBase_) / kHostPageBytes;
        return frames_[idx];
    }

    /** Install a mapping. */
    void
    map(Vpn vpn, Pfn pfn)
    {
        TW_ASSERT(pfn >= 0, "mapping to invalid frame");
        frames_[index(vpn)] = pfn;
    }

    /** Remove a mapping; returns the frame it held. */
    Pfn
    unmap(Vpn vpn)
    {
        Pfn pfn = frames_[index(vpn)];
        frames_[index(vpn)] = kNoFrame;
        return pfn;
    }

    /** Frame mapped at @p vpn (kNoFrame if none). */
    Pfn mappedFrame(Vpn vpn) const { return frames_[index(vpn)]; }

    /**
     * Raw frame array for inlined hot-path translation. The array
     * is sized at construction and never reallocates, so the
     * pointer stays valid across map()/unmap() for the table's
     * lifetime; entry i covers firstVpn() + i.
     */
    const Pfn *framesData() const { return frames_.data(); }

    /** Every (vpn, pfn) pair currently mapped. */
    std::vector<std::pair<Vpn, Pfn>>
    mappings() const
    {
        std::vector<std::pair<Vpn, Pfn>> out;
        for (std::uint64_t i = 0; i < numPages_; ++i) {
            if (frames_[i] >= 0)
                out.emplace_back(firstVpn() + i, frames_[i]);
        }
        return out;
    }

  private:
    std::uint64_t
    index(Vpn vpn) const
    {
        std::uint64_t idx = vpn - firstVpn();
        TW_ASSERT(idx < numPages_, "vpn %llu outside window",
                  static_cast<unsigned long long>(vpn));
        return idx;
    }

    Addr vaBase_;
    std::uint64_t numPages_;
    /** Trial-lifetime dense table: backed by the active arena when
     *  the trial runs under an ArenaScope (see base/arena.hh). */
    std::pmr::vector<Pfn> frames_;
};

} // namespace tw

#endif // TW_OS_PAGE_TABLE_HH
