/**
 * @file
 * Physical page frame allocation policies.
 *
 * Physical page placement is one of the paper's key sources of
 * run-to-run measurement variation (Table 9): "the distributions of
 * physical page frames allocated to a task, which change from run
 * to run, affect the sequence of addresses seen by a
 * physically-indexed cache". The Random policy models a free list
 * whose order differs per boot/trial; Sequential is the fully
 * deterministic contrast; Coloring implements Kessler-style page
 * coloring as a best-case baseline for the variance ablation.
 */

#ifndef TW_OS_FRAME_ALLOC_HH
#define TW_OS_FRAME_ALLOC_HH

#include <cstdint>
#include <optional>
#include <set>
#include <vector>

#include "base/random.hh"
#include "base/types.hh"
#include "os/page_table.hh"

namespace tw
{

/** How the VM system picks free frames. */
enum class AllocPolicy { Random, Sequential, Coloring };

/** Human-readable policy name. */
const char *allocPolicyName(AllocPolicy p);

/**
 * Free-frame pool with pluggable selection policy.
 */
class FrameAllocator
{
  public:
    /**
     * @param num_frames total physical frames.
     * @param reserved_frames low frames withheld at boot (kernel
     *        static data plus Tapeworm's 256 KB boot allocation,
     *        Section 4.2 "Sources of Measurement Bias").
     * @param policy selection policy.
     * @param seed trial seed for the Random policy.
     * @param color_mask set-index bits a Coloring allocator tries
     *        to match between vpn and pfn.
     */
    FrameAllocator(std::uint64_t num_frames,
                   std::uint64_t reserved_frames, AllocPolicy policy,
                   std::uint64_t seed, std::uint64_t color_mask = 0x7);

    /** Allocate a frame (vpn guides the Coloring policy). Returns
     *  std::nullopt when memory is exhausted. */
    std::optional<Pfn> alloc(Vpn vpn);

    /** Return a frame to the pool. */
    void free(Pfn pfn);

    std::uint64_t freeCount() const;
    std::uint64_t totalFrames() const { return numFrames_; }
    std::uint64_t reservedFrames() const { return reserved_; }

    /** Is the frame currently allocated? (testing) */
    bool isAllocated(Pfn pfn) const;

  private:
    std::uint64_t numFrames_;
    std::uint64_t reserved_;
    AllocPolicy policy_;
    Rng rng_;
    std::uint64_t colorMask_;

    // Random policy: unordered vector with swap-pop.
    std::vector<Pfn> pool_;
    // Sequential / Coloring: ordered set.
    std::set<Pfn> ordered_;
    std::vector<bool> allocated_;
};

} // namespace tw

#endif // TW_OS_FRAME_ALLOC_HH
