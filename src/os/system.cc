#include "os/system.hh"

#include <algorithm>
#include <cmath>

#include "base/logging.hh"
#include "workload/loop_nest.hh"

namespace tw
{

namespace
{

/** Tids of the fixed system tasks. */
constexpr TaskId kBsdTid = 1;
constexpr TaskId kXTid = 2;
constexpr TaskId kShellTid = 3;
constexpr TaskId kFirstUserTid = 4;

} // anonymous namespace

System::System(const SystemConfig &config, const WorkloadSpec &spec)
    : cfg_(config), spec_(spec), phys_(config.physMemBytes),
      vm_(phys_.numFrames(), config.allocPolicy,
          mixSeed(config.trialSeed, 0xa110c), config.reservedFrames),
      clock_(config.clockInterval,
             config.clockJitter
                 ? Rng(mixSeed(config.trialSeed, 0xc10c)).below(
                       config.clockInterval)
                 : 0)
{
    TW_ASSERT(!spec_.binaries.empty(), "workload has no binaries");
    boot();
}

void
System::setClient(SimClient *client)
{
    client_ = client;
    vm_.setClient(client);
}

Task *
System::makeTask(const std::string &name, Component comp,
                 const StreamParams *params,
                 const StreamParams *data_params, std::uint64_t seed)
{
    std::unique_ptr<RefStream> stream;
    if (params)
        stream = std::make_unique<LoopNestStream>(*params);
    std::unique_ptr<RefStream> data;
    if (data_params && spec_.dataRefsPer1k > 0.0)
        data = std::make_unique<LoopNestStream>(*data_params);
    TaskId tid = static_cast<TaskId>(tasks_.size() == 0
                                         ? kKernelTid
                                         : tasks_.back()->tid + 1);
    tasks_.push_back(std::make_unique<Task>(
        tid, name, comp, std::move(stream), std::move(data), seed));
    return tasks_.back().get();
}

void
System::boot()
{
    dataPerMille_ = static_cast<Counter>(spec_.dataRefsPer1k);

    kernel_ = makeTask("kernel", Component::Kernel, &spec_.kernelText,
                       &spec_.kernelData,
                       mixSeed(spec_.kernelText.seed, 0x7a5c));
    kernel_->attr.simulate = cfg_.scope.kernel;
    kernel_->budget = ~static_cast<Counter>(0);

    bsd_ = makeTask("bsd-server", Component::Bsd, &spec_.bsdText,
                    &spec_.bsdData,
                    mixSeed(spec_.bsdText.seed, 0x7a5c));
    TW_ASSERT(bsd_->tid == kBsdTid, "tid layout drift");
    bsd_->attr.simulate = cfg_.scope.servers;
    bsd_->budget = ~static_cast<Counter>(0);

    x_ = makeTask("x-server", Component::X, &spec_.xText,
                  &spec_.xData, mixSeed(spec_.xText.seed, 0x7a5c));
    TW_ASSERT(x_->tid == kXTid, "tid layout drift");
    x_->attr.simulate = cfg_.scope.servers;
    x_->budget = ~static_cast<Counter>(0);

    // The shell: never simulated itself, but its inherit attribute
    // seeds the whole workload fork tree (Section 3.2's
    // (simulate=0, inherit=1) idiom).
    shell_ = makeTask("shell", Component::User, nullptr, nullptr,
                      0x5e11);
    TW_ASSERT(shell_->tid == kShellTid, "tid layout drift");
    shell_->attr.simulate = false;
    shell_->attr.inherit = cfg_.scope.user;

    // Spawn the initial batch WITHOUT executing the fork bursts:
    // no instruction may run before run(), because the simulator
    // client attaches between construction and run() and must see
    // every page registration (including the kernel's own pages).
    unsigned initial = std::min(spec_.concurrency, spec_.taskCount);
    initial = std::max(initial, 1u);
    for (unsigned i = 0; i < initial; ++i)
        spawnNextUser(false);
    initialSpawns_ = initial;
}

void
System::spawnNextUser(bool charge_fork_burst)
{
    TW_ASSERT(spawned_ < spec_.taskCount, "fork beyond task count");
    unsigned index = spawned_++;
    unsigned binary =
        index % static_cast<unsigned>(spec_.binaries.size());
    const StreamParams &params = spec_.binaries[binary];

    const StreamParams *data_params =
        binary < spec_.binaryData.size() ? &spec_.binaryData[binary]
                                         : nullptr;
    Task *task = makeTask(csprintf("%s.%u", spec_.name.c_str(), index),
                          Component::User, &params, data_params,
                          mixSeed(params.seed, 0xbeef00 + index));
    TW_ASSERT(task->tid >= kFirstUserTid, "user tid layout drift");
    task->binaryIndex = binary;
    // Same binary, different task: same loop ladder, different
    // control-flow randomness (fixed per task index, not per trial).
    task->stream->reset(mixSeed(params.seed, 0x5eed00 + index));
    if (task->dataStream) {
        task->dataStream->reset(
            mixSeed(params.seed, 0xda7a00 + index));
    }
    task->inheritFrom(*shell_);

    Counter per_task =
        std::max<Counter>(1, spec_.userInstr() / spec_.taskCount);
    task->budget = per_task;
    double rate = spec_.syscallsPer1k / 1000.0;
    task->nextSyscallIn =
        rate > 0.0 ? 1 + task->rng.below(
                         static_cast<std::uint64_t>(2000.0 / spec_.syscallsPer1k))
                   : ~static_cast<Counter>(0);

    runQueue_.push_back(task);
    ++result_.forks;
    result_.tasksCreated = spawned_;

    // fork+exec executes kernel code on the child's behalf.
    if (charge_fork_burst && cfg_.forkKernelInstr > 0)
        runBurst(*kernel_, cfg_.forkKernelInstr,
                 cfg_.maskedSyscallPrefix);
}

void
System::exitUser(Task &task)
{
    vm_.removeTask(task);
    auto it = std::find(runQueue_.begin(), runQueue_.end(), &task);
    TW_ASSERT(it != runQueue_.end(), "exiting task not runnable");
    std::size_t pos = static_cast<std::size_t>(it - runQueue_.begin());
    runQueue_.erase(it);
    if (rrIndex_ > pos)
        --rrIndex_;
    if (spawned_ < spec_.taskCount)
        spawnNextUser();
}

Addr
System::translate(Task &task, Addr va)
{
    Pfn pfn = task.pageTable.lookup(va);
    if (pfn < 0) [[unlikely]] {
        Vpn vpn = va / kHostPageBytes;
        pfn = vm_.fault(task, vpn);
        cycles_ += cfg_.faultKernelCycles;
        ++result_.faults;
    }
    return static_cast<Addr>(pfn) * kHostPageBytes
           + (va & (kHostPageBytes - 1));
}

void
System::dataStep(Task &task)
{
    Addr va = task.dataStream->next();
    Addr pa = translate(task, va);
    ++task.dataRefCount;
    AccessKind kind = task.dataRefCount % spec_.storeEvery == 0
                          ? AccessKind::Store
                          : AccessKind::Load;
    ++result_.dataRefs;
    if (client_)
        cycles_ += client_->onRef(task, va, pa, intrMasked_, kind);
}

void
System::step(Task &task)
{
    Addr va = task.stream->next();
    Addr pa = translate(task, va);
    cycles_ += cfg_.cpiBase;
    ++result_.instr[static_cast<unsigned>(task.component)];
    ++task.executed;
    if (client_)
        cycles_ += client_->onRef(task, va, pa, intrMasked_,
                                  AccessKind::Fetch);
    // Loads and stores accompany instructions at the configured
    // rate; they consume no extra base cycles (the base CPI already
    // reflects average memory behaviour) but instrumented runs pay
    // the simulator's per-reference costs.
    if (task.dataStream) [[likely]] {
        task.dataRefCredit += dataPerMille_;
        while (task.dataRefCredit >= 1000) {
            task.dataRefCredit -= 1000;
            dataStep(task);
        }
    }
}

void
System::runBurst(Task &task, Counter len, Counter masked_prefix)
{
    bool outer_masked = intrMasked_;
    for (Counter i = 0; i < len; ++i) {
        intrMasked_ = outer_masked || i < masked_prefix;
        step(task);
        if (!intrMasked_ && clock_.due(cycles_))
            clockTick();
    }
    intrMasked_ = outer_masked;
}

void
System::doSyscall(Task &task)
{
    ++result_.syscalls;
    double rate = spec_.syscallsPer1k;
    task.nextSyscallIn =
        1 + task.rng.below(
            static_cast<std::uint64_t>(std::max(2.0, 2000.0 / rate)));

    auto jitter = [&task](double mean) {
        double f = 0.7 + 0.6 * task.rng.uniform();
        return static_cast<Counter>(std::max(1.0, mean * f));
    };

    runBurst(*kernel_, jitter(spec_.kernelBurstLen()),
             cfg_.maskedSyscallPrefix);
    if (spec_.bsdProb > 0.0 && task.rng.chance(spec_.bsdProb))
        runBurst(*bsd_, jitter(spec_.bsdBurstLen()), 0);
    if (spec_.xProb > 0.0 && task.rng.chance(spec_.xProb))
        runBurst(*x_, jitter(spec_.xBurstLen()), 0);
}

void
System::clockTick()
{
    clock_.acknowledge(cycles_);
    ++result_.ticks;
    preempt_ = true;

    // The clock handler runs with interrupts masked: ECC traps
    // raised by its references cannot be delivered (the masking
    // bias of Section 4.2).
    intrMasked_ = true;
    Addr base = spec_.kernelText.base;
    for (Counter i = 0; i < cfg_.tickHandlerInstr; ++i) {
        Addr va = base + handlerPos_;
        handlerPos_ = (handlerPos_ + kWordBytes) % kHandlerBytes;
        Addr pa = translate(*kernel_, va);
        cycles_ += cfg_.cpiBase;
        ++result_.instr[static_cast<unsigned>(Component::Kernel)];
        if (client_)
            cycles_ += client_->onRef(*kernel_, va, pa, intrMasked_);
    }
    intrMasked_ = false;

    // Periodic DMA buffer recycling invalidates one frame's lines
    // in the real cache; simulated caches must follow suit.
    if (cfg_.dmaFlushPeriod > 0
        && result_.ticks % cfg_.dmaFlushPeriod == 0) {
        Pfn victim =
            vm_.dmaVictim(result_.ticks / cfg_.dmaFlushPeriod);
        if (victim != kNoFrame) {
            ++result_.dmaFlushes;
            if (client_)
                client_->onDmaInvalidate(victim);
        }
    }
}

void
System::runSlice(Task &task)
{
    preempt_ = false;
    Counter quantum = cfg_.quantumInstr;
    while (quantum-- > 0 && !task.finished() && !preempt_) {
        step(task);
        if (--task.nextSyscallIn == 0)
            doSyscall(task);
        if (clock_.due(cycles_))
            clockTick();
    }
}

RunResult
System::run()
{
    TW_ASSERT(!ran_, "System::run() called twice");
    ran_ = true;

    // Charge the boot-time fork/exec kernel work for the initial
    // task batch now that the simulator client is attached.
    if (cfg_.forkKernelInstr > 0) {
        for (unsigned i = 0; i < initialSpawns_; ++i)
            runBurst(*kernel_, cfg_.forkKernelInstr,
                     cfg_.maskedSyscallPrefix);
    }

    while (!runQueue_.empty()) {
        if (rrIndex_ >= runQueue_.size())
            rrIndex_ = 0;
        Task *task = runQueue_[rrIndex_];
        runSlice(*task);
        if (task->finished()) {
            exitUser(*task);
        } else {
            ++rrIndex_;
        }
    }

    result_.cycles = cycles_;
    return result_;
}

} // namespace tw
