#include "os/system.hh"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <cstring>

#include "base/logging.hh"
#include "base/simd.hh"
#include "obs/metrics.hh"
#include "workload/loop_nest.hh"

namespace tw
{

namespace
{

/** Tids of the fixed system tasks. */
constexpr TaskId kBsdTid = 1;
constexpr TaskId kXTid = 2;
constexpr TaskId kShellTid = 3;
constexpr TaskId kFirstUserTid = 4;

} // anonymous namespace

System::System(const SystemConfig &config, const WorkloadSpec &spec)
    : cfg_(config), spec_(spec), phys_(config.physMemBytes),
      vm_(phys_.numFrames(), config.allocPolicy,
          mixSeed(config.trialSeed, 0xa110c), config.reservedFrames),
      clock_(config.clockInterval,
             config.clockJitter
                 ? Rng(mixSeed(config.trialSeed, 0xc10c)).below(
                       config.clockInterval)
                 : 0)
{
    TW_ASSERT(!spec_.binaries.empty(), "workload has no binaries");
    // Escape hatch: TW_SLOW_PATH selects the legacy per-step
    // execution path (the equivalence suite and before/after
    // measurements run both paths from one binary).
    const char *slow = std::getenv("TW_SLOW_PATH");
    slowPath_ = slow != nullptr && *slow != '\0'
                && std::strcmp(slow, "0") != 0;
    boot();
}

void
System::setClient(SimClient *client)
{
    client_ = client;
    vm_.setClient(client);
    if (client)
        client->bindClock(&cycles_);
}

Task *
System::makeTask(const std::string &name, Component comp,
                 const StreamParams *params,
                 const StreamParams *data_params, std::uint64_t seed)
{
    std::unique_ptr<RefStream> stream;
    if (params)
        stream = std::make_unique<LoopNestStream>(*params);
    std::unique_ptr<RefStream> data;
    if (data_params && spec_.dataRefsPer1k > 0.0)
        data = std::make_unique<LoopNestStream>(*data_params);
    TaskId tid = static_cast<TaskId>(tasks_.size() == 0
                                         ? kKernelTid
                                         : tasks_.back()->tid + 1);
    tasks_.push_back(std::make_unique<Task>(
        tid, name, comp, std::move(stream), std::move(data), seed));
    return tasks_.back().get();
}

void
System::boot()
{
    dataPerMille_ = static_cast<Counter>(spec_.dataRefsPer1k);

    kernel_ = makeTask("kernel", Component::Kernel, &spec_.kernelText,
                       &spec_.kernelData,
                       mixSeed(spec_.kernelText.seed, 0x7a5c));
    kernel_->attr.simulate = cfg_.scope.kernel;
    kernel_->budget = ~static_cast<Counter>(0);

    bsd_ = makeTask("bsd-server", Component::Bsd, &spec_.bsdText,
                    &spec_.bsdData,
                    mixSeed(spec_.bsdText.seed, 0x7a5c));
    TW_ASSERT(bsd_->tid == kBsdTid, "tid layout drift");
    bsd_->attr.simulate = cfg_.scope.servers;
    bsd_->budget = ~static_cast<Counter>(0);

    x_ = makeTask("x-server", Component::X, &spec_.xText,
                  &spec_.xData, mixSeed(spec_.xText.seed, 0x7a5c));
    TW_ASSERT(x_->tid == kXTid, "tid layout drift");
    x_->attr.simulate = cfg_.scope.servers;
    x_->budget = ~static_cast<Counter>(0);

    // The shell: never simulated itself, but its inherit attribute
    // seeds the whole workload fork tree (Section 3.2's
    // (simulate=0, inherit=1) idiom).
    shell_ = makeTask("shell", Component::User, nullptr, nullptr,
                      0x5e11);
    TW_ASSERT(shell_->tid == kShellTid, "tid layout drift");
    shell_->attr.simulate = false;
    shell_->attr.inherit = cfg_.scope.user;

    // Spawn the initial batch WITHOUT executing the fork bursts:
    // no instruction may run before run(), because the simulator
    // client attaches between construction and run() and must see
    // every page registration (including the kernel's own pages).
    unsigned initial = std::min(spec_.concurrency, spec_.taskCount);
    initial = std::max(initial, 1u);
    for (unsigned i = 0; i < initial; ++i)
        spawnNextUser(false);
    initialSpawns_ = initial;
}

void
System::spawnNextUser(bool charge_fork_burst)
{
    TW_ASSERT(spawned_ < spec_.taskCount, "fork beyond task count");
    unsigned index = spawned_++;
    unsigned binary =
        index % static_cast<unsigned>(spec_.binaries.size());
    const StreamParams &params = spec_.binaries[binary];

    const StreamParams *data_params =
        binary < spec_.binaryData.size() ? &spec_.binaryData[binary]
                                         : nullptr;
    Task *task = makeTask(csprintf("%s.%u", spec_.name.c_str(), index),
                          Component::User, &params, data_params,
                          mixSeed(params.seed, 0xbeef00 + index));
    TW_ASSERT(task->tid >= kFirstUserTid, "user tid layout drift");
    task->binaryIndex = binary;
    // Same binary, different task: same loop ladder, different
    // control-flow randomness (fixed per task index, not per trial).
    task->stream->reset(mixSeed(params.seed, 0x5eed00 + index));
    if (task->dataStream) {
        task->dataStream->reset(
            mixSeed(params.seed, 0xda7a00 + index));
    }
    task->inheritFrom(*shell_);

    Counter per_task =
        std::max<Counter>(1, spec_.userInstr() / spec_.taskCount);
    task->budget = per_task;
    double rate = spec_.syscallsPer1k / 1000.0;
    task->nextSyscallIn =
        rate > 0.0 ? 1 + task->rng.below(
                         static_cast<std::uint64_t>(2000.0 / spec_.syscallsPer1k))
                   : ~static_cast<Counter>(0);

    runQueue_.push_back(task);
    ++result_.forks;
    result_.tasksCreated = spawned_;

    // fork+exec executes kernel code on the child's behalf.
    if (charge_fork_burst && cfg_.forkKernelInstr > 0)
        runBurst(*kernel_, cfg_.forkKernelInstr,
                 cfg_.maskedSyscallPrefix);
}

void
System::exitUser(Task &task)
{
    vm_.removeTask(task);
    auto it = std::find(runQueue_.begin(), runQueue_.end(), &task);
    TW_ASSERT(it != runQueue_.end(), "exiting task not runnable");
    std::size_t pos = static_cast<std::size_t>(it - runQueue_.begin());
    runQueue_.erase(it);
    if (rrIndex_ > pos)
        --rrIndex_;
    if (spawned_ < spec_.taskCount)
        spawnNextUser();
}

Addr
System::translate(Task &task, Addr va)
{
    Pfn pfn = task.pageTable.lookup(va);
    if (pfn < 0) [[unlikely]] {
        Vpn vpn = va / kHostPageBytes;
        pfn = vm_.fault(task, vpn);
        cycles_ += cfg_.faultKernelCycles;
        ++result_.faults;
    }
    return static_cast<Addr>(pfn) * kHostPageBytes
           + (va & (kHostPageBytes - 1));
}

Addr
System::translateFast(Task &task, Addr va, MicroTlb &tlb)
{
    // Translation cache over translate(). Translations never change
    // while a task runs (mappings only grow; teardown and the DMA
    // recycle path flush these entries), so a hit is exact.
    Addr page = va & ~static_cast<Addr>(kHostPageBytes - 1);
    MicroTlb::Entry &e = tlb.slot(page);
    if (e.vaPage == page && e.gen == tlb.gen) [[likely]] {
        ++obsUtlbHits_;
        return e.paBase + (va & (kHostPageBytes - 1));
    }
    ++obsUtlbMisses_;
    Addr pa = translate(task, va);
    e.vaPage = page;
    e.paBase = pa & ~static_cast<Addr>(kHostPageBytes - 1);
    e.gen = tlb.gen;
    return pa;
}

void
System::dataStep(Task &task)
{
    Addr va = task.dataStream->next();
    Addr pa = translate(task, va);
    ++task.dataRefCount;
    AccessKind kind = task.dataRefCount % spec_.storeEvery == 0
                          ? AccessKind::Store
                          : AccessKind::Load;
    ++result_.dataRefs;
    if (client_)
        cycles_ += client_->onRef(task, va, pa, intrMasked_, kind);
}

void
System::step(Task &task)
{
    Addr va = task.stream->next();
    Addr pa = translate(task, va);
    cycles_ += cfg_.cpiBase;
    ++result_.instr[static_cast<unsigned>(task.component)];
    ++task.executed;
    if (client_)
        cycles_ += client_->onRef(task, va, pa, intrMasked_,
                                  AccessKind::Fetch);
    // Loads and stores accompany instructions at the configured
    // rate; they consume no extra base cycles (the base CPI already
    // reflects average memory behaviour) but instrumented runs pay
    // the simulator's per-reference costs.
    if (task.dataStream) [[likely]] {
        task.dataRefCredit += dataPerMille_;
        while (task.dataRefCredit >= 1000) {
            task.dataRefCredit -= 1000;
            dataStep(task);
        }
    }
}

void
System::dataStepFast(Task &task)
{
    if (task.dataBuf.empty())
        task.dataBuf.fill(*task.dataStream);
    Addr va = task.dataBuf.take();
    Addr pa = translateFast(task, va, task.dtlb);
    ++task.dataRefCount;
    AccessKind kind = task.dataRefCount % spec_.storeEvery == 0
                          ? AccessKind::Store
                          : AccessKind::Load;
    ++result_.dataRefs;
    if (client_
        && (!hasFilter_
            || (filter_.wants(kind) && filter_.test(pa))))
        cycles_ += client_->onRef(task, va, pa, intrMasked_, kind);
}

void
System::stepFast(Task &task)
{
    // step() with its three per-reference costs removed: the stream
    // is consumed through a prefetched batch, the translation through
    // a last-page cache, and the client is called only when its trap
    // filter says the reference might miss — the software analogue of
    // the paper's "hits run at full hardware speed".
    if (task.fetchBuf.empty())
        task.fetchBuf.fill(*task.stream);
    Addr va = task.fetchBuf.take();
    Addr pa = translateFast(task, va, task.itlb);
    cycles_ += cfg_.cpiBase;
    ++result_.instr[static_cast<unsigned>(task.component)];
    ++task.executed;
    if (client_
        && (!hasFilter_
            || (filter_.wants(AccessKind::Fetch)
                && filter_.test(pa))))
        cycles_ += client_->onRef(task, va, pa, intrMasked_,
                                  AccessKind::Fetch);
    if (task.dataStream) [[likely]] {
        task.dataRefCredit += dataPerMille_;
        while (task.dataRefCredit >= 1000) {
            task.dataRefCredit -= 1000;
            dataStepFast(task);
        }
    }
}

namespace
{

/**
 * Any trap bit set in the host page starting at @p pa_base? Tests
 * the filter words covering the page with one wide all-zero scan
 * (simd::anyBitsInWords — AVX-512/AVX2 vptest-style blocks, scalar
 * word loop under TW_NO_SIMD) — when a word overhangs the page
 * (granule words wider than a page) neighbouring pages' bits leak in
 * and the answer is conservatively true, which only costs a per-ref
 * probe, never a missed trap.
 */
inline bool
pageSpanTrapped(const std::uint64_t *bits, unsigned shift,
                Addr pa_base)
{
    std::uint64_t w0 = (pa_base >> shift) >> 6;
    std::uint64_t w1 = ((pa_base + kHostPageBytes - 1) >> shift) >> 6;
    return simd::anyBitsInWords(bits, w0, w1);
}

} // namespace

Counter
System::runInner(Task &task, Counter h)
{
    // The event horizon: the caller guarantees no tick, syscall,
    // budget or quantum boundary falls within the next h
    // instructions PROVIDED each costs exactly cpiBase. A step that
    // charges extra cycles (a page fault or a simulated miss) may
    // have moved the tick boundary, so stop there and let the
    // caller recompute.
    //
    // All per-step bookkeeping lives in locals and is settled once
    // at exit. The out-of-line paths a step can take — stream
    // refill, page-table walk, client miss handler — never read the
    // deferred counters or the task's buffers/micro-TLBs (mappings
    // only grow, and unmap paths flush between slices), so keeping
    // them in registers is invisible; only the hot path's cost
    // changes.
    if (h == 0)
        return 0;
    // A client without a trap filter must observe every reference;
    // take the generic loop with its per-ref virtual call.
    if (client_ && !hasFilter_)
        return runInnerObserved(task, h);
    // A filter that can deliver data references (Load or Store in
    // the kind mask) pins the fetch/data interleave: take the
    // per-step filtered loop.
    if (hasFilter_
        && (filter_.wants(AccessKind::Load)
            || filter_.wants(AccessKind::Store)))
        return runInnerFiltered(task, h);

    // Chunked specialization: data references can never be
    // delivered here (no Load/Store in the kind mask — e.g. an
    // icache Tapeworm — or no client at all). A fetch on a mapped,
    // probe-free page then has NO observable side effect, so whole
    // same-page spans of the prefetch buffer are consumed with one
    // compare per address and accounted in bulk; per-step credit
    // arithmetic collapses to one multiply per chunk. Data refs
    // drain in their exact order at chunk end. The one observable
    // mid-chunk event is a data-side page FAULT (it arms pages and
    // may charge cycles): when one lands, the fetch position simply
    // rewinds to the fault's owning step — the over-consumed
    // fetches were probe-free, so there is nothing to undo but the
    // pointer — and the loop resumes (or stops) exactly where the
    // per-step path would.
    SimClient *const cl = client_;
    const unsigned fshift = filter_.shift;
    const std::uint64_t *const fetch_bits =
        (hasFilter_ && filter_.wants(AccessKind::Fetch))
            ? filter_.bits
            : nullptr;
    const Addr off = kHostPageBytes - 1;
    const bool masked = intrMasked_;

    StreamBuf &fb = task.fetchBuf;
    StreamBuf &db = task.dataBuf;
    RefStream *const dstream = task.dataStream.get();
    const Counter dpm = dstream ? dataPerMille_ : 0;
    Addr *const fstart = fb.buf.data();
    const Addr *fp = fstart + fb.pos;
    const Addr *fend = fstart + fb.len;
    Addr *const dstart = db.buf.data();
    const Addr *dp = dstart + db.pos;
    const Addr *dend = dstart + db.len;
    const unsigned fpos0 = fb.pos;
    Counter consumed_base = 0;
    const Addr vaBase = task.pageTable.vaBase();
    const Pfn *const frames = task.pageTable.framesData();
    Addr ivaPage = kInvalidAddr, ipaBase = 0;
    Addr dvaPage = kInvalidAddr;
    bool fprobe = false;
    Counter credit = task.dataRefCredit;
    // No store phase here: data kinds can never be delivered in
    // this loop, and the load/store split is derived from
    // dataRefCount whenever a per-step path needs it next.

    Counter data_refs = 0;
    Counter probed = 0;
    Counter span_ops = 0;
    Counter left = h;
    // An event that charges cycles makes its step the last of this
    // call (legacy `extra` semantics).
    bool stop_after = false;

    for (;;) {
        if (fp == fend) [[unlikely]] {
            consumed_base += static_cast<Counter>(fp - fstart);
            fb.fill(*task.stream);
            fp = fstart;
            fend = fstart + fb.len;
        }
        Addr va = *fp;
        Addr page = va & ~off;
        if (page != ivaPage) [[unlikely]] {
            Pfn pfn = frames[(page - vaBase) / kHostPageBytes];
            if (pfn >= 0) [[likely]] {
                ipaBase = static_cast<Addr>(pfn) * kHostPageBytes;
            } else {
                Cycles c0 = cycles_;
                ipaBase = translate(task, va) & ~off;
                if (cycles_ != c0)
                    stop_after = true;
                // The fault armed freshly mapped pages.
                dvaPage = kInvalidAddr;
            }
            ivaPage = page;
            span_ops += fetch_bits != nullptr;
            fprobe = fetch_bits
                     && pageSpanTrapped(fetch_bits, fshift, ipaBase);
        }
        const Addr *const fp0 = fp;
        const Counter credit0 = credit;
        Counter n;
        if (fprobe) [[unlikely]] {
            // Trap bits on this page: single exact step.
            ++fp;
            n = 1;
            ++probed;
            Addr pa = ipaBase + (va & off);
            std::uint64_t g = pa >> fshift;
            if ((fetch_bits[g >> 6] >> (g & 63)) & 1) [[unlikely]] {
                Cycles r = cl->onRef(task, va, pa, masked,
                                     AccessKind::Fetch);
                cycles_ += r;
                if (r != 0)
                    stop_after = true;
                // The handler may have moved traps anywhere.
                ivaPage = kInvalidAddr;
                dvaPage = kInvalidAddr;
            }
        } else {
            // Probe-free page: consume the same-page span with one
            // wide scan, bounded by the buffer and the horizon —
            // then keep extending across page boundaries as long as
            // the next page is already MAPPED and also probe-free.
            // A fetch there has no observable side effect either, so
            // whole clear regions collapse into one bulk-accounted
            // chunk instead of page steps. An unmapped or trapped
            // page ends the merge: its fault/probe must happen in
            // exact legacy order, which the top of the loop
            // provides. (A data fault mid-drain still rewinds to its
            // owning step and invalidates the page cache, so merged
            // spans undo just like single-page ones.) A pending
            // fetch-fault charge limits the chunk to its own step.
            Counter m = static_cast<Counter>(fend - fp);
            if (m > left)
                m = left;
            if (stop_after) [[unlikely]]
                m = 1;
            const Addr *const qe = fp + m;
            const Addr *q = fp + 1;
            ++span_ops;
            q += simd::samePageSpan(q, qe, ~off, page);
            while (q != qe) {
                Addr npage = *q & ~off;
                Pfn pfn = frames[(npage - vaBase) / kHostPageBytes];
                if (pfn < 0) [[unlikely]]
                    break;
                Addr npaBase =
                    static_cast<Addr>(pfn) * kHostPageBytes;
                if (fetch_bits) {
                    ++span_ops;
                    if (pageSpanTrapped(fetch_bits, fshift, npaBase))
                        break;
                }
                // Adopt the clear page as the cached one and extend.
                page = npage;
                ivaPage = npage;
                ipaBase = npaBase;
                ++q;
                ++span_ops;
                q += simd::samePageSpan(q, qe, ~off, page);
            }
            n = static_cast<Counter>(q - fp);
            fp = q;
        }
        credit += n * dpm;
        if (credit >= 1000) [[unlikely]] {
            // Drain the owed data refs in same-page spans: a ref on
            // the cached (mapped) data page has no observable side
            // effect here — data kinds are never deliverable — so a
            // whole run of them is one wide scan plus pointer math.
            // Only page transitions are handled singly, and only an
            // unmapped one (a FAULT: arming, cycles) rewinds the
            // fetch pointer to its owning step, exactly like the
            // per-ref drain did.
            Counter pending = credit / 1000;
            credit -= pending * 1000;
            Counter drained = 0;
            while (drained < pending) {
                if (dp == dend) [[unlikely]] {
                    db.fill(*dstream);
                    dp = dstart;
                    dend = dstart + db.len;
                }
                Counter avail = pending - drained;
                if (avail > static_cast<Counter>(dend - dp))
                    avail = static_cast<Counter>(dend - dp);
                Addr dva = *dp;
                Addr dpage = dva & ~off;
                if (dpage == dvaPage) [[likely]] {
                    ++span_ops;
                    Counter k = 1
                                + static_cast<Counter>(
                                    simd::samePageSpan(
                                        dp + 1, dp + avail, ~off,
                                        dvaPage));
                    dp += k;
                    drained += k;
                    continue;
                }
                Pfn pfn = frames[(dpage - vaBase) / kHostPageBytes];
                if (pfn >= 0) [[likely]] {
                    // Mapped page transition: adopt it; the next
                    // iteration consumes the ref inside a span.
                    dvaPage = dpage;
                    continue;
                }
                // The fault is observable (arming, cycles), so the
                // steps bulk-executed past its owner must not have
                // happened yet. Rewind the fetch pointer to the
                // owning step s, finish that step's remaining data
                // refs, and re-enter with fresh probe state.
                Cycles c0 = cycles_;
                translate(task, dva);
                if (cycles_ != c0)
                    stop_after = true;
                dvaPage = dpage;
                ++dp;
                ++drained;
                Counter s = (drained * 1000 - credit0 + dpm - 1)
                            / dpm;
                Counter total = (credit0 + s * dpm) / 1000;
                while (drained < total) {
                    ++drained;
                    if (dp == dend) [[unlikely]] {
                        db.fill(*dstream);
                        dp = dstart;
                        dend = dstart + db.len;
                    }
                    Addr xva = *dp++;
                    Addr xpage = xva & ~off;
                    if (xpage != dvaPage) {
                        Pfn xp = frames[(xpage - vaBase)
                                        / kHostPageBytes];
                        if (xp < 0) {
                            Cycles cc = cycles_;
                            translate(task, xva);
                            if (cycles_ != cc)
                                stop_after = true;
                        }
                        dvaPage = xpage;
                    }
                }
                fp = fp0 + s;
                credit = credit0 + s * dpm - total * 1000;
                n = s;
                ivaPage = kInvalidAddr;
                break;
            }
            data_refs += drained;
        }
        left -= n;
        if (stop_after || left == 0)
            break;
    }

    const Counter done = consumed_base
                         + static_cast<Counter>(fp - fstart) - fpos0;
    fb.pos = static_cast<unsigned>(fp - fstart);
    db.pos = static_cast<unsigned>(dp - dstart);
    task.dataRefCredit = credit;
    task.dataRefCount += data_refs;
    result_.dataRefs += data_refs;
    cycles_ += done * cfg_.cpiBase;
    result_.instr[static_cast<unsigned>(task.component)] += done;
    task.executed += done;
    obsRefsChunked_ += done + data_refs;
    obsProbeHits_ += probed;
    obsProbeSkips_ += done + data_refs - probed;
    (simdWide_ ? obsSimdWide_ : obsSimdScalar_) += span_ops;
    return done;
}

Counter
System::runInnerFiltered(Task &task, Counter h)
{
    // Filtered per-step specialization. Beyond the generic
    // loop's deferred counters, this one caches per L0 page whether
    // ANY trap bit covers the page: trap bits can only change inside
    // a client call or a page-fault, both of which invalidate the L0
    // entries here, so between those events a clear page lets a ref
    // skip the probe — and the physical address that feeds it —
    // entirely. A steady-state hit is then a buffer load, a page
    // compare and loop arithmetic: the software equivalent of the
    // paper's hits-run-at-hardware-speed property.
    SimClient *const cl = client_;
    const unsigned fshift = filter_.shift;
    const std::uint64_t *const fetch_bits =
        (hasFilter_ && filter_.wants(AccessKind::Fetch))
            ? filter_.bits
            : nullptr;
    const bool want_load = filter_.wants(AccessKind::Load);
    const bool want_store = filter_.wants(AccessKind::Store);
    const std::uint64_t *const data_bits =
        (hasFilter_ && (want_load || want_store)) ? filter_.bits
                                                  : nullptr;
    const Addr off = kHostPageBytes - 1;
    const bool masked = intrMasked_;

    StreamBuf &fb = task.fetchBuf;
    StreamBuf &db = task.dataBuf;
    RefStream *const dstream = task.dataStream.get();
    // dpm == 0 keeps the credit below the data-ref threshold, so a
    // task without a data stream never reaches the drain loop and
    // the per-iteration stream test disappears.
    const Counter dpm = dstream ? dataPerMille_ : 0;
    // Buffers walk by pointer: one compare doubles as both the
    // bounds check and the refill trigger. Executed-step count is
    // reconstructed from the pointer travel, so the steady-state
    // iteration carries no counter but the countdown itself.
    Addr *const fstart = fb.buf.data();
    const Addr *fp = fstart + fb.pos;
    const Addr *fend = fstart + fb.len;
    Addr *const dstart = db.buf.data();
    const Addr *dp = dstart + db.pos;
    const Addr *dend = dstart + db.len;
    const unsigned fpos0 = fb.pos;
    Counter consumed_base = 0;
    // Translation inlines the dense page-table walk: base pointer
    // and window base are loop-invariant (the frame array never
    // reallocates), and a last-page L0 in locals skips even the
    // table load on sequential runs.
    const Addr vaBase = task.pageTable.vaBase();
    const Pfn *const frames = task.pageTable.framesData();
    Addr ivaPage = kInvalidAddr, ipaBase = 0;
    Addr dvaPage = kInvalidAddr, dpaBase = 0;
    bool fprobe = false, dprobe = false;
    Counter credit = task.dataRefCredit;
    const unsigned store_every = dstream ? spec_.storeEvery : 1;
    unsigned store_phase =
        dstream ? static_cast<unsigned>(task.dataRefCount
                                        % store_every)
                : 0;

    Counter data_refs = 0;
    Counter probed = 0;
    Counter span_ops = 0;
    // Countdown to the horizon. A step that charges extra cycles
    // must be the last one of this call (legacy `extra` semantics);
    // every such site simply forces `left = 1` so the shared
    // decrement at the bottom exits after the step completes —
    // keeping a rare-event flag out of the per-step exit test.
    Counter left = h;

    for (;;) {
        if (fp == fend) [[unlikely]] {
            consumed_base += static_cast<Counter>(fp - fstart);
            fb.fill(*task.stream);
            fp = fstart;
            fend = fstart + fb.len;
        }
        Addr va = *fp++;
        Addr page = va & ~off;
        if (page != ivaPage) [[unlikely]] {
            Pfn pfn = frames[(page - vaBase) / kHostPageBytes];
            if (pfn >= 0) [[likely]] {
                ipaBase = static_cast<Addr>(pfn) * kHostPageBytes;
            } else {
                Cycles c0 = cycles_;
                ipaBase = translate(task, va) & ~off;
                if (cycles_ != c0)
                    left = 1;
                // The fault armed freshly mapped pages.
                dvaPage = kInvalidAddr;
            }
            ivaPage = page;
            span_ops += fetch_bits != nullptr;
            fprobe = fetch_bits
                     && pageSpanTrapped(fetch_bits, fshift, ipaBase);
        }
        if (fprobe) [[unlikely]] {
            ++probed;
            Addr pa = ipaBase + (va & off);
            std::uint64_t g = pa >> fshift;
            if ((fetch_bits[g >> 6] >> (g & 63)) & 1) [[unlikely]] {
                Cycles r = cl->onRef(task, va, pa, masked,
                                     AccessKind::Fetch);
                cycles_ += r;
                if (r != 0)
                    left = 1;
                // The handler may have moved traps anywhere.
                ivaPage = kInvalidAddr;
                dvaPage = kInvalidAddr;
            }
        }
        credit += dpm;
        while (credit >= 1000) [[unlikely]] {
            credit -= 1000;
            if (dp == dend) [[unlikely]] {
                db.fill(*dstream);
                dp = dstart;
                dend = dstart + db.len;
            }
            Addr dva = *dp++;
            Addr dpage = dva & ~off;
            if (dpage != dvaPage) [[unlikely]] {
                Pfn pfn = frames[(dpage - vaBase) / kHostPageBytes];
                if (pfn >= 0) [[likely]] {
                    dpaBase = static_cast<Addr>(pfn)
                              * kHostPageBytes;
                } else {
                    Cycles c0 = cycles_;
                    dpaBase = translate(task, dva) & ~off;
                    if (cycles_ != c0)
                        left = 1;
                    ivaPage = kInvalidAddr;
                }
                dvaPage = dpage;
                span_ops += data_bits != nullptr;
                dprobe = data_bits
                         && pageSpanTrapped(data_bits, fshift,
                                            dpaBase);
            }
            if (++store_phase == store_every)
                store_phase = 0;
            ++data_refs;
            if (dprobe) [[unlikely]] {
                ++probed;
                bool want = store_phase == 0 ? want_store
                                             : want_load;
                Addr dpa = dpaBase + (dva & off);
                std::uint64_t g = dpa >> fshift;
                if (want
                    && ((data_bits[g >> 6] >> (g & 63)) & 1))
                    [[unlikely]] {
                    AccessKind kind = store_phase == 0
                                          ? AccessKind::Store
                                          : AccessKind::Load;
                    Cycles r = cl->onRef(task, dva, dpa, masked,
                                         kind);
                    cycles_ += r;
                    if (r != 0)
                        left = 1;
                    ivaPage = kInvalidAddr;
                    dvaPage = kInvalidAddr;
                }
            }
        }
        if (--left == 0)
            break;
    }

    const Counter done = consumed_base
                         + static_cast<Counter>(fp - fstart) - fpos0;
    fb.pos = static_cast<unsigned>(fp - fstart);
    db.pos = static_cast<unsigned>(dp - dstart);
    task.dataRefCredit = credit;
    task.dataRefCount += data_refs;
    result_.dataRefs += data_refs;
    cycles_ += done * cfg_.cpiBase;
    result_.instr[static_cast<unsigned>(task.component)] += done;
    task.executed += done;
    obsRefsFiltered_ += done + data_refs;
    obsProbeHits_ += probed;
    obsProbeSkips_ += done + data_refs - probed;
    (simdWide_ ? obsSimdWide_ : obsSimdScalar_) += span_ops;
    return done;
}

Counter
System::runInnerObserved(Task &task, Counter h)
{
    // Generic event-horizon loop for clients that must see every
    // reference (no trap filter). Unlike the filtered loops, an
    // unfiltered client may legitimately read the machine state its
    // callback can reach — System::now() (the write-buffer model
    // does exactly that) or the task's public counters — so the
    // architectural state is kept exact at every call, in legacy
    // step() order: translate, charge cpiBase, bump the counters,
    // then the call. Only fast-path-internal state (buffer
    // positions, the per-slice instruction count) stays in locals.
    SimClient *const cl = client_;
    const std::uint64_t *const fbits = hasFilter_ ? filter_.bits
                                                  : nullptr;
    const unsigned fshift = filter_.shift;
    const bool want_fetch = filter_.wants(AccessKind::Fetch);
    const bool want_load = filter_.wants(AccessKind::Load);
    const bool want_store = filter_.wants(AccessKind::Store);
    const Addr off = kHostPageBytes - 1;
    const Counter dpm = dataPerMille_;
    const bool masked = intrMasked_;
    const Cycles cpi = cfg_.cpiBase;

    StreamBuf &fb = task.fetchBuf;
    StreamBuf &db = task.dataBuf;
    RefStream *const dstream = task.dataStream.get();
    unsigned fpos = fb.pos, flen = fb.len;
    unsigned dpos = db.pos, dlen = db.len;
    const Addr vaBase = task.pageTable.vaBase();
    const Pfn *const frames = task.pageTable.framesData();
    Addr ivaPage = kInvalidAddr, ipaBase = 0;
    Addr dvaPage = kInvalidAddr, dpaBase = 0;
    const unsigned store_every = spec_.storeEvery;

    Counter done = 0;
    bool extra = false;
    const Counter dataRefs0 = result_.dataRefs;

    for (;;) {
        if (fpos == flen) [[unlikely]] {
            fb.fill(*task.stream);
            fpos = 0;
            flen = fb.len;
        }
        Addr va = fb.buf[fpos++];
        Addr page = va & ~off;
        Addr pa;
        if (page == ivaPage) [[likely]] {
            pa = ipaBase + (va & off);
        } else {
            Pfn pfn = frames[(page - vaBase) / kHostPageBytes];
            if (pfn >= 0) [[likely]] {
                pa = static_cast<Addr>(pfn) * kHostPageBytes
                     + (va & off);
            } else {
                Cycles c0 = cycles_;
                pa = translate(task, va);
                extra |= cycles_ != c0;
            }
            ivaPage = page;
            ipaBase = pa & ~off;
        }
        cycles_ += cpi;
        ++done;
        ++task.executed;
        if (fbits) {
            std::uint64_t g = pa >> fshift;
            if (want_fetch
                && ((fbits[g >> 6] >> (g & 63)) & 1)) [[unlikely]] {
                Cycles r = cl->onRef(task, va, pa, masked,
                                     AccessKind::Fetch);
                cycles_ += r;
                extra |= r != 0;
            }
        } else if (cl) {
            Cycles r = cl->onRef(task, va, pa, masked,
                                 AccessKind::Fetch);
            cycles_ += r;
            extra |= r != 0;
        }
        if (dstream) [[likely]] {
            task.dataRefCredit += dpm;
            while (task.dataRefCredit >= 1000) [[unlikely]] {
                task.dataRefCredit -= 1000;
                if (dpos == dlen) [[unlikely]] {
                    db.fill(*dstream);
                    dpos = 0;
                    dlen = db.len;
                }
                Addr dva = db.buf[dpos++];
                Addr dpage = dva & ~off;
                Addr dpa;
                if (dpage == dvaPage) [[likely]] {
                    dpa = dpaBase + (dva & off);
                } else {
                    Pfn pfn =
                        frames[(dpage - vaBase) / kHostPageBytes];
                    if (pfn >= 0) [[likely]] {
                        dpa = static_cast<Addr>(pfn)
                                  * kHostPageBytes
                              + (dva & off);
                    } else {
                        Cycles c0 = cycles_;
                        dpa = translate(task, dva);
                        extra |= cycles_ != c0;
                    }
                    dvaPage = dpage;
                    dpaBase = dpa & ~off;
                }
                ++task.dataRefCount;
                ++result_.dataRefs;
                AccessKind kind =
                    task.dataRefCount % store_every == 0
                        ? AccessKind::Store
                        : AccessKind::Load;
                if (fbits) {
                    bool want = kind == AccessKind::Store
                                    ? want_store
                                    : want_load;
                    std::uint64_t g = dpa >> fshift;
                    if (want && ((fbits[g >> 6] >> (g & 63)) & 1))
                        [[unlikely]] {
                        Cycles r = cl->onRef(task, dva, dpa,
                                             masked, kind);
                        cycles_ += r;
                        extra |= r != 0;
                    }
                } else if (cl) {
                    Cycles r = cl->onRef(task, dva, dpa, masked,
                                         kind);
                    cycles_ += r;
                    extra |= r != 0;
                }
            }
        }
        if (extra || done == h)
            break;
    }

    fb.pos = fpos;
    db.pos = dpos;
    result_.instr[static_cast<unsigned>(task.component)] += done;
    obsRefsObserved_ += done + (result_.dataRefs - dataRefs0);
    return done;
}

Counter
System::clockHorizon() const
{
    // Instructions that can run before the next tick becomes due,
    // assuming each costs exactly cpiBase cycles.
    if (clock_.due(cycles_))
        return 0;
    if (cfg_.cpiBase == 0)
        return ~static_cast<Counter>(0);
    return (clock_.nextAt() - cycles_ - 1) / cfg_.cpiBase;
}

void
System::runBurst(Task &task, Counter len, Counter masked_prefix)
{
    if (slowPath_)
        runBurstSlow(task, len, masked_prefix);
    else
        runBurstFast(task, len, masked_prefix);
}

void
System::runBurstSlow(Task &task, Counter len, Counter masked_prefix)
{
    bool outer_masked = intrMasked_;
    for (Counter i = 0; i < len; ++i) {
        intrMasked_ = outer_masked || i < masked_prefix;
        step(task);
        if (!intrMasked_ && clock_.due(cycles_))
            clockTick();
    }
    intrMasked_ = outer_masked;
}

void
System::runBurstFast(Task &task, Counter len, Counter masked_prefix)
{
    bool outer_masked = intrMasked_;
    if (outer_masked) {
        // The whole burst runs masked; the legacy loop never checks
        // the clock here, so neither do we — runInner's early-out on
        // extra cycles just means looping until the burst is done.
        for (Counter i = 0; i < len;)
            i += runInner(task, len - i);
        return;
    }

    // Masked prefix (trap-frame setup): no tick checks.
    Counter prefix = std::min(len, masked_prefix);
    intrMasked_ = true;
    for (Counter i = 0; i < prefix;)
        i += runInner(task, prefix - i);
    intrMasked_ = false;

    // Unmasked remainder: batch to the tick horizon, exactly like
    // runSliceFast but with no syscall countdown.
    Counter i = prefix;
    while (i < len) {
        Counter h = std::min(len - i, clockHorizon());
        if (h == 0) {
            stepFast(task);
            ++i;
            if (clock_.due(cycles_))
                clockTick();
            continue;
        }
        i += runInner(task, h);
        if (clock_.due(cycles_))
            clockTick();
    }
}

void
System::doSyscall(Task &task)
{
    ++result_.syscalls;
    double rate = spec_.syscallsPer1k;
    task.nextSyscallIn =
        1 + task.rng.below(
            static_cast<std::uint64_t>(std::max(2.0, 2000.0 / rate)));

    auto jitter = [&task](double mean) {
        double f = 0.7 + 0.6 * task.rng.uniform();
        return static_cast<Counter>(std::max(1.0, mean * f));
    };

    runBurst(*kernel_, jitter(spec_.kernelBurstLen()),
             cfg_.maskedSyscallPrefix);
    if (spec_.bsdProb > 0.0 && task.rng.chance(spec_.bsdProb))
        runBurst(*bsd_, jitter(spec_.bsdBurstLen()), 0);
    if (spec_.xProb > 0.0 && task.rng.chance(spec_.xProb))
        runBurst(*x_, jitter(spec_.xBurstLen()), 0);
}

void
System::clockTick()
{
    clock_.acknowledge(cycles_);
    ++result_.ticks;
    preempt_ = true;

    // The clock handler runs with interrupts masked: ECC traps
    // raised by its references cannot be delivered (the masking
    // bias of Section 4.2).
    intrMasked_ = true;
    Addr base = spec_.kernelText.base;
    if (slowPath_) {
        for (Counter i = 0; i < cfg_.tickHandlerInstr; ++i) {
            Addr va = base + handlerPos_;
            handlerPos_ = (handlerPos_ + kWordBytes) % kHandlerBytes;
            Addr pa = translate(*kernel_, va);
            cycles_ += cfg_.cpiBase;
            ++result_.instr[static_cast<unsigned>(Component::Kernel)];
            if (client_)
                cycles_ += client_->onRef(*kernel_, va, pa,
                                          intrMasked_);
        }
    } else {
        // Masked, no nested ticks: the base cycles and instruction
        // counts can be settled in bulk — nothing inside the loop
        // reads them, and integer sums are order-independent.
        for (Counter i = 0; i < cfg_.tickHandlerInstr; ++i) {
            Addr va = base + handlerPos_;
            handlerPos_ = (handlerPos_ + kWordBytes) % kHandlerBytes;
            Addr pa = translateFast(*kernel_, va, handlerTlb_);
            if (client_
                && (!hasFilter_
                    || (filter_.wants(AccessKind::Fetch)
                        && filter_.test(pa))))
                cycles_ += client_->onRef(*kernel_, va, pa, true);
        }
        cycles_ += cfg_.tickHandlerInstr * cfg_.cpiBase;
        result_.instr[static_cast<unsigned>(Component::Kernel)] +=
            cfg_.tickHandlerInstr;
    }
    intrMasked_ = false;

    // Periodic DMA buffer recycling invalidates one frame's lines
    // in the real cache; simulated caches must follow suit.
    if (cfg_.dmaFlushPeriod > 0
        && result_.ticks % cfg_.dmaFlushPeriod == 0) {
        Pfn victim =
            vm_.dmaVictim(result_.ticks / cfg_.dmaFlushPeriod);
        if (victim != kNoFrame) {
            ++result_.dmaFlushes;
            if (client_)
                client_->onDmaInvalidate(victim);
            // Host translations do not actually change on a DMA
            // recycle, but drop the cached ones anyway: the recycled
            // frame may be handed to a new task the moment the old
            // one exits, and a one-entry cache is cheap to refill.
            for (auto &t : tasks_)
                t->flushTranslations();
            handlerTlb_.flush();
        }
    }
}

void
System::runSlice(Task &task)
{
    if (slowPath_)
        runSliceSlow(task);
    else
        runSliceFast(task);
}

void
System::runSliceSlow(Task &task)
{
    preempt_ = false;
    Counter quantum = cfg_.quantumInstr;
    while (quantum-- > 0 && !task.finished() && !preempt_) {
        step(task);
        if (--task.nextSyscallIn == 0)
            doSyscall(task);
        if (clock_.due(cycles_))
            clockTick();
    }
}

void
System::runSliceFast(Task &task)
{
    // Event-horizon batching: compute how many instructions can
    // retire before ANY event (tick due, syscall, budget end,
    // quantum end) can fire, run them in a tight inner loop, and
    // handle the boundary instruction with the full legacy checks.
    // The legacy loop always steps first and checks after, so a
    // horizon of zero degenerates to exactly its body.
    preempt_ = false;
    Counter quantum = cfg_.quantumInstr;
    while (quantum > 0 && !task.finished() && !preempt_) {
        Counter h = std::min(quantum, task.budget - task.executed);
        h = std::min(h, task.nextSyscallIn - 1);
        h = std::min(h, clockHorizon());
        if (h == 0) {
            stepFast(task);
            --quantum;
            if (--task.nextSyscallIn == 0)
                doSyscall(task);
            if (clock_.due(cycles_))
                clockTick();
            continue;
        }
        Counter done = runInner(task, h);
        quantum -= done;
        task.nextSyscallIn -= done;
        if (clock_.due(cycles_))
            clockTick();
    }
}

RunResult
System::run()
{
    TW_ASSERT(!ran_, "System::run() called twice");
    ran_ = true;

    // Cache the client's trap filter once: the view's storage is
    // fixed for the run (TrapFilterView contract), only the bits
    // change as traps are set and cleared. The SIMD dispatch level
    // is pinned per run too, so the wide/scalar span tallies stay
    // coherent even if a test flips simd::setEnabled mid-process.
    if (client_ && !slowPath_) {
        filter_ = client_->trapFilter();
        hasFilter_ = filter_.bits != nullptr;
    }
    simdWide_ = simd::wide();

    // Charge the boot-time fork/exec kernel work for the initial
    // task batch now that the simulator client is attached.
    if (cfg_.forkKernelInstr > 0) {
        for (unsigned i = 0; i < initialSpawns_; ++i)
            runBurst(*kernel_, cfg_.forkKernelInstr,
                     cfg_.maskedSyscallPrefix);
    }

    while (!runQueue_.empty()) {
        if (rrIndex_ >= runQueue_.size())
            rrIndex_ = 0;
        Task *task = runQueue_[rrIndex_];
        runSlice(*task);
        if (task->finished()) {
            exitUser(*task);
        } else {
            ++rrIndex_;
        }
    }

    result_.cycles = cycles_;
    flushObsCounters();
    return result_;
}

void
System::flushObsCounters()
{
    // Function-local statics: one registry lookup per process, then
    // each run costs a handful of relaxed sharded adds (add() is a
    // no-op for zero tallies).
    static obs::Counter chunked =
        obs::registry().counter("engine.refs.chunked");
    static obs::Counter filtered =
        obs::registry().counter("engine.refs.filtered");
    static obs::Counter observed =
        obs::registry().counter("engine.refs.observed");
    static obs::Counter probeHits =
        obs::registry().counter("engine.probe.hits");
    static obs::Counter probeSkips =
        obs::registry().counter("engine.probe.skips");
    static obs::Counter utlbHits =
        obs::registry().counter("engine.utlb.hits");
    static obs::Counter utlbMisses =
        obs::registry().counter("engine.utlb.misses");
    static obs::Counter simdWide =
        obs::registry().counter("engine.simd.wide_spans");
    static obs::Counter simdScalar =
        obs::registry().counter("engine.simd.scalar_tail");
    chunked.add(obsRefsChunked_);
    filtered.add(obsRefsFiltered_);
    observed.add(obsRefsObserved_);
    probeHits.add(obsProbeHits_);
    probeSkips.add(obsProbeSkips_);
    utlbHits.add(obsUtlbHits_);
    utlbMisses.add(obsUtlbMisses_);
    simdWide.add(obsSimdWide_);
    simdScalar.add(obsSimdScalar_);
}

} // namespace tw
