/**
 * @file
 * The interface between the simulated OS and an attached memory
 * simulator.
 *
 * Three kinds of client implement this interface:
 *  - core/Tapeworm       — the trap-driven simulator (the paper);
 *  - trace/PixieCache2000 — the trace-driven baseline;
 *  - harness/OracleClient — a zero-cost direct cache model used to
 *    validate both (Section 4.2's validation methodology).
 *
 * onRef() is called for every executed instruction and returns the
 * extra simulated cycles the instrumentation consumed — this is how
 * simulation overhead feeds back into simulated time and produces
 * the paper's time-dilation bias (Figure 4).
 */

#ifndef TW_OS_SIM_CLIENT_HH
#define TW_OS_SIM_CLIENT_HH

#include <cstdint>

#include "base/types.hh"
#include "os/page_table.hh"

namespace tw
{

class Task;

/**
 * A read-only view of a client's trap bits, used by the machine to
 * filter hit references out of the dispatch path — the software
 * analogue of the paper's "host hardware filters hits" property.
 *
 * A client that returns a non-null view guarantees that onRef() is a
 * side-effect-free no-op returning 0 cycles whenever the bit for the
 * referenced physical address is clear OR the access kind is not in
 * the view's kind mask, so the machine may skip the virtual call
 * entirely. A null view (bits == nullptr) means the client must
 * observe every reference.
 *
 * The kind mask matters because a trap bit only says "some client
 * state watches this granule", not "this access kind can do
 * anything": an instruction-cache Tapeworm arms a task's data pages
 * too (registration is per page, residency is per line), yet a load
 * to one of those forever-trapped granules is still a guaranteed
 * no-op. Without the mask every data reference of an I-cache run
 * would take the virtual call just to be ignored.
 *
 * The bit array must stay valid and at a fixed address for the
 * lifetime of the run (the machine caches the view once at run()
 * start); the bits themselves may change freely as traps are set and
 * cleared. The kind mask is fixed for the run.
 */
/** Bit for one AccessKind in a TrapFilterView kind mask. */
constexpr unsigned
trapKindBit(AccessKind k)
{
    return 1u << static_cast<unsigned>(k);
}

struct TrapFilterView
{
    /** Bit for one AccessKind in TrapFilterView::kinds. */
    static constexpr unsigned
    kindBit(AccessKind k)
    {
        return trapKindBit(k);
    }

    /** Mask accepting every access kind. */
    static constexpr unsigned kAllKinds =
        trapKindBit(AccessKind::Fetch) | trapKindBit(AccessKind::Load)
        | trapKindBit(AccessKind::Store);

    const std::uint64_t *bits = nullptr;
    unsigned shift = 0; //!< log2 of the trap granule in bytes
    unsigned kinds = kAllKinds; //!< kinds needing delivery on a set bit

    /** May a reference to @p pa need delivery? */
    bool
    test(Addr pa) const
    {
        std::uint64_t g = pa >> shift;
        return (bits[g >> 6] >> (g & 63)) & 1;
    }

    /** Does @p k ever need delivery? */
    bool wants(AccessKind k) const { return kinds & kindBit(k); }

    /** Two views over the same storage filter identically. */
    bool
    same(const TrapFilterView &o) const
    {
        return bits == o.bits && shift == o.shift
               && kinds == o.kinds;
    }
};

/**
 * Observer/participant hooks for memory simulation.
 */
class SimClient
{
  public:
    virtual ~SimClient() = default;

    /**
     * The trap bits that gate onRef() delivery (see TrapFilterView).
     * Trap-driven clients (Tapeworm and friends) return the bits
     * they already test first thing in onRef(); trace-driven clients
     * keep the null default because they must see every reference.
     */
    virtual TrapFilterView trapFilter() const { return {}; }

    /**
     * One memory reference was executed.
     *
     * @param task the running task.
     * @param va referenced virtual address.
     * @param pa translated physical address.
     * @param intr_masked the CPU is running with interrupts masked
     *        (ECC traps cannot be delivered; Section 4.2 "Sources
     *        of Measurement Bias").
     * @param kind fetch, load or store.
     * @return extra cycles consumed by instrumentation.
     */
    virtual Cycles onRef(const Task &task, Addr va, Addr pa,
                         bool intr_masked,
                         AccessKind kind = AccessKind::Fetch) = 0;

    /**
     * Give the client a read-only view of the machine's committed
     * cycle counter (called once, when the client is attached).
     * Time-dependent cost backends read it to order misses in
     * simulated time. The pointer stays valid for the run; the
     * value is monotone, but fast engine paths charge base CPI in
     * bulk at span boundaries, so between spans it may trail the
     * exact instruction position (only the observed slow path keeps
     * it exact). Clients that don't care keep the no-op default.
     */
    virtual void bindClock(const Cycles *now) { (void)now; }

    /**
     * The VM system mapped a page of a task whose simulate
     * attribute is set (the tw_register_page() call site).
     *
     * @param shared another registered mapping of the same frame
     *        already exists.
     */
    virtual void
    onPageMapped(const Task &task, Vpn vpn, Pfn pfn, bool shared)
    {
        (void)task;
        (void)vpn;
        (void)pfn;
        (void)shared;
    }

    /**
     * The VM system unmapped a registered page (the
     * tw_remove_page() call site).
     *
     * @param last_mapping no registered mapping of the frame
     *        remains.
     */
    virtual void
    onPageRemoved(const Task &task, Vpn vpn, Pfn pfn, bool last_mapping)
    {
        (void)task;
        (void)vpn;
        (void)pfn;
        (void)last_mapping;
    }

    /** A DMA transfer invalidated the frame's lines in the real
     *  cache; simulated caches must do the same. */
    virtual void onDmaInvalidate(Pfn pfn) { (void)pfn; }
};

} // namespace tw

#endif // TW_OS_SIM_CLIENT_HH
