/**
 * @file
 * The interface between the simulated OS and an attached memory
 * simulator.
 *
 * Three kinds of client implement this interface:
 *  - core/Tapeworm       — the trap-driven simulator (the paper);
 *  - trace/PixieCache2000 — the trace-driven baseline;
 *  - harness/OracleClient — a zero-cost direct cache model used to
 *    validate both (Section 4.2's validation methodology).
 *
 * onRef() is called for every executed instruction and returns the
 * extra simulated cycles the instrumentation consumed — this is how
 * simulation overhead feeds back into simulated time and produces
 * the paper's time-dilation bias (Figure 4).
 */

#ifndef TW_OS_SIM_CLIENT_HH
#define TW_OS_SIM_CLIENT_HH

#include "base/types.hh"
#include "os/page_table.hh"

namespace tw
{

class Task;

/**
 * Observer/participant hooks for memory simulation.
 */
class SimClient
{
  public:
    virtual ~SimClient() = default;

    /**
     * One memory reference was executed.
     *
     * @param task the running task.
     * @param va referenced virtual address.
     * @param pa translated physical address.
     * @param intr_masked the CPU is running with interrupts masked
     *        (ECC traps cannot be delivered; Section 4.2 "Sources
     *        of Measurement Bias").
     * @param kind fetch, load or store.
     * @return extra cycles consumed by instrumentation.
     */
    virtual Cycles onRef(const Task &task, Addr va, Addr pa,
                         bool intr_masked,
                         AccessKind kind = AccessKind::Fetch) = 0;

    /**
     * The VM system mapped a page of a task whose simulate
     * attribute is set (the tw_register_page() call site).
     *
     * @param shared another registered mapping of the same frame
     *        already exists.
     */
    virtual void
    onPageMapped(const Task &task, Vpn vpn, Pfn pfn, bool shared)
    {
        (void)task;
        (void)vpn;
        (void)pfn;
        (void)shared;
    }

    /**
     * The VM system unmapped a registered page (the
     * tw_remove_page() call site).
     *
     * @param last_mapping no registered mapping of the frame
     *        remains.
     */
    virtual void
    onPageRemoved(const Task &task, Vpn vpn, Pfn pfn, bool last_mapping)
    {
        (void)task;
        (void)vpn;
        (void)pfn;
        (void)last_mapping;
    }

    /** A DMA transfer invalidated the frame's lines in the real
     *  cache; simulated caches must do the same. */
    virtual void onDmaInvalidate(Pfn pfn) { (void)pfn; }
};

} // namespace tw

#endif // TW_OS_SIM_CLIENT_HH
