/**
 * @file
 * The task structure of the simulated OS, extended with Tapeworm
 * attributes.
 *
 * Section 3.2 of the paper: each task carries two Tapeworm
 * attributes stored "in an extended version of the OS task data
 * structure". simulate registers the task's pages with Tapeworm;
 * inherit seeds the simulate attribute of forked children:
 *
 *     child.simulate <- parent.inherit
 *     child.inherit  <- parent.inherit
 *
 * Setting (simulate=0, inherit=1) on a shell captures a whole
 * workload fork tree while excluding the shell itself.
 */

#ifndef TW_OS_TASK_HH
#define TW_OS_TASK_HH

#include <array>
#include <memory>
#include <string>

#include "base/random.hh"
#include "base/types.hh"
#include "os/page_table.hh"
#include "workload/ref_stream.hh"
#include "workload/spec.hh"

namespace tw
{

/** Batch size of the per-task stream prefetch buffers. */
constexpr unsigned kStreamBatch = 256;

/**
 * A small prefetch window over a RefStream. Streams are private to
 * their task and deterministic, so pulling addresses a batch at a
 * time changes nothing observable — the machine still consumes them
 * strictly in order.
 */
struct StreamBuf
{
    std::array<Addr, kStreamBatch> buf;
    unsigned pos = 0;
    unsigned len = 0;

    bool empty() const { return pos == len; }
    Addr take() { return buf[pos++]; }

    void
    fill(RefStream &s)
    {
        s.nextBatch(buf.data(), kStreamBatch);
        pos = 0;
        len = kStreamBatch;
    }
};

/** Direct-mapped micro-TLB size; loop-nest excursions hop pages
 *  often enough that a single last-page entry misses ~10% of refs. */
constexpr unsigned kMicroTlbEntries = 256;

/**
 * Small direct-mapped translation cache (a micro-TLB), indexed by
 * virtual page number. An entry is valid only when its generation
 * matches the TLB's, so flush() is O(1) — a generation bump — no
 * matter how many tasks the DMA recycle path has to invalidate.
 * vaPage holds a page-aligned address, so the kInvalidAddr reset
 * value can never match and doubles as the invalid mark for
 * never-written entries.
 */
struct MicroTlb
{
    struct Entry
    {
        Addr vaPage = kInvalidAddr;
        Addr paBase = 0;
        std::uint32_t gen = 0;
    };

    std::array<Entry, kMicroTlbEntries> entries{};
    std::uint32_t gen = 1;

    /** Slot for a page-aligned address. */
    Entry &
    slot(Addr page)
    {
        return entries[(page / kHostPageBytes)
                       & (kMicroTlbEntries - 1)];
    }

    void flush() { ++gen; }
};

/** The (simulate, inherit) attribute pair of Table 1's
 *  tw_attributes() primitive. */
struct TwAttributes
{
    bool simulate = false;
    bool inherit = false;
};

/**
 * A schedulable task: program stream, address space, Tapeworm
 * attributes and bookkeeping.
 */
class Task
{
  public:
    /**
     * @param tid task id (0 = kernel).
     * @param name diagnostic name.
     * @param component which Table 4 column the task belongs to.
     * @param stream program to execute (may be null for the shell,
     *        which never runs user instructions).
     * @param data_stream optional data-reference stream (loads and
     *        stores over the task's data segment); its region must
     *        lie above the text region.
     * @param seed per-task control seed (syscall timing, burst
     *        jitter); fixed per task index, not per trial.
     */
    Task(TaskId tid, std::string name, Component component,
         std::unique_ptr<RefStream> stream,
         std::unique_ptr<RefStream> data_stream, std::uint64_t seed)
        : tid(tid), name(std::move(name)), component(component),
          stream(std::move(stream)),
          dataStream(std::move(data_stream)),
          pageTable(this->stream ? this->stream->textBase() : 0,
                    windowBytes()),
          rng(seed)
    {
    }

    /** Convenience: instruction stream only. */
    Task(TaskId tid, std::string name, Component component,
         std::unique_ptr<RefStream> stream, std::uint64_t seed)
        : Task(tid, std::move(name), component, std::move(stream),
               nullptr, seed)
    {
    }

    Task(const Task &) = delete;
    Task &operator=(const Task &) = delete;

    /** Fork-time attribute inheritance (see file comment). */
    void
    inheritFrom(const Task &parent)
    {
        attr.simulate = parent.attr.inherit;
        attr.inherit = parent.attr.inherit;
    }

    bool finished() const { return executed >= budget; }

    const TaskId tid;
    const std::string name;
    const Component component;

    TwAttributes attr;
    std::unique_ptr<RefStream> stream;
    std::unique_ptr<RefStream> dataStream;
    PageTable pageTable;
    Rng rng;

    /** Instructions this task may execute before exiting. */
    Counter budget = 0;
    /** Instructions executed so far. */
    Counter executed = 0;
    /** Countdown (in own instructions) to the next syscall. */
    Counter nextSyscallIn = ~static_cast<Counter>(0);
    /** Accumulator (millis of a data ref per instruction). */
    Counter dataRefCredit = 0;
    /** Rolling counter selecting stores among data refs. */
    Counter dataRefCount = 0;
    /** Which user binary this task runs (diagnostics). */
    unsigned binaryIndex = 0;
    /** Task has exited and its address space was torn down. */
    bool exited = false;

    /** Prefetch windows over the fetch and data streams (fast-path
     *  machinery; the slow path calls the streams directly). */
    StreamBuf fetchBuf;
    StreamBuf dataBuf;

    /** Last-page translation caches, one per stream so text and
     *  data references don't thrash a single entry. */
    MicroTlb itlb;
    MicroTlb dtlb;

    /** Drop cached translations (unmap and DMA-recycle paths). */
    void
    flushTranslations()
    {
        itlb.flush();
        dtlb.flush();
    }

  private:
    /** Address-space window: text through end of data segment. */
    std::uint64_t
    windowBytes() const
    {
        if (!stream)
            return kHostPageBytes;
        std::uint64_t end = stream->textBase() + stream->textBytes();
        if (dataStream) {
            TW_ASSERT(dataStream->textBase() >= end,
                      "data segment must follow the text segment");
            end = dataStream->textBase() + dataStream->textBytes();
        }
        return end - stream->textBase();
    }
};

} // namespace tw

#endif // TW_OS_TASK_HH
