/**
 * @file
 * The simulated host machine + OS, the substrate Tapeworm lives in.
 *
 * A System boots a kernel task, the BSD UNIX server, optionally the
 * X display server, and a shell; the shell forks the workload's
 * user tasks, which inherit Tapeworm attributes per Section 3.2.
 * User tasks execute their instruction streams; syscalls transfer
 * control to the kernel (and with some probability onward to a
 * server, Mach-style); a clock interrupt fires at a fixed real-time
 * rate, runs a masked kernel handler and drives round-robin
 * scheduling; periodic DMA buffer recycling invalidates cache lines
 * of one frame. An attached SimClient (Tapeworm, the trace-driven
 * baseline, or a validation oracle) observes every reference and
 * charges its instrumentation cycles into simulated time — which is
 * what makes slowdown and time-dilation experiments (Figures 2-4)
 * first-class, reproducible measurements here.
 */

#ifndef TW_OS_SYSTEM_HH
#define TW_OS_SYSTEM_HH

#include <array>
#include <memory>
#include <vector>

#include "machine/clock.hh"
#include "machine/phys_mem.hh"
#include "os/sim_client.hh"
#include "os/task.hh"
#include "os/vm.hh"
#include "workload/spec.hh"

namespace tw
{

/** Which workload components have their pages registered with the
 *  attached simulator (the Table 6 experiment axis). */
struct SimScope
{
    bool user = true;
    bool servers = true;
    bool kernel = true;

    static SimScope all() { return {true, true, true}; }
    static SimScope userOnly() { return {true, false, false}; }
    static SimScope serversOnly() { return {false, true, false}; }
    static SimScope kernelOnly() { return {false, false, true}; }
    static SimScope none() { return {false, false, false}; }
};

/** Machine/OS configuration of one experimental run. */
struct SystemConfig
{
    std::uint64_t physMemBytes = 16 * 1024 * 1024;
    AllocPolicy allocPolicy = AllocPolicy::Random;
    /** Frames withheld at boot (Tapeworm's 256 KB = 64 frames). */
    std::uint64_t reservedFrames = 64;

    /** Base cycles per instruction of the uninstrumented machine. */
    unsigned cpiBase = 2;

    /** Clock interrupt period (default: 256 Hz at 25 MHz). */
    Cycles clockInterval = kClockHz / 256;
    /** Randomize the first tick's phase per trial. */
    bool clockJitter = true;
    /** Instructions the masked clock handler executes per tick. */
    Counter tickHandlerInstr = 160;

    /** Round-robin scheduling quantum in instructions. */
    Counter quantumInstr = 20000;

    /** Every Nth tick a DMA buffer is recycled, invalidating one
     *  frame's cache lines (0 disables). */
    unsigned dmaFlushPeriod = 32;

    /** Kernel instructions charged per fork/exec. */
    Counter forkKernelInstr = 400;
    /** Cycles charged per first-touch page fault (cycles only; not
     *  counted as kernel instructions). */
    Counter faultKernelCycles = 400;
    /** Leading syscall instructions executed with interrupts
     *  masked (trap frame setup). */
    Counter maskedSyscallPrefix = 20;

    /** Per-trial seed: page allocation, clock phase. Everything
     *  else is seeded from the workload spec so that the workload
     *  itself is identical across trials. */
    std::uint64_t trialSeed = 1;

    SimScope scope;
};

/** Aggregate outcome of one run. */
struct RunResult
{
    Cycles cycles = 0;
    std::array<Counter, kNumComponents> instr{};
    Counter ticks = 0;
    Counter dataRefs = 0;
    Counter syscalls = 0;
    Counter forks = 0;
    Counter faults = 0;
    Counter dmaFlushes = 0;
    unsigned tasksCreated = 0;

    Counter
    totalInstr() const
    {
        Counter t = 0;
        for (Counter c : instr)
            t += c;
        return t;
    }

    double
    seconds() const
    {
        return static_cast<double>(cycles)
               / static_cast<double>(kClockHz);
    }

    /** Fraction of instructions in component @p c. */
    double
    instrFrac(Component c) const
    {
        Counter t = totalInstr();
        if (t == 0)
            return 0.0;
        return static_cast<double>(instr[static_cast<unsigned>(c)])
               / static_cast<double>(t);
    }
};

/**
 * One bootable, runnable machine instance. Single-shot: construct,
 * optionally attach a client, run() once, inspect.
 */
class System
{
  public:
    System(const SystemConfig &config, const WorkloadSpec &spec);

    /** Attach the memory simulator (may be null for a normal,
     *  uninstrumented run). */
    void setClient(SimClient *client);

    /** Boot, execute the workload to completion, return totals. */
    RunResult run();

    PhysMem &physMem() { return phys_; }
    Vm &vm() { return vm_; }
    const SystemConfig &config() const { return cfg_; }
    const WorkloadSpec &spec() const { return spec_; }
    Cycles now() const { return cycles_; }

    Task *kernelTask() { return kernel_; }
    Task *bsdTask() { return bsd_; }
    Task *xTask() { return x_; }
    Task *shellTask() { return shell_; }
    const std::vector<std::unique_ptr<Task>> &tasks() const
    {
        return tasks_;
    }

  private:
    void boot();
    Task *makeTask(const std::string &name, Component comp,
                   const StreamParams *params,
                   const StreamParams *data_params, std::uint64_t seed);
    void spawnNextUser(bool charge_fork_burst = true);
    void exitUser(Task &task);

    Addr translate(Task &task, Addr va);
    void step(Task &task);
    void dataStep(Task &task);
    void runBurst(Task &task, Counter len, Counter masked_prefix);
    void doSyscall(Task &task);
    void clockTick();
    void runSlice(Task &task);

    // The hit fast path (see DESIGN.md, "Making simulated hits as
    // cheap as hardware hits"). Produces bit-identical results to
    // the per-step legacy path, which is kept verbatim as
    // runSliceSlow/runBurstSlow/step/dataStep and selected by the
    // TW_SLOW_PATH environment variable.
    /** Fold the run's observability tallies into the process-wide
     *  obs registry (once, at the end of run()). */
    void flushObsCounters();

    Addr translateFast(Task &task, Addr va, MicroTlb &tlb);
    void stepFast(Task &task);
    void dataStepFast(Task &task);
    Counter runInner(Task &task, Counter h);
    Counter runInnerFiltered(Task &task, Counter h);
    Counter runInnerObserved(Task &task, Counter h);
    Counter clockHorizon() const;
    void runSliceFast(Task &task);
    void runBurstFast(Task &task, Counter len, Counter masked_prefix);
    void runSliceSlow(Task &task);
    void runBurstSlow(Task &task, Counter len, Counter masked_prefix);

    SystemConfig cfg_;
    WorkloadSpec spec_;
    PhysMem phys_;
    Vm vm_;
    ClockDevice clock_;
    SimClient *client_ = nullptr;

    std::vector<std::unique_ptr<Task>> tasks_;
    Task *kernel_ = nullptr;
    Task *bsd_ = nullptr;
    Task *x_ = nullptr;
    Task *shell_ = nullptr;

    std::vector<Task *> runQueue_;
    std::size_t rrIndex_ = 0;
    bool preempt_ = false;

    Cycles cycles_ = 0;
    Counter dataPerMille_ = 0;
    bool intrMasked_ = false;
    Addr handlerPos_ = 0;
    unsigned spawned_ = 0;
    unsigned initialSpawns_ = 0;
    bool ran_ = false;

    /** TW_SLOW_PATH was set: run the legacy per-step path. */
    bool slowPath_ = false;
    /** simd::wide() at run() start: whether the span scans of this
     *  run dispatch to a wide (AVX2/AVX-512) implementation — only
     *  the wide/scalar obs attribution, never the results, depends
     *  on it. */
    bool simdWide_ = false;
    /** Client's trap filter, cached once at run() start (the view's
     *  storage address is stable for the run; see TrapFilterView). */
    TrapFilterView filter_{};
    bool hasFilter_ = false;
    /** Translation cache for the clock handler's references, which
     *  would otherwise thrash the kernel task's fetch entry. */
    MicroTlb handlerTlb_;

    // Observability tallies. Plain members summed from inner-loop
    // locals at loop exit and flushed into the obs registry once at
    // the end of run() — the reference hot paths never touch shared
    // state for these.
    Counter obsRefsChunked_ = 0;
    Counter obsRefsFiltered_ = 0;
    Counter obsRefsObserved_ = 0;
    Counter obsProbeHits_ = 0;
    Counter obsProbeSkips_ = 0;
    Counter obsUtlbHits_ = 0;
    Counter obsUtlbMisses_ = 0;
    /** Bitmap/span scans served by a wide implementation vs the
     *  scalar fallback (TW_NO_SIMD or an unsupporting host). */
    Counter obsSimdWide_ = 0;
    Counter obsSimdScalar_ = 0;

    RunResult result_;
};

} // namespace tw

#endif // TW_OS_SYSTEM_HH
