/**
 * @file
 * Pixie-style workload annotation.
 *
 * Pixie rewrites a binary so that it emits its own instruction
 * addresses as it runs; crucially, it "only generates user-level
 * address traces for a single task" (Section 4), which is exactly
 * the completeness gap Table 6 quantifies: kernel, server and
 * other-task references never appear in the trace.
 *
 * PixieClient attaches to the simulated machine as a SimClient: it
 * forwards the target task's fetch addresses to a TraceSink (a
 * trace file, or a Cache2000 instance for on-the-fly simulation)
 * and charges the per-address generation cost into simulated time,
 * which is how the trace-driven slowdowns of Figure 2 arise.
 */

#ifndef TW_TRACE_PIXIE_HH
#define TW_TRACE_PIXIE_HH

#include "base/types.hh"
#include "os/sim_client.hh"
#include "os/task.hh"
#include "trace/cache2000.hh"
#include "trace/trace_io.hh"

namespace tw
{

/** Cost knobs of the annotation. */
struct PixieConfig
{
    /** Cycles to generate (emit) one trace address. Together with
     *  Cache2000's per-address processing this reproduces the
     *  40-60+ cycles/address of Section 4.1. */
    Cycles genCycles = 47;
};

/**
 * The annotated-workload trace generator.
 */
class PixieClient : public SimClient
{
  public:
    /**
     * @param target the single task whose references are traced.
     * @param sink where the addresses go (e.g. a TraceWriter).
     */
    PixieClient(TaskId target, TraceSink *sink,
                PixieConfig config = {})
        : target_(target), sink_(sink), cfg_(config)
    {
    }

    /**
     * On-the-fly mode: feed a Cache2000 directly and charge its
     * per-address processing cycles into the annotated run, in
     * addition to the generation cost — the Pixie+Cache2000
     * combination whose slowdowns Figure 2 plots.
     */
    PixieClient(TaskId target, Cache2000 *inline_sim,
                PixieConfig config = {})
        : target_(target), inlineSim_(inline_sim), cfg_(config)
    {
    }

    Cycles
    onRef(const Task &task, Addr va, Addr pa, bool intr_masked,
          AccessKind kind = AccessKind::Fetch) override
    {
        (void)pa;
        (void)intr_masked;
        // Annotation is part of the target binary: other tasks and
        // the kernel run unannotated and invisible. Pixie produces
        // instruction address traces only (Section 4).
        if (task.tid != target_ || kind != AccessKind::Fetch)
            return 0;
        ++traced_;
        Cycles cost = cfg_.genCycles;
        if (inlineSim_)
            cost += inlineSim_->processAddr(va, task.tid);
        else if (sink_)
            sink_->put(TraceRecord{va, task.tid});
        return cost;
    }

    Counter traced() const { return traced_; }

  private:
    TaskId target_;
    TraceSink *sink_ = nullptr;
    Cache2000 *inlineSim_ = nullptr;
    PixieConfig cfg_;
    Counter traced_ = 0;
};

/** Tid of the first user task the shell forks (boot layout of the
 *  simulated system: kernel=0, bsd=1, x=2, shell=3). */
constexpr TaskId kFirstUserTaskId = 4;

} // namespace tw

#endif // TW_TRACE_PIXIE_HH
