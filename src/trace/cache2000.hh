/**
 * @file
 * The trace-driven baseline: a Cache2000-style simulator.
 *
 * Implements the left side of the paper's Figure 1: for EVERY
 * address in the trace, search the simulated cache, count a hit or
 * a miss, and run the replacement policy on misses. The per-address
 * processing cost — paid on hits and misses alike — is what gives
 * trace-driven simulation its ~20-30x slowdown floor (Figure 2),
 * regardless of how well the simulated cache performs.
 *
 * Supports software set-sampling of a filtered trace (Section 3.2's
 * comparison point): non-sample addresses still cost a filter test,
 * unlike Tapeworm where the hardware filters them for free.
 */

#ifndef TW_TRACE_CACHE2000_HH
#define TW_TRACE_CACHE2000_HH

#include <vector>

#include "base/random.hh"
#include "base/types.hh"
#include "mem/cache.hh"
#include "trace/trace_io.hh"

namespace tw
{

/** Cost/configuration of a Cache2000 run. */
struct Cache2000Config
{
    CacheConfig cache;

    /**
     * Cycles to process one (hitting) trace address: the search
     * and bookkeeping. Table 5 reports 53 cycles per address for
     * Cache2000 including on-the-fly Pixie generation; we charge
     * generation separately (see PixieClient) and calibrate the
     * split so the Figure 2 slowdown floor (~22x) is reproduced.
     */
    Cycles hitCycles = 53;

    /** Extra cycles when the address misses (replacement, result
     *  recording). */
    Cycles missExtraCycles = 320;

    /** Sample sampleNum/sampleDenom of the sets; filtered addresses
     *  cost filterCycles each (software must still touch them). */
    unsigned sampleNum = 1;
    unsigned sampleDenom = 1;
    std::uint64_t sampleSeed = 0;
    Cycles filterCycles = 4;

    double
    sampledFraction() const
    {
        return static_cast<double>(sampleNum)
               / static_cast<double>(sampleDenom);
    }
};

/** Counters of a Cache2000 run. */
struct Cache2000Stats
{
    Counter refs = 0;     //!< addresses processed (incl. filtered)
    Counter filtered = 0; //!< addresses outside the set sample
    Counter hits = 0;
    Counter misses = 0;
    Cycles cycles = 0;    //!< total simulation cycles consumed
};

/**
 * Trace-driven cache simulator.
 */
class Cache2000 : public TraceSink
{
  public:
    explicit Cache2000(const Cache2000Config &config);

    /**
     * Process one trace address; returns the simulation cycles it
     * cost (the Figure 1 left-hand loop body).
     */
    Cycles processAddr(Addr va, TaskId tid);

    /** TraceSink interface: file-replay entry point. */
    void put(const TraceRecord &rec) override;

    /** Replay a whole trace file. */
    void run(TraceReader &reader);

    const Cache2000Stats &stats() const { return stats_; }
    const Cache2000Config &config() const { return cfg_; }
    const Cache &cache() const { return cache_; }

    /** Misses scaled by the inverse sample fraction. */
    double estimatedMisses() const;

    bool setSampled(std::uint64_t set_index) const;

  private:
    Cache2000Config cfg_;
    Cache cache_;
    unsigned lineShift_;
    bool allSampled_;
    std::vector<bool> sampledSets_;
    Cache2000Stats stats_;
};

} // namespace tw

#endif // TW_TRACE_CACHE2000_HH
