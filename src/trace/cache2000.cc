#include "trace/cache2000.hh"

#include "base/bitops.hh"
#include "base/logging.hh"
#include "mem/set_sample.hh"

namespace tw
{

Cache2000::Cache2000(const Cache2000Config &config)
    : cfg_(config), cache_(config.cache)
{
    TW_ASSERT(cfg_.cache.indexing == Indexing::Virtual,
              "trace-driven simulation works on virtual address "
              "traces; physical indexing would need per-run page "
              "mappings the trace does not carry");
    lineShift_ = floorLog2(cfg_.cache.lineBytes);
    allSampled_ = cfg_.sampleNum == cfg_.sampleDenom;
    if (!allSampled_) {
        sampledSets_ = chooseSampledSets(cfg_.cache.numSets(),
                                         cfg_.sampleNum,
                                         cfg_.sampleDenom,
                                         cfg_.sampleSeed);
    }
}

bool
Cache2000::setSampled(std::uint64_t set_index) const
{
    return allSampled_ || sampledSets_[set_index];
}

Cycles
Cache2000::processAddr(Addr va, TaskId tid)
{
    ++stats_.refs;

    LineRef ref;
    ref.vaLine = va >> lineShift_;
    ref.paLine = ref.vaLine; // virtual trace: no physical mapping
    ref.tid = tid;

    if (!allSampled_ && !sampledSets_[cache_.setIndexOf(ref)]) {
        // Software filtering: unlike Tapeworm, the simulator still
        // has to look at the address to reject it.
        ++stats_.filtered;
        stats_.cycles += cfg_.filterCycles;
        return cfg_.filterCycles;
    }

    AccessResult res = cache_.access(ref);
    Cycles cost = cfg_.hitCycles;
    if (res.hit) {
        ++stats_.hits;
    } else {
        ++stats_.misses;
        cost += cfg_.missExtraCycles;
    }
    stats_.cycles += cost;
    return cost;
}

void
Cache2000::put(const TraceRecord &rec)
{
    processAddr(rec.va, rec.tid);
}

void
Cache2000::run(TraceReader &reader)
{
    TraceRecord rec;
    while (reader.next(rec))
        processAddr(rec.va, rec.tid);
}

double
Cache2000::estimatedMisses() const
{
    return static_cast<double>(stats_.misses)
           / cfg_.sampledFraction();
}

} // namespace tw
