/**
 * @file
 * Address-trace records and compact binary trace files.
 *
 * Trace-driven simulation's classic workflow stores extracted
 * traces in files and replays them (Section 2 of the paper cites a
 * dozen trace extraction tools). This module provides the
 * file-based path: a delta/varint-encoded binary format that keeps
 * the (large) traces small, a buffered writer and a reader. The
 * on-the-fly path (Pixie-style annotation feeding the simulator
 * directly) lives in pixie.hh.
 */

#ifndef TW_TRACE_TRACE_IO_HH
#define TW_TRACE_TRACE_IO_HH

#include <cstdio>
#include <string>
#include <vector>

#include "base/types.hh"

namespace tw
{

/** One trace entry: a fetch address and the task that fetched. */
struct TraceRecord
{
    Addr va = 0;
    TaskId tid = 0;

    bool
    operator==(const TraceRecord &o) const
    {
        return va == o.va && tid == o.tid;
    }
};

/** Anything that consumes a stream of trace records. */
class TraceSink
{
  public:
    virtual ~TraceSink() = default;
    virtual void put(const TraceRecord &rec) = 0;
};

/**
 * Buffered binary trace writer.
 *
 * Format: 8-byte header ("TWTRACE1"), then per record a varint key
 * k = (zigzag(delta_words) << 1) | tid_changed, optionally followed
 * by a varint task id. Sequential code costs one byte per fetch.
 */
class TraceWriter : public TraceSink
{
  public:
    /** Open @p path for writing (fatal on failure). */
    explicit TraceWriter(const std::string &path);
    ~TraceWriter() override;

    TraceWriter(const TraceWriter &) = delete;
    TraceWriter &operator=(const TraceWriter &) = delete;

    void put(const TraceRecord &rec) override;

    /** Flush buffers and close; further put() is invalid. */
    void close();

    Counter records() const { return records_; }
    /** Bytes written so far (compression diagnostics). */
    std::uint64_t bytesWritten() const { return bytes_; }

  private:
    void putVarint(std::uint64_t v);
    void flush();

    std::FILE *file_ = nullptr;
    std::vector<std::uint8_t> buf_;
    Addr prevVa_ = 0;
    TaskId prevTid_ = -1;
    Counter records_ = 0;
    std::uint64_t bytes_ = 0;
};

/**
 * Streaming trace reader for files produced by TraceWriter.
 */
class TraceReader
{
  public:
    /** Open @p path for reading (fatal on bad file). */
    explicit TraceReader(const std::string &path);
    ~TraceReader();

    TraceReader(const TraceReader &) = delete;
    TraceReader &operator=(const TraceReader &) = delete;

    /** Read the next record; false at end of trace. */
    bool next(TraceRecord &rec);

    Counter records() const { return records_; }

  private:
    bool fill();
    bool getByte(std::uint8_t &b);
    bool getVarint(std::uint64_t &v);

    std::FILE *file_ = nullptr;
    std::vector<std::uint8_t> buf_;
    std::size_t pos_ = 0;
    std::size_t len_ = 0;
    Addr prevVa_ = 0;
    TaskId prevTid_ = -1;
    Counter records_ = 0;
};

/** Zigzag encode a signed delta. */
constexpr std::uint64_t
zigzag(std::int64_t v)
{
    return (static_cast<std::uint64_t>(v) << 1)
           ^ static_cast<std::uint64_t>(v >> 63);
}

/** Invert zigzag(). */
constexpr std::int64_t
unzigzag(std::uint64_t v)
{
    return static_cast<std::int64_t>(v >> 1)
           ^ -static_cast<std::int64_t>(v & 1);
}

} // namespace tw

#endif // TW_TRACE_TRACE_IO_HH
