#include "trace/trace_io.hh"

#include <cstring>

#include "base/logging.hh"

namespace tw
{

namespace
{

constexpr char kMagic[8] = {'T', 'W', 'T', 'R', 'A', 'C', 'E', '1'};
constexpr std::size_t kBufBytes = 1 << 16;

} // anonymous namespace

TraceWriter::TraceWriter(const std::string &path)
{
    file_ = std::fopen(path.c_str(), "wb");
    if (!file_)
        fatal("cannot open trace file '%s' for writing", path.c_str());
    buf_.reserve(kBufBytes + 16);
    buf_.insert(buf_.end(), kMagic, kMagic + sizeof(kMagic));
}

TraceWriter::~TraceWriter()
{
    if (file_)
        close();
}

void
TraceWriter::putVarint(std::uint64_t v)
{
    while (v >= 0x80) {
        buf_.push_back(static_cast<std::uint8_t>(v) | 0x80);
        v >>= 7;
    }
    buf_.push_back(static_cast<std::uint8_t>(v));
}

void
TraceWriter::put(const TraceRecord &rec)
{
    TW_ASSERT(file_ != nullptr, "put() after close()");
    std::int64_t delta_words =
        (static_cast<std::int64_t>(rec.va)
         - static_cast<std::int64_t>(prevVa_))
        / static_cast<std::int64_t>(kWordBytes);
    bool tid_changed = rec.tid != prevTid_;
    putVarint((zigzag(delta_words) << 1)
              | static_cast<std::uint64_t>(tid_changed));
    if (tid_changed)
        putVarint(static_cast<std::uint64_t>(rec.tid));
    prevVa_ = rec.va;
    prevTid_ = rec.tid;
    ++records_;
    if (buf_.size() >= kBufBytes)
        flush();
}

void
TraceWriter::flush()
{
    if (buf_.empty())
        return;
    std::size_t wrote = std::fwrite(buf_.data(), 1, buf_.size(), file_);
    if (wrote != buf_.size())
        fatal("short write to trace file");
    bytes_ += wrote;
    buf_.clear();
}

void
TraceWriter::close()
{
    flush();
    std::fclose(file_);
    file_ = nullptr;
}

TraceReader::TraceReader(const std::string &path)
{
    file_ = std::fopen(path.c_str(), "rb");
    if (!file_)
        fatal("cannot open trace file '%s'", path.c_str());
    buf_.resize(kBufBytes);
    char magic[8];
    if (std::fread(magic, 1, sizeof(magic), file_) != sizeof(magic)
        || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
        fatal("'%s' is not a Tapeworm trace file", path.c_str());
    }
}

TraceReader::~TraceReader()
{
    if (file_)
        std::fclose(file_);
}

bool
TraceReader::fill()
{
    len_ = std::fread(buf_.data(), 1, buf_.size(), file_);
    pos_ = 0;
    return len_ > 0;
}

bool
TraceReader::getByte(std::uint8_t &b)
{
    if (pos_ >= len_ && !fill())
        return false;
    b = buf_[pos_++];
    return true;
}

bool
TraceReader::getVarint(std::uint64_t &v)
{
    v = 0;
    unsigned shift = 0;
    std::uint8_t b;
    do {
        if (!getByte(b))
            return false;
        v |= static_cast<std::uint64_t>(b & 0x7f) << shift;
        shift += 7;
    } while (b & 0x80);
    return true;
}

bool
TraceReader::next(TraceRecord &rec)
{
    std::uint64_t key;
    if (!getVarint(key))
        return false;
    bool tid_changed = key & 1;
    std::int64_t delta_words = unzigzag(key >> 1);
    prevVa_ = static_cast<Addr>(
        static_cast<std::int64_t>(prevVa_)
        + delta_words * static_cast<std::int64_t>(kWordBytes));
    if (tid_changed) {
        std::uint64_t tid;
        if (!getVarint(tid))
            fatal("truncated trace record");
        prevTid_ = static_cast<TaskId>(tid);
    }
    rec.va = prevVa_;
    rec.tid = prevTid_;
    ++records_;
    return true;
}

} // namespace tw
