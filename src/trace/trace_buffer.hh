/**
 * @file
 * System-wide trace-buffer simulation — the Mogul/Borg and Chen
 * approach from Section 2.
 *
 * "Mogul and Borg describe a system where each task in a multi-task
 * workload is instrumented to make entries in a system-wide trace
 * buffer. A modified operating system kernel interleaves the
 * execution of the different user-level workload tasks according to
 * usual scheduling policies and invokes a memory simulator whenever
 * the trace buffer becomes full. Chen has further extended this
 * technique to include annotation of the OS kernel itself, thus
 * enabling complete accounting of all system activity."
 *
 * TraceBufferClient models the Chen variant: EVERY reference of
 * EVERY component appends to a fixed buffer (a few cycles of inline
 * annotation), and when the buffer fills the simulator drains it in
 * one burst — the workload stalls for the whole sweep, which is why
 * this family is complete like Tapeworm but pays trace-driven
 * per-reference costs on the entire system, not just one task.
 */

#ifndef TW_TRACE_TRACE_BUFFER_HH
#define TW_TRACE_TRACE_BUFFER_HH

#include <array>
#include <vector>

#include "base/bitops.hh"
#include "base/types.hh"
#include "mem/cache.hh"
#include "os/sim_client.hh"
#include "os/task.hh"

namespace tw
{

/** Configuration of the buffered complete-tracing simulator. */
struct TraceBufferConfig
{
    CacheConfig cache;

    /** Buffer capacity in entries (Mogul/Borg used megabytes; the
     *  scaled default keeps drain bursts frequent enough to see). */
    std::size_t bufferEntries = 32768;

    /** Cycles per reference for the inlined buffer append. */
    Cycles writeCycles = 10;

    /** Simulator cycles per entry when draining a full buffer. */
    Cycles drainPerEntry = 55;
};

/** Counters of a trace-buffer run. */
struct TraceBufferStats
{
    Counter refs = 0;
    Counter drains = 0;
    std::array<Counter, kNumComponents> misses{};
    Cycles cycles = 0;

    Counter
    totalMisses() const
    {
        Counter t = 0;
        for (Counter m : misses)
            t += m;
        return t;
    }
};

/**
 * Complete (all-task, all-kernel) buffered tracing simulator.
 */
class TraceBufferClient : public SimClient
{
  public:
    explicit TraceBufferClient(const TraceBufferConfig &config)
        : cfg_(config), cache_(config.cache),
          lineShift_(floorLog2(config.cache.lineBytes))
    {
        buffer_.reserve(cfg_.bufferEntries);
    }

    Cycles
    onRef(const Task &task, Addr va, Addr pa, bool intr_masked,
          AccessKind kind = AccessKind::Fetch) override
    {
        (void)pa;
        (void)intr_masked; // kernel annotation, not a trap: immune
        if (kind != AccessKind::Fetch)
            return 0; // instruction tracing, like the baseline
        ++stats_.refs;
        buffer_.push_back(Entry{va, task.tid,
                                static_cast<std::uint8_t>(
                                    task.component)});
        Cycles cost = cfg_.writeCycles;
        if (buffer_.size() >= cfg_.bufferEntries)
            cost += drain();
        stats_.cycles += cost;
        return cost;
    }

    /** Process whatever is buffered (call at end of run so the tail
     *  is not lost). Returns the simulator cycles consumed. */
    Cycles
    drain()
    {
        ++stats_.drains;
        Cycles cost = 0;
        for (const Entry &entry : buffer_) {
            LineRef ref;
            ref.vaLine = entry.va >> lineShift_;
            ref.paLine = ref.vaLine;
            ref.tid = entry.tid;
            if (!cache_.access(ref).hit)
                ++stats_.misses[entry.component];
            cost += cfg_.drainPerEntry;
        }
        buffer_.clear();
        return cost;
    }

    const TraceBufferStats &stats() const { return stats_; }
    std::size_t buffered() const { return buffer_.size(); }

  private:
    struct Entry
    {
        Addr va;
        TaskId tid;
        std::uint8_t component;
    };

    TraceBufferConfig cfg_;
    Cache cache_;
    unsigned lineShift_;
    std::vector<Entry> buffer_;
    TraceBufferStats stats_;
};

} // namespace tw

#endif // TW_TRACE_TRACE_BUFFER_HH
