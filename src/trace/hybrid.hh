/**
 * @file
 * A hybrid annotation-based simulator (Section 2's third family).
 *
 * "Other work shares some of the properties of both trace-driven
 * and trap-driven simulation [Cmelik94, Lebeck94, Martonosi92].
 * These hybrid approaches annotate a program to invoke simulation
 * handlers on every memory reference. In these systems, simulations
 * can be optimized by calling a null handler on memory locations
 * known to be in a simulated cache or TLB."
 *
 * HybridClient models that family (Fast-Cache / MemSpy style):
 * every reference of the annotated task costs at least a null
 * handler call (a few cycles of inline check), and references that
 * miss the simulated cache run a full software handler — cheaper
 * than a kernel trap, since no privilege crossing happens, but paid
 * in user mode on every reference. Like Pixie, annotation is
 * per-binary: kernel and other tasks stay invisible.
 *
 * The resulting speed regime sits between the two main techniques:
 * a per-reference floor like trace-driven (but much lower), and
 * miss-proportional growth like trap-driven (but with a cheaper
 * handler). bench_hybrid shows the crossovers.
 */

#ifndef TW_TRACE_HYBRID_HH
#define TW_TRACE_HYBRID_HH

#include "base/bitops.hh"
#include "base/types.hh"
#include "mem/cache.hh"
#include "os/sim_client.hh"
#include "os/task.hh"

namespace tw
{

/** Cost/configuration of the hybrid simulator. */
struct HybridConfig
{
    CacheConfig cache;

    /** Cycles of the inlined "is it resident?" check + null handler
     *  (Fast-Cache reports a handful of instructions). */
    Cycles nullHandlerCycles = 5;

    /** Cycles of the full user-mode miss handler — no kernel trap,
     *  so far cheaper than Tapeworm's 246 but paid in-line. */
    Cycles missHandlerCycles = 80;
};

/** Counters of a hybrid run. */
struct HybridStats
{
    Counter refs = 0;   //!< annotated references processed
    Counter misses = 0;
    Cycles cycles = 0;  //!< total instrumentation cycles
};

/**
 * Annotation-based single-task cache simulator.
 */
class HybridClient : public SimClient
{
  public:
    /** @param target the annotated task (single binary, like
     *  Pixie). */
    HybridClient(TaskId target, const HybridConfig &config)
        : target_(target), cfg_(config), cache_(config.cache),
          lineShift_(floorLog2(config.cache.lineBytes))
    {
    }

    Cycles
    onRef(const Task &task, Addr va, Addr pa, bool intr_masked,
          AccessKind kind = AccessKind::Fetch) override
    {
        (void)pa;
        (void)intr_masked;
        if (task.tid != target_ || kind != AccessKind::Fetch)
            return 0;
        ++stats_.refs;

        LineRef ref;
        ref.vaLine = va >> lineShift_;
        ref.paLine = ref.vaLine;
        ref.tid = task.tid;

        // The annotation always runs: known-resident lines take the
        // null handler; everything else runs the full handler.
        Cycles cost = cfg_.nullHandlerCycles;
        if (!cache_.contains(ref)) {
            ++stats_.misses;
            cache_.insert(ref);
            cost += cfg_.missHandlerCycles;
        }
        stats_.cycles += cost;
        return cost;
    }

    const HybridStats &stats() const { return stats_; }
    const Cache &cache() const { return cache_; }

  private:
    TaskId target_;
    HybridConfig cfg_;
    Cache cache_;
    unsigned lineShift_;
    HybridStats stats_;
};

} // namespace tw

#endif // TW_TRACE_HYBRID_HH
