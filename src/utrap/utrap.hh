/**
 * @file
 * UserTapeworm: the trap-driven mechanism on real host hardware.
 *
 * The paper's Tapeworm flips ECC check bits through a privileged
 * memory-controller interface and fields the resulting kernel
 * traps. A userspace process cannot do that, but it has the exact
 * analogue Table 2 lists as "Invalid Page Traps": mprotect(2) plus
 * a SIGSEGV handler. UserTapeworm runs a live TLB simulation of the
 * *current process*: every page of a registered buffer starts
 * PROT_NONE (trap set = not resident in the simulated TLB); the
 * first touch faults into the handler, which counts the miss,
 * unprotects the page (tw_clear_trap), inserts it into the
 * simulated TLB, and re-protects the displaced page (tw_set_trap).
 * Hits on resident pages run at full hardware speed with zero
 * instrumentation — the defining property of trap-driven
 * simulation.
 *
 * Constraints inherited from the approach (and documented in the
 * paper): replacement must not need hit information (FIFO or
 * Random, not LRU), and the simulation granularity is the host page
 * size. Single-threaded use only.
 */

#ifndef TW_UTRAP_UTRAP_HH
#define TW_UTRAP_UTRAP_HH

#include <cstddef>
#include <cstdint>

#include "base/types.hh"

namespace tw
{

/** Replacement policies a trap-driven TLB can implement (no LRU:
 *  hits are never observed). */
enum class UtrapPolicy { Fifo, Random };

/** Configuration of the simulated TLB. */
struct UtrapConfig
{
    /** Total TLB entries. */
    unsigned entries = 64;
    /** Ways per set; 0 = fully associative. */
    unsigned assoc = 0;
    UtrapPolicy policy = UtrapPolicy::Fifo;
    /** Seed for the Random policy (LCG; async-signal-safe). */
    std::uint64_t seed = 1;
};

/** Counters of a UserTapeworm session. */
struct UtrapStats
{
    std::uint64_t misses = 0;      //!< simulated TLB misses (faults)
    std::uint64_t evictions = 0;   //!< pages re-protected
    std::uint64_t trapsSet = 0;
    std::uint64_t trapsCleared = 0;
};

/**
 * The live trap engine. One instance may be active at a time (the
 * SIGSEGV handler needs a global rendezvous).
 */
class UserTapeworm
{
  public:
    explicit UserTapeworm(const UtrapConfig &config = {});
    ~UserTapeworm();

    UserTapeworm(const UserTapeworm &) = delete;
    UserTapeworm &operator=(const UserTapeworm &) = delete;

    /**
     * Allocate @p bytes of page-aligned memory and place it under
     * trap-driven simulation (all pages initially trapped).
     * Returns the buffer base; at most kMaxRegions live regions.
     */
    void *registerBuffer(std::size_t bytes);

    /** Remove a buffer from simulation and unmap it. Resident pages
     *  are flushed from the simulated TLB. */
    void releaseBuffer(void *base);

    /**
     * Restart the simulation: flush the simulated TLB and re-trap
     * every registered page. Counters are NOT cleared (use
     * clearStats()).
     */
    void reset();

    /** Zero the counters. */
    void clearStats();

    const UtrapStats &stats() const { return stats_; }
    const UtrapConfig &config() const { return cfg_; }

    /** Number of pages currently resident in the simulated TLB. */
    unsigned residentPages() const;

    /** Does the engine own the address (diagnostics)? */
    bool owns(const void *addr) const;

    /**
     * Internal: called by the SIGSEGV handler. Returns false when
     * the fault is not ours (the handler then re-raises with the
     * default disposition so genuine crashes still crash).
     */
    bool handleFault(void *addr);

    /** Maximum simultaneously registered buffers. */
    static constexpr unsigned kMaxRegions = 16;

  private:
    struct Region
    {
        std::uintptr_t base = 0;
        std::size_t bytes = 0;
        bool live = false;
    };

    struct Entry
    {
        std::uintptr_t pageBase = 0; //!< 0 = invalid
    };

    void protectPage(std::uintptr_t page_base);
    void unprotectPage(std::uintptr_t page_base);
    unsigned setOf(std::uintptr_t page_base) const;
    void flushPage(std::uintptr_t page_base);

    UtrapConfig cfg_;
    unsigned ways_;
    unsigned sets_;
    long pageBytes_;

    Region regions_[kMaxRegions];
    // TLB storage: sets_ x ways_, plus a FIFO cursor per set. Sized
    // in the constructor; never reallocated afterwards (the fault
    // handler must not allocate).
    Entry *tlb_ = nullptr;
    unsigned *fifoCursor_ = nullptr;
    std::uint64_t lcg_;
    UtrapStats stats_;
};

} // namespace tw

#endif // TW_UTRAP_UTRAP_HH
