#include "utrap/utrap.hh"

#include <csignal>
#include <cstring>

#include <sys/mman.h>
#include <unistd.h>

#include "base/bitops.hh"
#include "base/logging.hh"

namespace tw
{

namespace
{

/** The single active engine (SIGSEGV handler rendezvous). */
UserTapeworm *g_engine = nullptr;

struct sigaction g_prev_action;

void
sigsegvHandler(int sig, siginfo_t *info, void *ucontext)
{
    (void)ucontext;
    if (g_engine && info && g_engine->handleFault(info->si_addr))
        return;

    // Not our fault: restore the previous disposition and re-raise
    // so genuine crashes behave normally.
    sigaction(sig, &g_prev_action, nullptr);
    raise(sig);
}

void
installHandler()
{
    struct sigaction sa;
    std::memset(&sa, 0, sizeof(sa));
    sa.sa_sigaction = sigsegvHandler;
    sa.sa_flags = SA_SIGINFO | SA_NODEFER;
    sigemptyset(&sa.sa_mask);
    if (sigaction(SIGSEGV, &sa, &g_prev_action) != 0)
        fatal("utrap: cannot install SIGSEGV handler");
}

void
removeHandler()
{
    sigaction(SIGSEGV, &g_prev_action, nullptr);
}

} // anonymous namespace

UserTapeworm::UserTapeworm(const UtrapConfig &config)
    : cfg_(config), lcg_(config.seed | 1)
{
    TW_ASSERT(g_engine == nullptr,
              "only one UserTapeworm may be active");
    TW_ASSERT(cfg_.entries > 0, "TLB needs at least one entry");

    ways_ = cfg_.assoc == 0 ? cfg_.entries : cfg_.assoc;
    TW_ASSERT(cfg_.entries % ways_ == 0,
              "associativity must divide entry count");
    sets_ = cfg_.entries / ways_;
    TW_ASSERT(isPowerOf2(sets_), "set count must be a power of two");

    pageBytes_ = sysconf(_SC_PAGESIZE);
    TW_ASSERT(pageBytes_ > 0, "cannot determine page size");

    tlb_ = new Entry[static_cast<std::size_t>(sets_) * ways_]();
    fifoCursor_ = new unsigned[sets_]();

    g_engine = this;
    installHandler();
}

UserTapeworm::~UserTapeworm()
{
    for (auto &region : regions_) {
        if (region.live)
            releaseBuffer(reinterpret_cast<void *>(region.base));
    }
    removeHandler();
    g_engine = nullptr;
    delete[] tlb_;
    delete[] fifoCursor_;
}

void *
UserTapeworm::registerBuffer(std::size_t bytes)
{
    bytes = alignUp(bytes, static_cast<std::uint64_t>(pageBytes_));
    Region *slot = nullptr;
    for (auto &region : regions_) {
        if (!region.live) {
            slot = &region;
            break;
        }
    }
    if (!slot)
        fatal("utrap: too many registered buffers (max %u)",
              kMaxRegions);

    // Start fully trapped: PROT_NONE means "not in the simulated
    // TLB" for every page.
    void *mem = mmap(nullptr, bytes, PROT_NONE,
                     MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
    if (mem == MAP_FAILED)
        fatal("utrap: mmap of %zu bytes failed", bytes);

    slot->base = reinterpret_cast<std::uintptr_t>(mem);
    slot->bytes = bytes;
    slot->live = true;
    stats_.trapsSet += bytes / static_cast<std::size_t>(pageBytes_);
    return mem;
}

void
UserTapeworm::releaseBuffer(void *base)
{
    std::uintptr_t b = reinterpret_cast<std::uintptr_t>(base);
    for (auto &region : regions_) {
        if (region.live && region.base == b) {
            // Flush resident pages of the region (tw_remove_page).
            for (std::uintptr_t page = region.base;
                 page < region.base + region.bytes;
                 page += static_cast<std::uintptr_t>(pageBytes_)) {
                flushPage(page);
            }
            munmap(base, region.bytes);
            region.live = false;
            return;
        }
    }
    panic("utrap: releasing unregistered buffer %p", base);
}

void
UserTapeworm::reset()
{
    for (std::size_t i = 0;
         i < static_cast<std::size_t>(sets_) * ways_; ++i) {
        tlb_[i].pageBase = 0;
    }
    for (unsigned s = 0; s < sets_; ++s)
        fifoCursor_[s] = 0;
    for (const auto &region : regions_) {
        if (!region.live)
            continue;
        if (mprotect(reinterpret_cast<void *>(region.base),
                     region.bytes, PROT_NONE) != 0) {
            fatal("utrap: mprotect(PROT_NONE) failed on reset");
        }
        stats_.trapsSet +=
            region.bytes / static_cast<std::size_t>(pageBytes_);
    }
}

void
UserTapeworm::clearStats()
{
    stats_ = UtrapStats{};
}

unsigned
UserTapeworm::residentPages() const
{
    unsigned n = 0;
    for (std::size_t i = 0;
         i < static_cast<std::size_t>(sets_) * ways_; ++i) {
        if (tlb_[i].pageBase != 0)
            ++n;
    }
    return n;
}

bool
UserTapeworm::owns(const void *addr) const
{
    std::uintptr_t a = reinterpret_cast<std::uintptr_t>(addr);
    for (const auto &region : regions_) {
        if (region.live && a >= region.base
            && a < region.base + region.bytes) {
            return true;
        }
    }
    return false;
}

unsigned
UserTapeworm::setOf(std::uintptr_t page_base) const
{
    std::uintptr_t vpn =
        page_base / static_cast<std::uintptr_t>(pageBytes_);
    return static_cast<unsigned>(vpn & (sets_ - 1));
}

void
UserTapeworm::protectPage(std::uintptr_t page_base)
{
    if (mprotect(reinterpret_cast<void *>(page_base),
                 static_cast<std::size_t>(pageBytes_),
                 PROT_NONE) != 0) {
        panic("utrap: mprotect(PROT_NONE) failed");
    }
    ++stats_.trapsSet;
}

void
UserTapeworm::unprotectPage(std::uintptr_t page_base)
{
    if (mprotect(reinterpret_cast<void *>(page_base),
                 static_cast<std::size_t>(pageBytes_),
                 PROT_READ | PROT_WRITE) != 0) {
        panic("utrap: mprotect(READ|WRITE) failed");
    }
    ++stats_.trapsCleared;
}

void
UserTapeworm::flushPage(std::uintptr_t page_base)
{
    unsigned set = setOf(page_base);
    Entry *base = tlb_ + static_cast<std::size_t>(set) * ways_;
    for (unsigned w = 0; w < ways_; ++w) {
        if (base[w].pageBase == page_base)
            base[w].pageBase = 0;
    }
}

bool
UserTapeworm::handleFault(void *addr)
{
    // Async-signal-safety: everything below is array indexing,
    // mprotect(2) and arithmetic — no allocation, no locks, no
    // stdio.
    std::uintptr_t a = reinterpret_cast<std::uintptr_t>(addr);
    bool ours = false;
    for (const auto &region : regions_) {
        if (region.live && a >= region.base
            && a < region.base + region.bytes) {
            ours = true;
            break;
        }
    }
    if (!ours)
        return false;

    std::uintptr_t page_base =
        a & ~(static_cast<std::uintptr_t>(pageBytes_) - 1);
    ++stats_.misses;
    unprotectPage(page_base); // tw_clear_trap

    // tw_replace: fill an invalid way, else FIFO/Random victim.
    unsigned set = setOf(page_base);
    Entry *base = tlb_ + static_cast<std::size_t>(set) * ways_;
    unsigned victim = ways_;
    for (unsigned w = 0; w < ways_; ++w) {
        if (base[w].pageBase == 0) {
            victim = w;
            break;
        }
    }
    if (victim == ways_) {
        if (cfg_.policy == UtrapPolicy::Fifo) {
            victim = fifoCursor_[set];
            fifoCursor_[set] = (fifoCursor_[set] + 1) % ways_;
        } else {
            lcg_ = lcg_ * 6364136223846793005ull
                   + 1442695040888963407ull;
            victim = static_cast<unsigned>((lcg_ >> 33) % ways_);
        }
        // tw_set_trap on the displaced page.
        protectPage(base[victim].pageBase);
        ++stats_.evictions;
    } else if (cfg_.policy == UtrapPolicy::Fifo && ways_ > 1) {
        // Keep FIFO order aligned with fill order in a filling set.
        fifoCursor_[set] = (victim + 1) % ways_;
    }
    base[victim].pageBase = page_base;
    return true;
}

} // namespace tw
