/**
 * @file
 * The eight-workload suite of the paper (Tables 3 and 4).
 *
 * Each WorkloadSpec reproduces the *structure* the paper publishes
 * for a workload: total instruction count (scaled down by a
 * configurable factor so experiments run in seconds), the fraction
 * of time spent in the kernel / BSD server / X server / user tasks
 * (Table 4), the user task count and its fork behaviour, and
 * per-component loop ladders calibrated so the 4 KB I-cache miss
 * ratios land near Table 6. The real binaries (SPEC92, SPEC SDM,
 * Mach 3.0 servers) are not available; see DESIGN.md for the
 * substitution argument.
 */

#ifndef TW_WORKLOAD_SPEC_HH
#define TW_WORKLOAD_SPEC_HH

#include <string>
#include <vector>

#include "base/types.hh"
#include "workload/loop_nest.hh"

namespace tw
{

/** Workload component a task belongs to (Table 4's columns). */
enum class Component : unsigned
{
    User = 0,
    Kernel,
    Bsd,
    X,
};

constexpr unsigned kNumComponents = 4;

/** Human-readable component name. */
const char *componentName(Component c);

/**
 * Full description of one workload of the suite.
 */
struct WorkloadSpec
{
    std::string name;

    /** Total instructions, all components, after scaling. */
    Counter totalInstr = 0;

    /** Table 4 time fractions (sum to ~1). */
    double fracKernel = 0.0;
    double fracBsd = 0.0;
    double fracX = 0.0;
    double fracUser = 1.0;

    /** User tasks created over the run (Table 4's User Task Count,
     *  scaled for the multi-task workloads; see DESIGN.md). */
    unsigned taskCount = 1;

    /** Maximum user tasks live at once. */
    unsigned concurrency = 1;

    /** User binaries; forked tasks round-robin over them (sdet and
     *  kenbus run several distinct programs). */
    std::vector<StreamParams> binaries;

    /** Data segments, parallel to binaries (same index). */
    std::vector<StreamParams> binaryData;

    /** Kernel text; the first kHandlerBytes are the clock-interrupt
     *  handler region. */
    StreamParams kernelText;

    /** BSD UNIX server text. */
    StreamParams bsdText;

    /** X display server text (empty use for non-graphical loads). */
    StreamParams xText;

    /** Data segments of the system components. */
    StreamParams kernelData;
    StreamParams bsdData;
    StreamParams xData;

    /** Data references (loads+stores) per 1000 instructions; ~350
     *  on a MIPS-like ISA. Zero disables data references. */
    double dataRefsPer1k = 350.0;

    /** Every Nth data reference is a store (MIPS integer code runs
     *  roughly 2 loads per store). */
    unsigned storeEvery = 3;

    /** Syscalls per 1000 user instructions. */
    double syscallsPer1k = 1.0;

    /** P(syscall is serviced by the BSD server / X server). */
    double bsdProb = 0.5;
    double xProb = 0.0;

    /** Total user instructions (budget split across tasks). */
    Counter userInstr() const;

    /** Expected kernel / server instructions per syscall, derived
     *  from the Table 4 fractions. */
    double kernelBurstLen() const;
    double bsdBurstLen() const;
    double xBurstLen() const;
};

/** Bytes of kernel text treated as the clock-interrupt handler. */
constexpr std::uint64_t kHandlerBytes = 1024;

/** Names of the eight workloads, in the paper's (alphabetical
 *  Table 6) order. */
const std::vector<std::string> &suiteNames();

/**
 * Build one workload by name.
 *
 * @param name one of suiteNames().
 * @param scale_div divide the paper's instruction counts by this
 *        (default 100: ~5-18 M instructions per workload).
 */
WorkloadSpec makeWorkload(const std::string &name,
                          unsigned scale_div = 100);

/** Build the whole suite. */
std::vector<WorkloadSpec> makeSuite(unsigned scale_div = 100);

/**
 * Scale divisor taken from the TW_SCALE_DIV environment variable,
 * or @p fallback when unset — used by every bench so CI can run a
 * quick pass.
 */
unsigned envScaleDiv(unsigned fallback = 100);

} // namespace tw

#endif // TW_WORKLOAD_SPEC_HH
