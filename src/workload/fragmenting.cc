#include "workload/fragmenting.hh"

#include <algorithm>

#include "base/logging.hh"

namespace tw
{

FragmentingStream::FragmentingStream(const FragmentingParams &params)
    : params_(params), rng_(params.seed), active_(params.basePages)
{
    TW_ASSERT(params.base % kHostPageBytes == 0,
              "base must be page aligned");
    TW_ASSERT(params.basePages >= 1
                  && params.basePages <= params.maxPages,
              "bad page-set bounds");
    TW_ASSERT(params.refsPerNewPage > 0, "growth interval zero");
}

Addr
FragmentingStream::next()
{
    ++emitted_;
    if (emitted_ % params_.refsPerNewPage == 0)
        active_ = std::min(active_ + 1, params_.maxPages);

    // Pick a page, newest-first geometric: fragmentation keeps old
    // pages alive but most traffic goes to fresh allocations.
    std::uint64_t back = rng_.geometric(params_.recencyBias);
    unsigned page = active_ - 1
                    - static_cast<unsigned>(
                          back % static_cast<std::uint64_t>(active_));
    Addr offset = (rng_.below(kHostPageBytes / kWordBytes))
                  * kWordBytes;
    return params_.base
           + static_cast<Addr>(page) * kHostPageBytes + offset;
}

void
FragmentingStream::reset(std::uint64_t seed)
{
    rng_.reseed(seed);
    active_ = params_.basePages;
    emitted_ = 0;
}

std::unique_ptr<RefStream>
FragmentingStream::clone() const
{
    // True snapshot (see RefStream::clone): state carries over.
    return std::make_unique<FragmentingStream>(*this);
}

} // namespace tw
