/**
 * @file
 * Abstract instruction-reference streams.
 *
 * The paper's workloads are real binaries (SPEC92, SPEC SDM, Mach
 * servers; Table 3). Those binaries and their traces are not
 * available, so each task in the simulated system executes a
 * synthetic RefStream whose locality structure is calibrated to the
 * published per-workload miss ratios (Table 6, Figure 2) and whose
 * instruction counts / OS-time splits follow Table 4. See
 * DESIGN.md, "Reproduction strategy".
 */

#ifndef TW_WORKLOAD_REF_STREAM_HH
#define TW_WORKLOAD_REF_STREAM_HH

#include <cstdint>
#include <memory>

#include "base/types.hh"

namespace tw
{

/**
 * An endless stream of instruction-fetch virtual addresses.
 *
 * Streams are deterministic functions of their seed: the same seed
 * reproduces the same control flow, which is what lets experiments
 * attribute run-to-run variation to OS effects (page allocation,
 * interrupt interleaving) rather than to the workload itself.
 */
class RefStream
{
  public:
    virtual ~RefStream() = default;

    /** Produce the next fetch address. Streams never terminate; the
     *  task's instruction budget bounds execution. */
    virtual Addr next() = 0;

    /** Produce the next @p n addresses into @p out. Semantically
     *  identical to n successive next() calls; streams with internal
     *  run structure override this to emit sequential runs in bulk. */
    virtual void
    nextBatch(Addr *out, unsigned n)
    {
        for (unsigned i = 0; i < n; ++i)
            out[i] = next();
    }

    /** Restart the stream with a (possibly new) control-flow seed. */
    virtual void reset(std::uint64_t seed) = 0;

    /** Deep copy preserving position and RNG state: the copy emits
     *  exactly the sequence the original would have emitted next.
     *  (Used for snapshots — e.g. the interval sampler's boundary
     *  clones; a forking task calls reset() on its copy.) */
    virtual std::unique_ptr<RefStream> clone() const = 0;

    /** First byte of the stream's text region. */
    virtual Addr textBase() const = 0;

    /** Size of the stream's text region in bytes. */
    virtual std::uint64_t textBytes() const = 0;
};

} // namespace tw

#endif // TW_WORKLOAD_REF_STREAM_HH
