#include "workload/spec.hh"

#include <cstdlib>

#include "base/logging.hh"
#include "base/random.hh"

namespace tw
{

const char *
componentName(Component c)
{
    switch (c) {
      case Component::User:
        return "user";
      case Component::Kernel:
        return "kernel";
      case Component::Bsd:
        return "bsd";
      case Component::X:
        return "x";
    }
    return "?";
}

Counter
WorkloadSpec::userInstr() const
{
    return static_cast<Counter>(static_cast<double>(totalInstr)
                                * fracUser);
}

double
WorkloadSpec::kernelBurstLen() const
{
    return (fracKernel / fracUser) * 1000.0 / syscallsPer1k;
}

double
WorkloadSpec::bsdBurstLen() const
{
    if (bsdProb <= 0.0)
        return 0.0;
    return (fracBsd / fracUser) * 1000.0 / (syscallsPer1k * bsdProb);
}

double
WorkloadSpec::xBurstLen() const
{
    if (xProb <= 0.0)
        return 0.0;
    return (fracX / fracUser) * 1000.0 / (syscallsPer1k * xProb);
}

const std::vector<std::string> &
suiteNames()
{
    static const std::vector<std::string> names = {
        "eqntott", "espresso", "jpeg_play", "kenbus",
        "mpeg_play", "ousterhout", "sdet", "xlisp",
    };
    return names;
}

namespace
{

/** Virtual address bases: one distinct range per program image so
 *  virtually-indexed caches never alias across images. Each image's
 *  private data segment sits kDataOffset above its text. */
constexpr Addr kUserBase = 0x00400000;
constexpr Addr kUserStride = 0x00100000; // 1 MB apart per binary
constexpr Addr kBsdBase = 0x01000000;
constexpr Addr kXBase = 0x02000000;
constexpr Addr kKernelBase = 0x80000000;
constexpr Addr kDataOffset = 0x00080000; // 512 KB above the text

StreamParams
makeText(Addr base, std::uint64_t text_bytes, double miss_at_4k,
         double decay, std::uint64_t seed, double excursion_prob = 0.02)
{
    StreamParams p;
    p.base = base;
    p.textBytes = text_bytes;
    p.ladder = ladderForMissTarget(miss_at_4k, text_bytes, decay);
    p.seed = seed;
    p.excursionProb = excursion_prob;
    return p;
}

std::uint64_t
binarySeed(const std::string &workload, const char *component,
           unsigned index)
{
    std::uint64_t s = 0x7ea9'0000;
    for (char c : workload)
        s = mixSeed(s, static_cast<std::uint64_t>(c));
    for (const char *c = component; *c; ++c)
        s = mixSeed(s, static_cast<std::uint64_t>(*c));
    return mixSeed(s, index);
}

/** Raw per-workload numbers: Table 4 plus per-component 4 KB miss
 *  targets derived from Table 6 (misses divided by the component's
 *  own instruction count). */
struct SuiteRow
{
    const char *name;
    double instrMillions; // Table 4 Instr (10^6)
    double fKernel, fBsd, fX, fUser;
    unsigned tasks;        // scaled task count (see DESIGN.md)
    unsigned concurrency;
    unsigned numBinaries;
    std::uint64_t userTextKb;
    double userM4k;    // 0 => custom ladder below
    double userDecay;
    double kernelM4k;
    double serverM4k;  // applied to both BSD and X text
    double syscallsPer1k;
    double bsdProb;
    double xProb;
    double userExcProb; //!< user-stream excursion probability
    std::uint64_t userDataKb; //!< user data segment size
    double userDataM4k;       //!< data-stream 4KB miss target
};

// Calibrated against the measured output of bench/calibrate: the
// miss-target columns are pre-distorted so the *measured* dedicated
// 4 KB miss ratios land on Table 6 (dilution by handler locality,
// excursions and burst restarts shifts them off the analytic value).
const SuiteRow kSuite[] = {
    // name        Minstr  fK     fB     fX     fU     task cc nb  utxt  uM4k     udec  kM4k    sM4k    sys/1k bsdP  xP    uExc
    {"eqntott",    1306,   0.015, 0.012, 0.000, 0.972, 1,   1, 1,  8,    0.000055, 3.0, 0.1220, 0.1730, 0.08,   0.60, 0.00, 0.001, 256,  0.120},
    {"espresso",   534,    0.029, 0.019, 0.000, 0.951, 1,   1, 1,  16,   0.00300,  3.0, 0.1230, 0.2200, 0.125,   0.60, 0.00, 0.005, 96,  0.060},
    {"jpeg_play",  1793,   0.091, 0.094, 0.026, 0.788, 1,   1, 1,  32,   0.00160,  3.0, 0.0475, 0.0373, 0.4,   0.60, 0.25, 0.005, 256,  0.080},
    {"kenbus",     176,    0.489, 0.291, 0.000, 0.220, 60,  8, 4,  24,   0.1830,   2.2, 0.1490, 0.2350, 1.8,   0.65, 0.00, 0.020, 64,  0.100},
    {"mpeg_play",  1423,   0.241, 0.273, 0.040, 0.446, 1,   1, 1,  32,   0.0,      3.0, 0.0514, 0.0588, 0.5,   0.60, 0.30, 0.020, 384,  0.100},
    {"ousterhout", 567,    0.480, 0.314, 0.000, 0.206, 15,  15, 3, 12,   0.00808,  3.0, 0.0773, 0.1017, 1.5,   0.65, 0.00, 0.020, 64,  0.080},
    {"sdet",       823,    0.437, 0.355, 0.000, 0.208, 70,  8, 4,  32,   0.1074,   2.5, 0.0482, 0.0824, 1.5,   0.65, 0.00, 0.020, 96,  0.080},
    {"xlisp",      1412,   0.073, 0.071, 0.000, 0.856, 1,   1, 1,  12,   0.0,      3.0, 0.0198, 0.0594, 0.125,   0.60, 0.00, 0.020, 128,  0.090},
};

/** mpeg_play's user I-stream, hand-calibrated to Figure 2's
 *  miss-ratio column (0.118 at 1K down to ~0 at 128K). */
std::vector<LoopLevel>
mpegUserLadder()
{
    return {
        {256, 2.12},   {1024, 1.0},   {2048, 1.217}, {4096, 1.562},
        {8192, 2.697}, {16384, 1.353}, {32768, 8.5},
    };
}

/** xlisp's user I-stream: ~7.5% misses at 4 KB but "performs much
 *  better in a cache only slightly larger" (Section 4.2). */
std::vector<LoopLevel>
xlispUserLadder()
{
    return {
        {256, 1.34}, {1024, 1.34}, {4096, 1.33}, {8192, 14.9},
    };
}

} // anonymous namespace

WorkloadSpec
makeWorkload(const std::string &name, unsigned scale_div)
{
    TW_ASSERT(scale_div > 0, "scale divisor must be nonzero");
    const SuiteRow *row = nullptr;
    for (const auto &r : kSuite) {
        if (name == r.name) {
            row = &r;
            break;
        }
    }
    if (!row)
        fatal("unknown workload '%s'", name.c_str());

    WorkloadSpec spec;
    spec.name = row->name;
    spec.totalInstr = static_cast<Counter>(
        row->instrMillions * 1.0e6 / static_cast<double>(scale_div));
    spec.fracKernel = row->fKernel;
    spec.fracBsd = row->fBsd;
    spec.fracX = row->fX;
    spec.fracUser = row->fUser;
    spec.taskCount = row->tasks;
    spec.concurrency = row->concurrency;
    spec.syscallsPer1k = row->syscallsPer1k;
    spec.bsdProb = row->bsdProb;
    spec.xProb = row->xProb;

    for (unsigned b = 0; b < row->numBinaries; ++b) {
        Addr base = kUserBase + b * kUserStride;
        // Spread the binaries of multi-program workloads over a
        // range of text sizes (sdet and kenbus mix small shells
        // with large compilers).
        std::uint64_t text = (row->userTextKb + 8ull * b) * 1024;
        std::uint64_t seed = binarySeed(spec.name, "user", b);
        spec.binaryData.push_back(
            makeText(base + kDataOffset, row->userDataKb * 1024,
                     row->userDataM4k, 2.0,
                     binarySeed(spec.name, "userdata", b), 0.01));
        if (row->userM4k > 0.0) {
            spec.binaries.push_back(makeText(base, text, row->userM4k,
                                             row->userDecay, seed,
                                             row->userExcProb));
        } else {
            StreamParams p;
            p.base = base;
            p.seed = seed;
            if (spec.name == "mpeg_play") {
                p.textBytes = 32 * 1024;
                p.ladder = mpegUserLadder();
            } else { // xlisp
                p.textBytes = 12 * 1024;
                p.ladder = xlispUserLadder();
            }
            spec.binaries.push_back(p);
        }
    }

    spec.kernelText = makeText(kKernelBase, 128 * 1024, row->kernelM4k,
                               1.8, binarySeed(spec.name, "kernel", 0));
    spec.bsdText = makeText(kBsdBase, 96 * 1024, row->serverM4k, 1.8,
                            binarySeed(spec.name, "bsd", 0));
    spec.xText = makeText(kXBase, 128 * 1024, row->serverM4k, 1.8,
                          binarySeed(spec.name, "x", 0));
    // System components move a lot of data (buffer copies, bitmaps).
    spec.kernelData =
        makeText(kKernelBase + kDataOffset, 64 * 1024, 0.10, 2.0,
                 binarySeed(spec.name, "kerneldata", 0), 0.01);
    spec.bsdData =
        makeText(kBsdBase + kDataOffset, 64 * 1024, 0.10, 2.0,
                 binarySeed(spec.name, "bsddata", 0), 0.01);
    spec.xData =
        makeText(kXBase + kDataOffset, 128 * 1024, 0.08, 2.0,
                 binarySeed(spec.name, "xdata", 0), 0.01);
    return spec;
}

std::vector<WorkloadSpec>
makeSuite(unsigned scale_div)
{
    std::vector<WorkloadSpec> suite;
    for (const auto &name : suiteNames())
        suite.push_back(makeWorkload(name, scale_div));
    return suite;
}

unsigned
envScaleDiv(unsigned fallback)
{
    const char *env = std::getenv("TW_SCALE_DIV");
    if (!env)
        return fallback;
    long v = std::strtol(env, nullptr, 10);
    if (v <= 0) {
        warn("ignoring bad TW_SCALE_DIV='%s'", env);
        return fallback;
    }
    return static_cast<unsigned>(v);
}

} // namespace tw
