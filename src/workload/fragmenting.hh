/**
 * @file
 * A reference stream whose page working set grows over time —
 * modelling kernel/server memory fragmentation.
 *
 * Section 4.2: "we have observed gradual (but substantial)
 * increases in TLB misses due to kernel and server memory
 * fragmentation in a long-running system." As a long-lived kernel
 * allocates and frees, its live data spreads over ever more pages;
 * the per-reference page set grows even though the byte footprint
 * does not. This stream reproduces that: references pick a page
 * from an active set whose size grows linearly with references
 * emitted, skewed toward recently-added pages (fresh allocations
 * are hot).
 */

#ifndef TW_WORKLOAD_FRAGMENTING_HH
#define TW_WORKLOAD_FRAGMENTING_HH

#include "base/random.hh"
#include "workload/ref_stream.hh"

namespace tw
{

/** Parameters of a FragmentingStream. */
struct FragmentingParams
{
    Addr base = 0x400000;    //!< page aligned
    unsigned basePages = 8;  //!< pages live at time zero
    unsigned maxPages = 512; //!< growth ceiling (sizes the window)
    /** References between working-set growth steps (one page per
     *  step). Smaller = faster fragmentation. */
    std::uint64_t refsPerNewPage = 20000;
    /** Recency skew: P(pick the k-th newest page) ~ geometric with
     *  this parameter; smaller = flatter (more uniform) access. */
    double recencyBias = 0.05;
    std::uint64_t seed = 1;
};

/**
 * Growing-page-set reference stream (see file comment).
 */
class FragmentingStream : public RefStream
{
  public:
    explicit FragmentingStream(const FragmentingParams &params);

    Addr next() override;
    void reset(std::uint64_t seed) override;
    std::unique_ptr<RefStream> clone() const override;
    Addr textBase() const override { return params_.base; }

    std::uint64_t
    textBytes() const override
    {
        return static_cast<std::uint64_t>(params_.maxPages)
               * kHostPageBytes;
    }

    /** Pages currently in the active set. */
    unsigned activePages() const { return active_; }

  private:
    FragmentingParams params_;
    Rng rng_;
    unsigned active_;
    std::uint64_t emitted_ = 0;
};

} // namespace tw

#endif // TW_WORKLOAD_FRAGMENTING_HH
