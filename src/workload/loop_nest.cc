#include "workload/loop_nest.hh"

#include <algorithm>
#include <cmath>

#include "base/bitops.hh"
#include "base/logging.hh"

namespace tw
{

void
StreamParams::validate() const
{
    if (textBytes < 256 || textBytes % kWordBytes != 0)
        fatal("stream: text size %llu unusable",
              static_cast<unsigned long long>(textBytes));
    if (base % kHostPageBytes != 0)
        fatal("stream: text base must be page aligned");
    std::uint64_t prev = 0;
    for (const auto &lvl : ladder) {
        if (lvl.spanBytes <= prev)
            fatal("stream: ladder spans must be strictly ascending");
        if (lvl.spanBytes % kWordBytes != 0)
            fatal("stream: span must be word aligned");
        if (lvl.spanBytes > textBytes)
            fatal("stream: span exceeds text size");
        if (lvl.meanReps < 1.0)
            fatal("stream: mean reps below 1");
        prev = lvl.spanBytes;
    }
}

std::vector<LoopLevel>
ladderForMissTarget(double miss_at_4k, std::uint64_t text_bytes,
                    double decay_per_doubling)
{
    TW_ASSERT(miss_at_4k > 0.0 && miss_at_4k <= 0.25,
              "target 4K miss ratio %f out of (0, 0.25]", miss_at_4k);
    std::vector<LoopLevel> ladder;

    // Product of repeats needed so that, once the cache holds 4 KB,
    // the miss ratio is miss_at_4k (sequential word fetches over
    // 16-byte lines miss at 0.25 with no reuse).
    double p4 = 0.25 / miss_at_4k;

    std::vector<std::uint64_t> small_spans;
    for (std::uint64_t s : {std::uint64_t(256), std::uint64_t(1024),
                            std::uint64_t(4096)}) {
        if (s < text_bytes)
            small_spans.push_back(s);
    }
    if (!small_spans.empty()) {
        double per =
            std::pow(p4, 1.0 / static_cast<double>(small_spans.size()));
        per = std::max(per, 1.0);
        for (std::uint64_t s : small_spans)
            ladder.push_back(LoopLevel{s, per});
    }

    // Above 4 KB, decay misses by decay_per_doubling per size
    // doubling until the whole text fits.
    for (std::uint64_t s = 8192; s < text_bytes; s *= 2)
        ladder.push_back(LoopLevel{s, std::max(1.0, decay_per_doubling)});

    ladder.push_back(LoopLevel{text_bytes, 1.0});
    return ladder;
}

LoopNestStream::LoopNestStream(const StreamParams &params)
    : params_(params), rng_(params.seed)
{
    params_.validate();
    // Ensure a top level spanning the whole text.
    if (params_.ladder.empty()
        || params_.ladder.back().spanBytes < params_.textBytes) {
        params_.ladder.push_back(LoopLevel{params_.textBytes, 1.0});
    }
    restart();
}

double
LoopNestStream::drawReps(std::size_t level)
{
    // floor/frac of each level's mean are precomputed in restart();
    // std::floor is a libm call on baseline x86-64 and this draw
    // sits on the batch-refill path.
    double floor_part = repFloor_[level];
    double frac = repFrac_[level];
    double reps = floor_part + (rng_.chance(frac) ? 1.0 : 0.0);
    return std::max(reps, 1.0);
}

void
LoopNestStream::restart()
{
    const auto &ladder = params_.ladder;
    levels_.assign(ladder.size(), LevelState{});
    repFloor_.resize(ladder.size());
    repFrac_.resize(ladder.size());
    for (std::size_t i = 0; i < ladder.size(); ++i) {
        repFloor_[i] = std::floor(ladder[i].meanReps);
        repFrac_[i] = ladder[i].meanReps - repFloor_[i];
    }
    for (std::size_t i = 0; i < ladder.size(); ++i) {
        levels_[i].chunkBase = params_.base;
        levels_[i].repsLeft = drawReps(i);
    }
    cur_ = params_.base;
    Addr text_end = params_.base + params_.textBytes;
    runEnd_ = std::min(params_.base + ladder[0].spanBytes, text_end);
    excursionLeft_ = 0;
}

void
LoopNestStream::reset(std::uint64_t seed)
{
    rng_.reseed(seed);
    restart();
}

std::unique_ptr<RefStream>
LoopNestStream::clone() const
{
    // True snapshot: position, loop-ladder state and RNG carry
    // over, so the copy continues the sequence exactly where the
    // original stands (the interval sampler replays from these).
    return std::make_unique<LoopNestStream>(*this);
}

void
LoopNestStream::advance()
{
    // Fast path: the innermost chunk has repeats left. Rewind to
    // its base — the run bounds don't move — and make exactly the
    // RNG draws the general walk would (the excursion chance only).
    LevelState &st0 = levels_[0];
    st0.repsLeft -= 1.0;
    if (st0.repsLeft >= 0.5) [[likely]] {
        cur_ = st0.chunkBase;
        maybeExcursion();
        return;
    }
    // Exact undo: repsLeft is always integral, so +1 after -1
    // reproduces the stored value bit for bit.
    st0.repsLeft += 1.0;
    advanceSlow();
}

void
LoopNestStream::advanceSlow()
{
    const auto &ladder = params_.ladder;
    Addr text_end = params_.base + params_.textBytes;

    std::size_t level = 0;
    while (true) {
        LevelState &st = levels_[level];
        st.repsLeft -= 1.0;
        if (st.repsLeft >= 0.5) {
            // Re-sweep the same chunk from its start.
            break;
        }
        // Chunk fully repeated; move to the next sibling chunk
        // within the parent (or wrap at the top level).
        if (level + 1 == ladder.size()) {
            st.chunkBase = params_.base;
            st.repsLeft = drawReps(level);
            break;
        }
        Addr next_base = st.chunkBase + ladder[level].spanBytes;
        LevelState &parent = levels_[level + 1];
        Addr parent_end =
            std::min(parent.chunkBase + ladder[level + 1].spanBytes,
                     text_end);
        if (next_base < parent_end) {
            st.chunkBase = next_base;
            st.repsLeft = drawReps(level);
            break;
        }
        ++level;
    }

    // Reset all inner levels to the start of the (possibly new)
    // level chunk.
    for (std::size_t i = level; i-- > 0;) {
        levels_[i].chunkBase = levels_[i + 1].chunkBase;
        levels_[i].repsLeft = drawReps(i);
    }
    cur_ = levels_[0].chunkBase;
    runEnd_ = std::min(cur_ + ladder[0].spanBytes, text_end);

    maybeExcursion();
}

void
LoopNestStream::maybeExcursion()
{
    // Occasionally detour through a random spot in the text: models
    // error paths, PLT stubs and data-dependent branches, and gives
    // direct-mapped caches realistic conflict texture.
    if (params_.excursionProb > 0.0
        && rng_.chance(params_.excursionProb)) {
        Addr text_end = params_.base + params_.textBytes;
        std::uint64_t words = params_.textBytes / kWordBytes;
        Addr target =
            params_.base + rng_.below(words) * kWordBytes;
        resumeCur_ = cur_;
        resumeEnd_ = runEnd_;
        excursionLeft_ = 1;
        cur_ = target;
        runEnd_ = std::min(
            target + static_cast<Addr>(params_.excursionWords)
                         * kWordBytes,
            text_end);
    }
}

Addr
LoopNestStream::next()
{
    Addr a = cur_;
    cur_ += kWordBytes;
    if (cur_ >= runEnd_) {
        if (excursionLeft_) {
            excursionLeft_ = 0;
            cur_ = resumeCur_;
            runEnd_ = resumeEnd_;
        } else {
            advance();
        }
    }
    return a;
}

void
LoopNestStream::nextBatch(Addr *out, unsigned n)
{
    // Same state machine as next(), but each sequential run is
    // emitted as one tight loop. Invariant at loop entry: cur_ is
    // inside the current run (next() and advance() both leave it
    // there), so left >= 1 and progress is guaranteed.
    unsigned i = 0;
    while (i < n) {
        std::uint64_t left = (runEnd_ - cur_) / kWordBytes;
        unsigned take = static_cast<unsigned>(
            std::min<std::uint64_t>(left, n - i));
        Addr a = cur_;
        Addr *o = out + i;
        unsigned k = 0;
#if defined(__GNUC__)
        // Two 2-lane vector stores per iteration; the -O2 cost
        // model refuses to vectorize the scalar form, and the fill
        // is a measurable slice of the fast-path profile.
        typedef Addr V2 __attribute__((vector_size(16)));
        V2 v = {a, a + kWordBytes};
        const V2 step2 = {2 * kWordBytes, 2 * kWordBytes};
        for (; k + 4 <= take; k += 4) {
            V2 v1 = v + step2;
            __builtin_memcpy(o + k, &v, 16);
            __builtin_memcpy(o + k + 2, &v1, 16);
            v = v1 + step2;
        }
#endif
        for (; k < take; ++k)
            o[k] = a + static_cast<Addr>(k) * kWordBytes;
        i += take;
        cur_ = a + static_cast<Addr>(take) * kWordBytes;
        if (cur_ >= runEnd_) {
            if (excursionLeft_) {
                excursionLeft_ = 0;
                cur_ = resumeCur_;
                runEnd_ = resumeEnd_;
            } else {
                advance();
            }
        }
    }
}

} // namespace tw
