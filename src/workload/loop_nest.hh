/**
 * @file
 * The loop-nest synthetic instruction stream.
 *
 * The generator models program text as a hierarchy of loops: the
 * innermost level sweeps a small span of code word by word; each
 * enclosing level repeats its child sweeps over a larger span. For
 * a fully-associative LRU cache of size C with line size L, the
 * resulting miss ratio is approximately
 *
 *      m(C) = (wordBytes / L) / prod{ n_i : span_i <= C }
 *
 * which makes the miss-ratio-versus-cache-size curve directly
 * programmable: each ladder level (span_i, n_i) divides the miss
 * ratio by n_i once the cache can hold span_i. Fractional mean
 * repeat counts are realized probabilistically. Occasional short
 * "excursions" (random jumps emulating error paths, PLT stubs and
 * data-dependent branches) add the conflict-miss texture a
 * direct-mapped cache sees in real code.
 */

#ifndef TW_WORKLOAD_LOOP_NEST_HH
#define TW_WORKLOAD_LOOP_NEST_HH

#include <vector>

#include "base/random.hh"
#include "workload/ref_stream.hh"

namespace tw
{

/** One level of the loop ladder. */
struct LoopLevel
{
    std::uint64_t spanBytes;  //!< code span this level sweeps
    double meanReps;          //!< mean times the span is repeated
};

/** Parameters of a LoopNestStream ("a binary", loosely). */
struct StreamParams
{
    Addr base = 0x400000;               //!< text start address
    std::uint64_t textBytes = 64 * 1024; //!< total text size
    /** Ladder, innermost first; spans strictly ascending. A final
     *  level spanning textBytes is implied if absent. */
    std::vector<LoopLevel> ladder;
    /** Probability of an excursion at each inner-chunk boundary. */
    double excursionProb = 0.02;
    /** Length of one excursion in words. */
    unsigned excursionWords = 8;
    /** Control-flow seed; fixed per binary, NOT per trial, so the
     *  workload itself is identical across trials. */
    std::uint64_t seed = 1;

    /** Abort (fatal) if the ladder is malformed. */
    void validate() const;
};

/**
 * Build a ladder that hits a target miss ratio at a 4 KB cache with
 * 16-byte lines, distributing the required hit amplification
 * geometrically over the levels up to 4 KB and decaying misses by
 * @p decayPerDoubling for each doubling above 4 KB up to textBytes.
 * Used to calibrate workload components against Table 6.
 */
std::vector<LoopLevel> ladderForMissTarget(double miss_at_4k,
                                           std::uint64_t text_bytes,
                                           double decay_per_doubling = 3.0);

/**
 * Nested-loop instruction stream (see file comment).
 */
class LoopNestStream : public RefStream
{
  public:
    explicit LoopNestStream(const StreamParams &params);

    Addr next() override;
    void nextBatch(Addr *out, unsigned n) override;
    void reset(std::uint64_t seed) override;
    std::unique_ptr<RefStream> clone() const override;
    Addr textBase() const override { return params_.base; }
    std::uint64_t textBytes() const override { return params_.textBytes; }

    const StreamParams &params() const { return params_; }

  private:
    struct LevelState
    {
        Addr chunkBase = 0;   //!< start of current child chunk
        double repsLeft = 0;  //!< repetitions left for current chunk
    };

    void restart();
    void advance();
    void advanceSlow();
    void maybeExcursion();
    double drawReps(std::size_t level);

    StreamParams params_;
    Rng rng_;
    /** Precomputed floor/frac of each ladder level's meanReps. */
    std::vector<double> repFloor_;
    std::vector<double> repFrac_;

    // Hot-path state: the current sequential run.
    Addr cur_ = 0;      //!< next address to emit
    Addr runEnd_ = 0;   //!< end of current sequential run

    // Excursion state (nonzero while detoured).
    unsigned excursionLeft_ = 0;
    Addr resumeCur_ = 0;
    Addr resumeEnd_ = 0;

    std::vector<LevelState> levels_; //!< index 0 = innermost
};

} // namespace tw

#endif // TW_WORKLOAD_LOOP_NEST_HH
