#include "mem/cache.hh"

#include <algorithm>

#include "base/arena.hh"
#include "base/bitops.hh"
#include "base/logging.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"

namespace tw
{

const char *
replPolicyName(ReplPolicy p)
{
    switch (p) {
      case ReplPolicy::LRU:
        return "LRU";
      case ReplPolicy::FIFO:
        return "FIFO";
      case ReplPolicy::Random:
        return "Random";
    }
    return "?";
}

const char *
indexingName(Indexing i)
{
    return i == Indexing::Virtual ? "virtual" : "physical";
}

void
CacheConfig::validate() const
{
    if (!isPowerOf2(sizeBytes) || !isPowerOf2(lineBytes))
        fatal("cache '%s': size (%llu) and line (%u) must be powers of 2",
              name.c_str(), static_cast<unsigned long long>(sizeBytes),
              lineBytes);
    if (lineBytes > sizeBytes)
        fatal("cache '%s': line larger than cache", name.c_str());
    if (assoc == 0 || numLines() % assoc != 0)
        fatal("cache '%s': associativity %u does not divide %llu lines",
              name.c_str(), assoc,
              static_cast<unsigned long long>(numLines()));
    if (!isPowerOf2(numSets()))
        fatal("cache '%s': set count must be a power of 2",
              name.c_str());
}

CacheConfig
CacheConfig::icache(std::uint64_t size_bytes, std::uint32_t line_bytes,
                    std::uint32_t assoc, Indexing idx)
{
    CacheConfig c;
    c.name = "icache";
    c.sizeBytes = size_bytes;
    c.lineBytes = line_bytes;
    c.assoc = assoc;
    c.indexing = idx;
    c.tagIncludesTask = (idx == Indexing::Virtual);
    c.policy = assoc > 1 ? ReplPolicy::FIFO : ReplPolicy::LRU;
    c.validate();
    return c;
}

CacheConfig
CacheConfig::tlb(std::uint32_t entries, std::uint32_t assoc,
                 std::uint32_t page_bytes)
{
    // Guard before the assoc fallback below: entries == 0 would make
    // the fully-associative default 0 ways and validate() would only
    // report a confusing geometry error.
    if (entries == 0)
        fatal("tlb: entry count must be at least 1");
    CacheConfig c;
    c.name = "tlb";
    c.sizeBytes = static_cast<std::uint64_t>(entries) * page_bytes;
    c.lineBytes = page_bytes;
    c.assoc = assoc == 0 ? entries : assoc;
    c.indexing = Indexing::Virtual;
    c.tagIncludesTask = true;
    c.policy = ReplPolicy::FIFO;
    c.validate();
    return c;
}

Cache::Cache(const CacheConfig &config)
    : cfg_(config), lines_(arenaResource()), setOcc_(arenaResource()),
      rng_(config.seed)
{
    cfg_.validate();
    lineShift_ = floorLog2(cfg_.lineBytes);
    setMask_ = cfg_.numSets() - 1;
    tidMask_ = cfg_.indexing == Indexing::Virtual && cfg_.tagIncludesTask
                   ? ~std::uint32_t{0}
                   : std::uint32_t{0};
    lines_.resize(cfg_.numLines());
    setOcc_.assign(cfg_.numSets(), 0);
}

std::uint64_t
Cache::setIndexOf(const LineRef &ref) const
{
    Addr line = cfg_.indexing == Indexing::Virtual ? ref.vaLine
                                                   : ref.paLine;
    return line & setMask_;
}

Addr
Cache::tagLineOf(const LineRef &ref) const
{
    return cfg_.indexing == Indexing::Virtual ? ref.vaLine : ref.paLine;
}

Cache::Line *
Cache::setBase(std::uint64_t set_index)
{
    return lines_.data() + set_index * cfg_.assoc;
}

const Cache::Line *
Cache::setBase(std::uint64_t set_index) const
{
    return lines_.data() + set_index * cfg_.assoc;
}

unsigned
Cache::victimWay(std::uint64_t set_index)
{
    const Line *set = setBase(set_index);
    for (unsigned w = 0; w < cfg_.assoc; ++w) {
        if (!set[w].valid)
            return w;
    }
    switch (cfg_.policy) {
      case ReplPolicy::Random:
        return static_cast<unsigned>(rng_.below(cfg_.assoc));
      case ReplPolicy::LRU:
      case ReplPolicy::FIFO: {
        // For LRU the stamp is refreshed on hits; for FIFO it is the
        // insertion time. Either way the victim is the oldest stamp.
        unsigned victim = 0;
        for (unsigned w = 1; w < cfg_.assoc; ++w) {
            if (set[w].stamp < set[victim].stamp)
                victim = w;
        }
        return victim;
      }
    }
    return 0;
}

AccessResult
Cache::access(const LineRef &ref, bool is_store)
{
    std::uint64_t set_index = setIndexOf(ref);
    Addr tag = tagLineOf(ref);
    Line *set = setBase(set_index);

    // tidMask_ folds the tag-includes-task configuration test into a
    // branch-free compare (mask is 0 when tids are irrelevant).
    for (unsigned w = 0; w < cfg_.assoc; ++w) {
        Line &line = set[w];
        if (line.valid && line.tagLine == tag
            && (static_cast<std::uint32_t>(line.tid ^ ref.tid)
                & tidMask_) == 0) {
            if (cfg_.policy == ReplPolicy::LRU)
                line.stamp = ++stampCounter_;
            line.dirty |= is_store;
            return AccessResult{true, std::nullopt};
        }
    }

    AccessResult res;
    res.hit = false;
    unsigned w = victimWay(set_index);
    Line &line = set[w];
    if (line.valid) {
        res.displaced = LineInfo{line.tagLine, line.paLine, line.tid,
                                 line.dirty};
        if (line.dirty)
            ++writebacks_;
    } else {
        ++setOcc_[set_index];
    }
    line.valid = true;
    line.dirty = is_store;
    line.tagLine = tag;
    line.paLine = ref.paLine;
    line.tid = ref.tid;
    line.stamp = ++stampCounter_;
    return res;
}

std::optional<LineInfo>
Cache::insert(const LineRef &ref, bool is_store)
{
    std::uint64_t set_index = setIndexOf(ref);
    unsigned w = victimWay(set_index);
    Line &line = setBase(set_index)[w];
    std::optional<LineInfo> displaced;
    if (line.valid) {
        displaced = LineInfo{line.tagLine, line.paLine, line.tid,
                             line.dirty};
        if (line.dirty)
            ++writebacks_;
    } else {
        ++setOcc_[set_index];
    }
    line.valid = true;
    line.dirty = is_store;
    line.tagLine = tagLineOf(ref);
    line.paLine = ref.paLine;
    line.tid = ref.tid;
    line.stamp = ++stampCounter_;
    return displaced;
}

bool
Cache::contains(const LineRef &ref) const
{
    std::uint64_t set_index = setIndexOf(ref);
    Addr tag = tagLineOf(ref);
    const Line *set = setBase(set_index);
    for (unsigned w = 0; w < cfg_.assoc; ++w) {
        const Line &line = set[w];
        if (line.valid && line.tagLine == tag
            && (static_cast<std::uint32_t>(line.tid ^ ref.tid)
                & tidMask_) == 0) {
            return true;
        }
    }
    return false;
}

void
Cache::invalidate(Line &line, std::uint64_t set_index)
{
    line.valid = false;
    --setOcc_[set_index];
}

template <typename Pred>
unsigned
Cache::flushSetRange(std::uint64_t first_set, std::uint64_t span,
                     Pred &&pred)
{
    unsigned flushed = 0;
    for (std::uint64_t s = first_set; s < first_set + span; ++s) {
        if (setOcc_[s] == 0)
            continue;
        Line *set = setBase(s);
        for (unsigned w = 0; w < cfg_.assoc; ++w) {
            if (set[w].valid && pred(set[w])) {
                invalidate(set[w], s);
                ++flushed;
            }
        }
    }
    return flushed;
}

template <typename Pred>
unsigned
Cache::flushWhere(Pred &&pred)
{
    return flushSetRange(0, cfg_.numSets(), std::forward<Pred>(pred));
}

Cache::~Cache()
{
    static obs::Counter fast =
        obs::registry().counter("engine.flush.ranged");
    static obs::Counter slow =
        obs::registry().counter("engine.flush.scan");
    fast.add(flushFast_);
    slow.add(flushSlow_);
}

unsigned
Cache::flushPhysPage(Addr pfn, std::uint32_t page_bytes)
{
    obs::ScopedSpan flushSpan("flush", "mem");
    Addr lines_per_page = page_bytes >> lineShift_;
    if (lines_per_page == 0)
        return 0;
    Addr first_line = pfn * lines_per_page;
    Addr last_line = first_line + lines_per_page;
    auto in_page = [=](const Line &l) {
        return l.paLine >= first_line && l.paLine < last_line;
    };
    if (cfg_.indexing == Indexing::Physical) {
        // Physically indexed: set = paLine & setMask_. first_line is
        // page-aligned (a multiple of the power-of-two line count),
        // so the page's lines occupy one aligned contiguous set
        // range — the whole cache when a page spans more sets than
        // exist. No wrap is possible.
        std::uint64_t span =
            std::min<std::uint64_t>(lines_per_page, cfg_.numSets());
        ++flushFast_;
        return flushSetRange(first_line & setMask_, span, in_page);
    }
    // Virtually indexed: the page's contents may sit in any set
    // (placement depends on the mapping), so scan everything but
    // skip empty sets.
    ++flushSlow_;
    return flushWhere(in_page);
}

unsigned
Cache::flushPhysLine(Addr pa_line)
{
    auto match = [=](const Line &l) { return l.paLine == pa_line; };
    if (cfg_.indexing == Indexing::Physical) {
        ++flushFast_;
        return flushSetRange(pa_line & setMask_, 1, match);
    }
    ++flushSlow_;
    return flushWhere(match);
}

unsigned
Cache::flushVirtPage(TaskId tid, Addr vpn, std::uint32_t page_bytes)
{
    obs::ScopedSpan flushSpan("flush", "mem");
    TW_ASSERT(cfg_.indexing == Indexing::Virtual,
              "virtual flush on a physically-indexed cache");
    ++flushFast_;
    Addr lines_per_page = page_bytes >> lineShift_;
    if (lines_per_page == 0)
        return 0;
    Addr first_line = vpn * lines_per_page;
    Addr last_line = first_line + lines_per_page;
    // Virtual index + virtual tag: same aligned contiguous set range
    // argument as the physical case above.
    std::uint64_t span =
        std::min<std::uint64_t>(lines_per_page, cfg_.numSets());
    return flushSetRange(first_line & setMask_, span,
                         [=](const Line &l) {
                             return l.tid == tid
                                    && l.tagLine >= first_line
                                    && l.tagLine < last_line;
                         });
}

void
Cache::flushAll()
{
    for (auto &line : lines_)
        line.valid = false;
    std::fill(setOcc_.begin(), setOcc_.end(), 0);
}

std::uint64_t
Cache::validCount() const
{
    std::uint64_t n = 0;
    for (auto occ : setOcc_)
        n += occ;
    return n;
}

std::vector<LineInfo>
Cache::validLines() const
{
    std::vector<LineInfo> out;
    for (const auto &line : lines_) {
        if (line.valid)
            out.push_back(LineInfo{line.tagLine, line.paLine, line.tid});
    }
    return out;
}

} // namespace tw
