/**
 * @file
 * Kessler's probabilistic model of page-placement cache conflicts.
 *
 * Section 4.2 explains the Table 9 variance shape with [Kessler91]:
 * "with random page allocation, the probability of cache conflicts
 * peaks when the size of the cache roughly equals the address space
 * size of the workload, and decreases for larger and smaller
 * caches." This module provides the analytic expectation and a
 * Monte-Carlo estimator of the placement-to-placement variability,
 * which bench_kessler compares against measured Table 9 deviations.
 */

#ifndef TW_MEM_KESSLER_HH
#define TW_MEM_KESSLER_HH

#include <cstdint>

#include "base/stats.hh"

namespace tw
{

/**
 * Analytic expectation: placing @p pages pages uniformly at random
 * into @p colors cache colors (cache size / page size), the
 * expected number of pages that share a color with at least one
 * other page — the pages able to conflict-miss.
 */
double kesslerExpectedConflictPages(unsigned pages, unsigned colors);

/** Result of the Monte-Carlo placement study. */
struct KesslerEstimate
{
    double meanConflictPages = 0.0;
    double sdConflictPages = 0.0;
    /** Relative variability (sd / pages). */
    double relSd = 0.0;
};

/**
 * Monte-Carlo estimator: repeat random placements and measure the
 * spread of the conflict-page count — the model-level analogue of
 * running multiple Tapeworm trials with different page
 * allocations.
 */
KesslerEstimate kesslerMonteCarlo(unsigned pages, unsigned colors,
                                  unsigned trials,
                                  std::uint64_t seed = 1);

} // namespace tw

#endif // TW_MEM_KESSLER_HH
