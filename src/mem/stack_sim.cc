#include "mem/stack_sim.hh"

#include "base/bitops.hh"
#include "base/logging.hh"

namespace tw
{

StackSim::StackSim(std::uint32_t line_bytes)
    : lineBytes_(line_bytes)
{
    TW_ASSERT(isPowerOf2(line_bytes), "line size must be a power of 2");
    lineShift_ = floorLog2(line_bytes);
}

void
StackSim::access(Addr addr)
{
    ++refs_;
    Addr line = addr >> lineShift_;

    auto it = index_.find(line);
    if (it == index_.end()) {
        // Cold miss: push a fresh node on top of the stack.
        ++cold_;
        std::int32_t id = static_cast<std::int32_t>(nodes_.size());
        nodes_.push_back(Node{line, -1, head_});
        if (head_ >= 0)
            nodes_[static_cast<std::size_t>(head_)].prev = id;
        head_ = id;
        index_.emplace(line, id);
        return;
    }

    std::int32_t id = it->second;
    // Count the stack distance by walking from the top. The walk is
    // proportional to the reuse distance, which is short for
    // cache-friendly streams; this keeps the common case fast
    // without an order-statistics tree.
    std::uint64_t depth = 0;
    for (std::int32_t cur = head_; cur != id;
         cur = nodes_[static_cast<std::size_t>(cur)].next) {
        ++depth;
    }
    if (hist_.size() <= depth)
        hist_.resize(depth + 1, 0);
    ++hist_[depth];

    if (id == head_)
        return;

    // Unlink and move to front.
    Node &node = nodes_[static_cast<std::size_t>(id)];
    if (node.prev >= 0)
        nodes_[static_cast<std::size_t>(node.prev)].next = node.next;
    if (node.next >= 0)
        nodes_[static_cast<std::size_t>(node.next)].prev = node.prev;
    node.prev = -1;
    node.next = head_;
    nodes_[static_cast<std::size_t>(head_)].prev = id;
    head_ = id;
}

Counter
StackSim::missesForSize(std::uint64_t size_bytes) const
{
    // A reference with stack distance d (0 = top of stack) hits in
    // any LRU cache holding more than d lines.
    std::uint64_t lines = size_bytes >> lineShift_;
    Counter misses = cold_;
    for (std::uint64_t d = lines; d < hist_.size(); ++d)
        misses += hist_[d];
    return misses;
}

} // namespace tw
