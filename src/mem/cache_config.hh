/**
 * @file
 * Configuration of a simulated cache or TLB.
 *
 * tw_replace() in the paper is "implemented entirely in software", so
 * simulated configurations are unconstrained by the host: any size,
 * line size, associativity, virtual or physical indexing, and
 * task-id tagging (Section 3.2). This struct captures those knobs
 * for both the trap-driven simulator (core/Tapeworm) and the
 * trace-driven baseline (trace/Cache2000).
 */

#ifndef TW_MEM_CACHE_CONFIG_HH
#define TW_MEM_CACHE_CONFIG_HH

#include <cstdint>
#include <string>

#include "base/types.hh"

namespace tw
{

/** Whether set index (and tag) are formed from virtual or physical
 *  line addresses. */
enum class Indexing { Virtual, Physical };

/**
 * Replacement policy for set-associative configurations.
 *
 * Note the fundamental trap-driven restriction: a trap-driven
 * simulator never observes hits, so recency-based policies (true
 * LRU) cannot be simulated by Tapeworm; FIFO and Random can, and
 * direct-mapped caches need no policy at all. LRU is provided for
 * the trace-driven baseline and the stack simulator.
 */
enum class ReplPolicy { LRU, FIFO, Random };

/** Human-readable name of a replacement policy. */
const char *replPolicyName(ReplPolicy p);

/** Human-readable name of an indexing mode. */
const char *indexingName(Indexing i);

/**
 * Geometry and policy of one simulated cache (or TLB, where a "line"
 * is a page and associativity may equal the entry count).
 */
struct CacheConfig
{
    std::string name = "cache";

    /** Total capacity in bytes. */
    std::uint64_t sizeBytes = 4096;

    /** Line size in bytes; for TLBs, the page size. */
    std::uint32_t lineBytes = 16;

    /** Ways per set; sizeBytes/lineBytes for fully associative. */
    std::uint32_t assoc = 1;

    Indexing indexing = Indexing::Physical;

    /**
     * Include the owning task id in the tag (a virtually-indexed
     * cache or TLB with address-space identifiers). Ignored for
     * physical indexing, where the physical address disambiguates.
     */
    bool tagIncludesTask = false;

    ReplPolicy policy = ReplPolicy::FIFO;

    /** Seed for the Random policy (per-trial reseeding allowed). */
    std::uint64_t seed = 1;

    /** Total number of lines. */
    std::uint64_t numLines() const { return sizeBytes / lineBytes; }

    /** Number of sets. */
    std::uint64_t numSets() const { return numLines() / assoc; }

    /** Abort (fatal) if the geometry is not usable. */
    void validate() const;

    /** Convenience: a direct-mapped I-cache like the paper's
     *  experiments (4-word = 16-byte lines). */
    static CacheConfig icache(std::uint64_t size_bytes,
                              std::uint32_t line_bytes = 16,
                              std::uint32_t assoc = 1,
                              Indexing idx = Indexing::Physical);

    /** Convenience: a TLB with @p entries entries over @p page_bytes
     *  pages; @p assoc 0 means fully associative. */
    static CacheConfig tlb(std::uint32_t entries,
                           std::uint32_t assoc = 0,
                           std::uint32_t page_bytes = kHostPageBytes);
};

} // namespace tw

#endif // TW_MEM_CACHE_CONFIG_HH
