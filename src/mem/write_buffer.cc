#include "mem/write_buffer.hh"

#include <algorithm>

namespace tw
{

void
WriteBuffer::drain(Cycles now)
{
    // Retirement is serialized: one entry per retireCycles, back to
    // back, starting when the previous retirement finished (or when
    // the entry arrived, whichever is later).
    while (!queue_.empty() && queue_.front().readyAt <= now) {
        lastRetire_ = queue_.front().readyAt;
        queue_.pop_front();
        ++stats_.retired;
    }
}

Cycles
WriteBuffer::store(Addr line_addr, Cycles now)
{
    drain(now);
    ++stats_.stores;

    if (cfg_.coalesce) {
        for (auto &entry : queue_) {
            if (entry.lineAddr == line_addr) {
                ++stats_.coalesced;
                return 0;
            }
        }
    }

    Cycles stall = 0;
    if (queue_.size() >= cfg_.depth) {
        // Stall until the head retires.
        Cycles ready = queue_.front().readyAt;
        stall = ready > now ? ready - now : 0;
        ++stats_.fullStalls;
        stats_.stallCycles += stall;
        drain(now + stall);
        now += stall;
    }

    Cycles start = std::max(now, lastRetire_);
    if (!queue_.empty())
        start = std::max(start, queue_.back().readyAt);
    queue_.push_back(Entry{line_addr, start + cfg_.retireCycles});
    return stall;
}

bool
WriteBuffer::loadForward(Addr line_addr, Cycles now)
{
    drain(now);
    for (const auto &entry : queue_) {
        if (entry.lineAddr == line_addr) {
            ++stats_.loadForwards;
            return true;
        }
    }
    return false;
}

unsigned
WriteBuffer::occupancy(Cycles now)
{
    drain(now);
    return static_cast<unsigned>(queue_.size());
}

} // namespace tw
