#include "mem/set_sample.hh"

#include <algorithm>
#include <numeric>

#include "base/logging.hh"
#include "base/random.hh"

namespace tw
{

std::vector<bool>
chooseSampledSets(std::uint64_t num_sets, unsigned num, unsigned denom,
                  std::uint64_t seed)
{
    TW_ASSERT(num >= 1 && num <= denom, "bad sample fraction %u/%u",
              num, denom);
    std::uint64_t want = std::max<std::uint64_t>(
        num_sets * num / denom, 1);

    std::vector<std::uint64_t> all(num_sets);
    std::iota(all.begin(), all.end(), 0);
    Rng rng(mixSeed(seed, 0x5a3b1e));
    // Partial Fisher-Yates: the first `want` slots become the
    // sample.
    for (std::uint64_t i = 0; i < want; ++i) {
        std::uint64_t j = i + rng.below(num_sets - i);
        std::swap(all[i], all[j]);
    }

    std::vector<bool> sampled(num_sets, false);
    for (std::uint64_t i = 0; i < want; ++i)
        sampled[all[i]] = true;
    return sampled;
}

std::vector<bool>
chooseConstantBitSets(std::uint64_t num_sets, unsigned denom,
                      unsigned congruence)
{
    TW_ASSERT(denom >= 1 && (denom & (denom - 1)) == 0,
              "constant-bits sampling needs a power-of-two "
              "denominator, got %u", denom);
    TW_ASSERT(num_sets % denom == 0,
              "denominator %u does not divide %llu sets", denom,
              static_cast<unsigned long long>(num_sets));
    congruence %= denom;
    std::vector<bool> sampled(num_sets, false);
    for (std::uint64_t set = congruence; set < num_sets; set += denom)
        sampled[set] = true;
    return sampled;
}

} // namespace tw
