#include "mem/kessler.hh"

#include <cmath>
#include <vector>

#include "base/logging.hh"
#include "base/random.hh"

namespace tw
{

double
kesslerExpectedConflictPages(unsigned pages, unsigned colors)
{
    TW_ASSERT(colors > 0, "no cache colors");
    if (colors == 1)
        return pages > 1 ? static_cast<double>(pages) : 0.0;
    // P(a given page is alone in its color) = (1 - 1/C)^(W-1).
    double p_alone = std::pow(1.0 - 1.0 / static_cast<double>(colors),
                              static_cast<double>(pages) - 1.0);
    return static_cast<double>(pages) * (1.0 - p_alone);
}

KesslerEstimate
kesslerMonteCarlo(unsigned pages, unsigned colors, unsigned trials,
                  std::uint64_t seed)
{
    TW_ASSERT(colors > 0 && trials > 0, "bad Monte-Carlo parameters");
    Rng rng(seed);
    RunningStat stat;
    std::vector<unsigned> occupancy(colors);

    for (unsigned t = 0; t < trials; ++t) {
        std::fill(occupancy.begin(), occupancy.end(), 0);
        for (unsigned p = 0; p < pages; ++p)
            ++occupancy[rng.below(colors)];
        unsigned conflicting = 0;
        for (unsigned count : occupancy) {
            if (count > 1)
                conflicting += count;
        }
        stat.push(static_cast<double>(conflicting));
    }

    KesslerEstimate est;
    est.meanConflictPages = stat.mean();
    est.sdConflictPages = stat.stddev();
    est.relSd = pages ? stat.stddev() / static_cast<double>(pages)
                      : 0.0;
    return est;
}

} // namespace tw
