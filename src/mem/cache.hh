/**
 * @file
 * The software model of a simulated cache / TLB.
 *
 * Both simulation styles of the paper use this structure, but in
 * characteristically different ways:
 *
 *  - the trace-driven simulator (trace/Cache2000) calls access() for
 *    EVERY address, paying a search on hits and misses alike
 *    (Figure 1, left);
 *  - the trap-driven simulator (core/Tapeworm) calls insert() only
 *    when a trap fires, i.e. only on misses — the host hardware has
 *    already filtered the hits (Figure 1, right). insert() is the
 *    tw_replace() primitive of Table 1.
 *
 * Lines remember the physical line address of their contents so a
 * displaced entry can have its memory trap re-set regardless of
 * whether the cache is virtually or physically indexed.
 */

#ifndef TW_MEM_CACHE_HH
#define TW_MEM_CACHE_HH

#include <cstdint>
#include <memory_resource>
#include <optional>
#include <vector>

#include "base/random.hh"
#include "base/types.hh"
#include "mem/cache_config.hh"

namespace tw
{

/**
 * One memory line presented to the cache: its virtual and physical
 * line numbers (byte address divided by line size) plus the task
 * that referenced it.
 */
struct LineRef
{
    Addr vaLine = 0;
    Addr paLine = 0;
    TaskId tid = kInvalidTid;
};

/** Contents of a (displaced or probed) cache line. */
struct LineInfo
{
    Addr tagLine = 0;   //!< line number used for tagging (va or pa)
    Addr paLine = 0;    //!< physical line number of the contents
    TaskId tid = kInvalidTid;
    bool dirty = false; //!< needed a write-back when displaced
};

/** Result of a trace-driven access(). */
struct AccessResult
{
    bool hit = false;
    /** Entry displaced by the fill, if the access missed and the
     *  victim way held valid data. */
    std::optional<LineInfo> displaced;
};

/**
 * Set-associative cache model with LRU / FIFO / Random replacement.
 */
class Cache
{
  public:
    explicit Cache(const CacheConfig &config);
    /** Folds the flush-path tallies into the obs registry. */
    ~Cache();

    const CacheConfig &config() const { return cfg_; }

    /** Set index a given reference maps to. */
    std::uint64_t setIndexOf(const LineRef &ref) const;

    /** Line number (va or pa according to indexing) used as tag. */
    Addr tagLineOf(const LineRef &ref) const;

    /**
     * Trace-driven access: search; on hit update recency; on miss
     * fill, evicting a victim. This is the per-address work a
     * trace-driven simulator cannot avoid.
     *
     * @param is_store mark the line dirty (write-back accounting).
     */
    AccessResult access(const LineRef &ref, bool is_store = false);

    /**
     * Trap-driven insert (the tw_replace() primitive): the caller
     * already knows this is a miss, so no search for a hit is
     * performed; the line is filled and the displaced entry, if any,
     * is returned so the caller can set a trap on it.
     *
     * Note the inherent trap-driven limitation: store HITS are
     * invisible, so dirty bits set here (via @p is_store on the
     * fill) undercount relative to a trace-driven simulation.
     */
    std::optional<LineInfo> insert(const LineRef &ref,
                                   bool is_store = false);

    /** Write-backs of dirty lines displaced so far. */
    Counter writebacks() const { return writebacks_; }

    /** Non-mutating presence test. */
    bool contains(const LineRef &ref) const;

    /**
     * Invalidate every line whose *contents* lie in the physical
     * page @p pfn (page frame number over @p page_bytes pages).
     * Mirrors the flush performed by tw_remove_page(). Returns the
     * number of lines invalidated.
     *
     * Cost: for a physically-indexed cache the page maps to one
     * contiguous power-of-two set range, so only those sets are
     * scanned; a virtually-indexed cache is scanned whole, skipping
     * sets with no valid lines.
     */
    unsigned flushPhysPage(Addr pfn, std::uint32_t page_bytes);

    /** Invalidate every line holding physical line @p pa_line
     *  (back-invalidation in inclusive hierarchies). Returns the
     *  number invalidated. Scans one set when physically indexed. */
    unsigned flushPhysLine(Addr pa_line);

    /**
     * Invalidate every line tagged by task @p tid whose virtual line
     * falls in virtual page @p vpn (for virtually-indexed removal).
     * Returns the number of lines invalidated. Scans only the set
     * range the page maps to.
     */
    unsigned flushVirtPage(TaskId tid, Addr vpn, std::uint32_t page_bytes);

    /** Invalidate everything. */
    void flushAll();

    /** Number of currently valid lines. */
    std::uint64_t validCount() const;

    /** Enumerate valid lines (testing / diagnostics). */
    std::vector<LineInfo> validLines() const;

    /** Reseed the Random replacement policy (per-trial variation). */
    void reseed(std::uint64_t seed) { rng_.reseed(seed); }

  private:
    struct Line
    {
        bool valid = false;
        bool dirty = false;
        Addr tagLine = 0;
        Addr paLine = 0;
        TaskId tid = kInvalidTid;
        std::uint64_t stamp = 0; //!< recency (LRU) or insertion (FIFO)
    };

    Line *setBase(std::uint64_t set_index);
    const Line *setBase(std::uint64_t set_index) const;
    unsigned victimWay(std::uint64_t set_index);

    /** Invalidate @p line, maintaining the set occupancy count. */
    void invalidate(Line &line, std::uint64_t set_index);

    /** Flush lines matching @p pred in every non-empty set. */
    template <typename Pred>
    unsigned flushWhere(Pred &&pred);

    /** Flush lines matching @p pred in sets [first, first+span). */
    template <typename Pred>
    unsigned flushSetRange(std::uint64_t first_set, std::uint64_t span,
                           Pred &&pred);

    CacheConfig cfg_;
    unsigned lineShift_;
    std::uint64_t setMask_;
    /**
     * 0 when the tag alone identifies a line, ~0 when the owning
     * task id participates too (virtually-indexed, task-tagged).
     * Folding the config test into a mask keeps the access()/
     * contains() way loops branch-free on the tid comparison.
     */
    std::uint32_t tidMask_;
    /** The big per-trial arrays: arena-backed under an ArenaScope
     *  (see base/arena.hh), heap otherwise. */
    std::pmr::vector<Line> lines_;
    /** Valid lines per set; lets flushes skip empty sets and makes
     *  validCount() O(sets). */
    std::pmr::vector<std::uint32_t> setOcc_;
    std::uint64_t stampCounter_ = 0;
    Counter writebacks_ = 0;
    /** Observability tallies, drained once by ~Cache(): page/line
     *  flushes that scanned only the mapped set range vs. the whole
     *  cache (the virtually-indexed fallback). */
    Counter flushFast_ = 0;
    Counter flushSlow_ = 0;
    Rng rng_;
};

} // namespace tw

#endif // TW_MEM_CACHE_HH
