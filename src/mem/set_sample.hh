/**
 * @file
 * Cache set-sample selection shared by the trap-driven and
 * trace-driven simulators.
 *
 * Set sampling (Section 3.2; [Kessler91, Puzak85]) simulates only a
 * subset of the cache sets and scales the measured misses by the
 * inverse sampled fraction. Both simulators must be able to agree
 * on the same sample for like-for-like validation, so the selection
 * function lives here.
 */

#ifndef TW_MEM_SET_SAMPLE_HH
#define TW_MEM_SET_SAMPLE_HH

#include <cstdint>
#include <vector>

namespace tw
{

/**
 * Choose floor(num_sets * num / denom) distinct sets (at least
 * one), uniformly at random from @p seed. A different seed yields a
 * different sample — for Tapeworm that is "simply changing the
 * pattern of traps on registered pages", whereas a trace-driven
 * simulator must re-filter the whole trace.
 */
std::vector<bool> chooseSampledSets(std::uint64_t num_sets,
                                    unsigned num, unsigned denom,
                                    std::uint64_t seed);

/**
 * Kessler-style "constant-bits" sample: the sets whose low
 * log2(denom) index bits equal @p congruence (mod denom). The
 * fraction is exactly 1/denom, denom must be a power of two, and
 * different congruence classes are the natural "different samples".
 * Compared with random selection this keeps whole aligned blocks of
 * memory in or out of the sample, which is what a hardware-assisted
 * sampler would do.
 */
std::vector<bool> chooseConstantBitSets(std::uint64_t num_sets,
                                        unsigned denom,
                                        unsigned congruence);

} // namespace tw

#endif // TW_MEM_SET_SAMPLE_HH
