/**
 * @file
 * Single-pass LRU stack simulation (Mattson et al., 1970).
 *
 * Figure 1 of the paper notes that single-pass simulators using
 * stack algorithms have a more complex structure than the plain
 * trace-driven loop. This implementation computes, in one pass over
 * a reference stream, the fully-associative LRU miss count for every
 * cache size simultaneously, by recording the reuse (stack) distance
 * of each reference. It serves as an oracle for property tests
 * (LRU inclusion) and as the basis of the multi-configuration
 * comparison bench.
 */

#ifndef TW_MEM_STACK_SIM_HH
#define TW_MEM_STACK_SIM_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "base/types.hh"

namespace tw
{

/**
 * LRU stack-distance profiler over line addresses.
 */
class StackSim
{
  public:
    /** @param line_bytes line size used to convert addresses. */
    explicit StackSim(std::uint32_t line_bytes);

    /** Reference a byte address; records its stack distance. */
    void access(Addr addr);

    /** Number of references so far. */
    Counter refs() const { return refs_; }

    /** References that had never been seen (compulsory misses). */
    Counter coldMisses() const { return cold_; }

    /**
     * Misses a fully-associative LRU cache of @p size_bytes would
     * have taken on the stream so far.
     */
    Counter missesForSize(std::uint64_t size_bytes) const;

    /** The raw histogram: histogram()[d] = references with stack
     *  distance exactly d (in lines). */
    const std::vector<Counter> &histogram() const { return hist_; }

  private:
    struct Node
    {
        Addr line;
        std::int32_t prev;
        std::int32_t next;
    };

    std::uint32_t lineBytes_;
    unsigned lineShift_;
    Counter refs_ = 0;
    Counter cold_ = 0;
    std::vector<Counter> hist_;

    // Move-to-front list over nodes_, indexed by position in the
    // vector; head_ is the most recently used line.
    std::vector<Node> nodes_;
    std::int32_t head_ = -1;
    std::unordered_map<Addr, std::int32_t> index_;
};

} // namespace tw

#endif // TW_MEM_STACK_SIM_HH
