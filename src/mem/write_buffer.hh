/**
 * @file
 * A write buffer model — the paper's example of what trap-driven
 * simulation CANNOT do.
 *
 * Section 4.4: "write buffers, which are queues that only hold
 * their contents for only a short time, cannot be simulated with
 * the Tapeworm algorithm. This limitation restricts simulations to
 * a write-back write policy."
 *
 * The reason is structural: a write buffer's behaviour depends on
 * the timing of every store and its drain progress, but a
 * trap-driven simulator only observes the (rare) references that
 * trap — store hits and drain intervals are invisible. A
 * trace-driven simulator sees every reference with an implicit
 * clock and can model the queue exactly, which this class does for
 * the trace-driven side of the flexibility comparison
 * (bench_dcache_writepolicy).
 */

#ifndef TW_MEM_WRITE_BUFFER_HH
#define TW_MEM_WRITE_BUFFER_HH

#include <deque>

#include "base/types.hh"

namespace tw
{

/** Configuration of the FIFO write buffer. */
struct WriteBufferConfig
{
    /** Queue depth in entries (lines). */
    unsigned depth = 4;
    /** Cycles memory needs to retire one entry. */
    Cycles retireCycles = 6;
    /** Merge a store into an already-buffered line instead of
     *  taking a new entry. */
    bool coalesce = true;
};

/** Counters of a write-buffer simulation. */
struct WriteBufferStats
{
    Counter stores = 0;      //!< stores presented
    Counter coalesced = 0;   //!< merged into an existing entry
    Counter retired = 0;     //!< entries drained to memory
    Counter fullStalls = 0;  //!< stores that found the queue full
    Cycles stallCycles = 0;  //!< cycles lost waiting for a slot
    Counter loadForwards = 0; //!< loads served from the buffer
};

/**
 * FIFO write buffer with an explicit clock: the caller passes the
 * current cycle on every operation (a trace-driven simulator has
 * one; a trap-driven simulator does not — that asymmetry is the
 * point).
 */
class WriteBuffer
{
  public:
    explicit WriteBuffer(const WriteBufferConfig &config)
        : cfg_(config)
    {
    }

    /**
     * Present a store of @p line_addr at time @p now. Returns the
     * stall cycles incurred (0 if a slot or merge was available).
     */
    Cycles store(Addr line_addr, Cycles now);

    /** Does a load of @p line_addr at @p now hit buffered data?
     *  (Counted as a forward; contents stay queued.) */
    bool loadForward(Addr line_addr, Cycles now);

    /** Entries still queued at time @p now. */
    unsigned occupancy(Cycles now);

    const WriteBufferStats &stats() const { return stats_; }
    const WriteBufferConfig &config() const { return cfg_; }

  private:
    struct Entry
    {
        Addr lineAddr;
        Cycles readyAt; //!< time its retirement completes
    };

    void drain(Cycles now);

    WriteBufferConfig cfg_;
    std::deque<Entry> queue_;
    Cycles lastRetire_ = 0;
    WriteBufferStats stats_;
};

} // namespace tw

#endif // TW_MEM_WRITE_BUFFER_HH
