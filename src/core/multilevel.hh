/**
 * @file
 * Two-level cache simulation with Tapeworm.
 *
 * Section 3.2: tw_replace() "can simulate different line sizes and
 * associativities, as well as more complex cache structures
 * including split, unified or multi-level caches". The trap-driven
 * realization: memory traps track the complement of the FIRST
 * level — every L1 miss raises a trap — and the handler additionally
 * searches a software model of L2 (which costs a little more per
 * miss, but only L1 misses ever reach the handler, so the speed
 * advantage stands).
 *
 * The hierarchy is inclusive: filling L1 fills L2 on an L2 miss,
 * and an L2 displacement back-invalidates L1 so L1 stays a subset
 * of L2.
 */

#ifndef TW_CORE_MULTILEVEL_HH
#define TW_CORE_MULTILEVEL_HH

#include <array>
#include <unordered_map>
#include <vector>

#include "base/types.hh"
#include "core/cost/cost_backend.hh"
#include "core/cost_model.hh"
#include "machine/phys_mem.hh"
#include "mem/cache.hh"
#include "os/sim_client.hh"
#include "os/task.hh"

namespace tw
{

/** Configuration of a two-level Tapeworm simulation. */
struct MultiLevelConfig
{
    /** First level: its complement carries the traps. */
    CacheConfig l1;
    /** Second level; must be at least as large as L1 and share the
     *  indexing mode and line size (simplifying assumption of this
     *  implementation; the paper's claim is structural). */
    CacheConfig l2;

    bool compensateMasked = true;
    bool chargeCost = true;
    TrapCostModel cost;

    /** Who prices misses (default: cost as flat Table 5). */
    CostBackendConfig costBackend;

    /** Extra handler instructions to search the software L2. */
    unsigned l2SearchInstr = 15;
    /** Extra handler instructions when L2 also misses. */
    unsigned l2ReplaceInstr = 20;
};

/** Counters of a two-level run. */
struct MultiLevelStats
{
    std::array<Counter, kNumComponents> l1Misses{};
    std::array<Counter, kNumComponents> l2Misses{};
    Counter backInvalidates = 0; //!< L1 lines killed by L2 eviction
    Counter maskedTrapRefs = 0;
    Counter lostMaskedMisses = 0;
    Counter pagesRegistered = 0;
    Counter pagesRemoved = 0;

    Counter
    totalL1() const
    {
        Counter t = 0;
        for (Counter m : l1Misses)
            t += m;
        return t;
    }

    Counter
    totalL2() const
    {
        Counter t = 0;
        for (Counter m : l2Misses)
            t += m;
        return t;
    }

    /** Local L2 miss ratio: L2 misses per L1 miss. */
    double
    l2LocalRatio() const
    {
        Counter l1 = totalL1();
        return l1 ? static_cast<double>(totalL2())
                        / static_cast<double>(l1)
                  : 0.0;
    }
};

/**
 * Trap-driven two-level (L1 + L2) cache simulator.
 */
class TapewormMultiLevel : public SimClient
{
  public:
    TapewormMultiLevel(PhysMem &phys, const MultiLevelConfig &config);

    Cycles onRef(const Task &task, Addr va, Addr pa, bool intr_masked,
                 AccessKind kind = AccessKind::Fetch) override;
    void onPageMapped(const Task &task, Vpn vpn, Pfn pfn,
                      bool shared) override;
    void onPageRemoved(const Task &task, Vpn vpn, Pfn pfn,
                       bool last_mapping) override;
    void onDmaInvalidate(Pfn pfn) override;
    void bindClock(const Cycles *now) override { clock_ = now; }

    /** Hits are filtered by the machine's trap bits, exactly as
     *  onRef() itself would (its first test is isTrapped). */
    TrapFilterView
    trapFilter() const override
    {
        return {phys_.rawBits(), phys_.granuleShift()};
    }

    const MultiLevelStats &stats() const { return stats_; }
    const Cache &l1() const { return l1_; }
    const Cache &l2() const { return l2_; }

    /** Flat (table5) handler cost for an L1 miss that hits L2. */
    Cycles l1MissCost() const { return l1HitL2Cost_; }
    /** Flat handler cost for a miss going all the way to memory. */
    Cycles l2MissCost() const { return l2MissCost_; }

    /** The backend pricing this run's misses. */
    const CostBackend &costBackend() const { return *backend_; }

    /**
     * Invariants: (a) a registered line traps iff it is absent from
     * L1; (b) inclusion: every valid L1 line is also in L2.
     */
    bool checkInvariants() const;

  private:
    struct PageReg
    {
        unsigned refs = 0;
        Vpn vpn = 0;
        TaskId tid = kInvalidTid;
    };

    void armPage(const PageReg &reg, Pfn pfn);
    /** Returns true when the software L2 serviced the miss. */
    bool handleMiss(const Task &task, Addr va, Addr pa,
                    AccessKind kind);

    PhysMem &phys_;
    MultiLevelConfig cfg_;
    Cache l1_;
    Cache l2_;
    std::unique_ptr<CostBackend> backend_;
    const Cycles *clock_ = nullptr;
    Cycles l1HitL2Cost_;
    Cycles l2MissCost_;
    unsigned granulesPerLine_;
    unsigned lineShift_;
    unsigned linesPerPage_;
    std::unordered_map<Pfn, PageReg> pages_;
    MultiLevelStats stats_;
};

} // namespace tw

#endif // TW_CORE_MULTILEVEL_HH
