#include "core/tapeworm.hh"

#include <algorithm>
#include <numeric>
#include <unordered_set>

#include "base/bitops.hh"
#include "base/logging.hh"
#include "base/random.hh"
#include "mem/set_sample.hh"
#include "obs/metrics.hh"

namespace tw
{

Tapeworm::Tapeworm(PhysMem &phys, const TapewormConfig &config)
    : phys_(phys), cfg_(config), cache_(config.cache)
{
    cfg_.cache.validate();
    TW_ASSERT(cfg_.cache.lineBytes >= phys.granuleBytes(),
              "line size %u below the host trap granule %u — the "
              "DECstation's ECC refill unit limits simulated lines "
              "to multiples of 4 words (Section 4.4)",
              cfg_.cache.lineBytes, phys.granuleBytes());
    TW_ASSERT(cfg_.cache.lineBytes <= kHostPageBytes,
              "cache mode needs line <= page; use TapewormTlb for "
              "page-granularity simulation");
    TW_ASSERT(cfg_.sampleNum >= 1 && cfg_.sampleNum <= cfg_.sampleDenom,
              "bad sampling fraction %u/%u", cfg_.sampleNum,
              cfg_.sampleDenom);

    lineShift_ = floorLog2(cfg_.cache.lineBytes);
    linesPerPage_ = kHostPageBytes >> lineShift_;
    granulesPerLine_ = cfg_.cache.lineBytes / phys.granuleBytes();
    missCost_ = cfg_.cost.missCycles(cfg_.cache.assoc,
                                     granulesPerLine_);
    backend_ = makeCostBackend(cfg_.costBackend, cfg_.cost);

    allSampled_ = cfg_.sampleNum == cfg_.sampleDenom;
    if (!allSampled_) {
        // A different sampleSeed yields a different sample — new
        // samples cost Tapeworm nothing but a new trap pattern.
        if (cfg_.sampleMode == SampleMode::ConstantBits) {
            TW_ASSERT(cfg_.sampleNum == 1,
                      "constant-bits sampling takes 1/denom");
            sampledSets_ = chooseConstantBitSets(
                cfg_.cache.numSets(), cfg_.sampleDenom,
                static_cast<unsigned>(cfg_.sampleSeed));
        } else {
            sampledSets_ = chooseSampledSets(cfg_.cache.numSets(),
                                             cfg_.sampleNum,
                                             cfg_.sampleDenom,
                                             cfg_.sampleSeed);
        }
    }
}

Tapeworm::~Tapeworm()
{
    static obs::Counter fetch =
        obs::registry().counter("engine.traps.delivered.fetch");
    static obs::Counter load =
        obs::registry().counter("engine.traps.delivered.load");
    static obs::Counter store =
        obs::registry().counter("engine.traps.delivered.store");
    static obs::Counter set = obs::registry().counter("engine.traps.set");
    static obs::Counter cleared =
        obs::registry().counter("engine.traps.cleared");
    fetch.add(stats_.missesByKind[static_cast<unsigned>(
        AccessKind::Fetch)]);
    load.add(
        stats_.missesByKind[static_cast<unsigned>(AccessKind::Load)]);
    store.add(
        stats_.missesByKind[static_cast<unsigned>(AccessKind::Store)]);
    set.add(stats_.trapsSet);
    cleared.add(stats_.trapsCleared);
}

bool
Tapeworm::setSampled(std::uint64_t set_index) const
{
    return allSampled_ || sampledSets_[set_index];
}

LineRef
Tapeworm::lineRefFor(const PageReg &reg, Pfn pfn,
                     unsigned line_in_page) const
{
    LineRef ref;
    ref.vaLine = reg.vpn * linesPerPage_ + line_in_page;
    ref.paLine = static_cast<Addr>(pfn) * linesPerPage_ + line_in_page;
    ref.tid = reg.tid;
    return ref;
}

void
Tapeworm::armPage(const PageReg &reg, Pfn pfn)
{
    // tw_register_page(): set traps on every line of the page that
    // maps to a sampled set. Non-sample lines never trap and are
    // filtered from the simulation by the hardware at zero cost.
    // trapsSet counts lines that actually transition to trapped, so
    // a re-arm (the onDmaInvalidate path) of a line that was already
    // trapped — i.e. already non-resident — adds nothing.
    Addr page_pa = static_cast<Addr>(pfn) * kHostPageBytes;
    for (unsigned l = 0; l < linesPerPage_; ++l) {
        LineRef ref = lineRefFor(reg, pfn, l);
        if (!setSampled(cache_.setIndexOf(ref)))
            continue;
        Addr line_pa = page_pa + (static_cast<Addr>(l) << lineShift_);
        if (!phys_.anyTrapped(line_pa, cfg_.cache.lineBytes))
            ++stats_.trapsSet;
        phys_.setTrap(line_pa, cfg_.cache.lineBytes);
    }
}

void
Tapeworm::onPageMapped(const Task &task, Vpn vpn, Pfn pfn, bool shared)
{
    ++stats_.pagesRegistered;
    auto it = pages_.find(pfn);
    if (it != pages_.end()) {
        TW_ASSERT(shared, "frame %d already registered but VM says "
                          "unshared", pfn);
        // Additional mapping of a registered frame: bump the
        // reference count, set no new traps (Section 3.2).
        ++it->second.refs;
        ++stats_.sharedRegistrations;
        return;
    }
    TW_ASSERT(!shared, "VM says shared but frame %d unknown", pfn);
    PageReg reg;
    reg.refs = 1;
    reg.vpn = vpn;
    reg.tid = task.tid;
    armPage(reg, pfn);
    pages_.emplace(pfn, reg);
}

void
Tapeworm::onPageRemoved(const Task &task, Vpn vpn, Pfn pfn,
                        bool last_mapping)
{
    (void)task;
    (void)vpn;
    ++stats_.pagesRemoved;
    auto it = pages_.find(pfn);
    TW_ASSERT(it != pages_.end(), "removing unregistered frame %d",
              pfn);
    TW_ASSERT(it->second.refs > 0, "page refcount underflow");
    --it->second.refs;
    TW_ASSERT((it->second.refs == 0) == last_mapping,
              "refcount disagrees with VM on frame %d", pfn);
    if (it->second.refs > 0)
        return;

    // Last mapping gone: flush the page from the simulated cache
    // and clear all its traps — tw_remove_page() mimics what the VM
    // does to the host's real cache. trapsCleared counts per line
    // (the unit armPage and handleMiss count in), so only lines that
    // actually held a trap contribute.
    cache_.flushPhysPage(static_cast<Addr>(pfn), kHostPageBytes);
    Addr page_pa = static_cast<Addr>(pfn) * kHostPageBytes;
    for (unsigned l = 0; l < linesPerPage_; ++l) {
        if (phys_.anyTrapped(page_pa + (static_cast<Addr>(l) << lineShift_),
                             cfg_.cache.lineBytes))
            ++stats_.trapsCleared;
    }
    phys_.clearTrap(page_pa, kHostPageBytes);
    pages_.erase(it);
}

void
Tapeworm::onDmaInvalidate(Pfn pfn)
{
    auto it = pages_.find(pfn);
    if (it == pages_.end())
        return; // not a simulated page; nothing in our cache
    // The DMA write invalidated the frame's lines in the real
    // cache; mirror that in the simulated cache and re-arm traps so
    // the next reference to any line of the page misses again.
    stats_.dmaFlushedLines +=
        cache_.flushPhysPage(static_cast<Addr>(pfn), kHostPageBytes);
    armPage(it->second, pfn);
}

bool
Tapeworm::consumes(AccessKind kind) const
{
    switch (cfg_.kind) {
      case SimCacheKind::Instruction:
        return kind == AccessKind::Fetch;
      case SimCacheKind::Data:
        return kind != AccessKind::Fetch;
      case SimCacheKind::Unified:
        return true;
    }
    return false;
}

void
Tapeworm::handleMiss(const Task &task, Addr va, Addr pa,
                     AccessKind kind)
{
    ++stats_.misses[static_cast<unsigned>(task.component)];
    ++stats_.missesByKind[static_cast<unsigned>(kind)];

    Addr line_pa = alignDown(pa, cfg_.cache.lineBytes);
    phys_.clearTrap(line_pa, cfg_.cache.lineBytes);
    ++stats_.trapsCleared;

    LineRef ref;
    ref.vaLine = va >> lineShift_;
    ref.paLine = pa >> lineShift_;
    ref.tid = task.tid;
    auto displaced = cache_.insert(ref, kind == AccessKind::Store);
    if (!displaced)
        return;

    // tw_set_trap() on the displaced entry — but only while its
    // page is still registered (it may have been removed while the
    // line sat in the cache... it cannot: removal flushes. Still,
    // guard against foreign lines).
    Addr dpa = displaced->paLine << lineShift_;
    Pfn dpfn = static_cast<Pfn>(dpa / kHostPageBytes);
    if (pages_.count(dpfn)) {
        phys_.setTrap(dpa, cfg_.cache.lineBytes);
        ++stats_.trapsSet;
    }
}

Cycles
Tapeworm::onRef(const Task &task, Addr va, Addr pa, bool intr_masked,
                AccessKind kind)
{
    // The hit path: one hardware trap-bit test. No software runs.
    if (!phys_.isTrapped(pa)) [[likely]]
        return 0;

    if (kind == AccessKind::Store
        && cfg_.hostWrite == HostWritePolicy::NoAllocateOnWrite) {
        // The store rewrites the granule's ECC check bits without a
        // refill: the trap evaporates and no kernel trap is ever
        // raised. This is the DECstation behaviour that hindered
        // data-cache simulation (Section 4.4). Coverage of this
        // granule is silently lost until the page is re-armed.
        phys_.clearTrap(alignDown(pa, phys_.granuleBytes()),
                        phys_.granuleBytes());
        ++stats_.silentTrapClears;
        return 0;
    }
    if (!consumes(kind))
        return 0;

    if (intr_masked) {
        ++stats_.maskedTrapRefs;
        if (!cfg_.compensateMasked) {
            // The ECC interrupt cannot be delivered; the miss is
            // lost (Section 4.2, "Sources of Measurement Bias").
            ++stats_.lostMaskedMisses;
            return 0;
        }
    }
    handleMiss(task, va, pa, kind);
    if (!cfg_.chargeCost)
        return 0;
    MissEvent ev;
    ev.kind = MissKind::Fill;
    ev.pa = alignDown(pa, cfg_.cache.lineBytes);
    ev.isWrite = kind == AccessKind::Store;
    ev.assoc = cfg_.cache.assoc;
    ev.granulesPerLine = granulesPerLine_;
    ev.lineBytes = cfg_.cache.lineBytes;
    ev.now = clock_ ? *clock_ : 0;
    return backend_->missCycles(ev);
}

const char *
simCacheKindName(SimCacheKind k)
{
    switch (k) {
      case SimCacheKind::Instruction:
        return "instruction";
      case SimCacheKind::Data:
        return "data";
      case SimCacheKind::Unified:
        return "unified";
    }
    return "?";
}

double
Tapeworm::estimatedTotalMisses() const
{
    return static_cast<double>(stats_.totalMisses())
           / cfg_.sampledFraction();
}

double
Tapeworm::estimatedMisses(Component c) const
{
    return static_cast<double>(
               stats_.misses[static_cast<unsigned>(c)])
           / cfg_.sampledFraction();
}

bool
Tapeworm::checkInvariants() const
{
    std::unordered_set<Addr> resident_lines;
    for (const auto &info : cache_.validLines())
        resident_lines.insert(info.paLine);

    for (const auto &[pfn, reg] : pages_) {
        Addr page_pa = static_cast<Addr>(pfn) * kHostPageBytes;
        for (unsigned l = 0; l < linesPerPage_; ++l) {
            Addr line_pa = page_pa + (static_cast<Addr>(l) << lineShift_);
            bool trapped = phys_.anyTrapped(line_pa,
                                            cfg_.cache.lineBytes);
            LineRef ref = lineRefFor(reg, pfn, l);
            if (!setSampled(cache_.setIndexOf(ref))) {
                if (trapped)
                    return false; // non-sample lines never trap
                continue;
            }
            // Resident iff some cached line holds this physical
            // line (any tag/task — shared pages may be cached under
            // another mapping's tag).
            bool resident = resident_lines.count(ref.paLine) > 0;
            if (trapped && resident)
                return false; // a resident line must never trap
            if (!trapped && !resident) {
                // Permissible only where stores silently cleared
                // traps (no-allocate-on-write coverage loss).
                if (cfg_.hostWrite == HostWritePolicy::AllocateOnWrite)
                    return false;
            }
        }
    }
    return true;
}

} // namespace tw
