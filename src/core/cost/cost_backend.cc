#include "core/cost/cost_backend.hh"

#include <cmath>
#include <cstdlib>

#include "base/logging.hh"
#include "core/cost/dram_backend.hh"
#include "obs/metrics.hh"

namespace tw
{

const char *
costBackendKindName(CostBackendKind k)
{
    switch (k) {
      case CostBackendKind::Table5:
        return "table5";
      case CostBackendKind::Ideal:
        return "ideal";
      case CostBackendKind::Dram:
        return "dram";
    }
    return "?";
}

bool
costBackendKindFromName(const std::string &name, CostBackendKind &out)
{
    if (name == "table5")
        out = CostBackendKind::Table5;
    else if (name == "ideal")
        out = CostBackendKind::Ideal;
    else if (name == "dram")
        out = CostBackendKind::Dram;
    else
        return false;
    return true;
}

CostBackend::~CostBackend()
{
    static obs::Counter events =
        obs::registry().counter("engine.cost.events");
    static obs::Counter cycles =
        obs::registry().counter("engine.cost.cycles");
    events.add(events_);
    cycles.add(cycles_);
}

Cycles
Table5Backend::compute(const MissEvent &ev)
{
    if (ev.kind == MissKind::Tlb)
        return model_.tlbMissCycles;
    std::uint64_t key = (static_cast<std::uint64_t>(ev.assoc) << 40)
                        | (static_cast<std::uint64_t>(
                               ev.granulesPerLine)
                           << 20)
                        | ev.extraInstr;
    if (key == lastKey_)
        return lastCycles_;
    lastKey_ = key;
    lastCycles_ = static_cast<Cycles>(std::llround(
        (model_.missInstructions(ev.assoc, ev.granulesPerLine)
         + ev.extraInstr)
        * model_.cyclesPerInstr));
    return lastCycles_;
}

bool
DramTimingParams::operator==(const DramTimingParams &o) const
{
    return channels == o.channels
           && ranksPerChannel == o.ranksPerChannel
           && banksPerRank == o.banksPerRank && rowBytes == o.rowBytes
           && tRCD == o.tRCD && tRP == o.tRP && tCAS == o.tCAS
           && tRAS == o.tRAS && tRFC == o.tRFC && tREFI == o.tREFI
           && burstCycles == o.burstCycles && walkReads == o.walkReads;
}

bool
CostBackendConfig::operator==(const CostBackendConfig &o) const
{
    if (kind != o.kind)
        return false;
    // Dram params only participate when they are live; table5/ideal
    // configs with stale dram edits still compare (and serialize)
    // equal.
    if (kind == CostBackendKind::Dram)
        return dram == o.dram;
    return true;
}

std::unique_ptr<CostBackend>
makeCostBackend(const CostBackendConfig &cfg,
                const TrapCostModel &table5)
{
    switch (cfg.kind) {
      case CostBackendKind::Table5:
        return std::make_unique<Table5Backend>(table5, "table5");
      case CostBackendKind::Ideal: {
        TrapCostModel ideal = TrapCostModel::idealHardware();
        ideal.tlbMissCycles = table5.tlbMissCycles;
        return std::make_unique<Table5Backend>(ideal, "ideal");
      }
      case CostBackendKind::Dram:
        return std::make_unique<DramBackend>(cfg.dram, table5);
    }
    panic("unknown cost backend kind %d", static_cast<int>(cfg.kind));
}

namespace
{

bool
parseDramParam(const std::string &key, const std::string &value,
               DramTimingParams &p, std::string &err)
{
    char *end = nullptr;
    unsigned long long v = std::strtoull(value.c_str(), &end, 10);
    if (value.empty() || end == nullptr || *end != '\0') {
        err = csprintf("cost backend: bad value '%s' for '%s'",
                       value.c_str(), key.c_str());
        return false;
    }
    if (key == "tRCD")
        p.tRCD = static_cast<unsigned>(v);
    else if (key == "tRP")
        p.tRP = static_cast<unsigned>(v);
    else if (key == "tCAS")
        p.tCAS = static_cast<unsigned>(v);
    else if (key == "tRAS")
        p.tRAS = static_cast<unsigned>(v);
    else if (key == "tRFC")
        p.tRFC = static_cast<unsigned>(v);
    else if (key == "tREFI")
        p.tREFI = v;
    else if (key == "rowBytes")
        p.rowBytes = static_cast<unsigned>(v);
    else if (key == "banks")
        p.banksPerRank = static_cast<unsigned>(v);
    else if (key == "ranks")
        p.ranksPerChannel = static_cast<unsigned>(v);
    else if (key == "channels")
        p.channels = static_cast<unsigned>(v);
    else if (key == "burst")
        p.burstCycles = static_cast<unsigned>(v);
    else if (key == "walkReads")
        p.walkReads = static_cast<unsigned>(v);
    else {
        err = csprintf("cost backend: unknown dram key '%s'",
                       key.c_str());
        return false;
    }
    return true;
}

} // namespace

bool
parseCostBackendSpec(const std::string &text, CostBackendConfig &out,
                     std::string &err)
{
    std::string name = text;
    std::string params;
    auto colon = text.find(':');
    if (colon != std::string::npos) {
        name = text.substr(0, colon);
        params = text.substr(colon + 1);
    }
    CostBackendConfig cfg;
    if (!costBackendKindFromName(name, cfg.kind)) {
        err = csprintf("cost backend: unknown name '%s' (expected "
                       "table5, ideal or dram)",
                       name.c_str());
        return false;
    }
    if (!params.empty() && cfg.kind != CostBackendKind::Dram) {
        err = csprintf("cost backend: '%s' takes no parameters",
                       name.c_str());
        return false;
    }
    std::size_t pos = 0;
    while (pos < params.size()) {
        auto comma = params.find(',', pos);
        if (comma == std::string::npos)
            comma = params.size();
        std::string kv = params.substr(pos, comma - pos);
        pos = comma + 1;
        auto eq = kv.find('=');
        if (eq == std::string::npos) {
            err = csprintf("cost backend: expected k=v, got '%s'",
                           kv.c_str());
            return false;
        }
        if (!parseDramParam(kv.substr(0, eq), kv.substr(eq + 1),
                            cfg.dram, err))
            return false;
    }
    if (cfg.kind == CostBackendKind::Dram) {
        if (cfg.dram.totalBanks() == 0 || cfg.dram.rowBytes == 0) {
            err = "cost backend: dram needs at least one bank and a "
                  "non-zero row size";
            return false;
        }
    }
    out = cfg;
    return true;
}

std::string
formatCostBackendSpec(const CostBackendConfig &cfg)
{
    std::string s = costBackendKindName(cfg.kind);
    if (cfg.kind != CostBackendKind::Dram)
        return s;
    const DramTimingParams def;
    const DramTimingParams &p = cfg.dram;
    std::string params;
    auto add = [&params](const char *k, std::uint64_t v) {
        if (!params.empty())
            params += ',';
        params += csprintf("%s=%llu", k,
                           static_cast<unsigned long long>(v));
    };
    if (p.tRCD != def.tRCD)
        add("tRCD", p.tRCD);
    if (p.tRP != def.tRP)
        add("tRP", p.tRP);
    if (p.tCAS != def.tCAS)
        add("tCAS", p.tCAS);
    if (p.tRAS != def.tRAS)
        add("tRAS", p.tRAS);
    if (p.tRFC != def.tRFC)
        add("tRFC", p.tRFC);
    if (p.tREFI != def.tREFI)
        add("tREFI", p.tREFI);
    if (p.rowBytes != def.rowBytes)
        add("rowBytes", p.rowBytes);
    if (p.banksPerRank != def.banksPerRank)
        add("banks", p.banksPerRank);
    if (p.ranksPerChannel != def.ranksPerChannel)
        add("ranks", p.ranksPerChannel);
    if (p.channels != def.channels)
        add("channels", p.channels);
    if (p.burstCycles != def.burstCycles)
        add("burst", p.burstCycles);
    if (p.walkReads != def.walkReads)
        add("walkReads", p.walkReads);
    if (!params.empty())
        s += ':' + params;
    return s;
}

} // namespace tw
