/**
 * @file
 * Pluggable miss-cost backends.
 *
 * Every simulated miss used to be priced by the flat Table 5
 * constants compiled into the simulators. This layer lifts that
 * decision behind one seam: a simulator describes the miss it just
 * handled as a MissEvent and the attached CostBackend answers in
 * cycles. Three backends ship:
 *
 *  - table5: the paper's instruction-level handler model (the
 *    default — byte-identical to the pre-backend inline path);
 *  - ideal:  the Section 4.3 ~50-cycle better-hardware variant;
 *  - dram:   a cycle-level channel/rank/bank timing model where a
 *    miss that hits an open row costs measurably less than one
 *    that conflicts (see cost/dram_backend.hh).
 *
 * Backends may be stateful (dram is), so the contract mirrors the
 * trial harness: one backend instance per trial, reset() returns it
 * to construction state, and clone() produces an independent copy
 * with fresh statistics — per-trial instances are what keep
 * parallelFor trials bit-identical at any thread count.
 */

#ifndef TW_CORE_COST_COST_BACKEND_HH
#define TW_CORE_COST_COST_BACKEND_HH

#include <memory>
#include <string>

#include "base/types.hh"
#include "core/cost_model.hh"

namespace tw
{

/** Which backend prices misses. */
enum class CostBackendKind { Table5, Ideal, Dram };

/** Wire/CLI name of a backend kind. */
const char *costBackendKindName(CostBackendKind k);

/** Parse a backend kind name ("table5", "ideal", "dram"). */
bool costBackendKindFromName(const std::string &name,
                             CostBackendKind &out);

/** What kind of miss a CostBackend is pricing. */
enum class MissKind
{
    Fill,  //!< cache miss refilled from memory
    L2Hit, //!< L1 miss serviced by the software L2 (no memory access)
    Tlb,   //!< TLB miss (software refill / page-table walk)
};

/**
 * One handled miss, as the simulator saw it. Geometry fields feed
 * the instruction-level handler model; pa and now feed timing
 * models. now is the simulator's best-known committed cycle count
 * (0 when no clock is bound) — fast engine paths charge base CPI in
 * bulk, so it may trail the exact instruction position, but it is
 * monotone and identical across thread counts for a given spec.
 */
struct MissEvent
{
    MissKind kind = MissKind::Fill;
    Addr pa = 0;
    bool isWrite = false;

    /** Simulated geometry (cache modes; zero/unused for Tlb). */
    unsigned assoc = 1;
    unsigned granulesPerLine = 1;
    unsigned lineBytes = 0;

    /** Extra handler instructions beyond the base Table 5 handler
     *  (the multi-level simulator's software L2 search/replace). */
    unsigned extraInstr = 0;

    Cycles now = 0;
};

/**
 * Abstract miss-cost backend: MissEvent in, cycles out.
 *
 * missCycles() also accumulates the engine.cost.{events,cycles}
 * tallies, which the destructor folds into the obs registry once
 * per instance (the Tapeworm counter-flush pattern).
 */
class CostBackend
{
  public:
    virtual ~CostBackend();

    /** Price one miss and account it. */
    Cycles
    missCycles(const MissEvent &ev)
    {
        Cycles c = compute(ev);
        ++events_;
        cycles_ += c;
        return c;
    }

    /** Return to construction state (timing state and tallies). */
    virtual void reset() { events_ = cycles_ = 0; }

    /** Independent copy with fresh state and statistics. */
    virtual std::unique_ptr<CostBackend> clone() const = 0;

    virtual const char *name() const = 0;

    Counter events() const { return events_; }
    Counter chargedCycles() const { return cycles_; }

  protected:
    virtual Cycles compute(const MissEvent &ev) = 0;

  private:
    Counter events_ = 0;
    Counter cycles_ = 0;
};

/**
 * The Table 5 instruction-level backend (also "ideal" when built
 * over TrapCostModel::idealHardware()). Stateless: reproduces the
 * pre-backend inline costs exactly —
 * llround((missInstructions + extraInstr) * cyclesPerInstr) for
 * cache misses and tlbMissCycles for TLB misses.
 */
class Table5Backend : public CostBackend
{
  public:
    explicit Table5Backend(const TrapCostModel &model,
                           const char *name = "table5")
        : model_(model), name_(name)
    {
    }

    std::unique_ptr<CostBackend>
    clone() const override
    {
        return std::make_unique<Table5Backend>(model_, name_);
    }

    const char *name() const override { return name_; }
    const TrapCostModel &model() const { return model_; }

  protected:
    Cycles compute(const MissEvent &ev) override;

  private:
    TrapCostModel model_;
    const char *name_;
    /** One-entry memo: a simulator prices one geometry all run. */
    std::uint64_t lastKey_ = ~std::uint64_t(0);
    Cycles lastCycles_ = 0;
};

/** Timing parameters of the dram backend (all in CPU cycles). */
struct DramTimingParams
{
    unsigned channels = 1;
    unsigned ranksPerChannel = 1;
    unsigned banksPerRank = 8;
    /** Row-buffer (page) size per bank. */
    unsigned rowBytes = 2048;

    unsigned tRCD = 18; //!< activate -> column command
    unsigned tRP = 18;  //!< precharge period
    unsigned tCAS = 18; //!< column command -> first data
    unsigned tRAS = 42; //!< activate -> earliest precharge
    unsigned tRFC = 280; //!< refresh cycle time
    /** Refresh interval per rank; 0 disables refresh. */
    std::uint64_t tREFI = 9750;
    /** Data-burst occupancy per access. */
    unsigned burstCycles = 4;

    /** Page-table walk reads charged per TLB miss. */
    unsigned walkReads = 2;

    unsigned totalBanks() const
    {
        return channels * ranksPerChannel * banksPerRank;
    }

    bool operator==(const DramTimingParams &o) const;
    bool operator!=(const DramTimingParams &o) const
    {
        return !(*this == o);
    }
};

/** Which backend a spec wants, plus its parameters. */
struct CostBackendConfig
{
    CostBackendKind kind = CostBackendKind::Table5;
    /** Only meaningful when kind == Dram. */
    DramTimingParams dram;

    /** The pre-backend behaviour (specs serialize nothing). */
    bool isDefault() const { return kind == CostBackendKind::Table5; }

    bool operator==(const CostBackendConfig &o) const;
    bool operator!=(const CostBackendConfig &o) const
    {
        return !(*this == o);
    }
};

/**
 * Build the configured backend. @p table5 carries the spec's
 * TrapCostModel parameter block: table5 uses it as-is, ideal
 * replaces the instruction counts with the Section 4.3 estimates,
 * dram uses it for the handler-overhead component.
 */
std::unique_ptr<CostBackend>
makeCostBackend(const CostBackendConfig &cfg,
                const TrapCostModel &table5);

/**
 * Parse a CLI/env backend spec: NAME[:k=v,...], e.g.
 * "dram:tRCD=15,banks=16". Keys (dram only): tRCD, tRP, tCAS,
 * tRAS, tRFC, tREFI, rowBytes, banks, ranks, channels, burst,
 * walkReads. Returns false with a diagnostic in @p err on any
 * unknown name, unknown key, or malformed value.
 */
bool parseCostBackendSpec(const std::string &text,
                          CostBackendConfig &out, std::string &err);

/** Render a config back to NAME[:k=v,...] (inverse of the parser;
 *  dram params are listed only where they differ from defaults). */
std::string formatCostBackendSpec(const CostBackendConfig &cfg);

} // namespace tw

#endif // TW_CORE_COST_COST_BACKEND_HH
