#include "core/cost/dram_backend.hh"

#include <algorithm>
#include <cmath>

#include "base/bitops.hh"
#include "base/logging.hh"
#include "obs/metrics.hh"

namespace tw
{

namespace
{

/** Page-table reads live well away from workload rows. */
constexpr Addr kWalkBase = Addr(1) << 32;

} // namespace

DramBackend::DramBackend(const DramTimingParams &params,
                         const TrapCostModel &handler)
    : params_(params), handler_(handler)
{
    TW_ASSERT(params_.totalBanks() > 0 && params_.rowBytes > 0,
              "dram backend needs banks and a row size");
    banks_.assign(params_.totalBanks(), Bank{});
    rankRefreshEpoch_.assign(params_.channels * params_.ranksPerChannel,
                             0);
}

DramBackend::~DramBackend()
{
    static obs::Counter hits =
        obs::registry().counter("engine.cost.row_hits");
    static obs::Counter conflicts =
        obs::registry().counter("engine.cost.row_conflicts");
    static obs::Counter refreshes =
        obs::registry().counter("engine.cost.refreshes");
    hits.add(stats_.rowHits);
    conflicts.add(stats_.rowConflicts);
    refreshes.add(stats_.refreshes);
}

void
DramBackend::reset()
{
    CostBackend::reset();
    std::fill(banks_.begin(), banks_.end(), Bank{});
    std::fill(rankRefreshEpoch_.begin(), rankRefreshEpoch_.end(), 0);
    stats_ = DramStats{};
}

std::unique_ptr<CostBackend>
DramBackend::clone() const
{
    return std::make_unique<DramBackend>(params_, handler_);
}

Cycles
DramBackend::access(Addr pa, Cycles now)
{
    std::uint64_t line = pa / params_.rowBytes;
    std::uint64_t bank_idx = line % banks_.size();
    std::uint64_t row = line / banks_.size();
    std::uint64_t rank = bank_idx / params_.banksPerRank;
    Bank &bank = banks_[bank_idx];

    Cycles start = std::max(now, bank.busyUntil);

    if (params_.tREFI != 0) {
        Cycles epoch = start / params_.tREFI;
        if (epoch > rankRefreshEpoch_[rank]) {
            // All-bank refresh: the rank stalls for tRFC and every
            // row buffer closes.
            rankRefreshEpoch_[rank] = epoch;
            start += params_.tRFC;
            ++stats_.refreshes;
            std::uint64_t first = rank * params_.banksPerRank;
            for (std::uint64_t b = first;
                 b < first + params_.banksPerRank; ++b)
                banks_[b].rowOpen = false;
        }
    }

    Cycles ready;
    if (!bank.rowOpen) {
        bank.lastActivate = start;
        ready = start + params_.tRCD + params_.tCAS;
    } else if (bank.openRow == row) {
        ++stats_.rowHits;
        ready = start + params_.tCAS;
    } else {
        // Conflict: precharge cannot begin before the open row has
        // been active for tRAS.
        ++stats_.rowConflicts;
        Cycles pre =
            std::max(start, bank.lastActivate + params_.tRAS);
        bank.lastActivate = pre + params_.tRP;
        ready = bank.lastActivate + params_.tRCD + params_.tCAS;
    }
    bank.rowOpen = true;
    bank.openRow = row;
    bank.busyUntil = ready + params_.burstCycles;
    return bank.busyUntil;
}

Cycles
DramBackend::compute(const MissEvent &ev)
{
    if (ev.kind == MissKind::Tlb) {
        // Software refill handler plus a dependent page-table walk
        // through the bank state (walkReads levels, each indexed by
        // a different VPN slice).
        Cycles t = ev.now;
        for (unsigned i = 0; i < params_.walkReads; ++i) {
            Addr pte = kWalkBase
                       + (((ev.pa / kHostPageBytes) >> (10 * i)) << 3);
            t = access(pte, t);
        }
        return handler_.tlbMissCycles + (t - ev.now);
    }

    Cycles handler_cost = static_cast<Cycles>(std::llround(
        (handler_.missInstructions(ev.assoc, ev.granulesPerLine)
         + ev.extraInstr)
        * handler_.cyclesPerInstr));
    if (ev.kind == MissKind::L2Hit)
        return handler_cost; // serviced from the software L2: no DRAM
    Cycles done = access(ev.pa, ev.now);
    return handler_cost + (done - ev.now);
}

} // namespace tw
