/**
 * @file
 * Cycle-level DRAM timing backend.
 *
 * A deliberately small channel/rank/bank state machine in the
 * spirit of Ramulator 2.0's interface-first decomposition: each
 * bank tracks its open row, its busy-until horizon, and its last
 * activate; each rank tracks a refresh epoch. A miss is priced by
 * walking one access through that state:
 *
 *   row hit       tCAS                      (open row matches)
 *   row closed    tRCD + tCAS               (activate first)
 *   row conflict  tRP + tRCD + tCAS         (precharge may also
 *                                            wait for tRAS)
 *
 * plus burstCycles of data occupancy, plus any queueing behind the
 * bank's previous access, plus tRFC whenever the access crosses
 * into a new tREFI epoch on its rank. The handler-overhead
 * component (kernel trap + Tapeworm bookkeeping, Table 5) is still
 * charged on top: the backend replaces the flat *memory* cost, not
 * the trap machinery the paper measured.
 *
 * FR-FCFS-lite: the trap handler is synchronous, so there is never
 * more than one outstanding request — arbitration degenerates to
 * the per-bank busy horizon, and "first-ready" survives as the
 * open-row preference encoded in the latency table above.
 *
 * TLB misses are modeled as walkReads dependent page-table reads
 * (a two-level walk by default) through the same bank state.
 */

#ifndef TW_CORE_COST_DRAM_BACKEND_HH
#define TW_CORE_COST_DRAM_BACKEND_HH

#include <vector>

#include "core/cost/cost_backend.hh"

namespace tw
{

/** Row-buffer tallies a dram-backend run accumulates. */
struct DramStats
{
    Counter rowHits = 0;
    Counter rowConflicts = 0;
    Counter refreshes = 0;
};

class DramBackend : public CostBackend
{
  public:
    DramBackend(const DramTimingParams &params,
                const TrapCostModel &handler);

    /** Folds row-buffer tallies into the obs registry. */
    ~DramBackend() override;

    void reset() override;
    std::unique_ptr<CostBackend> clone() const override;
    const char *name() const override { return "dram"; }

    const DramStats &stats() const { return stats_; }
    const DramTimingParams &params() const { return params_; }

  protected:
    Cycles compute(const MissEvent &ev) override;

  private:
    struct Bank
    {
        std::uint64_t openRow = 0;
        bool rowOpen = false;
        Cycles busyUntil = 0;
        Cycles lastActivate = 0;
    };

    /** Completion time of one access issued at sim-time @p now. */
    Cycles access(Addr pa, Cycles now);

    DramTimingParams params_;
    TrapCostModel handler_;
    std::vector<Bank> banks_;
    std::vector<Cycles> rankRefreshEpoch_;
    DramStats stats_;
};

} // namespace tw

#endif // TW_CORE_COST_DRAM_BACKEND_HH
