/**
 * @file
 * Tapeworm in TLB-simulation mode.
 *
 * For TLB simulation "where the granularity is large, page valid
 * bits are most effective" (Section 3.2): instead of ECC traps on
 * 16-byte granules, Tapeworm marks page-table entries invalid so
 * the first use of a page traps. Footnote 2: "an extra bit is
 * maintained in software to indicate the true state of the page" —
 * here, a per-task bitmap mirrors which pages are trap-invalid
 * versus genuinely unmapped.
 *
 * This is the mode the first-generation Tapeworm implemented on the
 * R2000's software-managed TLB [Nagle93, Uhlig94a].
 */

#ifndef TW_CORE_TAPEWORM_TLB_HH
#define TW_CORE_TAPEWORM_TLB_HH

#include <array>
#include <memory_resource>
#include <unordered_map>
#include <vector>

#include "base/arena.hh"
#include "base/types.hh"
#include "core/cost/cost_backend.hh"
#include "core/cost_model.hh"
#include "mem/cache.hh"
#include "os/sim_client.hh"
#include "os/task.hh"

namespace tw
{

/** Configuration of a Tapeworm TLB simulation. */
struct TapewormTlbConfig
{
    /** The simulated TLB (default: 64 entries, fully associative,
     *  FIFO — the MIPS R3000 had 64 entries with software-random
     *  replacement). The entry page size (tlb.lineBytes) may be any
     *  power-of-two multiple of the host page: Table 2's "Variable
     *  Page Size" primitive enables superpage studies in the style
     *  of [Talluri94]. */
    CacheConfig tlb = CacheConfig::tlb(64);

    bool chargeCost = true;
    bool compensateMasked = true;
    TrapCostModel cost;

    /** Who prices misses (default: cost as flat tlbMissCycles). */
    CostBackendConfig costBackend;

    /** Physical frames of the host machine. When nonzero, the
     *  simulator maintains a conservative per-frame trap bitmap
     *  (bit set iff ANY address space holds a valid-bit trap on a
     *  registered page of that frame) and exposes it via
     *  trapFilter(), so the machine can skip onRef() on hits.
     *  Zero disables the filter (every reference is delivered, the
     *  pre-filter behaviour). The harness fills this in from
     *  PhysMem::numFrames(). */
    std::uint64_t filterFrames = 0;

    /** Host pages per simulated TLB entry. */
    unsigned
    pagesPerEntry() const
    {
        return tlb.lineBytes / kHostPageBytes;
    }
};

/** Counters of a TLB-mode run. */
struct TapewormTlbStats
{
    std::array<Counter, kNumComponents> misses{};
    Counter maskedTrapRefs = 0;
    Counter lostMaskedMisses = 0;
    Counter pagesRegistered = 0;
    Counter pagesRemoved = 0;

    Counter
    totalMisses() const
    {
        Counter t = 0;
        for (Counter m : misses)
            t += m;
        return t;
    }
};

/**
 * Page-valid-bit-driven TLB simulator.
 */
class TapewormTlb : public SimClient
{
  public:
    explicit TapewormTlb(const TapewormTlbConfig &config);

    Cycles onRef(const Task &task, Addr va, Addr pa, bool intr_masked,
                 AccessKind kind = AccessKind::Fetch) override;
    void onPageMapped(const Task &task, Vpn vpn, Pfn pfn,
                      bool shared) override;
    void onPageRemoved(const Task &task, Vpn vpn, Pfn pfn,
                       bool last_mapping) override;
    void bindClock(const Cycles *now) override { clock_ = now; }

    /** Page-granularity view of the per-frame trap bitmap (null
     *  when cfg.filterFrames == 0). Conservative: a clear bit
     *  guarantees no space traps any page of the frame, so onRef()
     *  would return 0 without side effects; a set bit only means
     *  SOME space does — delivery still resolves per address
     *  space, exactly as without the filter. */
    TrapFilterView trapFilter() const override;

    const TapewormTlbStats &stats() const { return stats_; }
    const Cache &tlb() const { return tlb_; }
    Cycles missCost() const { return cfg_.cost.tlbMissCycles; }

    /** The backend pricing this run's misses. */
    const CostBackend &costBackend() const { return *backend_; }

    /** Verify trap/residence duality over all registered pages. */
    bool checkInvariants() const;

  private:
    /** Per-task page-state mirror (the footnote-2 software bits). */
    struct Space
    {
        Vpn firstVpn = 0;
        std::vector<std::uint8_t> trapped;    //!< valid-bit trap set
        std::vector<std::uint8_t> registered; //!< page is Tapeworm's
        std::vector<Pfn> pfns;                //!< registered frame
    };

    Space &spaceFor(const Task &task);
    void handleMiss(const Task &task, Space &space, Vpn vpn, Pfn pfn);
    void armSuperpage(Space &space, Addr super_vpn, bool trapped);

    /** The single choke point for valid-bit trap transitions: flips
     *  space.trapped[idx] and keeps the per-frame filter counters
     *  in sync. */
    void setPageTrap(Space &space, std::uint64_t idx, bool on);

    TapewormTlbConfig cfg_;
    std::unique_ptr<CostBackend> backend_;
    const Cycles *clock_ = nullptr;
    unsigned pagesPer_;
    Cache tlb_;
    std::unordered_map<TaskId, Space> spaces_;
    TapewormTlbStats stats_;

    /** Per-frame filter: trappedRefs_[pfn] counts (space, page)
     *  pairs holding a trap on the frame; filterBits_ mirrors
     *  trappedRefs_[pfn] > 0, one bit per frame, page-granularity
     *  shift. Empty when cfg_.filterFrames == 0. Arena-backed under
     *  an ArenaScope, like the machine's granule bitmap. Note the
     *  bitmap is NOT padded: wide scans must stay exactly in range
     *  (simd::anyBitsInWords guarantees no overread). */
    std::pmr::vector<std::uint32_t> trappedRefs_{arenaResource()};
    std::pmr::vector<std::uint64_t> filterBits_{arenaResource()};
};

} // namespace tw

#endif // TW_CORE_TAPEWORM_TLB_HH
