/**
 * @file
 * Tapeworm II: the trap-driven cache simulator (the paper's primary
 * contribution).
 *
 * Tapeworm resides in the kernel of the simulated machine and is
 * driven by memory traps, not by an address trace. Locations with
 * traps set are exactly the locations NOT resident in the simulated
 * cache; a reference to one raises a trap, which Tapeworm counts as
 * a miss, then it clears the trap on the missing line (caching it),
 * runs tw_replace() to pick a displaced entry, and sets a trap on
 * the displaced line (Figure 1, right). Hits run at full hardware
 * speed and never reach the simulator.
 *
 * Features from Section 3.2 implemented here:
 *  - tw_register_page()/tw_remove_page() via the VM upcalls,
 *    including the shared-frame reference count (no new traps for
 *    additional mappings of a registered frame);
 *  - set sampling: traps are placed only on lines mapping to a
 *    sampled subset of cache sets, so the host filters non-sample
 *    references at zero cost and slowdown falls in proportion;
 *  - the Table 5 cost model, charging handler cycles back into
 *    simulated time (producing real time dilation);
 *  - interrupt masking: traps cannot be delivered while the CPU has
 *    interrupts disabled; lost kernel misses are counted, and the
 *    paper's "special code around these regions" compensation is a
 *    config switch.
 */

#ifndef TW_CORE_TAPEWORM_HH
#define TW_CORE_TAPEWORM_HH

#include <array>
#include <unordered_map>
#include <vector>

#include "base/types.hh"
#include "core/cost/cost_backend.hh"
#include "core/cost_model.hh"
#include "machine/phys_mem.hh"
#include "mem/cache.hh"
#include "os/sim_client.hh"
#include "os/task.hh"

namespace tw
{

/** Which reference kinds a simulated cache consumes. */
enum class SimCacheKind { Instruction, Data, Unified };

/** Human-readable cache-kind name. */
const char *simCacheKindName(SimCacheKind k);

/**
 * How the HOST machine treats stores to trapped memory. On the
 * DECstation 5000/200 the no-allocate-on-write policy rewrites the
 * ECC check bits on a store without a refill, which "causes ECC
 * traps to be cleared without invoking the Tapeworm miss handlers"
 * (Section 4.4) — the reason the authors' data-cache attempts were
 * hindered there. Machines that allocate on write (e.g. the
 * WWT's SPARC host [Reinhardt93]) raise the trap normally.
 */
enum class HostWritePolicy { AllocateOnWrite, NoAllocateOnWrite };

/** How the sampled sets are selected. */
enum class SampleMode
{
    RandomSets,   //!< uniform random subset (seeded)
    ConstantBits, //!< congruence class of the low index bits
};

/** Configuration of one Tapeworm cache simulation. */
struct TapewormConfig
{
    CacheConfig cache;

    /** Which references this simulation consumes. */
    SimCacheKind kind = SimCacheKind::Instruction;

    /** Host behaviour for stores to trapped locations (only
     *  relevant for Data/Unified simulations). */
    HostWritePolicy hostWrite = HostWritePolicy::AllocateOnWrite;

    /** Sample sampleNum/sampleDenom of the cache sets (1/1 = no
     *  sampling). */
    unsigned sampleNum = 1;
    unsigned sampleDenom = 1;
    /** Which sets form the sample (a new seed gives a new sample,
     *  "simply by changing the pattern of traps"). In ConstantBits
     *  mode the seed selects the congruence class. */
    std::uint64_t sampleSeed = 0;
    SampleMode sampleMode = SampleMode::RandomSets;

    /** Apply the paper's special-code compensation for references
     *  made with interrupts masked. */
    bool compensateMasked = true;

    /** Charge handler cycles into simulated time. */
    bool chargeCost = true;

    TrapCostModel cost;

    /** Who prices misses (default: cost as flat Table 5). */
    CostBackendConfig costBackend;

    double
    sampledFraction() const
    {
        return static_cast<double>(sampleNum)
               / static_cast<double>(sampleDenom);
    }
};

/** Counters Tapeworm accumulates during a run. */
struct TapewormStats
{
    /** Raw (un-scaled) misses per workload component. */
    std::array<Counter, kNumComponents> misses{};
    /** Misses broken down by reference kind. */
    std::array<Counter, 3> missesByKind{};
    /** Stores that silently cleared a trap without a miss being
     *  recorded (no-allocate-on-write hosts; Section 4.4). */
    Counter silentTrapClears = 0;
    /** Trap references that arrived with interrupts masked. */
    Counter maskedTrapRefs = 0;
    /** Of those, misses lost because compensation was off. */
    Counter lostMaskedMisses = 0;
    Counter trapsSet = 0;
    Counter trapsCleared = 0;
    Counter pagesRegistered = 0;
    Counter pagesRemoved = 0;
    Counter sharedRegistrations = 0;
    Counter dmaFlushedLines = 0;

    Counter
    totalMisses() const
    {
        Counter t = 0;
        for (Counter m : misses)
            t += m;
        return t;
    }
};

/**
 * The kernel-resident trap-driven simulator.
 */
class Tapeworm : public SimClient
{
  public:
    /**
     * @param phys the machine's physical memory (trap bits).
     * @param config simulation configuration.
     */
    Tapeworm(PhysMem &phys, const TapewormConfig &config);

    /** Folds trap-delivery tallies into the obs registry. */
    ~Tapeworm() override;

    // SimClient interface (the machine drives these).
    Cycles onRef(const Task &task, Addr va, Addr pa, bool intr_masked,
                 AccessKind kind = AccessKind::Fetch) override;
    void onPageMapped(const Task &task, Vpn vpn, Pfn pfn,
                      bool shared) override;
    void onPageRemoved(const Task &task, Vpn vpn, Pfn pfn,
                       bool last_mapping) override;
    void onDmaInvalidate(Pfn pfn) override;
    void bindClock(const Cycles *now) override { clock_ = now; }

    /** onRef()'s first act is the phys_.isTrapped(pa) test, so the
     *  machine may perform exactly that test inline and skip the
     *  call on hits — the trap bits ARE the dispatch filter. The
     *  kind mask narrows delivery further: on a set bit, onRef()
     *  only does anything for kinds the simulated cache consumes,
     *  plus stores when the no-allocate-on-write host silently
     *  clears their traps. Registration arms whole pages but only
     *  consumed kinds ever refill them, so e.g. an I-cache run's
     *  data pages stay trapped forever — the mask is what keeps
     *  those loads out of the dispatch path. */
    TrapFilterView
    trapFilter() const override
    {
        unsigned kinds = 0;
        for (AccessKind k : {AccessKind::Fetch, AccessKind::Load,
                             AccessKind::Store}) {
            if (consumes(k))
                kinds |= TrapFilterView::kindBit(k);
        }
        if (cfg_.hostWrite == HostWritePolicy::NoAllocateOnWrite)
            kinds |= TrapFilterView::kindBit(AccessKind::Store);
        return {phys_.rawBits(), phys_.granuleShift(), kinds};
    }

    const TapewormStats &stats() const { return stats_; }
    const TapewormConfig &config() const { return cfg_; }

    /** Raw misses scaled by the inverse sampling fraction — the set
     *  sampling estimator for total misses. */
    double estimatedTotalMisses() const;

    /** Estimated misses of one component (scaled like above). */
    double estimatedMisses(Component c) const;

    /** The flat (table5) handler cost per miss; time-dependent
     *  backends charge per-event via costBackend() instead. */
    Cycles missCost() const { return missCost_; }

    /** The backend pricing this run's misses. */
    const CostBackend &costBackend() const { return *backend_; }

    /** Is a set part of the sample? */
    bool setSampled(std::uint64_t set_index) const;

    /** The simulated cache structure (tests/diagnostics). */
    const Cache &cache() const { return cache_; }

    /** Number of pages currently registered. */
    std::size_t registeredPages() const { return pages_.size(); }

    /**
     * Verify the core trap/residence duality: for every registered
     * page, a sampled line has a trap set iff it is absent from the
     * simulated cache. Returns true when the invariant holds.
     */
    bool checkInvariants() const;

  private:
    /** Bookkeeping for one registered physical page. */
    struct PageReg
    {
        unsigned refs = 0; //!< registered mappings of this frame
        Vpn vpn = 0;       //!< first registered virtual page
        TaskId tid = kInvalidTid;
    };

    bool consumes(AccessKind kind) const;
    void handleMiss(const Task &task, Addr va, Addr pa,
                    AccessKind kind);
    void armPage(const PageReg &reg, Pfn pfn);
    LineRef lineRefFor(const PageReg &reg, Pfn pfn,
                       unsigned line_in_page) const;

    PhysMem &phys_;
    TapewormConfig cfg_;
    Cache cache_;
    std::unique_ptr<CostBackend> backend_;
    const Cycles *clock_ = nullptr;
    Cycles missCost_;
    unsigned granulesPerLine_;
    unsigned lineShift_;
    unsigned linesPerPage_;
    bool allSampled_;
    std::vector<bool> sampledSets_;
    std::unordered_map<Pfn, PageReg> pages_;
    TapewormStats stats_;
};

} // namespace tw

#endif // TW_CORE_TAPEWORM_HH
