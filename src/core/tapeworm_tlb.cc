#include "core/tapeworm_tlb.hh"

#include "base/bitops.hh"
#include "base/logging.hh"

namespace tw
{

TapewormTlb::TapewormTlb(const TapewormTlbConfig &config)
    : cfg_(config), tlb_(config.tlb)
{
    if (cfg_.filterFrames > 0) {
        trappedRefs_.assign(cfg_.filterFrames, 0);
        filterBits_.assign(divCeil(cfg_.filterFrames, std::uint64_t(64)),
                           0);
    }
    TW_ASSERT(cfg_.tlb.lineBytes >= kHostPageBytes
                  && cfg_.tlb.lineBytes % kHostPageBytes == 0,
              "the simulated page size must be a multiple of the "
              "host page size (%u) — page-valid-bit traps cannot be "
              "finer than a host page (Table 2)",
              kHostPageBytes);
    TW_ASSERT(cfg_.tlb.indexing == Indexing::Virtual
                  && cfg_.tlb.tagIncludesTask,
              "a TLB is indexed by virtual page and tagged by task");
    pagesPer_ = cfg_.pagesPerEntry();
    backend_ = makeCostBackend(cfg_.costBackend, cfg_.cost);
}

void
TapewormTlb::setPageTrap(Space &space, std::uint64_t idx, bool on)
{
    std::uint8_t bit = on ? 1 : 0;
    if (space.trapped[idx] == bit)
        return;
    space.trapped[idx] = bit;
    if (trappedRefs_.empty())
        return;
    Pfn pfn = space.pfns[idx];
    TW_ASSERT(pfn != kNoFrame, "trap transition on an unmapped page");
    auto f = static_cast<std::uint64_t>(pfn);
    TW_ASSERT(f < cfg_.filterFrames,
              "frame %d outside the filter bitmap (filterFrames=%llu "
              "undersized for this machine)", pfn,
              static_cast<unsigned long long>(cfg_.filterFrames));
    if (on) {
        if (trappedRefs_[f]++ == 0)
            filterBits_[f >> 6] |= 1ull << (f & 63);
    } else {
        TW_ASSERT(trappedRefs_[f] > 0, "filter refcount underflow");
        if (--trappedRefs_[f] == 0)
            filterBits_[f >> 6] &= ~(1ull << (f & 63));
    }
}

TrapFilterView
TapewormTlb::trapFilter() const
{
    if (filterBits_.empty())
        return {};
    return {filterBits_.data(), floorLog2(kHostPageBytes)};
}

void
TapewormTlb::armSuperpage(Space &space, Addr super_vpn, bool trapped)
{
    // Set or clear the valid-bit traps of every REGISTERED host
    // page covered by the simulated (super)page.
    Vpn first = super_vpn * pagesPer_;
    for (unsigned i = 0; i < pagesPer_; ++i) {
        Vpn vpn = first + i;
        if (vpn < space.firstVpn)
            continue;
        std::uint64_t idx = vpn - space.firstVpn;
        if (idx >= space.registered.size() || !space.registered[idx])
            continue;
        setPageTrap(space, idx, trapped);
    }
}

TapewormTlb::Space &
TapewormTlb::spaceFor(const Task &task)
{
    auto it = spaces_.find(task.tid);
    if (it == spaces_.end()) {
        Space space;
        space.firstVpn = task.pageTable.firstVpn();
        space.trapped.assign(task.pageTable.numPages(), 0);
        space.registered.assign(task.pageTable.numPages(), 0);
        space.pfns.assign(task.pageTable.numPages(), kNoFrame);
        it = spaces_.emplace(task.tid, std::move(space)).first;
    }
    return it->second;
}

void
TapewormTlb::onPageMapped(const Task &task, Vpn vpn, Pfn pfn,
                          bool shared)
{
    // TLB entries are per address space: a shared frame still needs
    // its own trap in each task's page table.
    (void)shared;
    ++stats_.pagesRegistered;
    Space &space = spaceFor(task);
    std::uint64_t idx = vpn - space.firstVpn;
    TW_ASSERT(idx < space.trapped.size(), "vpn outside task window");
    space.registered[idx] = 1;
    space.pfns[idx] = pfn;
    // If the covering (super)page translation is already resident,
    // the new host page is reachable without a miss: joining an
    // existing mapping must not arm a spurious trap (which would
    // also duplicate the TLB entry on the next touch).
    LineRef covering;
    covering.vaLine = vpn / pagesPer_;
    covering.tid = task.tid;
    setPageTrap(space, idx, !tlb_.contains(covering));
}

void
TapewormTlb::onPageRemoved(const Task &task, Vpn vpn, Pfn pfn,
                           bool last_mapping)
{
    (void)pfn;
    (void)last_mapping;
    ++stats_.pagesRemoved;
    auto it = spaces_.find(task.tid);
    TW_ASSERT(it != spaces_.end(), "removal from unknown space");
    Space &space = it->second;
    std::uint64_t idx = vpn - space.firstVpn;
    TW_ASSERT(space.registered[idx], "removing unregistered page");
    setPageTrap(space, idx, false);
    space.registered[idx] = 0;
    space.pfns[idx] = kNoFrame;
    // Flush the covering entry from the simulated TLB, as
    // tw_remove_page() flushes removed pages from the simulated
    // structure; sibling host pages under the same (super)page must
    // trap again to re-establish the mapping.
    Addr super_vpn = vpn / pagesPer_;
    LineRef ref;
    ref.vaLine = super_vpn;
    ref.tid = task.tid;
    if (tlb_.contains(ref)) {
        tlb_.flushVirtPage(task.tid, super_vpn, cfg_.tlb.lineBytes);
        armSuperpage(space, super_vpn, true);
    }
}

void
TapewormTlb::handleMiss(const Task &task, Space &space, Vpn vpn,
                        Pfn pfn)
{
    ++stats_.misses[static_cast<unsigned>(task.component)];
    Addr super_vpn = vpn / pagesPer_;
    // The whole (super)page becomes resident: clear its traps.
    armSuperpage(space, super_vpn, false);

    LineRef ref;
    ref.vaLine = super_vpn;
    ref.paLine = static_cast<Addr>(pfn) / pagesPer_;
    ref.tid = task.tid;
    auto displaced = tlb_.insert(ref);
    if (!displaced)
        return;

    // Re-arm the valid-bit traps of the displaced mapping so its
    // next use misses again.
    auto it = spaces_.find(displaced->tid);
    TW_ASSERT(it != spaces_.end(), "displaced entry of unknown task");
    armSuperpage(it->second, displaced->tagLine, true);
}

Cycles
TapewormTlb::onRef(const Task &task, Addr va, Addr pa,
                   bool intr_masked, AccessKind kind)
{
    // A TLB translates fetches, loads and stores alike; pa and kind
    // only matter to the cost backend.
    auto it = spaces_.find(task.tid);
    if (it == spaces_.end())
        return 0; // task not simulated
    Space &space = it->second;
    std::uint64_t idx = va / kHostPageBytes - space.firstVpn;
    if (idx >= space.trapped.size() || !space.trapped[idx])
        [[likely]]
        return 0;

    if (intr_masked) {
        ++stats_.maskedTrapRefs;
        if (!cfg_.compensateMasked) {
            ++stats_.lostMaskedMisses;
            return 0;
        }
    }
    handleMiss(task, space, va / kHostPageBytes, space.pfns[idx]);
    if (!cfg_.chargeCost)
        return 0;
    MissEvent ev;
    ev.kind = MissKind::Tlb;
    ev.pa = pa;
    ev.isWrite = kind == AccessKind::Store;
    ev.now = clock_ ? *clock_ : 0;
    return backend_->missCycles(ev);
}

bool
TapewormTlb::checkInvariants() const
{
    for (const auto &[tid, space] : spaces_) {
        for (std::size_t i = 0; i < space.registered.size(); ++i) {
            if (!space.registered[i])
                continue;
            LineRef ref;
            ref.vaLine = (space.firstVpn + i) / pagesPer_;
            ref.tid = tid;
            bool resident = tlb_.contains(ref);
            bool trapped = space.trapped[i] != 0;
            if (trapped == resident)
                return false;
        }
    }
    return true;
}

} // namespace tw
