#include "core/multilevel.hh"

#include <cmath>

#include "base/bitops.hh"
#include "base/logging.hh"

namespace tw
{

TapewormMultiLevel::TapewormMultiLevel(PhysMem &phys,
                                       const MultiLevelConfig &config)
    : phys_(phys), cfg_(config), l1_(config.l1), l2_(config.l2)
{
    cfg_.l1.validate();
    cfg_.l2.validate();
    TW_ASSERT(cfg_.l2.sizeBytes >= cfg_.l1.sizeBytes,
              "L2 must be at least as large as L1");
    TW_ASSERT(cfg_.l1.lineBytes == cfg_.l2.lineBytes,
              "this implementation keeps one line size across "
              "levels");
    TW_ASSERT(cfg_.l1.indexing == cfg_.l2.indexing,
              "levels must agree on indexing");
    TW_ASSERT(cfg_.l1.lineBytes >= phys.granuleBytes(),
              "line below host trap granule");

    lineShift_ = floorLog2(cfg_.l1.lineBytes);
    linesPerPage_ = kHostPageBytes >> lineShift_;

    granulesPerLine_ = cfg_.l1.lineBytes / phys.granuleBytes();
    unsigned base_instr =
        cfg_.cost.missInstructions(cfg_.l1.assoc, granulesPerLine_);
    l1HitL2Cost_ = static_cast<Cycles>(
        std::llround((base_instr + cfg_.l2SearchInstr)
                     * cfg_.cost.cyclesPerInstr));
    l2MissCost_ = static_cast<Cycles>(std::llround(
        (base_instr + cfg_.l2SearchInstr + cfg_.l2ReplaceInstr)
        * cfg_.cost.cyclesPerInstr));
    backend_ = makeCostBackend(cfg_.costBackend, cfg_.cost);
}

void
TapewormMultiLevel::armPage(const PageReg &reg, Pfn pfn)
{
    Addr page_pa = static_cast<Addr>(pfn) * kHostPageBytes;
    (void)reg;
    phys_.setTrap(page_pa, kHostPageBytes);
}

void
TapewormMultiLevel::onPageMapped(const Task &task, Vpn vpn, Pfn pfn,
                                 bool shared)
{
    ++stats_.pagesRegistered;
    auto it = pages_.find(pfn);
    if (it != pages_.end()) {
        TW_ASSERT(shared, "frame already registered");
        ++it->second.refs;
        return;
    }
    PageReg reg;
    reg.refs = 1;
    reg.vpn = vpn;
    reg.tid = task.tid;
    armPage(reg, pfn);
    pages_.emplace(pfn, reg);
}

void
TapewormMultiLevel::onPageRemoved(const Task &task, Vpn vpn, Pfn pfn,
                                  bool last_mapping)
{
    (void)task;
    (void)vpn;
    (void)last_mapping;
    ++stats_.pagesRemoved;
    auto it = pages_.find(pfn);
    TW_ASSERT(it != pages_.end(), "removing unregistered frame");
    if (--it->second.refs > 0)
        return;
    l1_.flushPhysPage(static_cast<Addr>(pfn), kHostPageBytes);
    l2_.flushPhysPage(static_cast<Addr>(pfn), kHostPageBytes);
    phys_.clearTrap(static_cast<Addr>(pfn) * kHostPageBytes,
                    kHostPageBytes);
    pages_.erase(it);
}

void
TapewormMultiLevel::onDmaInvalidate(Pfn pfn)
{
    auto it = pages_.find(pfn);
    if (it == pages_.end())
        return;
    l1_.flushPhysPage(static_cast<Addr>(pfn), kHostPageBytes);
    l2_.flushPhysPage(static_cast<Addr>(pfn), kHostPageBytes);
    armPage(it->second, pfn);
}

bool
TapewormMultiLevel::handleMiss(const Task &task, Addr va, Addr pa,
                               AccessKind kind)
{
    bool l2_hit = true;
    unsigned comp = static_cast<unsigned>(task.component);
    ++stats_.l1Misses[comp];

    Addr line_pa = alignDown(pa, cfg_.l1.lineBytes);
    phys_.clearTrap(line_pa, cfg_.l1.lineBytes);

    LineRef ref;
    ref.vaLine = va >> lineShift_;
    ref.paLine = pa >> lineShift_;
    ref.tid = task.tid;
    bool is_store = kind == AccessKind::Store;

    // Software search of the L2 model (the "hybrid" part of
    // trap-driven multi-level simulation: only L1 misses pay it).
    if (!l2_.contains(ref)) {
        l2_hit = false;
        ++stats_.l2Misses[comp];
        auto l2_victim = l2_.insert(ref, is_store);
        if (l2_victim) {
            // Inclusion: the line leaving L2 must leave L1 too; if
            // it was L1-resident its trap needs re-arming.
            if (l1_.flushPhysLine(l2_victim->paLine) > 0)
                ++stats_.backInvalidates;
            Addr vpa = l2_victim->paLine << lineShift_;
            if (pages_.count(
                    static_cast<Pfn>(vpa / kHostPageBytes))) {
                phys_.setTrap(vpa, cfg_.l1.lineBytes);
            }
        }
    }

    auto l1_victim = l1_.insert(ref, is_store);
    if (l1_victim) {
        // The displaced L1 line stays in L2 (inclusive); it must
        // trap again so its next use can be counted as an L1 miss.
        Addr vpa = l1_victim->paLine << lineShift_;
        if (pages_.count(static_cast<Pfn>(vpa / kHostPageBytes)))
            phys_.setTrap(vpa, cfg_.l1.lineBytes);
    }
    return l2_hit;
}

Cycles
TapewormMultiLevel::onRef(const Task &task, Addr va, Addr pa,
                          bool intr_masked, AccessKind kind)
{
    if (!phys_.isTrapped(pa)) [[likely]]
        return 0;
    if (intr_masked) {
        ++stats_.maskedTrapRefs;
        if (!cfg_.compensateMasked) {
            ++stats_.lostMaskedMisses;
            return 0;
        }
    }
    bool l2_hit = handleMiss(task, va, pa, kind);
    if (!cfg_.chargeCost)
        return 0;
    MissEvent ev;
    ev.kind = l2_hit ? MissKind::L2Hit : MissKind::Fill;
    ev.pa = alignDown(pa, cfg_.l1.lineBytes);
    ev.isWrite = kind == AccessKind::Store;
    ev.assoc = cfg_.l1.assoc;
    ev.granulesPerLine = granulesPerLine_;
    ev.lineBytes = cfg_.l1.lineBytes;
    ev.extraInstr = l2_hit
                        ? cfg_.l2SearchInstr
                        : cfg_.l2SearchInstr + cfg_.l2ReplaceInstr;
    ev.now = clock_ ? *clock_ : 0;
    return backend_->missCycles(ev);
}

bool
TapewormMultiLevel::checkInvariants() const
{
    // (b) inclusion first: every L1 line present in L2.
    for (const auto &info : l1_.validLines()) {
        LineRef ref{info.tagLine, info.paLine, info.tid};
        if (cfg_.l1.indexing == Indexing::Physical)
            ref.vaLine = info.paLine;
        if (!l2_.contains(ref))
            return false;
    }
    // (a) trap iff absent from L1 (per registered line).
    std::unordered_map<Addr, bool> l1_lines;
    for (const auto &info : l1_.validLines())
        l1_lines[info.paLine] = true;
    for (const auto &[pfn, reg] : pages_) {
        Addr page_pa = static_cast<Addr>(pfn) * kHostPageBytes;
        for (unsigned l = 0; l < linesPerPage_; ++l) {
            Addr line_pa =
                page_pa + (static_cast<Addr>(l) << lineShift_);
            bool trapped =
                phys_.anyTrapped(line_pa, cfg_.l1.lineBytes);
            bool resident = l1_lines.count(line_pa >> lineShift_);
            if (trapped == resident)
                return false;
        }
    }
    return true;
}

} // namespace tw
