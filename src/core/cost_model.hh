/**
 * @file
 * The Tapeworm miss-handler cost model (Table 5 of the paper).
 *
 * The optimized assembly handler on the DECstation 5000/200 costs
 * 246 cycles for a direct-mapped cache with 4-word lines, broken
 * down as: kernel trap and return 53 instructions, tw_cache_miss()
 * 23, tw_replace() 20, tw_set_trap() 35, tw_clear_trap() 6. Higher
 * associativity "slightly increases the time in tw_replace()",
 * longer lines "increase the cost of tw_set_trap() and
 * tw_clear_trap()", and cache size has little effect (Section 4.1).
 *
 * Section 4.3 estimates that a cleaner memory-ASIC interface would
 * cut the handler to ~50 cycles; that "ideal hardware" variant is
 * provided for the portability/what-if bench.
 */

#ifndef TW_CORE_COST_MODEL_HH
#define TW_CORE_COST_MODEL_HH

#include <cmath>
#include <cstdint>

#include "base/logging.hh"
#include "base/types.hh"

namespace tw
{

/**
 * Instruction-level model of the Tapeworm miss handler.
 */
struct TrapCostModel
{
    unsigned kernelTrapReturn = 53;
    unsigned twCacheMiss = 23;
    unsigned twReplaceBase = 20;
    unsigned twReplacePerWay = 4;   //!< extra per way beyond the first
    unsigned twSetTrapBase = 35;
    unsigned twSetTrapPerGranule = 8;  //!< extra per 4-word granule
    unsigned twClearTrapBase = 6;
    unsigned twClearTrapPerGranule = 2;

    /** Effective cycles per handler instruction (the 137-instruction
     *  handler takes 246 cycles on the R3000). */
    double cyclesPerInstr = 246.0 / 137.0;

    /** TLB-mode handler cost: a simulated TLB miss costs a software
     *  refill plus Tapeworm bookkeeping. */
    Cycles tlbMissCycles = 300;

    /** Handler instructions for the given geometry. Both arguments
     *  are at least 1 for any real cache; zero would wrap the
     *  unsigned per-way/per-granule terms, so it is rejected as an
     *  unusable configuration (the CacheConfig::tlb(0) precedent:
     *  fail at config time, loudly). */
    unsigned
    missInstructions(unsigned assoc, unsigned granules_per_line) const
    {
        if (assoc == 0 || granules_per_line == 0)
            fatal("cost model: associativity (%u) and granules per "
                  "line (%u) must both be at least 1",
                  assoc, granules_per_line);
        unsigned extra_g = granules_per_line - 1;
        return kernelTrapReturn + twCacheMiss
               + twReplaceBase + twReplacePerWay * (assoc - 1)
               + twSetTrapBase + twSetTrapPerGranule * extra_g
               + twClearTrapBase + twClearTrapPerGranule * extra_g;
    }

    /** Handler cycles for the given geometry (246 for DM, 4-word
     *  lines — Table 5). */
    Cycles
    missCycles(unsigned assoc, unsigned granules_per_line) const
    {
        return static_cast<Cycles>(std::llround(
            missInstructions(assoc, granules_per_line)
            * cyclesPerInstr));
    }

    /** The ~50-cycle handler a better memory-ASIC interface would
     *  allow (Section 4.3). */
    static TrapCostModel
    idealHardware()
    {
        TrapCostModel m;
        m.kernelTrapReturn = 12;
        m.twCacheMiss = 6;
        m.twReplaceBase = 5;
        m.twReplacePerWay = 2;
        m.twSetTrapBase = 4;
        m.twSetTrapPerGranule = 1;
        m.twClearTrapBase = 1;
        m.twClearTrapPerGranule = 1;
        m.cyclesPerInstr = 246.0 / 137.0;
        return m;
    }
};

} // namespace tw

#endif // TW_CORE_COST_MODEL_HH
