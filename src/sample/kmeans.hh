/**
 * @file
 * Deterministic k-means for interval feature vectors.
 *
 * Single-threaded Lloyd iterations over k-means++ seeding from an
 * explicit Rng seed: the assignment is a pure function of (points,
 * k, seed), bit-identical across runs, hosts and thread counts —
 * the same determinism contract every other seeded component of the
 * simulator honors. Ties (equidistant centroids, equal-count argmax)
 * always resolve to the lowest index.
 */

#ifndef TW_SAMPLE_KMEANS_HH
#define TW_SAMPLE_KMEANS_HH

#include <cstdint>
#include <vector>

namespace tw
{

struct KMeansResult
{
    /** Cluster index per point. */
    std::vector<unsigned> assignment;
    /** Final centroids (k or fewer if points < k). */
    std::vector<std::vector<double>> centroids;
    /** Lloyd iterations performed. */
    unsigned iterations = 0;
};

/**
 * Cluster @p points into at most @p k groups. Points must share a
 * dimension; k is clamped to the point count; empty input yields an
 * empty result.
 */
KMeansResult kmeansCluster(
    const std::vector<std::vector<double>> &points, unsigned k,
    std::uint64_t seed, unsigned max_iterations = 64);

} // namespace tw

#endif // TW_SAMPLE_KMEANS_HH
