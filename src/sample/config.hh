/**
 * @file
 * Representative-interval sampling configuration and outcome.
 *
 * The sampling subsystem estimates a run's miss count from a small
 * set of representative reference-stream intervals instead of
 * simulating every reference (SimPoint-style; Bueno et al., arXiv
 * 2402.00649). SampleConfig travels inside RunSpec — it is part of
 * the canonical spec text when (and only when) enabled, so sampled
 * and unsampled runs never collide in the ResultCache and a spec
 * with sampling disabled serializes byte-identically to a spec from
 * before the subsystem existed.
 */

#ifndef TW_SAMPLE_CONFIG_HH
#define TW_SAMPLE_CONFIG_HH

#include <cstdint>

namespace tw
{

/**
 * Knobs of the representative-interval estimator.
 *
 * `warmupRefs` selects between the two state-reconstruction modes:
 *
 *  - 0 (default): *exact* reconstruction. For a direct-mapped
 *    trap-driven cache the resident line of a set is always the most
 *    recently referenced line mapping to it (inserts happen only on
 *    misses, and a hit means the referenced line already is the
 *    resident line), so the profiling pass can rebuild the precise
 *    cache state at every interval boundary from per-line last-touch
 *    stamps. Interval miss counts are then exact and the reported
 *    confidence interval covers pure sampling error.
 *  - > 0: classic warmup. Each simulated interval is preceded by
 *    that many uncounted references replayed into an initially empty
 *    cache — the conventional SimPoint recipe, kept as the fallback
 *    for geometries where exact reconstruction does not hold.
 */
struct SampleConfig
{
    /** Master switch; false keeps every byte of spec text, cache
     *  key and outcome identical to the pre-sampling world. */
    bool enabled = false;

    /** References per interval (the clustering granule). */
    std::uint64_t intervalRefs = 16384;

    /** Uncounted warmup references before each counted interval;
     *  0 = exact boundary-state reconstruction (see above). */
    std::uint64_t warmupRefs = 0;

    /** k for the k-means clustering of interval feature vectors. */
    unsigned clusters = 8;

    /** Intervals simulated per cluster (>= 2 gives a per-cluster
     *  variance estimate and therefore a meaningful CI). */
    unsigned perCluster = 2;

    /** Clustering / representative-selection seed. Fixed per spec,
     *  NOT per trial: the interval selection is part of the
     *  experiment design, while trial seeds redraw set samples and
     *  page allocations around it. */
    std::uint64_t seed = 0x51317;

    /** Floor on the reported relative CI half-width (guards against
     *  overconfident intervals when within-cluster variance
     *  degenerates to zero); 0 disables. */
    double ciRelFloor = 0.0;

    bool
    operator==(const SampleConfig &o) const
    {
        return enabled == o.enabled && intervalRefs == o.intervalRefs
               && warmupRefs == o.warmupRefs && clusters == o.clusters
               && perCluster == o.perCluster && seed == o.seed
               && ciRelFloor == o.ciRelFloor;
    }
};

/**
 * What a sampled run measured about its own sampling. Emitted into
 * the canonical outcome JSON only when `used` is true, so unsampled
 * outcomes stay byte-identical to the pre-sampling schema.
 */
struct SampleOutcome
{
    /** The estimate actually came from the interval estimator (the
     *  run was eligible); false = full simulation ran. */
    bool used = false;

    /** Intervals the reference stream divides into. */
    std::uint64_t intervalsTotal = 0;

    /** Intervals fed through the cache model (exact endpoints plus
     *  cluster representatives). */
    std::uint64_t intervalsSimulated = 0;

    /** References fed through the cache model (counted + warmup). */
    std::uint64_t refsSimulated = 0;

    /** References a full simulation of the stream would have fed. */
    std::uint64_t refsTotal = 0;

    /** Student-t half-width (95%) of the miss estimate, in misses,
     *  after inverse-sampling-fraction scaling and the ciRelFloor. */
    double ciHalfWidth = 0.0;
};

/**
 * TW_SAMPLE / TW_SAMPLE_* environment knobs, read by experiment
 * grids (and set by `bench_driver --sample`). TW_SAMPLE unset or
 * "0" returns a default (disabled) config — the bit-identical path.
 * TW_SAMPLE_INTERVAL, TW_SAMPLE_WARMUP, TW_SAMPLE_CLUSTERS and
 * TW_SAMPLE_PER_CLUSTER override the corresponding fields.
 */
SampleConfig sampleConfigFromEnv();

/** TW_NO_DMA set and nonzero: experiment grids zero
 *  SystemConfig::dmaFlushPeriod. DMA frame recycling is an OS-level
 *  perturbation the stream-driven estimator deliberately does not
 *  model (it is part of the eligibility gate), so sampled-vs-full
 *  comparisons run both sides with it off. */
bool envNoDma();

} // namespace tw

#endif // TW_SAMPLE_CONFIG_HH
