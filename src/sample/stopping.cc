#include "sample/stopping.hh"

#include <cmath>

namespace tw
{

namespace
{

struct TRow
{
    unsigned df;
    double t90, t95, t99;
};

// Two-sided critical values (alpha/2 = 0.05, 0.025, 0.005).
const TRow kTTable[] = {
    {1, 6.314, 12.706, 63.657}, {2, 2.920, 4.303, 9.925},
    {3, 2.353, 3.182, 5.841},   {4, 2.132, 2.776, 4.604},
    {5, 2.015, 2.571, 4.032},   {6, 1.943, 2.447, 3.707},
    {7, 1.895, 2.365, 3.499},   {8, 1.860, 2.306, 3.355},
    {9, 1.833, 2.262, 3.250},   {10, 1.812, 2.228, 3.169},
    {11, 1.796, 2.201, 3.106},  {12, 1.782, 2.179, 3.055},
    {13, 1.771, 2.160, 3.012},  {14, 1.761, 2.145, 2.977},
    {15, 1.753, 2.131, 2.947},  {16, 1.746, 2.120, 2.921},
    {17, 1.740, 2.110, 2.898},  {18, 1.734, 2.101, 2.878},
    {19, 1.729, 2.093, 2.861},  {20, 1.725, 2.086, 2.845},
    {21, 1.721, 2.080, 2.831},  {22, 1.717, 2.074, 2.819},
    {23, 1.714, 2.069, 2.807},  {24, 1.711, 2.064, 2.797},
    {25, 1.708, 2.060, 2.787},  {26, 1.706, 2.056, 2.779},
    {27, 1.703, 2.052, 2.771},  {28, 1.701, 2.048, 2.763},
    {29, 1.699, 2.045, 2.756},  {30, 1.697, 2.042, 2.750},
    {40, 1.684, 2.021, 2.704},  {60, 1.671, 2.000, 2.660},
    {120, 1.658, 1.980, 2.617},
};

// The df -> infinity (normal) limit.
const TRow kTInf = {0, 1.645, 1.960, 2.576};

double
rowValue(const TRow &row, double confidence)
{
    if (confidence >= 0.97)
        return row.t99;
    if (confidence >= 0.925)
        return row.t95;
    return row.t90;
}

} // anonymous namespace

double
tCritical(unsigned df, double confidence)
{
    if (df < 1)
        df = 1;
    constexpr std::size_t n = sizeof(kTTable) / sizeof(kTTable[0]);
    if (df >= kTTable[n - 1].df + 1) {
        // Interpolate between 120 and infinity in 1/df.
        double lo = rowValue(kTTable[n - 1], confidence);
        double hi = rowValue(kTInf, confidence);
        double w = 120.0 / static_cast<double>(df);
        return hi + (lo - hi) * w;
    }
    const TRow *prev = &kTTable[0];
    for (std::size_t i = 0; i < n; ++i) {
        if (kTTable[i].df == df)
            return rowValue(kTTable[i], confidence);
        if (kTTable[i].df > df) {
            // Linear interpolation in 1/df between bracketing rows.
            double x = 1.0 / static_cast<double>(df);
            double x0 = 1.0 / static_cast<double>(prev->df);
            double x1 = 1.0 / static_cast<double>(kTTable[i].df);
            double y0 = rowValue(*prev, confidence);
            double y1 = rowValue(kTTable[i], confidence);
            return y1 + (y0 - y1) * (x - x1) / (x0 - x1);
        }
        prev = &kTTable[i];
    }
    return rowValue(kTInf, confidence);
}

double
tHalfWidth(const RunningStat &rs, double confidence)
{
    if (rs.count() < 2)
        return 0.0;
    double se = std::sqrt(rs.variance()
                          / static_cast<double>(rs.count()));
    return tCritical(static_cast<unsigned>(rs.count() - 1),
                     confidence)
           * se;
}

double
tRelHalfWidth(const RunningStat &rs, double confidence)
{
    double mean = rs.mean();
    if (mean == 0.0)
        return 0.0;
    return tHalfWidth(rs, confidence) / std::fabs(mean);
}

} // namespace tw
