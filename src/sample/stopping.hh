/**
 * @file
 * Student-t confidence machinery shared by the interval estimator
 * and the adaptive trial-stopping rule.
 *
 * Tables 7-10 of the paper report trial variation as mean and
 * standard deviation; the sampling subsystem turns the same
 * accumulators (Welford, base/stats.hh) into confidence intervals:
 * half-width = t(df, conf) * s / sqrt(n). The critical values come
 * from the standard two-sided t table with linear interpolation in
 * 1/df above 30 degrees of freedom.
 */

#ifndef TW_SAMPLE_STOPPING_HH
#define TW_SAMPLE_STOPPING_HH

#include "base/stats.hh"

namespace tw
{

/**
 * Two-sided Student-t critical value for @p df degrees of freedom
 * at @p confidence. Supported confidence levels are 0.90, 0.95 and
 * 0.99 (the nearest is used); df < 1 is treated as 1, df > 120 as
 * the normal limit.
 */
double tCritical(unsigned df, double confidence = 0.95);

/** Half-width of the t confidence interval for the mean of @p rs
 *  (0 when fewer than two observations). */
double tHalfWidth(const RunningStat &rs, double confidence = 0.95);

/** tHalfWidth relative to |mean| (0 when the mean is 0). */
double tRelHalfWidth(const RunningStat &rs, double confidence = 0.95);

} // namespace tw

#endif // TW_SAMPLE_STOPPING_HH
