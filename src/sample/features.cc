#include "sample/features.hh"

#include "base/bitops.hh"
#include "base/random.hh"

namespace tw
{

namespace
{

unsigned
shiftFor(std::uint32_t bytes)
{
    unsigned s = 0;
    while ((1u << s) < bytes)
        ++s;
    return s;
}

} // anonymous namespace

FeatureAccum::FeatureAccum(Addr text_base, std::uint32_t line_bytes)
    : base_(text_base), lineShift_(shiftFor(line_bytes))
{
}

void
FeatureAccum::add(Addr va)
{
    // Page bin: hash the text-relative page number so workloads
    // with more than kFeaturePageBins pages spread instead of
    // aliasing neighbours together.
    std::uint64_t page = (va - base_) >> 12;
    std::uint64_t h = page;
    h = splitMix64(h);
    ++counts_[h % kFeaturePageBins];

    // Stride bin: log2 of the line-distance from the previous
    // fetch. Bin 0 = same/adjacent line (sequential execution),
    // higher bins = progressively longer jumps (loop backedges,
    // excursions).
    std::uint64_t line = va >> lineShift_;
    if (prevLine_ != ~0ull) {
        std::uint64_t d = line > prevLine_ ? line - prevLine_
                                           : prevLine_ - line;
        unsigned bin = 0;
        while (d > 1 && bin + 1 < kFeatureStrideBins) {
            d >>= 1;
            ++bin;
        }
        ++counts_[kFeaturePageBins + bin];
    }
    prevLine_ = line;
}

std::vector<double>
FeatureAccum::finish()
{
    std::vector<double> v(kFeatureDims, 0.0);
    std::uint64_t total = 0;
    for (std::uint64_t c : counts_)
        total += c;
    if (total > 0) {
        for (unsigned i = 0; i < kFeatureDims; ++i) {
            v[i] = static_cast<double>(counts_[i])
                   / static_cast<double>(total);
        }
    }
    for (auto &c : counts_)
        c = 0;
    // prevLine_ deliberately persists: strides are continuous across
    // interval boundaries.
    return v;
}

} // namespace tw
