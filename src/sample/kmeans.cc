#include "sample/kmeans.hh"

#include <limits>

#include "base/logging.hh"
#include "base/random.hh"

namespace tw
{

namespace
{

double
dist2(const std::vector<double> &a, const std::vector<double> &b)
{
    double d = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        double x = a[i] - b[i];
        d += x * x;
    }
    return d;
}

} // anonymous namespace

KMeansResult
kmeansCluster(const std::vector<std::vector<double>> &points,
              unsigned k, std::uint64_t seed,
              unsigned max_iterations)
{
    KMeansResult res;
    const std::size_t n = points.size();
    if (n == 0)
        return res;
    if (k > n)
        k = static_cast<unsigned>(n);
    if (k == 0)
        k = 1;
    const std::size_t dims = points[0].size();
    for (const auto &p : points)
        TW_ASSERT(p.size() == dims, "kmeans: ragged point set");

    // k-means++ seeding: first centroid uniform, the rest drawn
    // proportionally to squared distance from the nearest chosen
    // centroid. All draws come from one seeded Rng in a fixed
    // order, so the seeding is deterministic.
    Rng pick(mixSeed(seed, 0x5eedc1));
    res.centroids.reserve(k);
    res.centroids.push_back(points[pick.below(n)]);
    std::vector<double> best(n,
                             std::numeric_limits<double>::infinity());
    while (res.centroids.size() < k) {
        const auto &latest = res.centroids.back();
        double total = 0.0;
        for (std::size_t i = 0; i < n; ++i) {
            double d = dist2(points[i], latest);
            if (d < best[i])
                best[i] = d;
            total += best[i];
        }
        std::size_t chosen = 0;
        if (total > 0.0) {
            double r = pick.uniform() * total;
            double acc = 0.0;
            for (std::size_t i = 0; i < n; ++i) {
                acc += best[i];
                if (r < acc) {
                    chosen = i;
                    break;
                }
            }
        } else {
            chosen = pick.below(n);
        }
        res.centroids.push_back(points[chosen]);
    }

    // Lloyd iterations, serial and order-stable.
    res.assignment.assign(n, 0);
    for (unsigned iter = 0; iter < max_iterations; ++iter) {
        bool moved = false;
        for (std::size_t i = 0; i < n; ++i) {
            unsigned bestC = 0;
            double bestD = std::numeric_limits<double>::infinity();
            for (unsigned c = 0; c < res.centroids.size(); ++c) {
                double d = dist2(points[i], res.centroids[c]);
                if (d < bestD) {
                    bestD = d;
                    bestC = c;
                }
            }
            if (res.assignment[i] != bestC) {
                res.assignment[i] = bestC;
                moved = true;
            }
        }
        res.iterations = iter + 1;
        if (!moved && iter > 0)
            break;

        // Recompute centroids; an emptied cluster re-seeds to the
        // point farthest from its current assignment's centroid
        // (lowest index on ties) so k stays meaningful.
        std::vector<std::vector<double>> sums(
            res.centroids.size(), std::vector<double>(dims, 0.0));
        std::vector<std::uint64_t> counts(res.centroids.size(), 0);
        for (std::size_t i = 0; i < n; ++i) {
            unsigned c = res.assignment[i];
            ++counts[c];
            for (std::size_t d = 0; d < dims; ++d)
                sums[c][d] += points[i][d];
        }
        for (unsigned c = 0; c < res.centroids.size(); ++c) {
            if (counts[c] == 0) {
                std::size_t far = 0;
                double farD = -1.0;
                for (std::size_t i = 0; i < n; ++i) {
                    double d = dist2(
                        points[i],
                        res.centroids[res.assignment[i]]);
                    if (d > farD) {
                        farD = d;
                        far = i;
                    }
                }
                res.centroids[c] = points[far];
                continue;
            }
            for (std::size_t d = 0; d < dims; ++d) {
                res.centroids[c][d] =
                    sums[c][d] / static_cast<double>(counts[c]);
            }
        }
        if (!moved)
            break;
    }
    return res;
}

} // namespace tw
