#include "sample/interval_sim.hh"

#include <algorithm>
#include <cmath>
#include <vector>

#include "base/logging.hh"
#include "mem/set_sample.hh"
#include "sample/stopping.hh"

namespace tw
{

namespace
{

constexpr unsigned kBatch = 4096;

/** The single task of an eligible workload; the value only has to
 *  be self-consistent between boundary inserts and replayed refs. */
constexpr TaskId kSampleTid = 4;

unsigned
lineShiftOf(std::uint32_t bytes)
{
    unsigned s = 0;
    while ((1u << s) < bytes)
        ++s;
    return s;
}

/**
 * Replay one representative interval and return its miss count
 * restricted to the sampled sets.
 */
double
simulateRep(const SampleRep &rep, Cache &cache,
            const std::vector<bool> &sampled, bool all_sampled,
            const SamplePlan &plan)
{
    const unsigned shift = lineShiftOf(plan.lineBytes);
    const std::uint64_t num_sets = cache.config().numSets();
    cache.flushAll();

    if (!rep.boundary.empty()) {
        // Exact mode: the resident line of each set is the most
        // recently referenced line mapping to it (direct-mapped
        // trap-driven coupling; see profile.hh). One pass over the
        // text lines finds each set's argmax stamp.
        std::vector<std::uint32_t> bestStamp(num_sets, 0);
        std::vector<std::uint64_t> bestLine(num_sets, 0);
        for (std::size_t i = 0; i < plan.textLines; ++i) {
            std::uint32_t stamp = rep.boundary[i];
            if (stamp == 0)
                continue;
            std::uint64_t va_line = plan.baseLine + i;
            std::uint64_t set = va_line & (num_sets - 1);
            if (stamp > bestStamp[set]) {
                bestStamp[set] = stamp;
                bestLine[set] = va_line;
            }
        }
        for (std::uint64_t s = 0; s < num_sets; ++s) {
            if (bestStamp[s] == 0)
                continue;
            if (!all_sampled && !sampled[s])
                continue;
            cache.insert(LineRef{bestLine[s], bestLine[s],
                                 kSampleTid});
        }
    }

    std::unique_ptr<RefStream> stream = rep.stream->clone();
    Addr buf[kBatch];
    double misses = 0.0;

    auto replay = [&](std::uint64_t refs, bool count) {
        std::uint64_t done = 0;
        while (done < refs) {
            unsigned n = static_cast<unsigned>(
                std::min<std::uint64_t>(kBatch, refs - done));
            stream->nextBatch(buf, n);
            for (unsigned i = 0; i < n; ++i) {
                LineRef ref{buf[i] >> shift, buf[i] >> shift,
                            kSampleTid};
                std::uint64_t set = ref.vaLine & (num_sets - 1);
                if (!all_sampled && !sampled[set])
                    continue;
                if (!cache.contains(ref)) {
                    cache.insert(ref);
                    if (count)
                        misses += 1.0;
                }
            }
            done += n;
        }
    };
    replay(rep.warmupRefs, false);
    replay(rep.countRefs, true);
    return misses;
}

} // anonymous namespace

IntervalEstimate
estimateByIntervals(const SamplePlan &plan,
                    const TapewormConfig &cfg,
                    const SampleConfig &sample)
{
    TW_ASSERT(cfg.cache.assoc == 1,
              "interval sampling requires a direct-mapped cache");
    TW_ASSERT(cfg.cache.indexing == Indexing::Virtual,
              "interval sampling replays virtual addresses only");

    // Mirror Tapeworm's own sampled-set selection exactly so the
    // per-interval misses line up with what a full run would trap.
    const std::uint64_t num_sets = cfg.cache.numSets();
    const bool all_sampled = cfg.sampleNum == cfg.sampleDenom;
    std::vector<bool> sampled;
    if (!all_sampled) {
        if (cfg.sampleMode == SampleMode::ConstantBits) {
            TW_ASSERT(cfg.sampleNum == 1,
                      "constant-bits sampling takes 1/denom");
            sampled = chooseConstantBitSets(
                num_sets, cfg.sampleDenom,
                static_cast<unsigned>(cfg.sampleSeed));
        } else {
            sampled = chooseSampledSets(num_sets, cfg.sampleNum,
                                        cfg.sampleDenom,
                                        cfg.sampleSeed);
        }
    }

    Cache cache(cfg.cache);

    IntervalEstimate est;
    est.intervalsTotal = plan.numIntervals;
    est.intervalsSimulated = plan.reps.size();
    est.refsTotal = plan.budget;

    std::vector<double> y(plan.reps.size(), 0.0);
    for (std::size_t r = 0; r < plan.reps.size(); ++r) {
        y[r] = simulateRep(plan.reps[r], cache, sampled,
                           all_sampled, plan);
        est.refsSimulated +=
            plan.reps[r].warmupRefs + plan.reps[r].countRefs;
    }

    const double frac = cfg.sampledFraction();

    // Separate ratio estimator per stratum. In exact mode the
    // profiling pass measured every interval's full-set miss count
    // x_j, and a replayed representative's count y_j is x_j
    // restricted to the trial's sampled sets (direct-mapped sets are
    // independent), so the known stratum total X_h scaled by the
    // measured ratio ȳ/x̄ is a far tighter estimate than expanding
    // the mean: with 1/1 set sampling y_j == x_j, the ratio is 1 and
    // the estimate is exact with zero variance. Classic-warmup mode
    // has no exact x_j relation (state error) and keeps the plain
    // mean-per-stratum expansion.
    const bool ratio =
        plan.warmupRefs == 0 && !plan.profileMisses.empty();

    double raw = 0.0;
    double var = 0.0;
    unsigned df = 0;
    for (const SampleStratum &s : plan.strata) {
        if (s.exact) {
            for (unsigned r : s.reps)
                raw += y[r];
            continue;
        }
        const double n = static_cast<double>(s.reps.size());
        const double pop = static_cast<double>(s.population);
        double ySum = 0.0;
        double xSum = 0.0;
        for (unsigned r : s.reps) {
            ySum += y[r];
            if (ratio) {
                xSum += static_cast<double>(
                    plan.profileMisses[plan.reps[r].interval]);
            }
        }
        if (ratio) {
            if (s.profileMisses == 0)
                continue; // x_j == 0 ∀j ⇒ y_j == 0: exactly zero
            if (xSum == 0.0) {
                // Unlucky draw: all reps hit zero-miss intervals of
                // a stratum that does miss. No measured ratio; take
                // the expected sampled fraction (raw is divided by
                // frac below).
                raw += static_cast<double>(s.profileMisses) * frac;
                continue;
            }
            const double xTot =
                static_cast<double>(s.profileMisses);
            const double r_hat = ySum / xSum;
            raw += r_hat * xTot;
            if (s.reps.size() >= 2) {
                double s2 = 0.0;
                for (unsigned r : s.reps) {
                    double d = y[r]
                               - r_hat
                                     * static_cast<double>(
                                         plan.profileMisses
                                             [plan.reps[r]
                                                  .interval]);
                    s2 += d * d;
                }
                s2 /= n - 1.0;
                if (s2 > 0.0) {
                    // X_h / x̄ is the population size implied by the
                    // auxiliary totals (Taylor linearization of the
                    // ratio estimator).
                    const double neff = xTot / (xSum / n);
                    var += neff * neff * (1.0 - n / pop) * s2 / n;
                    df += static_cast<unsigned>(s.reps.size()) - 1;
                }
            }
            continue;
        }
        const double mean = ySum / n;
        raw += pop * mean;
        if (s.reps.size() >= 2) {
            double s2 = 0.0;
            for (unsigned r : s.reps) {
                double d = y[r] - mean;
                s2 += d * d;
            }
            s2 /= n - 1.0;
            var += pop * pop * (1.0 - n / pop) * s2 / n;
            df += static_cast<unsigned>(s.reps.size()) - 1;
        }
    }

    est.rawMisses = raw;
    est.estMisses = raw / frac;
    if (var > 0.0 && df >= 1) {
        est.ciHalfWidth =
            tCritical(df, 0.95) * std::sqrt(var) / frac;
    }
    if (sample.ciRelFloor > 0.0) {
        est.ciHalfWidth = std::max(
            est.ciHalfWidth, sample.ciRelFloor * est.estMisses);
    }
    return est;
}

} // namespace tw
