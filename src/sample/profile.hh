/**
 * @file
 * Representative-interval sampling plans.
 *
 * A SamplePlan slices one task's fetch stream into fixed-size
 * intervals, summarizes each interval as a feature vector
 * (sample/features.hh) augmented with the interval's exact
 * full-cache miss density — the profiling pass streams every
 * address anyway, so running the direct-mapped tag array alongside
 * costs one compare per ref and makes the clustering see the one
 * thing address histograms cannot: whether the interval re-sweeps
 * the resident working set or displaces it. k-means clusters the
 * interior intervals and a SEEDED RANDOM draw picks a handful of
 * representatives per cluster (random within-stratum selection is
 * what makes the stratified estimate unbiased and its confidence
 * interval honest; nearest-to-centroid picks would bias it). The plan also captures everything a trial needs to
 * replay just those intervals:
 *
 *  - a RefStream clone positioned at each representative's start
 *    (minus warmup, when classic warmup is configured), and
 *  - in exact mode (warmupRefs == 0), the per-line last-touch stamps
 *    at the interval boundary. For a direct-mapped trap-driven
 *    cache — insert on miss only, no recency update on hits — the
 *    resident line of a set at any point in the stream is exactly
 *    the most recently referenced line mapping to that set, so the
 *    stamps reconstruct the precise cache state at the boundary and
 *    per-interval miss counts are exact (the confidence interval
 *    then covers only stratified-sampling variance, not state
 *    error). This coupling breaks for assoc > 1; callers gate on
 *    direct-mapped configurations.
 *
 * Plans are pure functions of (stream, reset seed, budget, sample
 * config, line size) — trial-independent — and are memoized behind a
 * bounded LRU exactly like the runner's baseline memo, so a whole
 * trial sweep amortizes the two profiling passes.
 */

#ifndef TW_SAMPLE_PROFILE_HH
#define TW_SAMPLE_PROFILE_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "mem/cache_config.hh"
#include "sample/config.hh"
#include "workload/loop_nest.hh"

namespace tw
{

/** One interval selected for simulation. */
struct SampleRep
{
    unsigned interval = 0;        //!< interval index j
    std::uint64_t startRef = 0;   //!< stream position of the clone
    std::uint64_t warmupRefs = 0; //!< uncounted refs before counting
    std::uint64_t countRefs = 0;  //!< counted refs (interval length)
    /** Stream positioned at startRef; clone before replaying. */
    std::unique_ptr<RefStream> stream;
    /**
     * Exact mode only: last-touch stamp per text line (refIndex+1,
     * 0 = never touched) at the interval's first ref. Empty in
     * classic-warmup mode.
     */
    std::vector<std::uint32_t> boundary;
};

/** One stratum of the estimator (an exact interval or a cluster). */
struct SampleStratum
{
    std::uint64_t population = 0;  //!< N_h, intervals in the stratum
    std::vector<unsigned> reps;    //!< indices into SamplePlan::reps
    /** Σ profileMisses over ALL members (the ratio estimator's known
     *  auxiliary total). 0 when profiling was skipped. */
    std::uint64_t profileMisses = 0;
    /** reps cover the whole stratum: contributes its exact sum and
     *  no variance. */
    bool exact = false;
};

struct SamplePlan
{
    // Geometry.
    std::uint64_t intervalRefs = 0;
    std::uint64_t budget = 0;       //!< total stream refs
    unsigned numIntervals = 0;
    std::uint64_t warmupRefs = 0;
    Addr base = 0;
    std::uint64_t baseLine = 0;     //!< base >> log2(lineBytes)
    std::uint32_t lineBytes = 0;
    std::uint64_t cacheBytes = 0;   //!< profiled cache capacity
    std::size_t textLines = 0;

    std::vector<SampleStratum> strata;
    std::vector<SampleRep> reps;    //!< ascending by interval

    /**
     * Exact full-set miss count of EVERY interval, measured by the
     * profiling pass's tag array (empty when the plan is
     * exhaustive and the feature pass was skipped). The estimator
     * uses these as the known auxiliary totals of a ratio
     * estimator: a trial's replayed sampled-set count y_j relates
     * to x_j by exactly the trial's set-sample, so scaling the
     * known stratum totals by the measured y/x ratio removes the
     * between-interval variance component entirely.
     */
    std::vector<std::uint64_t> profileMisses;

    /** Refs streamed to build this plan (two profiling passes). */
    std::uint64_t profileRefs = 0;
};

/**
 * Build (or fetch memoized) the plan for one stream.
 *
 * @param params     the binary's stream parameters.
 * @param reset_seed the seed the OS resets the task's stream with.
 * @param budget     the task's instruction budget.
 * @param cfg        sampling knobs (interval size, clusters, ...).
 * @param cache      simulated cache geometry (must be direct
 *                   mapped): line size sets the boundary-state
 *                   granularity, capacity the miss-density feature.
 */
std::shared_ptr<const SamplePlan> getSamplePlan(
    const StreamParams &params, std::uint64_t reset_seed,
    std::uint64_t budget, const SampleConfig &cfg,
    const CacheConfig &cache);

/** Drop the plan memo (tests). */
void clearSamplePlanCache();

} // namespace tw

#endif // TW_SAMPLE_PROFILE_HH
