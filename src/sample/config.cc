#include "sample/config.hh"

#include <cstdlib>

namespace tw
{

namespace
{

bool
envFlag(const char *name)
{
    const char *v = std::getenv(name);
    return v && *v && *v != '0';
}

void
envU64(const char *name, std::uint64_t &out)
{
    if (const char *v = std::getenv(name)) {
        char *end = nullptr;
        unsigned long long parsed = std::strtoull(v, &end, 10);
        if (end != v)
            out = parsed;
    }
}

void
envUns(const char *name, unsigned &out)
{
    std::uint64_t v = out;
    envU64(name, v);
    out = static_cast<unsigned>(v);
}

} // anonymous namespace

SampleConfig
sampleConfigFromEnv()
{
    SampleConfig cfg;
    if (!envFlag("TW_SAMPLE"))
        return cfg;
    cfg.enabled = true;
    envU64("TW_SAMPLE_INTERVAL", cfg.intervalRefs);
    envU64("TW_SAMPLE_WARMUP", cfg.warmupRefs);
    envUns("TW_SAMPLE_CLUSTERS", cfg.clusters);
    envUns("TW_SAMPLE_PER_CLUSTER", cfg.perCluster);
    if (cfg.intervalRefs == 0)
        cfg.intervalRefs = 16384;
    if (cfg.clusters == 0)
        cfg.clusters = 1;
    if (cfg.perCluster == 0)
        cfg.perCluster = 1;
    return cfg;
}

bool
envNoDma()
{
    return envFlag("TW_NO_DMA");
}

} // namespace tw
