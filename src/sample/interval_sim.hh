/**
 * @file
 * Trial-time replay of a SamplePlan's representative intervals.
 *
 * For each representative the simulator clones the plan's stream
 * snapshot, reconstructs the cache state at the interval boundary
 * (exact mode) or warms an empty cache (classic mode), and replays
 * the interval against a direct-mapped trap-driven cache — counting
 * a miss exactly when Tapeworm would have taken a trap. Per-stratum
 * means combine into a stratified miss estimate with a Student-t
 * confidence half-width covering the sampling variance; both are
 * scaled by the inverse set-sampled fraction, mirroring Tapeworm's
 * own estimate scaling.
 */

#ifndef TW_SAMPLE_INTERVAL_SIM_HH
#define TW_SAMPLE_INTERVAL_SIM_HH

#include <cstdint>

#include "core/tapeworm.hh"
#include "sample/profile.hh"

namespace tw
{

/** Stratified miss estimate for one trial. */
struct IntervalEstimate
{
    /** Stratified estimate of misses in the sampled sets. */
    double rawMisses = 0.0;
    /** rawMisses scaled by the inverse sampled fraction. */
    double estMisses = 0.0;
    /** 95% CI half-width on estMisses (sampling variance only). */
    double ciHalfWidth = 0.0;

    std::uint64_t intervalsTotal = 0;
    std::uint64_t intervalsSimulated = 0;
    /** Refs replayed this trial, warmup included. */
    std::uint64_t refsSimulated = 0;
    /** Refs the full run would have simulated (the task budget). */
    std::uint64_t refsTotal = 0;
};

/**
 * Estimate one trial's misses from the plan.
 *
 * @param cfg Tapeworm configuration with the set-sample seed already
 *            resolved (the runner substitutes the trial seed the
 *            same way it does for a full run).
 */
IntervalEstimate estimateByIntervals(const SamplePlan &plan,
                                     const TapewormConfig &cfg,
                                     const SampleConfig &sample);

} // namespace tw

#endif // TW_SAMPLE_INTERVAL_SIM_HH
