/**
 * @file
 * SimPoint-style feature vectors over reference-stream intervals.
 *
 * Each fixed-size interval of the fetch stream is summarized as an
 * L1-normalized histogram: 32 page-touch bins (which 4 KB text
 * pages the interval visits, hashed into the bin space) followed by
 * 16 line-stride bins (log2 of the jump distance between successive
 * line addresses — the loop-phase signature). Both halves are pure
 * functions of the addresses, so the profiling pass computes them
 * from the RefStream alone without running the machine; intervals
 * with similar histograms execute similar code phases and therefore
 * miss similarly, which is what the k-means clustering exploits.
 */

#ifndef TW_SAMPLE_FEATURES_HH
#define TW_SAMPLE_FEATURES_HH

#include <cstdint>
#include <vector>

#include "base/types.hh"

namespace tw
{

/** Page-touch histogram bins (first half of the vector). */
constexpr unsigned kFeaturePageBins = 32;
/** Line-stride histogram bins (second half). */
constexpr unsigned kFeatureStrideBins = 16;
/** Total feature dimensionality. */
constexpr unsigned kFeatureDims = kFeaturePageBins + kFeatureStrideBins;

/**
 * Accumulates one interval's histogram. Feed every address of the
 * interval in stream order, then finish() to obtain the normalized
 * vector and reset for the next interval (the previous-line state
 * carries across the boundary so stride features are seamless).
 */
class FeatureAccum
{
  public:
    explicit FeatureAccum(Addr text_base, std::uint32_t line_bytes);

    void add(Addr va);

    /** Normalize (L1), emit, and clear the counts. */
    std::vector<double> finish();

  private:
    Addr base_;
    unsigned lineShift_;
    std::uint64_t prevLine_ = ~0ull;
    std::uint64_t counts_[kFeatureDims] = {};
};

} // namespace tw

#endif // TW_SAMPLE_FEATURES_HH
