#include "sample/profile.hh"

#include <algorithm>
#include <limits>
#include <mutex>

#include "base/logging.hh"
#include "base/lru_map.hh"
#include "base/random.hh"
#include "obs/metrics.hh"
#include "sample/features.hh"
#include "sample/kmeans.hh"

namespace tw
{

namespace
{

constexpr unsigned kBatch = 4096;

unsigned
lineShiftOf(std::uint32_t bytes)
{
    unsigned s = 0;
    while ((1u << s) < bytes)
        ++s;
    return s;
}

/**
 * Weight of the appended miss-density feature relative to the
 * L1-normalized address histograms. Distances between histograms
 * fall in [0, sqrt(2)]; scaling the (max-normalized) miss density
 * by this factor lets it dominate the clustering — miss level IS
 * the quantity the strata must be homogeneous in — while the
 * histograms still separate phases of equal miss level.
 */
constexpr double kMissFeatureWeight = 4.0;

std::string
planKey(const StreamParams &p, std::uint64_t reset_seed,
        std::uint64_t budget, const SampleConfig &cfg,
        const CacheConfig &cache)
{
    std::string key = csprintf(
        "%llx|%llu|%.17g|%u|%llu|%llu|%llu|%llu|%llu|%u|%u|%llu|%u|%llu",
        static_cast<unsigned long long>(p.base),
        static_cast<unsigned long long>(p.textBytes),
        p.excursionProb, p.excursionWords,
        static_cast<unsigned long long>(p.seed),
        static_cast<unsigned long long>(reset_seed),
        static_cast<unsigned long long>(budget),
        static_cast<unsigned long long>(cfg.intervalRefs),
        static_cast<unsigned long long>(cfg.warmupRefs),
        cfg.clusters, cfg.perCluster,
        static_cast<unsigned long long>(cfg.seed), cache.lineBytes,
        static_cast<unsigned long long>(cache.sizeBytes));
    for (const LoopLevel &l : p.ladder) {
        key += csprintf("|%llu:%.17g",
                        static_cast<unsigned long long>(l.spanBytes),
                        l.meanReps);
    }
    return key;
}

/**
 * Pass 1: stream the whole budget once, accumulating one feature
 * vector per interval — the address histograms plus one appended
 * dimension: the interval's exact miss density against the
 * (unsampled) direct-mapped tag array, max-normalized over all
 * intervals and weighted by kMissFeatureWeight. The tag array costs
 * one compare-and-store per ref on a pass that streams every
 * address anyway.
 */
std::vector<std::vector<double>>
featurePass(const StreamParams &params, std::uint64_t reset_seed,
            std::uint64_t budget, std::uint64_t interval_refs,
            const CacheConfig &cache,
            std::vector<std::uint64_t> &miss_counts)
{
    LoopNestStream stream(params);
    stream.reset(reset_seed);
    FeatureAccum accum(params.base, cache.lineBytes);
    const unsigned shift = lineShiftOf(cache.lineBytes);
    const std::uint64_t num_sets = cache.numSets();
    constexpr std::uint64_t kEmpty = ~0ull;
    std::vector<std::uint64_t> resident(num_sets, kEmpty);

    std::vector<std::vector<double>> features;
    std::vector<double> missDensity;
    Addr buf[kBatch];
    std::uint64_t done = 0;
    std::uint64_t intervalMisses = 0;
    std::uint64_t intervalStart = 0;
    std::uint64_t boundary = std::min<std::uint64_t>(interval_refs,
                                                     budget);
    while (done < budget) {
        unsigned n = static_cast<unsigned>(std::min<std::uint64_t>(
            kBatch, std::min(budget - done, boundary - done)));
        stream.nextBatch(buf, n);
        for (unsigned i = 0; i < n; ++i) {
            accum.add(buf[i]);
            std::uint64_t line = buf[i] >> shift;
            std::uint64_t set = line & (num_sets - 1);
            if (resident[set] != line) {
                resident[set] = line;
                ++intervalMisses;
            }
        }
        done += n;
        if (done == boundary) {
            features.push_back(accum.finish());
            miss_counts.push_back(intervalMisses);
            missDensity.push_back(
                static_cast<double>(intervalMisses)
                / static_cast<double>(done - intervalStart));
            intervalMisses = 0;
            intervalStart = done;
            boundary = std::min(boundary + interval_refs, budget);
        }
    }

    double maxDensity = 0.0;
    for (double d : missDensity)
        maxDensity = std::max(maxDensity, d);
    for (std::size_t i = 0; i < features.size(); ++i) {
        features[i].push_back(
            maxDensity > 0.0
                ? kMissFeatureWeight * missDensity[i] / maxDensity
                : 0.0);
    }
    return features;
}

/**
 * Pass 2: stream again, cloning the stream at each representative's
 * start position and (exact mode) copying the rolling last-touch
 * stamps at each representative's counting boundary.
 */
void
capturePass(SamplePlan &plan, const StreamParams &params,
            std::uint64_t reset_seed)
{
    struct Event
    {
        std::uint64_t pos;
        unsigned rep;
        bool isClone; //!< else: record boundary stamps
    };
    std::vector<Event> events;
    const bool exact = plan.warmupRefs == 0;
    for (unsigned r = 0; r < plan.reps.size(); ++r) {
        events.push_back({plan.reps[r].startRef, r, true});
        if (exact) {
            events.push_back(
                {plan.reps[r].interval * plan.intervalRefs, r,
                 false});
        }
    }
    std::sort(events.begin(), events.end(),
              [](const Event &a, const Event &b) {
                  return a.pos < b.pos;
              });

    LoopNestStream stream(params);
    stream.reset(reset_seed);
    const unsigned shift = lineShiftOf(plan.lineBytes);
    std::vector<std::uint32_t> touch;
    if (exact)
        touch.assign(plan.textLines, 0);

    Addr buf[kBatch];
    std::uint64_t done = 0;
    std::size_t ev = 0;
    while (done < plan.budget) {
        while (ev < events.size() && events[ev].pos == done) {
            SampleRep &rep = plan.reps[events[ev].rep];
            if (events[ev].isClone)
                rep.stream = stream.clone();
            else
                rep.boundary = touch;
            ++ev;
        }
        if (ev >= events.size())
            break; // nothing left to capture
        std::uint64_t stop = std::min(plan.budget, events[ev].pos);
        unsigned n = static_cast<unsigned>(
            std::min<std::uint64_t>(kBatch, stop - done));
        stream.nextBatch(buf, n);
        if (exact) {
            for (unsigned i = 0; i < n; ++i) {
                std::uint64_t idx =
                    (buf[i] >> shift) - plan.baseLine;
                TW_ASSERT(idx < plan.textLines,
                          "sample profile: ref outside text");
                touch[idx] =
                    static_cast<std::uint32_t>(done + i + 1);
            }
        }
        done += n;
    }
    while (ev < events.size() && events[ev].pos == done) {
        SampleRep &rep = plan.reps[events[ev].rep];
        if (events[ev].isClone)
            rep.stream = stream.clone();
        else
            rep.boundary = touch;
        ++ev;
    }
    TW_ASSERT(ev == events.size(),
              "sample profile: capture events beyond budget");
}

std::shared_ptr<const SamplePlan>
buildPlan(const StreamParams &params, std::uint64_t reset_seed,
          std::uint64_t budget, const SampleConfig &cfg,
          const CacheConfig &cache)
{
    const std::uint32_t line_bytes = cache.lineBytes;
    auto plan = std::make_shared<SamplePlan>();
    plan->intervalRefs = cfg.intervalRefs;
    plan->budget = budget;
    plan->warmupRefs = std::min<std::uint64_t>(cfg.warmupRefs,
                                               cfg.intervalRefs);
    plan->base = params.base;
    plan->lineBytes = line_bytes;
    plan->cacheBytes = cache.sizeBytes;
    const unsigned shift = lineShiftOf(line_bytes);
    plan->baseLine = params.base >> shift;
    // Streams never leave their text (excursion targets are clipped
    // to the text end), so the last text byte bounds the line index.
    plan->textLines = static_cast<std::size_t>(
        ((params.base + params.textBytes - 1) >> shift)
        - plan->baseLine + 1);
    TW_ASSERT(budget + 1
                  < std::numeric_limits<std::uint32_t>::max(),
              "sample profile: budget overflows 32-bit stamps");

    plan->numIntervals = static_cast<unsigned>(
        (budget + cfg.intervalRefs - 1) / cfg.intervalRefs);
    const unsigned n = plan->numIntervals;

    auto lengthOf = [&](unsigned j) -> std::uint64_t {
        std::uint64_t start = j * plan->intervalRefs;
        return std::min(plan->intervalRefs, budget - start);
    };
    auto addRep = [&](unsigned j) -> unsigned {
        SampleRep rep;
        rep.interval = j;
        std::uint64_t start = j * plan->intervalRefs;
        rep.warmupRefs =
            std::min<std::uint64_t>(plan->warmupRefs, start);
        rep.startRef = start - rep.warmupRefs;
        rep.countRefs = lengthOf(j);
        plan->reps.push_back(std::move(rep));
        return static_cast<unsigned>(plan->reps.size() - 1);
    };

    const std::uint64_t capacity =
        static_cast<std::uint64_t>(cfg.clusters) * cfg.perCluster
        + 2;
    if (n <= capacity || n < 4) {
        // Too few intervals to be worth stratifying: simulate all
        // of them; the estimate is exact and the CI is zero.
        SampleStratum all;
        all.population = n;
        all.exact = true;
        for (unsigned j = 0; j < n; ++j)
            all.reps.push_back(addRep(j));
        plan->strata.push_back(std::move(all));
    } else {
        std::vector<std::vector<double>> features = featurePass(
            params, reset_seed, budget, cfg.intervalRefs, cache,
            plan->profileMisses);
        TW_ASSERT(features.size() == n,
                  "sample profile: interval count mismatch");
        plan->profileRefs += budget;

        // First and last intervals are always simulated exactly:
        // the first carries the cold start, the last is (usually)
        // partial — neither belongs in a stratum.
        for (unsigned j : {0u, n - 1}) {
            SampleStratum s;
            s.population = 1;
            s.exact = true;
            s.reps.push_back(addRep(j));
            plan->strata.push_back(std::move(s));
        }

        // Cluster the interior.
        std::vector<std::vector<double>> interior(
            features.begin() + 1, features.end() - 1);
        KMeansResult km = kmeansCluster(interior, cfg.clusters,
                                        cfg.seed);
        const unsigned k =
            static_cast<unsigned>(km.centroids.size());
        for (unsigned c = 0; c < k; ++c) {
            std::vector<unsigned> members; // interval indices
            for (std::size_t i = 0; i < interior.size(); ++i) {
                if (km.assignment[i] == c)
                    members.push_back(static_cast<unsigned>(i) + 1);
            }
            if (members.empty())
                continue;
            // Representatives: a SEEDED RANDOM draw without
            // replacement. Random within-stratum selection is what
            // makes the stratified estimate unbiased — picking,
            // say, the members nearest the centroid would
            // systematically prefer one side of any within-cluster
            // miss spread and bias the total.
            SampleStratum s;
            s.population = members.size();
            for (unsigned j : members)
                s.profileMisses += plan->profileMisses[j];
            unsigned take = std::min<unsigned>(
                cfg.perCluster,
                static_cast<unsigned>(members.size()));
            Rng draw(mixSeed(cfg.seed, 0xc1000 + c));
            for (unsigned i = 0; i < take; ++i) {
                std::size_t j =
                    i + draw.below(members.size() - i);
                std::swap(members[i], members[j]);
            }
            std::vector<unsigned> chosen(members.begin(),
                                         members.begin() + take);
            std::sort(chosen.begin(), chosen.end());
            for (unsigned j : chosen)
                s.reps.push_back(addRep(j));
            s.exact = take == members.size();
            plan->strata.push_back(std::move(s));
        }
    }

    // Keep reps ascending by interval so the capture pass is one
    // forward walk. Strata index into reps, so remap after sorting.
    std::vector<unsigned> order(plan->reps.size());
    for (unsigned i = 0; i < order.size(); ++i)
        order[i] = i;
    std::sort(order.begin(), order.end(),
              [&](unsigned a, unsigned b) {
                  return plan->reps[a].interval
                         < plan->reps[b].interval;
              });
    std::vector<unsigned> where(order.size());
    for (unsigned i = 0; i < order.size(); ++i)
        where[order[i]] = i;
    std::vector<SampleRep> sorted;
    sorted.reserve(plan->reps.size());
    for (unsigned i : order)
        sorted.push_back(std::move(plan->reps[i]));
    plan->reps = std::move(sorted);
    for (SampleStratum &s : plan->strata)
        for (unsigned &r : s.reps)
            r = where[r];

    capturePass(*plan, params, reset_seed);
    plan->profileRefs += plan->budget;
    for (const SampleRep &rep : plan->reps) {
        TW_ASSERT(rep.stream != nullptr,
                  "sample profile: missing stream snapshot");
        TW_ASSERT(plan->warmupRefs != 0 || !rep.boundary.empty()
                      || rep.interval == 0,
                  "sample profile: missing boundary state");
    }
    return plan;
}

/** Memo entry: computed once per key under its own flag. */
struct PlanEntry
{
    std::once_flag once;
    std::shared_ptr<const SamplePlan> plan;
};

constexpr std::size_t kPlanCap = 64;

std::mutex plansMutex;

LruMap<std::string, std::shared_ptr<PlanEntry>> &
plans()
{
    static LruMap<std::string, std::shared_ptr<PlanEntry>> map(
        kPlanCap);
    return map;
}

} // anonymous namespace

std::shared_ptr<const SamplePlan>
getSamplePlan(const StreamParams &params, std::uint64_t reset_seed,
              std::uint64_t budget, const SampleConfig &cfg,
              const CacheConfig &cache)
{
    static obs::Counter obsHits =
        obs::registry().counter("engine.sample.plan_hits");
    static obs::Counter obsBuilds =
        obs::registry().counter("engine.sample.plan_builds");
    static obs::Counter obsProfileRefs =
        obs::registry().counter("engine.sample.profile_refs");

    std::string key = planKey(params, reset_seed, budget, cfg,
                              cache);
    std::shared_ptr<PlanEntry> entry;
    bool hit = false;
    {
        std::lock_guard<std::mutex> lock(plansMutex);
        auto &map = plans();
        if (std::shared_ptr<PlanEntry> *found = map.find(key)) {
            entry = *found;
            hit = true;
        } else {
            entry = map.insert(key, std::make_shared<PlanEntry>());
        }
    }
    if (hit)
        obsHits.inc();
    std::call_once(entry->once, [&] {
        obsBuilds.inc();
        entry->plan =
            buildPlan(params, reset_seed, budget, cfg, cache);
        obsProfileRefs.add(entry->plan->profileRefs);
    });
    return entry->plan;
}

void
clearSamplePlanCache()
{
    std::lock_guard<std::mutex> lock(plansMutex);
    plans().clear();
}

} // namespace tw
