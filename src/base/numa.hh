/**
 * @file
 * Minimal NUMA awareness for the trial harness — no libnuma.
 *
 * Topology comes straight from sysfs
 * (/sys/devices/system/node/node<N>/cpulist); pinning is plain
 * sched_setaffinity(2). Both degrade gracefully: an unreadable
 * sysfs or a single-node host collapses to one node covering every
 * CPU, and parallelFor's sharded dispatch becomes the ordinary
 * single-counter path — bit-identical results either way, since
 * trials only ever write their own index.
 *
 * Policy knob: TW_PIN=0 disables worker pinning, TW_PIN=1 forces it
 * even on one node (useful for benchmarking pinned vs floating on
 * any host). Default: pin only when the host has multiple nodes,
 * where locality actually pays.
 */

#ifndef TW_BASE_NUMA_HH
#define TW_BASE_NUMA_HH

#include <vector>

namespace tw
{
namespace numa
{

/** CPU/node map of the host (or a test override). */
struct Topology
{
    /** nodeCpus[n] = CPU ids of node n; at least one node, every
     *  node non-empty. */
    std::vector<std::vector<unsigned>> nodeCpus;

    unsigned nodes() const
    {
        return static_cast<unsigned>(nodeCpus.size());
    }
};

/** Host topology, parsed from sysfs once (single all-CPU node on
 *  any failure). Test overrides (setTopologyForTest) replace it. */
const Topology &topology();

/** Inject a fake topology (tests exercising the sharded dispatch on
 *  single-node hosts). Empty nodeCpus restores the host topology.
 *  Not thread-safe: call only from a quiescent test main thread. */
void setTopologyForTest(Topology topo);

/** Should parallelFor pin workers? (TW_PIN / multi-node default —
 *  see file comment.) */
bool pinningEnabled();

/** Pin the calling thread to @p node's CPUs. Returns false (and
 *  leaves affinity untouched) if the node is unknown or
 *  sched_setaffinity fails. */
bool pinThreadToNode(unsigned node);

/**
 * Saves the calling thread's CPU affinity mask and restores it on
 * destruction — parallelFor wraps the caller thread in one of
 * these, so a pinned drain can't leak narrowed affinity back into
 * the application.
 */
class AffinityGuard
{
  public:
    AffinityGuard();
    ~AffinityGuard();

    AffinityGuard(const AffinityGuard &) = delete;
    AffinityGuard &operator=(const AffinityGuard &) = delete;

  private:
    std::vector<unsigned char> saved_; //!< raw cpu_set_t bytes
    bool valid_ = false;
};

} // namespace numa
} // namespace tw

#endif // TW_BASE_NUMA_HH
