/**
 * @file
 * Power-of-two and alignment helpers used throughout the cache,
 * memory and VM code.
 */

#ifndef TW_BASE_BITOPS_HH
#define TW_BASE_BITOPS_HH

#include <bit>
#include <cstdint>

#include "base/logging.hh"
#include "base/types.hh"

namespace tw
{

/** True iff @p v is a (nonzero) power of two. */
constexpr bool
isPowerOf2(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** floor(log2(v)); @p v must be nonzero. */
constexpr unsigned
floorLog2(std::uint64_t v)
{
    return 63u - static_cast<unsigned>(std::countl_zero(v));
}

/** ceil(log2(v)); @p v must be nonzero. */
constexpr unsigned
ceilLog2(std::uint64_t v)
{
    return v == 1 ? 0 : floorLog2(v - 1) + 1;
}

/** Round @p a down to a multiple of power-of-two @p align. */
constexpr Addr
alignDown(Addr a, std::uint64_t align)
{
    return a & ~(align - 1);
}

/** Round @p a up to a multiple of power-of-two @p align. */
constexpr Addr
alignUp(Addr a, std::uint64_t align)
{
    return (a + align - 1) & ~(align - 1);
}

/** Integer division rounding up. */
constexpr std::uint64_t
divCeil(std::uint64_t a, std::uint64_t b)
{
    return (a + b - 1) / b;
}

} // namespace tw

#endif // TW_BASE_BITOPS_HH
