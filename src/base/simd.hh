/**
 * @file
 * Runtime-dispatched wide scans for the trap-filter hot paths.
 *
 * Two primitive scans sit under the engine's inner loops:
 *
 *  - anyBitsInWords(): is any bit set in an inclusive word range of
 *    a granule bitmap? This is the page-span trap probe — the
 *    all-zero test that lets a filtered loop skip the per-reference
 *    probe (and the physical address that feeds it) on clear pages.
 *  - samePageSpan(): how many leading addresses of a prefetch
 *    buffer fall on one page? This bounds the probe-free chunk the
 *    chunked inner loop consumes with bulk accounting.
 *
 * Both have three implementations — AVX-512 (vptestnm-style 64-byte
 * blocks), AVX2 (vptest-style 32-byte blocks), and a portable
 * std::uint64_t-word loop — selected once per process by CPUID.
 * Every implementation computes the EXACT same answer (scans never
 * read outside the given range, tails are masked or handled
 * scalar), so results are bit-identical across hosts and across
 * TW_NO_SIMD settings; only the host cycle count changes.
 *
 * Dispatch is a relaxed function-pointer load. The scalar fallback
 * is forced by the TW_NO_SIMD environment variable, the
 * bench_driver --no-simd flag (both land in setEnabled(false)), or
 * a host without the required ISA.
 */

#ifndef TW_BASE_SIMD_HH
#define TW_BASE_SIMD_HH

#include <atomic>
#include <cstddef>
#include <cstdint>

#include "base/types.hh"

namespace tw
{
namespace simd
{

/** Widest scan implementation in use. */
enum class Level
{
    Scalar = 0, //!< portable 64-bit-word loops
    Avx2 = 2,   //!< 32-byte blocks (4 x u64 lanes)
    Avx512 = 3, //!< 64-byte blocks (8 x u64 lanes), masked tails
};

/** Human-readable level name ("scalar", "avx2", "avx512"). */
const char *levelName(Level level);

/** Widest level the host CPU supports (ignores TW_NO_SIMD). */
Level detectedLevel();

/**
 * The level scans currently dispatch to: detectedLevel() unless
 * wide scans are disabled (TW_NO_SIMD / setEnabled(false)), in
 * which case Scalar.
 */
Level activeLevel();

/** Enable/disable the wide implementations at runtime (the
 *  bench_driver --no-simd knob; tests toggle this to prove
 *  scalar/wide bit-identity). Thread-safe; takes effect on the
 *  next scan call. */
void setEnabled(bool on);

/** Are wide scans currently enabled AND supported? */
inline bool
wide()
{
    return activeLevel() != Level::Scalar;
}

namespace detail
{

using AnyBitsFn = bool (*)(const std::uint64_t *, std::uint64_t,
                           std::uint64_t);
using SpanFn = std::size_t (*)(const Addr *, const Addr *, Addr,
                               Addr);

extern std::atomic<AnyBitsFn> anyBitsFn;
extern std::atomic<SpanFn> spanFn;

} // namespace detail

/**
 * Any bit set in words [first, last] (inclusive) of @p words?
 * Exactly equivalent to OR-reducing the range and testing for
 * nonzero; never reads a word outside [first, last].
 */
inline bool
anyBitsInWords(const std::uint64_t *words, std::uint64_t first,
               std::uint64_t last)
{
    return detail::anyBitsFn.load(std::memory_order_relaxed)(
        words, first, last);
}

/**
 * Number of leading entries of [p, end) with (x & page_mask) ==
 * page. Exactly equivalent to the obvious scalar scan; never reads
 * at or past @p end.
 */
inline std::size_t
samePageSpan(const Addr *p, const Addr *end, Addr page_mask,
             Addr page)
{
    return detail::spanFn.load(std::memory_order_relaxed)(
        p, end, page_mask, page);
}

} // namespace simd
} // namespace tw

#endif // TW_BASE_SIMD_HH
