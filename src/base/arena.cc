#include "base/arena.hh"

#include <cstring>
#include <new>

#include "base/logging.hh"

namespace tw
{

namespace
{

/** Chunk sizes double up to this; single allocations larger than
 *  the cap still get a dedicated chunk of their own size. */
constexpr std::size_t kMaxChunkBytes = 64u << 20;

thread_local Arena *activeArena_ = nullptr;

Arena &
workerArena()
{
    // One retained arena per thread, living as long as the thread:
    // pool workers reuse it across every trial they serve, and the
    // chunks go back to the host allocator at thread exit.
    thread_local Arena arena;
    return arena;
}

} // anonymous namespace

Arena::Arena(std::size_t chunk_bytes) : nextChunkBytes_(chunk_bytes)
{
    TW_ASSERT(chunk_bytes >= 4096, "arena chunks below a page");
}

Arena::~Arena()
{
    release();
}

Arena::Chunk *
Arena::newChunk(std::size_t min_bytes)
{
    std::size_t usable = nextChunkBytes_;
    if (usable < min_bytes)
        usable = min_bytes;
    if (nextChunkBytes_ < kMaxChunkBytes)
        nextChunkBytes_ *= 2;

    auto *raw = static_cast<unsigned char *>(
        ::operator new(sizeof(Chunk) + usable));
    // First-touch the whole chunk now, on this thread: with pinned
    // workers that places the backing pages on the worker's node.
    std::memset(raw, 0, sizeof(Chunk) + usable);

    auto *chunk = reinterpret_cast<Chunk *>(raw);
    chunk->next = nullptr;
    chunk->size = usable;

    if (current_)
        current_->next = chunk;
    else
        head_ = chunk;
    reservedBytes_ += usable;
    ++chunkCount_;
    return chunk;
}

void *
Arena::do_allocate(std::size_t bytes, std::size_t alignment)
{
    std::uintptr_t p =
        (cursor_ + (alignment - 1)) & ~static_cast<std::uintptr_t>(
            alignment - 1);
    if (p + bytes > limit_ || !current_) {
        // Advance through retained chunks before minting a new one.
        Chunk *chunk = current_ ? current_->next : head_;
        while (chunk && chunk->size < bytes + alignment)
            chunk = chunk->next;
        if (!chunk)
            chunk = newChunk(bytes + alignment);
        current_ = chunk;
        cursor_ = reinterpret_cast<std::uintptr_t>(chunk + 1);
        limit_ = cursor_ + chunk->size;
        p = (cursor_ + (alignment - 1)) & ~static_cast<std::uintptr_t>(
                alignment - 1);
    }
    cursor_ = p + bytes;
    usedBytes_ += bytes;
    return reinterpret_cast<void *>(p);
}

void
Arena::reset()
{
    current_ = head_;
    if (current_) {
        cursor_ = reinterpret_cast<std::uintptr_t>(current_ + 1);
        limit_ = cursor_ + current_->size;
    } else {
        cursor_ = limit_ = 0;
    }
    usedBytes_ = 0;
}

void
Arena::release()
{
    Chunk *chunk = head_;
    while (chunk) {
        Chunk *next = chunk->next;
        ::operator delete(static_cast<void *>(chunk));
        chunk = next;
    }
    head_ = current_ = nullptr;
    cursor_ = limit_ = 0;
    reservedBytes_ = usedBytes_ = 0;
    chunkCount_ = 0;
}

Arena *
activeArena()
{
    return activeArena_;
}

std::pmr::memory_resource *
arenaResource()
{
    Arena *arena = activeArena_;
    return arena ? static_cast<std::pmr::memory_resource *>(arena)
                 : std::pmr::new_delete_resource();
}

ArenaScope::ArenaScope()
{
    if (activeArena_) {
        arena_ = activeArena_;
        owner_ = false;
    } else {
        arena_ = &workerArena();
        activeArena_ = arena_;
        owner_ = true;
    }
}

ArenaScope::~ArenaScope()
{
    if (owner_) {
        activeArena_ = nullptr;
        arena_->reset();
    }
}

} // namespace tw
