#include "base/logging.hh"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <vector>

#include "base/json.hh"

namespace tw
{

namespace
{

/** The component tag for TW_LOG=json lines. A plain pointer set
 *  once at startup (see setLogComponent's contract). */
const char *logComponent = "tw";

/** Small stable per-thread ordinal — readable in log output where
 *  a hashed std::thread::id would not be. */
unsigned
logThreadId()
{
    static std::atomic<unsigned> next{1};
    thread_local unsigned id = next.fetch_add(1);
    return id;
}

/** Consulted once; flipping TW_LOG mid-run is not supported. */
bool
jsonMode()
{
    static bool on = [] {
        const char *v = std::getenv("TW_LOG");
        return v && std::string(v) == "json";
    }();
    return on;
}

void
emit(const char *level, const char *human_prefix,
     const std::string &msg)
{
    if (!jsonMode()) {
        // Byte-identical to the historical format.
        std::fprintf(stderr, "%s: %s\n", human_prefix, msg.c_str());
        return;
    }
    long long ms =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::system_clock::now().time_since_epoch())
            .count();
    std::string line =
        logLineJson(level, logComponent, logThreadId(), ms, msg);
    std::fprintf(stderr, "%s\n", line.c_str());
}

} // anonymous namespace

void
setLogComponent(const char *name)
{
    logComponent = name;
}

bool
logJsonEnabled()
{
    return jsonMode();
}

std::string
logLineJson(const char *level, const char *component,
            unsigned thread_id, long long unix_ms,
            const std::string &msg)
{
    std::time_t secs = static_cast<std::time_t>(unix_ms / 1000);
    std::tm tm{};
    gmtime_r(&secs, &tm);
    char ts[64];
    std::snprintf(ts, sizeof(ts),
                  "%04d-%02d-%02dT%02d:%02d:%02d.%03dZ",
                  tm.tm_year + 1900, tm.tm_mon + 1, tm.tm_mday,
                  tm.tm_hour, tm.tm_min, tm.tm_sec,
                  static_cast<int>(unix_ms % 1000));
    // Assemble via Json for correct string escaping; field order is
    // insertion order, pinned by the unit test.
    Json j = Json::object();
    j.set("ts", Json::str(ts));
    j.set("level", Json::str(level));
    j.set("thread",
          Json::number(static_cast<std::uint64_t>(thread_id)));
    j.set("component", Json::str(component));
    j.set("msg", Json::str(msg));
    return j.dump();
}

std::string
vcsprintf(const char *fmt, std::va_list args)
{
    std::va_list args_copy;
    va_copy(args_copy, args);
    int needed = std::vsnprintf(nullptr, 0, fmt, args_copy);
    va_end(args_copy);
    if (needed < 0)
        return "<format error>";
    std::string out(static_cast<std::size_t>(needed), '\0');
    // C++11 guarantees contiguous storage; +1 for the terminator that
    // vsnprintf always writes.
    std::vector<char> buf(static_cast<std::size_t>(needed) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, args);
    out.assign(buf.data(), static_cast<std::size_t>(needed));
    return out;
}

std::string
csprintf(const char *fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    std::string out = vcsprintf(fmt, args);
    va_end(args);
    return out;
}

void
panic(const char *fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    std::string msg = vcsprintf(fmt, args);
    va_end(args);
    std::fprintf(stderr, "panic: %s\n", msg.c_str());
    std::abort();
}

void
fatal(const char *fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    std::string msg = vcsprintf(fmt, args);
    va_end(args);
    std::fprintf(stderr, "fatal: %s\n", msg.c_str());
    std::exit(1);
}

void
warn(const char *fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    std::string msg = vcsprintf(fmt, args);
    va_end(args);
    emit("warn", "warn", msg);
}

void
inform(const char *fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    std::string msg = vcsprintf(fmt, args);
    va_end(args);
    emit("info", "info", msg);
}

} // namespace tw
