#include "base/logging.hh"

#include <cstdlib>
#include <vector>

namespace tw
{

std::string
vcsprintf(const char *fmt, std::va_list args)
{
    std::va_list args_copy;
    va_copy(args_copy, args);
    int needed = std::vsnprintf(nullptr, 0, fmt, args_copy);
    va_end(args_copy);
    if (needed < 0)
        return "<format error>";
    std::string out(static_cast<std::size_t>(needed), '\0');
    // C++11 guarantees contiguous storage; +1 for the terminator that
    // vsnprintf always writes.
    std::vector<char> buf(static_cast<std::size_t>(needed) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, args);
    out.assign(buf.data(), static_cast<std::size_t>(needed));
    return out;
}

std::string
csprintf(const char *fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    std::string out = vcsprintf(fmt, args);
    va_end(args);
    return out;
}

void
panic(const char *fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    std::string msg = vcsprintf(fmt, args);
    va_end(args);
    std::fprintf(stderr, "panic: %s\n", msg.c_str());
    std::abort();
}

void
fatal(const char *fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    std::string msg = vcsprintf(fmt, args);
    va_end(args);
    std::fprintf(stderr, "fatal: %s\n", msg.c_str());
    std::exit(1);
}

void
warn(const char *fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    std::string msg = vcsprintf(fmt, args);
    va_end(args);
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
inform(const char *fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    std::string msg = vcsprintf(fmt, args);
    va_end(args);
    std::fprintf(stderr, "info: %s\n", msg.c_str());
}

} // namespace tw
