#include "base/thread_pool.hh"

#include <atomic>
#include <cstdlib>
#include <vector>

#include "base/numa.hh"

namespace tw
{

ThreadPool::ThreadPool(unsigned threads)
{
    if (threads == 0)
        threads = 1;
    workers_.reserve(threads);
    for (unsigned i = 0; i < threads; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::unique_lock<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    workReady_.notify_all();
    for (auto &w : workers_)
        w.join();
}

void
ThreadPool::run(std::function<void()> task)
{
    {
        std::unique_lock<std::mutex> lock(mutex_);
        queue_.push_back(std::move(task));
        ++pending_;
    }
    workReady_.notify_one();
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lock(mutex_);
    allDone_.wait(lock, [this] { return pending_ == 0; });
}

void
ThreadPool::workerLoop()
{
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
        workReady_.wait(lock, [this] {
            return stopping_ || !queue_.empty();
        });
        if (queue_.empty()) {
            if (stopping_)
                return;
            continue;
        }
        std::function<void()> task = std::move(queue_.front());
        queue_.pop_front();
        lock.unlock();
        task();
        lock.lock();
        if (--pending_ == 0)
            allDone_.notify_all();
    }
}

unsigned
hardwareThreads()
{
    unsigned n = std::thread::hardware_concurrency();
    return n == 0 ? 1 : n;
}

namespace
{

std::atomic<unsigned> default_threads_override{0};

unsigned
envThreads()
{
    const char *env = std::getenv("TW_THREADS");
    if (!env || !*env)
        return 0;
    long v = std::strtol(env, nullptr, 10);
    return v > 0 ? static_cast<unsigned>(v) : 0;
}

} // anonymous namespace

unsigned
defaultThreads()
{
    unsigned n = default_threads_override.load(std::memory_order_relaxed);
    if (n != 0)
        return n;
    n = envThreads();
    return n != 0 ? n : hardwareThreads();
}

void
setDefaultThreads(unsigned n)
{
    default_threads_override.store(n, std::memory_order_relaxed);
}

namespace
{

/** Per-node work counter, padded so shards never share a line. */
struct alignas(64) NodeShard
{
    std::atomic<std::uint64_t> next{0};
    std::uint64_t end = 0;
};

} // anonymous namespace

void
parallelFor(std::uint64_t n,
            const std::function<void(std::uint64_t)> &body,
            unsigned threads)
{
    if (threads == 0)
        threads = defaultThreads();
    if (threads > n)
        threads = static_cast<unsigned>(n);
    if (threads <= 1) {
        for (std::uint64_t i = 0; i < n; ++i)
            body(i);
        return;
    }

    const numa::Topology &topo = numa::topology();
    const bool pin = numa::pinningEnabled();
    unsigned nodes = topo.nodes();
    if (nodes > threads)
        nodes = threads;

    if (nodes <= 1 && !pin) {
        // Single-node, unpinned: the classic one-counter dispatch.
        std::atomic<std::uint64_t> next{0};
        auto drain = [&next, n, &body] {
            for (std::uint64_t i;
                 (i = next.fetch_add(1, std::memory_order_relaxed))
                 < n;)
                body(i);
        };

        // The calling thread is one of the workers, so a width-t
        // parallelFor spawns only t-1 threads.
        ThreadPool pool(threads - 1);
        for (unsigned w = 1; w < threads; ++w)
            pool.run(drain);
        drain();
        pool.wait();
        return;
    }

    // NUMA-sharded dispatch: indices are split into one contiguous
    // shard per node, workers are spread across nodes (and pinned to
    // theirs when pinning is on), and each worker drains its own
    // node's shard before stealing from the others. Bodies still
    // only write their own index, so results stay bit-identical to
    // the serial order; sharding only changes which worker — and
    // which node's memory — serves an index in the common case.
    std::vector<NodeShard> shards(nodes);
    for (unsigned s = 0; s < nodes; ++s) {
        shards[s].next.store(n * s / nodes,
                             std::memory_order_relaxed);
        shards[s].end = n * (s + 1) / nodes;
    }

    auto drain = [&shards, nodes, threads, pin, &body](unsigned w) {
        unsigned home = w * nodes / threads;
        if (pin)
            numa::pinThreadToNode(home);
        for (unsigned k = 0; k < nodes; ++k) {
            NodeShard &shard = shards[(home + k) % nodes];
            for (std::uint64_t i;
                 (i = shard.next.fetch_add(
                      1, std::memory_order_relaxed))
                 < shard.end;)
                body(i);
        }
    };

    // The caller participates as worker 0; the guard restores its
    // affinity once the sweep completes.
    numa::AffinityGuard guard;
    ThreadPool pool(threads - 1);
    for (unsigned w = 1; w < threads; ++w)
        pool.run([&drain, w] { drain(w); });
    drain(0);
    pool.wait();
}

} // namespace tw
