#include "base/thread_pool.hh"

#include <atomic>
#include <cstdlib>

namespace tw
{

ThreadPool::ThreadPool(unsigned threads)
{
    if (threads == 0)
        threads = 1;
    workers_.reserve(threads);
    for (unsigned i = 0; i < threads; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::unique_lock<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    workReady_.notify_all();
    for (auto &w : workers_)
        w.join();
}

void
ThreadPool::run(std::function<void()> task)
{
    {
        std::unique_lock<std::mutex> lock(mutex_);
        queue_.push_back(std::move(task));
        ++pending_;
    }
    workReady_.notify_one();
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lock(mutex_);
    allDone_.wait(lock, [this] { return pending_ == 0; });
}

void
ThreadPool::workerLoop()
{
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
        workReady_.wait(lock, [this] {
            return stopping_ || !queue_.empty();
        });
        if (queue_.empty()) {
            if (stopping_)
                return;
            continue;
        }
        std::function<void()> task = std::move(queue_.front());
        queue_.pop_front();
        lock.unlock();
        task();
        lock.lock();
        if (--pending_ == 0)
            allDone_.notify_all();
    }
}

unsigned
hardwareThreads()
{
    unsigned n = std::thread::hardware_concurrency();
    return n == 0 ? 1 : n;
}

namespace
{

std::atomic<unsigned> default_threads_override{0};

unsigned
envThreads()
{
    const char *env = std::getenv("TW_THREADS");
    if (!env || !*env)
        return 0;
    long v = std::strtol(env, nullptr, 10);
    return v > 0 ? static_cast<unsigned>(v) : 0;
}

} // anonymous namespace

unsigned
defaultThreads()
{
    unsigned n = default_threads_override.load(std::memory_order_relaxed);
    if (n != 0)
        return n;
    n = envThreads();
    return n != 0 ? n : hardwareThreads();
}

void
setDefaultThreads(unsigned n)
{
    default_threads_override.store(n, std::memory_order_relaxed);
}

void
parallelFor(std::uint64_t n,
            const std::function<void(std::uint64_t)> &body,
            unsigned threads)
{
    if (threads == 0)
        threads = defaultThreads();
    if (threads > n)
        threads = static_cast<unsigned>(n);
    if (threads <= 1) {
        for (std::uint64_t i = 0; i < n; ++i)
            body(i);
        return;
    }

    std::atomic<std::uint64_t> next{0};
    auto drain = [&next, n, &body] {
        for (std::uint64_t i;
             (i = next.fetch_add(1, std::memory_order_relaxed)) < n;)
            body(i);
    };

    // The calling thread is one of the workers, so a width-t
    // parallelFor spawns only t-1 threads.
    ThreadPool pool(threads - 1);
    for (unsigned w = 1; w < threads; ++w)
        pool.run(drain);
    drain();
    pool.wait();
}

} // namespace tw
