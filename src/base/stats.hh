/**
 * @file
 * Trial statistics in the form the paper reports them.
 *
 * Tables 7-10 of the paper summarize repeated experimental trials as
 * mean, standard deviation, minimum, maximum and range, each also
 * expressed as a percentage of (or difference from) the mean. The
 * Summary type computes exactly those columns.
 */

#ifndef TW_BASE_STATS_HH
#define TW_BASE_STATS_HH

#include <cstddef>
#include <limits>
#include <vector>

namespace tw
{

/**
 * Streaming accumulator for mean / variance / extrema using
 * Welford's algorithm (numerically stable for long runs).
 */
class RunningStat
{
  public:
    /** Add one observation. */
    void
    push(double x)
    {
        ++n_;
        double delta = x - mean_;
        mean_ += delta / static_cast<double>(n_);
        m2_ += delta * (x - mean_);
        if (x < min_)
            min_ = x;
        if (x > max_)
            max_ = x;
    }

    /** Number of observations so far. */
    std::size_t count() const { return n_; }

    /** Sample mean (0 if empty). */
    double mean() const { return n_ ? mean_ : 0.0; }

    /** Unbiased sample variance (0 if fewer than two samples). */
    double
    variance() const
    {
        return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
    }

    /** Sample standard deviation. */
    double stddev() const;

    /** Smallest observation (+inf if empty). */
    double min() const { return min_; }

    /** Largest observation (-inf if empty). */
    double max() const { return max_; }

    /** max() - min() (0 if empty). */
    double range() const { return n_ ? max_ - min_ : 0.0; }

  private:
    std::size_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

/**
 * Summary of a finished set of trials, with the percentage columns
 * used by Tables 7-10: s and range as percent of the mean, min and
 * max as percent difference from the mean.
 */
struct Summary
{
    std::size_t n = 0;
    double mean = 0.0;
    double stddev = 0.0;
    double min = 0.0;
    double max = 0.0;
    double range = 0.0;

    /** s as a percentage of the mean (paper's "(57%)" style). */
    double stddevPct() const;

    /** |min - mean| as a percentage of the mean. */
    double minPct() const;

    /** |max - mean| as a percentage of the mean. */
    double maxPct() const;

    /** range as a percentage of the mean. */
    double rangePct() const;

    /** Half-width of a ~95% confidence interval for the mean. */
    double ci95() const;
};

/** Summarize a vector of trial observations. */
Summary summarize(const std::vector<double> &xs);

/** Summarize a finished RunningStat. */
Summary summarize(const RunningStat &rs);

} // namespace tw

#endif // TW_BASE_STATS_HH
