/**
 * @file
 * A bounded multi-producer/multi-consumer FIFO with explicit
 * backpressure.
 *
 * The experiment service admits work through this queue: session
 * threads produce jobs, the worker pool consumes them, and when the
 * queue is full a submission is REJECTED (the tryPush family returns
 * false) instead of
 * growing the queue or blocking the session — the "overloaded"
 * admission-control policy of DESIGN.md §9. A whole sweep is admitted
 * atomically via tryPushAll() so a client never observes half of its
 * trials accepted and the rest refused.
 *
 * close() stops admission but lets consumers drain what was already
 * accepted — the graceful-SIGTERM path: every admitted job still
 * produces its result row before the daemon exits.
 *
 * Distribution adds RESERVATIONS (two-phase admission): a router
 * fanning one sweep across several shards must know every shard has
 * room before committing any of them. tryReserve(n) claims n slots
 * of free space without enqueuing anything; pushReserved() later
 * consumes the claim (returning any excess — cache hits discovered
 * at commit need fewer slots than were reserved), and
 * releaseReserved() abandons it. Reserved space counts against
 * capacity for every admission path, so an ordinary tryPushAll
 * cannot steal slots out from under a committed-to reservation.
 * close() voids all reservations: a reservation is a claim on
 * FUTURE admission, and PR 4's drain contract only protects work
 * already admitted — the router sees its commit fail shutting_down
 * and reports a clean typed error upstream.
 *
 * Plain mutex + two condition variables. Jobs are whole simulator
 * runs (milliseconds to seconds each), so queue overhead is
 * irrelevant and the simplicity keeps the semantics auditable; the
 * contention-heavy paths are exercised under TSan by
 * tests/base/test_bounded_queue.cc.
 */

#ifndef TW_BASE_BOUNDED_QUEUE_HH
#define TW_BASE_BOUNDED_QUEUE_HH

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

namespace tw
{

template <typename T>
class BoundedQueue
{
  public:
    /** A queue holding at most @p capacity items (at least 1). */
    explicit BoundedQueue(std::size_t capacity)
        : capacity_(capacity ? capacity : 1)
    {
    }

    BoundedQueue(const BoundedQueue &) = delete;
    BoundedQueue &operator=(const BoundedQueue &) = delete;

    std::size_t capacity() const { return capacity_; }

    std::size_t
    size() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return items_.size();
    }

    bool
    closed() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return closed_;
    }

    /**
     * Admit one item if there is room; false when full or closed.
     * Never blocks — this is the backpressure edge.
     */
    bool
    tryPush(T item)
    {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            if (closed_ || items_.size() + reserved_ >= capacity_)
                return false;
            items_.push_back(std::move(item));
        }
        itemReady_.notify_one();
        return true;
    }

    /** Free slots a reservation could claim right now. */
    std::size_t
    freeSlots() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        std::size_t used = items_.size() + reserved_;
        return used >= capacity_ ? 0 : capacity_ - used;
    }

    /** Reserved-but-uncommitted slots (tests, stats). */
    std::size_t
    reserved() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return reserved_;
    }

    /**
     * Claim @p n slots of free space atomically, without enqueuing.
     * False when they don't all fit (counting existing reservations)
     * or the queue is closed. n of 0 succeeds trivially.
     */
    bool
    tryReserve(std::size_t n)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        std::size_t used = items_.size() + reserved_;
        if (closed_ || used > capacity_ || capacity_ - used < n)
            return false;
        reserved_ += n;
        return true;
    }

    /**
     * Return @p n reserved slots unused. Clamped — releasing after
     * close() (which voids all reservations) is a harmless no-op.
     */
    void
    releaseReserved(std::size_t n)
    {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            reserved_ -= std::min(n, reserved_);
        }
        spaceReady_.notify_all();
    }

    /**
     * Consume a reservation of @p reserved slots with @p items
     * (items.size() <= reserved; the difference — trials that
     * turned out to be cache hits at commit — is released). False
     * without queue change when the queue is closed (the
     * reservation was already voided) or when the items exceed the
     * surviving reservation.
     */
    bool
    pushReserved(std::vector<T> items, std::size_t reserved)
    {
        std::size_t n = items.size();
        {
            std::lock_guard<std::mutex> lock(mutex_);
            if (closed_ || n > reserved || reserved_ < n)
                return false;
            reserved_ -= std::min(reserved, reserved_);
            for (T &item : items)
                items_.push_back(std::move(item));
        }
        if (n == 1)
            itemReady_.notify_one();
        else if (n > 1)
            itemReady_.notify_all();
        spaceReady_.notify_all();
        return true;
    }

    /**
     * Admit @p items atomically: all of them or none. False (and no
     * queue change) when they don't all fit or the queue is closed.
     * The batch must itself fit in the capacity.
     */
    bool
    tryPushAll(std::vector<T> items)
    {
        if (items.empty())
            return true;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            std::size_t used = items_.size() + reserved_;
            if (closed_ || used > capacity_
                || capacity_ - used < items.size())
                return false;
            for (T &item : items)
                items_.push_back(std::move(item));
        }
        if (items.size() == 1)
            itemReady_.notify_one();
        else
            itemReady_.notify_all();
        return true;
    }

    /**
     * Blocking push for producers that want backpressure-by-waiting
     * rather than rejection (tests, in-process tools). False when
     * the queue is closed before space appears.
     */
    bool
    push(T item)
    {
        {
            std::unique_lock<std::mutex> lock(mutex_);
            spaceReady_.wait(lock, [&] {
                return closed_
                       || items_.size() + reserved_ < capacity_;
            });
            if (closed_)
                return false;
            items_.push_back(std::move(item));
        }
        itemReady_.notify_one();
        return true;
    }

    /**
     * Take the oldest item, blocking while the queue is open and
     * empty. nullopt once the queue is closed AND drained — the
     * consumer's termination signal.
     */
    std::optional<T>
    pop()
    {
        std::optional<T> out;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            itemReady_.wait(lock,
                            [&] { return closed_ || !items_.empty(); });
            if (items_.empty())
                return std::nullopt;
            out.emplace(std::move(items_.front()));
            items_.pop_front();
        }
        spaceReady_.notify_one();
        return out;
    }

    /** Non-blocking take; nullopt when empty. */
    std::optional<T>
    tryPop()
    {
        std::optional<T> out;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            if (items_.empty())
                return std::nullopt;
            out.emplace(std::move(items_.front()));
            items_.pop_front();
        }
        spaceReady_.notify_one();
        return out;
    }

    /**
     * Stop admission and wake every waiter. Items already admitted
     * remain poppable (drain); push/tryPush fail from now on.
     */
    void
    close()
    {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            closed_ = true;
            // Reservations are claims on future admission; a
            // closing queue voids them (see file comment).
            reserved_ = 0;
        }
        itemReady_.notify_all();
        spaceReady_.notify_all();
    }

  private:
    const std::size_t capacity_;
    mutable std::mutex mutex_;
    std::condition_variable itemReady_;
    std::condition_variable spaceReady_;
    std::deque<T> items_;
    std::size_t reserved_ = 0;
    bool closed_ = false;
};

} // namespace tw

#endif // TW_BASE_BOUNDED_QUEUE_HH
