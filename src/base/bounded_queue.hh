/**
 * @file
 * A bounded multi-producer/multi-consumer FIFO with explicit
 * backpressure.
 *
 * The experiment service admits work through this queue: session
 * threads produce jobs, the worker pool consumes them, and when the
 * queue is full a submission is REJECTED (the tryPush family returns
 * false) instead of
 * growing the queue or blocking the session — the "overloaded"
 * admission-control policy of DESIGN.md §9. A whole sweep is admitted
 * atomically via tryPushAll() so a client never observes half of its
 * trials accepted and the rest refused.
 *
 * close() stops admission but lets consumers drain what was already
 * accepted — the graceful-SIGTERM path: every admitted job still
 * produces its result row before the daemon exits.
 *
 * Plain mutex + two condition variables. Jobs are whole simulator
 * runs (milliseconds to seconds each), so queue overhead is
 * irrelevant and the simplicity keeps the semantics auditable; the
 * contention-heavy paths are exercised under TSan by
 * tests/base/test_bounded_queue.cc.
 */

#ifndef TW_BASE_BOUNDED_QUEUE_HH
#define TW_BASE_BOUNDED_QUEUE_HH

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

namespace tw
{

template <typename T>
class BoundedQueue
{
  public:
    /** A queue holding at most @p capacity items (at least 1). */
    explicit BoundedQueue(std::size_t capacity)
        : capacity_(capacity ? capacity : 1)
    {
    }

    BoundedQueue(const BoundedQueue &) = delete;
    BoundedQueue &operator=(const BoundedQueue &) = delete;

    std::size_t capacity() const { return capacity_; }

    std::size_t
    size() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return items_.size();
    }

    bool
    closed() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return closed_;
    }

    /**
     * Admit one item if there is room; false when full or closed.
     * Never blocks — this is the backpressure edge.
     */
    bool
    tryPush(T item)
    {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            if (closed_ || items_.size() >= capacity_)
                return false;
            items_.push_back(std::move(item));
        }
        itemReady_.notify_one();
        return true;
    }

    /**
     * Admit @p items atomically: all of them or none. False (and no
     * queue change) when they don't all fit or the queue is closed.
     * The batch must itself fit in the capacity.
     */
    bool
    tryPushAll(std::vector<T> items)
    {
        if (items.empty())
            return true;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            if (closed_
                || capacity_ - items_.size() < items.size())
                return false;
            for (T &item : items)
                items_.push_back(std::move(item));
        }
        if (items.size() == 1)
            itemReady_.notify_one();
        else
            itemReady_.notify_all();
        return true;
    }

    /**
     * Blocking push for producers that want backpressure-by-waiting
     * rather than rejection (tests, in-process tools). False when
     * the queue is closed before space appears.
     */
    bool
    push(T item)
    {
        {
            std::unique_lock<std::mutex> lock(mutex_);
            spaceReady_.wait(lock, [&] {
                return closed_ || items_.size() < capacity_;
            });
            if (closed_)
                return false;
            items_.push_back(std::move(item));
        }
        itemReady_.notify_one();
        return true;
    }

    /**
     * Take the oldest item, blocking while the queue is open and
     * empty. nullopt once the queue is closed AND drained — the
     * consumer's termination signal.
     */
    std::optional<T>
    pop()
    {
        std::optional<T> out;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            itemReady_.wait(lock,
                            [&] { return closed_ || !items_.empty(); });
            if (items_.empty())
                return std::nullopt;
            out.emplace(std::move(items_.front()));
            items_.pop_front();
        }
        spaceReady_.notify_one();
        return out;
    }

    /** Non-blocking take; nullopt when empty. */
    std::optional<T>
    tryPop()
    {
        std::optional<T> out;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            if (items_.empty())
                return std::nullopt;
            out.emplace(std::move(items_.front()));
            items_.pop_front();
        }
        spaceReady_.notify_one();
        return out;
    }

    /**
     * Stop admission and wake every waiter. Items already admitted
     * remain poppable (drain); push/tryPush fail from now on.
     */
    void
    close()
    {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            closed_ = true;
        }
        itemReady_.notify_all();
        spaceReady_.notify_all();
    }

  private:
    const std::size_t capacity_;
    mutable std::mutex mutex_;
    std::condition_variable itemReady_;
    std::condition_variable spaceReady_;
    std::deque<T> items_;
    bool closed_ = false;
};

} // namespace tw

#endif // TW_BASE_BOUNDED_QUEUE_HH
