#include "base/stats.hh"

#include <cmath>

namespace tw
{

double
RunningStat::stddev() const
{
    return std::sqrt(variance());
}

namespace
{

double
pctOfMean(double value, double mean)
{
    if (mean == 0.0)
        return 0.0;
    return 100.0 * value / std::abs(mean);
}

} // anonymous namespace

double
Summary::stddevPct() const
{
    return pctOfMean(stddev, mean);
}

double
Summary::minPct() const
{
    return pctOfMean(std::abs(mean - min), mean);
}

double
Summary::maxPct() const
{
    return pctOfMean(std::abs(max - mean), mean);
}

double
Summary::rangePct() const
{
    return pctOfMean(range, mean);
}

double
Summary::ci95() const
{
    if (n < 2)
        return 0.0;
    // 1.96 is the large-sample z value; for the paper's 16-trial
    // tables the t value would be 2.13, close enough for reporting.
    return 1.96 * stddev / std::sqrt(static_cast<double>(n));
}

Summary
summarize(const RunningStat &rs)
{
    Summary s;
    s.n = rs.count();
    s.mean = rs.mean();
    s.stddev = rs.stddev();
    s.min = rs.count() ? rs.min() : 0.0;
    s.max = rs.count() ? rs.max() : 0.0;
    s.range = rs.range();
    return s;
}

Summary
summarize(const std::vector<double> &xs)
{
    RunningStat rs;
    for (double x : xs)
        rs.push(x);
    return summarize(rs);
}

} // namespace tw
