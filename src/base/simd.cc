#include "base/simd.hh"

#include <cstdlib>
#include <cstring>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#define TW_SIMD_X86 1
#else
#define TW_SIMD_X86 0
#endif

namespace tw
{
namespace simd
{
namespace
{

// ---- portable word-loop implementations --------------------------

bool
anyBitsScalar(const std::uint64_t *words, std::uint64_t first,
              std::uint64_t last)
{
    std::uint64_t acc = 0;
    for (std::uint64_t w = first; w <= last; ++w)
        acc |= words[w];
    return acc != 0;
}

std::size_t
spanScalar(const Addr *p, const Addr *end, Addr page_mask, Addr page)
{
    const Addr *q = p;
    while (q != end && (*q & page_mask) == page)
        ++q;
    return static_cast<std::size_t>(q - p);
}

#if TW_SIMD_X86

// ---- AVX2: 32-byte blocks, scalar tails --------------------------
//
// Tails run scalar rather than via overlapping loads: exporters like
// TapewormTlb hand us unpadded vectors, so a scan must never touch a
// byte outside [first, last] / [p, end).

__attribute__((target("avx2"))) bool
anyBitsAvx2(const std::uint64_t *words, std::uint64_t first,
            std::uint64_t last)
{
    std::uint64_t w = first;
    std::uint64_t n = last - first + 1;
    __m256i acc = _mm256_setzero_si256();
    while (n >= 4) {
        acc = _mm256_or_si256(
            acc, _mm256_loadu_si256(
                     reinterpret_cast<const __m256i *>(words + w)));
        w += 4;
        n -= 4;
    }
    if (!_mm256_testz_si256(acc, acc))
        return true;
    std::uint64_t tail = 0;
    while (n--)
        tail |= words[w++];
    return tail != 0;
}

__attribute__((target("avx2"))) std::size_t
spanAvx2(const Addr *p, const Addr *end, Addr page_mask, Addr page)
{
    const Addr *q = p;
    std::size_t n = static_cast<std::size_t>(end - p);
    const __m256i vmask = _mm256_set1_epi64x(
        static_cast<long long>(page_mask));
    const __m256i vpage = _mm256_set1_epi64x(
        static_cast<long long>(page));
    while (n >= 4) {
        __m256i v = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(q));
        __m256i eq = _mm256_cmpeq_epi64(
            _mm256_and_si256(v, vmask), vpage);
        int lanes = _mm256_movemask_pd(_mm256_castsi256_pd(eq));
        if (lanes != 0xf) {
            return static_cast<std::size_t>(q - p)
                   + static_cast<std::size_t>(
                       __builtin_ctz(~static_cast<unsigned>(lanes)));
        }
        q += 4;
        n -= 4;
    }
    while (n && (*q & page_mask) == page) {
        ++q;
        --n;
    }
    return static_cast<std::size_t>(q - p);
}

// ---- AVX-512: 64-byte blocks, masked tails -----------------------

__attribute__((target("avx512f"))) bool
anyBitsAvx512(const std::uint64_t *words, std::uint64_t first,
              std::uint64_t last)
{
    std::uint64_t w = first;
    std::uint64_t n = last - first + 1;
    while (n >= 8) {
        __m512i v = _mm512_loadu_si512(words + w);
        if (_mm512_test_epi64_mask(v, v))
            return true;
        w += 8;
        n -= 8;
    }
    if (n) {
        __mmask8 k = static_cast<__mmask8>((1u << n) - 1u);
        __m512i v = _mm512_maskz_loadu_epi64(k, words + w);
        if (_mm512_test_epi64_mask(v, v))
            return true;
    }
    return false;
}

__attribute__((target("avx512f"))) std::size_t
spanAvx512(const Addr *p, const Addr *end, Addr page_mask, Addr page)
{
    const Addr *q = p;
    std::size_t n = static_cast<std::size_t>(end - p);
    const __m512i vmask = _mm512_set1_epi64(
        static_cast<long long>(page_mask));
    const __m512i vpage = _mm512_set1_epi64(
        static_cast<long long>(page));
    while (n >= 8) {
        __m512i v = _mm512_loadu_si512(q);
        __mmask8 ne = _mm512_cmpneq_epu64_mask(
            _mm512_and_si512(v, vmask), vpage);
        if (ne) {
            return static_cast<std::size_t>(q - p)
                   + static_cast<std::size_t>(__builtin_ctz(ne));
        }
        q += 8;
        n -= 8;
    }
    if (n) {
        __mmask8 k = static_cast<__mmask8>((1u << n) - 1u);
        __m512i v = _mm512_maskz_loadu_epi64(k, q);
        // Masked-off lanes load as 0; force them to "match" so only
        // real mismatches terminate the span.
        __mmask8 ne = static_cast<__mmask8>(
            _mm512_mask_cmpneq_epu64_mask(
                k, _mm512_and_si512(v, vmask), vpage));
        std::size_t hit = ne ? static_cast<std::size_t>(
                               __builtin_ctz(ne))
                             : n;
        return static_cast<std::size_t>(q - p) + hit;
    }
    return static_cast<std::size_t>(q - p);
}

#endif // TW_SIMD_X86

Level
probeHost()
{
#if TW_SIMD_X86
    if (__builtin_cpu_supports("avx512f"))
        return Level::Avx512;
    if (__builtin_cpu_supports("avx2"))
        return Level::Avx2;
#endif
    return Level::Scalar;
}

std::atomic<bool> enabledFlag{true};

void
install(Level level)
{
    switch (level) {
#if TW_SIMD_X86
      case Level::Avx512:
        detail::anyBitsFn.store(&anyBitsAvx512,
                                std::memory_order_relaxed);
        detail::spanFn.store(&spanAvx512, std::memory_order_relaxed);
        break;
      case Level::Avx2:
        detail::anyBitsFn.store(&anyBitsAvx2,
                                std::memory_order_relaxed);
        detail::spanFn.store(&spanAvx2, std::memory_order_relaxed);
        break;
#endif
      default:
        detail::anyBitsFn.store(&anyBitsScalar,
                                std::memory_order_relaxed);
        detail::spanFn.store(&spanScalar, std::memory_order_relaxed);
        break;
    }
}

// Applies TW_NO_SIMD and installs the host-widest implementations
// before main() runs; setEnabled() re-installs later.
struct Init
{
    Init()
    {
        const char *env = std::getenv("TW_NO_SIMD");
        bool on = !(env && env[0] && std::strcmp(env, "0") != 0);
        enabledFlag.store(on, std::memory_order_relaxed);
        install(on ? probeHost() : Level::Scalar);
    }
};
Init initOnce;

} // namespace

namespace detail
{

std::atomic<AnyBitsFn> anyBitsFn{&anyBitsScalar};
std::atomic<SpanFn> spanFn{&spanScalar};

} // namespace detail

const char *
levelName(Level level)
{
    switch (level) {
      case Level::Avx512:
        return "avx512";
      case Level::Avx2:
        return "avx2";
      default:
        return "scalar";
    }
}

Level
detectedLevel()
{
    static const Level host = probeHost();
    return host;
}

Level
activeLevel()
{
    return enabledFlag.load(std::memory_order_relaxed)
               ? detectedLevel()
               : Level::Scalar;
}

void
setEnabled(bool on)
{
    enabledFlag.store(on, std::memory_order_relaxed);
    install(on ? detectedLevel() : Level::Scalar);
}

} // namespace simd
} // namespace tw
