#include "base/json.hh"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "base/logging.hh"

namespace tw
{

Json
Json::boolean(bool v)
{
    Json j;
    j.kind_ = Kind::Bool;
    j.flag_ = v;
    return j;
}

Json
Json::number(double v)
{
    Json j;
    j.kind_ = Kind::Number;
    // %.17g round-trips every finite double exactly; JSON has no
    // inf/nan, so those render as null-adjacent sentinels that the
    // strict parser would reject — the harness never produces them.
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    j.text_ = buf;
    return j;
}

Json
Json::number(std::uint64_t v)
{
    Json j;
    j.kind_ = Kind::Number;
    j.text_ = std::to_string(v);
    return j;
}

Json
Json::number(std::int64_t v)
{
    Json j;
    j.kind_ = Kind::Number;
    j.text_ = std::to_string(v);
    return j;
}

Json
Json::numberLexeme(std::string lexeme)
{
    Json j;
    j.kind_ = Kind::Number;
    j.text_ = std::move(lexeme);
    return j;
}

Json
Json::str(std::string v)
{
    Json j;
    j.kind_ = Kind::String;
    j.text_ = std::move(v);
    return j;
}

Json
Json::array()
{
    Json j;
    j.kind_ = Kind::Array;
    return j;
}

Json
Json::object()
{
    Json j;
    j.kind_ = Kind::Object;
    return j;
}

double
Json::asDouble() const
{
    if (kind_ != Kind::Number)
        return 0.0;
    return std::strtod(text_.c_str(), nullptr);
}

std::uint64_t
Json::asU64() const
{
    if (kind_ != Kind::Number)
        return 0;
    // A negative lexeme must not wrap through strtoull ("-1" would
    // read as UINT64_MAX) nor hit the undefined negative-double
    // cast: clamp to 0, and let callers reject via isNegative().
    if (!text_.empty() && text_[0] == '-')
        return 0;
    // Integral lexemes parse exactly; scientific/fractional ones
    // fall back through the double path.
    if (text_.find_first_of(".eE") == std::string::npos)
        return std::strtoull(text_.c_str(), nullptr, 10);
    return static_cast<std::uint64_t>(asDouble());
}

std::int64_t
Json::asI64() const
{
    if (kind_ != Kind::Number)
        return 0;
    if (text_.find_first_of(".eE") == std::string::npos)
        return std::strtoll(text_.c_str(), nullptr, 10);
    return static_cast<std::int64_t>(asDouble());
}

Json &
Json::push(Json v)
{
    TW_ASSERT(kind_ == Kind::Array, "push on non-array Json");
    elems_.push_back(std::move(v));
    return elems_.back();
}

const Json *
Json::find(const std::string &key) const
{
    for (const auto &[k, v] : members_) {
        if (k == key)
            return &v;
    }
    return nullptr;
}

Json &
Json::set(const std::string &key, Json v)
{
    TW_ASSERT(kind_ == Kind::Object, "set on non-object Json");
    for (auto &[k, old] : members_) {
        if (k == key) {
            old = std::move(v);
            return old;
        }
    }
    members_.emplace_back(key, std::move(v));
    return members_.back().second;
}

const Json *
Json::findPath(const std::string &dotted) const
{
    const Json *cur = this;
    std::size_t pos = 0;
    while (pos <= dotted.size()) {
        std::size_t dot = dotted.find('.', pos);
        std::string key = dotted.substr(
            pos, dot == std::string::npos ? std::string::npos
                                          : dot - pos);
        if (!cur->isObject())
            return nullptr;
        cur = cur->find(key);
        if (!cur)
            return nullptr;
        if (dot == std::string::npos)
            return cur;
        pos = dot + 1;
    }
    return nullptr;
}

void
jsonEscape(const std::string &s, std::string &out)
{
    out += '"';
    for (unsigned char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          case '\b':
            out += "\\b";
            break;
          case '\f':
            out += "\\f";
            break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += static_cast<char>(c);
            }
        }
    }
    out += '"';
}

void
Json::dumpTo(std::string &out) const
{
    switch (kind_) {
      case Kind::Null:
        out += "null";
        break;
      case Kind::Bool:
        out += flag_ ? "true" : "false";
        break;
      case Kind::Number:
        out += text_;
        break;
      case Kind::String:
        jsonEscape(text_, out);
        break;
      case Kind::Array: {
        out += '[';
        bool first = true;
        for (const auto &e : elems_) {
            if (!first)
                out += ',';
            first = false;
            e.dumpTo(out);
        }
        out += ']';
        break;
      }
      case Kind::Object: {
        out += '{';
        bool first = true;
        for (const auto &[k, v] : members_) {
            if (!first)
                out += ',';
            first = false;
            jsonEscape(k, out);
            out += ':';
            v.dumpTo(out);
        }
        out += '}';
        break;
      }
    }
}

std::string
Json::dump() const
{
    std::string out;
    dumpTo(out);
    return out;
}

namespace
{

/** Strict recursive-descent parser over a byte range. */
class Parser
{
  public:
    Parser(const char *p, const char *end) : p_(p), end_(end) {}

    bool
    parseTop(Json &out, std::string &err)
    {
        skipWs();
        if (!parseValue(out, err, 0))
            return false;
        skipWs();
        if (p_ != end_) {
            err = "trailing garbage after JSON value";
            return false;
        }
        return true;
    }

  private:
    static constexpr int kMaxDepth = 64;

    void
    skipWs()
    {
        while (p_ != end_
               && (*p_ == ' ' || *p_ == '\t' || *p_ == '\n'
                   || *p_ == '\r'))
            ++p_;
    }

    bool
    literal(const char *word)
    {
        std::size_t n = std::strlen(word);
        if (static_cast<std::size_t>(end_ - p_) < n
            || std::memcmp(p_, word, n) != 0)
            return false;
        p_ += n;
        return true;
    }

    bool
    parseValue(Json &out, std::string &err, int depth)
    {
        if (depth > kMaxDepth) {
            err = "nesting too deep";
            return false;
        }
        if (p_ == end_) {
            err = "unexpected end of input";
            return false;
        }
        switch (*p_) {
          case 'n':
            if (!literal("null")) {
                err = "bad literal";
                return false;
            }
            out = Json::null();
            return true;
          case 't':
            if (!literal("true")) {
                err = "bad literal";
                return false;
            }
            out = Json::boolean(true);
            return true;
          case 'f':
            if (!literal("false")) {
                err = "bad literal";
                return false;
            }
            out = Json::boolean(false);
            return true;
          case '"': {
            std::string s;
            if (!parseString(s, err))
                return false;
            out = Json::str(std::move(s));
            return true;
          }
          case '[':
            return parseArray(out, err, depth);
          case '{':
            return parseObject(out, err, depth);
          default:
            return parseNumber(out, err);
        }
    }

    bool
    parseNumber(Json &out, std::string &err)
    {
        const char *start = p_;
        if (p_ != end_ && *p_ == '-')
            ++p_;
        if (p_ == end_ || !std::isdigit(static_cast<unsigned char>(*p_))) {
            err = "bad number";
            return false;
        }
        const char *intStart = p_;
        while (p_ != end_ && std::isdigit(static_cast<unsigned char>(*p_)))
            ++p_;
        // RFC 8259: no leading zeros ("01" is not a number). A
        // canonical lexeme that failed to round-trip would
        // otherwise slip through as a different cache key.
        if (*intStart == '0' && p_ - intStart > 1) {
            err = "bad number (leading zero)";
            return false;
        }
        if (p_ != end_ && *p_ == '.') {
            ++p_;
            if (p_ == end_
                || !std::isdigit(static_cast<unsigned char>(*p_))) {
                err = "bad number";
                return false;
            }
            while (p_ != end_
                   && std::isdigit(static_cast<unsigned char>(*p_)))
                ++p_;
        }
        if (p_ != end_ && (*p_ == 'e' || *p_ == 'E')) {
            ++p_;
            if (p_ != end_ && (*p_ == '+' || *p_ == '-'))
                ++p_;
            if (p_ == end_
                || !std::isdigit(static_cast<unsigned char>(*p_))) {
                err = "bad number";
                return false;
            }
            while (p_ != end_
                   && std::isdigit(static_cast<unsigned char>(*p_)))
                ++p_;
        }
        // Keep the exact lexeme (see file comment in json.hh).
        out = Json::numberLexeme(std::string(start, p_));
        return true;
    }

    bool
    parseString(std::string &out, std::string &err)
    {
        ++p_; // opening quote
        while (p_ != end_) {
            unsigned char c = static_cast<unsigned char>(*p_);
            if (c == '"') {
                ++p_;
                return true;
            }
            if (c == '\\') {
                ++p_;
                if (p_ == end_) {
                    err = "bad escape";
                    return false;
                }
                char e = *p_++;
                switch (e) {
                  case '"':
                    out += '"';
                    break;
                  case '\\':
                    out += '\\';
                    break;
                  case '/':
                    out += '/';
                    break;
                  case 'n':
                    out += '\n';
                    break;
                  case 'r':
                    out += '\r';
                    break;
                  case 't':
                    out += '\t';
                    break;
                  case 'b':
                    out += '\b';
                    break;
                  case 'f':
                    out += '\f';
                    break;
                  case 'u': {
                    if (end_ - p_ < 4) {
                        err = "bad \\u escape";
                        return false;
                    }
                    unsigned cp = 0;
                    for (int i = 0; i < 4; ++i) {
                        char h = *p_++;
                        cp <<= 4;
                        if (h >= '0' && h <= '9')
                            cp |= static_cast<unsigned>(h - '0');
                        else if (h >= 'a' && h <= 'f')
                            cp |= static_cast<unsigned>(h - 'a' + 10);
                        else if (h >= 'A' && h <= 'F')
                            cp |= static_cast<unsigned>(h - 'A' + 10);
                        else {
                            err = "bad \\u escape";
                            return false;
                        }
                    }
                    appendUtf8(out, cp);
                    break;
                  }
                  default:
                    err = "bad escape";
                    return false;
                }
            } else if (c < 0x20) {
                err = "raw control character in string";
                return false;
            } else {
                out += static_cast<char>(c);
                ++p_;
            }
        }
        err = "unterminated string";
        return false;
    }

    static void
    appendUtf8(std::string &out, unsigned cp)
    {
        if (cp < 0x80) {
            out += static_cast<char>(cp);
        } else if (cp < 0x800) {
            out += static_cast<char>(0xc0 | (cp >> 6));
            out += static_cast<char>(0x80 | (cp & 0x3f));
        } else {
            out += static_cast<char>(0xe0 | (cp >> 12));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
            out += static_cast<char>(0x80 | (cp & 0x3f));
        }
    }

    bool
    parseArray(Json &out, std::string &err, int depth)
    {
        ++p_; // '['
        out = Json::array();
        skipWs();
        if (p_ != end_ && *p_ == ']') {
            ++p_;
            return true;
        }
        while (true) {
            Json elem;
            skipWs();
            if (!parseValue(elem, err, depth + 1))
                return false;
            out.push(std::move(elem));
            skipWs();
            if (p_ == end_) {
                err = "unterminated array";
                return false;
            }
            if (*p_ == ',') {
                ++p_;
                continue;
            }
            if (*p_ == ']') {
                ++p_;
                return true;
            }
            err = "expected ',' or ']'";
            return false;
        }
    }

    bool
    parseObject(Json &out, std::string &err, int depth)
    {
        ++p_; // '{'
        out = Json::object();
        skipWs();
        if (p_ != end_ && *p_ == '}') {
            ++p_;
            return true;
        }
        while (true) {
            skipWs();
            if (p_ == end_ || *p_ != '"') {
                err = "expected object key";
                return false;
            }
            std::string key;
            if (!parseString(key, err))
                return false;
            skipWs();
            if (p_ == end_ || *p_ != ':') {
                err = "expected ':'";
                return false;
            }
            ++p_;
            skipWs();
            Json val;
            if (!parseValue(val, err, depth + 1))
                return false;
            out.set(key, std::move(val));
            skipWs();
            if (p_ == end_) {
                err = "unterminated object";
                return false;
            }
            if (*p_ == ',') {
                ++p_;
                continue;
            }
            if (*p_ == '}') {
                ++p_;
                return true;
            }
            err = "expected ',' or '}'";
            return false;
        }
    }

    const char *p_;
    const char *end_;
};

} // anonymous namespace

bool
Json::parse(const std::string &text, Json &out, std::string *err)
{
    std::string local;
    Parser parser(text.data(), text.data() + text.size());
    bool ok = parser.parseTop(out, local);
    if (!ok && err)
        *err = local;
    return ok;
}

} // namespace tw
