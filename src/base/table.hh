/**
 * @file
 * Plain-text table rendering for the benchmark harness.
 *
 * Every bench binary regenerates one of the paper's tables or
 * figures; TextTable prints them in an aligned monospace layout (and
 * optionally CSV) so the output can be compared side by side with
 * the paper.
 */

#ifndef TW_BASE_TABLE_HH
#define TW_BASE_TABLE_HH

#include <string>
#include <vector>

namespace tw
{

/**
 * A simple column-aligned text table.
 *
 * Cells are strings; numeric formatting is the caller's job (the
 * harness provides helpers that match the paper's formats, e.g.
 * "37.91 (0.027)").
 */
class TextTable
{
  public:
    /** Create a table with the given column headers. */
    explicit TextTable(std::vector<std::string> headers);

    /** Append a data row; must have as many cells as headers. */
    void addRow(std::vector<std::string> cells);

    /** Append a horizontal separator row. */
    void addRule();

    /** Render with aligned columns (first column left, rest right). */
    std::string render() const;

    /** Render as CSV (separator rows are skipped). */
    std::string renderCsv() const;

    /** Number of data rows (separators excluded). */
    std::size_t rowCount() const;

  private:
    struct Row
    {
        bool rule = false;
        std::vector<std::string> cells;
    };

    std::vector<std::string> headers_;
    std::vector<Row> rows_;
};

/** Format a double with @p digits fraction digits. */
std::string fmtF(double v, int digits);

/** Format misses-in-millions with a parenthesized ratio, paper style. */
std::string fmtMissAndRatio(double misses_millions, double ratio);

/** Format a value with a parenthesized percentage, paper style. */
std::string fmtValAndPct(double v, double pct, int digits = 2);

} // namespace tw

#endif // TW_BASE_TABLE_HH
