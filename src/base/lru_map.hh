/**
 * @file
 * An intrusively-ordered LRU map: hash lookup plus a recency list,
 * evicting least-recently-used entries beyond a capacity.
 *
 * Two long-lived caches share this: the Runner's baseline memo
 * (which previously grew without bound — fatal for a resident
 * daemon) and the experiment service's result cache. Not internally
 * synchronized: both users wrap it in their own lock, because the
 * useful atomic units (find-then-insert, lookup-with-stats) span
 * multiple calls anyway.
 */

#ifndef TW_BASE_LRU_MAP_HH
#define TW_BASE_LRU_MAP_HH

#include <cstddef>
#include <cstdint>
#include <list>
#include <unordered_map>
#include <utility>

namespace tw
{

template <typename K, typename V>
class LruMap
{
  public:
    /** Hold at most @p capacity entries (at least 1). */
    explicit LruMap(std::size_t capacity)
        : capacity_(capacity ? capacity : 1)
    {
    }

    std::size_t capacity() const { return capacity_; }
    std::size_t size() const { return index_.size(); }
    std::uint64_t evictions() const { return evictions_; }

    /**
     * Shrink or grow the capacity; shrinking evicts LRU entries
     * immediately.
     */
    void
    setCapacity(std::size_t capacity)
    {
        capacity_ = capacity ? capacity : 1;
        while (index_.size() > capacity_)
            evictOne();
    }

    /** Lookup; touches the entry (most recent). Null when absent. */
    V *
    find(const K &key)
    {
        auto it = index_.find(key);
        if (it == index_.end())
            return nullptr;
        order_.splice(order_.begin(), order_, it->second);
        return &it->second->second;
    }

    /** Lookup without touching recency (diagnostics). */
    const V *
    peek(const K &key) const
    {
        auto it = index_.find(key);
        return it == index_.end() ? nullptr : &it->second->second;
    }

    /**
     * Insert or overwrite; the entry becomes most recent. Evicts
     * the LRU entry when a fresh insert exceeds the capacity.
     */
    V &
    insert(const K &key, V value)
    {
        auto it = index_.find(key);
        if (it != index_.end()) {
            it->second->second = std::move(value);
            order_.splice(order_.begin(), order_, it->second);
            return it->second->second;
        }
        order_.emplace_front(key, std::move(value));
        index_.emplace(key, order_.begin());
        if (index_.size() > capacity_)
            evictOne();
        return order_.front().second;
    }

    /** Remove one entry; false when absent. */
    bool
    erase(const K &key)
    {
        auto it = index_.find(key);
        if (it == index_.end())
            return false;
        order_.erase(it->second);
        index_.erase(it);
        return true;
    }

    void
    clear()
    {
        order_.clear();
        index_.clear();
    }

  private:
    void
    evictOne()
    {
        index_.erase(order_.back().first);
        order_.pop_back();
        ++evictions_;
    }

    std::size_t capacity_;
    std::list<std::pair<K, V>> order_; //!< front = most recent
    std::unordered_map<K, typename std::list<std::pair<K, V>>::iterator>
        index_;
    std::uint64_t evictions_ = 0;
};

} // namespace tw

#endif // TW_BASE_LRU_MAP_HH
