/**
 * @file
 * Minimal logging and error-reporting facilities.
 *
 * Follows the gem5 convention: panic() for internal invariant
 * violations (a simulator bug), fatal() for unusable user
 * configuration, warn()/inform() for status messages that never stop
 * the run.
 */

#ifndef TW_BASE_LOGGING_HH
#define TW_BASE_LOGGING_HH

#include <cstdarg>
#include <cstdio>
#include <string>

namespace tw
{

/**
 * Render a printf-style format string to a std::string.
 *
 * @param fmt printf-compatible format string.
 * @return The formatted text.
 */
std::string csprintf(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** vsnprintf-backed core of csprintf(). */
std::string vcsprintf(const char *fmt, std::va_list args);

/**
 * Abort the process because an internal invariant was violated.
 * Never returns.
 */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Exit the process because the user supplied an unusable
 * configuration. Never returns.
 */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Report a suspicious-but-survivable condition to stderr. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Report normal operating status to stderr. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/**
 * Name this process's log component tag ("twserved", "bench", ...).
 * Only visible in TW_LOG=json output; the default human format is
 * unchanged. Call once at startup, before spawning threads.
 */
void setLogComponent(const char *name);

/** True when TW_LOG=json selected structured log lines (the
 *  environment is consulted once, at first log call). */
bool logJsonEnabled();

/**
 * Render one structured log line (no trailing newline):
 * {"ts":"<ISO-8601 UTC, ms>","level":..,"thread":..,
 *  "component":..,"msg":..}. Pure function of its inputs so tests
 * can pin the format; warn()/inform() feed it the current clock,
 * a small per-thread ordinal, and the component tag.
 */
std::string logLineJson(const char *level, const char *component,
                        unsigned thread_id, long long unix_ms,
                        const std::string &msg);

/** Panic if @p cond is false; message describes the invariant. */
#define TW_ASSERT(cond, ...)                                            \
    do {                                                                \
        if (!(cond)) {                                                  \
            ::tw::panic("assertion '%s' failed at %s:%d: %s", #cond,    \
                        __FILE__, __LINE__,                             \
                        ::tw::csprintf(__VA_ARGS__).c_str());           \
        }                                                               \
    } while (0)

} // namespace tw

#endif // TW_BASE_LOGGING_HH
