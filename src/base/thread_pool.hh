/**
 * @file
 * A small fixed-size thread pool and a deterministic parallelFor.
 *
 * The experiment harness parallelizes across *trials* — independent
 * runs of the whole simulated machine under different seeds — never
 * within one simulated machine (see DESIGN.md). Each unit of work
 * writes its result into a slot chosen by its index, so the output
 * of a parallel sweep is bit-identical to the serial order no matter
 * how many workers execute it or in what order they finish.
 *
 * The pool is deliberately work-stealing-free: workers pull the next
 * index from one shared atomic counter. Trials are coarse (millions
 * of simulated instructions each), so contention on the counter is
 * unmeasurable and the simplicity keeps the determinism argument
 * trivial.
 */

#ifndef TW_BASE_THREAD_POOL_HH
#define TW_BASE_THREAD_POOL_HH

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace tw
{

/**
 * Fixed-size pool of worker threads draining one FIFO task queue.
 */
class ThreadPool
{
  public:
    /** Start @p threads workers (at least one). */
    explicit ThreadPool(unsigned threads);

    /** Drains the queue, then joins all workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Number of worker threads. */
    unsigned size() const { return static_cast<unsigned>(workers_.size()); }

    /** Enqueue one task; runs on some worker, FIFO order. */
    void run(std::function<void()> task);

    /** Block until every queued task has finished executing. */
    void wait();

  private:
    void workerLoop();

    std::mutex mutex_;
    std::condition_variable workReady_;
    std::condition_variable allDone_;
    std::deque<std::function<void()>> queue_;
    std::vector<std::thread> workers_;
    unsigned pending_ = 0; //!< tasks queued or executing
    bool stopping_ = false;
};

/** Number of hardware threads the host reports (at least 1). */
unsigned hardwareThreads();

/**
 * The harness-wide default worker count: the last value passed to
 * setDefaultThreads(), else the TW_THREADS environment variable,
 * else the hardware thread count.
 */
unsigned defaultThreads();

/** Override defaultThreads() (0 restores the TW_THREADS/hardware
 *  fallback). The bench binaries' --threads knob lands here. */
void setDefaultThreads(unsigned n);

/**
 * Run body(0) .. body(n-1), dispatching the indices across
 * @p threads workers (0 = defaultThreads()). Indices are handed out
 * in order from a shared counter; completion order is unspecified,
 * so the body must only write state owned by its own index. Runs
 * inline (no threads spawned) when the resolved width or @p n
 * is <= 1.
 *
 * A body that throws terminates the process — harness work reports
 * failure via fatal()/panic(), not exceptions.
 */
void parallelFor(std::uint64_t n,
                 const std::function<void(std::uint64_t)> &body,
                 unsigned threads = 0);

} // namespace tw

#endif // TW_BASE_THREAD_POOL_HH
