/**
 * @file
 * Fundamental scalar types shared by every Tapeworm II module.
 *
 * The conventions mirror the paper's terminology: physical and virtual
 * addresses are byte addresses, cycle counts are in host-machine clock
 * cycles (the simulated DECstation runs at kClockHz), and task
 * identifiers follow the paper's rule that tid 0 names the OS kernel.
 */

#ifndef TW_BASE_TYPES_HH
#define TW_BASE_TYPES_HH

#include <cstdint>

namespace tw
{

/** A byte address, physical or virtual depending on context. */
using Addr = std::uint64_t;

/** A count of simulated machine clock cycles. */
using Cycles = std::uint64_t;

/** A count of executed instructions (or memory references). */
using Counter = std::uint64_t;

/**
 * A task identifier. Tid 0 always denotes the OS kernel itself,
 * matching the tw_attributes() convention of the paper (Table 1).
 */
using TaskId = std::int32_t;

/** The task id reserved for the OS kernel. */
constexpr TaskId kKernelTid = 0;

/** An invalid / unassigned task id. */
constexpr TaskId kInvalidTid = -1;

/** An invalid address marker. */
constexpr Addr kInvalidAddr = ~static_cast<Addr>(0);

/** Bytes per machine word on the simulated host (MIPS R3000: 32-bit). */
constexpr unsigned kWordBytes = 4;

/**
 * Trap-bit granularity in bytes. The DECstation 5000/200 checks ECC
 * on 4-word cache-line refills, which limits trap granularity (and
 * therefore simulated line sizes) to multiples of 16 bytes (Section
 * 4.4 of the paper).
 */
constexpr unsigned kTrapGranuleBytes = 4 * kWordBytes;

/** Simulated host clock rate: the DECstation 5000/200 runs at 25 MHz. */
constexpr std::uint64_t kClockHz = 25'000'000;

/** Host page size of the simulated machine (DECstation: 4 KB pages). */
constexpr unsigned kHostPageBytes = 4096;

/**
 * Kind of a memory reference. Instruction-cache simulations consume
 * Fetch only; data-cache simulations consume Load/Store; unified
 * caches and TLBs consume all three. The Load/Store distinction
 * matters to trap-driven simulation because the host's write policy
 * decides whether stores to trapped memory raise a trap at all
 * (Section 4.4 of the paper).
 */
enum class AccessKind : std::uint8_t { Fetch, Load, Store };

/** Human-readable access-kind name. */
constexpr const char *
accessKindName(AccessKind k)
{
    switch (k) {
      case AccessKind::Fetch:
        return "fetch";
      case AccessKind::Load:
        return "load";
      case AccessKind::Store:
        return "store";
    }
    return "?";
}

constexpr std::uint64_t
operator"" _KiB(unsigned long long v)
{
    return v << 10;
}

constexpr std::uint64_t
operator"" _MiB(unsigned long long v)
{
    return v << 20;
}

} // namespace tw

#endif // TW_BASE_TYPES_HH
