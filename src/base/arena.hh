/**
 * @file
 * Per-worker bump arenas for trial-lifetime simulator state.
 *
 * A trial constructs a whole simulated machine — page tables, cache
 * line arrays, trap bitmaps — runs it, and throws it away. Under
 * runTrials that construct/destroy cycle repeats thousands of times
 * per sweep, and the general-purpose allocator charges lock traffic
 * and page churn for every round trip. The Arena replaces that with
 * a bump pointer over retained chunks:
 *
 *  - allocation is a pointer add (do_deallocate is a no-op);
 *  - reset() rewinds to the first chunk but KEEPS the chunks, so
 *    after the first trial on a worker the steady state is zero
 *    malloc/free per trial;
 *  - chunks are memset once when first mapped, so on a pinned
 *    worker the backing pages are first-touched on the worker's own
 *    NUMA node (see base/numa.hh) and stay local for every
 *    subsequent trial it serves.
 *
 * Lifetime rule: everything allocated from an arena dies before the
 * enclosing ArenaScope does. Trial code keeps that invariant by
 * construction — Runner::runOne opens the scope before the System
 * and clients, so their (no-op) deallocations all precede the
 * rewind — and anything that must escape the trial (RunOutcome and
 * friends) is plain-old-data copied out, never arena-backed.
 *
 * The active arena is a thread_local binding consulted through
 * arenaResource(); code built on std::pmr sees an ordinary
 * memory_resource and falls back to new_delete_resource() when no
 * scope is open (tests constructing a System directly).
 */

#ifndef TW_BASE_ARENA_HH
#define TW_BASE_ARENA_HH

#include <cstddef>
#include <cstdint>
#include <memory_resource>

namespace tw
{

/**
 * Chunk-retaining bump allocator (see file comment). Not
 * thread-safe: one arena belongs to one worker thread.
 */
class Arena final : public std::pmr::memory_resource
{
  public:
    static constexpr std::size_t kDefaultChunkBytes = 1u << 20;

    explicit Arena(std::size_t chunk_bytes = kDefaultChunkBytes);
    ~Arena() override;

    Arena(const Arena &) = delete;
    Arena &operator=(const Arena &) = delete;

    /** Rewind to empty, retaining every chunk for reuse. */
    void reset();

    /** Drop every chunk back to the host allocator. */
    void release();

    /** Total bytes of chunks this arena owns (monotone between
     *  release() calls — the obs bytes_reserved feed). */
    std::size_t reservedBytes() const { return reservedBytes_; }

    /** Bytes handed out since the last reset() (diagnostics). */
    std::size_t usedBytes() const { return usedBytes_; }

    std::size_t chunkCount() const { return chunkCount_; }

  private:
    struct Chunk
    {
        Chunk *next;
        std::size_t size; //!< usable bytes after the header
    };

    void *do_allocate(std::size_t bytes,
                      std::size_t alignment) override;

    void
    do_deallocate(void *, std::size_t, std::size_t) override
    {
        // Bump arena: individual frees are no-ops; reset() rewinds.
    }

    bool
    do_is_equal(const std::pmr::memory_resource &other)
        const noexcept override
    {
        return this == &other;
    }

    Chunk *newChunk(std::size_t min_bytes);

    Chunk *head_ = nullptr;    //!< all chunks, in allocation order
    Chunk *current_ = nullptr; //!< chunk the cursor lives in
    std::uintptr_t cursor_ = 0;
    std::uintptr_t limit_ = 0;
    std::size_t nextChunkBytes_;
    std::size_t reservedBytes_ = 0;
    std::size_t usedBytes_ = 0;
    std::size_t chunkCount_ = 0;
};

/** The arena bound to this thread by an open ArenaScope (null when
 *  none). */
Arena *activeArena();

/** Allocate trial-lifetime state from this: the active arena, else
 *  std::pmr::new_delete_resource(). */
std::pmr::memory_resource *arenaResource();

/**
 * Binds this worker thread's retained arena as the active arena for
 * the scope of one trial; the destructor rewinds it (chunks kept).
 * Nested scopes are passthrough — the outer scope stays bound and
 * owns the rewind.
 */
class ArenaScope
{
  public:
    ArenaScope();
    ~ArenaScope();

    ArenaScope(const ArenaScope &) = delete;
    ArenaScope &operator=(const ArenaScope &) = delete;

    /** The arena trial allocations land in. */
    Arena &arena() { return *arena_; }

  private:
    Arena *arena_;
    bool owner_;
};

} // namespace tw

#endif // TW_BASE_ARENA_HH
