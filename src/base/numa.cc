#include "base/numa.hh"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

#if defined(__linux__)
#include <sched.h>
#endif

#include "base/thread_pool.hh"

namespace tw
{
namespace numa
{

namespace
{

/** Parse a sysfs cpulist ("0-3,8,10-11\n") into CPU ids. */
std::vector<unsigned>
parseCpuList(const char *text)
{
    std::vector<unsigned> cpus;
    const char *p = text;
    while (*p) {
        char *end = nullptr;
        unsigned long lo = std::strtoul(p, &end, 10);
        if (end == p)
            break;
        unsigned long hi = lo;
        p = end;
        if (*p == '-') {
            ++p;
            hi = std::strtoul(p, &end, 10);
            if (end == p)
                break;
            p = end;
        }
        for (unsigned long c = lo; c <= hi && c < 4096; ++c)
            cpus.push_back(static_cast<unsigned>(c));
        if (*p == ',')
            ++p;
        else
            break;
    }
    return cpus;
}

Topology
singleNodeFallback()
{
    Topology topo;
    topo.nodeCpus.emplace_back();
    for (unsigned c = 0; c < hardwareThreads(); ++c)
        topo.nodeCpus[0].push_back(c);
    return topo;
}

Topology
probeHost()
{
#if defined(__linux__)
    Topology topo;
    for (unsigned n = 0; n < 1024; ++n) {
        char path[96];
        std::snprintf(path, sizeof(path),
                      "/sys/devices/system/node/node%u/cpulist", n);
        std::FILE *f = std::fopen(path, "r");
        if (!f)
            break;
        char buf[4096];
        std::size_t got = std::fread(buf, 1, sizeof(buf) - 1, f);
        std::fclose(f);
        buf[got] = '\0';
        std::vector<unsigned> cpus = parseCpuList(buf);
        // Memory-only nodes (no CPUs) can't host workers; skip them.
        if (!cpus.empty())
            topo.nodeCpus.push_back(std::move(cpus));
    }
    if (!topo.nodeCpus.empty())
        return topo;
#endif
    return singleNodeFallback();
}

std::mutex topoMutex;
Topology *overrideTopo = nullptr;

} // anonymous namespace

const Topology &
topology()
{
    {
        std::lock_guard<std::mutex> lock(topoMutex);
        if (overrideTopo)
            return *overrideTopo;
    }
    static const Topology host = probeHost();
    return host;
}

void
setTopologyForTest(Topology topo)
{
    std::lock_guard<std::mutex> lock(topoMutex);
    delete overrideTopo;
    overrideTopo = nullptr;
    if (!topo.nodeCpus.empty())
        overrideTopo = new Topology(std::move(topo));
}

bool
pinningEnabled()
{
    static const int mode = [] {
        const char *env = std::getenv("TW_PIN");
        if (!env || !*env)
            return -1; // auto: pin iff multi-node
        return std::strcmp(env, "0") != 0 ? 1 : 0;
    }();
    if (mode >= 0)
        return mode == 1;
    return topology().nodes() > 1;
}

bool
pinThreadToNode(unsigned node)
{
#if defined(__linux__)
    const Topology &topo = topology();
    if (node >= topo.nodes())
        return false;
    cpu_set_t set;
    CPU_ZERO(&set);
    bool any = false;
    for (unsigned cpu : topo.nodeCpus[node]) {
        if (cpu < CPU_SETSIZE) {
            CPU_SET(cpu, &set);
            any = true;
        }
    }
    if (!any)
        return false;
    return sched_setaffinity(0, sizeof(set), &set) == 0;
#else
    (void)node;
    return false;
#endif
}

AffinityGuard::AffinityGuard()
{
#if defined(__linux__)
    cpu_set_t set;
    CPU_ZERO(&set);
    if (sched_getaffinity(0, sizeof(set), &set) == 0) {
        saved_.resize(sizeof(set));
        std::memcpy(saved_.data(), &set, sizeof(set));
        valid_ = true;
    }
#endif
}

AffinityGuard::~AffinityGuard()
{
#if defined(__linux__)
    if (valid_) {
        cpu_set_t set;
        std::memcpy(&set, saved_.data(), sizeof(set));
        sched_setaffinity(0, sizeof(set), &set);
    }
#endif
}

} // namespace numa
} // namespace tw
