/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * Every source of run-to-run variation in the simulated system
 * (physical page allocation, set-sample selection, scheduler jitter,
 * workload control flow) draws from an explicitly seeded Rng so that
 * experiments are reproducible: the same seed yields bit-identical
 * results, and a *trial* in the sense of the paper's Tables 7-10 is
 * simply a new seed.
 *
 * The generator is xoshiro256** seeded through SplitMix64, which is
 * fast, high quality, and trivially portable.
 */

#ifndef TW_BASE_RANDOM_HH
#define TW_BASE_RANDOM_HH

#include <array>
#include <cmath>
#include <cstdint>

namespace tw
{

/** SplitMix64 step, used for seeding and for hashing seeds together. */
constexpr std::uint64_t
splitMix64(std::uint64_t &state)
{
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

/** Mix two seed values into one (order-sensitive). */
constexpr std::uint64_t
mixSeed(std::uint64_t a, std::uint64_t b)
{
    std::uint64_t s = a ^ (b + 0x9e3779b97f4a7c15ull + (a << 6) + (a >> 2));
    return splitMix64(s);
}

/**
 * xoshiro256** deterministic random number generator.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed (expanded via SplitMix64). */
    explicit Rng(std::uint64_t seed = 1) { reseed(seed); }

    /** Re-initialize the state from @p seed. */
    void
    reseed(std::uint64_t seed)
    {
        std::uint64_t sm = seed;
        for (auto &word : state_)
            word = splitMix64(sm);
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound); bound must be nonzero. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        // Lemire-style multiply-shift; the slight modulo bias of the
        // simple fallback is irrelevant at our bounds (< 2^32).
        return static_cast<std::uint64_t>(
            (static_cast<unsigned __int128>(next()) * bound) >> 64);
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::uint64_t
    inRange(std::uint64_t lo, std::uint64_t hi)
    {
        return lo + below(hi - lo + 1);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli draw with probability @p p of true. */
    bool
    chance(double p)
    {
        if (p <= 0.0)
            return false;
        if (p >= 1.0)
            return true;
        return uniform() < p;
    }

    /**
     * Geometric draw: number of failures before the first success
     * with success probability @p p, capped to keep pathological
     * parameters finite. Uses the inverse CDF so a draw costs one
     * log regardless of 1/p.
     */
    std::uint64_t
    geometric(double p)
    {
        if (p >= 1.0)
            return 0;
        if (p <= 0.0)
            return 1ull << 30;
        double u = uniform();
        double n = std::floor(std::log1p(-u) / std::log1p(-p));
        if (n >= static_cast<double>(1ull << 30))
            return 1ull << 30;
        return static_cast<std::uint64_t>(n);
    }

  private:
    static constexpr std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::array<std::uint64_t, 4> state_{};
};

} // namespace tw

#endif // TW_BASE_RANDOM_HH
