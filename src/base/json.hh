/**
 * @file
 * Minimal line-oriented JSON: a value type, a strict parser, and a
 * deterministic single-line writer.
 *
 * The experiment service speaks newline-delimited JSON, and the
 * harness's canonical RunSpec/RunOutcome text (the cache fingerprint
 * input) is the writer's output — so determinism is a correctness
 * requirement, not a nicety:
 *
 *  - object members keep INSERTION order, and dump() emits them in
 *    that order with no whitespace, so a value built by the same
 *    code path always renders to the same bytes;
 *  - numbers carry their original lexeme. A 64-bit seed parses and
 *    re-emits exactly (no double round-trip through 53-bit
 *    mantissas), and doubles written via number(double) use %.17g,
 *    which round-trips every finite double bit-for-bit.
 *
 * No external dependency; the paper-reproduction container offers
 * none, and the subset here (UTF-8 passthrough, \uXXXX escapes, no
 * comments) is all the wire protocol needs.
 */

#ifndef TW_BASE_JSON_HH
#define TW_BASE_JSON_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace tw
{

/** One JSON value (see file comment for determinism guarantees). */
class Json
{
  public:
    enum class Kind { Null, Bool, Number, String, Array, Object };

    Json() = default;

    static Json null() { return Json(); }
    static Json boolean(bool v);
    static Json number(double v);
    static Json number(std::uint64_t v);
    static Json number(std::int64_t v);
    static Json number(unsigned v)
    {
        return number(static_cast<std::uint64_t>(v));
    }
    static Json number(int v)
    {
        return number(static_cast<std::int64_t>(v));
    }
    /** A number carrying @p lexeme verbatim (the parser's path). */
    static Json numberLexeme(std::string lexeme);
    static Json str(std::string v);
    static Json array();
    static Json object();

    Kind kind() const { return kind_; }
    bool isNull() const { return kind_ == Kind::Null; }
    bool isBool() const { return kind_ == Kind::Bool; }
    bool isNumber() const { return kind_ == Kind::Number; }
    bool isString() const { return kind_ == Kind::String; }
    bool isArray() const { return kind_ == Kind::Array; }
    bool isObject() const { return kind_ == Kind::Object; }
    /** True for a number with a negative lexeme (including "-0").
     *  asU64() clamps these to 0 instead of wrapping, so code
     *  reading an unsigned field must reject them explicitly. */
    bool isNegative() const
    {
        return kind_ == Kind::Number && !text_.empty()
               && text_[0] == '-';
    }

    /** Value accessors; wrong-kind access returns the zero value
     *  (the parsers validate kinds before reading). */
    bool asBool() const { return kind_ == Kind::Bool && flag_; }
    double asDouble() const;
    std::uint64_t asU64() const;
    std::int64_t asI64() const;
    const std::string &asString() const { return text_; }
    /** The number's exact lexeme (empty for non-numbers). */
    const std::string &lexeme() const { return text_; }

    // Array interface.
    std::size_t size() const { return elems_.size(); }
    const Json &at(std::size_t i) const { return elems_[i]; }
    Json &push(Json v);

    // Object interface (insertion-ordered).
    /** Member lookup; null when absent. */
    const Json *find(const std::string &key) const;
    /** Insert or replace a member (replacement keeps its slot). */
    Json &set(const std::string &key, Json v);
    const std::vector<std::pair<std::string, Json>> &members() const
    {
        return members_;
    }

    /** Dotted-path lookup over nested objects ("cache.hits");
     *  null when any hop is absent. */
    const Json *findPath(const std::string &dotted) const;

    /** Render as compact single-line JSON (no newline appended). */
    std::string dump() const;

    /**
     * Parse @p text (one complete JSON value, surrounding whitespace
     * allowed). Returns false and fills @p err (when non-null) on
     * malformed input or trailing garbage.
     */
    static bool parse(const std::string &text, Json &out,
                      std::string *err = nullptr);

  private:
    void dumpTo(std::string &out) const;

    Kind kind_ = Kind::Null;
    bool flag_ = false;
    std::string text_; //!< string value or number lexeme
    std::vector<Json> elems_;
    std::vector<std::pair<std::string, Json>> members_;
};

/** Append @p s to @p out as a JSON string literal (with quotes). */
void jsonEscape(const std::string &s, std::string &out);

} // namespace tw

#endif // TW_BASE_JSON_HH
