#include "base/table.hh"

#include <algorithm>
#include <sstream>

#include "base/logging.hh"

namespace tw
{

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    TW_ASSERT(!headers_.empty(), "table needs at least one column");
}

void
TextTable::addRow(std::vector<std::string> cells)
{
    TW_ASSERT(cells.size() == headers_.size(),
              "row has %zu cells, table has %zu columns", cells.size(),
              headers_.size());
    rows_.push_back(Row{false, std::move(cells)});
}

void
TextTable::addRule()
{
    rows_.push_back(Row{true, {}});
}

std::size_t
TextTable::rowCount() const
{
    std::size_t n = 0;
    for (const auto &row : rows_) {
        if (!row.rule)
            ++n;
    }
    return n;
}

std::string
TextTable::render() const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_) {
        if (row.rule)
            continue;
        for (std::size_t c = 0; c < row.cells.size(); ++c)
            widths[c] = std::max(widths[c], row.cells[c].size());
    }

    auto emit_cell = [&](std::ostringstream &os, const std::string &s,
                         std::size_t c) {
        if (c == 0) {
            os << s << std::string(widths[c] - s.size(), ' ');
        } else {
            os << std::string(widths[c] - s.size(), ' ') << s;
        }
    };

    std::ostringstream os;
    for (std::size_t c = 0; c < headers_.size(); ++c) {
        if (c)
            os << "  ";
        emit_cell(os, headers_[c], c);
    }
    os << '\n';
    std::size_t total = 0;
    for (std::size_t c = 0; c < widths.size(); ++c)
        total += widths[c] + (c ? 2 : 0);
    os << std::string(total, '-') << '\n';

    for (const auto &row : rows_) {
        if (row.rule) {
            os << std::string(total, '-') << '\n';
            continue;
        }
        for (std::size_t c = 0; c < row.cells.size(); ++c) {
            if (c)
                os << "  ";
            emit_cell(os, row.cells[c], c);
        }
        os << '\n';
    }
    return os.str();
}

std::string
TextTable::renderCsv() const
{
    auto quote = [](const std::string &s) {
        if (s.find_first_of(",\"\n") == std::string::npos)
            return s;
        std::string out = "\"";
        for (char ch : s) {
            if (ch == '"')
                out += '"';
            out += ch;
        }
        out += '"';
        return out;
    };

    std::ostringstream os;
    for (std::size_t c = 0; c < headers_.size(); ++c) {
        if (c)
            os << ',';
        os << quote(headers_[c]);
    }
    os << '\n';
    for (const auto &row : rows_) {
        if (row.rule)
            continue;
        for (std::size_t c = 0; c < row.cells.size(); ++c) {
            if (c)
                os << ',';
            os << quote(row.cells[c]);
        }
        os << '\n';
    }
    return os.str();
}

std::string
fmtF(double v, int digits)
{
    return csprintf("%.*f", digits, v);
}

std::string
fmtMissAndRatio(double misses_millions, double ratio)
{
    return csprintf("%.2f (%.3f)", misses_millions, ratio);
}

std::string
fmtValAndPct(double v, double pct, int digits)
{
    return csprintf("%.*f (%.0f%%)", digits, v, pct);
}

} // namespace tw
