/**
 * @file
 * Regenerates Table 7: run-to-run variation of measured memory
 * system performance — 16 trials per workload, 1/8 set sampling,
 * 16 KB physically-indexed direct-mapped cache, all activity
 * (kernel and servers included). Page allocation, sample selection
 * and interrupt phase all redraw per trial.
 */

#include "common.hh"

using namespace twbench;

namespace
{

struct PaperRow
{
    const char *name;
    double mean, sd_pct, min_pct, max_pct, range_pct;
};

// Table 7's percentage columns as published.
const PaperRow kPaper[] = {
    {"eqntott", 4.42, 57, 26, 197, 223},
    {"espresso", 4.91, 60, 30, 180, 209},
    {"jpeg_play", 18.58, 7, 13, 18, 31},
    {"kenbus", 20.89, 25, 18, 74, 92},
    {"mpeg_play", 58.48, 12, 19, 18, 37},
    {"ousterhout", 31.50, 8, 14, 11, 25},
    {"sdet", 41.28, 21, 21, 54, 75},
    {"xlisp", 41.55, 76, 64, 151, 215},
};

} // namespace

int
main(int argc, char **argv)
{
    initBench(argc, argv);
    unsigned scale = envScaleDiv(400);
    unsigned trials = 16;
    banner("Table 7", "variation in measured performance "
                      "(16 trials, 1/8 sampling, 16KB physical)",
           scale);

    JsonReport json("table7_variation");
    double total_misses = 0.0;
    unsigned total_trials = 0;
    TextTable t({"workload", "mean(10^6)", "s", "min", "max",
                 "range", "paper.s%", "paper.range%"});
    for (const auto &paper : kPaper) {
        RunSpec spec = defaultSpec(paper.name, scale);
        spec.tw.cache = CacheConfig::icache(16384, 16, 1,
                                            Indexing::Physical);
        spec.tw.sampleNum = 1;
        spec.tw.sampleDenom = 8;

        auto outcomes = runTrials(spec, trials, 0xbead);
        total_misses += totalEstMisses(outcomes);
        total_trials += trials;
        Summary s = missSummary(outcomes);
        double to_m = static_cast<double>(scale) / 1e6;

        t.addRow({
            paper.name,
            fmtF(s.mean * to_m, 2),
            fmtValAndPct(s.stddev * to_m, s.stddevPct()),
            fmtValAndPct(s.min * to_m, s.minPct()),
            fmtValAndPct(s.max * to_m, s.maxPct()),
            fmtValAndPct(s.range * to_m, s.rangePct()),
            csprintf("%.0f%%", paper.sd_pct),
            csprintf("%.0f%%", paper.range_pct),
        });
    }
    std::printf("%s\n", t.render().c_str());
    std::printf("Shape targets: double-digit relative deviations; "
                "small-footprint SPEC workloads (eqntott, espresso, "
                "xlisp) show the largest relative spread.\n");
    json.set("trials", total_trials);
    json.set("total_est_misses", total_misses);
    return 0;
}
