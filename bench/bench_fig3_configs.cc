/**
 * @file
 * Regenerates Figure 3: Tapeworm slowdowns across simulation
 * configurations — associativity 1/2/4, line sizes 16/32/64 bytes,
 * and set-sampling degrees 1 down to 1/16 — for mpeg_play.
 */

#include "common.hh"

using namespace twbench;

int
main()
{
    unsigned scale = envScaleDiv(200);
    banner("Figure 3",
           "Tapeworm slowdowns across configurations, mpeg_play",
           scale);

    auto base_spec = [&](std::uint64_t size_bytes) {
        RunSpec spec = defaultSpec("mpeg_play", scale);
        spec.sys.scope = SimScope::userOnly();
        spec.tw.cache = CacheConfig::icache(size_bytes, 16, 1,
                                            Indexing::Virtual);
        return spec;
    };

    // Panel 1: associativity (FIFO replacement above 1 way, since a
    // trap-driven simulator cannot do LRU).
    {
        TextTable t({"size", "1-way", "2-way", "4-way"});
        for (std::uint64_t kb : {1, 2, 4, 8, 16, 32}) {
            std::vector<std::string> row{csprintf("%lluK",
                                                  (unsigned long long)kb)};
            for (unsigned assoc : {1u, 2u, 4u}) {
                RunSpec spec = base_spec(kb * 1024);
                spec.tw.cache =
                    CacheConfig::icache(kb * 1024, 16, assoc,
                                        Indexing::Virtual);
                row.push_back(fmtF(
                    Runner::runWithSlowdown(spec, 7).slowdown, 2));
            }
            t.addRow(row);
        }
        std::printf("slowdown vs associativity:\n%s\n",
                    t.render().c_str());
    }

    // Panel 2: line size. Longer lines cost more per miss but
    // produce fewer misses, so simulation gets faster overall.
    {
        TextTable t({"size", "16B", "32B", "64B"});
        for (std::uint64_t kb : {1, 2, 4, 8, 16, 32}) {
            std::vector<std::string> row{csprintf("%lluK",
                                                  (unsigned long long)kb)};
            for (unsigned line : {16u, 32u, 64u}) {
                RunSpec spec = base_spec(kb * 1024);
                spec.tw.cache = CacheConfig::icache(
                    kb * 1024, line, 1, Indexing::Virtual);
                row.push_back(fmtF(
                    Runner::runWithSlowdown(spec, 7).slowdown, 2));
            }
            t.addRow(row);
        }
        std::printf("slowdown vs line size:\n%s\n",
                    t.render().c_str());
    }

    // Panel 3: set sampling at small cache sizes (larger caches are
    // fast enough not to need sampling — Section 4.1).
    {
        TextTable t({"size", "1/1", "1/2", "1/4", "1/8", "1/16"});
        for (std::uint64_t kb : {1, 2, 4}) {
            std::vector<std::string> row{csprintf("%lluK",
                                                  (unsigned long long)kb)};
            for (unsigned denom : {1u, 2u, 4u, 8u, 16u}) {
                RunSpec spec = base_spec(kb * 1024);
                spec.tw.sampleNum = 1;
                spec.tw.sampleDenom = denom;
                row.push_back(fmtF(
                    Runner::runWithSlowdown(spec, 7).slowdown, 2));
            }
            t.addRow(row);
        }
        std::printf("slowdown vs sampling degree:\n%s\n",
                    t.render().c_str());
        std::printf("Shape target: slowdowns fall roughly in "
                    "proportion to the sampled fraction.\n");
    }
    return 0;
}
