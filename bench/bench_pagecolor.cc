/**
 * @file
 * Frame-allocation policy ablation: the Table 9 variance is a
 * property of *random* page allocation specifically. Sweeping the
 * VM's allocator policy (random free list / sequential / Kessler
 * page coloring) for a physically-indexed cache shows both the mean
 * misses and the trial variance each policy produces — page
 * coloring being the "careful mapping" remedy of [Kessler92], which
 * the paper cites for exactly this discussion.
 */

#include "common.hh"

using namespace twbench;

int
main(int argc, char **argv)
{
    initBench(argc, argv);
    unsigned scale = envScaleDiv(400);
    unsigned trials = 6;
    banner("Section 4.2", "frame-allocation policy ablation "
                          "(mpeg_play, physical 16KB)", scale);

    JsonReport json("pagecolor");
    double total_misses = 0.0;
    unsigned total_trials = 0;
    TextTable t({"policy", "mean misses", "s%", "range%"});
    for (AllocPolicy policy :
         {AllocPolicy::Random, AllocPolicy::Sequential,
          AllocPolicy::Coloring}) {
        RunSpec spec = defaultSpec("mpeg_play", scale);
        spec.sys.scope = SimScope::userOnly();
        spec.sys.clockJitter = false;
        spec.sys.allocPolicy = policy;
        spec.tw.cache = CacheConfig::icache(16384, 16, 1,
                                            Indexing::Physical);
        auto outcomes = runTrials(spec, trials, 0xc0105);
        total_misses += totalEstMisses(outcomes);
        total_trials += trials;
        Summary s = missSummary(outcomes);
        t.addRow({
            allocPolicyName(policy),
            fmtF(s.mean, 0),
            csprintf("%.1f%%", s.stddevPct()),
            csprintf("%.1f%%", s.rangePct()),
        });
    }
    std::printf("%s\n", t.render().c_str());
    std::printf(
        "Reading the table: only the Random policy varies across\n"
        "trials (the Table 9 effect); Sequential is deterministic\n"
        "but can land on a bad placement; Coloring is deterministic\n"
        "AND conflict-free (vpn and pfn agree on index bits), so it\n"
        "gives the lowest miss count — the page-placement remedy of\n"
        "[Kessler92].\n");
    json.set("trials", total_trials);
    json.set("total_est_misses", total_misses);
    return 0;
}
