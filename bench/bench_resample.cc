/**
 * @file
 * The cost of obtaining multiple set samples (Section 3.2):
 * "different samples can be obtained simply by changing the pattern
 * of traps on registered Tapeworm pages. With trace-driven
 * simulation, the full trace must be re-processed to obtain a new
 * set sample."
 *
 * Four different 1/8 samples of the same cache are collected with
 * each technique; the table reports the instrumentation overhead
 * each sample cost. Tapeworm pays only for the sample's own misses;
 * the trace-driven simulator touches every address every time (the
 * software filter still costs cycles per rejected address, plus
 * regeneration of the trace).
 */

#include "common.hh"

using namespace twbench;

int
main()
{
    unsigned scale = envScaleDiv(400);
    banner("Section 3.2", "cost of collecting four different set "
                          "samples (mpeg_play, 4KB, 1/8)", scale);

    CacheConfig cache =
        CacheConfig::icache(4096, 16, 1, Indexing::Virtual);

    TextTable t({"sample", "tw.misses", "tw.slowdown", "c2k.misses",
                 "c2k.slowdown"});
    double tw_total = 0, c2k_total = 0;
    for (unsigned sample = 1; sample <= 4; ++sample) {
        RunSpec spec = defaultSpec("mpeg_play", scale);
        spec.sys.scope = SimScope::userOnly();
        spec.tw.cache = cache;
        spec.tw.sampleNum = 1;
        spec.tw.sampleDenom = 8;
        spec.tw.sampleSeed = 1000 + sample;
        RunOutcome trap = Runner::runWithSlowdown(spec, 7);

        spec.sim = SimKind::TraceDriven;
        spec.c2k.cache = cache;
        spec.c2k.sampleNum = 1;
        spec.c2k.sampleDenom = 8;
        spec.c2k.sampleSeed = 1000 + sample;
        RunOutcome trace = Runner::runWithSlowdown(spec, 7);

        tw_total += trap.slowdown;
        c2k_total += trace.slowdown;
        t.addRow({
            csprintf("#%u", sample),
            fmtF(trap.rawMisses, 0),
            fmtF(trap.slowdown, 2),
            fmtF(trace.rawMisses, 0),
            fmtF(trace.slowdown, 2),
        });
    }
    t.addRule();
    t.addRow({"total", "", fmtF(tw_total, 2), "", fmtF(c2k_total, 2)});
    std::printf("%s\n", t.render().c_str());
    std::printf("Shape targets: each Tapeworm sample costs ~1/8 of "
                "an unsampled run (~0.4x here); each trace-driven "
                "sample costs nearly a full trace pass (the filter "
                "touches every address), so collecting all four "
                "samples is ~%0.0fx cheaper trap-driven.\n",
                c2k_total / (tw_total > 0 ? tw_total : 1));
    return 0;
}
