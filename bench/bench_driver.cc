/**
 * @file
 * The one bench binary: runs any experiment in the registry.
 *
 *   bench_driver --list
 *   bench_driver --run fig2 [--threads N] [--scale D] [--report]
 *                           [--rows PATH|-]
 *
 * Unlike the legacy per-table wrappers (which only warn, to stay
 * drop-in compatible with old scripts), the driver hard-errors on
 * any flag it does not understand.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "base/logging.hh"
#include "base/simd.hh"
#include "base/thread_pool.hh"
#include "core/cost/cost_backend.hh"
#include "harness/experiment.hh"
#include "obs/trace.hh"

using namespace tw;

namespace
{

void
usage(std::FILE *out)
{
    std::fprintf(out,
                 "usage: bench_driver --list\n"
                 "       bench_driver --run <experiment> [options]\n"
                 "\n"
                 "options:\n"
                 "  --list           list registered experiments\n"
                 "  --run <name>     run one experiment\n"
                 "  --threads <n>    trial-dispatch threads "
                 "(default: TW_THREADS or all cores)\n"
                 "  --scale <d>      override the workload scale "
                 "divisor (default: TW_SCALE_DIV or the "
                 "experiment's own)\n"
                 "  --report         write BENCH_<report>.json and "
                 "print the [report] extras\n"
                 "  --rows <path>    stream canonical NDJSON result "
                 "rows to <path> ('-' = stdout)\n"
                 "  --metrics        embed an obs-registry snapshot "
                 "under \"metrics\" in the BENCH report "
                 "(implies --report)\n"
                 "  --no-simd        force the scalar trap-bitmap "
                 "scans (same results, host-speed A/B; equivalent "
                 "to TW_NO_SIMD=1)\n"
                 "  --sample         representative-interval "
                 "sampling on eligible units (equivalent to "
                 "TW_SAMPLE=1; TW_SAMPLE_* tune it)\n"
                 "  --cost-backend <b>  miss-cost backend for every "
                 "unit: table5, ideal, or dram[:k=v,...] "
                 "(equivalent to TW_COST_BACKEND=<b>)\n"
                 "  --ci-target <r>  stop each unit's trials once "
                 "the relative CI half-width reaches <r> "
                 "(equivalent to TW_CI_TARGET=<r>)\n"
                 "  --trace-out <f>  write a Chrome trace-event JSON "
                 "span trace (Perfetto-loadable) to <f>\n"
                 "  --help           this text\n");
}

void
listExperiments()
{
    auto &registry = ExperimentRegistry::instance();
    for (const std::string &name : registry.names()) {
        const ExperimentDef *def = registry.find(name);
        std::printf("%-20s %-12s %s\n", name.c_str(),
                    def->artifact.c_str(), def->description.c_str());
    }
}

} // namespace

int
main(int argc, char **argv)
{
    bool list = false;
    bool report = false;
    bool metrics = false;
    std::string run_name;
    std::string rows_path;
    std::string trace_path;
    unsigned scale_override = 0;

    auto value = [&](int &i, const char *flag) -> const char * {
        if (i + 1 >= argc)
            fatal("bench_driver: %s requires a value", flag);
        return argv[++i];
    };

    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (std::strcmp(arg, "--list") == 0) {
            list = true;
        } else if (std::strcmp(arg, "--run") == 0) {
            run_name = value(i, "--run");
        } else if (std::strcmp(arg, "--threads") == 0) {
            setDefaultThreads(static_cast<unsigned>(
                std::atoi(value(i, "--threads"))));
        } else if (std::strncmp(arg, "--threads=", 10) == 0) {
            setDefaultThreads(
                static_cast<unsigned>(std::atoi(arg + 10)));
        } else if (std::strcmp(arg, "--scale") == 0) {
            scale_override = static_cast<unsigned>(
                std::atoi(value(i, "--scale")));
        } else if (std::strcmp(arg, "--report") == 0) {
            report = true;
        } else if (std::strcmp(arg, "--rows") == 0) {
            rows_path = value(i, "--rows");
        } else if (std::strcmp(arg, "--metrics") == 0) {
            metrics = true;
            report = true;
        } else if (std::strcmp(arg, "--no-simd") == 0) {
            simd::setEnabled(false);
        } else if (std::strcmp(arg, "--sample") == 0) {
            // Grids read the environment (applySampleEnv), so the
            // flag and TW_SAMPLE=1 are the same switch.
            setenv("TW_SAMPLE", "1", 1);
        } else if (std::strcmp(arg, "--ci-target") == 0) {
            setenv("TW_CI_TARGET", value(i, "--ci-target"), 1);
        } else if (std::strcmp(arg, "--cost-backend") == 0) {
            // Validate eagerly (a typo should die here, not after
            // the workload warms up), then hand the spec to the
            // grids through the same environment knob scripts use.
            const char *val = value(i, "--cost-backend");
            CostBackendConfig cfg;
            std::string err;
            if (!parseCostBackendSpec(val, cfg, err))
                fatal("bench_driver: --cost-backend: %s",
                      err.c_str());
            setenv("TW_COST_BACKEND", val, 1);
        } else if (std::strcmp(arg, "--trace-out") == 0) {
            trace_path = value(i, "--trace-out");
        } else if (std::strcmp(arg, "--help") == 0
                   || std::strcmp(arg, "-h") == 0) {
            usage(stdout);
            return 0;
        } else {
            std::fprintf(stderr, "bench_driver: unknown option %s\n",
                         arg);
            usage(stderr);
            return 2;
        }
    }

    if (list) {
        listExperiments();
        return 0;
    }
    if (run_name.empty()) {
        usage(stderr);
        return 2;
    }

    const ExperimentDef *def =
        ExperimentRegistry::instance().find(run_name);
    if (!def) {
        std::fprintf(stderr,
                     "bench_driver: unknown experiment '%s' "
                     "(--list shows the registry)\n",
                     run_name.c_str());
        return 2;
    }

    MultiSink sinks;
    TablePrinterSink table(stdout);
    sinks.add(&table);

    std::FILE *rows_file = nullptr;
    std::unique_ptr<NdjsonSink> rows;
    if (!rows_path.empty()) {
        rows_file = rows_path == "-"
                        ? stdout
                        : std::fopen(rows_path.c_str(), "w");
        if (!rows_file)
            fatal("bench_driver: cannot open %s", rows_path.c_str());
        rows = std::make_unique<NdjsonSink>(rows_file);
        sinks.add(rows.get());
    }

    std::unique_ptr<JsonReportSink> json;
    if (report && !def->report.empty()) {
        json = std::make_unique<JsonReportSink>(
            def->report, def->name, "bench_driver");
        json->setIncludeObsMetrics(metrics);
        sinks.add(json.get());
    }

    if (!trace_path.empty()) {
        std::string err;
        if (!obs::traceStart(trace_path, &err))
            fatal("bench_driver: --trace-out: %s", err.c_str());
    }

    RunExperimentOptions opts;
    opts.scaleDiv = scale_override;
    opts.report = report;
    runExperiment(*def, sinks, opts);

    obs::traceStop(); // writes --trace-out, if armed

    if (rows_file && rows_file != stdout)
        std::fclose(rows_file);
    return 0;
}
