/**
 * @file
 * Regenerates Figure 4: error due to time dilation. mpeg_play runs
 * with all system activity in a physically-addressed 4 KB DM
 * I-cache; time dilation is varied by changing the degree of set
 * sampling, and the estimated misses rise with slowdown because
 * the dilated run takes more clock interrupts (more handler
 * interference). Each point averages a few trials to steady the
 * sampling estimator.
 */

#include "common.hh"

using namespace twbench;

namespace
{

struct PaperRow
{
    double dilation, misses, increase_pct;
};

// Figure 4's embedded table.
const PaperRow kPaper[] = {
    {0.43, 90.56, 0.0},  {0.96, 91.54, 1.2},  {2.08, 95.70, 5.7},
    {4.42, 99.66, 10.1}, {9.29, 103.57, 14.4},
};

} // namespace

int
main(int argc, char **argv)
{
    initBench(argc, argv);
    unsigned scale = envScaleDiv(200);
    unsigned trials = 3;
    banner("Figure 4", "error due to time dilation "
                       "(mpeg_play, 4KB physical, all activity)",
           scale);

    JsonReport json("fig4_dilation");
    double total_misses = 0.0;
    unsigned total_trials = 0;
    TextTable t({"sampling", "dilation", "misses(10^6)", "increase",
                 "paper.dil", "paper.incr"});
    double baseline = -1.0;
    std::size_t row = 0;
    for (unsigned denom : {16u, 8u, 4u, 2u, 1u}) {
        RunSpec spec = defaultSpec("mpeg_play", scale);
        spec.sys.scope = SimScope::all();
        spec.tw.cache = CacheConfig::icache(4096, 16, 1,
                                            Indexing::Physical);
        spec.tw.sampleNum = 1;
        spec.tw.sampleDenom = denom;

        auto outcomes = runTrials(spec, trials, 0xd11a, true);
        total_misses += totalEstMisses(outcomes);
        total_trials += trials;
        double misses = meanOf(outcomes, [](const RunOutcome &o) {
            return o.estMisses;
        });
        double slowdown = meanOf(outcomes, [](const RunOutcome &o) {
            return o.slowdown;
        });
        if (baseline < 0)
            baseline = misses;
        double increase = 100.0 * (misses - baseline) / baseline;

        const PaperRow &paper =
            kPaper[std::min(row, std::size_t(4))];
        t.addRow({
            csprintf("1/%u", denom),
            fmtF(slowdown, 2),
            fmtF(paperMillions(misses, scale), 2),
            csprintf("%+.1f%%", increase),
            fmtF(paper.dilation, 2),
            csprintf("%+.1f%%", paper.increase_pct),
        });
        ++row;
    }
    std::printf("%s\n", t.render().c_str());
    std::printf("Shape targets: miss inflation grows with dilation, "
                "steeply at first and levelling off around "
                "+10-15%% — systematic error, not noise.\n");
    json.set("trials", total_trials);
    json.set("total_est_misses", total_misses);
    return 0;
}
