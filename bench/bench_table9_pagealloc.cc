/**
 * @file
 * Regenerates Table 9: measurement variation due to page allocation
 * alone. Sampling is off; only the mpeg_play user task is
 * simulated. A physically-indexed cache sees different frame
 * placements per trial; a virtually-indexed cache is placement-
 * independent. Four trials per point, like the paper.
 */

#include "common.hh"

using namespace twbench;

namespace
{

struct PaperRow
{
    unsigned kb;
    double phys_mean, phys_sd, virt_mean, virt_sd;
};

// Table 9 as published (misses x 10^6).
const PaperRow kPaper[] = {
    {4, 37.81, 0.09, 37.75, 0.00},  {8, 22.38, 5.89, 14.03, 0.00},
    {16, 12.07, 4.84, 10.20, 0.00}, {32, 9.01, 5.62, 1.90, 0.00},
    {64, 5.83, 5.96, 1.38, 0.00},   {128, 2.92, 4.60, 0.28, 0.00},
};

} // namespace

int
main(int argc, char **argv)
{
    initBench(argc, argv);
    unsigned scale = envScaleDiv(200);
    unsigned trials = 4;
    banner("Table 9", "variation due to page allocation "
                      "(mpeg_play, user only, no sampling)",
           scale);

    JsonReport json("table9_pagealloc");
    double total_misses = 0.0;
    unsigned total_trials = 0;
    TextTable t({"size", "phys.mean", "phys.s", "virt.mean",
                 "virt.s", "paper.phys", "paper.virt"});
    for (const auto &paper : kPaper) {
        RunSpec spec = defaultSpec("mpeg_play", scale);
        spec.sys.scope = SimScope::userOnly();
        spec.sys.clockJitter = false; // isolate page allocation

        spec.tw.cache = CacheConfig::icache(paper.kb * 1024ull, 16, 1,
                                            Indexing::Physical);
        auto phys_out = runTrials(spec, trials, 0x9a9e);
        Summary sp = missSummary(phys_out);

        spec.tw.cache = CacheConfig::icache(paper.kb * 1024ull, 16, 1,
                                            Indexing::Virtual);
        auto virt_out = runTrials(spec, trials, 0x9a9e);
        Summary sv = missSummary(virt_out);

        total_misses += totalEstMisses(phys_out)
                        + totalEstMisses(virt_out);
        total_trials += 2 * trials;

        double to_m = static_cast<double>(scale) / 1e6;
        t.addRow({
            csprintf("%uK", paper.kb),
            fmtF(sp.mean * to_m, 2),
            fmtValAndPct(sp.stddev * to_m, sp.stddevPct()),
            fmtF(sv.mean * to_m, 2),
            fmtValAndPct(sv.stddev * to_m, sv.stddevPct()),
            csprintf("%.2f s=%.2f", paper.phys_mean, paper.phys_sd),
            csprintf("%.2f s=%.2f", paper.virt_mean, paper.virt_sd),
        });
    }
    std::printf("%s\n", t.render().c_str());
    std::printf("Shape targets: virtual variance = 0 at every size; "
                "physical variance 0 at 4K (cache == page), peaking "
                "near the program's ~32K text size (Kessler's "
                "conflict model), with phys mean >= virt mean.\n");
    json.set("trials", total_trials);
    json.set("total_est_misses", total_misses);
    return 0;
}
