/**
 * @file
 * Calibration diagnostic: prints, for each workload, the measured
 * component time split (target: Table 4), the per-component 4 KB
 * miss ratios (target: Table 6), and the user miss-ratio-vs-size
 * curve for mpeg_play (target: Figure 2). Not one of the paper's
 * tables itself, but the tool used to keep the synthetic suite
 * honest — run it after touching workload/spec.cc.
 */

#include <cstdio>

#include "base/table.hh"
#include "harness/runner.hh"
#include "harness/trials.hh"
#include "workload/spec.hh"

using namespace tw;

namespace
{

RunSpec
baseSpec(const WorkloadSpec &wl, SimScope scope)
{
    RunSpec spec;
    spec.workload = wl;
    spec.sys.scope = scope;
    spec.sim = SimKind::Oracle;
    spec.tw.cache = CacheConfig::icache(4096);
    return spec;
}

} // namespace

int
main()
{
    unsigned scale = envScaleDiv(100);

    std::printf("== component split and 4K dedicated miss ratios "
                "(scale 1/%u) ==\n", scale);
    TextTable table({"workload", "kern%", "bsd%", "x%", "user%",
                     "m4k.user", "m4k.kern", "m4k.srv", "tasks",
                     "Minstr", "sim.s"});
    for (const auto &name : suiteNames()) {
        WorkloadSpec wl = makeWorkload(name, scale);

        auto user = Runner::runOne(baseSpec(wl, SimScope::userOnly()), 7);
        auto kern =
            Runner::runOne(baseSpec(wl, SimScope::kernelOnly()), 7);
        auto srv =
            Runner::runOne(baseSpec(wl, SimScope::serversOnly()), 7);

        const RunResult &r = user.run;
        double total = static_cast<double>(r.totalInstr());
        double server_instr =
            static_cast<double>(
                r.instr[static_cast<unsigned>(Component::Bsd)])
            + static_cast<double>(
                r.instr[static_cast<unsigned>(Component::X)]);

        table.addRow({
            name,
            fmtF(100.0 * r.instrFrac(Component::Kernel), 1),
            fmtF(100.0 * r.instrFrac(Component::Bsd), 1),
            fmtF(100.0 * r.instrFrac(Component::X), 1),
            fmtF(100.0 * r.instrFrac(Component::User), 1),
            fmtF(user.estMisses
                     / static_cast<double>(r.instr[static_cast<unsigned>(
                           Component::User)]),
                 4),
            fmtF(kern.estMisses
                     / static_cast<double>(
                           kern.run.instr[static_cast<unsigned>(
                               Component::Kernel)]),
                 4),
            fmtF(srv.estMisses / server_instr, 4),
            csprintf("%u", user.run.tasksCreated),
            fmtF(total / 1e6, 2),
            fmtF(user.run.seconds(), 2),
        });
    }
    std::printf("%s\n", table.render().c_str());

    std::printf("== mpeg_play user miss ratio vs cache size "
                "(Figure 2 target: .118 .097 .064 .023 .017 .002) ==\n");
    WorkloadSpec mpeg = makeWorkload("mpeg_play", scale);
    TextTable fig2({"size", "m.virt", "m.phys"});
    for (std::uint64_t kb : {1, 2, 4, 8, 16, 32, 64, 128}) {
        RunSpec spec = baseSpec(mpeg, SimScope::userOnly());
        spec.tw.cache =
            CacheConfig::icache(kb * 1024, 16, 1, Indexing::Virtual);
        auto virt = Runner::runOne(spec, 7);
        spec.tw.cache =
            CacheConfig::icache(kb * 1024, 16, 1, Indexing::Physical);
        auto phys = Runner::runOne(spec, 7);
        fig2.addRow({csprintf("%lluK", (unsigned long long)kb),
                     fmtF(virt.missRatioUser(), 4),
                     fmtF(phys.missRatioUser(), 4)});
    }
    std::printf("%s\n", fig2.render().c_str());
    return 0;
}
