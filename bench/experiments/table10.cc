/**
 * @file
 * Table 10: measurement variation removed — the same experiment as
 * Table 7 (16 trials, all activity) but configured for
 * virtually-indexed caches without set sampling, so that
 * trap-driven results become as repeatable as a trace-driven
 * simulator's. Residual spread comes only from interrupt-phase
 * jitter.
 */

#include "util.hh"

using namespace twbench;

namespace
{

struct PaperRow
{
    const char *name;
    double mean, sd_pct, range_pct;
};

// Table 10 as published.
const PaperRow kPaper[] = {
    {"eqntott", 4.19, 2, 4},   {"espresso", 4.26, 1, 2},
    {"jpeg_play", 20.60, 0, 0}, {"kenbus", 22.03, 0, 0},
    {"mpeg_play", 53.16, 0, 0}, {"ousterhout", 34.69, 4, 5},
    {"sdet", 41.23, 0, 0},      {"xlisp", 21.67, 1, 1},
};

const unsigned kTrials = 16;

ExperimentDef
make()
{
    ExperimentDef def;
    def.name = "table10";
    def.artifact = "Table 10";
    def.description = "variation removed "
                      "(virtual indexing, no sampling, 16KB)";
    def.report = "table10_novariation";
    def.scaleDiv = 400;
    def.grid = [](unsigned scale) {
        std::vector<ExperimentUnit> units;
        for (const auto &paper : kPaper) {
            RunSpec spec = defaultSpec(paper.name, scale);
            spec.tw.cache = CacheConfig::icache(16384, 16, 1,
                                                Indexing::Virtual);
            units.push_back(unitOf(paper.name, spec,
                                   TrialPlan::derived(kTrials,
                                                      0xbead)));
        }
        return units;
    };
    def.present = [](ExperimentContext &ctx) {
        double total_misses = 0.0;
        unsigned total_trials = 0;
        TextTable t({"workload", "mean(10^6)", "s", "min", "max",
                     "range", "paper.s%", "paper.range%"});
        for (const auto &paper : kPaper) {
            const auto &outcomes = ctx.outcomes(paper.name);
            total_misses += totalEstMisses(outcomes);
            total_trials += kTrials;
            Summary s = missSummary(outcomes);
            double to_m = static_cast<double>(ctx.scale()) / 1e6;
            t.addRow({
                paper.name,
                fmtF(s.mean * to_m, 2),
                fmtValAndPct(s.stddev * to_m, s.stddevPct()),
                fmtValAndPct(s.min * to_m, s.minPct()),
                fmtValAndPct(s.max * to_m, s.maxPct()),
                fmtValAndPct(s.range * to_m, s.rangePct()),
                csprintf("%.0f%%", paper.sd_pct),
                csprintf("%.0f%%", paper.range_pct),
            });
        }
        ctx.print("%s\n", t.render().c_str());
        ctx.print("Shape target: relative deviations collapse from "
                  "Table 7's 7-76%% to ~0-5%%.\n");
        ctx.metric("trials", total_trials);
        ctx.metric("total_est_misses", total_misses);
    };
    return def;
}

const ExperimentRegistrar reg(make());

} // namespace
