/**
 * @file
 * Table 7: run-to-run variation of measured memory system
 * performance — 16 trials per workload, 1/8 set sampling, 16 KB
 * physically-indexed direct-mapped cache, all activity (kernel and
 * servers included). Page allocation, sample selection and
 * interrupt phase all redraw per trial.
 */

#include "util.hh"

using namespace twbench;

namespace
{

struct PaperRow
{
    const char *name;
    double mean, sd_pct, min_pct, max_pct, range_pct;
};

// Table 7's percentage columns as published.
const PaperRow kPaper[] = {
    {"eqntott", 4.42, 57, 26, 197, 223},
    {"espresso", 4.91, 60, 30, 180, 209},
    {"jpeg_play", 18.58, 7, 13, 18, 31},
    {"kenbus", 20.89, 25, 18, 74, 92},
    {"mpeg_play", 58.48, 12, 19, 18, 37},
    {"ousterhout", 31.50, 8, 14, 11, 25},
    {"sdet", 41.28, 21, 21, 54, 75},
    {"xlisp", 41.55, 76, 64, 151, 215},
};

const unsigned kTrials = 16;

ExperimentDef
make()
{
    ExperimentDef def;
    def.name = "table7";
    def.artifact = "Table 7";
    def.description = "variation in measured performance "
                      "(16 trials, 1/8 sampling, 16KB physical)";
    def.report = "table7_variation";
    def.scaleDiv = 400;
    def.grid = [](unsigned scale) {
        std::vector<ExperimentUnit> units;
        for (const auto &paper : kPaper) {
            RunSpec spec = defaultSpec(paper.name, scale);
            spec.tw.cache = CacheConfig::icache(16384, 16, 1,
                                                Indexing::Physical);
            spec.tw.sampleNum = 1;
            spec.tw.sampleDenom = 8;
            // TW_CI_TARGET caps the sweep adaptively (the cache is
            // physically indexed, so interval sampling does not
            // apply here — adaptive stopping is the lever).
            units.push_back(unitOf(paper.name, spec,
                                   variationPlan(kTrials, 0xbead)));
        }
        return units;
    };
    def.present = [](ExperimentContext &ctx) {
        double total_misses = 0.0;
        unsigned total_trials = 0;
        TextTable t({"workload", "mean(10^6)", "s", "min", "max",
                     "range", "paper.s%", "paper.range%"});
        for (const auto &paper : kPaper) {
            const auto &outcomes = ctx.outcomes(paper.name);
            total_misses += totalEstMisses(outcomes);
            total_trials += outcomes.size();
            Summary s = missSummary(outcomes);
            double to_m = static_cast<double>(ctx.scale()) / 1e6;

            t.addRow({
                paper.name,
                fmtF(s.mean * to_m, 2),
                fmtValAndPct(s.stddev * to_m, s.stddevPct()),
                fmtValAndPct(s.min * to_m, s.minPct()),
                fmtValAndPct(s.max * to_m, s.maxPct()),
                fmtValAndPct(s.range * to_m, s.rangePct()),
                csprintf("%.0f%%", paper.sd_pct),
                csprintf("%.0f%%", paper.range_pct),
            });
        }
        ctx.print("%s\n", t.render().c_str());
        ctx.print("Shape targets: double-digit relative deviations; "
                  "small-footprint SPEC workloads (eqntott, espresso, "
                  "xlisp) show the largest relative spread.\n");
        ctx.metric("trials", total_trials);
        ctx.metric("total_est_misses", total_misses);
    };
    return def;
}

const ExperimentRegistrar reg(make());

} // namespace
