/**
 * @file
 * Multi-level simulation (Section 3.2's "split, unified or
 * multi-level caches" claim): a 4 KB L1 backed by a sweep of L2
 * sizes, trap-driven. Traps follow the L1 complement, so only L1
 * misses reach the handler and the slowdown stays bounded by the L1
 * miss ratio even though two structures are simulated.
 */

#include "util.hh"

#include "core/multilevel.hh"
#include "os/system.hh"

using namespace twbench;

namespace
{

ExperimentDef
make()
{
    ExperimentDef def;
    def.name = "multilevel";
    def.artifact = "Section 3.2";
    def.description = "two-level trap-driven cache simulation, "
                      "mpeg_play";
    def.report = "multilevel";
    def.scaleDiv = 200;
    // The TapewormMultiLevel client drives the System directly, so
    // there is nothing for the spec grid to enumerate.
    def.grid = [](unsigned) {
        return std::vector<ExperimentUnit>{};
    };
    def.present = [](ExperimentContext &ctx) {
        TextTable t({"L2 size", "L1 misses", "L2 misses",
                     "L2 local mr", "backinv", "slowdown"});
        for (std::uint64_t l2_kb : {8, 16, 32, 64, 128, 256}) {
            WorkloadSpec wl = makeWorkload("mpeg_play", ctx.scale());
            SystemConfig cfg;
            cfg.trialSeed = 7;

            // Uninstrumented baseline for the slowdown metric.
            System base(cfg, wl);
            Cycles normal = base.run().cycles;

            System system(cfg, wl);
            MultiLevelConfig ml_cfg;
            ml_cfg.l1 = CacheConfig::icache(4096);
            ml_cfg.l2 = CacheConfig::icache(l2_kb * 1024ull, 16, 2);
            ml_cfg.l2.policy = ReplPolicy::FIFO;
            TapewormMultiLevel ml(system.physMem(), ml_cfg);
            system.setClient(&ml);
            RunResult r = system.run();

            double slowdown = (static_cast<double>(r.cycles)
                               - static_cast<double>(normal))
                              / static_cast<double>(normal);
            t.addRow({
                csprintf("%lluK", (unsigned long long)l2_kb),
                csprintf("%llu",
                         (unsigned long long)ml.stats().totalL1()),
                csprintf("%llu",
                         (unsigned long long)ml.stats().totalL2()),
                fmtF(ml.stats().l2LocalRatio(), 3),
                csprintf("%llu",
                         (unsigned long long)
                             ml.stats().backInvalidates),
                fmtF(slowdown, 2),
            });
        }
        ctx.print("%s\n", t.render().c_str());
        ctx.print(
            "Reading the table: L1 misses are fixed by the 4K L1, so\n"
            "the slowdown is flat across L2 sizes — the handler only\n"
            "adds a software L2 search per L1 miss. L2 misses and its\n"
            "local miss ratio fall as L2 grows; back-invalidations\n"
            "appear when L2 is small enough to evict L1-resident\n"
            "lines (inclusion).\n");
    };
    return def;
}

const ExperimentRegistrar reg(make());

} // namespace
