/**
 * @file
 * The dilation-correction study the paper proposes (Section 4.2):
 * "We are collecting time dilation curves for a larger set of
 * workloads to determine if their shape and magnitude are the same
 * as in Figure 4. If so, it should be possible to adjust simulation
 * results to factor away this form of systematic error."
 *
 * This experiment does exactly that: collects the dilation curve of
 * each workload (sampling degree sweeps the slowdown), fits the
 * saturating model misses(d) = m0*(1 + a*d/(b+d)), and checks how
 * well the corrected unsampled measurement recovers the undilated
 * ground truth (a cost-free instrumented run of the same trial).
 */

#include "util.hh"

#include "harness/dilation.hh"

using namespace twbench;

namespace
{

const char *const kWorkloads[] = {"mpeg_play", "sdet", "ousterhout",
                                  "jpeg_play"};
const unsigned kDenoms[] = {16u, 8u, 4u, 2u, 1u};

ExperimentDef
make()
{
    ExperimentDef def;
    def.name = "dilation_correction";
    def.artifact = "Section 4.2";
    def.description = "time-dilation curves and correction";
    def.report = "dilation_correction";
    def.scaleDiv = 400;
    def.grid = [](unsigned scale) {
        std::vector<ExperimentUnit> units;
        for (const char *name : kWorkloads) {
            RunSpec spec;
            spec.workload = makeWorkload(name, scale);
            spec.sys.scope = SimScope::all();
            spec.sys.clockJitter = false;
            spec.sim = SimKind::Tapeworm;
            spec.tw.cache = CacheConfig::icache(4096, 16, 1,
                                                Indexing::Virtual);
            spec.tw.sampleSeed = 77; // virtual + fixed seed: low noise

            // Ground truth: instrumentation with zero cost
            // (dilation ~0).
            RunSpec truth_spec = spec;
            truth_spec.tw.chargeCost = false;
            units.push_back(unitOf(csprintf("truth/%s", name),
                                   truth_spec, TrialPlan::one(3)));

            // The dilation curve: sampling sweeps the slowdown.
            for (unsigned denom : kDenoms) {
                RunSpec point = spec;
                point.tw.sampleNum = 1;
                point.tw.sampleDenom = denom;
                units.push_back(unitOf(
                    csprintf("d/%s/%u", name, denom), point,
                    TrialPlan::one(3, true)));
            }
        }
        return units;
    };
    def.present = [](ExperimentContext &ctx) {
        TextTable t({"workload", "a (sat.infl)", "b (half-scale)",
                     "raw err", "corrected err", "fit rms"});
        for (const char *name : kWorkloads) {
            double truth =
                ctx.outcome(csprintf("truth/%s", name)).estMisses;

            std::vector<std::pair<double, double>> curve;
            double raw_unsampled = 0, dil_unsampled = 0;
            for (unsigned denom : kDenoms) {
                const RunOutcome &out =
                    ctx.outcome(csprintf("d/%s/%u", name, denom));
                curve.emplace_back(out.slowdown, out.estMisses);
                if (denom == 1) {
                    raw_unsampled = out.estMisses;
                    dil_unsampled = out.slowdown;
                }
            }

            DilationModel model = DilationModel::fit(curve);
            double corrected =
                model.correct(raw_unsampled, dil_unsampled);
            double raw_err = 100.0 * (raw_unsampled - truth) / truth;
            double corr_err = 100.0 * (corrected - truth) / truth;

            t.addRow({
                name,
                fmtF(model.saturationInflation(), 3),
                fmtF(model.halfScale(), 2),
                csprintf("%+.1f%%", raw_err),
                csprintf("%+.1f%%", corr_err),
                fmtF(model.rmsError(), 3),
            });
        }
        ctx.print("%s\n", t.render().c_str());
        ctx.print("Shape targets: raw unsampled measurements "
                  "over-read by several percent (the Figure 4 error); "
                  "after fitting each workload's own curve the "
                  "corrected values land within ~1-2%% of the "
                  "undilated truth — the adjustment the paper "
                  "anticipated is workable.\n");
    };
    return def;
}

const ExperimentRegistrar reg(make());

} // namespace
