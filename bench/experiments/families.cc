/**
 * @file
 * The full Section 2 taxonomy in one table: all four simulation
 * families measured on the same workload and cache —
 *
 *   trace-driven   Pixie+Cache2000: single user task, ~22x floor;
 *   trace buffer   Mogul/Borg/Chen: complete, but every reference
 *                  of every component pays annotation + drain;
 *   hybrid         Fast-Cache-style null handlers: single task,
 *                  low floor, cheap in-line miss handler;
 *   trap-driven    Tapeworm: complete AND miss-proportional.
 *
 * Columns report the slowdown and what fraction of the true misses
 * (oracle, all activity) each family can even see — the paper's
 * two axes, speed and completeness, on one chart.
 */

#include "util.hh"

#include "harness/oracle.hh"
#include "os/system.hh"
#include "trace/hybrid.hh"
#include "trace/trace_buffer.hh"

using namespace twbench;

namespace
{

double
slowdownOf(Cycles instrumented, Cycles normal)
{
    return (static_cast<double>(instrumented)
            - static_cast<double>(normal))
           / static_cast<double>(normal);
}

CacheConfig
familyCache()
{
    return CacheConfig::icache(16384, 16, 1, Indexing::Virtual);
}

ExperimentDef
make()
{
    ExperimentDef def;
    def.name = "families";
    def.artifact = "Section 2";
    def.description = "the four simulation families, mpeg_play, "
                      "16KB I-cache";
    def.report = "families";
    def.scaleDiv = 200;
    def.grid = [](unsigned scale) {
        std::vector<ExperimentUnit> units;
        WorkloadSpec wl = makeWorkload("mpeg_play", scale);
        SystemConfig sys;
        sys.trialSeed = 7;

        RunSpec trace;
        trace.workload = wl;
        trace.sys = sys;
        trace.sim = SimKind::TraceDriven;
        trace.c2k.cache = familyCache();
        units.push_back(unitOf("trace", trace,
                               TrialPlan::one(sys.trialSeed)));

        RunSpec trap;
        trap.workload = wl;
        trap.sys = sys;
        trap.sim = SimKind::Tapeworm;
        trap.tw.cache = familyCache();
        units.push_back(unitOf("trap", trap,
                               TrialPlan::one(sys.trialSeed)));
        return units;
    };
    def.present = [](ExperimentContext &ctx) {
        WorkloadSpec wl = makeWorkload("mpeg_play", ctx.scale());
        SystemConfig sys;
        sys.trialSeed = 7;
        CacheConfig cache = familyCache();

        // Ground truth: all-activity misses, zero cost.
        double truth = 0;
        Cycles normal = 0;
        {
            System machine(sys, wl);
            normal = machine.run().cycles;
        }
        {
            System machine(sys, wl);
            OracleClient oracle(cache, machine.physMem().numFrames());
            machine.setClient(&oracle);
            machine.run();
            truth = static_cast<double>(oracle.totalMisses());
        }

        TextTable t({"family", "slowdown", "misses seen", "coverage",
                     "scope"});

        // Trace-driven (Pixie + Cache2000).
        {
            const RunOutcome &out = ctx.outcome("trace");
            t.addRow({"trace-driven (Pixie+Cache2000)",
                      fmtF(slowdownOf(out.run.cycles, normal), 2),
                      fmtF(out.estMisses, 0),
                      csprintf("%.0f%%", 100 * out.estMisses / truth),
                      "one user task"});
        }

        // Trace buffer (Mogul/Borg/Chen).
        {
            System machine(sys, wl);
            TraceBufferConfig cfg;
            cfg.cache = cache;
            TraceBufferClient client(cfg);
            machine.setClient(&client);
            Cycles cycles = machine.run().cycles;
            client.drain();
            double seen =
                static_cast<double>(client.stats().totalMisses());
            t.addRow({"trace buffer (Chen, complete)",
                      fmtF(slowdownOf(cycles, normal), 2),
                      fmtF(seen, 0),
                      csprintf("%.0f%%", 100 * seen / truth),
                      "all tasks + kernel"});
        }

        // Hybrid annotation (Fast-Cache style).
        {
            System machine(sys, wl);
            HybridConfig cfg;
            cfg.cache = cache;
            HybridClient client(kFirstUserTaskId, cfg);
            machine.setClient(&client);
            Cycles cycles = machine.run().cycles;
            double seen = static_cast<double>(client.stats().misses);
            t.addRow({"hybrid null-handler (Fast-Cache)",
                      fmtF(slowdownOf(cycles, normal), 2),
                      fmtF(seen, 0),
                      csprintf("%.0f%%", 100 * seen / truth),
                      "one user task"});
        }

        // Trap-driven (Tapeworm).
        {
            const RunOutcome &out = ctx.outcome("trap");
            t.addRow({"trap-driven (Tapeworm II)",
                      fmtF(slowdownOf(out.run.cycles, normal), 2),
                      fmtF(out.estMisses, 0),
                      csprintf("%.0f%%", 100 * out.estMisses / truth),
                      "all tasks + kernel"});
        }

        ctx.print("%s\n", t.render().c_str());
        ctx.print(
            "Reading the table: only the trace buffer and Tapeworm see\n"
            "the whole system (~100%% coverage; small residue is the\n"
            "dilation/DMA difference between runs); the single-task\n"
            "families miss the majority of the activity (Table 6's\n"
            "lesson). Among the complete ones, the buffer pays its\n"
            "per-reference cost on every component — Tapeworm's\n"
            "miss-proportional cost is the only one that is both\n"
            "complete and cheap.\n");
    };
    return def;
}

const ExperimentRegistrar reg(make());

} // namespace
