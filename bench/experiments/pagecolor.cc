/**
 * @file
 * Frame-allocation policy ablation: the Table 9 variance is a
 * property of *random* page allocation specifically. Sweeping the
 * VM's allocator policy (random free list / sequential / Kessler
 * page coloring) for a physically-indexed cache shows both the mean
 * misses and the trial variance each policy produces — page
 * coloring being the "careful mapping" remedy of [Kessler92], which
 * the paper cites for exactly this discussion.
 */

#include "util.hh"

using namespace twbench;

namespace
{

const unsigned kTrials = 6;
const AllocPolicy kPolicies[] = {AllocPolicy::Random,
                                 AllocPolicy::Sequential,
                                 AllocPolicy::Coloring};

ExperimentDef
make()
{
    ExperimentDef def;
    def.name = "pagecolor";
    def.artifact = "Section 4.2";
    def.description = "frame-allocation policy ablation "
                      "(mpeg_play, physical 16KB)";
    def.report = "pagecolor";
    def.scaleDiv = 400;
    def.grid = [](unsigned scale) {
        std::vector<ExperimentUnit> units;
        for (AllocPolicy policy : kPolicies) {
            RunSpec spec = defaultSpec("mpeg_play", scale);
            spec.sys.scope = SimScope::userOnly();
            spec.sys.clockJitter = false;
            spec.sys.allocPolicy = policy;
            spec.tw.cache = CacheConfig::icache(16384, 16, 1,
                                                Indexing::Physical);
            units.push_back(unitOf(allocPolicyName(policy), spec,
                                   TrialPlan::derived(kTrials,
                                                      0xc0105)));
        }
        return units;
    };
    def.present = [](ExperimentContext &ctx) {
        double total_misses = 0.0;
        unsigned total_trials = 0;
        TextTable t({"policy", "mean misses", "s%", "range%"});
        for (AllocPolicy policy : kPolicies) {
            const auto &outcomes =
                ctx.outcomes(allocPolicyName(policy));
            total_misses += totalEstMisses(outcomes);
            total_trials += kTrials;
            Summary s = missSummary(outcomes);
            t.addRow({
                allocPolicyName(policy),
                fmtF(s.mean, 0),
                csprintf("%.1f%%", s.stddevPct()),
                csprintf("%.1f%%", s.rangePct()),
            });
        }
        ctx.print("%s\n", t.render().c_str());
        ctx.print(
            "Reading the table: only the Random policy varies across\n"
            "trials (the Table 9 effect); Sequential is deterministic\n"
            "but can land on a bad placement; Coloring is deterministic\n"
            "AND conflict-free (vpn and pfn agree on index bits), so it\n"
            "gives the lowest miss count — the page-placement remedy of\n"
            "[Kessler92].\n");
        ctx.metric("trials", total_trials);
        ctx.metric("total_est_misses", total_misses);
    };
    return def;
}

const ExperimentRegistrar reg(make());

} // namespace
