/**
 * @file
 * Three-way comparison of the simulation families of Section 2:
 * trace-driven (Pixie+Cache2000), hybrid annotation with a null
 * handler (Fast-Cache / MemSpy style), and trap-driven (Tapeworm) —
 * slowdown versus cache size for mpeg_play's user task.
 *
 * Expected regimes:
 *   trace-driven : flat ~22x floor (every ref generated + searched);
 *   hybrid       : low floor (~1x, the inline null handler) plus a
 *                  miss-proportional term with a cheap handler;
 *   trap-driven  : zero floor, miss-proportional with an expensive
 *                  (kernel-trap) handler.
 * The hybrid and trap lines cross: above the crossover miss ratio
 * the cheap in-line handler wins, below it hardware filtering wins —
 * exactly the trade the related-work section sketches.
 */

#include "util.hh"

#include "os/system.hh"
#include "trace/hybrid.hh"

using namespace twbench;

namespace
{

const std::uint64_t kSizesKb[] = {1, 2, 4, 8, 16, 32, 64};

ExperimentDef
make()
{
    ExperimentDef def;
    def.name = "hybrid";
    def.artifact = "Section 2";
    def.description = "trace vs hybrid vs trap simulation "
                      "slowdowns, mpeg_play";
    def.report = "hybrid";
    def.scaleDiv = 200;
    def.grid = [](unsigned scale) {
        std::vector<ExperimentUnit> units;
        for (std::uint64_t kb : kSizesKb) {
            CacheConfig cache = CacheConfig::icache(
                kb * 1024ull, 16, 1, Indexing::Virtual);

            RunSpec spec = defaultSpec("mpeg_play", scale);
            spec.sys.scope = SimScope::userOnly();
            spec.tw.cache = cache;
            units.push_back(unitOf(
                csprintf("tw/%lluK", (unsigned long long)kb), spec,
                TrialPlan::one(7, true)));

            RunSpec ts = spec;
            ts.sim = SimKind::TraceDriven;
            ts.c2k.cache = cache;
            units.push_back(unitOf(
                csprintf("c2k/%lluK", (unsigned long long)kb), ts,
                TrialPlan::one(7, true)));
        }
        return units;
    };
    def.present = [](ExperimentContext &ctx) {
        TextTable t({"size", "missRatio", "trace", "hybrid", "trap",
                     "fastest"});
        for (std::uint64_t kb : kSizesKb) {
            const RunOutcome &trap = ctx.outcome(
                csprintf("tw/%lluK", (unsigned long long)kb));
            const RunOutcome &trace = ctx.outcome(
                csprintf("c2k/%lluK", (unsigned long long)kb));

            // Hybrid runs outside the Runner (its own client type).
            CacheConfig cache = CacheConfig::icache(
                kb * 1024ull, 16, 1, Indexing::Virtual);
            WorkloadSpec wl = makeWorkload("mpeg_play", ctx.scale());
            SystemConfig sys;
            sys.trialSeed = 7;
            sys.scope = SimScope::userOnly();
            System plain(sys, wl);
            double normal = static_cast<double>(plain.run().cycles);
            System machine(sys, wl);
            HybridConfig hcfg;
            hcfg.cache = cache;
            HybridClient hybrid(kFirstUserTaskId, hcfg);
            machine.setClient(&hybrid);
            double hybrid_slow =
                (static_cast<double>(machine.run().cycles) - normal)
                / normal;

            const char *fastest = "trap";
            double best = trap.slowdown;
            if (hybrid_slow < best) {
                fastest = "hybrid";
                best = hybrid_slow;
            }
            if (trace.slowdown < best)
                fastest = "trace";

            t.addRow({
                csprintf("%lluK", (unsigned long long)kb),
                fmtF(trap.missRatioUser(), 3),
                fmtF(trace.slowdown, 2),
                fmtF(hybrid_slow, 2),
                fmtF(trap.slowdown, 2),
                fastest,
            });
        }
        ctx.print("%s\n", t.render().c_str());
        ctx.print(
            "Shape targets: trace flat ~22x; hybrid ~1-4x with a ~1x\n"
            "floor; trap from ~6x down to ~0. The hybrid wins at\n"
            "miss-heavy small caches, the trap-driven simulator wins\n"
            "once the miss ratio drops below roughly\n"
            "nullHandler/(trapHandler - missHandler) ~ 3%% — and only\n"
            "the trap-driven one ever sees the kernel and servers.\n");
    };
    return def;
}

const ExperimentRegistrar reg(make());

} // namespace
