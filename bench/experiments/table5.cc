/**
 * @file
 * Regenerates Table 5: Tapeworm miss-handling time — the
 * instruction breakdown of the optimized handler and the cycles
 * per miss, against Cache2000's cycles per address. Also reports
 * the *host* nanoseconds per operation of this implementation's two
 * engines, the modern analogue of the comparison.
 */

#include <chrono>
#include <memory>

#include "util.hh"

#include "core/cost_model.hh"
#include "core/tapeworm.hh"
#include "trace/cache2000.hh"
#include "workload/loop_nest.hh"

using namespace twbench;

namespace
{

double
nowSec()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

ExperimentDef
make()
{
    ExperimentDef def;
    def.name = "table5";
    def.artifact = "Table 5";
    def.description = "Tapeworm miss handling time";
    def.report = "table5_misscost";
    def.scaleDiv = 200;
    // Cost-model accounting plus host-nanosecond micro-benchmarks;
    // no RunSpec grid (host timing is intentionally non-canonical).
    def.grid = [](unsigned) {
        return std::vector<ExperimentUnit>{};
    };
    def.present = [](ExperimentContext &ctx) {
        TrapCostModel cost;
        TextTable t({"routine", "instructions", "paper"});
        t.addRow({"kernel trap and return",
                  csprintf("%u", cost.kernelTrapReturn), "53"});
        t.addRow({"tw_cache_miss()", csprintf("%u", cost.twCacheMiss),
                  "23"});
        t.addRow({"tw_replace()", csprintf("%u", cost.twReplaceBase),
                  "20"});
        t.addRow({"tw_set_trap()", csprintf("%u", cost.twSetTrapBase),
                  "35"});
        t.addRow({"tw_clear_trap()",
                  csprintf("%u", cost.twClearTrapBase), "6"});
        t.addRule();
        t.addRow({"cycles per miss (DM, 4-word line)",
                  csprintf("%llu",
                           (unsigned long long)cost.missCycles(1, 1)),
                  "246"});
        t.addRow({"cycles per address, Cache2000", "53", "53"});
        ctx.print("%s\n", t.render().c_str());

        // Geometry adjustments (Section 4.1's prose).
        TextTable adj({"configuration", "handler cycles"});
        for (unsigned assoc : {1u, 2u, 4u}) {
            for (unsigned line : {16u, 32u, 64u}) {
                adj.addRow({csprintf("%u-way, %u-byte lines", assoc,
                                     line),
                            csprintf("%llu",
                                     (unsigned long long)
                                         cost.missCycles(assoc,
                                                         line / 16))});
            }
        }
        ctx.print("%s\n", adj.render().c_str());

        // Host-speed measurement: ns per simulated miss (trap
        // engine) vs ns per trace address (Cache2000), on this
        // machine.
        {
            PhysMem phys(16 * 1024 * 1024);
            TapewormConfig cfg;
            cfg.cache = CacheConfig::icache(4096);
            Tapeworm tapeworm(phys, cfg);
            StreamParams p;
            p.base = 0x400000;
            p.textBytes = 64 * 1024;
            p.ladder = {{256, 2.0}};
            Task task(1, "bench", Component::User,
                      std::make_unique<LoopNestStream>(p), 1);
            task.attr.simulate = true;
            for (Vpn v = 0; v < 16; ++v) {
                task.pageTable.map(0x400 + v,
                                   static_cast<Pfn>(100 + v));
                tapeworm.onPageMapped(task, 0x400 + v,
                                      static_cast<Pfn>(100 + v),
                                      false);
            }

            const int refs = 2'000'000;
            double t0 = nowSec();
            for (int i = 0; i < refs; ++i) {
                Addr va = task.stream->next();
                Addr pa =
                    static_cast<Addr>(task.pageTable.lookup(va))
                        * kHostPageBytes
                    + (va % kHostPageBytes);
                tapeworm.onRef(task, va, pa, false);
            }
            double trap_ns = (nowSec() - t0) / refs * 1e9;

            Cache2000Config ccfg;
            ccfg.cache = CacheConfig::icache(4096, 16, 1,
                                             Indexing::Virtual);
            Cache2000 c2k(ccfg);
            LoopNestStream stream(p);
            t0 = nowSec();
            for (int i = 0; i < refs; ++i)
                c2k.processAddr(stream.next(), 1);
            double trace_ns = (nowSec() - t0) / refs * 1e9;

            TextTable host({"engine", "host ns/reference"});
            host.addRow({"trap-driven (bit test on hits)",
                         fmtF(trap_ns, 1)});
            host.addRow({"trace-driven (search every address)",
                         fmtF(trace_ns, 1)});
            ctx.print("%s\n", host.render().c_str());
            ctx.print("misses handled: %llu; Cache2000 refs: %llu\n\n",
                      static_cast<unsigned long long>(
                          tapeworm.stats().totalMisses()),
                      static_cast<unsigned long long>(
                          c2k.stats().refs));
        }
    };
    return def;
}

const ExperimentRegistrar reg(make());

} // namespace
