/**
 * @file
 * Figure 4's dilation sweep re-priced by the cycle-level DRAM
 * backend, next to the flat Table 5 model it replaces. The paper's
 * handler costs charge every miss the same; a banked DRAM charges a
 * miss that re-opens a conflicting row ~3x what a row-buffer hit
 * costs, so the dilation a trap-driven run reports becomes a
 * function of CONTENTION, not just miss count. Each sampling denom
 * runs under both backends; the table shows them side by side and
 * the BENCH report carries the row-hit/row-conflict tallies that
 * explain the gap.
 */

#include <cmath>

#include "core/cost/cost_backend.hh"
#include "obs/metrics.hh"
#include "util.hh"

using namespace twbench;

namespace
{

const unsigned kTrials = 3;
const unsigned kDenoms[] = {16u, 8u, 4u, 2u, 1u};

RunSpec
dilationSpec(unsigned scale, unsigned denom, CostBackendKind kind)
{
    RunSpec spec = defaultSpec("mpeg_play", scale);
    spec.sys.scope = SimScope::all();
    spec.tw.cache = CacheConfig::icache(4096, 16, 1,
                                        Indexing::Physical);
    spec.tw.sampleNum = 1;
    spec.tw.sampleDenom = denom;
    // Both sides are pinned explicitly: this experiment IS the
    // backend comparison, so TW_COST_BACKEND must not skew either.
    spec.tw.costBackend = CostBackendConfig{};
    spec.tw.costBackend.kind = kind;
    spec.tlb.costBackend = spec.tw.costBackend;
    return spec;
}

ExperimentDef
make()
{
    ExperimentDef def;
    def.name = "dram_dilation";
    def.artifact = "Figure 4 (dram)";
    def.description = "time dilation under the cycle-level dram "
                      "cost backend vs the flat Table 5 model";
    def.report = "dram_dilation";
    def.scaleDiv = 200;
    def.grid = [](unsigned scale) {
        std::vector<ExperimentUnit> units;
        for (unsigned denom : kDenoms) {
            units.push_back(unitOf(
                csprintf("dram:1/%u", denom),
                dilationSpec(scale, denom, CostBackendKind::Dram),
                TrialPlan::derived(kTrials, 0xd4a1, true)));
            units.push_back(unitOf(
                csprintf("table5:1/%u", denom),
                dilationSpec(scale, denom, CostBackendKind::Table5),
                TrialPlan::derived(kTrials, 0xd4a1, true)));
        }
        return units;
    };
    def.present = [](ExperimentContext &ctx) {
        TextTable t({"sampling", "dram.dil", "table5.dil",
                     "dram.misses(10^6)", "table5.misses(10^6)"});
        double max_rel_gap = 0.0;
        unsigned total_trials = 0;
        for (unsigned denom : kDenoms) {
            auto dil = [&](const char *backend) {
                const auto &outcomes = ctx.outcomes(
                    csprintf("%s:1/%u", backend, denom));
                return meanOf(outcomes, [](const RunOutcome &o) {
                    return o.slowdown;
                });
            };
            auto misses = [&](const char *backend) {
                const auto &outcomes = ctx.outcomes(
                    csprintf("%s:1/%u", backend, denom));
                return meanOf(outcomes, [](const RunOutcome &o) {
                    return o.estMisses;
                });
            };
            double dram_dil = dil("dram");
            double flat_dil = dil("table5");
            if (flat_dil > 0.0) {
                double rel =
                    std::abs(dram_dil - flat_dil) / flat_dil;
                if (rel > max_rel_gap)
                    max_rel_gap = rel;
            }
            t.addRow({
                csprintf("1/%u", denom),
                fmtF(dram_dil, 2),
                fmtF(flat_dil, 2),
                fmtF(paperMillions(misses("dram"), ctx.scale()), 2),
                fmtF(paperMillions(misses("table5"), ctx.scale()),
                     2),
            });
            total_trials += 2 * kTrials;
        }
        ctx.print("%s\n", t.render().c_str());
        ctx.print("Shape targets: dram dilation tracks the flat "
                  "model's growth with sampling depth but diverges "
                  "from it — row-buffer hits price below Table 5's "
                  "flat miss cost, row conflicts above it.\n");
        // The banked-state tallies the dram trials flushed into the
        // obs registry (dram backends only; the table5 side cannot
        // contribute). These are what make the BENCH report
        // self-describing about WHY the dilation moved.
        auto obs_total = [](const char *name) {
            return static_cast<double>(
                obs::registry().counter(name).value());
        };
        ctx.metric("trials", total_trials);
        ctx.metric("dram_row_hits",
                   obs_total("engine.cost.row_hits"));
        ctx.metric("dram_row_conflicts",
                   obs_total("engine.cost.row_conflicts"));
        ctx.metric("dram_refreshes",
                   obs_total("engine.cost.refreshes"));
        ctx.metric("max_rel_dilation_gap", max_rel_gap);
    };
    return def;
}

const ExperimentRegistrar reg(make());

} // namespace
