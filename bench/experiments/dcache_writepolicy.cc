/**
 * @file
 * Regenerates the Section 4.4 flexibility findings as an
 * experiment:
 *
 *  (a) data-cache simulation on a no-allocate-on-write host loses
 *      traps to silent store-clears and undercounts misses — the
 *      reason the authors' D-cache attempts on the DECstation were
 *      hindered, quantified per workload against an
 *      allocate-on-write host (where trap-driven matches the
 *      oracle exactly);
 *  (b) a write buffer can be evaluated by a trace-style simulator
 *      (which sees every store with a clock) but not by the
 *      trap-driven algorithm — shown by sweeping buffer depth with
 *      the oracle-side model.
 */

#include "util.hh"

#include "harness/oracle.hh"
#include "mem/write_buffer.hh"
#include "os/system.hh"

using namespace twbench;

namespace
{

/** Trace-style D-cache client with a write buffer: possible only
 *  because it observes EVERY reference with a clock. */
class DcacheWithWriteBuffer : public OracleClient
{
  public:
    DcacheWithWriteBuffer(const CacheConfig &cache,
                          std::uint64_t num_frames, System *system,
                          const WriteBufferConfig &wb)
        : OracleClient(cache, num_frames, 1, 1, 0,
                       SimCacheKind::Data),
          system_(system), buffer_(wb),
          lineShift_(floorLog2(cache.lineBytes))
    {
    }

    Cycles
    onRef(const Task &task, Addr va, Addr pa, bool intr_masked,
          AccessKind kind = AccessKind::Fetch) override
    {
        Cycles cost =
            OracleClient::onRef(task, va, pa, intr_masked, kind);
        if (kind == AccessKind::Store)
            cost += buffer_.store(pa >> lineShift_, system_->now());
        else if (kind == AccessKind::Load)
            buffer_.loadForward(pa >> lineShift_, system_->now());
        return cost;
    }

    const WriteBuffer &buffer() const { return buffer_; }

  private:
    System *system_;
    WriteBuffer buffer_;
    unsigned lineShift_;
};

const char *const kWorkloads[] = {"espresso", "mpeg_play", "sdet"};

RunSpec
dcacheSpec(const char *name, unsigned scale)
{
    RunSpec spec;
    spec.workload = makeWorkload(name, scale);
    spec.tw.cache = CacheConfig::icache(8192);
    spec.tw.cache.name = "dcache";
    spec.tw.kind = SimCacheKind::Data;
    spec.tw.chargeCost = false;
    return spec;
}

ExperimentDef
make()
{
    ExperimentDef def;
    def.name = "dcache_writepolicy";
    def.artifact = "Section 4.4";
    def.description = "data-cache write-policy and write-buffer "
                      "flexibility limits";
    def.report = "dcache_writepolicy";
    def.scaleDiv = 400;
    def.grid = [](unsigned scale) {
        std::vector<ExperimentUnit> units;
        for (const char *name : kWorkloads) {
            RunSpec spec = dcacheSpec(name, scale);
            spec.sim = SimKind::Oracle;
            units.push_back(unitOf(csprintf("oracle/%s", name), spec,
                                   TrialPlan::one(5)));

            spec.sim = SimKind::Tapeworm;
            spec.tw.hostWrite = HostWritePolicy::AllocateOnWrite;
            units.push_back(unitOf(csprintf("alloc/%s", name), spec,
                                   TrialPlan::one(5)));

            spec.tw.hostWrite = HostWritePolicy::NoAllocateOnWrite;
            units.push_back(unitOf(csprintf("noalloc/%s", name),
                                   spec, TrialPlan::one(5)));
        }
        return units;
    };
    def.present = [](ExperimentContext &ctx) {
        // (a) host write policy ablation.
        TextTable t({"workload", "oracle", "trap(alloc-on-write)",
                     "trap(no-allocate)", "undercount"});
        for (const char *name : kWorkloads) {
            const RunOutcome &oracle =
                ctx.outcome(csprintf("oracle/%s", name));
            const RunOutcome &alloc =
                ctx.outcome(csprintf("alloc/%s", name));
            const RunOutcome &noalloc =
                ctx.outcome(csprintf("noalloc/%s", name));

            t.addRow({
                name,
                fmtF(oracle.estMisses, 0),
                fmtF(alloc.estMisses, 0),
                fmtF(noalloc.estMisses, 0),
                csprintf("-%.0f%%", 100.0
                                        * (alloc.estMisses
                                           - noalloc.estMisses)
                                        / alloc.estMisses),
            });
        }
        ctx.print("8KB DM data cache, store traffic 1/3 of data "
                  "refs:\n%s\n", t.render().c_str());
        ctx.print("Shape targets: allocate-on-write == oracle exactly "
                  "(data-cache simulation works, as on the WWT's "
                  "SPARC); no-allocate loses a large fraction of "
                  "misses — the DECstation finding.\n\n");

        // (b) write-buffer sweep: trace-style only.
        TextTable wb({"depth", "stores", "coalesced", "full stalls",
                      "stall cycles", "forwards"});
        for (unsigned depth : {1u, 2u, 4u, 8u}) {
            WorkloadSpec wl = makeWorkload("mpeg_play", ctx.scale());
            SystemConfig cfg;
            cfg.trialSeed = 5;
            System system(cfg, wl);
            WriteBufferConfig wcfg;
            wcfg.depth = depth;
            wcfg.retireCycles = 18; // near the store arrival rate
            DcacheWithWriteBuffer client(CacheConfig::icache(8192),
                                         system.physMem().numFrames(),
                                         &system, wcfg);
            system.setClient(&client);
            system.run();
            const WriteBufferStats &s = client.buffer().stats();
            wb.addRow({
                csprintf("%u", depth),
                csprintf("%llu", (unsigned long long)s.stores),
                csprintf("%llu", (unsigned long long)s.coalesced),
                csprintf("%llu", (unsigned long long)s.fullStalls),
                csprintf("%llu", (unsigned long long)s.stallCycles),
                csprintf("%llu", (unsigned long long)s.loadForwards),
            });
        }
        ctx.print("write-buffer evaluation (trace-style simulation "
                  "only):\n%s\n", wb.render().c_str());
        ctx.print("The trap-driven column for this table does not "
                  "exist: stores that hit and buffer drain timing "
                  "never raise traps, so Tapeworm cannot observe a "
                  "write buffer at all — Section 4.4's structural "
                  "flexibility limit.\n");
    };
    return def;
}

const ExperimentRegistrar reg(make());

} // namespace
