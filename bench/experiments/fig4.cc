/**
 * @file
 * Figure 4: error due to time dilation. mpeg_play runs with all
 * system activity in a physically-addressed 4 KB DM I-cache; time
 * dilation is varied by changing the degree of set sampling, and
 * the estimated misses rise with slowdown because the dilated run
 * takes more clock interrupts (more handler interference). Each
 * point averages a few trials to steady the sampling estimator.
 */

#include "util.hh"

using namespace twbench;

namespace
{

struct PaperRow
{
    double dilation, misses, increase_pct;
};

// Figure 4's embedded table.
const PaperRow kPaper[] = {
    {0.43, 90.56, 0.0},  {0.96, 91.54, 1.2},  {2.08, 95.70, 5.7},
    {4.42, 99.66, 10.1}, {9.29, 103.57, 14.4},
};

const unsigned kTrials = 3;
const unsigned kDenoms[] = {16u, 8u, 4u, 2u, 1u};

ExperimentDef
make()
{
    ExperimentDef def;
    def.name = "fig4";
    def.artifact = "Figure 4";
    def.description = "error due to time dilation "
                      "(mpeg_play, 4KB physical, all activity)";
    def.report = "fig4_dilation";
    def.scaleDiv = 200;
    def.grid = [](unsigned scale) {
        std::vector<ExperimentUnit> units;
        for (unsigned denom : kDenoms) {
            RunSpec spec = defaultSpec("mpeg_play", scale);
            spec.sys.scope = SimScope::all();
            spec.tw.cache = CacheConfig::icache(4096, 16, 1,
                                                Indexing::Physical);
            spec.tw.sampleNum = 1;
            spec.tw.sampleDenom = denom;
            units.push_back(unitOf(csprintf("1/%u", denom), spec,
                                   TrialPlan::derived(kTrials, 0xd11a,
                                                      true)));
        }
        return units;
    };
    def.present = [](ExperimentContext &ctx) {
        double total_misses = 0.0;
        unsigned total_trials = 0;
        TextTable t({"sampling", "dilation", "misses(10^6)",
                     "increase", "paper.dil", "paper.incr"});
        double baseline = -1.0;
        std::size_t row = 0;
        for (unsigned denom : kDenoms) {
            const auto &outcomes =
                ctx.outcomes(csprintf("1/%u", denom));
            total_misses += totalEstMisses(outcomes);
            total_trials += kTrials;
            double misses = meanOf(outcomes, [](const RunOutcome &o) {
                return o.estMisses;
            });
            double slowdown =
                meanOf(outcomes, [](const RunOutcome &o) {
                    return o.slowdown;
                });
            if (baseline < 0)
                baseline = misses;
            double increase = 100.0 * (misses - baseline) / baseline;

            const PaperRow &paper =
                kPaper[std::min(row, std::size_t(4))];
            t.addRow({
                csprintf("1/%u", denom),
                fmtF(slowdown, 2),
                fmtF(paperMillions(misses, ctx.scale()), 2),
                csprintf("%+.1f%%", increase),
                fmtF(paper.dilation, 2),
                csprintf("%+.1f%%", paper.increase_pct),
            });
            ++row;
        }
        ctx.print("%s\n", t.render().c_str());
        ctx.print("Shape targets: miss inflation grows with "
                  "dilation, steeply at first and levelling off "
                  "around +10-15%% — systematic error, not noise.\n");
        ctx.metric("trials", total_trials);
        ctx.metric("total_est_misses", total_misses);
    };
    return def;
}

const ExperimentRegistrar reg(make());

} // namespace
