/**
 * @file
 * Regenerates Table 6: miss count and miss ratio contributions of
 * the workload components. Each component (user tasks, servers,
 * kernel) runs in a dedicated 4 KB direct-mapped cache via Tapeworm
 * attribute scoping; "All Activity" shares one cache; Interference
 * is the excess of the shared run over the component sum. "From
 * Traces" is the Pixie+Cache2000 result, available only for the
 * single-user-task workloads.
 */

#include "util.hh"

using namespace twbench;

namespace
{

struct PaperRow
{
    const char *name;
    double traces, user, servers, kernel, all, interference;
};

// Table 6 as published, misses in millions.
const PaperRow kPaper[] = {
    {"eqntott", 0.06, 0.07, 2.52, 2.44, 8.44, 3.41},
    {"espresso", 1.60, 1.80, 2.28, 1.96, 9.53, 3.49},
    {"jpeg_play", 2.98, 3.14, 14.58, 9.21, 36.28, 9.35},
    {"kenbus", -1, 7.50, 11.89, 12.78, 45.70, 13.53},
    {"mpeg_play", 37.63, 37.91, 33.92, 19.27, 112.5, 21.39},
    {"ousterhout", -1, 1.93, 18.62, 21.72, 61.39, 19.12},
    {"sdet", -1, 20.14, 25.18, 18.09, 104.6, 41.25},
    {"xlisp", 85.77, 90.02, 6.31, 2.98, 135.8, 36.55},
};

std::string
cell(double misses_m, double total_instr_m)
{
    return fmtMissAndRatio(misses_m, misses_m / total_instr_m);
}

ExperimentDef
make()
{
    ExperimentDef def;
    def.name = "table6";
    def.artifact = "Table 6";
    def.description =
        "miss contributions per workload component (4KB DM)";
    def.report = "table6_components";
    def.scaleDiv = 200;
    def.grid = [](unsigned scale) {
        std::vector<ExperimentUnit> units;
        for (const auto &paper : kPaper) {
            RunSpec spec = defaultSpec(paper.name, scale);

            auto scoped = [&](const char *tag, SimScope scope) {
                RunSpec s = spec;
                s.sys.scope = scope;
                units.push_back(unitOf(
                    csprintf("%s/%s", tag, paper.name), s,
                    TrialPlan::one(7)));
            };
            scoped("user", SimScope::userOnly());
            scoped("servers", SimScope::serversOnly());
            scoped("kernel", SimScope::kernelOnly());
            scoped("all", SimScope::all());

            if (paper.traces >= 0) {
                RunSpec ts = spec;
                ts.sys.scope = SimScope::userOnly();
                ts.sim = SimKind::TraceDriven;
                ts.c2k.cache = CacheConfig::icache(4096, 16, 1,
                                                   Indexing::Virtual);
                units.push_back(unitOf(
                    csprintf("traces/%s", paper.name), ts,
                    TrialPlan::one(7)));
            }
        }
        return units;
    };
    def.present = [](ExperimentContext &ctx) {
        unsigned scale = ctx.scale();
        TextTable t({"workload", "FromTraces", "UserTasks", "Servers",
                     "Kernel", "AllActivity", "Interference"});
        for (const auto &paper : kPaper) {
            const RunOutcome &user =
                ctx.outcome(csprintf("user/%s", paper.name));
            const RunOutcome &servers =
                ctx.outcome(csprintf("servers/%s", paper.name));
            const RunOutcome &kernel =
                ctx.outcome(csprintf("kernel/%s", paper.name));
            const RunOutcome &all =
                ctx.outcome(csprintf("all/%s", paper.name));

            double instr_m = paperMillions(
                static_cast<double>(all.run.totalInstr()), scale);
            double u = paperMillions(user.estMisses, scale);
            double s = paperMillions(servers.estMisses, scale);
            double k = paperMillions(kernel.estMisses, scale);
            double a = paperMillions(all.estMisses, scale);
            double interference = a - u - s - k;

            std::string traces_cell = "--";
            if (paper.traces >= 0) {
                const RunOutcome &trace =
                    ctx.outcome(csprintf("traces/%s", paper.name));
                traces_cell = cell(
                    paperMillions(trace.estMisses, scale), instr_m);
            }

            t.addRow({paper.name, traces_cell, cell(u, instr_m),
                      cell(s, instr_m), cell(k, instr_m),
                      cell(a, instr_m), cell(interference, instr_m)});
            t.addRow({"  (paper)",
                      paper.traces >= 0 ? fmtF(paper.traces, 2) : "--",
                      fmtF(paper.user, 2), fmtF(paper.servers, 2),
                      fmtF(paper.kernel, 2), fmtF(paper.all, 2),
                      fmtF(paper.interference, 2)});
        }
        ctx.print("%s\n", t.render().c_str());
        ctx.print("Shape targets: servers+kernel dominate the "
                  "OS-intensive workloads; user-only simulation (or "
                  "traces) misses most of the activity; All > sum of "
                  "components (interference > 0).\n");
    };
    return def;
}

const ExperimentRegistrar reg(make());

} // namespace
