/**
 * @file
 * Table 9: measurement variation due to page allocation alone.
 * Sampling is off; only the mpeg_play user task is simulated. A
 * physically-indexed cache sees different frame placements per
 * trial; a virtually-indexed cache is placement-independent. Four
 * trials per point, like the paper.
 */

#include "util.hh"

using namespace twbench;

namespace
{

struct PaperRow
{
    unsigned kb;
    double phys_mean, phys_sd, virt_mean, virt_sd;
};

// Table 9 as published (misses x 10^6).
const PaperRow kPaper[] = {
    {4, 37.81, 0.09, 37.75, 0.00},  {8, 22.38, 5.89, 14.03, 0.00},
    {16, 12.07, 4.84, 10.20, 0.00}, {32, 9.01, 5.62, 1.90, 0.00},
    {64, 5.83, 5.96, 1.38, 0.00},   {128, 2.92, 4.60, 0.28, 0.00},
};

const unsigned kTrials = 4;

ExperimentDef
make()
{
    ExperimentDef def;
    def.name = "table9";
    def.artifact = "Table 9";
    def.description = "variation due to page allocation "
                      "(mpeg_play, user only, no sampling)";
    def.report = "table9_pagealloc";
    def.scaleDiv = 200;
    def.grid = [](unsigned scale) {
        std::vector<ExperimentUnit> units;
        for (const auto &paper : kPaper) {
            RunSpec spec = defaultSpec("mpeg_play", scale);
            spec.sys.scope = SimScope::userOnly();
            spec.sys.clockJitter = false; // isolate page allocation

            spec.tw.cache = CacheConfig::icache(paper.kb * 1024ull,
                                                16, 1,
                                                Indexing::Physical);
            units.push_back(unitOf(csprintf("phys/%uK", paper.kb),
                                   spec,
                                   TrialPlan::derived(kTrials,
                                                      0x9a9e)));

            spec.tw.cache = CacheConfig::icache(paper.kb * 1024ull,
                                                16, 1,
                                                Indexing::Virtual);
            units.push_back(unitOf(csprintf("virt/%uK", paper.kb),
                                   spec,
                                   TrialPlan::derived(kTrials,
                                                      0x9a9e)));
        }
        return units;
    };
    def.present = [](ExperimentContext &ctx) {
        double total_misses = 0.0;
        unsigned total_trials = 0;
        TextTable t({"size", "phys.mean", "phys.s", "virt.mean",
                     "virt.s", "paper.phys", "paper.virt"});
        for (const auto &paper : kPaper) {
            const auto &phys_out =
                ctx.outcomes(csprintf("phys/%uK", paper.kb));
            Summary sp = missSummary(phys_out);
            const auto &virt_out =
                ctx.outcomes(csprintf("virt/%uK", paper.kb));
            Summary sv = missSummary(virt_out);

            total_misses += totalEstMisses(phys_out)
                            + totalEstMisses(virt_out);
            total_trials += 2 * kTrials;

            double to_m = static_cast<double>(ctx.scale()) / 1e6;
            t.addRow({
                csprintf("%uK", paper.kb),
                fmtF(sp.mean * to_m, 2),
                fmtValAndPct(sp.stddev * to_m, sp.stddevPct()),
                fmtF(sv.mean * to_m, 2),
                fmtValAndPct(sv.stddev * to_m, sv.stddevPct()),
                csprintf("%.2f s=%.2f", paper.phys_mean,
                         paper.phys_sd),
                csprintf("%.2f s=%.2f", paper.virt_mean,
                         paper.virt_sd),
            });
        }
        ctx.print("%s\n", t.render().c_str());
        ctx.print("Shape targets: virtual variance = 0 at every "
                  "size; physical variance 0 at 4K (cache == page), "
                  "peaking near the program's ~32K text size "
                  "(Kessler's conflict model), with phys mean >= "
                  "virt mean.\n");
        ctx.metric("trials", total_trials);
        ctx.metric("total_est_misses", total_misses);
    };
    return def;
}

const ExperimentRegistrar reg(make());

} // namespace
