/**
 * @file
 * Regenerates Table 4: workload and operating system summary —
 * instruction counts, run time, per-component time split and user
 * task counts, as measured by running each workload on the
 * simulated machine (the paper measured these with the Monster
 * logic analyzer).
 */

#include "util.hh"

using namespace twbench;

namespace
{

struct PaperRow
{
    const char *name;
    double instrM, secs, kern, bsd, x, user;
    unsigned tasks;
};

// Table 4 as published.
const PaperRow kPaper[] = {
    {"xlisp", 1412, 67.52, 7.3, 7.1, 0.0, 85.6, 1},
    {"espresso", 534, 26.80, 2.9, 1.9, 0.0, 95.1, 1},
    {"eqntott", 1306, 60.98, 1.5, 1.2, 0.0, 97.2, 1},
    {"mpeg_play", 1423, 95.53, 24.1, 27.3, 4.0, 44.6, 1},
    {"jpeg_play", 1793, 89.70, 9.1, 9.4, 2.6, 78.8, 1},
    {"ousterhout", 567, 37.89, 48.0, 31.4, 0.0, 20.6, 15},
    {"sdet", 823, 43.70, 43.7, 35.5, 0.0, 20.8, 281},
    {"kenbus", 176, 23.13, 48.9, 29.1, 0.0, 22.0, 238},
};

ExperimentDef
make()
{
    ExperimentDef def;
    def.name = "table4";
    def.artifact = "Table 4";
    def.description = "workload and operating system summary";
    def.report = "table4_workloads";
    def.scaleDiv = 200;
    def.grid = [](unsigned scale) {
        std::vector<ExperimentUnit> units;
        for (const auto &paper : kPaper) {
            RunSpec spec = defaultSpec(paper.name, scale);
            spec.sim = SimKind::None;
            units.push_back(unitOf(paper.name, spec,
                                   TrialPlan::one(1)));
        }
        return units;
    };
    def.present = [](ExperimentContext &ctx) {
        TextTable t({"workload", "Instr(10^6)", "RunTime(s)", "Kernel",
                     "BSDserv", "Xserv", "UserTasks", "TaskCount"});
        unsigned scale = ctx.scale();
        for (const auto &paper : kPaper) {
            const RunResult &r = ctx.outcome(paper.name).run;
            t.addRow({
                paper.name,
                fmtF(static_cast<double>(r.totalInstr()) * scale / 1e6,
                     0),
                fmtF(r.seconds() * scale, 2),
                csprintf("%.1f%%",
                         100 * r.instrFrac(Component::Kernel)),
                csprintf("%.1f%%", 100 * r.instrFrac(Component::Bsd)),
                csprintf("%.1f%%", 100 * r.instrFrac(Component::X)),
                csprintf("%.1f%%", 100 * r.instrFrac(Component::User)),
                csprintf("%u", r.tasksCreated),
            });
            t.addRow({
                "  (paper)",
                fmtF(paper.instrM, 0),
                fmtF(paper.secs, 2),
                csprintf("%.1f%%", paper.kern),
                csprintf("%.1f%%", paper.bsd),
                csprintf("%.1f%%", paper.x),
                csprintf("%.1f%%", paper.user),
                csprintf("%u", paper.tasks),
            });
        }
        ctx.print("%s\n", t.render().c_str());
        ctx.print("Task counts for sdet/kenbus are scaled 1/4 with "
                  "the workload (see DESIGN.md).\n");
    };
    return def;
}

const ExperimentRegistrar reg(make());

} // namespace
