/**
 * @file
 * Regenerates Figure 3: Tapeworm slowdowns across simulation
 * configurations — associativity 1/2/4, line sizes 16/32/64 bytes,
 * and set-sampling degrees 1 down to 1/16 — for mpeg_play.
 */

#include "util.hh"

using namespace twbench;

namespace
{

const std::uint64_t kPanelSizesKb[] = {1, 2, 4, 8, 16, 32};
const unsigned kAssocs[] = {1u, 2u, 4u};
const unsigned kLines[] = {16u, 32u, 64u};
const std::uint64_t kSampleSizesKb[] = {1, 2, 4};
const unsigned kDenoms[] = {1u, 2u, 4u, 8u, 16u};

RunSpec
baseSpec(std::uint64_t size_bytes, unsigned scale)
{
    RunSpec spec = defaultSpec("mpeg_play", scale);
    spec.sys.scope = SimScope::userOnly();
    spec.tw.cache = CacheConfig::icache(size_bytes, 16, 1,
                                        Indexing::Virtual);
    return spec;
}

ExperimentDef
make()
{
    ExperimentDef def;
    def.name = "fig3";
    def.artifact = "Figure 3";
    def.description =
        "Tapeworm slowdowns across configurations, mpeg_play";
    def.report = "fig3_configs";
    def.scaleDiv = 200;
    def.grid = [](unsigned scale) {
        std::vector<ExperimentUnit> units;

        // Panel 1: associativity (FIFO replacement above 1 way,
        // since a trap-driven simulator cannot do LRU).
        for (std::uint64_t kb : kPanelSizesKb) {
            for (unsigned assoc : kAssocs) {
                RunSpec spec = baseSpec(kb * 1024, scale);
                spec.tw.cache =
                    CacheConfig::icache(kb * 1024, 16, assoc,
                                        Indexing::Virtual);
                units.push_back(unitOf(
                    csprintf("assoc/%lluK/%u",
                             (unsigned long long)kb, assoc),
                    spec, TrialPlan::one(7, true)));
            }
        }

        // Panel 2: line size. Longer lines cost more per miss but
        // produce fewer misses, so simulation gets faster overall.
        for (std::uint64_t kb : kPanelSizesKb) {
            for (unsigned line : kLines) {
                RunSpec spec = baseSpec(kb * 1024, scale);
                spec.tw.cache = CacheConfig::icache(
                    kb * 1024, line, 1, Indexing::Virtual);
                units.push_back(unitOf(
                    csprintf("line/%lluK/%u",
                             (unsigned long long)kb, line),
                    spec, TrialPlan::one(7, true)));
            }
        }

        // Panel 3: set sampling at small cache sizes (larger caches
        // are fast enough not to need sampling — Section 4.1).
        for (std::uint64_t kb : kSampleSizesKb) {
            for (unsigned denom : kDenoms) {
                RunSpec spec = baseSpec(kb * 1024, scale);
                spec.tw.sampleNum = 1;
                spec.tw.sampleDenom = denom;
                units.push_back(unitOf(
                    csprintf("samp/%lluK/%u",
                             (unsigned long long)kb, denom),
                    spec, TrialPlan::one(7, true)));
            }
        }
        return units;
    };
    def.present = [](ExperimentContext &ctx) {
        auto slowdown = [&](const std::string &id) {
            return fmtF(ctx.outcome(id).slowdown, 2);
        };

        {
            TextTable t({"size", "1-way", "2-way", "4-way"});
            for (std::uint64_t kb : kPanelSizesKb) {
                std::vector<std::string> row{
                    csprintf("%lluK", (unsigned long long)kb)};
                for (unsigned assoc : kAssocs) {
                    row.push_back(slowdown(
                        csprintf("assoc/%lluK/%u",
                                 (unsigned long long)kb, assoc)));
                }
                t.addRow(row);
            }
            ctx.print("slowdown vs associativity:\n%s\n",
                      t.render().c_str());
        }

        {
            TextTable t({"size", "16B", "32B", "64B"});
            for (std::uint64_t kb : kPanelSizesKb) {
                std::vector<std::string> row{
                    csprintf("%lluK", (unsigned long long)kb)};
                for (unsigned line : kLines) {
                    row.push_back(slowdown(
                        csprintf("line/%lluK/%u",
                                 (unsigned long long)kb, line)));
                }
                t.addRow(row);
            }
            ctx.print("slowdown vs line size:\n%s\n",
                      t.render().c_str());
        }

        {
            TextTable t({"size", "1/1", "1/2", "1/4", "1/8", "1/16"});
            for (std::uint64_t kb : kSampleSizesKb) {
                std::vector<std::string> row{
                    csprintf("%lluK", (unsigned long long)kb)};
                for (unsigned denom : kDenoms) {
                    row.push_back(slowdown(
                        csprintf("samp/%lluK/%u",
                                 (unsigned long long)kb, denom)));
                }
                t.addRow(row);
            }
            ctx.print("slowdown vs sampling degree:\n%s\n",
                      t.render().c_str());
            ctx.print("Shape target: slowdowns fall roughly in "
                      "proportion to the sampled fraction.\n");
        }
    };
    return def;
}

const ExperimentRegistrar reg(make());

} // namespace
