/**
 * @file
 * Table 8 / its figure: measurement variation due to set sampling
 * alone. Page-allocation effects are removed by simulating a
 * virtually-indexed cache, and only the espresso user task is
 * simulated (no kernel or servers). Trials with 1/8 sampling vary;
 * trials without sampling are exactly repeatable.
 */

#include "util.hh"

using namespace twbench;

namespace
{

const unsigned kTrials = 16;
const std::uint64_t kSizesKb[] = {1, 2, 4, 8, 16, 32};

ExperimentDef
make()
{
    ExperimentDef def;
    def.name = "table8";
    def.artifact = "Table 8";
    def.description = "variation due to set sampling "
                      "(espresso, virtually-indexed, user only)";
    def.report = "table8_sampling";
    def.scaleDiv = 200;
    def.grid = [](unsigned scale) {
        std::vector<ExperimentUnit> units;
        for (std::uint64_t kb : kSizesKb) {
            RunSpec spec = defaultSpec("espresso", scale);
            spec.sys.scope = SimScope::userOnly();
            spec.tw.cache = CacheConfig::icache(kb * 1024, 16, 1,
                                                Indexing::Virtual);

            RunSpec sampled = spec;
            sampled.tw.sampleNum = 1;
            sampled.tw.sampleDenom = 8;
            units.push_back(unitOf(
                csprintf("sampled/%lluK", (unsigned long long)kb),
                sampled, TrialPlan::derived(kTrials, 0x5a)));
            units.push_back(unitOf(
                csprintf("unsampled/%lluK", (unsigned long long)kb),
                spec, TrialPlan::derived(kTrials, 0x5a)));
        }
        return units;
    };
    def.present = [](ExperimentContext &ctx) {
        double total_misses = 0.0;
        unsigned total_trials = 0;
        TextTable t({"size", "sampled.mean", "sampled.s%",
                     "unsampled.mean", "unsampled.s%"});
        for (std::uint64_t kb : kSizesKb) {
            const auto &sampled_out = ctx.outcomes(
                csprintf("sampled/%lluK", (unsigned long long)kb));
            const auto &unsampled_out = ctx.outcomes(
                csprintf("unsampled/%lluK", (unsigned long long)kb));
            total_misses += totalEstMisses(sampled_out)
                            + totalEstMisses(unsampled_out);
            total_trials += 2 * kTrials;
            Summary ss = missSummary(sampled_out);
            Summary su = missSummary(unsampled_out);

            double to_m = static_cast<double>(ctx.scale()) / 1e6;
            t.addRow({
                csprintf("%lluK", (unsigned long long)kb),
                fmtF(ss.mean * to_m, 3),
                csprintf("%.1f%%", ss.stddevPct()),
                fmtF(su.mean * to_m, 3),
                csprintf("%.1f%%", su.stddevPct()),
            });
        }
        ctx.print("%s\n", t.render().c_str());
        ctx.print("Shape targets: unsampled variance ~0 (error bars "
                  "collapse); sampled estimates center on the "
                  "unsampled truth with visible spread.\n");
        ctx.metric("trials", total_trials);
        ctx.metric("total_est_misses", total_misses);
    };
    return def;
}

const ExperimentRegistrar reg(make());

} // namespace
