/**
 * @file
 * Table 8 / its figure: measurement variation due to set sampling
 * alone. Page-allocation effects are removed by simulating a
 * virtually-indexed cache, and only the espresso user task is
 * simulated (no kernel or servers). Trials with 1/8 sampling vary;
 * trials without sampling are exactly repeatable.
 */

#include "sample/stopping.hh"
#include "util.hh"

using namespace twbench;

namespace
{

const unsigned kTrials = 16;
const std::uint64_t kSizesKb[] = {1, 2, 4, 8, 16, 32};

/** Per-(size, fraction) sampling metrics for the BENCH report:
 *  fraction, estimate, CI half-width over trials, and interval-
 *  sampler refs actually simulated. */
void
sampleMetrics(ExperimentContext &ctx, const char *kind,
              std::uint64_t kb, double fraction,
              const std::vector<RunOutcome> &outs)
{
    RunningStat rs;
    double refs_sim = 0.0;
    for (const auto &o : outs) {
        rs.push(o.estMisses);
        refs_sim += static_cast<double>(o.sample.refsSimulated);
    }
    std::string stem = csprintf("%s_%lluK", kind,
                                (unsigned long long)kb);
    ctx.metric(stem + "_fraction", fraction);
    ctx.metric(stem + "_estimate", rs.mean());
    ctx.metric(stem + "_ci_half", tHalfWidth(rs, 0.95));
    ctx.metric(stem + "_refs_simulated", refs_sim);
    ctx.metric(stem + "_trials", static_cast<double>(outs.size()));
}

ExperimentDef
make()
{
    ExperimentDef def;
    def.name = "table8";
    def.artifact = "Table 8";
    def.description = "variation due to set sampling "
                      "(espresso, virtually-indexed, user only)";
    def.report = "table8_sampling";
    def.scaleDiv = 200;
    def.grid = [](unsigned scale) {
        std::vector<ExperimentUnit> units;
        for (std::uint64_t kb : kSizesKb) {
            RunSpec spec = defaultSpec("espresso", scale);
            spec.sys.scope = SimScope::userOnly();
            spec.tw.cache = CacheConfig::icache(kb * 1024, 16, 1,
                                                Indexing::Virtual);

            // TW_SAMPLE composes: interval sampling replicates the
            // per-trial set sample, so both columns keep their
            // meaning. TW_CI_TARGET turns the fixed 16-trial plan
            // into an up-to-16 adaptive one.
            applySampleEnv(spec);
            RunSpec sampled = spec;
            sampled.tw.sampleNum = 1;
            sampled.tw.sampleDenom = 8;
            units.push_back(unitOf(
                csprintf("sampled/%lluK", (unsigned long long)kb),
                sampled, variationPlan(kTrials, 0x5a)));
            units.push_back(unitOf(
                csprintf("unsampled/%lluK", (unsigned long long)kb),
                spec, variationPlan(kTrials, 0x5a)));
        }
        return units;
    };
    def.present = [](ExperimentContext &ctx) {
        double total_misses = 0.0;
        unsigned total_trials = 0;
        TextTable t({"size", "sampled.mean", "sampled.s%",
                     "unsampled.mean", "unsampled.s%"});
        for (std::uint64_t kb : kSizesKb) {
            const auto &sampled_out = ctx.outcomes(
                csprintf("sampled/%lluK", (unsigned long long)kb));
            const auto &unsampled_out = ctx.outcomes(
                csprintf("unsampled/%lluK", (unsigned long long)kb));
            total_misses += totalEstMisses(sampled_out)
                            + totalEstMisses(unsampled_out);
            total_trials += sampled_out.size()
                            + unsampled_out.size();
            sampleMetrics(ctx, "sampled", kb, 1.0 / 8.0,
                          sampled_out);
            sampleMetrics(ctx, "unsampled", kb, 1.0,
                          unsampled_out);
            Summary ss = missSummary(sampled_out);
            Summary su = missSummary(unsampled_out);

            double to_m = static_cast<double>(ctx.scale()) / 1e6;
            t.addRow({
                csprintf("%lluK", (unsigned long long)kb),
                fmtF(ss.mean * to_m, 3),
                csprintf("%.1f%%", ss.stddevPct()),
                fmtF(su.mean * to_m, 3),
                csprintf("%.1f%%", su.stddevPct()),
            });
        }
        ctx.print("%s\n", t.render().c_str());
        ctx.print("Shape targets: unsampled variance ~0 (error bars "
                  "collapse); sampled estimates center on the "
                  "unsampled truth with visible spread.\n");
        ctx.metric("trials", total_trials);
        ctx.metric("total_est_misses", total_misses);
    };
    return def;
}

const ExperimentRegistrar reg(make());

} // namespace
