/**
 * @file
 * Regenerates Table 11: Tapeworm code distribution. The paper's
 * portability claim is structural — only ~5% of the code is
 * machine-dependent. This experiment counts the lines of this
 * repository live and classifies them the same way:
 *
 *  - machine-dependent "kernel" code: the layer that touches real
 *    host trap primitives (src/utrap: mprotect/SIGSEGV) and the
 *    host trap-bit/ECC modelling (src/machine);
 *  - machine-independent kernel code: the simulator that lives in
 *    the (simulated) kernel — core Tapeworm + OS cooperation;
 *  - machine-independent user code: everything else (models,
 *    workloads, traces, harness).
 */

#include <cstdio>
#include <dirent.h>
#include <string>
#include <vector>

#include "util.hh"

using namespace twbench;

namespace
{

long
countLines(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        return 0;
    long lines = 0;
    int c;
    while ((c = std::fgetc(f)) != EOF) {
        if (c == '\n')
            ++lines;
    }
    std::fclose(f);
    return lines;
}

long
countDir(const std::string &dir)
{
    DIR *d = opendir(dir.c_str());
    if (!d)
        return 0;
    long total = 0;
    while (dirent *entry = readdir(d)) {
        std::string name = entry->d_name;
        if (name.size() > 3
            && (name.ends_with(".cc") || name.ends_with(".hh"))) {
            total += countLines(dir + "/" + name);
        }
    }
    closedir(d);
    return total;
}

std::string
srcRoot()
{
    // Run from anywhere inside the build tree: walk up looking for
    // the src directory.
    std::string prefix;
    for (int depth = 0; depth < 6; ++depth) {
        std::string candidate = prefix + "src/core";
        DIR *d = opendir(candidate.c_str());
        if (d) {
            closedir(d);
            return prefix + "src";
        }
        prefix += "../";
    }
    return "src";
}

ExperimentDef
make()
{
    ExperimentDef def;
    def.name = "table11";
    def.artifact = "Table 11";
    def.description = "code distribution (counted live)";
    def.report = "table11_code";
    def.scaleDiv = 200;
    def.banner = false; // prints its own header line
    def.grid = [](unsigned) {
        return std::vector<ExperimentUnit>{};
    };
    def.present = [](ExperimentContext &ctx) {
        std::string root = srcRoot();
        long machine_dep = countDir(root + "/utrap")
                           + countDir(root + "/machine");
        long kernel_indep = countDir(root + "/core")
                            + countDir(root + "/os");
        long user_indep = countDir(root + "/base")
                          + countDir(root + "/mem")
                          + countDir(root + "/workload")
                          + countDir(root + "/trace")
                          + countDir(root + "/harness");
        long total = machine_dep + kernel_indep + user_indep;
        if (total == 0) {
            ctx.print("Table 11: source tree not found from cwd; run "
                      "from the build or repo directory.\n");
            return;
        }

        ctx.print("Table 11 — code distribution (this repository, "
                  "counted live; paper: 343/889/5652 = "
                  "5%%/13%%/82%%)\n");
        TextTable t({"code", "lines", "%"});
        auto pct = [&](long n) {
            return csprintf("%.0f%%",
                            100.0 * static_cast<double>(n)
                                / static_cast<double>(total));
        };
        t.addRow({"host-trap-primitive code (utrap + machine)",
                  csprintf("%ld", machine_dep), pct(machine_dep)});
        t.addRow({"kernel-resident simulator (core + os)",
                  csprintf("%ld", kernel_indep), pct(kernel_indep)});
        t.addRow({"machine-independent user code",
                  csprintf("%ld", user_indep), pct(user_indep)});
        t.addRule();
        t.addRow({"total", csprintf("%ld", total), "100%"});
        ctx.print("%s\n", t.render().c_str());
        ctx.print("Shape target: the code touching host trap "
                  "primitives is a small minority — the porting "
                  "surface (tw_set_trap/tw_clear_trap) is tiny.\n");
    };
    return def;
}

const ExperimentRegistrar reg(make());

} // namespace
