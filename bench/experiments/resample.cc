/**
 * @file
 * The cost of obtaining multiple set samples (Section 3.2):
 * "different samples can be obtained simply by changing the pattern
 * of traps on registered Tapeworm pages. With trace-driven
 * simulation, the full trace must be re-processed to obtain a new
 * set sample."
 *
 * Four different 1/8 samples of the same cache are collected with
 * each technique; the table reports the instrumentation overhead
 * each sample cost. Tapeworm pays only for the sample's own misses;
 * the trace-driven simulator touches every address every time (the
 * software filter still costs cycles per rejected address, plus
 * regeneration of the trace).
 */

#include "util.hh"

using namespace twbench;

namespace
{

ExperimentDef
make()
{
    ExperimentDef def;
    def.name = "resample";
    def.artifact = "Section 3.2";
    def.description = "cost of collecting four different set "
                      "samples (mpeg_play, 4KB, 1/8)";
    def.report = "resample";
    def.scaleDiv = 400;
    def.grid = [](unsigned scale) {
        std::vector<ExperimentUnit> units;
        CacheConfig cache =
            CacheConfig::icache(4096, 16, 1, Indexing::Virtual);
        for (unsigned sample = 1; sample <= 4; ++sample) {
            RunSpec spec = defaultSpec("mpeg_play", scale);
            spec.sys.scope = SimScope::userOnly();
            spec.tw.cache = cache;
            spec.tw.sampleNum = 1;
            spec.tw.sampleDenom = 8;
            spec.tw.sampleSeed = 1000 + sample;
            units.push_back(unitOf(csprintf("tw/%u", sample), spec,
                                   TrialPlan::one(7, true)));

            RunSpec ts = spec;
            ts.sim = SimKind::TraceDriven;
            ts.c2k.cache = cache;
            ts.c2k.sampleNum = 1;
            ts.c2k.sampleDenom = 8;
            ts.c2k.sampleSeed = 1000 + sample;
            units.push_back(unitOf(csprintf("c2k/%u", sample), ts,
                                   TrialPlan::one(7, true)));
        }
        return units;
    };
    def.present = [](ExperimentContext &ctx) {
        TextTable t({"sample", "tw.misses", "tw.slowdown",
                     "c2k.misses", "c2k.slowdown"});
        double tw_total = 0, c2k_total = 0;
        for (unsigned sample = 1; sample <= 4; ++sample) {
            const RunOutcome &trap =
                ctx.outcome(csprintf("tw/%u", sample));
            const RunOutcome &trace =
                ctx.outcome(csprintf("c2k/%u", sample));
            tw_total += trap.slowdown;
            c2k_total += trace.slowdown;
            t.addRow({
                csprintf("#%u", sample),
                fmtF(trap.rawMisses, 0),
                fmtF(trap.slowdown, 2),
                fmtF(trace.rawMisses, 0),
                fmtF(trace.slowdown, 2),
            });
        }
        t.addRule();
        t.addRow({"total", "", fmtF(tw_total, 2), "",
                  fmtF(c2k_total, 2)});
        ctx.print("%s\n", t.render().c_str());
        ctx.print("Shape targets: each Tapeworm sample costs ~1/8 of "
                  "an unsampled run (~0.4x here); each trace-driven "
                  "sample costs nearly a full trace pass (the filter "
                  "touches every address), so collecting all four "
                  "samples is ~%0.0fx cheaper trap-driven.\n",
                  c2k_total / (tw_total > 0 ? tw_total : 1));
    };
    return def;
}

const ExperimentRegistrar reg(make());

} // namespace
