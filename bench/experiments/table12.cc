/**
 * @file
 * Regenerates Table 12: privileged operations useful for
 * trap-driven simulation across 1994-era microprocessors (the
 * paper's portability survey), and then probes the *current host*
 * for the modern equivalents of Table 2's primitives — which is
 * exactly the checklist one would run before porting Tapeworm.
 */

#include <csignal>
#include <cstdio>
#include <cstring>
#include <vector>

#include <sys/mman.h>
#include <unistd.h>

#include "util.hh"

#include "utrap/utrap.hh"

using namespace twbench;

namespace
{

/** The published matrix. Rows: operation; columns: processors. */
const char *kProcessors[] = {"R3000", "R4000", "SPARC", "Alpha",
                             "Tera",  "i486",  "Pentium", "29050",
                             "PA-RISC", "PowerPC"};

struct OpRow
{
    const char *op;
    const char *avail[10]; // Yes / No / "-" (unknown)
};

const OpRow kMatrix[] = {
    {"Memory Parity or ECC Traps",
     {"Yes", "Yes", "Yes", "Yes", "Yes", "-", "Yes", "-", "-", "-"}},
    {"Instruction Breakpoint",
     {"Yes", "Yes", "Yes", "Yes", "Yes", "Yes", "Yes", "Yes", "Yes",
      "Yes"}},
    {"Data Breakpoint",
     {"No", "No", "No", "No", "Yes", "No", "No", "No", "No", "No"}},
    {"Invalid Page Traps",
     {"Yes", "Yes", "Yes", "Yes", "Yes", "Yes", "Yes", "Yes", "Yes",
      "Yes"}},
    {"Variable Page Size",
     {"No", "Yes", "No", "Yes", "-", "No", "Yes", "Yes", "Yes",
      "Yes"}},
    {"Instruction Counters",
     {"No", "No", "No", "Yes", "-", "No", "Yes", "No", "-", "No"}},
};

bool
probeMprotectTrap()
{
    // Full round trip through the utrap engine: protect, fault,
    // recover, count.
    UserTapeworm engine(UtrapConfig{4, 0, UtrapPolicy::Fifo, 1});
    auto *buf =
        static_cast<volatile char *>(engine.registerBuffer(4096));
    buf[0] = 1;
    return engine.stats().misses == 1;
}

ExperimentDef
make()
{
    ExperimentDef def;
    def.name = "table12";
    def.artifact = "Table 12";
    def.description = "privileged operations survey + host probe";
    def.report = "table12_primitives";
    def.scaleDiv = 200;
    def.banner = false; // prints its own header line
    def.grid = [](unsigned) {
        return std::vector<ExperimentUnit>{};
    };
    def.present = [](ExperimentContext &ctx) {
        ctx.print("Table 12 — privileged operations on 1994 "
                  "microprocessors (as published)\n");
        std::vector<std::string> headers{"operation"};
        for (const char *p : kProcessors)
            headers.push_back(p);
        TextTable t(headers);
        for (const auto &row : kMatrix) {
            std::vector<std::string> cells{row.op};
            for (const char *a : row.avail)
                cells.push_back(a);
            t.addRow(cells);
        }
        ctx.print("%s\n", t.render().c_str());

        ctx.print("Host probe — Table 2 primitives available to a "
                  "userspace Tapeworm on this machine:\n");
        TextTable host({"primitive", "mechanism", "available"});
        long page = sysconf(_SC_PAGESIZE);
        host.addRow({"Invalid Page Traps", "mprotect(2) + SIGSEGV",
                     probeMprotectTrap() ? "Yes" : "No"});
        host.addRow({"Variable Page Size",
                     csprintf("base page %ld bytes", page),
                     page > 0 ? "Yes" : "No"});
        host.addRow({"Memory Parity/ECC Traps",
                     "privileged (kernel/EDAC only)",
                     "No (userspace)"});
        host.addRow({"Data Breakpoint", "ptrace debug registers",
                     "No (self-tracing)"});
        host.addRow({"Instruction Counters", "perf_event_open(2)",
                     "Kernel-dependent"});
        ctx.print("%s\n", host.render().c_str());
        ctx.print("Conclusion (Section 4.3): invalid-page traps are "
                  "the universally available primitive, which is why "
                  "the live demo (utrap) simulates TLBs at page "
                  "granularity.\n");
    };
    return def;
}

const ExperimentRegistrar reg(make());

} // namespace
