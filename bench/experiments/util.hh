/**
 * @file
 * Shared helpers for the experiment registrations — the spec
 * builders and paper-scale conversions the old per-binary bench
 * glue carried in bench/common.hh, now serving ExperimentDef grid()
 * and present() functions instead of main() bodies.
 */

#ifndef TW_BENCH_EXPERIMENTS_UTIL_HH
#define TW_BENCH_EXPERIMENTS_UTIL_HH

#include <cstdlib>
#include <string>
#include <vector>

#include "base/logging.hh"
#include "base/table.hh"
#include "harness/experiment.hh"
#include "harness/runner.hh"
#include "harness/trials.hh"
#include "sample/config.hh"
#include "workload/spec.hh"

namespace twbench
{

using namespace tw;

/** Host-side simulation rate of one run: simulated references
 *  (instructions + data refs) retired per real second. */
inline double
refsPerSec(const RunOutcome &o)
{
    if (o.hostSeconds <= 0.0)
        return 0.0;
    return static_cast<double>(o.run.totalInstr() + o.run.dataRefs)
           / o.hostSeconds;
}

/** Total estimated misses across a set of outcomes (a JSON metric
 *  shared by the trial experiments). */
inline double
totalEstMisses(const std::vector<RunOutcome> &outcomes)
{
    double sum = 0.0;
    for (const auto &o : outcomes)
        sum += o.estMisses;
    return sum;
}

/** Scale misses measured at 1/scale workload size back to the
 *  paper's full-size runs, in millions. */
inline double
paperMillions(double misses, unsigned scale_div)
{
    return misses * static_cast<double>(scale_div) / 1.0e6;
}

/**
 * TW_COST_BACKEND (set by `bench_driver --cost-backend`): the
 * miss-cost backend every grid spec uses, NAME[:k=v,...]. Unset or
 * empty keeps the table5 default (and the default spec bytes).
 * Fatal on a malformed value — a typo must not silently run the
 * default backend.
 */
inline CostBackendConfig
costBackendFromEnv()
{
    CostBackendConfig cfg;
    if (const char *env = std::getenv("TW_COST_BACKEND")) {
        std::string err;
        if (*env && !parseCostBackendSpec(env, cfg, err))
            fatal("TW_COST_BACKEND: %s", err.c_str());
    }
    return cfg;
}

/** Default experiment spec: Tapeworm, all activity, 4 KB DM cache.
 *  TW_COST_BACKEND applies here, so every registered experiment can
 *  re-run under a different pricing model. */
inline RunSpec
defaultSpec(const std::string &workload, unsigned scale_div)
{
    RunSpec spec;
    spec.workload = makeWorkload(workload, scale_div);
    spec.sys.scope = SimScope::all();
    spec.sim = SimKind::Tapeworm;
    spec.tw.cache = CacheConfig::icache(4096);
    spec.tw.costBackend = costBackendFromEnv();
    spec.tlb.costBackend = spec.tw.costBackend;
    return spec;
}

/**
 * Apply the TW_SAMPLE / TW_SAMPLE_* environment (set by
 * `bench_driver --sample`) to one grid spec, plus TW_NO_DMA — the
 * comparison protocol that runs both the sampled and the full side
 * without DMA frame recycling (an OS perturbation the stream-driven
 * estimator deliberately does not model). Call only on units whose
 * geometry can be eligible (Tapeworm, direct-mapped, virtual); a
 * spec that ends up ineligible anyway just falls back to the full
 * run (engine.sample.fallbacks counts it).
 */
inline void
applySampleEnv(RunSpec &spec)
{
    spec.sample = sampleConfigFromEnv();
    if (envNoDma())
        spec.sys.dmaFlushPeriod = 0;
}

/**
 * TW_CI_TARGET (set by `bench_driver --ci-target`): an adaptive
 * trial-stopping rule at that relative CI half-width; disabled when
 * unset or non-positive.
 */
inline StopRule
stopRuleFromEnv()
{
    StopRule rule;
    if (const char *env = std::getenv("TW_CI_TARGET")) {
        double target = std::atof(env);
        if (target > 0.0) {
            rule.enabled = true;
            rule.ciRelTarget = target;
        }
    }
    return rule;
}

/** The trial plan a variation sweep uses: the fixed @p n-trial plan,
 *  or up to @p n trials stopping at TW_CI_TARGET when that is set. */
inline TrialPlan
variationPlan(unsigned n, std::uint64_t base,
              bool with_slowdown = false)
{
    StopRule rule = stopRuleFromEnv();
    if (rule.enabled)
        return TrialPlan::adaptive(n, base, rule, with_slowdown);
    return TrialPlan::derived(n, base, with_slowdown);
}

/** Convenience: a one-seed grid unit. */
inline ExperimentUnit
unitOf(std::string id, RunSpec spec, TrialPlan plan)
{
    ExperimentUnit unit;
    unit.id = std::move(id);
    unit.spec = std::move(spec);
    unit.plan = std::move(plan);
    return unit;
}

} // namespace twbench

#endif // TW_BENCH_EXPERIMENTS_UTIL_HH
