/**
 * @file
 * Shared helpers for the experiment registrations — the spec
 * builders and paper-scale conversions the old per-binary bench
 * glue carried in bench/common.hh, now serving ExperimentDef grid()
 * and present() functions instead of main() bodies.
 */

#ifndef TW_BENCH_EXPERIMENTS_UTIL_HH
#define TW_BENCH_EXPERIMENTS_UTIL_HH

#include <string>
#include <vector>

#include "base/logging.hh"
#include "base/table.hh"
#include "harness/experiment.hh"
#include "harness/runner.hh"
#include "harness/trials.hh"
#include "workload/spec.hh"

namespace twbench
{

using namespace tw;

/** Host-side simulation rate of one run: simulated references
 *  (instructions + data refs) retired per real second. */
inline double
refsPerSec(const RunOutcome &o)
{
    if (o.hostSeconds <= 0.0)
        return 0.0;
    return static_cast<double>(o.run.totalInstr() + o.run.dataRefs)
           / o.hostSeconds;
}

/** Total estimated misses across a set of outcomes (a JSON metric
 *  shared by the trial experiments). */
inline double
totalEstMisses(const std::vector<RunOutcome> &outcomes)
{
    double sum = 0.0;
    for (const auto &o : outcomes)
        sum += o.estMisses;
    return sum;
}

/** Scale misses measured at 1/scale workload size back to the
 *  paper's full-size runs, in millions. */
inline double
paperMillions(double misses, unsigned scale_div)
{
    return misses * static_cast<double>(scale_div) / 1.0e6;
}

/** Default experiment spec: Tapeworm, all activity, 4 KB DM cache. */
inline RunSpec
defaultSpec(const std::string &workload, unsigned scale_div)
{
    RunSpec spec;
    spec.workload = makeWorkload(workload, scale_div);
    spec.sys.scope = SimScope::all();
    spec.sim = SimKind::Tapeworm;
    spec.tw.cache = CacheConfig::icache(4096);
    return spec;
}

/** Convenience: a one-seed grid unit. */
inline ExperimentUnit
unitOf(std::string id, RunSpec spec, TrialPlan plan)
{
    ExperimentUnit unit;
    unit.id = std::move(id);
    unit.spec = std::move(spec);
    unit.plan = std::move(plan);
    return unit;
}

} // namespace twbench

#endif // TW_BENCH_EXPERIMENTS_UTIL_HH
