/**
 * @file
 * TLB miss drift in a long-running system (Section 4.2): "we have
 * observed gradual (but substantial) increases in TLB misses due to
 * kernel and server memory fragmentation in a long-running system."
 *
 * A fragmenting kernel-data reference stream (working set spreads
 * over ever more pages as the system ages) drives the TLB-mode
 * Tapeworm; misses per million references climb window by window —
 * a real system effect that a canned trace, recorded once, can
 * never show. The second panel shows that a larger TLB postpones
 * the drift.
 */

#include <memory>

#include "util.hh"

#include "core/tapeworm_tlb.hh"
#include "workload/fragmenting.hh"

using namespace twbench;

namespace
{

/** Run @p windows windows of @p window_refs refs; returns misses
 *  per window. */
std::vector<Counter>
drift(unsigned tlb_entries, unsigned windows, Counter window_refs)
{
    FragmentingParams params;
    params.base = 0x400000;
    params.basePages = 16;
    params.maxPages = 512;
    params.refsPerNewPage = 12000;
    params.seed = 5;

    TapewormTlbConfig cfg;
    cfg.tlb = CacheConfig::tlb(tlb_entries);
    TapewormTlb tlb(cfg);

    Task task(1, "aging-kernel", Component::Kernel,
              std::make_unique<FragmentingStream>(params), 1);
    task.attr.simulate = true;

    std::vector<Counter> misses;
    Counter prev = 0;
    for (unsigned w = 0; w < windows; ++w) {
        for (Counter i = 0; i < window_refs; ++i) {
            Addr va = task.stream->next();
            Vpn vpn = va / kHostPageBytes;
            if (task.pageTable.mappedFrame(vpn) == kNoFrame) {
                Pfn pfn = static_cast<Pfn>(100 + vpn - 0x400);
                task.pageTable.map(vpn, pfn);
                tlb.onPageMapped(task, vpn, pfn, false);
            }
            Addr pa = static_cast<Addr>(task.pageTable.lookup(va))
                          * kHostPageBytes
                      + (va % kHostPageBytes);
            tlb.onRef(task, va, pa, false);
        }
        Counter total = tlb.stats().totalMisses();
        misses.push_back(total - prev);
        prev = total;
    }
    return misses;
}

ExperimentDef
make()
{
    ExperimentDef def;
    def.name = "fragmentation";
    def.artifact = "Section 4.2";
    def.description = "TLB miss drift from memory fragmentation "
                      "in a long-running system";
    def.report = "fragmentation";
    def.scaleDiv = 1;
    def.envScale = false; // synthetic stream, not a scaled workload
    def.grid = [](unsigned) {
        return std::vector<ExperimentUnit>{};
    };
    def.present = [](ExperimentContext &ctx) {
        const unsigned windows = 8;
        const Counter window_refs = 250000;

        TextTable t({"window", "64-entry TLB", "128-entry",
                     "256-entry"});
        auto d64 = drift(64, windows, window_refs);
        auto d128 = drift(128, windows, window_refs);
        auto d256 = drift(256, windows, window_refs);
        for (unsigned w = 0; w < windows; ++w) {
            t.addRow({
                csprintf("%u", w + 1),
                csprintf("%llu", (unsigned long long)d64[w]),
                csprintf("%llu", (unsigned long long)d128[w]),
                csprintf("%llu", (unsigned long long)d256[w]),
            });
        }
        ctx.print("TLB misses per %llu-reference window as the "
                  "kernel's data fragments:\n%s\n",
                  (unsigned long long)window_refs,
                  t.render().c_str());
        ctx.print("Shape targets: misses climb gradually but "
                  "substantially window over window once the live "
                  "page set outgrows TLB reach; bigger TLBs delay the "
                  "onset. A trace captured in window 1 would never "
                  "predict window 8 — the continuous-monitoring "
                  "argument of Section 5.\n");
    };
    return def;
}

const ExperimentRegistrar reg(make());

} // namespace
