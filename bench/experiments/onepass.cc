/**
 * @file
 * Single-pass multi-configuration simulation (Figure 1's caption:
 * "Single-pass simulators, using stack algorithms, also have a more
 * complex structure [Mattson70, Sugumar93, Thompson89]").
 *
 * Three ways to obtain the miss-ratio-versus-size curve of
 * mpeg_play's user task for eight cache sizes:
 *   (a) eight Tapeworm runs (one per size);
 *   (b) eight Cache2000 trace passes;
 *   (c) ONE pass of the Mattson LRU stack simulator.
 * The table reports the simulated overhead of each and the curves
 * they produce — including where they disagree (the stack algorithm
 * is fully-associative LRU; the paper's caches are direct-mapped).
 */

#include <memory>

#include "util.hh"

#include "mem/stack_sim.hh"
#include "workload/loop_nest.hh"

using namespace twbench;

namespace
{

const std::uint64_t kSizes[] = {1024, 2048, 4096, 8192, 16384, 32768};

ExperimentDef
make()
{
    ExperimentDef def;
    def.name = "onepass";
    def.artifact = "Figure 1";
    def.description = "multi-configuration: N runs vs one stack "
                      "pass, mpeg_play user stream";
    def.report = "onepass";
    def.scaleDiv = 400;
    def.grid = [](unsigned scale) {
        std::vector<ExperimentUnit> units;
        for (std::uint64_t size : kSizes) {
            RunSpec spec = defaultSpec("mpeg_play", scale);
            spec.sys.scope = SimScope::userOnly();
            CacheConfig cache =
                CacheConfig::icache(size, 16, 1, Indexing::Virtual);
            spec.tw.cache = cache;
            units.push_back(unitOf(
                csprintf("tw/%llu", (unsigned long long)size), spec,
                TrialPlan::one(7, true)));

            RunSpec ts = spec;
            ts.sim = SimKind::TraceDriven;
            ts.c2k.cache = cache;
            units.push_back(unitOf(
                csprintf("c2k/%llu", (unsigned long long)size), ts,
                TrialPlan::one(7, true)));
        }
        return units;
    };
    def.present = [](ExperimentContext &ctx) {
        // (a)+(b): per-size runs through the harness.
        double trap_overhead = 0, trace_overhead = 0;
        std::vector<double> trap_curve, trace_curve;
        for (std::uint64_t size : kSizes) {
            const RunOutcome &trap = ctx.outcome(
                csprintf("tw/%llu", (unsigned long long)size));
            trap_overhead += trap.slowdown;
            trap_curve.push_back(trap.missRatioUser());

            const RunOutcome &trace = ctx.outcome(
                csprintf("c2k/%llu", (unsigned long long)size));
            trace_overhead += trace.slowdown;
            trace_curve.push_back(trace.missRatioUser());
        }

        // (c): one pass over the same user stream through the stack
        // simulator (all sizes at once).
        WorkloadSpec wl = makeWorkload("mpeg_play", ctx.scale());
        LoopNestStream stream(wl.binaries[0]);
        StackSim stack(16);
        Counter refs = wl.userInstr();
        for (Counter i = 0; i < refs; ++i)
            stack.access(stream.next());

        TextTable t({"size", "tapeworm m", "cache2000 m",
                     "stack (FA-LRU) m"});
        for (std::size_t i = 0; i < std::size(kSizes); ++i) {
            double stack_m =
                static_cast<double>(stack.missesForSize(kSizes[i]))
                / static_cast<double>(refs);
            t.addRow({
                csprintf("%lluK",
                         (unsigned long long)(kSizes[i] / 1024)),
                fmtF(trap_curve[i], 4),
                fmtF(trace_curve[i], 4),
                fmtF(stack_m, 4),
            });
        }
        ctx.print("%s\n", t.render().c_str());

        TextTable cost({"technique", "total slowdown for 6 sizes"});
        cost.addRow({"6 x Tapeworm runs", fmtF(trap_overhead, 1)});
        cost.addRow({"6 x Cache2000 passes", fmtF(trace_overhead, 1)});
        cost.addRow({"1 x Mattson stack pass",
                     "one trace pass (+ stack maintenance)"});
        ctx.print("%s\n", cost.render().c_str());
        ctx.print(
            "Reading the tables: the stack pass gets the whole curve\n"
            "in one sweep but is locked to fully-associative LRU — its\n"
            "column diverges at 2-8K where LRU thrashes on loops\n"
            "slightly larger than the cache (a real FA-LRU artifact the\n"
            "direct-mapped simulators do not share), and it can never\n"
            "express physical indexing, multi-task tags or OS effects.\n"
            "Tapeworm's total for all six runs is still below ONE\n"
            "Cache2000 pass.\n");
    };
    return def;
}

const ExperimentRegistrar reg(make());

} // namespace
