/**
 * @file
 * Figure 2: Tapeworm versus Pixie+Cache2000 slowdowns for mpeg_play
 * over direct-mapped I-cache sizes 1 KB - 1 MB with 4-word lines.
 * Tapeworm attributes exclude the X/BSD servers and kernel (user
 * task only), but slowdowns are relative to the total run time
 * including them — exactly the paper's setup.
 */

#include <cstdlib>

#include "base/simd.hh"
#include "util.hh"

using namespace twbench;

namespace
{

struct PaperRow
{
    unsigned kb;
    double missRatio, c2000, tapeworm;
};

// Figure 2's embedded table.
const PaperRow kPaper[] = {
    {1, 0.118, 30.2, 6.27},   {2, 0.097, 28.8, 5.16},
    {4, 0.064, 27.0, 3.84},   {8, 0.023, 24.2, 1.20},
    {16, 0.017, 23.5, 0.87},  {32, 0.002, 22.4, 0.11},
    {64, 0.002, 22.3, 0.10},  {128, 0.000, 22.0, 0.01},
    {256, 0.000, 22.1, 0.00}, {512, 0.000, 22.1, 0.00},
    {1024, 0.000, 22.3, 0.00},
};

/** TW_FIG2_ONLY_KB restricts the sweep to one cache size
 *  (perf-smoke mode; the default full sweep is unchanged). */
unsigned
onlyKb()
{
    if (const char *only = std::getenv("TW_FIG2_ONLY_KB"))
        return static_cast<unsigned>(std::atoi(only));
    return 0;
}

/** TW_FIG2_DCACHE=1 adds a unified-kind Tapeworm row per size. An
 *  I-cache run exercises the probe-free chunked inner loop; a
 *  unified cache delivers loads/stores too and so runs the filtered
 *  per-reference loop — the perf smoke measures both engines. */
bool
wantDcache()
{
    const char *env = std::getenv("TW_FIG2_DCACHE");
    return env && *env && *env != '0';
}

ExperimentDef
make()
{
    ExperimentDef def;
    def.name = "fig2";
    def.artifact = "Figure 2";
    def.description = "trace-driven vs trap-driven slowdowns, "
                      "mpeg_play I-cache";
    def.report = "fig2_slowdowns";
    def.scaleDiv = 200;
    def.grid = [](unsigned scale) {
        std::vector<ExperimentUnit> units;
        unsigned only_kb = onlyKb();
        for (const auto &paper : kPaper) {
            if (only_kb != 0 && paper.kb != only_kb)
                continue;
            RunSpec spec = defaultSpec("mpeg_play", scale);
            spec.sys.scope = SimScope::userOnly();
            CacheConfig cache = CacheConfig::icache(
                paper.kb * 1024ull, 16, 1, Indexing::Virtual);

            spec.sim = SimKind::Tapeworm;
            spec.tw.cache = cache;
            RunSpec tw = spec;
            applySampleEnv(tw);
            // Sampled estimates carry no slowdown (no instrumented
            // machine runs), so skip the baseline pairing then.
            units.push_back(unitOf(
                csprintf("tw/%uK", paper.kb), tw,
                TrialPlan::one(7, !tw.sample.enabled)));

            if (wantDcache()) {
                RunSpec uni = spec;
                uni.tw.kind = SimCacheKind::Unified;
                units.push_back(unitOf(csprintf("twd/%uK", paper.kb),
                                       uni, TrialPlan::one(7, true)));
            }

            spec.sim = SimKind::TraceDriven;
            spec.c2k.cache = cache;
            units.push_back(unitOf(csprintf("c2k/%uK", paper.kb),
                                   spec, TrialPlan::one(7, true)));
        }
        return units;
    };
    def.present = [](ExperimentContext &ctx) {
        unsigned only_kb = onlyKb();
        double tw_refs = 0.0, tw_secs = 0.0;
        double twd_refs = 0.0, twd_secs = 0.0;
        double sample_refs_sim = 0.0, sample_refs_total = 0.0;
        double sample_ci = 0.0;
        TextTable t({"size", "missRatio", "c2000.slow", "tw.slow",
                     "paper.miss", "paper.c2000", "paper.tw"});
        for (const auto &paper : kPaper) {
            if (only_kb != 0 && paper.kb != only_kb)
                continue;
            const RunOutcome &trap =
                ctx.outcome(csprintf("tw/%uK", paper.kb));
            const RunOutcome &trace =
                ctx.outcome(csprintf("c2k/%uK", paper.kb));

            // A sampled run's simulated-work figure is the refs it
            // actually replayed, not the budget it estimated for.
            tw_refs += trap.sample.used
                           ? static_cast<double>(
                                 trap.sample.refsSimulated)
                           : static_cast<double>(
                                 trap.run.totalInstr()
                                 + trap.run.dataRefs);
            tw_secs += trap.hostSeconds;
            if (trap.sample.used) {
                sample_refs_sim += static_cast<double>(
                    trap.sample.refsSimulated);
                sample_refs_total += static_cast<double>(
                    trap.sample.refsTotal);
                sample_ci += trap.sample.ciHalfWidth;
            }
            if (ctx.reportRequested()) {
                ctx.metric(csprintf("tw_refs_per_sec_%uK", paper.kb),
                           refsPerSec(trap));
            }
            if (wantDcache()) {
                const RunOutcome &uni =
                    ctx.outcome(csprintf("twd/%uK", paper.kb));
                twd_refs += static_cast<double>(uni.run.totalInstr()
                                                + uni.run.dataRefs);
                twd_secs += uni.hostSeconds;
            }

            t.addRow({
                csprintf("%uK", paper.kb),
                fmtF(trap.missRatioUser(), 3),
                fmtF(trace.slowdown, 1),
                fmtF(trap.slowdown, 2),
                fmtF(paper.missRatio, 3),
                fmtF(paper.c2000, 1),
                fmtF(paper.tapeworm, 2),
            });
        }
        ctx.print("%s\n", t.render().c_str());
        ctx.print("Shape targets: Tapeworm slowdown tracks the miss "
                  "ratio toward zero; Cache2000 floor ~22x; Tapeworm "
                  "wins ~3x even at the 1K cache.\n");
        if (ctx.reportRequested()) {
            double rate = tw_secs > 0.0 ? tw_refs / tw_secs : 0.0;
            ctx.print("[report] tapeworm host rate: %.3fM refs/s "
                      "(%.0f refs in %.3fs host)\n", rate / 1.0e6,
                      tw_refs, tw_secs);
            ctx.metric("tw_refs_per_sec", rate);
            ctx.metric("tw_host_seconds", tw_secs);
            if (wantDcache()) {
                double drate =
                    twd_secs > 0.0 ? twd_refs / twd_secs : 0.0;
                ctx.print("[report] tapeworm unified (filtered loop) "
                          "host rate: %.3fM refs/s\n", drate / 1.0e6);
                ctx.metric("twd_refs_per_sec", drate);
                ctx.metric("twd_host_seconds", twd_secs);
            }
            ctx.note("simd", simd::levelName(simd::activeLevel()));
        }
        if (sample_refs_total > 0.0) {
            ctx.metric("sample_refs_simulated", sample_refs_sim);
            ctx.metric("sample_refs_total", sample_refs_total);
            ctx.metric("sample_ci_half_total", sample_ci);
        }
    };
    return def;
}

const ExperimentRegistrar reg(make());

} // namespace
