/**
 * @file
 * Split versus unified cache organizations (Section 3.2's "split,
 * unified" claim): one run drives an I-cache Tapeworm and a D-cache
 * Tapeworm simultaneously (each on its own trap plane — the
 * per-location trap bit Section 4.3 proposes as intentional
 * hardware support); a second run simulates one unified cache of
 * the combined size. Sweeping the size budget shows the classic
 * trade: the unified cache adapts its I/D split dynamically, the
 * split pair never suffers cross interference.
 */

#include "util.hh"

#include "core/tapeworm.hh"
#include "harness/mux_client.hh"
#include "os/system.hh"

using namespace twbench;

namespace
{

ExperimentDef
make()
{
    ExperimentDef def;
    def.name = "split";
    def.artifact = "Section 3.2";
    def.description = "split I/D versus unified caches, "
                      "mpeg_play all-activity";
    def.report = "split";
    def.scaleDiv = 200;
    // Drives Tapeworm clients on the System directly (two trap
    // planes at once) — nothing for the spec grid to enumerate.
    def.grid = [](unsigned) {
        return std::vector<ExperimentUnit>{};
    };
    def.present = [](ExperimentContext &ctx) {
        TextTable t({"budget", "split I", "split D", "split total",
                     "unified total"});
        for (std::uint64_t kb : {2, 4, 8, 16, 32}) {
            WorkloadSpec wl = makeWorkload("mpeg_play", ctx.scale());
            SystemConfig cfg;
            cfg.trialSeed = 7;

            // Split: half the budget to each side.
            Counter split_i = 0, split_d = 0;
            {
                System machine(cfg, wl);
                PhysMem iplane(machine.physMem().sizeBytes());
                PhysMem dplane(machine.physMem().sizeBytes());
                TapewormConfig icfg, dcfg;
                icfg.cache = CacheConfig::icache(kb * 512);
                icfg.kind = SimCacheKind::Instruction;
                dcfg.cache = CacheConfig::icache(kb * 512);
                dcfg.cache.name = "dcache";
                dcfg.kind = SimCacheKind::Data;
                Tapeworm icache(iplane, icfg);
                Tapeworm dcache(dplane, dcfg);
                MuxClient mux;
                mux.add(&icache);
                mux.add(&dcache);
                machine.setClient(&mux);
                machine.run();
                split_i = icache.stats().totalMisses();
                split_d = dcache.stats().totalMisses();
            }

            // Unified: the whole budget, one structure.
            Counter unified = 0;
            {
                System machine(cfg, wl);
                TapewormConfig ucfg;
                ucfg.cache = CacheConfig::icache(kb * 1024);
                ucfg.cache.name = "unified";
                ucfg.kind = SimCacheKind::Unified;
                Tapeworm ucache(machine.physMem(), ucfg);
                machine.setClient(&ucache);
                machine.run();
                unified = ucache.stats().totalMisses();
            }

            t.addRow({
                csprintf("%lluK", (unsigned long long)kb),
                csprintf("%llu", (unsigned long long)split_i),
                csprintf("%llu", (unsigned long long)split_d),
                csprintf("%llu",
                         (unsigned long long)(split_i + split_d)),
                csprintf("%llu", (unsigned long long)unified),
            });
        }
        ctx.print("%s\n", t.render().c_str());
        ctx.print(
            "Reading the table: under heavy pressure the split pair\n"
            "wins — instruction and data streams cannot evict each\n"
            "other — while the unified cache pays cross-interference\n"
            "on top of capacity misses. As the budget grows the two\n"
            "organizations converge (interference fades before\n"
            "capacity does). Both come from the same tw_replace()\n"
            "machinery — the Section 3.2 flexibility claim.\n");
    };
    return def;
}

const ExperimentRegistrar reg(make());

} // namespace
