/**
 * @file
 * Kessler's conflict-probability model versus measured Table 9
 * variance. Section 4.2: "This observation is consistent with a
 * probabilistic model of cache page conflicts published in
 * [Kessler91]. Kessler's model predicts that with random page
 * allocation, the probability of cache conflicts peaks when the
 * size of the cache roughly equals the address space size of the
 * workload, and decreases for larger and smaller caches."
 *
 * Left columns: the analytic/Monte-Carlo model for an mpeg_play-
 * sized text (32 KB = 8 pages). Right columns: measured
 * physically-indexed trial deviations from this reproduction.
 */

#include "util.hh"

#include "mem/kessler.hh"

using namespace twbench;

namespace
{

const unsigned kTrials = 6;
const std::uint64_t kSizesKb[] = {4, 8, 16, 32, 64, 128};

ExperimentDef
make()
{
    ExperimentDef def;
    def.name = "kessler";
    def.artifact = "Section 4.2";
    def.description = "Kessler page-conflict model vs measured "
                      "page-allocation variance";
    def.report = "kessler";
    def.scaleDiv = 400;
    def.grid = [](unsigned scale) {
        std::vector<ExperimentUnit> units;
        for (std::uint64_t kb : kSizesKb) {
            // Measured: Table 9's physically-indexed mpeg_play runs.
            RunSpec spec;
            spec.workload = makeWorkload("mpeg_play", scale);
            spec.sys.scope = SimScope::userOnly();
            spec.sys.clockJitter = false;
            spec.sim = SimKind::Tapeworm;
            spec.tw.cache = CacheConfig::icache(kb * 1024ull, 16, 1,
                                                Indexing::Physical);
            units.push_back(unitOf(
                csprintf("%lluK", (unsigned long long)kb), spec,
                TrialPlan::derived(kTrials, 0x935e)));
        }
        return units;
    };
    def.present = [](ExperimentContext &ctx) {
        double total_misses = 0.0;
        unsigned total_trials = 0;

        const unsigned text_pages = 8; // mpeg_play's 32 KB text

        TextTable t({"cache", "colors", "E[conflict pages]",
                     "model relSd", "measured s%"});
        for (std::uint64_t kb : kSizesKb) {
            unsigned colors =
                static_cast<unsigned>(kb * 1024 / kHostPageBytes);

            double expect =
                kesslerExpectedConflictPages(text_pages, colors);
            auto mc = kesslerMonteCarlo(text_pages, colors, 20000, 5);

            const auto &outcomes = ctx.outcomes(
                csprintf("%lluK", (unsigned long long)kb));
            total_misses += totalEstMisses(outcomes);
            total_trials += kTrials;
            Summary s = missSummary(outcomes);

            t.addRow({
                csprintf("%lluK", (unsigned long long)kb),
                csprintf("%u", colors),
                fmtF(expect, 2),
                fmtF(mc.relSd, 3),
                csprintf("%.0f%%", s.stddevPct()),
            });
        }
        ctx.print("%s\n", t.render().c_str());
        ctx.print("Shape targets: the model's relative variability "
                  "and the measured trial deviation both peak where "
                  "cache size ~ text size (16-64K for an 8-page "
                  "program) and are zero/low at 4K (one color: every "
                  "placement identical).\n");
        ctx.metric("trials", total_trials);
        ctx.metric("total_est_misses", total_misses);
    };
    return def;
}

const ExperimentRegistrar reg(make());

} // namespace
