/**
 * @file
 * Regenerates the Section 4.1 break-even analysis: "a rough
 * break-even ratio of 4 hits to 1 miss before Tapeworm becomes
 * slower than Cache2000". Sweeps the simulated miss ratio with a
 * tunable synthetic workload and reports both simulators' overhead
 * per reference (the cost-model view) and their measured slowdowns
 * (the whole-system view).
 */

#include "util.hh"

#include "core/cost_model.hh"

using namespace twbench;

namespace
{

const char *const kWorkloads[] = {"xlisp", "mpeg_play"};
const std::uint64_t kSizes[] = {512ull, 1024ull, 4096ull, 16384ull};

ExperimentDef
make()
{
    ExperimentDef def;
    def.name = "breakeven";
    def.artifact = "Section 4.1";
    def.description = "trap-driven vs trace-driven break-even";
    def.report = "breakeven";
    def.scaleDiv = 200;
    def.grid = [](unsigned scale) {
        std::vector<ExperimentUnit> units;
        for (const char *name : kWorkloads) {
            for (std::uint64_t bytes : kSizes) {
                RunSpec spec = defaultSpec(name, scale);
                spec.sys.scope = SimScope::userOnly();
                CacheConfig cache = CacheConfig::icache(
                    bytes, 16, 1, Indexing::Virtual);
                spec.tw.cache = cache;
                units.push_back(unitOf(
                    csprintf("tw/%s/%lluB", name,
                             (unsigned long long)bytes),
                    spec, TrialPlan::one(11, true)));

                RunSpec ts = spec;
                ts.sim = SimKind::TraceDriven;
                ts.c2k.cache = cache;
                units.push_back(unitOf(
                    csprintf("c2k/%s/%lluB", name,
                             (unsigned long long)bytes),
                    ts, TrialPlan::one(11, true)));
            }
        }
        return units;
    };
    def.present = [](ExperimentContext &ctx) {
        // Cost-model view: overhead cycles per reference as a
        // function of miss ratio m. Tapeworm: 246*m.
        // Cache2000+Pixie: per-addr cost regardless of m (~100
        // calibrated; 53-60 in Table 5's accounting).
        TrapCostModel cost;
        double per_miss = static_cast<double>(cost.missCycles(1, 1));
        TextTable model({"miss ratio", "tapeworm cyc/ref",
                         "cache2000 cyc/ref (53-60)",
                         "cache2000 cyc/ref (calibrated 100)"});
        for (double m :
             {0.01, 0.05, 0.10, 0.20, 0.22, 0.25, 0.30, 0.40}) {
            model.addRow({fmtF(m, 2), fmtF(per_miss * m, 1), "53-60",
                          "100"});
        }
        ctx.print("%s", model.render().c_str());
        ctx.print("Table 5 accounting break-even: m = 53..60/246 = "
                  "%.2f..%.2f (the paper's '4 hits to 1 miss').\n\n",
                  53.0 / per_miss, 60.0 / per_miss);

        // Whole-system view: sweep cache size on single-task
        // workloads (Pixie can only trace one task, so multi-task
        // workloads would tilt the comparison) and compare measured
        // slowdowns.
        TextTable sys({"workload", "cache", "missRatio.user",
                       "tw.slow", "c2k.slow", "winner"});
        for (const char *name : kWorkloads) {
            for (std::uint64_t bytes : kSizes) {
                const RunOutcome &trap = ctx.outcome(
                    csprintf("tw/%s/%lluB", name,
                             (unsigned long long)bytes));
                const RunOutcome &trace = ctx.outcome(
                    csprintf("c2k/%s/%lluB", name,
                             (unsigned long long)bytes));
                sys.addRow({
                    name,
                    csprintf("%lluB", (unsigned long long)bytes),
                    fmtF(trap.missRatioUser(), 3),
                    fmtF(trap.slowdown, 2),
                    fmtF(trace.slowdown, 2),
                    trap.slowdown < trace.slowdown ? "tapeworm"
                                                   : "cache2000",
                });
            }
        }
        ctx.print("%s\n", sys.render().c_str());
        ctx.print("Shape target: with the full per-address cost "
                  "(annotation + simulation), the trap-driven "
                  "simulator wins at every realistic miss ratio; only "
                  "pathological (>~40%%) miss ratios favour the "
                  "trace-driven loop.\n");
    };
    return def;
}

const ExperimentRegistrar reg(make());

} // namespace
