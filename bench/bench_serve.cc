/**
 * @file
 * Throughput/latency of the twserved experiment service: sweep
 * requests per second and per-request p50/p99, cold (every trial
 * computed) vs cached (every trial a result-cache hit), at 1, 4 and
 * 16 concurrent clients.
 *
 * The interesting ratio is cached/cold: Section 5's "resident
 * simulator" pitch only holds if re-asking a warm server is orders
 * of magnitude cheaper than recomputing. The 16-client row also
 * exercises the admission path under real socket concurrency.
 *
 * `--report` writes BENCH_serve.json with rps and latency
 * percentiles per configuration, plus the row-write coalescing
 * ratio (rows carried per send() syscall on the row path).
 *
 * `--pooled` benches the sharded pool instead: 1, 2 and 3 workers
 * behind a Router, cold and cached phases through the front door.
 * With `--report` it writes BENCH_serve_shard.json; the headline is
 * cached req/s scaling with worker count (each shard answers from
 * its own cache slice, so hits parallelize across workers). The
 * report records host_cpus alongside the scaling ratios: on a
 * single-core host every pool size shares the same core and the
 * curve is necessarily flat.
 */

#include <algorithm>
#include <memory>
#include <thread>

#include <unistd.h>

#include "common.hh"
#include "serve/client.hh"
#include "serve/server.hh"
#include "serve/shard/router.hh"

using namespace twbench;

namespace
{

constexpr unsigned kSeedsPerRequest = 4;

struct PhaseStats
{
    double rps = 0;
    double p50Ms = 0;
    double p99Ms = 0;
    std::size_t requests = 0;
};

double
percentileMs(std::vector<double> &sorted_us, double pct)
{
    if (sorted_us.empty())
        return 0.0;
    std::size_t idx = static_cast<std::size_t>(
        pct / 100.0 * static_cast<double>(sorted_us.size()));
    idx = std::min(idx, sorted_us.size() - 1);
    return sorted_us[idx] / 1000.0;
}

/**
 * Drive @p clients concurrent connections, each submitting
 * @p reqs_per_client sweeps of kSeedsPerRequest seeds. Seeds are
 * derived from @p seed_base, so calling twice with the same base
 * makes the second pass all cache hits.
 */
PhaseStats
runPhase(const std::string &path, const RunSpec &spec,
         unsigned clients, unsigned reqs_per_client,
         std::uint64_t seed_base, bool expect_cached,
         unsigned seeds_per_request = kSeedsPerRequest)
{
    std::vector<std::vector<double>> latencies(clients);
    std::vector<std::thread> threads;
    auto wall0 = std::chrono::steady_clock::now();
    for (unsigned c = 0; c < clients; ++c) {
        threads.emplace_back([&, c] {
            serve::Client client;
            std::string err;
            if (!client.connectUnix(path, &err))
                fatal("bench_serve: connect: %s", err.c_str());
            for (unsigned r = 0; r < reqs_per_client; ++r) {
                std::vector<std::uint64_t> seeds;
                for (unsigned i = 0; i < seeds_per_request; ++i)
                    seeds.push_back(seed_base + c * 100000
                                    + r * seeds_per_request + i);
                auto t0 = std::chrono::steady_clock::now();
                serve::SweepResult res =
                    client.submitSweep(spec, seeds);
                auto t1 = std::chrono::steady_clock::now();
                if (!res.ok)
                    fatal("bench_serve: submit rejected: %s (%s)",
                          res.errorCode.c_str(),
                          res.errorMsg.c_str());
                if (expect_cached && res.cached != seeds.size())
                    fatal("bench_serve: expected a fully cached "
                          "sweep, got %llu/%zu hits",
                          static_cast<unsigned long long>(
                              res.cached),
                          seeds.size());
                latencies[c].push_back(
                    std::chrono::duration<double, std::micro>(
                        t1 - t0)
                        .count());
            }
        });
    }
    for (auto &t : threads)
        t.join();
    double wall = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - wall0)
                      .count();

    std::vector<double> all;
    for (auto &v : latencies)
        all.insert(all.end(), v.begin(), v.end());
    std::sort(all.begin(), all.end());

    PhaseStats s;
    s.requests = all.size();
    s.rps = wall > 0 ? static_cast<double>(all.size()) / wall : 0;
    s.p50Ms = percentileMs(all, 50.0);
    s.p99Ms = percentileMs(all, 99.0);
    return s;
}

/**
 * The sharded-pool variant: @p pool_size workers behind one Router,
 * phases driven through the front door. Returns {cold, cached}.
 */
std::pair<PhaseStats, PhaseStats>
runPooled(const RunSpec &spec, unsigned pool_size, unsigned clients,
          unsigned reqs_per_client, std::uint64_t seed_base,
          unsigned seeds_per_request)
{
    std::vector<std::unique_ptr<serve::Server>> workers;
    serve::RouterConfig rcfg;
    for (unsigned i = 0; i < pool_size; ++i) {
        serve::ServerConfig cfg;
        cfg.socketPath = csprintf("/tmp/twserved-bench-%d-w%u.sock",
                                  getpid(), i);
        // Fixed per-worker compute: a pool of N models N hosts, so
        // total simulation capacity grows with pool size. Dividing
        // defaultThreads() across the pool would hold capacity
        // constant and hide the scaling we're measuring.
        cfg.workers = 2;
        cfg.queueCapacity = 4096;
        cfg.cacheCapacity = 8192;
        rcfg.shards.push_back(cfg.socketPath);
        workers.push_back(std::make_unique<serve::Server>(cfg));
        std::string err;
        if (!workers.back()->start(&err))
            fatal("bench_serve: worker %u: %s", i, err.c_str());
    }
    rcfg.socketPath =
        csprintf("/tmp/twserved-bench-%d-router.sock", getpid());
    rcfg.healthIntervalMs = 500;
    serve::Router router(rcfg);
    std::string err;
    if (!router.start(&err))
        fatal("bench_serve: router: %s", err.c_str());
    for (int spins = 0;
         router.upShardCount() < pool_size && spins < 500; ++spins)
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    if (router.upShardCount() < pool_size)
        fatal("bench_serve: pool never came up");

    PhaseStats cold =
        runPhase(rcfg.socketPath, spec, clients, reqs_per_client,
                 seed_base, false, seeds_per_request);
    PhaseStats cached =
        runPhase(rcfg.socketPath, spec, clients, reqs_per_client,
                 seed_base, true, seeds_per_request);
    router.stop();
    for (auto &w : workers)
        w->stop();
    return {cold, cached};
}

} // namespace

int
main(int argc, char **argv)
{
    initBench(argc, argv);
    bool report = hasFlag(argc, argv, "--report");
    bool pooled = hasFlag(argc, argv, "--pooled");
    unsigned scale = envScaleDiv(4000);

    if (pooled) {
        banner("twserved pool",
               "sharded service: cold vs cached sweeps through the "
               "router at 1/2/3 workers",
               scale);
        std::unique_ptr<JsonReport> json;
        if (report)
            json = std::make_unique<JsonReport>("serve_shard",
                                                "bench_serve");
        RunSpec spec;
        spec.workload = makeWorkload("espresso", scale);
        spec.sys.scope = SimScope::userOnly();
        spec.sim = SimKind::Tapeworm;
        spec.tw.cache = CacheConfig::icache(2048);

        // Wide sweeps (32 seeds/request) keep per-request work on
        // the owner shards — spec parsing, cache probes, row dumps —
        // large relative to the router's per-row retag, so the pool,
        // not the single front-door thread, sets the ceiling.
        const unsigned clients = 8, reqsPerClient = 4;
        const unsigned seedsPerRequest = 32;
        TextTable t({"workers", "phase", "requests", "req/s",
                     "p50 ms", "p99 ms"});
        std::uint64_t seedBase = 40'000'000;
        double cached1 = 0;
        const unsigned hostCpus =
            std::max(1u, std::thread::hardware_concurrency());
        if (json)
            json->set("host_cpus",
                      static_cast<std::uint64_t>(hostCpus));
        for (unsigned pool : {1u, 2u, 3u}) {
            seedBase += 10'000'000;
            auto [cold, cached] =
                runPooled(spec, pool, clients, reqsPerClient,
                          seedBase, seedsPerRequest);
            for (const auto &[phase, s] :
                 {std::pair<const char *, PhaseStats &>{"cold",
                                                        cold},
                  {"cached", cached}}) {
                t.addRow({csprintf("%u", pool), phase,
                          csprintf("%zu", s.requests),
                          fmtF(s.rps, 1), fmtF(s.p50Ms, 3),
                          fmtF(s.p99Ms, 3)});
                if (json) {
                    std::string prefix =
                        csprintf("%s_w%u_", phase, pool);
                    json->set(prefix + "rps", s.rps);
                    json->set(prefix + "p50_ms", s.p50Ms);
                    json->set(prefix + "p99_ms", s.p99Ms);
                }
            }
            if (pool == 1)
                cached1 = cached.rps;
            else if (json && cached1 > 0)
                json->set(csprintf("cached_scaling_w%u", pool),
                          cached.rps / cached1);
        }
        std::printf("%s\n", t.render().c_str());
        std::printf(
            "Shape targets: cached req/s should grow with worker "
            "count — every shard owns its slice of the key space, "
            "so hits never leave the owning worker's cache. That "
            "needs cores for the pool to spread over: this host "
            "has %u CPU(s), so expect scaling ~%s.\n",
            hostCpus, hostCpus >= 6 ? ">1" : "flat (CPU-bound)");
        return 0;
    }
    banner("twserved", "experiment-service throughput: cold vs "
                       "cached sweeps, 1/4/16 clients", scale);

    std::unique_ptr<JsonReport> json;
    if (report)
        json = std::make_unique<JsonReport>("serve", "bench_serve");

    RunSpec spec;
    spec.workload = makeWorkload("espresso", scale);
    spec.sys.scope = SimScope::userOnly();
    spec.sim = SimKind::Tapeworm;
    spec.tw.cache = CacheConfig::icache(2048);

    serve::ServerConfig cfg;
    cfg.socketPath =
        csprintf("/tmp/twserved-bench-%d.sock", getpid());
    cfg.workers = defaultThreads();
    cfg.queueCapacity = 4096;
    cfg.cacheCapacity = 8192;
    serve::Server server(cfg);
    std::string err;
    if (!server.start(&err))
        fatal("bench_serve: %s", err.c_str());

    const unsigned reqsPerClient = 8;
    TextTable t({"clients", "phase", "requests", "req/s", "p50 ms",
                 "p99 ms"});
    std::uint64_t seedBase = 10'000'000;
    for (unsigned clients : {1u, 4u, 16u}) {
        // Distinct seed space per client count keeps the cold pass
        // genuinely cold; the second pass replays it verbatim.
        seedBase += 10'000'000;
        PhaseStats cold = runPhase(cfg.socketPath, spec, clients,
                                   reqsPerClient, seedBase, false);
        PhaseStats cached = runPhase(cfg.socketPath, spec, clients,
                                     reqsPerClient, seedBase, true);
        for (const auto &[phase, s] :
             {std::pair<const char *, PhaseStats &>{"cold", cold},
              {"cached", cached}}) {
            t.addRow({csprintf("%u", clients), phase,
                      csprintf("%zu", s.requests), fmtF(s.rps, 1),
                      fmtF(s.p50Ms, 3), fmtF(s.p99Ms, 3)});
            if (json) {
                std::string prefix =
                    csprintf("%s_c%u_", phase, clients);
                json->set(prefix + "rps", s.rps);
                json->set(prefix + "p50_ms", s.p50Ms);
                json->set(prefix + "p99_ms", s.p99Ms);
            }
        }
        if (clients == 1 && cold.p50Ms > 0)
            std::printf("[serve] cached/cold p50 speedup at 1 "
                        "client: %.1fx\n",
                        cold.p50Ms
                            / (cached.p50Ms > 0 ? cached.p50Ms
                                                : cold.p50Ms));
    }
    std::printf("%s\n", t.render().c_str());

    // Row-write coalescing: without batching every row is its own
    // send(); with it, cached sweeps ride one flush per batch. The
    // rows-per-flush ratio is the syscall reduction on the row path.
    std::uint64_t flushes = server.metrics().netFlushes.value();
    std::uint64_t streamed = server.metrics().rowsStreamed.value();
    std::uint64_t batched = server.metrics().netBatchedRows.value();
    double rowsPerFlush =
        flushes ? static_cast<double>(streamed)
                      / static_cast<double>(flushes)
                : 0.0;
    std::printf("[serve] row-path writes: %llu rows in %llu "
                "flushes (%.2f rows/syscall; %llu rode a shared "
                "batch)\n",
                static_cast<unsigned long long>(streamed),
                static_cast<unsigned long long>(flushes),
                rowsPerFlush,
                static_cast<unsigned long long>(batched));
    if (json) {
        json->set("net_flushes",
                  static_cast<double>(flushes));
        json->set("net_rows_streamed",
                  static_cast<double>(streamed));
        json->set("net_batched_rows",
                  static_cast<double>(batched));
        json->set("rows_per_flush", rowsPerFlush);
    }

    std::printf("Shape targets: cached sweeps should be far cheaper "
                "than cold ones (no Runner work, just cache lookups "
                "and wire I/O), and req/s should grow with client "
                "count until the worker pool saturates.\n");

    server.stop();
    return 0;
}
