/**
 * @file
 * Regenerates the Section 4.4 flexibility findings as an
 * experiment:
 *
 *  (a) data-cache simulation on a no-allocate-on-write host loses
 *      traps to silent store-clears and undercounts misses — the
 *      reason the authors' D-cache attempts on the DECstation were
 *      hindered, quantified per workload against an
 *      allocate-on-write host (where trap-driven matches the
 *      oracle exactly);
 *  (b) a write buffer can be evaluated by a trace-style simulator
 *      (which sees every store with a clock) but not by the
 *      trap-driven algorithm — shown by sweeping buffer depth with
 *      the oracle-side model.
 */

#include "common.hh"
#include "harness/oracle.hh"
#include "mem/write_buffer.hh"
#include "os/system.hh"

using namespace twbench;

namespace
{

/** Trace-style D-cache client with a write buffer: possible only
 *  because it observes EVERY reference with a clock. */
class DcacheWithWriteBuffer : public OracleClient
{
  public:
    DcacheWithWriteBuffer(const CacheConfig &cache,
                          std::uint64_t num_frames, System *system,
                          const WriteBufferConfig &wb)
        : OracleClient(cache, num_frames, 1, 1, 0,
                       SimCacheKind::Data),
          system_(system), buffer_(wb),
          lineShift_(floorLog2(cache.lineBytes))
    {
    }

    Cycles
    onRef(const Task &task, Addr va, Addr pa, bool intr_masked,
          AccessKind kind = AccessKind::Fetch) override
    {
        Cycles cost =
            OracleClient::onRef(task, va, pa, intr_masked, kind);
        if (kind == AccessKind::Store)
            cost += buffer_.store(pa >> lineShift_, system_->now());
        else if (kind == AccessKind::Load)
            buffer_.loadForward(pa >> lineShift_, system_->now());
        return cost;
    }

    const WriteBuffer &buffer() const { return buffer_; }

  private:
    System *system_;
    WriteBuffer buffer_;
    unsigned lineShift_;
};

} // namespace

int
main()
{
    unsigned scale = envScaleDiv(400);
    banner("Section 4.4", "data-cache write-policy and write-buffer "
                          "flexibility limits", scale);

    // (a) host write policy ablation.
    TextTable t({"workload", "oracle", "trap(alloc-on-write)",
                 "trap(no-allocate)", "undercount"});
    for (const char *name : {"espresso", "mpeg_play", "sdet"}) {
        RunSpec spec;
        spec.workload = makeWorkload(name, scale);
        spec.tw.cache = CacheConfig::icache(8192);
        spec.tw.cache.name = "dcache";
        spec.tw.kind = SimCacheKind::Data;
        spec.tw.chargeCost = false;

        spec.sim = SimKind::Oracle;
        RunOutcome oracle = Runner::runOne(spec, 5);
        spec.sim = SimKind::Tapeworm;
        spec.tw.hostWrite = HostWritePolicy::AllocateOnWrite;
        RunOutcome alloc = Runner::runOne(spec, 5);
        spec.tw.hostWrite = HostWritePolicy::NoAllocateOnWrite;
        RunOutcome noalloc = Runner::runOne(spec, 5);

        t.addRow({
            name,
            fmtF(oracle.estMisses, 0),
            fmtF(alloc.estMisses, 0),
            fmtF(noalloc.estMisses, 0),
            csprintf("-%.0f%%", 100.0
                                    * (alloc.estMisses
                                       - noalloc.estMisses)
                                    / alloc.estMisses),
        });
    }
    std::printf("8KB DM data cache, store traffic 1/3 of data "
                "refs:\n%s\n", t.render().c_str());
    std::printf("Shape targets: allocate-on-write == oracle exactly "
                "(data-cache simulation works, as on the WWT's "
                "SPARC); no-allocate loses a large fraction of "
                "misses — the DECstation finding.\n\n");

    // (b) write-buffer sweep: trace-style only.
    TextTable wb({"depth", "stores", "coalesced", "full stalls",
                  "stall cycles", "forwards"});
    for (unsigned depth : {1u, 2u, 4u, 8u}) {
        WorkloadSpec wl = makeWorkload("mpeg_play", scale);
        SystemConfig cfg;
        cfg.trialSeed = 5;
        System system(cfg, wl);
        WriteBufferConfig wcfg;
        wcfg.depth = depth;
        wcfg.retireCycles = 18; // near the store arrival rate
        DcacheWithWriteBuffer client(CacheConfig::icache(8192),
                                     system.physMem().numFrames(),
                                     &system, wcfg);
        system.setClient(&client);
        system.run();
        const WriteBufferStats &s = client.buffer().stats();
        wb.addRow({
            csprintf("%u", depth),
            csprintf("%llu", (unsigned long long)s.stores),
            csprintf("%llu", (unsigned long long)s.coalesced),
            csprintf("%llu", (unsigned long long)s.fullStalls),
            csprintf("%llu", (unsigned long long)s.stallCycles),
            csprintf("%llu", (unsigned long long)s.loadForwards),
        });
    }
    std::printf("write-buffer evaluation (trace-style simulation "
                "only):\n%s\n", wb.render().c_str());
    std::printf("The trap-driven column for this table does not "
                "exist: stores that hit and buffer drain timing "
                "never raise traps, so Tapeworm cannot observe a "
                "write buffer at all — Section 4.4's structural "
                "flexibility limit.\n");
    return 0;
}
