/**
 * @file
 * Thin legacy shim: each historical bench binary name (bench_fig2_
 * slowdowns, bench_table7_variation, ...) compiles this file with
 * -DTW_WRAP_EXPERIMENT="<name>" and simply runs that registry entry.
 * Scripts and docs that call the old binaries keep working; the
 * experiment itself lives in bench/experiments/.
 *
 * Flag handling matches the old initBench contract — `--threads N`
 * is honoured, everything else is ignored — except that ignored
 * flags now draw a one-time warning pointing at bench_driver, which
 * validates its flags strictly.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "base/logging.hh"
#include "base/thread_pool.hh"
#include "harness/experiment.hh"

#ifndef TW_WRAP_EXPERIMENT
#error "compile with -DTW_WRAP_EXPERIMENT=\"<experiment name>\""
#endif

using namespace tw;

int
main(int argc, char **argv)
{
    bool report = false;
    bool warned = false;
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (std::strcmp(arg, "--threads") == 0 && i + 1 < argc) {
            setDefaultThreads(
                static_cast<unsigned>(std::atoi(argv[++i])));
        } else if (std::strncmp(arg, "--threads=", 10) == 0) {
            setDefaultThreads(
                static_cast<unsigned>(std::atoi(arg + 10)));
        } else if (std::strcmp(arg, "--report") == 0) {
            report = true;
        } else if (!warned) {
            std::fprintf(stderr,
                         "%s: warning: ignoring unknown flag '%s' "
                         "(bench_driver --run %s validates its "
                         "flags)\n",
                         argv[0], arg, TW_WRAP_EXPERIMENT);
            warned = true;
        }
    }

    const ExperimentDef *def =
        ExperimentRegistry::instance().find(TW_WRAP_EXPERIMENT);
    if (!def)
        fatal("%s: experiment '%s' missing from registry", argv[0],
              TW_WRAP_EXPERIMENT);

    MultiSink sinks;
    TablePrinterSink table(stdout);
    sinks.add(&table);

    std::unique_ptr<JsonReportSink> json;
    if (report && !def->report.empty()) {
        std::string tool = argv[0];
        std::size_t slash = tool.find_last_of('/');
        if (slash != std::string::npos)
            tool = tool.substr(slash + 1);
        json = std::make_unique<JsonReportSink>(def->report,
                                                def->name, tool);
        sinks.add(json.get());
    }

    RunExperimentOptions opts;
    opts.report = report;
    runExperiment(*def, sinks, opts);
    return 0;
}
