/**
 * @file
 * Regenerates Table 8 / its figure: measurement variation due to
 * set sampling alone. Page-allocation effects are removed by
 * simulating a virtually-indexed cache, and only the espresso user
 * task is simulated (no kernel or servers). Trials with 1/8
 * sampling vary; trials without sampling are exactly repeatable.
 */

#include "common.hh"

using namespace twbench;

int
main(int argc, char **argv)
{
    initBench(argc, argv);
    unsigned scale = envScaleDiv(200);
    unsigned trials = 16;
    banner("Table 8", "variation due to set sampling "
                      "(espresso, virtually-indexed, user only)",
           scale);

    JsonReport json("table8_sampling");
    double total_misses = 0.0;
    unsigned total_trials = 0;
    TextTable t({"size", "sampled.mean", "sampled.s%",
                 "unsampled.mean", "unsampled.s%"});
    for (std::uint64_t kb : {1, 2, 4, 8, 16, 32}) {
        RunSpec spec = defaultSpec("espresso", scale);
        spec.sys.scope = SimScope::userOnly();
        spec.tw.cache = CacheConfig::icache(kb * 1024, 16, 1,
                                            Indexing::Virtual);

        RunSpec sampled = spec;
        sampled.tw.sampleNum = 1;
        sampled.tw.sampleDenom = 8;
        auto sampled_out = runTrials(sampled, trials, 0x5a);
        auto unsampled_out = runTrials(spec, trials, 0x5a);
        total_misses += totalEstMisses(sampled_out)
                        + totalEstMisses(unsampled_out);
        total_trials += 2 * trials;
        Summary ss = missSummary(sampled_out);
        Summary su = missSummary(unsampled_out);

        double to_m = static_cast<double>(scale) / 1e6;
        t.addRow({
            csprintf("%lluK", (unsigned long long)kb),
            fmtF(ss.mean * to_m, 3),
            csprintf("%.1f%%", ss.stddevPct()),
            fmtF(su.mean * to_m, 3),
            csprintf("%.1f%%", su.stddevPct()),
        });
    }
    std::printf("%s\n", t.render().c_str());
    std::printf("Shape targets: unsampled variance ~0 (error bars "
                "collapse); sampled estimates center on the "
                "unsampled truth with visible spread.\n");
    json.set("trials", total_trials);
    json.set("total_est_misses", total_misses);
    return 0;
}
