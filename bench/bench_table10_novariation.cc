/**
 * @file
 * Regenerates Table 10: measurement variation removed — the same
 * experiment as Table 7 (16 trials, all activity) but configured
 * for virtually-indexed caches without set sampling, so that
 * trap-driven results become as repeatable as a trace-driven
 * simulator's. Residual spread comes only from interrupt-phase
 * jitter.
 */

#include "common.hh"

using namespace twbench;

namespace
{

struct PaperRow
{
    const char *name;
    double mean, sd_pct, range_pct;
};

// Table 10 as published.
const PaperRow kPaper[] = {
    {"eqntott", 4.19, 2, 4},   {"espresso", 4.26, 1, 2},
    {"jpeg_play", 20.60, 0, 0}, {"kenbus", 22.03, 0, 0},
    {"mpeg_play", 53.16, 0, 0}, {"ousterhout", 34.69, 4, 5},
    {"sdet", 41.23, 0, 0},      {"xlisp", 21.67, 1, 1},
};

} // namespace

int
main(int argc, char **argv)
{
    initBench(argc, argv);
    unsigned scale = envScaleDiv(400);
    unsigned trials = 16;
    banner("Table 10", "variation removed "
                       "(virtual indexing, no sampling, 16KB)",
           scale);

    JsonReport json("table10_novariation");
    double total_misses = 0.0;
    unsigned total_trials = 0;
    TextTable t({"workload", "mean(10^6)", "s", "min", "max",
                 "range", "paper.s%", "paper.range%"});
    for (const auto &paper : kPaper) {
        RunSpec spec = defaultSpec(paper.name, scale);
        spec.tw.cache = CacheConfig::icache(16384, 16, 1,
                                            Indexing::Virtual);
        auto outcomes = runTrials(spec, trials, 0xbead);
        total_misses += totalEstMisses(outcomes);
        total_trials += trials;
        Summary s = missSummary(outcomes);
        double to_m = static_cast<double>(scale) / 1e6;
        t.addRow({
            paper.name,
            fmtF(s.mean * to_m, 2),
            fmtValAndPct(s.stddev * to_m, s.stddevPct()),
            fmtValAndPct(s.min * to_m, s.minPct()),
            fmtValAndPct(s.max * to_m, s.maxPct()),
            fmtValAndPct(s.range * to_m, s.rangePct()),
            csprintf("%.0f%%", paper.sd_pct),
            csprintf("%.0f%%", paper.range_pct),
        });
    }
    std::printf("%s\n", t.render().c_str());
    std::printf("Shape target: relative deviations collapse from "
                "Table 7's 7-76%% to ~0-5%%.\n");
    json.set("trials", total_trials);
    json.set("total_est_misses", total_misses);
    return 0;
}
