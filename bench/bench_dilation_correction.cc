/**
 * @file
 * The dilation-correction study the paper proposes (Section 4.2):
 * "We are collecting time dilation curves for a larger set of
 * workloads to determine if their shape and magnitude are the same
 * as in Figure 4. If so, it should be possible to adjust simulation
 * results to factor away this form of systematic error."
 *
 * This bench does exactly that: collects the dilation curve of each
 * workload (sampling degree sweeps the slowdown), fits the
 * saturating model misses(d) = m0*(1 + a*d/(b+d)), and checks how
 * well the corrected unsampled measurement recovers the undilated
 * ground truth (a cost-free instrumented run of the same trial).
 */

#include "common.hh"
#include "harness/dilation.hh"

using namespace twbench;

int
main()
{
    unsigned scale = envScaleDiv(400);
    banner("Section 4.2", "time-dilation curves and correction",
           scale);

    TextTable t({"workload", "a (sat.infl)", "b (half-scale)",
                 "raw err", "corrected err", "fit rms"});
    for (const char *name :
         {"mpeg_play", "sdet", "ousterhout", "jpeg_play"}) {
        RunSpec spec;
        spec.workload = makeWorkload(name, scale);
        spec.sys.scope = SimScope::all();
        spec.sys.clockJitter = false;
        spec.sim = SimKind::Tapeworm;
        spec.tw.cache = CacheConfig::icache(4096, 16, 1,
                                            Indexing::Virtual);
        spec.tw.sampleSeed = 77; // virtual + fixed seed: low noise

        // Ground truth: instrumentation with zero cost (dilation ~0).
        RunSpec truth_spec = spec;
        truth_spec.tw.chargeCost = false;
        double truth = Runner::runOne(truth_spec, 3).estMisses;

        // Collect the dilation curve by sweeping sampling.
        std::vector<std::pair<double, double>> curve;
        double raw_unsampled = 0, dil_unsampled = 0;
        for (unsigned denom : {16u, 8u, 4u, 2u, 1u}) {
            RunSpec point = spec;
            point.tw.sampleNum = 1;
            point.tw.sampleDenom = denom;
            Runner::clearBaselineCache();
            RunOutcome out = Runner::runWithSlowdown(point, 3);
            curve.emplace_back(out.slowdown, out.estMisses);
            if (denom == 1) {
                raw_unsampled = out.estMisses;
                dil_unsampled = out.slowdown;
            }
        }

        DilationModel model = DilationModel::fit(curve);
        double corrected =
            model.correct(raw_unsampled, dil_unsampled);
        double raw_err = 100.0 * (raw_unsampled - truth) / truth;
        double corr_err = 100.0 * (corrected - truth) / truth;

        t.addRow({
            name,
            fmtF(model.saturationInflation(), 3),
            fmtF(model.halfScale(), 2),
            csprintf("%+.1f%%", raw_err),
            csprintf("%+.1f%%", corr_err),
            fmtF(model.rmsError(), 3),
        });
    }
    std::printf("%s\n", t.render().c_str());
    std::printf("Shape targets: raw unsampled measurements "
                "over-read by several percent (the Figure 4 error); "
                "after fitting each workload's own curve the "
                "corrected values land within ~1-2%% of the "
                "undilated truth — the adjustment the paper "
                "anticipated is workable.\n");
    return 0;
}
