/**
 * @file
 * google-benchmark microbenchmarks of the building blocks: the
 * trap-bit hot path, cache model operations, stream generation,
 * trace encoding and the end-to-end engines. These quantify the
 * host-level claim behind Figure 1: a trap-driven hit costs a bit
 * test, a trace-driven hit costs a cache search.
 */

#include <benchmark/benchmark.h>

#include "base/random.hh"
#include "core/tapeworm.hh"
#include "machine/ecc.hh"
#include "machine/phys_mem.hh"
#include "mem/cache.hh"
#include "mem/stack_sim.hh"
#include "trace/cache2000.hh"
#include "trace/trace_io.hh"
#include "utrap/utrap.hh"
#include "workload/loop_nest.hh"

#include "common.hh"

namespace
{

using namespace tw;

void
BM_PhysMemIsTrapped(benchmark::State &state)
{
    PhysMem mem(16 * 1024 * 1024);
    mem.setTrap(0x100000, 4096);
    Addr pa = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(mem.isTrapped(pa));
        pa = (pa + 16) & (16 * 1024 * 1024 - 1);
    }
}
BENCHMARK(BM_PhysMemIsTrapped);

void
BM_PhysMemSetClearTrap(benchmark::State &state)
{
    PhysMem mem(16 * 1024 * 1024);
    std::uint64_t line = static_cast<std::uint64_t>(state.range(0));
    for (auto _ : state) {
        mem.setTrap(0x100000, line);
        mem.clearTrap(0x100000, line);
    }
}
BENCHMARK(BM_PhysMemSetClearTrap)->Arg(16)->Arg(64)->Arg(4096);

void
BM_CacheAccess(benchmark::State &state)
{
    CacheConfig cfg = CacheConfig::icache(
        16384, 16, static_cast<std::uint32_t>(state.range(0)));
    Cache cache(cfg);
    Rng rng(1);
    std::vector<LineRef> refs;
    for (int i = 0; i < 4096; ++i) {
        Addr line = rng.geometric(0.002);
        refs.push_back(LineRef{line, line, 1});
    }
    std::size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(cache.access(refs[i]));
        i = (i + 1) & 4095;
    }
}
BENCHMARK(BM_CacheAccess)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void
BM_CacheInsert(benchmark::State &state)
{
    Cache cache(CacheConfig::icache(16384));
    Addr line = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            cache.insert(LineRef{line, line, 1}));
        ++line;
    }
}
BENCHMARK(BM_CacheInsert);

/**
 * flushPhysPage cost (the tw_remove_page() hot path). Each
 * iteration refills one page's worth of lines and flushes that
 * page, so the number reported is (refill + flush) per page.
 *
 * Guard (comment, not a hard threshold): before the set-range
 * flush optimization this scanned every line of the cache per
 * flush and grew linearly with cache size (measured on the
 * reference container: 2.7/5.6/16.4 us/op at 16K/64K/256K).
 * After, only the page's aligned power-of-two set range is
 * scanned, so ns/op should stay roughly flat from 64K to 256K
 * (measured: 2.4/2.4/2.7 us/op, refill included). A regression
 * back to size-proportional growth means the bounded-scan path
 * got lost.
 */
void
BM_CacheFlushPhysPage(benchmark::State &state)
{
    CacheConfig cfg = CacheConfig::icache(
        static_cast<std::uint64_t>(state.range(0)) * 1024, 16, 2);
    Cache cache(cfg);
    const Addr lines_per_page = kHostPageBytes / cfg.lineBytes;
    const Addr total_pages = 4 * cfg.sizeBytes / kHostPageBytes;
    for (Addr line = 0; line < total_pages * lines_per_page; ++line)
        cache.insert(LineRef{line, line, 1});
    Addr pfn = 0;
    for (auto _ : state) {
        for (Addr l = 0; l < lines_per_page; ++l) {
            Addr line = pfn * lines_per_page + l;
            cache.insert(LineRef{line, line, 1});
        }
        benchmark::DoNotOptimize(
            cache.flushPhysPage(pfn, kHostPageBytes));
        pfn = (pfn + 1) % total_pages;
    }
}
BENCHMARK(BM_CacheFlushPhysPage)->Arg(16)->Arg(64)->Arg(256);

/** The other flush extreme: a cache with nothing in it. The per-set
 *  occupancy counters make this a skip over empty sets instead of a
 *  scan of every (invalid) line. */
void
BM_CacheFlushPhysPageEmpty(benchmark::State &state)
{
    Cache cache(CacheConfig::icache(
        static_cast<std::uint64_t>(state.range(0)) * 1024, 16, 2));
    Addr pfn = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            cache.flushPhysPage(pfn, kHostPageBytes));
        ++pfn;
    }
}
BENCHMARK(BM_CacheFlushPhysPageEmpty)->Arg(16)->Arg(256);

void
BM_LoopNestNext(benchmark::State &state)
{
    StreamParams p;
    p.base = 0x400000;
    p.textBytes = 32 * 1024;
    p.ladder = {{256, 2.0}, {4096, 3.0}};
    LoopNestStream stream(p);
    for (auto _ : state)
        benchmark::DoNotOptimize(stream.next());
}
BENCHMARK(BM_LoopNestNext);

void
BM_EccEncodeDecode(benchmark::State &state)
{
    std::uint32_t data = 0;
    for (auto _ : state) {
        std::uint64_t cw = EccCodec::encode(data++);
        benchmark::DoNotOptimize(
            EccCodec::decode(EccCodec::flipTrapBit(cw)));
    }
}
BENCHMARK(BM_EccEncodeDecode);

void
BM_StackSimAccess(benchmark::State &state)
{
    StackSim sim(16);
    Rng rng(1);
    for (auto _ : state)
        sim.access(rng.geometric(0.02) * 16);
}
BENCHMARK(BM_StackSimAccess);

void
BM_TraceEncodeDecode(benchmark::State &state)
{
    // Round-trip throughput of the trace codec via a temp file.
    std::string path = "/tmp/tw_bench_trace.trc";
    for (auto _ : state) {
        state.PauseTiming();
        LoopNestStream stream([] {
            StreamParams p;
            p.base = 0x400000;
            p.textBytes = 32 * 1024;
            p.ladder = {{256, 2.0}};
            return p;
        }());
        state.ResumeTiming();
        {
            TraceWriter w(path);
            for (int i = 0; i < 100000; ++i)
                w.put(TraceRecord{stream.next(), 1});
        }
        TraceReader r(path);
        TraceRecord rec;
        std::uint64_t n = 0;
        while (r.next(rec))
            ++n;
        benchmark::DoNotOptimize(n);
    }
    std::remove(path.c_str());
}
BENCHMARK(BM_TraceEncodeDecode)->Unit(benchmark::kMillisecond);

/** End-to-end engine comparison: references/second through the
 *  trap-driven path vs the trace-driven path on the same stream,
 *  for a 16 KB cache (low miss ratio: the common case). */
void
BM_EngineTrapDriven(benchmark::State &state)
{
    PhysMem phys(16 * 1024 * 1024);
    TapewormConfig cfg;
    cfg.cache = CacheConfig::icache(16384);
    Tapeworm tapeworm(phys, cfg);

    StreamParams p;
    p.base = 0x400000;
    p.textBytes = 32 * 1024;
    p.ladder = {{256, 2.0}, {4096, 3.0}};
    Task task(1, "bench", Component::User,
              std::make_unique<LoopNestStream>(p), 1);
    task.attr.simulate = true;
    for (Vpn v = 0; v < 8; ++v) {
        task.pageTable.map(0x400 + v, static_cast<Pfn>(100 + v));
        tapeworm.onPageMapped(task, 0x400 + v,
                              static_cast<Pfn>(100 + v), false);
    }
    for (auto _ : state) {
        Addr va = task.stream->next();
        Addr pa = static_cast<Addr>(task.pageTable.lookup(va))
                      * kHostPageBytes
                  + (va % kHostPageBytes);
        benchmark::DoNotOptimize(tapeworm.onRef(task, va, pa, false));
    }
}
BENCHMARK(BM_EngineTrapDriven);

void
BM_EngineTraceDriven(benchmark::State &state)
{
    Cache2000Config cfg;
    cfg.cache = CacheConfig::icache(16384, 16, 1, Indexing::Virtual);
    Cache2000 c2k(cfg);
    StreamParams p;
    p.base = 0x400000;
    p.textBytes = 32 * 1024;
    p.ladder = {{256, 2.0}, {4096, 3.0}};
    LoopNestStream stream(p);
    for (auto _ : state)
        benchmark::DoNotOptimize(c2k.processAddr(stream.next(), 1));
}
BENCHMARK(BM_EngineTraceDriven);

void
BM_UtrapFaultRoundTrip(benchmark::State &state)
{
    // A full live trap: SIGSEGV delivery + handler + two mprotect
    // calls — the host-hardware analogue of the 246-cycle kernel
    // handler of Table 5.
    UserTapeworm engine(UtrapConfig{2, 0, UtrapPolicy::Fifo, 1});
    auto *buf = static_cast<volatile char *>(
        engine.registerBuffer(16 * 4096));
    std::size_t page = 0;
    for (auto _ : state) {
        // With a 2-entry TLB over 16 pages, round-robin touches
        // miss every time.
        buf[page * 4096] = 1;
        page = (page + 1) % 16;
    }
    state.counters["misses"] =
        static_cast<double>(engine.stats().misses);
}
BENCHMARK(BM_UtrapFaultRoundTrip);

void
BM_UtrapHit(benchmark::State &state)
{
    // The other side of the trade: a resident page costs nothing.
    UserTapeworm engine(UtrapConfig{64, 0, UtrapPolicy::Fifo, 1});
    auto *buf =
        static_cast<volatile char *>(engine.registerBuffer(4096));
    buf[0] = 1; // fault once
    for (auto _ : state)
        buf[64] = 2; // pure hardware store from here on
}
BENCHMARK(BM_UtrapHit);

/** End-to-end instrumented rate at a large cache (miss ratio well
 *  under 1%) — the configuration where the hit fast path carries
 *  the run. Written to BENCH_micro.json for cross-PR tracking. */
void
reportEndToEnd()
{
    using namespace twbench;
    unsigned scale = envScaleDiv(200);
    JsonReport json("micro", "bench_micro");
    RunSpec spec = defaultSpec("mpeg_play", scale);
    spec.sys.scope = SimScope::userOnly();
    spec.sim = SimKind::Tapeworm;
    spec.tw.cache =
        CacheConfig::icache(1024 * 1024, 16, 1, Indexing::Virtual);
    RunOutcome o = Runner::runOne(spec, 7);
    double rate = refsPerSec(o);
    std::printf("[report] end-to-end tapeworm, 1M icache: %.3fM "
                "refs/s (miss ratio %.5f)\n", rate / 1.0e6,
                o.missRatioUser());
    json.set("tw_refs_per_sec_1024K", rate);
    json.set("tw_miss_ratio_1024K", o.missRatioUser());
}

} // namespace

int
main(int argc, char **argv)
{
    // Accept the shared bench flags (--report, --threads) and keep
    // them away from google-benchmark's flag parser.
    bool report = false;
    std::vector<char *> args;
    for (int i = 0; i < argc; ++i) {
        if (i > 0 && std::strcmp(argv[i], "--report") == 0) {
            report = true;
            continue;
        }
        if (i > 0 && std::strcmp(argv[i], "--threads") == 0
            && i + 1 < argc) {
            ++i;
            continue;
        }
        if (i > 0 && std::strncmp(argv[i], "--threads=", 10) == 0)
            continue;
        args.push_back(argv[i]);
    }
    int bargc = static_cast<int>(args.size());
    benchmark::Initialize(&bargc, args.data());
    if (benchmark::ReportUnrecognizedArguments(bargc, args.data()))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    if (report)
        reportEndToEnd();
    return 0;
}
