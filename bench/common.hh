/**
 * @file
 * Shared helpers for the per-table/figure bench binaries.
 *
 * Every binary regenerates one table or figure of the paper and
 * prints (a) the paper's published numbers where useful and (b) the
 * numbers measured on this reproduction. Instruction counts are
 * scaled down by TW_SCALE_DIV (see workload/spec.hh); miss counts
 * are extrapolated back to paper scale so the columns are directly
 * comparable to the publication.
 */

#ifndef TW_BENCH_COMMON_HH
#define TW_BENCH_COMMON_HH

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "base/table.hh"
#include "base/thread_pool.hh"
#include "harness/experiment.hh"
#include "harness/runner.hh"
#include "harness/trials.hh"
#include "workload/spec.hh"

namespace twbench
{

using namespace tw;

/**
 * Common bench CLI handling: `--threads N` (or `TW_THREADS`) sets
 * the trial-dispatch width for every runTrials in the binary.
 * Unrecognized arguments are ignored so the binaries stay drop-in
 * compatible with plain invocation.
 */
inline void
initBench(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (std::strcmp(arg, "--threads") == 0 && i + 1 < argc) {
            setDefaultThreads(
                static_cast<unsigned>(std::atoi(argv[++i])));
        } else if (std::strncmp(arg, "--threads=", 10) == 0) {
            setDefaultThreads(
                static_cast<unsigned>(std::atoi(arg + 10)));
        }
    }
}

/**
 * Machine-readable companion to the printed tables: collects scalar
 * metrics and writes BENCH_<name>.json on destruction (wall-clock
 * covers the object's lifetime). Funnels through the experiment
 * layer's writeBenchReport so non-registry benches (serve, micro)
 * emit the same schema as bench_driver --report.
 */
class JsonReport
{
  public:
    JsonReport(std::string name, std::string generated_by)
        : name_(std::move(name)),
          generatedBy_(std::move(generated_by)),
          t0_(std::chrono::steady_clock::now())
    {
    }

    JsonReport(const JsonReport &) = delete;
    JsonReport &operator=(const JsonReport &) = delete;

    /** Record one scalar metric (insertion order is kept). */
    void
    set(const std::string &key, double value)
    {
        metrics_.emplace_back(key, value);
    }

    ~JsonReport()
    {
        double wall = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - t0_)
                          .count();
        writeBenchReport(name_, name_, generatedBy_, wall, metrics_);
    }

  private:
    std::string name_;
    std::string generatedBy_;
    std::chrono::steady_clock::time_point t0_;
    std::vector<std::pair<std::string, double>> metrics_;
};

/** Was @p flag passed on the command line? */
inline bool
hasFlag(int argc, char **argv, const char *flag)
{
    for (int i = 1; i < argc; ++i)
        if (std::strcmp(argv[i], flag) == 0)
            return true;
    return false;
}

/** Host-side simulation rate of one run: simulated references
 *  (instructions + data refs) retired per real second. */
inline double
refsPerSec(const RunOutcome &o)
{
    if (o.hostSeconds <= 0.0)
        return 0.0;
    return static_cast<double>(o.run.totalInstr() + o.run.dataRefs)
           / o.hostSeconds;
}

/** Total estimated misses across a set of outcomes (a JSON metric
 *  shared by the trial benches). */
inline double
totalEstMisses(const std::vector<RunOutcome> &outcomes)
{
    double sum = 0.0;
    for (const auto &o : outcomes)
        sum += o.estMisses;
    return sum;
}

/** Scale misses measured at 1/scale workload size back to the
 *  paper's full-size runs, in millions. */
inline double
paperMillions(double misses, unsigned scale_div)
{
    return misses * static_cast<double>(scale_div) / 1.0e6;
}

/** Default experiment spec: Tapeworm, all activity, 4 KB DM cache. */
inline RunSpec
defaultSpec(const std::string &workload, unsigned scale_div)
{
    RunSpec spec;
    spec.workload = makeWorkload(workload, scale_div);
    spec.sys.scope = SimScope::all();
    spec.sim = SimKind::Tapeworm;
    spec.tw.cache = CacheConfig::icache(4096);
    return spec;
}

/** Print a bench header naming the regenerated artifact. */
inline void
banner(const char *artifact, const char *description,
       unsigned scale_div)
{
    std::printf("==============================================="
                "=================\n");
    std::printf("%s — %s\n", artifact, description);
    std::printf("workloads scaled 1/%u; miss columns extrapolated "
                "to paper scale; %u trial thread(s)\n", scale_div,
                defaultThreads());
    std::printf("==============================================="
                "=================\n");
}

} // namespace twbench

#endif // TW_BENCH_COMMON_HH
