/**
 * @file
 * Shared helpers for the per-table/figure bench binaries.
 *
 * Every binary regenerates one table or figure of the paper and
 * prints (a) the paper's published numbers where useful and (b) the
 * numbers measured on this reproduction. Instruction counts are
 * scaled down by TW_SCALE_DIV (see workload/spec.hh); miss counts
 * are extrapolated back to paper scale so the columns are directly
 * comparable to the publication.
 */

#ifndef TW_BENCH_COMMON_HH
#define TW_BENCH_COMMON_HH

#include <cstdio>
#include <string>

#include "base/table.hh"
#include "harness/runner.hh"
#include "harness/trials.hh"
#include "workload/spec.hh"

namespace twbench
{

using namespace tw;

/** Scale misses measured at 1/scale workload size back to the
 *  paper's full-size runs, in millions. */
inline double
paperMillions(double misses, unsigned scale_div)
{
    return misses * static_cast<double>(scale_div) / 1.0e6;
}

/** Default experiment spec: Tapeworm, all activity, 4 KB DM cache. */
inline RunSpec
defaultSpec(const std::string &workload, unsigned scale_div)
{
    RunSpec spec;
    spec.workload = makeWorkload(workload, scale_div);
    spec.sys.scope = SimScope::all();
    spec.sim = SimKind::Tapeworm;
    spec.tw.cache = CacheConfig::icache(4096);
    return spec;
}

/** Print a bench header naming the regenerated artifact. */
inline void
banner(const char *artifact, const char *description,
       unsigned scale_div)
{
    std::printf("==============================================="
                "=================\n");
    std::printf("%s — %s\n", artifact, description);
    std::printf("workloads scaled 1/%u; miss columns extrapolated "
                "to paper scale\n", scale_div);
    std::printf("==============================================="
                "=================\n");
}

} // namespace twbench

#endif // TW_BENCH_COMMON_HH
