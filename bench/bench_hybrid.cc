/**
 * @file
 * Three-way comparison of the simulation families of Section 2:
 * trace-driven (Pixie+Cache2000), hybrid annotation with a null
 * handler (Fast-Cache / MemSpy style), and trap-driven (Tapeworm) —
 * slowdown versus cache size for mpeg_play's user task.
 *
 * Expected regimes:
 *   trace-driven : flat ~22x floor (every ref generated + searched);
 *   hybrid       : low floor (~1x, the inline null handler) plus a
 *                  miss-proportional term with a cheap handler;
 *   trap-driven  : zero floor, miss-proportional with an expensive
 *                  (kernel-trap) handler.
 * The hybrid and trap lines cross: above the crossover miss ratio
 * the cheap in-line handler wins, below it hardware filtering wins —
 * exactly the trade the related-work section sketches.
 */

#include "common.hh"
#include "os/system.hh"
#include "trace/hybrid.hh"

using namespace twbench;

int
main()
{
    unsigned scale = envScaleDiv(200);
    banner("Section 2", "trace vs hybrid vs trap simulation "
                        "slowdowns, mpeg_play", scale);

    TextTable t({"size", "missRatio", "trace", "hybrid", "trap",
                 "fastest"});
    for (std::uint64_t kb : {1, 2, 4, 8, 16, 32, 64}) {
        CacheConfig cache = CacheConfig::icache(kb * 1024ull, 16, 1,
                                                Indexing::Virtual);

        RunSpec spec = defaultSpec("mpeg_play", scale);
        spec.sys.scope = SimScope::userOnly();
        spec.tw.cache = cache;
        RunOutcome trap = Runner::runWithSlowdown(spec, 7);

        spec.sim = SimKind::TraceDriven;
        spec.c2k.cache = cache;
        RunOutcome trace = Runner::runWithSlowdown(spec, 7);

        // Hybrid runs outside the Runner (its own client type).
        WorkloadSpec wl = makeWorkload("mpeg_play", scale);
        SystemConfig sys;
        sys.trialSeed = 7;
        sys.scope = SimScope::userOnly();
        System plain(sys, wl);
        double normal = static_cast<double>(plain.run().cycles);
        System machine(sys, wl);
        HybridConfig hcfg;
        hcfg.cache = cache;
        HybridClient hybrid(kFirstUserTaskId, hcfg);
        machine.setClient(&hybrid);
        double hybrid_slow =
            (static_cast<double>(machine.run().cycles) - normal)
            / normal;

        const char *fastest = "trap";
        double best = trap.slowdown;
        if (hybrid_slow < best) {
            fastest = "hybrid";
            best = hybrid_slow;
        }
        if (trace.slowdown < best)
            fastest = "trace";

        t.addRow({
            csprintf("%lluK", (unsigned long long)kb),
            fmtF(trap.missRatioUser(), 3),
            fmtF(trace.slowdown, 2),
            fmtF(hybrid_slow, 2),
            fmtF(trap.slowdown, 2),
            fastest,
        });
    }
    std::printf("%s\n", t.render().c_str());
    std::printf(
        "Shape targets: trace flat ~22x; hybrid ~1-4x with a ~1x\n"
        "floor; trap from ~6x down to ~0. The hybrid wins at\n"
        "miss-heavy small caches, the trap-driven simulator wins\n"
        "once the miss ratio drops below roughly\n"
        "nullHandler/(trapHandler - missHandler) ~ 3%% — and only\n"
        "the trap-driven one ever sees the kernel and servers.\n");
    return 0;
}
