/**
 * @file
 * Regenerates Figure 2: Tapeworm versus Pixie+Cache2000 slowdowns
 * for mpeg_play over direct-mapped I-cache sizes 1 KB - 1 MB with
 * 4-word lines. Tapeworm attributes exclude the X/BSD servers and
 * kernel (user task only), but slowdowns are relative to the total
 * run time including them — exactly the paper's setup.
 */

#include <memory>

#include "common.hh"

using namespace twbench;

namespace
{

struct PaperRow
{
    unsigned kb;
    double missRatio, c2000, tapeworm;
};

// Figure 2's embedded table.
const PaperRow kPaper[] = {
    {1, 0.118, 30.2, 6.27},   {2, 0.097, 28.8, 5.16},
    {4, 0.064, 27.0, 3.84},   {8, 0.023, 24.2, 1.20},
    {16, 0.017, 23.5, 0.87},  {32, 0.002, 22.4, 0.11},
    {64, 0.002, 22.3, 0.10},  {128, 0.000, 22.0, 0.01},
    {256, 0.000, 22.1, 0.00}, {512, 0.000, 22.1, 0.00},
    {1024, 0.000, 22.3, 0.00},
};

} // namespace

int
main(int argc, char **argv)
{
    initBench(argc, argv);
    bool report = hasFlag(argc, argv, "--report");
    unsigned scale = envScaleDiv(200);
    banner("Figure 2", "trace-driven vs trap-driven slowdowns, "
                       "mpeg_play I-cache", scale);

    // Restrict the sweep to one cache size (perf-smoke mode; the
    // default full sweep and its table are unchanged).
    unsigned only_kb = 0;
    if (const char *only = std::getenv("TW_FIG2_ONLY_KB"))
        only_kb = static_cast<unsigned>(std::atoi(only));

    std::unique_ptr<JsonReport> json;
    if (report)
        json = std::make_unique<JsonReport>("fig2_slowdowns");

    double tw_refs = 0.0, tw_secs = 0.0;
    TextTable t({"size", "missRatio", "c2000.slow", "tw.slow",
                 "paper.miss", "paper.c2000", "paper.tw"});
    for (const auto &paper : kPaper) {
        if (only_kb != 0 && paper.kb != only_kb)
            continue;
        RunSpec spec = defaultSpec("mpeg_play", scale);
        spec.sys.scope = SimScope::userOnly();
        CacheConfig cache = CacheConfig::icache(
            paper.kb * 1024ull, 16, 1, Indexing::Virtual);

        spec.sim = SimKind::Tapeworm;
        spec.tw.cache = cache;
        RunOutcome trap = Runner::runWithSlowdown(spec, 7);

        spec.sim = SimKind::TraceDriven;
        spec.c2k.cache = cache;
        RunOutcome trace = Runner::runWithSlowdown(spec, 7);

        tw_refs += static_cast<double>(trap.run.totalInstr()
                                       + trap.run.dataRefs);
        tw_secs += trap.hostSeconds;
        if (json) {
            json->set(csprintf("tw_refs_per_sec_%uK", paper.kb),
                      refsPerSec(trap));
        }

        t.addRow({
            csprintf("%uK", paper.kb),
            fmtF(trap.missRatioUser(), 3),
            fmtF(trace.slowdown, 1),
            fmtF(trap.slowdown, 2),
            fmtF(paper.missRatio, 3),
            fmtF(paper.c2000, 1),
            fmtF(paper.tapeworm, 2),
        });
    }
    std::printf("%s\n", t.render().c_str());
    std::printf("Shape targets: Tapeworm slowdown tracks the miss "
                "ratio toward zero; Cache2000 floor ~22x; Tapeworm "
                "wins ~3x even at the 1K cache.\n");
    if (report) {
        double rate = tw_secs > 0.0 ? tw_refs / tw_secs : 0.0;
        std::printf("[report] tapeworm host rate: %.3fM refs/s "
                    "(%.0f refs in %.3fs host)\n", rate / 1.0e6,
                    tw_refs, tw_secs);
        json->set("tw_refs_per_sec", rate);
        json->set("tw_host_seconds", tw_secs);
    }
    return 0;
}
