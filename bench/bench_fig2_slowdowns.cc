/**
 * @file
 * Regenerates Figure 2: Tapeworm versus Pixie+Cache2000 slowdowns
 * for mpeg_play over direct-mapped I-cache sizes 1 KB - 1 MB with
 * 4-word lines. Tapeworm attributes exclude the X/BSD servers and
 * kernel (user task only), but slowdowns are relative to the total
 * run time including them — exactly the paper's setup.
 */

#include "common.hh"

using namespace twbench;

namespace
{

struct PaperRow
{
    unsigned kb;
    double missRatio, c2000, tapeworm;
};

// Figure 2's embedded table.
const PaperRow kPaper[] = {
    {1, 0.118, 30.2, 6.27},   {2, 0.097, 28.8, 5.16},
    {4, 0.064, 27.0, 3.84},   {8, 0.023, 24.2, 1.20},
    {16, 0.017, 23.5, 0.87},  {32, 0.002, 22.4, 0.11},
    {64, 0.002, 22.3, 0.10},  {128, 0.000, 22.0, 0.01},
    {256, 0.000, 22.1, 0.00}, {512, 0.000, 22.1, 0.00},
    {1024, 0.000, 22.3, 0.00},
};

} // namespace

int
main()
{
    unsigned scale = envScaleDiv(200);
    banner("Figure 2", "trace-driven vs trap-driven slowdowns, "
                       "mpeg_play I-cache", scale);

    TextTable t({"size", "missRatio", "c2000.slow", "tw.slow",
                 "paper.miss", "paper.c2000", "paper.tw"});
    for (const auto &paper : kPaper) {
        RunSpec spec = defaultSpec("mpeg_play", scale);
        spec.sys.scope = SimScope::userOnly();
        CacheConfig cache = CacheConfig::icache(
            paper.kb * 1024ull, 16, 1, Indexing::Virtual);

        spec.sim = SimKind::Tapeworm;
        spec.tw.cache = cache;
        RunOutcome trap = Runner::runWithSlowdown(spec, 7);

        spec.sim = SimKind::TraceDriven;
        spec.c2k.cache = cache;
        RunOutcome trace = Runner::runWithSlowdown(spec, 7);

        t.addRow({
            csprintf("%uK", paper.kb),
            fmtF(trap.missRatioUser(), 3),
            fmtF(trace.slowdown, 1),
            fmtF(trap.slowdown, 2),
            fmtF(paper.missRatio, 3),
            fmtF(paper.c2000, 1),
            fmtF(paper.tapeworm, 2),
        });
    }
    std::printf("%s\n", t.render().c_str());
    std::printf("Shape targets: Tapeworm slowdown tracks the miss "
                "ratio toward zero; Cache2000 floor ~22x; Tapeworm "
                "wins ~3x even at the 1K cache.\n");
    return 0;
}
