/** @file Tests of the VM system: faults, sharing, registration. */

#include <gtest/gtest.h>

#include "os/vm.hh"
#include "workload/loop_nest.hh"

namespace tw
{
namespace
{

std::unique_ptr<RefStream>
streamAt(Addr base, std::uint64_t text = 16 * 1024)
{
    StreamParams p;
    p.base = base;
    p.textBytes = text;
    p.ladder = {{256, 2.0}};
    return std::make_unique<LoopNestStream>(p);
}

/** Records register/remove upcalls for inspection. */
class RecordingClient : public SimClient
{
  public:
    Cycles
    onRef(const Task &, Addr, Addr, bool, AccessKind) override
    {
        return 0;
    }

    void
    onPageMapped(const Task &, Vpn vpn, Pfn pfn, bool shared) override
    {
        mapped.push_back({vpn, pfn, shared});
    }

    void
    onPageRemoved(const Task &, Vpn vpn, Pfn pfn, bool last) override
    {
        removed.push_back({vpn, pfn, last});
    }

    struct Event
    {
        Vpn vpn;
        Pfn pfn;
        bool flag;
    };
    std::vector<Event> mapped;
    std::vector<Event> removed;
};

TEST(Vm, FaultMapsPage)
{
    Vm vm(256, AllocPolicy::Sequential, 1, 4);
    Task t(5, "a", Component::User, streamAt(0x400000), 1);
    Vpn vpn = t.pageTable.firstVpn();
    Pfn pfn = vm.fault(t, vpn);
    EXPECT_GE(pfn, 4);
    EXPECT_EQ(t.pageTable.mappedFrame(vpn), pfn);
    EXPECT_EQ(vm.refCount(pfn), 1u);
    EXPECT_EQ(vm.stats().faults, 1u);
}

TEST(Vm, SameBinarySharesFrames)
{
    Vm vm(256, AllocPolicy::Sequential, 1, 0);
    Task a(5, "a", Component::User, streamAt(0x400000), 1);
    Task b(6, "b", Component::User, streamAt(0x400000), 2);
    Vpn vpn = a.pageTable.firstVpn();
    Pfn fa = vm.fault(a, vpn);
    Pfn fb = vm.fault(b, vpn);
    EXPECT_EQ(fa, fb);
    EXPECT_EQ(vm.refCount(fa), 2u);
    EXPECT_EQ(vm.stats().sharedMaps, 1u);
}

TEST(Vm, DifferentBinariesGetDifferentFrames)
{
    Vm vm(256, AllocPolicy::Sequential, 1, 0);
    Task a(5, "a", Component::User, streamAt(0x400000), 1);
    Task b(6, "b", Component::User, streamAt(0x500000), 2);
    Pfn fa = vm.fault(a, a.pageTable.firstVpn());
    Pfn fb = vm.fault(b, b.pageTable.firstVpn());
    EXPECT_NE(fa, fb);
}

TEST(Vm, RegistersOnlySimulatedTasks)
{
    Vm vm(256, AllocPolicy::Sequential, 1, 0);
    RecordingClient client;
    vm.setClient(&client);

    Task sim(5, "sim", Component::User, streamAt(0x400000), 1);
    sim.attr.simulate = true;
    Task plain(6, "plain", Component::User, streamAt(0x500000), 2);
    plain.attr.simulate = false;

    vm.fault(sim, sim.pageTable.firstVpn());
    vm.fault(plain, plain.pageTable.firstVpn());
    EXPECT_EQ(client.mapped.size(), 1u);
    EXPECT_FALSE(client.mapped[0].flag); // not shared
}

TEST(Vm, SharedRegistrationFlagged)
{
    Vm vm(256, AllocPolicy::Sequential, 1, 0);
    RecordingClient client;
    vm.setClient(&client);

    Task a(5, "a", Component::User, streamAt(0x400000), 1);
    Task b(6, "b", Component::User, streamAt(0x400000), 2);
    a.attr.simulate = true;
    b.attr.simulate = true;
    Vpn vpn = a.pageTable.firstVpn();
    vm.fault(a, vpn);
    vm.fault(b, vpn);
    ASSERT_EQ(client.mapped.size(), 2u);
    EXPECT_FALSE(client.mapped[0].flag);
    EXPECT_TRUE(client.mapped[1].flag);
    EXPECT_EQ(vm.simRefCount(client.mapped[0].pfn), 2u);
}

TEST(Vm, RemoveTaskFreesAndDeregisters)
{
    Vm vm(256, AllocPolicy::Sequential, 1, 0);
    RecordingClient client;
    vm.setClient(&client);

    Task t(5, "t", Component::User, streamAt(0x400000), 1);
    t.attr.simulate = true;
    Vpn vpn = t.pageTable.firstVpn();
    Pfn pfn = vm.fault(t, vpn);
    vm.removeTask(t);
    ASSERT_EQ(client.removed.size(), 1u);
    EXPECT_TRUE(client.removed[0].flag); // last mapping
    EXPECT_TRUE(t.exited);
    EXPECT_EQ(vm.refCount(pfn), 0u);
    EXPECT_EQ(vm.stats().framesFreed, 1u);
    // The frame can be reused for a different image.
    Task u(7, "u", Component::User, streamAt(0x600000), 1);
    EXPECT_EQ(vm.fault(u, u.pageTable.firstVpn()), pfn);
}

TEST(Vm, SharedFrameSurvivesFirstExit)
{
    Vm vm(256, AllocPolicy::Sequential, 1, 0);
    RecordingClient client;
    vm.setClient(&client);

    Task a(5, "a", Component::User, streamAt(0x400000), 1);
    Task b(6, "b", Component::User, streamAt(0x400000), 2);
    a.attr.simulate = true;
    b.attr.simulate = true;
    Vpn vpn = a.pageTable.firstVpn();
    Pfn pfn = vm.fault(a, vpn);
    vm.fault(b, vpn);

    vm.removeTask(a);
    ASSERT_EQ(client.removed.size(), 1u);
    EXPECT_FALSE(client.removed[0].flag); // b still maps it
    EXPECT_EQ(vm.refCount(pfn), 1u);

    vm.removeTask(b);
    ASSERT_EQ(client.removed.size(), 2u);
    EXPECT_TRUE(client.removed[1].flag);
    EXPECT_EQ(vm.refCount(pfn), 0u);
}

TEST(Vm, DmaVictimSkipsFreedFrames)
{
    Vm vm(256, AllocPolicy::Sequential, 1, 0);
    Task a(5, "a", Component::User, streamAt(0x400000), 1);
    Task b(6, "b", Component::User, streamAt(0x500000), 2);
    Pfn fa = vm.fault(a, a.pageTable.firstVpn());
    Pfn fb = vm.fault(b, b.pageTable.firstVpn());
    EXPECT_EQ(vm.dmaVictim(0), fa);
    EXPECT_EQ(vm.dmaVictim(1), fb);
    vm.removeTask(a);
    EXPECT_EQ(vm.dmaVictim(0), fb); // fa freed, skipped
}

TEST(Vm, DmaVictimEmpty)
{
    Vm vm(64, AllocPolicy::Sequential, 1, 0);
    EXPECT_EQ(vm.dmaVictim(0), kNoFrame);
}

TEST(VmDeath, OutOfMemoryIsFatal)
{
    Vm vm(2, AllocPolicy::Sequential, 1, 1); // one usable frame
    Task t(5, "t", Component::User, streamAt(0x400000), 1);
    vm.fault(t, t.pageTable.firstVpn());
    EXPECT_EXIT(vm.fault(t, t.pageTable.firstVpn() + 1),
                ::testing::ExitedWithCode(1), "out of physical");
}

TEST(VmDeath, DoubleRemove)
{
    Vm vm(64, AllocPolicy::Sequential, 1, 0);
    Task t(5, "t", Component::User, streamAt(0x400000), 1);
    vm.fault(t, t.pageTable.firstVpn());
    vm.removeTask(t);
    EXPECT_DEATH(vm.removeTask(t), "double removeTask");
}

} // namespace
} // namespace tw
