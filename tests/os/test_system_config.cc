/** @file Behaviour of the SystemConfig knobs. */

#include <gtest/gtest.h>

#include "os/system.hh"
#include "workload/spec.hh"

namespace tw
{
namespace
{

WorkloadSpec
wl(const char *name = "espresso", unsigned scale = 4000)
{
    return makeWorkload(name, scale);
}

TEST(SystemConfig, TickHandlerLengthAddsKernelInstr)
{
    SystemConfig small;
    small.clockJitter = false;
    small.tickHandlerInstr = 32;
    SystemConfig big = small;
    big.tickHandlerInstr = 512;

    System a(small, wl());
    System b(big, wl());
    RunResult ra = a.run();
    RunResult rb = b.run();
    Counter ka = ra.instr[static_cast<unsigned>(Component::Kernel)];
    Counter kb = rb.instr[static_cast<unsigned>(Component::Kernel)];
    EXPECT_GT(kb, ka);
    // The delta is roughly ticks x (512 - 32).
    double expected = static_cast<double>(ra.ticks) * (512 - 32);
    EXPECT_NEAR(static_cast<double>(kb - ka), expected,
                expected * 0.3 + 200);
}

TEST(SystemConfig, FasterClockMeansMoreTicks)
{
    SystemConfig slow;
    slow.clockJitter = false;
    SystemConfig fast = slow;
    fast.clockInterval = slow.clockInterval / 4;

    WorkloadSpec w = wl("espresso", 500); // enough ticks to compare
    System a(slow, w);
    System b(fast, w);
    Counter ta = a.run().ticks;
    Counter tb = b.run().ticks;
    EXPECT_NEAR(static_cast<double>(tb),
                static_cast<double>(ta) * 4.0,
                static_cast<double>(ta));
}

TEST(SystemConfig, QuantumInterleavesConcurrentTasks)
{
    // With a small quantum, the 15 concurrent ousterhout tasks all
    // make progress early; with a giant quantum the first task runs
    // to completion before the others start.
    WorkloadSpec w = wl("ousterhout", 2000);

    SystemConfig tiny;
    tiny.quantumInstr = 500;
    System a(tiny, w);
    RunResult ra = a.run();

    SystemConfig huge;
    huge.quantumInstr = ~static_cast<Counter>(0) >> 1;
    System b(huge, w);
    RunResult rb = b.run();

    // Both complete all user work either way.
    EXPECT_EQ(ra.instr[static_cast<unsigned>(Component::User)],
              rb.instr[static_cast<unsigned>(Component::User)]);
    EXPECT_EQ(ra.tasksCreated, rb.tasksCreated);
}

TEST(SystemConfig, FaultCyclesAreCharged)
{
    SystemConfig cheap;
    cheap.clockJitter = false;
    cheap.faultKernelCycles = 0;
    SystemConfig dear = cheap;
    dear.faultKernelCycles = 100000;

    System a(cheap, wl());
    System b(dear, wl());
    RunResult ra = a.run();
    RunResult rb = b.run();
    EXPECT_EQ(ra.faults, rb.faults);
    EXPECT_GE(rb.cycles,
              ra.cycles + ra.faults * 90000); // ticks shift a bit
}

TEST(SystemConfig, ForkBurstLengthShowsInKernelShare)
{
    WorkloadSpec w = wl("sdet", 4000); // 70 forks
    SystemConfig none;
    none.clockJitter = false;
    none.forkKernelInstr = 0;
    SystemConfig heavy = none;
    heavy.forkKernelInstr = 2000;

    System a(none, w);
    System b(heavy, w);
    Counter ka =
        a.run().instr[static_cast<unsigned>(Component::Kernel)];
    Counter kb =
        b.run().instr[static_cast<unsigned>(Component::Kernel)];
    EXPECT_GE(kb, ka + 70u * 2000u);
}

TEST(SystemConfig, SmallMemoryIsFatal)
{
    SystemConfig tiny;
    tiny.physMemBytes = 64 * kHostPageBytes;
    tiny.reservedFrames = 60; // four usable frames
    WorkloadSpec w = wl();
    EXPECT_EXIT(
        {
            System sys(tiny, w);
            sys.run();
        },
        ::testing::ExitedWithCode(1), "out of physical memory");
}

TEST(SystemConfig, ReservedFramesNeverHandedOut)
{
    SystemConfig cfg;
    cfg.reservedFrames = 100;
    System sys(cfg, wl());
    sys.run();
    for (const auto &task : sys.tasks()) {
        for (auto [vpn, pfn] : task->pageTable.mappings()) {
            (void)vpn;
            EXPECT_GE(pfn, 100);
        }
    }
}

} // namespace
} // namespace tw
