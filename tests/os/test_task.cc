/** @file Tests of the task structure and attribute inheritance. */

#include <gtest/gtest.h>

#include "os/task.hh"
#include "workload/loop_nest.hh"

namespace tw
{
namespace
{

std::unique_ptr<RefStream>
tinyStream()
{
    StreamParams p;
    p.base = 0x400000;
    p.textBytes = 4096;
    p.ladder = {{256, 2.0}};
    return std::make_unique<LoopNestStream>(p);
}

Task
makeTask(TaskId tid)
{
    return Task(tid, "t", Component::User, tinyStream(), 1);
}

TEST(Task, PageTableWindowMatchesStream)
{
    Task t = makeTask(5);
    EXPECT_EQ(t.pageTable.vaBase(), 0x400000u);
    EXPECT_EQ(t.pageTable.numPages(), 1u);
}

/** The paper's inheritance rule:
 *    child.simulate <- parent.inherit
 *    child.inherit  <- parent.inherit */
TEST(Task, InheritanceRule)
{
    Task parent = makeTask(1);
    Task child = makeTask(2);

    // (simulate=0, inherit=1): shell idiom — children simulated.
    parent.attr = {false, true};
    child.inheritFrom(parent);
    EXPECT_TRUE(child.attr.simulate);
    EXPECT_TRUE(child.attr.inherit);

    // (simulate=1, inherit=0): task itself only (kernel idiom).
    parent.attr = {true, false};
    child.inheritFrom(parent);
    EXPECT_FALSE(child.attr.simulate);
    EXPECT_FALSE(child.attr.inherit);

    // (simulate=0, inherit=0): nothing simulated.
    parent.attr = {false, false};
    child.inheritFrom(parent);
    EXPECT_FALSE(child.attr.simulate);
    EXPECT_FALSE(child.attr.inherit);
}

TEST(Task, GrandchildrenStaySimulated)
{
    Task shell = makeTask(1);
    shell.attr = {false, true};
    Task child = makeTask(2);
    child.inheritFrom(shell);
    Task grandchild = makeTask(3);
    grandchild.inheritFrom(child);
    EXPECT_TRUE(grandchild.attr.simulate);
    EXPECT_TRUE(grandchild.attr.inherit);
}

TEST(Task, FinishedTracksBudget)
{
    Task t = makeTask(1);
    t.budget = 10;
    EXPECT_FALSE(t.finished());
    t.executed = 10;
    EXPECT_TRUE(t.finished());
}

TEST(Task, StreamlessTaskHasMinimalTable)
{
    Task shell(3, "shell", Component::User, nullptr, 0);
    EXPECT_EQ(shell.pageTable.numPages(), 1u);
}

} // namespace
} // namespace tw
