/** @file Tests of the dense per-task page table. */

#include <gtest/gtest.h>

#include "os/page_table.hh"

namespace tw
{
namespace
{

TEST(PageTable, LookupFaultsWhenUnmapped)
{
    PageTable pt(0x400000, 64 * 1024);
    EXPECT_EQ(pt.lookup(0x400000), kNoFrame);
    EXPECT_EQ(pt.numPages(), 16u);
}

TEST(PageTable, MapAndTranslate)
{
    PageTable pt(0x400000, 64 * 1024);
    Vpn vpn = 0x400000 / kHostPageBytes;
    pt.map(vpn, 42);
    EXPECT_EQ(pt.lookup(0x400000), 42);
    EXPECT_EQ(pt.lookup(0x400fff), 42);
    EXPECT_EQ(pt.lookup(0x401000), kNoFrame);
}

TEST(PageTable, UnmapReturnsFrame)
{
    PageTable pt(0x400000, 64 * 1024);
    Vpn vpn = pt.firstVpn() + 3;
    pt.map(vpn, 9);
    EXPECT_EQ(pt.unmap(vpn), 9);
    EXPECT_EQ(pt.mappedFrame(vpn), kNoFrame);
}

TEST(PageTable, MappingsEnumeration)
{
    PageTable pt(0x400000, 64 * 1024);
    pt.map(pt.firstVpn() + 1, 10);
    pt.map(pt.firstVpn() + 5, 11);
    auto maps = pt.mappings();
    ASSERT_EQ(maps.size(), 2u);
    EXPECT_EQ(maps[0].first, pt.firstVpn() + 1);
    EXPECT_EQ(maps[0].second, 10);
    EXPECT_EQ(maps[1].first, pt.firstVpn() + 5);
}

TEST(PageTable, WindowRoundsUpToPages)
{
    PageTable pt(0x0, 100); // less than a page
    EXPECT_EQ(pt.numPages(), 1u);
}

TEST(PageTableDeath, VpnOutsideWindow)
{
    PageTable pt(0x400000, 8 * 1024);
    EXPECT_DEATH(pt.map(pt.firstVpn() + 2, 5), "outside window");
    EXPECT_DEATH(pt.map(pt.firstVpn() - 1, 5), "outside window");
}

TEST(PageTableDeath, UnalignedBase)
{
    EXPECT_DEATH(PageTable(0x100, 4096), "page aligned");
}

TEST(PageTableDeath, MapInvalidFrame)
{
    PageTable pt(0, 4096);
    EXPECT_DEATH(pt.map(0, kNoFrame), "invalid frame");
}

} // namespace
} // namespace tw
