/** @file Integration tests of the simulated machine + OS. */

#include <gtest/gtest.h>

#include "os/system.hh"
#include "trace/pixie.hh"
#include "workload/spec.hh"

namespace tw
{
namespace
{

WorkloadSpec
tinyWorkload()
{
    WorkloadSpec wl = makeWorkload("espresso", 2000);
    return wl;
}

SystemConfig
baseConfig()
{
    SystemConfig cfg;
    cfg.trialSeed = 11;
    return cfg;
}

TEST(System, RunsToCompletion)
{
    System sys(baseConfig(), tinyWorkload());
    RunResult r = sys.run();
    EXPECT_GT(r.cycles, 0u);
    EXPECT_GT(r.totalInstr(), 0u);
    EXPECT_EQ(r.tasksCreated, 1u);
    // All budgeted user instructions executed.
    EXPECT_EQ(r.instr[static_cast<unsigned>(Component::User)],
              tinyWorkload().userInstr());
}

TEST(System, ComponentFractionsRoughlyMatchSpec)
{
    WorkloadSpec wl = makeWorkload("ousterhout", 400);
    System sys(baseConfig(), wl);
    RunResult r = sys.run();
    // Table 4 for ousterhout: kernel 48%, bsd 31.4%, user 20.6%.
    EXPECT_NEAR(r.instrFrac(Component::Kernel), 0.48, 0.08);
    EXPECT_NEAR(r.instrFrac(Component::Bsd), 0.314, 0.07);
    EXPECT_NEAR(r.instrFrac(Component::User), 0.206, 0.05);
}

TEST(System, SameSeedIsDeterministic)
{
    WorkloadSpec wl = tinyWorkload();
    System a(baseConfig(), wl);
    System b(baseConfig(), wl);
    RunResult ra = a.run();
    RunResult rb = b.run();
    EXPECT_EQ(ra.cycles, rb.cycles);
    EXPECT_EQ(ra.totalInstr(), rb.totalInstr());
    EXPECT_EQ(ra.ticks, rb.ticks);
    EXPECT_EQ(ra.syscalls, rb.syscalls);
    EXPECT_EQ(ra.faults, rb.faults);
}

TEST(System, DifferentSeedsStillRunSameWorkload)
{
    WorkloadSpec wl = tinyWorkload();
    SystemConfig ca = baseConfig();
    SystemConfig cb = baseConfig();
    cb.trialSeed = 99;
    System a(ca, wl);
    System b(cb, wl);
    RunResult ra = a.run();
    RunResult rb = b.run();
    // The workload itself (streams, budgets) is trial-independent.
    EXPECT_EQ(ra.instr[static_cast<unsigned>(Component::User)],
              rb.instr[static_cast<unsigned>(Component::User)]);
}

TEST(System, ClockTicksScaleWithRuntime)
{
    WorkloadSpec wl = tinyWorkload();
    SystemConfig cfg = baseConfig();
    cfg.clockJitter = false;
    System sys(cfg, wl);
    RunResult r = sys.run();
    double expected = static_cast<double>(r.cycles)
                      / static_cast<double>(cfg.clockInterval);
    EXPECT_NEAR(static_cast<double>(r.ticks), expected, 2.0);
}

TEST(System, ForkTreeCreatesAllTasks)
{
    WorkloadSpec wl = makeWorkload("sdet", 2000);
    System sys(baseConfig(), wl);
    RunResult r = sys.run();
    EXPECT_EQ(r.tasksCreated, wl.taskCount);
    EXPECT_EQ(r.forks, wl.taskCount);
    // Every user task exited and released its address space.
    unsigned exited = 0;
    for (const auto &t : sys.tasks()) {
        if (t->component == Component::User && t->stream && t->exited)
            ++exited;
    }
    EXPECT_EQ(exited, wl.taskCount);
}

TEST(System, ScopeSetsAttributes)
{
    WorkloadSpec wl = tinyWorkload();
    SystemConfig cfg = baseConfig();
    cfg.scope = SimScope::userOnly();
    System sys(cfg, wl);
    EXPECT_FALSE(sys.kernelTask()->attr.simulate);
    EXPECT_FALSE(sys.bsdTask()->attr.simulate);
    EXPECT_FALSE(sys.shellTask()->attr.simulate);
    EXPECT_TRUE(sys.shellTask()->attr.inherit);

    SystemConfig cfg2 = baseConfig();
    cfg2.scope = SimScope::kernelOnly();
    System sys2(cfg2, wl);
    EXPECT_TRUE(sys2.kernelTask()->attr.simulate);
    EXPECT_FALSE(sys2.shellTask()->attr.inherit);
}

TEST(System, FirstUserTaskGetsExpectedTid)
{
    WorkloadSpec wl = tinyWorkload();
    System sys(baseConfig(), wl);
    bool found = false;
    for (const auto &t : sys.tasks()) {
        if (t->tid == kFirstUserTaskId) {
            EXPECT_EQ(t->component, Component::User);
            found = true;
        }
    }
    EXPECT_TRUE(found);
}

TEST(System, SyscallsHappenAtConfiguredRate)
{
    WorkloadSpec wl = tinyWorkload();
    System sys(baseConfig(), wl);
    RunResult r = sys.run();
    double expected = static_cast<double>(wl.userInstr())
                      * wl.syscallsPer1k / 1000.0;
    EXPECT_NEAR(static_cast<double>(r.syscalls), expected,
                expected * 0.2);
}

TEST(System, ServersExecuteOnlyWhenDriven)
{
    // eqntott barely touches X (xProb = 0): X server executes
    // nothing.
    WorkloadSpec wl = makeWorkload("eqntott", 2000);
    System sys(baseConfig(), wl);
    RunResult r = sys.run();
    EXPECT_EQ(r.instr[static_cast<unsigned>(Component::X)], 0u);
    EXPECT_GT(r.instr[static_cast<unsigned>(Component::Bsd)], 0u);
}

TEST(System, DmaFlushesHappen)
{
    WorkloadSpec wl = tinyWorkload();
    SystemConfig cfg = baseConfig();
    cfg.dmaFlushPeriod = 2;
    System sys(cfg, wl);
    RunResult r = sys.run();
    EXPECT_GT(r.dmaFlushes, 0u);
    EXPECT_LE(r.dmaFlushes, r.ticks / 2 + 1);
}

TEST(System, DmaCanBeDisabled)
{
    WorkloadSpec wl = tinyWorkload();
    SystemConfig cfg = baseConfig();
    cfg.dmaFlushPeriod = 0;
    System sys(cfg, wl);
    EXPECT_EQ(sys.run().dmaFlushes, 0u);
}

TEST(System, InstrumentationCostDilatesTime)
{
    // A client charging cycles per reference must stretch the run.
    class CostClient : public SimClient
    {
      public:
        Cycles
        onRef(const Task &, Addr, Addr, bool, AccessKind) override
        {
            return 10;
        }
    };

    WorkloadSpec wl = tinyWorkload();
    System plain(baseConfig(), wl);
    Cycles normal = plain.run().cycles;

    System instr(baseConfig(), wl);
    CostClient client;
    instr.setClient(&client);
    RunResult r = instr.run();
    EXPECT_GT(r.cycles, normal * 5);
    // More elapsed time at a fixed tick rate = more interrupts.
    System plain2(baseConfig(), wl);
    EXPECT_GT(r.ticks, plain2.run().ticks * 4);
}

TEST(SystemDeath, RunTwiceForbidden)
{
    WorkloadSpec wl = tinyWorkload();
    System sys(baseConfig(), wl);
    sys.run();
    EXPECT_DEATH(sys.run(), "called twice");
}

} // namespace
} // namespace tw
