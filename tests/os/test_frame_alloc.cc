/** @file Tests of frame-allocation policies (the Table 9 mechanism). */

#include <set>

#include <gtest/gtest.h>

#include "os/frame_alloc.hh"

namespace tw
{
namespace
{

TEST(FrameAlloc, SequentialIsLowestFirst)
{
    FrameAllocator fa(64, 8, AllocPolicy::Sequential, 1);
    EXPECT_EQ(fa.alloc(0).value(), 8);
    EXPECT_EQ(fa.alloc(0).value(), 9);
    EXPECT_EQ(fa.alloc(0).value(), 10);
}

TEST(FrameAlloc, ReservationWithheld)
{
    FrameAllocator fa(64, 16, AllocPolicy::Random, 1);
    EXPECT_EQ(fa.freeCount(), 48u);
    for (int i = 0; i < 48; ++i) {
        auto f = fa.alloc(0);
        ASSERT_TRUE(f.has_value());
        EXPECT_GE(*f, 16);
    }
    EXPECT_FALSE(fa.alloc(0).has_value()); // exhausted
}

TEST(FrameAlloc, NoDoubleAllocation)
{
    FrameAllocator fa(128, 0, AllocPolicy::Random, 7);
    std::set<Pfn> seen;
    for (int i = 0; i < 128; ++i) {
        auto f = fa.alloc(0);
        ASSERT_TRUE(f.has_value());
        EXPECT_TRUE(seen.insert(*f).second) << "duplicate " << *f;
    }
}

TEST(FrameAlloc, FreeMakesReallocatable)
{
    FrameAllocator fa(16, 0, AllocPolicy::Sequential, 1);
    for (int i = 0; i < 16; ++i)
        fa.alloc(0);
    EXPECT_FALSE(fa.alloc(0).has_value());
    fa.free(5);
    EXPECT_TRUE(fa.isAllocated(6));
    EXPECT_FALSE(fa.isAllocated(5));
    EXPECT_EQ(fa.alloc(0).value(), 5);
}

TEST(FrameAlloc, RandomSeedDeterminism)
{
    FrameAllocator a(256, 0, AllocPolicy::Random, 42);
    FrameAllocator b(256, 0, AllocPolicy::Random, 42);
    for (int i = 0; i < 100; ++i)
        ASSERT_EQ(a.alloc(0).value(), b.alloc(0).value());
}

TEST(FrameAlloc, RandomSeedsDiffer)
{
    FrameAllocator a(256, 0, AllocPolicy::Random, 1);
    FrameAllocator b(256, 0, AllocPolicy::Random, 2);
    int same = 0;
    for (int i = 0; i < 50; ++i)
        same += a.alloc(0).value() == b.alloc(0).value();
    EXPECT_LT(same, 10);
}

TEST(FrameAlloc, ColoringMatchesColorBits)
{
    FrameAllocator fa(256, 0, AllocPolicy::Coloring, 1, 0x7);
    for (Vpn vpn = 0; vpn < 32; ++vpn) {
        auto f = fa.alloc(vpn);
        ASSERT_TRUE(f.has_value());
        EXPECT_EQ(static_cast<std::uint64_t>(*f) & 0x7, vpn & 0x7)
            << "vpn " << vpn;
    }
}

TEST(FrameAlloc, ColoringFallsBackWhenColorExhausted)
{
    // 16 frames, color mask 0x7: only two frames per color.
    FrameAllocator fa(16, 0, AllocPolicy::Coloring, 1, 0x7);
    EXPECT_TRUE(fa.alloc(0).has_value());
    EXPECT_TRUE(fa.alloc(0).has_value());
    auto third = fa.alloc(0); // color 0 exhausted, must still work
    ASSERT_TRUE(third.has_value());
    EXPECT_NE(static_cast<std::uint64_t>(*third) & 0x7, 0u);
}

TEST(FrameAllocDeath, DoubleFree)
{
    FrameAllocator fa(16, 0, AllocPolicy::Sequential, 1);
    Pfn f = fa.alloc(0).value();
    fa.free(f);
    EXPECT_DEATH(fa.free(f), "double free");
}

TEST(FrameAllocDeath, FreeBadFrame)
{
    FrameAllocator fa(16, 0, AllocPolicy::Sequential, 1);
    EXPECT_DEATH(fa.free(99), "bad frame");
}

TEST(FrameAlloc, PolicyNames)
{
    EXPECT_STREQ(allocPolicyName(AllocPolicy::Random), "random");
    EXPECT_STREQ(allocPolicyName(AllocPolicy::Sequential),
                 "sequential");
    EXPECT_STREQ(allocPolicyName(AllocPolicy::Coloring), "coloring");
}

} // namespace
} // namespace tw
