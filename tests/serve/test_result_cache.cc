/**
 * @file
 * The experiment service's result cache: hit/miss accounting, LRU
 * bounding, bit-identical storage, and a contention stress run
 * (built under TSan by check.sh).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "harness/specio.hh"
#include "serve/result_cache.hh"

namespace tw
{
namespace
{

RunOutcome
outcomeStamped(double misses)
{
    RunOutcome o;
    o.estMisses = misses;
    o.rawMisses = misses;
    o.run.cycles = static_cast<Cycles>(misses) * 10;
    return o;
}

TEST(ResultCache, MissThenHit)
{
    serve::ResultCache cache(8);
    RunOutcome out;
    EXPECT_FALSE(cache.lookup("k1", out));
    cache.insert("k1", outcomeStamped(42.0));
    ASSERT_TRUE(cache.lookup("k1", out));
    EXPECT_EQ(out.estMisses, 42.0);

    serve::ResultCache::Stats s = cache.stats();
    EXPECT_EQ(s.hits, 1u);
    EXPECT_EQ(s.misses, 1u);
    EXPECT_EQ(s.insertions, 1u);
    EXPECT_EQ(s.size, 1u);
    EXPECT_EQ(s.capacity, 8u);
}

TEST(ResultCache, StoredOutcomeIsBitIdentical)
{
    // The cached copy must render to the same canonical bytes as
    // the original — this is what makes a cache hit
    // indistinguishable from recomputation on the wire.
    RunSpec spec;
    spec.workload = makeWorkload("espresso", 4000);
    spec.tw.cache = CacheConfig::icache(2048);
    RunOutcome fresh = Runner::runWithSlowdown(spec, 11);

    serve::ResultCache cache(4);
    std::string key = cacheKey(spec, 11, true);
    cache.insert(key, fresh);
    RunOutcome cached;
    ASSERT_TRUE(cache.lookup(key, cached));
    EXPECT_EQ(formatRunOutcome(cached), formatRunOutcome(fresh));
}

TEST(ResultCache, LruBounded)
{
    serve::ResultCache cache(2);
    cache.insert("a", outcomeStamped(1));
    cache.insert("b", outcomeStamped(2));
    RunOutcome out;
    EXPECT_TRUE(cache.lookup("a", out)); // protect a
    cache.insert("c", outcomeStamped(3));
    EXPECT_FALSE(cache.lookup("b", out));
    EXPECT_TRUE(cache.lookup("a", out));
    EXPECT_TRUE(cache.lookup("c", out));
    EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(ResultCache, FlushEmptiesAndCounts)
{
    serve::ResultCache cache(4);
    cache.insert("a", outcomeStamped(1));
    cache.flush();
    RunOutcome out;
    EXPECT_FALSE(cache.lookup("a", out));
    serve::ResultCache::Stats s = cache.stats();
    EXPECT_EQ(s.size, 0u);
    EXPECT_EQ(s.flushes, 1u);
}

TEST(ResultCache, StatsJsonShape)
{
    serve::ResultCache cache(4);
    cache.insert("a", outcomeStamped(1));
    Json j = cache.statsJson();
    ASSERT_TRUE(j.isObject());
    EXPECT_EQ(j.findPath("size")->asU64(), 1u);
    EXPECT_EQ(j.findPath("capacity")->asU64(), 4u);
    EXPECT_NE(j.find("hits"), nullptr);
    EXPECT_NE(j.find("evictions"), nullptr);
}

TEST(ResultCache, ContendedLookupInsertIsSafe)
{
    // 8 threads hammer a 16-entry cache with 64 overlapping keys:
    // exercises lookup-touch, insert-evict and flush under real
    // contention. Correctness here is (a) no crash/race (TSan) and
    // (b) every hit returns the exact value inserted for that key.
    serve::ResultCache cache(16);
    constexpr unsigned kThreads = 8;
    constexpr int kIters = 4000;
    std::atomic<std::uint64_t> badValues{0};

    std::vector<std::thread> threads;
    for (unsigned t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            for (int i = 0; i < kIters; ++i) {
                unsigned k = (t * 31 + static_cast<unsigned>(i)) % 64;
                std::string key = "key" + std::to_string(k);
                RunOutcome out;
                if (cache.lookup(key, out)) {
                    if (out.estMisses != static_cast<double>(k))
                        badValues.fetch_add(1);
                } else {
                    cache.insert(key,
                                 outcomeStamped(
                                     static_cast<double>(k)));
                }
                if (t == 0 && i % 1000 == 999)
                    cache.flush();
            }
        });
    }
    for (auto &th : threads)
        th.join();

    EXPECT_EQ(badValues.load(), 0u);
    serve::ResultCache::Stats s = cache.stats();
    EXPECT_LE(s.size, 16u);
    EXPECT_GT(s.hits + s.misses, 0u);
}

} // namespace
} // namespace tw
